// Quickstart: track the dirty pages of a guest process with EPML.
//
// Builds the simulated testbed (machine + hypervisor + guest), starts a
// process, registers it with the OoH library, runs a small workload and
// prints the dirty page addresses each collection interval reports --
// alongside what the same workload costs under /proc.
//
//   $ ./quickstart
#include <cstdio>

#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

using namespace ooh;

int main() {
  // 1. Bring up the testbed: one host, one VM (5GB), one guest kernel.
  lib::TestBed bed;
  guest::GuestKernel& kernel = bed.kernel();

  // 2. Create the Tracked process and give it some memory.
  guest::Process& proc = kernel.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize);
  std::printf("tracked process pid=%u, %llu pages at 0x%llx\n", proc.pid(),
              static_cast<unsigned long long>(pages),
              static_cast<unsigned long long>(base));

  // 3. A workload: dirty every 3rd page, twice.
  const lib::WorkloadFn workload = [&](guest::Process& p) {
    for (int pass = 0; pass < 2; ++pass) {
      for (u64 i = 0; i < pages; i += 3) p.write_u64(base + i * kPageSize, i);
    }
  };

  // 4. Track it with EPML: the hardware logs GVAs into a guest-level PML
  //    buffer; collection is a ring-buffer read (no reverse mapping, no
  //    hypervisor on the critical path).
  for (const lib::Technique tech : {lib::Technique::kEpml, lib::Technique::kProc}) {
    guest::Process& p = kernel.create_process();
    const Gva b = p.mmap(pages * kPageSize);
    const lib::WorkloadFn w = [&, b](guest::Process& pr) {
      for (int pass = 0; pass < 2; ++pass) {
        for (u64 i = 0; i < pages; i += 3) pr.write_u64(b + i * kPageSize, i);
      }
    };
    auto tracker = lib::make_tracker(tech, kernel, p);
    const lib::RunResult r = lib::run_tracked(kernel, p, w, tracker.get());
    std::printf("\n[%s] reported %llu dirty pages (ground truth %llu, capture %.0f%%)\n",
                std::string(tracker->name()).c_str(),
                static_cast<unsigned long long>(r.unique_pages),
                static_cast<unsigned long long>(r.truth_pages), r.capture_ratio() * 100);
    std::printf("  tracked time   : %s\n", format_duration(r.tracked_time).c_str());
    std::printf("  tracker time   : %s (init %s, collect %s)\n",
                format_duration(r.tracker_time()).c_str(),
                format_duration(r.phases.init).c_str(),
                format_duration(r.phases.collect).c_str());
    tracker->shutdown();
  }
  std::printf("\nEPML and /proc report the same pages; EPML's collection is the\n"
              "cheap path (ring read) while /proc pays clear_refs + pagemap scans.\n");
  return 0;
}
