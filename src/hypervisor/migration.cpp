#include "hypervisor/migration.hpp"

#include <algorithm>
#include <new>
#include <thread>
#include <unordered_set>
#include <vector>

#include "base/sync.hpp"
#include "ooh/adaptive/convergence.hpp"

namespace ooh::hv {
namespace {

/// Append the elements of `more` that `base` does not already contain.
void merge_unique(std::vector<Gpa>& base, const std::vector<Gpa>& more) {
  if (more.empty()) return;
  std::unordered_set<Gpa> seen(base.begin(), base.end());
  for (const Gpa g : more) {
    if (seen.insert(g).second) base.push_back(g);
  }
}

/// One host drainer thread per vCPU ring, running while the guest quantum
/// executes on the caller's thread. SPSC holds: the vCPU is the only
/// producer of its ring and its drainer is the only consumer; drained
/// entries land in Vm::drained_log(cpu), which the next quiescent harvest
/// (take_ring_contents, after join) folds back into the authoritative set.
class ConcurrentDrainers {
 public:
  ConcurrentDrainers(Hypervisor& hv, Vm& vm) : hv_(hv), vm_(vm) {
    threads_.reserve(vm.vcpu_count());
    for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
      threads_.emplace_back([this, cpu] {
        std::vector<Gpa> local;
        std::size_t popped = 0;
        while (!stop_.load(std::memory_order_acquire)) {
          popped += hv_.drain_dirty_ring(vm_, cpu, local);
          std::this_thread::yield();
        }
        // Final sweep after the producer quiesced: entries pushed between
        // the last poll and the stop flag.
        popped += hv_.drain_dirty_ring(vm_, cpu, local);
        // relaxed-ok: per-thread tally folded after join; the join itself
        // is the ordering edge stop() relies on.
        drained_.fetch_add(popped, std::memory_order_relaxed);
      });
    }
  }

  /// Join the drainers; returns total entries popped across all rings.
  u64 stop() {
    stop_.store(true, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    // relaxed-ok: all drainers joined above; no concurrent writers left.
    return drained_.load(std::memory_order_relaxed);
  }

  ~ConcurrentDrainers() {
    if (!threads_.empty()) stop();
  }

 private:
  Hypervisor& hv_;
  Vm& vm_;
  sync::Atomic<bool> stop_{false};
  sync::Atomic<u64> drained_{0};
  std::vector<std::thread> threads_;
};

}  // namespace

bool MigrationEngine::send_pages(sim::ExecContext& m, u64 count,
                                 const MigrationOptions& opts,
                                 MigrationReport& rep) {
  unsigned attempt = 0;
  while (m.fault_fire(sim::fault::FaultPoint::kMigrationSendFail)) {
    ++rep.send_retries;
    m.count(Event::kMigrationSendRetry);
    // Exponential backoff before the retry, as a real transfer loop would.
    // The exponent clamps at 20 (a ~10^6x backoff cap): a send_retry_limit
    // configured above 63 must not shift past the u64 range, and no real
    // transfer loop backs off beyond a bounded ceiling anyway.
    m.charge_us(opts.retry_backoff_us *
                static_cast<double>(u64{1} << std::min(attempt, 20u)));
    m.fault_audit();
    if (++attempt >= opts.send_retry_limit) return false;
  }
  m.count(Event::kMigrationPageSent, count);
  m.charge_us(m.cost.migration_send_page_us * static_cast<double>(count));
  rep.pages_sent += count;
  return true;
}

MigrationReport MigrationEngine::migrate(Vm& vm,
                                         const std::function<void()>& run_guest_quantum,
                                         const MigrationOptions& opts) {
  sim::ExecContext& m = vm.ctx();
  MigrationReport rep;
  const VirtDuration start = m.clock.now();

  // Guest-execution wrapper: with concurrent_ring_drain, userspace drainer
  // threads empty the per-vCPU dirty rings while the body runs; without it,
  // this is a plain call. Either way the subsequent quiescent harvest sees
  // the same authoritative set (drained entries fold back in).
  const auto run_overlapped = [&](const std::function<void()>& body) {
    if (!body) return;
    if (!opts.concurrent_ring_drain) {
      body();
      return;
    }
    ConcurrentDrainers drainers(hv_, vm);
    body();
    rep.ring_drained += drainers.stop();
  };

  try {
    hv_.enable_pml_for_hyp(vm);
  } catch (const std::bad_alloc&) {
    // The host could not allocate the PML buffer backing dirty logging
    // (real or injected OOM). Without dirty tracking live migration cannot
    // proceed; abort cleanly instead of crashing the caller.
    rep.aborted = true;
    m.count(Event::kMigrationAborted);
    hv_.audit_now(vm.id());
    rep.total_time = m.clock.now() - start;
    return rep;
  }

  // Round 0: full copy of every mapped guest page while the guest runs.
  rep.initial_pages = vm.ept().present_pages();
  if (!send_pages(m, rep.initial_pages, opts, rep)) {
    // Could not even complete the initial copy: abort rather than loop on a
    // dead transport.
    rep.aborted = true;
    m.count(Event::kMigrationAborted);
    hv_.disable_pml_for_hyp(vm);
    hv_.audit_now(vm.id());
    rep.total_time = m.clock.now() - start;
    return rep;
  }

  lib::ConvergencePredictor predictor;
  std::vector<Gpa> carry;  // harvested but never transferred (failed sends)
  for (unsigned round = 0; round < opts.max_rounds; ++round) {
    const VirtDuration round_start = m.clock.now();
    run_overlapped(run_guest_quantum);
    std::vector<Gpa> pending = hv_.harvest_hyp_dirty(vm);
    merge_unique(pending, carry);
    // Pre-copy round boundary: let an installed coherence hook audit this
    // VM (no-op outside audit builds; see Hypervisor::set_audit_hook).
    hv_.audit_now(vm.id());
    m.count(Event::kMigrationRound);
    ++rep.rounds;
    if (pending.size() <= opts.stop_copy_threshold_pages) {
      // Converged. The guest keeps running between the harvest above and
      // the actual pause (the drain window): writes landing in it sit in
      // the PML buffer / dirty log, not in `pending`, and must join the
      // stop-and-copy set — dropping them would corrupt the destination.
      run_overlapped(opts.drain_window_body);
      const VirtDuration pause_start = m.clock.now();
      merge_unique(pending, hv_.collect_dirty_paused(vm));
      rep.stop_copy_pages = pending.size();
      if (send_pages(m, pending.size(), opts, rep)) {
        rep.converged = true;
      } else {
        rep.aborted = true;
        m.count(Event::kMigrationAborted);
      }
      rep.downtime = m.clock.now() - pause_start;
      carry.clear();
      break;
    }
    if (opts.adaptive_convergence) {
      // Convergence prediction: dirty rate (EWMA over virtual time) vs. the
      // transport's send bandwidth.
      predictor.observe_round(pending.size(), m.clock.now() - round_start);
      if (predictor.rounds() >= opts.predictor_warmup_rounds) {
        const bool non_conv = predictor.non_convergent(m.cost);
        predictor.note_verdict(non_conv);
        if (non_conv && opts.throttle_fraction > 0.0) {
          // Auto-converge: stall the guest for a fraction of the round it
          // just ran (charged slowdown), lowering the dirty rate the next
          // round will measure — QEMU's cpu-throttle, in virtual time.
          m.count(Event::kMigrationThrottle);
          ++rep.throttled_rounds;
          m.charge_us(opts.throttle_fraction * to_us(m.clock.now() - round_start));
        }
        if (predictor.sustained_non_convergence() >= opts.predictor_patience) {
          // Pre-copy provably cannot shrink the pending set: skip the
          // redundant transfer and fold the harvest straight into the
          // forced stop-and-copy below (auto-sized max_rounds).
          rep.predicted_nonconvergent = true;
          carry = std::move(pending);
          break;
        }
      }
    }
    if (send_pages(m, pending.size(), opts, rep)) {
      carry.clear();
    } else {
      // Send failed even after retries: fold the set into the next round
      // instead of dropping it on the floor.
      carry = std::move(pending);
    }
  }
  rep.predicted_dirty_rate = predictor.dirty_rate();
  if (!rep.converged && !rep.aborted) {
    // Non-convergence cutoff: forced stop-and-copy after max_rounds. This
    // runs a full extra round (guest quantum + harvest), so it counts as
    // one: rounds and kMigrationRound stay the ground truth of how many
    // quanta the guest ran during pre-copy.
    run_overlapped(run_guest_quantum);
    std::vector<Gpa> pending = hv_.harvest_hyp_dirty(vm);
    merge_unique(pending, carry);
    carry.clear();
    hv_.audit_now(vm.id());
    m.count(Event::kMigrationRound);
    ++rep.rounds;
    run_overlapped(opts.drain_window_body);
    const VirtDuration pause_start = m.clock.now();
    merge_unique(pending, hv_.collect_dirty_paused(vm));
    rep.stop_copy_pages = pending.size();
    if (!send_pages(m, pending.size(), opts, rep)) {
      rep.aborted = true;
      m.count(Event::kMigrationAborted);
    }
    rep.downtime = m.clock.now() - pause_start;
  }

  hv_.disable_pml_for_hyp(vm);
  hv_.audit_now(vm.id());
  rep.total_time = m.clock.now() - start;
  return rep;
}

}  // namespace ooh::hv
