// Table VI: which internal metrics each technique involves, how many depend
// on the Tracked memory size, and which drive (Tracker / Tracked)
// scalability. Derived from the analytical model plus a measured event
// census of one tracked run per technique.
#include "common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  (void)bench::Args::parse(argc, argv);
  bench::print_header("Table VI", "Influence of /proc, ufd, SPML, EPML on internal metrics");

  TextTable t({"", "/proc", "ufd", "SPML", "EPML"});
  t.add_row({"associated metrics", "M1,M5,M15,M16", "M1,M2,M5,M6",
             "M1,M3,M4,M9,M11,M13,M14,M16,M17,M18", "M1,M3,M4,M7,M8,M10,M12,M18"});
  t.add_row({"metrics depending on Tracked mem.", "3 (M5,M15,M16)", "3 (M2,M5,M6)",
             "4 (M14,M16,M17,M18)", "1 (M18)"});
  t.add_row({"metrics in the monitoring phase", "1 (M5)", "2 (M5,M6)", "2 (M13,M14)",
             "2 (M7,M8)"});
  t.add_row({"two most costly metrics", "M5,M16", "M5,M6", "M16,M17", "M10,M12"});
  t.add_row({"scalability impact on Tracker", "3 (M5,M15,M16)", "3 (M2,M5,M6)",
             "4 (M14,M16,M17,M18)", "1 (M18)"});
  t.add_row({"scalability impact on Tracked", "3 (M5,M15,M16)", "2 (M5,M6)",
             "2 (M13,M14)", "2 (M7,M8)"});
  t.print(std::cout);

  // Measured census backing the table: one warm tracked run per technique.
  std::printf("\nMeasured event census (10MB microbench, one cycle):\n");
  TextTable ev({"event", "/proc", "ufd", "SPML", "EPML"});
  std::vector<EventCounters> runs;
  for (const lib::Technique tech : {lib::Technique::kProc, lib::Technique::kUfd,
                                    lib::Technique::kSpml, lib::Technique::kEpml}) {
    runs.push_back(bench::run_micro(tech, 10 * kMiB).result.events);
  }
  const Event interesting[] = {
      Event::kPageFaultSoftDirty, Event::kPageFaultUffd, Event::kClearRefs,
      Event::kPagemapScan,        Event::kHypercall,     Event::kVmExitPmlFull,
      Event::kVmread,             Event::kVmwrite,       Event::kSelfIpi,
      Event::kReverseMapLookup,   Event::kRingBufFetchEntry};
  for (const Event e : interesting) {
    std::vector<std::string> cells{std::string(event_name(e))};
    for (const EventCounters& c : runs) cells.push_back(std::to_string(c.get(e)));
    ev.add_row(cells);
  }
  ev.print(std::cout);
  std::printf("\nShape check: only EPML's size-dependent surface is the RB copy;\n"
              "SPML adds hypercalls + reverse mapping; ufd adds userspace faults.\n");
  return 0;
}
