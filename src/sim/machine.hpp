// The physical machine: the state all vCPUs *share*. One Machine hosts one
// hypervisor and any number of VMs.
//
// After the execution-context split, the Machine carries only read-only or
// thread-safe members: the cost model (immutable after construction) and
// host RAM (internally sharded frame allocator). Everything a single vCPU
// timeline mutates — virtual clock, event counters, TLB — lives in the
// per-vCPU ExecContext the Machine creates and owns. Machine-wide views
// (total event counts, latest virtual time) are aggregations over contexts.
#pragma once

#include <memory>
#include <vector>

#include "base/cost_model.hpp"
#include "base/counters.hpp"
#include "base/sync.hpp"
#include "sim/exec_context.hpp"
#include "sim/phys_mem.hpp"

namespace ooh::sim {

class Machine {
 public:
  explicit Machine(u64 host_mem_bytes, CostModel cost_model = CostModel::paper_calibrated())
      : cost(cost_model), pmem(host_mem_bytes) {}

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Mint the execution context for a new vCPU. Called at VM setup; the
  /// Machine keeps ownership so machine-wide aggregation stays possible.
  ExecContext& create_context() {
    sync::SpinGuard lock(ctx_mu_);
    contexts_.push_back(std::make_unique<ExecContext>(
        static_cast<u32>(contexts_.size()), cost, pmem));
    return *contexts_.back();
  }

  [[nodiscard]] std::size_t context_count() const {
    sync::SpinGuard lock(ctx_mu_);
    return contexts_.size();
  }

  [[nodiscard]] ExecContext& context(std::size_t i) {
    sync::SpinGuard lock(ctx_mu_);
    return *contexts_.at(i);
  }

  /// Machine-wide event totals: the per-vCPU counters merged. Only
  /// meaningful while no context is concurrently mutating its counters
  /// (i.e. between parallel runs, not during one).
  [[nodiscard]] EventCounters total_counters() const {
    sync::SpinGuard lock(ctx_mu_);
    EventCounters total;
    for (const auto& ctx : contexts_) total.merge(ctx->counters);
    return total;
  }

  /// The most-advanced per-vCPU virtual clock — "how long the experiment
  /// took" when timelines run independently.
  [[nodiscard]] VirtDuration max_clock() const {
    sync::SpinGuard lock(ctx_mu_);
    VirtDuration latest{0};
    for (const auto& ctx : contexts_) {
      if (ctx->clock.now() > latest) latest = ctx->clock.now();
    }
    return latest;
  }

  const CostModel cost;
  PhysicalMemory pmem;

 private:
  mutable sync::Mutex ctx_mu_;
  std::vector<std::unique_ptr<ExecContext>> contexts_;
};

}  // namespace ooh::sim
