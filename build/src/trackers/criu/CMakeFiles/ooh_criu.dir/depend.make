# Empty dependencies file for ooh_criu.
# This may be replaced when dependencies are built.
