// Guest PTE: the per-mapping bits the paper's tracking techniques
// manipulate. Split out of page_table.hpp so both translation backends
// (radix RadixTable4<Pte> and the range-based SegmentTable) share it.
//
//   dirty       : hardware-set on write; EPML's guest-level PML triggers when
//                 a write *sets* this flag.
//   soft_dirty  : Linux's bit-55 clone; set by the #PF handler after
//                 clear_refs write-protected the PTE (/proc technique).
//   uffd_wp     : userfaultfd write-protect marker; faults go to userspace.
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace ooh::sim {

struct Pte {
  u64 gpa_page = 0;      ///< granularity-aligned GPA base this leaf maps to.
  bool present : 1 = false;
  bool writable : 1 = false;
  bool user : 1 = false;
  bool accessed : 1 = false;
  bool dirty : 1 = false;
  bool soft_dirty : 1 = false;
  bool uffd_wp : 1 = false;
};

}  // namespace ooh::sim
