#include "sim/mmu.hpp"

#include <stdexcept>

#include "sim/exec_context.hpp"
#include "sim/page_track.hpp"
#include "sim/vcpu.hpp"

namespace ooh::sim {

Mmu::Mmu(Vcpu& vcpu, Ept& ept, SppTable* spp)
    : ctx_(vcpu.ctx()), vcpu_(vcpu), tlb_(vcpu.tlb()), ept_(ept), spp_(spp) {}

Mmu::Result Mmu::access(u32 pid, GuestPageTable& pt, Gva gva, bool is_write) {
  const Gva gva_page = page_floor(gva);
  Tlb& tlb = tlb_;
  WriteTrackRegistry& track = vcpu_.track_registry();

  if (TlbEntry* te = tlb.lookup(pid, gva_page); te != nullptr) {
    // A cached translation can serve reads always, and writes when the
    // dirty state is already established (no flag transition => no logging).
    if (!is_write || (te->writable && te->dirty)) {
      ctx_.count(Event::kTlbHit);
      ctx_.charge_ns(ctx_.cost.tlb_hit_ns);
      // For a huge entry the cached bases are region bases; the in-region
      // offset reduces to page_offset(gva) in the k4K case.
      return {Status::kOk, te->hpa_page + gran_offset(gva, te->gran)};
    }
    // Write through a clean/RO cached entry: hardware re-walks to set flags.
    tlb.invalidate_page(pid, gva_page);
  }
  ctx_.count(Event::kTlbMiss);

  // ---- guest page-table walk ----------------------------------------------
  // A PS-bit leaf one (two) levels up shortens the walk by one (two)
  // pointer chases; the 4 KiB charge multiplier is exactly 1.0, keeping the
  // default configuration's virtual time bit-identical.
  ctx_.count(Event::kGuestPtWalk);
  const GuestPageTable::Lookup glu = pt.lookup(gva_page);
  ctx_.charge_ns(ctx_.cost.guest_walk_ns *
                 (1.0 - 0.25 * static_cast<double>(glu.gran)));
  Pte* pte = glu.pte;
  if (pte == nullptr || !pte->present) return {Status::kFaultNotPresent, 0};
  if (is_write && (!pte->writable || pte->uffd_wp)) return {Status::kFaultNotWritable, 0};
  pte->accessed = true;
  if (is_write && !pte->dirty) {
    pte->dirty = true;
    // The dirty flag lives in the leaf, so the logged unit is the leaf's
    // whole span: base GVA/GPA plus the granularity (4 KiB leaves log the
    // page itself, as before).
    track.dispatch(TrackLayer::kGuestPtDirty,
                   {&vcpu_, pid, gran_floor(gva_page, glu.gran), pte->gpa_page,
                    glu.gran});
  }
  const Gpa gpa = glu.gpa_page | page_offset(gva);

  // ---- EPT walk ------------------------------------------------------------
  ctx_.count(Event::kEptWalk);
  Ept::Lookup elu = ept_.lookup(gpa);
  ctx_.charge_ns(ctx_.cost.ept_walk_ns *
                 (1.0 - 0.25 * static_cast<double>(elu.gran)));
  if (elu.entry == nullptr || !elu.entry->present) {
    // EPT violation: exit to the hypervisor, which back-fills the mapping.
    ctx_.charge_us(ctx_.cost.ept_violation_us);
    vcpu_.vmexit_to_root(Event::kVmExitEptViolation, [&] {
      vcpu_.exits()->on_ept_violation(vcpu_, gpa, is_write);
    });
    elu = ept_.lookup(gpa);
    if (elu.entry == nullptr || !elu.entry->present) {
      throw std::logic_error("EPT violation handler did not map the GPA");
    }
  }
  EptEntry* epte = elu.entry;
  const Gpa ept_leaf_base = gran_floor(page_floor(gpa), elu.gran);
  if (is_write && !epte->writable) {
    // Write to a write-protected EPT entry: an EPT violation the page-track
    // fault chain must resolve (KVM-page_track-style write interception).
    // Unlike the not-present case the hypervisor has no generic fix-up, so
    // an unhandled fault is a configuration error.
    ctx_.count(Event::kEptWpFault);
    if (!track.dispatch(TrackLayer::kEptWpFault,
                        {&vcpu_, pid, gva_page, glu.gpa_page}) ||
        !epte->writable) {
      throw std::logic_error("write to a write-protected EPT entry with no handler");
    }
  }
  // SPP: writes to a sub-page whose permission bit is clear raise an
  // SPP-violation exit before any dirty state changes (guard semantics).
  if (is_write && epte->spp && spp_ != nullptr && !spp_->write_allowed(gpa)) {
    ctx_.count(Event::kSppViolation);
    ctx_.count(Event::kVmExit);
    ctx_.charge_us(ctx_.cost.spp_violation_us);
    return {Status::kFaultSubPage, 0};
  }

  if (!epte->accessed) {
    epte->accessed = true;
    track.dispatch(TrackLayer::kEptAccessed,
                   {&vcpu_, pid, gva_page, ept_leaf_base, elu.gran});
  }
  if (is_write && !epte->dirty) {
    epte->dirty = true;
    ctx_.count(Event::kEptDirtySet);
    // One dirty flag per leaf: PML logs the leaf's base at the leaf's
    // granularity (the precision loss eager splitting removes).
    track.dispatch(TrackLayer::kEptDirty,
                   {&vcpu_, pid, gva_page, ept_leaf_base, elu.gran});
  }

  // The fill granularity is the largest region over which BOTH translation
  // stages are contiguous: min of the two leaf sizes.
  const PageGran fill_gran = glu.gran < elu.gran ? glu.gran : elu.gran;
  const Gva fill_base = gran_floor(gva_page, fill_gran);
  TlbEntry te;
  te.gran = fill_gran;
  te.gpa_page = pte->gpa_page + (fill_base - gran_floor(gva_page, glu.gran));
  te.hpa_page =
      epte->hpa_page + gran_offset(gran_floor(glu.gpa_page, fill_gran), elu.gran);
  // SPP pages never cache write permission: every store must re-consult the
  // sub-page mask.
  te.writable = pte->writable && !pte->uffd_wp && epte->writable && !epte->spp;
  te.dirty = pte->dirty && epte->dirty;
  tlb.insert(pid, fill_base, te);
  return {Status::kOk, elu.hpa_page | page_offset(gva)};
}

}  // namespace ooh::sim
