// Hypervisor tests: VM lifecycle, hypercall semantics, guest/hypervisor PML
// coexistence (the enabled_by_guest / enabled_by_hyp flags of §IV-C), and
// pre-copy live migration.
#include <gtest/gtest.h>

#include "hypervisor/hypervisor.hpp"
#include "hypervisor/migration.hpp"
#include "sim/machine.hpp"
#include "sim/mmu.hpp"
#include "sim/page_table.hpp"

namespace ooh::hv {
namespace {

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() : machine_(256 * kMiB, CostModel::unit()), hv_(machine_) {}

  /// A bare-metal guest surrogate: page table + MMU writes, no guest kernel.
  struct MiniGuest {
    MiniGuest(Vm& vm) : vm_(vm), mmu_(vm.vcpu(), vm.ept()) {}
    void map(Gva gva, Gpa gpa) { pt_.map(gva, gpa, true); }
    void write(Gva gva) {
      ASSERT_EQ(mmu_.access(1, pt_, gva, true).status, sim::Mmu::Status::kOk);
    }
    Vm& vm_;
    sim::GuestPageTable pt_;
    sim::Mmu mmu_;
  };

  sim::Machine machine_;
  Hypervisor hv_;
};

TEST_F(HypervisorTest, CreateVmWiresVcpu) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  EXPECT_EQ(vm.id(), 0u);
  EXPECT_EQ(vm.vcpu().exits(), &hv_);
  EXPECT_EQ(vm.vcpu().ept(), &vm.ept());
  Vm& vm2 = hv_.create_vm(64 * kMiB);
  EXPECT_EQ(vm2.id(), 1u);
  EXPECT_EQ(hv_.vm_count(), 2u);
}

TEST_F(HypervisorTest, EptViolationAllocatesHostFrame) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  g.map(0x10000, 0x4000);
  const u64 used_before = machine_.pmem.used_frames();
  g.write(0x10000);
  EXPECT_EQ(machine_.pmem.used_frames(), used_before + 1);
  Hpa hpa = 0;
  EXPECT_TRUE(vm.ept().translate(0x4000, hpa));
}

TEST_F(HypervisorTest, EptViolationBeyondVmMemoryThrows) {
  Vm& vm = hv_.create_vm(1 * kMiB);
  MiniGuest g(vm);
  g.map(0x10000, 64 * kMiB);  // GPA beyond the 1MiB VM
  EXPECT_THROW(
      { (void)g.mmu_.access(1, g.pt_, 0x10000, true); }, std::runtime_error);
}

TEST_F(HypervisorTest, SpmlHypercallFlowRoutesGpasToRing) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  for (int i = 0; i < 8; ++i) g.map(0x10000 + i * kPageSize, 0x4000 + i * kPageSize);

  sim::Vcpu& vcpu = vm.vcpu();
  vcpu.hypercall(sim::Hypercall::kOohInitPml, 8 * kPageSize);
  EXPECT_TRUE(vm.pml_enabled_by_guest());
  EXPECT_FALSE(vcpu.vmcs().control(sim::kEnablePml)) << "init does not start logging";

  vcpu.hypercall(sim::Hypercall::kOohEnableLogging);
  EXPECT_TRUE(vcpu.vmcs().control(sim::kEnablePml));
  for (int i = 0; i < 8; ++i) g.write(0x10000 + i * kPageSize);

  vcpu.hypercall(sim::Hypercall::kOohDisableLogging, 8 * kPageSize);
  EXPECT_FALSE(vcpu.vmcs().control(sim::kEnablePml));
  EXPECT_EQ(vm.spml_ring().size(), 8u);
  const std::vector<u64> gpas = vm.spml_ring().drain();
  EXPECT_EQ(gpas.front(), 0x4000u);

  vcpu.hypercall(sim::Hypercall::kOohDeactivatePml);
  EXPECT_FALSE(vm.pml_enabled_by_guest());
}

TEST_F(HypervisorTest, EnableLoggingWithoutInitFails) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  EXPECT_EQ(vm.vcpu().hypercall(sim::Hypercall::kOohEnableLogging), u64(-1));
  EXPECT_FALSE(vm.vcpu().vmcs().control(sim::kEnablePml));
}

TEST_F(HypervisorTest, CoexistenceBothConsumersGetDirtyPages) {
  // §IV-C item 3: guest SPML session and hypervisor migration logging run
  // simultaneously on one PML buffer; routing respects both flags.
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  for (int i = 0; i < 4; ++i) g.map(0x10000 + i * kPageSize, 0x4000 + i * kPageSize);

  hv_.enable_pml_for_hyp(vm);
  vm.vcpu().hypercall(sim::Hypercall::kOohInitPml, 4 * kPageSize);
  vm.vcpu().hypercall(sim::Hypercall::kOohEnableLogging);

  for (int i = 0; i < 4; ++i) g.write(0x10000 + i * kPageSize);
  vm.vcpu().hypercall(sim::Hypercall::kOohDisableLogging, 4 * kPageSize);

  EXPECT_EQ(vm.spml_ring().size(), 4u) << "guest ring got the GPAs";
  // PML stays armed for the hypervisor even after the guest disables.
  EXPECT_TRUE(vm.vcpu().vmcs().control(sim::kEnablePml));
  const std::vector<Gpa> harvested = hv_.harvest_hyp_dirty(vm);
  EXPECT_EQ(harvested.size(), 4u) << "hypervisor log got the same GPAs";
}

TEST_F(HypervisorTest, GuestOnlyLoggingDoesNotFillHypervisorLog) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  g.map(0x10000, 0x4000);
  vm.vcpu().hypercall(sim::Hypercall::kOohInitPml, kPageSize);
  vm.vcpu().hypercall(sim::Hypercall::kOohEnableLogging);
  g.write(0x10000);
  vm.vcpu().hypercall(sim::Hypercall::kOohDisableLogging, kPageSize);
  EXPECT_TRUE(vm.dirty_ring().empty());
  EXPECT_EQ(vm.dirty_ring().spill_size(), 0u);
}

TEST_F(HypervisorTest, HypOnlyLoggingDoesNotFillGuestRing) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  g.map(0x10000, 0x4000);
  hv_.enable_pml_for_hyp(vm);
  g.write(0x10000);
  EXPECT_EQ(hv_.harvest_hyp_dirty(vm).size(), 1u);
  EXPECT_TRUE(vm.spml_ring().empty());
}

TEST_F(HypervisorTest, IntervalResetRearmsLogging) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  g.map(0x10000, 0x4000);
  vm.vcpu().hypercall(sim::Hypercall::kOohInitPml, kPageSize);
  vm.vcpu().hypercall(sim::Hypercall::kOohEnableLogging);
  g.write(0x10000);
  vm.vcpu().hypercall(sim::Hypercall::kOohDisableLogging, kPageSize);
  EXPECT_EQ(vm.spml_ring().drain().size(), 1u);

  // Without a reset, a re-write would not re-log (dirty flag still set).
  vm.vcpu().hypercall(sim::Hypercall::kOohIntervalReset);
  vm.vcpu().hypercall(sim::Hypercall::kOohEnableLogging);
  g.write(0x10000);
  vm.vcpu().hypercall(sim::Hypercall::kOohDisableLogging, kPageSize);
  EXPECT_EQ(vm.spml_ring().drain().size(), 1u) << "page re-logged after reset";
}

TEST_F(HypervisorTest, HarvestResetsDirtySoNextRoundRelogs) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  g.map(0x10000, 0x4000);
  hv_.enable_pml_for_hyp(vm);
  g.write(0x10000);
  EXPECT_EQ(hv_.harvest_hyp_dirty(vm).size(), 1u);
  EXPECT_EQ(hv_.harvest_hyp_dirty(vm).size(), 0u) << "no new writes, no new dirt";
  g.write(0x10000);
  EXPECT_EQ(hv_.harvest_hyp_dirty(vm).size(), 1u);
}

TEST_F(HypervisorTest, MigrationConvergesOnIdleGuest) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  for (int i = 0; i < 32; ++i) g.map(0x10000 + i * kPageSize, 0x4000 + i * kPageSize);
  for (int i = 0; i < 32; ++i) g.write(0x10000 + i * kPageSize);

  MigrationEngine engine(hv_);
  int quanta = 0;
  const MigrationReport rep = engine.migrate(vm, [&] {
    // Guest dirties a shrinking set each round, then goes idle.
    if (quanta < 2) {
      for (int i = 0; i < 8 >> quanta; ++i) g.write(0x10000 + i * kPageSize);
    }
    ++quanta;
  });
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.initial_pages, 32u);
  EXPECT_GT(rep.pages_sent, rep.initial_pages) << "pre-copy resent dirty pages";
  EXPECT_LE(rep.downtime.count(), rep.total_time.count());
  EXPECT_FALSE(vm.pml_enabled_by_hyp()) << "migration tears its PML use down";
}

TEST_F(HypervisorTest, MigrationForcedStopCopyOnHotGuest) {
  Vm& vm = hv_.create_vm(64 * kMiB);
  MiniGuest g(vm);
  const int pages = 256;
  for (int i = 0; i < pages; ++i) g.map(0x10000 + i * kPageSize, 0x4000 + i * kPageSize);
  for (int i = 0; i < pages; ++i) g.write(0x10000 + i * kPageSize);

  MigrationEngine engine(hv_);
  MigrationOptions opts;
  opts.max_rounds = 3;
  opts.stop_copy_threshold_pages = 4;
  const MigrationReport rep = engine.migrate(
      vm,
      [&] {  // rewrites everything every round: never converges
        for (int i = 0; i < pages; ++i) g.write(0x10000 + i * kPageSize);
      },
      opts);
  EXPECT_FALSE(rep.converged);
  // max_rounds pre-copy rounds plus the forced stop-and-copy, which runs a
  // full harvest/drain/send round of its own and is counted as one.
  EXPECT_EQ(rep.rounds, 4u);
  EXPECT_EQ(rep.stop_copy_pages, static_cast<u64>(pages));
}

}  // namespace
}  // namespace ooh::hv
