// Core address and page types shared by every layer of the OoH stack.
//
// The simulator distinguishes the three address spaces that the paper's
// mechanisms translate between:
//   GVA (guest virtual)  -- what a guest process sees; what Trackers want.
//   GPA (guest physical) -- what Intel PML logs at the hypervisor level.
//   HPA (host physical)  -- what the machine's RAM is addressed by; only the
//                           hypervisor ever sees these (security section V).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ooh {

using Gva = std::uint64_t;  ///< Guest virtual address.
using Gpa = std::uint64_t;  ///< Guest physical address.
using Hpa = std::uint64_t;  ///< Host physical address.

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;   // 4 KiB
inline constexpr u64 kPageOffsetMask = kPageSize - 1;
inline constexpr u64 kPageMask = ~kPageOffsetMask;

/// Translation granularities of the x86-64 paging hierarchy: a leaf may sit
/// at the bottom level (4 KiB) or, PS-bit style, one or two levels up
/// (2 MiB / 1 GiB). The numeric value is the number of 9-bit radix levels
/// the leaf absorbs, so every helper below is a shift away from its 4 KiB
/// counterpart.
enum class PageGran : u8 { k4K = 0, k2M = 1, k1G = 2 };

[[nodiscard]] constexpr u64 gran_shift(PageGran g) noexcept {
  return kPageShift + u64{9} * static_cast<u64>(g);
}
[[nodiscard]] constexpr u64 gran_size(PageGran g) noexcept {
  return u64{1} << gran_shift(g);
}
[[nodiscard]] constexpr u64 gran_offset_mask(PageGran g) noexcept {
  return gran_size(g) - 1;
}
[[nodiscard]] constexpr u64 gran_mask(PageGran g) noexcept {
  return ~gran_offset_mask(g);
}
[[nodiscard]] constexpr u64 gran_floor(u64 addr, PageGran g) noexcept {
  return addr & gran_mask(g);
}
[[nodiscard]] constexpr u64 gran_index(u64 addr, PageGran g) noexcept {
  return addr >> gran_shift(g);
}
[[nodiscard]] constexpr u64 gran_offset(u64 addr, PageGran g) noexcept {
  return addr & gran_offset_mask(g);
}
/// 4 KiB pages covered by one leaf of granularity `g` (1, 512, 512^2).
[[nodiscard]] constexpr u64 gran_pages(PageGran g) noexcept {
  return u64{1} << (gran_shift(g) - kPageShift);
}
[[nodiscard]] constexpr bool is_gran_aligned(u64 addr, PageGran g) noexcept {
  return gran_offset(addr, g) == 0;
}
/// Overflow-safe round-up: saturates at the topmost `g`-aligned boundary
/// instead of wrapping when `addr` is within one granule of UINT64_MAX.
[[nodiscard]] constexpr u64 gran_ceil(u64 addr, PageGran g) noexcept {
  const u64 f = gran_floor(addr, g);
  return (f == addr || f == gran_mask(g)) ? f : f + gran_size(g);
}
[[nodiscard]] constexpr const char* gran_name(PageGran g) noexcept {
  return g == PageGran::k4K ? "4K" : (g == PageGran::k2M ? "2M" : "1G");
}

/// Number of 8-byte PML entries in one 4KiB PML buffer (SDM: 512).
inline constexpr u16 kPmlBufferEntries = 512;
/// Initial value of the PML index guest-state field (SDM: counts down).
inline constexpr u16 kPmlIndexStart = 511;

/// PML buffer entries are granularity-aligned bases, so their low bits are
/// free: the logging circuit tags each entry with the mapped granularity in
/// bits 1:0 (0 = 4K, so all-4K configurations log bit-identical entries).
inline constexpr u64 kPmlEntryGranMask = 0x3;
[[nodiscard]] constexpr u64 pml_entry_encode(u64 base, PageGran g) noexcept {
  return base | static_cast<u64>(g);
}
[[nodiscard]] constexpr u64 pml_entry_base(u64 entry) noexcept {
  return entry & ~kPmlEntryGranMask;
}
[[nodiscard]] constexpr PageGran pml_entry_gran(u64 entry) noexcept {
  return static_cast<PageGran>(entry & kPmlEntryGranMask);
}

inline constexpr u64 kKiB = u64{1} << 10;
inline constexpr u64 kMiB = u64{1} << 20;
inline constexpr u64 kGiB = u64{1} << 30;

[[nodiscard]] constexpr u64 page_floor(u64 addr) noexcept { return addr & kPageMask; }
[[nodiscard]] constexpr u64 page_ceil(u64 addr) noexcept {
  // Not `(addr + kPageSize - 1) & kPageMask`: that wraps to 0 for addresses
  // within one page of UINT64_MAX. Saturate at the topmost page boundary.
  return gran_ceil(addr, PageGran::k4K);
}
[[nodiscard]] constexpr u64 page_index(u64 addr) noexcept { return addr >> kPageShift; }
[[nodiscard]] constexpr u64 page_offset(u64 addr) noexcept { return addr & kPageOffsetMask; }
[[nodiscard]] constexpr u64 pages_for_bytes(u64 bytes) noexcept {
  return (bytes + kPageSize - 1) >> kPageShift;
}
[[nodiscard]] constexpr bool is_page_aligned(u64 addr) noexcept {
  return page_offset(addr) == 0;
}

}  // namespace ooh
