// Hardware-level tests of the PML logging circuit, VMCS shadowing rules and
// the EPML extensions, using fake exit/IRQ handlers so the mechanisms are
// observed in isolation from the hypervisor and guest kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/ept.hpp"
#include "sim/machine.hpp"
#include "sim/mmu.hpp"
#include "sim/page_table.hpp"
#include "sim/vcpu.hpp"

namespace ooh::sim {
namespace {

/// Test double: records exits, drains buffers the way the hypervisor must.
class FakeHandler final : public VmExitHandler, public GuestIrqSink {
 public:
  explicit FakeHandler(Machine& m) : m_(m) {}

  void on_pml_full(Vcpu& vcpu) override {
    ++pml_full;
    Vmcs& v = vcpu.vmcs();
    const Hpa buf = v.read(VmcsField::kPmlAddress);
    for (u64 slot = 0; slot < kPmlBufferEntries; ++slot) {
      drained_gpas.push_back(m_.pmem.read_u64(buf + slot * 8));
    }
    v.write(VmcsField::kPmlIndex, kPmlIndexStart);
  }

  void on_ept_violation(Vcpu& vcpu, Gpa gpa, bool) override {
    ++ept_violations;
    vcpu.ept()->map(page_floor(gpa), m_.pmem.alloc_frame());
  }

  u64 on_hypercall(Vcpu&, Hypercall, u64, u64) override {
    ++hypercalls;
    return 0;
  }

  void on_guest_pml_full(Vcpu& vcpu) override {
    ++self_ipis;
    Vmcs& shadow = *vcpu.shadow_vmcs();
    const Hpa buf = shadow.read(VmcsField::kGuestPmlAddress);
    for (u64 slot = 0; slot < kPmlBufferEntries; ++slot) {
      drained_gvas.push_back(m_.pmem.read_u64(buf + slot * 8));
    }
    shadow.write(VmcsField::kGuestPmlIndex, kPmlIndexStart);
  }

  Machine& m_;
  int pml_full = 0;
  int ept_violations = 0;
  int hypercalls = 0;
  int self_ipis = 0;
  std::vector<Gpa> drained_gpas;
  std::vector<Gva> drained_gvas;
};

class PmlCircuitTest : public ::testing::Test {
 protected:
  PmlCircuitTest()
      : machine_(64 * kMiB, CostModel::unit()),
        vcpu_(machine_, 0),
        handler_(machine_),
        mmu_(vcpu_, ept_) {
    vcpu_.attach(&handler_, &handler_, &ept_);
  }

  /// Identity-map `pages` guest pages at gva_base, backed by fresh frames.
  void map_range(Gva gva_base, u64 pages) {
    for (u64 i = 0; i < pages; ++i) {
      const Gpa gpa = gpa_next_;
      gpa_next_ += kPageSize;
      pt_.map(gva_base + i * kPageSize, gpa, /*writable=*/true);
      ept_.map(gpa, machine_.pmem.alloc_frame());
    }
  }

  void enable_hyp_pml() {
    pml_buf_ = machine_.pmem.alloc_frame();
    vcpu_.vmcs().write(VmcsField::kPmlAddress, pml_buf_);
    vcpu_.vmcs().write(VmcsField::kPmlIndex, kPmlIndexStart);
    vcpu_.vmcs().set_control(kEnablePml, true);
  }

  void enable_guest_pml() {
    vcpu_.vmcs().set_control(kEnableVmcsShadowing, true);
    vcpu_.vmcs().set_control(kEnableGuestPml, true);
    for (const VmcsField f : {VmcsField::kGuestPmlAddress, VmcsField::kGuestPmlIndex,
                              VmcsField::kGuestPmlEnable}) {
      vcpu_.shadow_readable().add(f);
      vcpu_.shadow_writable().add(f);
    }
    Vmcs& shadow = vcpu_.create_shadow_vmcs();
    guest_buf_gpa_ = gpa_next_;
    gpa_next_ += kPageSize;
    ept_.map(guest_buf_gpa_, machine_.pmem.alloc_frame());
    shadow.write(VmcsField::kGuestPmlIndex, kPmlIndexStart);
    vcpu_.guest_vmwrite(VmcsField::kGuestPmlAddress, guest_buf_gpa_);
    vcpu_.guest_vmwrite(VmcsField::kGuestPmlEnable, 1);
  }

  void write(Gva gva) {
    const Mmu::Result r = mmu_.access(1, pt_, gva, /*is_write=*/true);
    ASSERT_EQ(r.status, Mmu::Status::kOk);
  }

  Machine machine_;
  Vcpu vcpu_;
  FakeHandler handler_;
  Ept ept_;
  GuestPageTable pt_;
  Mmu mmu_;
  Hpa pml_buf_ = 0;
  Gpa guest_buf_gpa_ = 0;
  Gpa gpa_next_ = kPageSize;
};

TEST_F(PmlCircuitTest, LogsGpaOnEptDirtyTransitionOnly) {
  map_range(0x10000, 4);
  enable_hyp_pml();
  write(0x10000);
  write(0x10000);  // second write: dirty already set, no new log
  write(0x11000);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGpa), 2u);
  // Index counted down from 511 by two.
  EXPECT_EQ(vcpu_.vmcs().read(VmcsField::kPmlIndex), u64{kPmlIndexStart - 2});
  // Logged entries are at slots 511 and 510.
  const Gpa logged0 = machine_.pmem.read_u64(pml_buf_ + 511 * 8);
  const Gpa logged1 = machine_.pmem.read_u64(pml_buf_ + 510 * 8);
  EXPECT_EQ(logged0, pt_.pte(0x10000)->gpa_page);
  EXPECT_EQ(logged1, pt_.pte(0x11000)->gpa_page);
}

TEST_F(PmlCircuitTest, ReadsNeverLog) {
  map_range(0x10000, 2);
  enable_hyp_pml();
  const Mmu::Result r = mmu_.access(1, pt_, 0x10000, /*is_write=*/false);
  EXPECT_EQ(r.status, Mmu::Status::kOk);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGpa), 0u);
  EXPECT_FALSE(pt_.pte(0x10000)->dirty);
}

TEST_F(PmlCircuitTest, BufferFullRaisesVmExitAndContinues) {
  map_range(0x100000, 600);
  enable_hyp_pml();
  for (u64 i = 0; i < 600; ++i) write(0x100000 + i * kPageSize);
  // 512 entries fill the buffer; the 512th write lands its entry and then
  // raises the full exit (eager semantics — see PmlFullExitFiresOnExactly512thWrite).
  EXPECT_EQ(handler_.pml_full, 1);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kVmExitPmlFull), 1u);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGpa), 600u);
  EXPECT_EQ(handler_.drained_gpas.size(), kPmlBufferEntries);
}

// Exact-boundary regression (the off-by-one this fixes): hardware raises the
// page-modification-log-full exit when the write that consumes the LAST free
// slot retires — not lazily on the first write after the buffer wrapped. A
// guest that stops writing at exactly 512 dirtied pages must still see its
// buffer drained.
TEST_F(PmlCircuitTest, PmlFullExitFiresOnExactly512thWrite) {
  map_range(0x100000, kPmlBufferEntries);
  enable_hyp_pml();
  for (u64 i = 0; i < kPmlBufferEntries - 1; ++i) write(0x100000 + i * kPageSize);
  EXPECT_EQ(handler_.pml_full, 0) << "511 entries leave one free slot: no exit yet";
  EXPECT_EQ(vcpu_.vmcs().read(VmcsField::kPmlIndex), 0u);
  write(0x100000 + (kPmlBufferEntries - 1) * kPageSize);  // the 512th entry
  EXPECT_EQ(handler_.pml_full, 1) << "exit must fire when the 512th entry lands";
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kVmExitPmlFull), 1u);
  EXPECT_EQ(handler_.drained_gpas.size(), kPmlBufferEntries);
  // The 512th write's GPA is in the drained set (slot 0), and the handler's
  // index reset leaves the buffer ready for the next interval.
  EXPECT_EQ(handler_.drained_gpas[0],
            pt_.pte(0x100000 + (kPmlBufferEntries - 1) * kPageSize)->gpa_page);
  EXPECT_EQ(vcpu_.vmcs().read(VmcsField::kPmlIndex), u64{kPmlIndexStart});
}

// Same boundary for the guest-level (EPML) buffer: the self-IPI posts when
// the 512th GVA lands, so a guest dirtying exactly one buffer's worth of
// pages gets its drain without needing a 513th write.
TEST_F(PmlCircuitTest, EpmlSelfIpiFiresOnExactly512thWrite) {
  map_range(0x200000, kPmlBufferEntries);
  enable_guest_pml();
  for (u64 i = 0; i < kPmlBufferEntries - 1; ++i) write(0x200000 + i * kPageSize);
  EXPECT_EQ(handler_.self_ipis, 0) << "511 entries leave one free slot: no IPI yet";
  write(0x200000 + (kPmlBufferEntries - 1) * kPageSize);  // the 512th entry
  EXPECT_EQ(handler_.self_ipis, 1) << "self-IPI must post when the 512th entry lands";
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kSelfIpi), 1u);
  EXPECT_EQ(handler_.drained_gvas.size(), kPmlBufferEntries);
  EXPECT_EQ(handler_.drained_gvas[0], 0x200000u + (kPmlBufferEntries - 1) * kPageSize);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kVmExit), 0u)
      << "EPML's boundary handling must stay exit-free";
}

TEST_F(PmlCircuitTest, DisabledPmlLogsNothing) {
  map_range(0x10000, 8);
  for (u64 i = 0; i < 8; ++i) write(0x10000 + i * kPageSize);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGpa), 0u);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kEptDirtySet), 8u) << "dirty still set";
}

TEST_F(PmlCircuitTest, GuestPmlLogsGvaAndRaisesSelfIpi) {
  map_range(0x200000, 600);
  enable_guest_pml();
  for (u64 i = 0; i < 600; ++i) write(0x200000 + i * kPageSize);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGvaGuest), 600u);
  EXPECT_EQ(handler_.self_ipis, 1);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kSelfIpi), 1u);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kVmExit), 0u)
      << "EPML guest buffer handling must not exit to the hypervisor";
  // The guest-level buffer received GVAs, not GPAs. Logging starts at slot
  // 511 and counts down, so the first logged GVA is the last drained.
  EXPECT_EQ(handler_.drained_gvas.back(), 0x200000u);
}

TEST_F(PmlCircuitTest, DualLoggingFillsBothBuffers) {
  map_range(0x300000, 10);
  enable_hyp_pml();
  enable_guest_pml();
  for (u64 i = 0; i < 10; ++i) write(0x300000 + i * kPageSize);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGpa), 10u);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGvaGuest), 10u);
  // Hypervisor buffer holds GPAs, guest buffer holds GVAs (paper §IV-D).
  const Gpa hyp_entry = machine_.pmem.read_u64(pml_buf_ + 511 * 8);
  Hpa guest_buf_hpa = 0;
  ASSERT_TRUE(ept_.translate(guest_buf_gpa_, guest_buf_hpa));
  const Gva guest_entry = machine_.pmem.read_u64(guest_buf_hpa + 511 * 8);
  EXPECT_EQ(hyp_entry, pt_.pte(0x300000)->gpa_page);
  EXPECT_EQ(guest_entry, 0x300000u);
}

TEST_F(PmlCircuitTest, TlbCachedDirtyWriteSkipsLogging) {
  map_range(0x10000, 1);
  enable_hyp_pml();
  write(0x10000);
  const u64 misses = vcpu_.ctx().counters.get(Event::kTlbMiss);
  write(0x10000);  // served from the TLB: no walk, no log
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kTlbMiss), misses);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kTlbHit), 1u);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGpa), 1u);
}

TEST_F(PmlCircuitTest, ClearedDirtyFlagRearmsLogging) {
  map_range(0x10000, 1);
  enable_hyp_pml();
  write(0x10000);
  // Harvest: clear the EPT dirty flag and invalidate, as the hypervisor does.
  ept_.entry(pt_.pte(0x10000)->gpa_page)->dirty = false;
  vcpu_.tlb().flush_all();
  write(0x10000);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kPmlLogGpa), 2u);
}

TEST_F(PmlCircuitTest, EptViolationBackfillsAndRetries) {
  pt_.map(0x50000, 0x8000, true);  // no EPT mapping for 0x8000 yet
  write(0x50000);
  EXPECT_EQ(handler_.ept_violations, 1);
  EXPECT_EQ(vcpu_.ctx().counters.get(Event::kVmExitEptViolation), 1u);
  Hpa hpa = 0;
  EXPECT_TRUE(ept_.translate(0x8000, hpa));
}

TEST_F(PmlCircuitTest, FaultsReportedNotHandled) {
  // Unmapped GVA.
  EXPECT_EQ(mmu_.access(1, pt_, 0xdead000, true).status, Mmu::Status::kFaultNotPresent);
  // Read-only PTE.
  pt_.map(0x60000, 0x9000, /*writable=*/false);
  ept_.map(0x9000, machine_.pmem.alloc_frame());
  EXPECT_EQ(mmu_.access(1, pt_, 0x60000, true).status, Mmu::Status::kFaultNotWritable);
  EXPECT_EQ(mmu_.access(1, pt_, 0x60000, false).status, Mmu::Status::kOk)
      << "reads through RO mappings succeed";
  // uffd-wp PTE.
  pt_.map(0x70000, 0xa000, /*writable=*/true);
  pt_.pte(0x70000)->uffd_wp = true;
  ept_.map(0xa000, machine_.pmem.alloc_frame());
  EXPECT_EQ(mmu_.access(1, pt_, 0x70000, true).status, Mmu::Status::kFaultNotWritable);
}

// ---- VMCS / vCPU instruction rules ------------------------------------------------

TEST(VmcsTest, ControlBitsSetAndClear) {
  Vmcs v;
  EXPECT_FALSE(v.control(kEnablePml));
  v.set_control(kEnablePml, true);
  v.set_control(kEnableGuestPml, true);
  EXPECT_TRUE(v.control(kEnablePml));
  v.set_control(kEnablePml, false);
  EXPECT_FALSE(v.control(kEnablePml));
  EXPECT_TRUE(v.control(kEnableGuestPml));
}

TEST(VcpuTest, GuestVmreadRequiresShadowing) {
  Machine m(16 * kMiB, CostModel::unit());
  Vcpu vcpu(m, 0);
  EXPECT_THROW((void)vcpu.guest_vmread(VmcsField::kGuestPmlIndex), std::logic_error);
  EXPECT_THROW(vcpu.guest_vmwrite(VmcsField::kGuestPmlEnable, 1), std::logic_error);
}

TEST(VcpuTest, GuestAccessLimitedToPermissionBitmaps) {
  Machine m(16 * kMiB, CostModel::unit());
  Vcpu vcpu(m, 0);
  Ept ept;
  vcpu.attach(nullptr, nullptr, &ept);
  vcpu.vmcs().set_control(kEnableVmcsShadowing, true);
  (void)vcpu.create_shadow_vmcs();
  vcpu.shadow_readable().add(VmcsField::kGuestPmlIndex);
  // Readable but not writable; everything else inaccessible.
  EXPECT_NO_THROW((void)vcpu.guest_vmread(VmcsField::kGuestPmlIndex));
  EXPECT_THROW(vcpu.guest_vmwrite(VmcsField::kGuestPmlIndex, 1), std::logic_error);
  EXPECT_THROW((void)vcpu.guest_vmread(VmcsField::kPmlAddress), std::logic_error)
      << "the hypervisor-level PML buffer address must stay hidden";
  EXPECT_THROW(vcpu.guest_vmwrite(VmcsField::kSecondaryControls, 0), std::logic_error)
      << "the guest must not rewrite execution controls";
}

TEST(VcpuTest, EpmlVmwriteTranslatesGpaThroughEpt) {
  Machine m(16 * kMiB, CostModel::unit());
  Vcpu vcpu(m, 0);
  Ept ept;
  vcpu.attach(nullptr, nullptr, &ept);
  vcpu.vmcs().set_control(kEnableVmcsShadowing, true);
  Vmcs& shadow = vcpu.create_shadow_vmcs();
  for (const VmcsField f : {VmcsField::kGuestPmlAddress, VmcsField::kGuestPmlIndex,
                            VmcsField::kGuestPmlEnable}) {
    vcpu.shadow_readable().add(f);
    vcpu.shadow_writable().add(f);
  }
  const Gpa gpa = 0x7000;
  const Hpa hpa = m.pmem.alloc_frame();
  ept.map(gpa, hpa);
  vcpu.guest_vmwrite(VmcsField::kGuestPmlAddress, gpa);
  EXPECT_EQ(shadow.read(VmcsField::kGuestPmlAddress), hpa)
      << "the stored value must be the translated HPA (paper's ISA change)";
  // Unmapped GPA is rejected.
  EXPECT_THROW(vcpu.guest_vmwrite(VmcsField::kGuestPmlAddress, 0xFF000), std::runtime_error);
  // Other fields pass through untranslated.
  vcpu.guest_vmwrite(VmcsField::kGuestPmlEnable, 1);
  EXPECT_EQ(vcpu.guest_vmread(VmcsField::kGuestPmlEnable), 1u);
  EXPECT_EQ(vcpu.ctx().counters.get(Event::kVmwrite), 3u);
  EXPECT_EQ(vcpu.ctx().counters.get(Event::kVmread), 1u);
}

TEST(VcpuTest, HypercallTransitionsModes) {
  Machine m(16 * kMiB, CostModel::unit());
  Vcpu vcpu(m, 0);
  struct Handler final : VmExitHandler {
    CpuMode seen = CpuMode::kVmxNonRoot;
    void on_pml_full(Vcpu&) override {}
    void on_ept_violation(Vcpu&, Gpa, bool) override {}
    u64 on_hypercall(Vcpu& v, Hypercall, u64 a0, u64) override {
      seen = v.mode();
      return a0 + 1;
    }
  } handler;
  Ept ept;
  vcpu.attach(&handler, nullptr, &ept);
  EXPECT_EQ(vcpu.hypercall(Hypercall::kOohInitPml, 41), 42u);
  EXPECT_EQ(handler.seen, CpuMode::kVmxRoot) << "handler runs in VMX root mode";
  EXPECT_EQ(vcpu.mode(), CpuMode::kVmxNonRoot) << "vCPU resumes non-root";
  EXPECT_EQ(vcpu.ctx().counters.get(Event::kHypercall), 1u);
  EXPECT_EQ(vcpu.ctx().counters.get(Event::kVmExit), 1u);
}

}  // namespace
}  // namespace ooh::sim
