file(REMOVE_RECURSE
  "CMakeFiles/ooh_boehmgc.dir/gc.cpp.o"
  "CMakeFiles/ooh_boehmgc.dir/gc.cpp.o.d"
  "libooh_boehmgc.a"
  "libooh_boehmgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_boehmgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
