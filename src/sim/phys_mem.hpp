// Host physical memory: frame allocator plus lazily materialised contents.
//
// Frames are identified by HPA. Page *contents* are only materialised when
// something actually stores data (PML hardware writes, data-backed workloads,
// CRIU image verification); metadata-only workloads touch translations
// without allocating backing bytes, which keeps GB-scale sweeps cheap.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hpp"

namespace ooh::sim {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(u64 bytes);

  /// Allocate one free frame; throws std::bad_alloc when exhausted.
  [[nodiscard]] Hpa alloc_frame();
  void free_frame(Hpa frame);

  [[nodiscard]] u64 total_frames() const noexcept { return total_frames_; }
  [[nodiscard]] u64 used_frames() const noexcept { return used_frames_; }
  [[nodiscard]] u64 backed_frames() const noexcept { return data_.size(); }

  /// Mutable view of a frame's 4KiB contents, materialising them on demand.
  [[nodiscard]] u8* frame_data(Hpa frame);
  /// Read-only view; nullptr when the frame was never written (all-zero).
  [[nodiscard]] const u8* frame_data_if_present(Hpa frame) const;

  // Word accessors used by the PML circuit to write log entries into RAM.
  [[nodiscard]] u64 read_u64(Hpa addr) const;
  void write_u64(Hpa addr, u64 value);

 private:
  using Frame = std::array<u8, kPageSize>;
  u64 total_frames_;
  u64 used_frames_ = 0;
  u64 next_frame_ = 0;  // bump pointer, in frame numbers
  std::vector<u64> free_list_;
  std::unordered_map<u64, std::unique_ptr<Frame>> data_;  // keyed by frame number
};

}  // namespace ooh::sim
