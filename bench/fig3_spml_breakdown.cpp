// Figure 3: breakdown of SPML's collection phase into reverse mapping,
// userspace page-table walk and ring-buffer copy, vs monitored memory size.
//
// Paper's finding: reverse mapping dominates (>68% of collection on
// average) and is the reason SPML motivates the EPML hardware extension.
#include "common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Figure 3",
                      "SPML collection-phase breakdown (reverse map / PT walk / RB copy)");

  TextTable t({"memory", "collect(ms)", "revmap(ms)", "ptwalk(ms)", "rbcopy(ms)",
               "revmap(%)"});
  for (const u64 mem : bench::memory_sweep(args.full)) {
    const bench::MicroRun r = bench::run_micro(lib::Technique::kSpml, mem);
    const CostModel cm = CostModel::paper_calibrated();
    const auto& ev = r.result.events;
    const double revmap =
        cm.reverse_map_per_page_us(mem) * static_cast<double>(ev.get(Event::kReverseMapLookup));
    const double ptwalk =
        cm.pagemap_scan_us(mem) * static_cast<double>(ev.get(Event::kPagemapScan));
    const double rbcopy = cm.rb_copy_per_entry_us(mem) *
                          static_cast<double>(ev.get(Event::kRingBufFetchEntry));
    const double collect = r.result.phases.collect.count();
    t.add_row(bench::mem_label(mem),
              {collect / 1e3, revmap / 1e3, ptwalk / 1e3, rbcopy / 1e3,
               100.0 * revmap / collect},
              2);
  }
  t.print(std::cout);
  std::printf("\nShape check: reverse mapping is the bottleneck at every size.\n");
  return 0;
}
