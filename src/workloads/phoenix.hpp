// The six Phoenix (shared-memory MapReduce) applications used in the paper's
// evaluation: histogram, kmeans, matrix-multiply, pca, string-match and
// word-count. Algorithms execute for real at page granularity: inputs are
// streamed page by page, and every output/intermediate store goes through
// the simulated MMU, reproducing each app's dirty-page profile.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace ooh::wl {

/// histogram <datafile>: streams an image file, accumulating 3x256 colour
/// bins -- large read footprint, tiny dirty set.
///
/// With `data_backed = true`, setup() writes a real synthetic image and
/// run() computes the genuine histogram over its bytes (verifiable via
/// bin()); the default metadata-only mode preserves the access pattern
/// without materialising gigabytes.
class Histogram final : public Workload {
 public:
  explicit Histogram(u64 datafile_bytes, bool data_backed = false)
      : data_bytes_(page_ceil(datafile_bytes)), data_backed_(data_backed) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "histogram"; }
  [[nodiscard]] u64 footprint_bytes() const noexcept override {
    return data_bytes_ + kPageSize;
  }
  void setup(guest::Process& proc) override;
  void run(guest::Process& proc) override;

  /// Computed bin value (data-backed runs only). channel 0..2, value 0..255.
  [[nodiscard]] u64 bin(unsigned channel, unsigned value) const {
    return bins_host_.at(channel * 256 + value);
  }

 private:
  u64 data_bytes_;
  bool data_backed_;
  Gva data_ = 0;
  Gva bins_ = 0;
  std::vector<u64> bins_host_ = std::vector<u64>(3 * 256, 0);
};

/// kmeans -d D -c C -p P: iterative clustering; re-writes the assignment
/// array and centroids every iteration.
///
/// With `data_backed = true`, points get real synthetic coordinates and
/// run() performs genuine Lloyd iterations through guest memory
/// (assignment_of() / inertia() for verification).
class Kmeans final : public Workload {
 public:
  Kmeans(u64 dims, u64 clusters, u64 points, unsigned iters = 5,
         bool data_backed = false)
      : dims_(dims), clusters_(clusters), points_(points), iters_(iters),
        data_backed_(data_backed) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "kmeans"; }
  [[nodiscard]] u64 footprint_bytes() const noexcept override;
  void setup(guest::Process& proc) override;
  void run(guest::Process& proc) override;

  /// Synthetic coordinate of point p, dimension d (for host references).
  [[nodiscard]] static u32 point_value(u64 p, u64 d) noexcept;
  /// Final cluster of point p, read back from guest memory (data-backed).
  [[nodiscard]] u64 assignment_of(guest::Process& proc, u64 p);
  /// Sum of squared distances to assigned centroids after the last
  /// iteration (data-backed); Lloyd's algorithm makes this non-increasing.
  [[nodiscard]] const std::vector<double>& inertia_history() const noexcept {
    return inertia_;
  }

 private:
  u64 dims_, clusters_, points_;
  unsigned iters_;
  bool data_backed_;
  Gva points_base_ = 0, centroids_ = 0, assign_ = 0;
  std::vector<double> inertia_;
};

/// matrix-multiply N N: C = A x B over int32 matrices; writes C once.
///
/// With `data_backed = true`, A and B get real synthetic values and run()
/// computes the genuine product into C through guest memory (use element()
/// to verify); metadata mode preserves the page traffic only.
class MatrixMultiply final : public Workload {
 public:
  explicit MatrixMultiply(u64 n, bool data_backed = false)
      : n_(n), data_backed_(data_backed) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "matrix-multiply";
  }
  [[nodiscard]] u64 footprint_bytes() const noexcept override { return 3 * n_ * n_ * 4; }
  void setup(guest::Process& proc) override;
  void run(guest::Process& proc) override;

  /// C[row][col] read back from guest memory (data-backed runs only).
  [[nodiscard]] u32 element(guest::Process& proc, u64 row, u64 col) const;
  /// The synthetic inputs, for host-side verification.
  [[nodiscard]] static u32 a_value(u64 row, u64 col) noexcept;
  [[nodiscard]] static u32 b_value(u64 row, u64 col) noexcept;

 private:
  u64 n_;
  bool data_backed_;
  Gva a_ = 0, b_ = 0, c_ = 0;
};

/// pca -r R -c C: column means plus a sampled covariance block.
class Pca final : public Workload {
 public:
  Pca(u64 rows, u64 cols, u64 sample) : rows_(rows), cols_(cols), sample_(sample) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "pca"; }
  [[nodiscard]] u64 footprint_bytes() const noexcept override;
  void setup(guest::Process& proc) override;
  void run(guest::Process& proc) override;

 private:
  u64 rows_, cols_, sample_;
  Gva matrix_ = 0, means_ = 0, cov_ = 0;
};

/// string-match <datafile>: scans the file for key hashes; writes sparse
/// match records and per-chunk temporaries (GC-heavy under Boehm).
class StringMatch final : public Workload {
 public:
  explicit StringMatch(u64 datafile_bytes) : data_bytes_(page_ceil(datafile_bytes)) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "string-match"; }
  [[nodiscard]] u64 footprint_bytes() const noexcept override {
    return data_bytes_ + kMiB;
  }
  void setup(guest::Process& proc) override;
  void run(guest::Process& proc) override;

 private:
  u64 data_bytes_;
  Gva data_ = 0, matches_ = 0;
  u64 match_cursor_ = 0;
};

/// word-count <datafile>: streams words into a hash table -- writes spread
/// across a table roughly half the input size.
///
/// With `data_backed = true`, setup() writes real synthetic text and run()
/// tokenises it for real, bumping per-word counters in the guest table
/// (verify via total_words()); metadata mode preserves the write scatter.
class WordCount final : public Workload {
 public:
  explicit WordCount(u64 datafile_bytes, bool data_backed = false)
      : data_bytes_(page_ceil(datafile_bytes)),
        table_bytes_(page_ceil(datafile_bytes / 2)),
        data_backed_(data_backed) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "word-count"; }
  [[nodiscard]] u64 footprint_bytes() const noexcept override {
    return data_bytes_ + table_bytes_;
  }
  void setup(guest::Process& proc) override;
  void run(guest::Process& proc) override;

  /// Words counted (data-backed runs only).
  [[nodiscard]] u64 total_words() const noexcept { return total_words_; }
  /// The synthetic text, for host-side reference counting.
  [[nodiscard]] static std::vector<u8> synth_text(u64 bytes);

 private:
  u64 data_bytes_, table_bytes_;
  bool data_backed_;
  Gva data_ = 0, table_ = 0;
  u64 total_words_ = 0;
};

}  // namespace ooh::wl
