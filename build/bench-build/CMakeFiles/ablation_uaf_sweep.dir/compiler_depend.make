# Empty compiler generated dependencies file for ablation_uaf_sweep.
# This may be replaced when dependencies are built.
