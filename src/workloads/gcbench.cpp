#include "workloads/gcbench.hpp"

#include <stdexcept>

#include "trackers/boehmgc/gc.hpp"

namespace ooh::wl {

u64 GcBench::footprint_bytes() const noexcept {
  // Long-lived tree + array, doubled for the garbage resident between
  // collections (Boehm grows the heap to ~2x the live set).
  return 2 * (tree_size(lived_depth_) * 48 + array_len_ * 8);
}

Gva GcBench::make_tree_top_down(guest::Process& proc, int depth) {
  gc::GcHeap& heap = *gc();
  const Gva node = heap.alloc(2, 16);
  if (depth > 0) {
    // Classic GCBench Populate(): allocate parent first, children after.
    // The local root keeps the half-built parent alive across the child
    // allocations (Boehm would find it on the stack).
    gc::GcHeap::Local live(heap, node);
    heap.write_ref(node, 0, make_tree_top_down(proc, depth - 1));
    heap.write_ref(node, 1, make_tree_top_down(proc, depth - 1));
  }
  return node;
}

Gva GcBench::make_tree_bottom_up(guest::Process& proc, int depth) {
  gc::GcHeap& heap = *gc();
  if (depth == 0) return heap.alloc(2, 16);
  const Gva left = make_tree_bottom_up(proc, depth - 1);
  gc::GcHeap::Local keep_left(heap, left);
  const Gva right = make_tree_bottom_up(proc, depth - 1);
  gc::GcHeap::Local keep_right(heap, right);
  const Gva node = heap.alloc(2, 16);  // MakeTree(): children first
  heap.write_ref(node, 0, left);
  heap.write_ref(node, 1, right);
  return node;
}

void GcBench::run(guest::Process& proc) {
  if (gc() == nullptr) throw std::logic_error("GCBench requires an attached GcHeap");
  gc::GcHeap& heap = *gc();

  // Stretch the heap with a big tree, then drop it.
  (void)make_tree_top_down(proc, stretch_depth_);

  // Long-lived structures that survive every later collection.
  const Gva long_lived = make_tree_top_down(proc, lived_depth_);
  heap.add_root(long_lived);
  const Gva array = heap.alloc(0, array_len_ * 8);
  heap.add_root(array);
  for (u64 i = 0; i < array_len_; i += 8) {
    heap.write_data(array, i * 8, i);  // d[i] = 1.0/i, every 8th element
  }

  // Churn: short-lived trees of increasing depth, top-down and bottom-up.
  for (int depth = kMinDepth; depth <= lived_depth_; depth += 2) {
    u64 iters = tree_size(stretch_depth_) / tree_size(depth) / work_divisor_;
    iters = std::max<u64>(1, iters);
    for (u64 i = 0; i < iters; ++i) {
      (void)make_tree_top_down(proc, depth);
      (void)make_tree_bottom_up(proc, depth);
    }
  }

  heap.remove_root(long_lived);
  heap.remove_root(array);
}

}  // namespace ooh::wl
