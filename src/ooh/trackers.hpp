// The five DirtyTracker backends (paper §III and §IV).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "ooh/tracker.hpp"

namespace ooh::guest {
class OohModule;
}

namespace ooh::lib {

/// /proc/PID/{clear_refs,pagemap} soft-dirty tracking -- the default in both
/// CRIU and Boehm GC (§III-B).
class ProcTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kProc; }

 protected:
  void do_init() override {}
  void do_begin_interval() override;
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override {}
};

/// userfaultfd write-protect tracking (§III-A). Dirty addresses accumulate
/// synchronously while the Tracked faults; collect() just takes the set.
class UfdTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kUfd; }

 protected:
  void do_init() override;
  void do_begin_interval() override;
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override;

 private:
  std::unordered_set<Gva> pending_;
  bool first_interval_ = true;
};

/// Shadow PML (§IV-C): the hypervisor emulates per-process PML via
/// enable/disable_logging hypercalls; the library reverse-maps logged GPAs
/// to GVAs by parsing the page table through /proc -- the measured
/// bottleneck (Fig. 3).
class SpmlTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kSpml; }
  [[nodiscard]] u64 dropped() const override;

 protected:
  void do_init() override;
  void do_begin_interval() override {}
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override;

 private:
  guest::OohModule* module_ = nullptr;
  /// GPA -> GVA index built by reverse mapping. The paper's Boehm
  /// integration reuses first-cycle addresses (§VI-E footnote), so lookups
  /// only pay M16/M17 for GPAs not yet in the cache.
  std::unordered_map<Gpa, Gva> rmap_cache_;
};

/// Extended PML (§IV-D): the hardware logs GVAs straight into a guest-level
/// buffer; collection is a plain ring-buffer read.
class EpmlTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kEpml; }
  [[nodiscard]] u64 dropped() const override;

 protected:
  void do_init() override;
  void do_begin_interval() override {}
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override;

 private:
  guest::OohModule* module_ = nullptr;
};

/// The hypothetical zero-cost technique of §VI-B ("oracle"): perfect dirty
/// information with E(C_oracle) = 0. Reads the simulator's ground truth.
class OracleTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override {
    return Technique::kOracle;
  }

 protected:
  void do_init() override {}
  void do_begin_interval() override;
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override {}

 private:
  u64 baseline_seq_ = 0;  ///< write sequence at the start of the interval.
};

}  // namespace ooh::lib
