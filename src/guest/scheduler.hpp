// Cooperative single-vCPU scheduler for the guest OS.
//
// The paper's methodology (§VI-B) runs Tracker and Tracked time-sharing one
// dedicated CPU, so every cycle the Tracker spends directly delays the
// Tracked. We model that with one virtual clock and explicit switch points:
//   * quantum expiries on the Tracked's execution path (timer ticks), and
//   * service windows in which Tracker code runs (collection rounds).
// Schedule-in/out hooks are how the OoH module gets per-process PML
// granularity (challenge C2): it toggles logging at every switch.
#pragma once

#include <functional>
#include <vector>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "sim/exec_context.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::guest {

class SchedHook {
 public:
  virtual ~SchedHook() = default;
  virtual void on_schedule_in(u32 pid) = 0;
  virtual void on_schedule_out(u32 pid) = 0;
};

class Scheduler {
 public:
  explicit Scheduler(sim::ExecContext& ctx) : ctx_(ctx) {}

  void set_quantum(VirtDuration q) noexcept { quantum_ = q; }
  [[nodiscard]] VirtDuration quantum() const noexcept { return quantum_; }

  void add_hook(SchedHook* h) { hooks_.push_back(h); }
  void remove_hook(SchedHook* h);

  /// Install a service callback that preempts the running process every
  /// `period` of virtual time (the Tracker's collection cadence).
  void set_periodic(VirtDuration period, std::function<void()> fn);
  void clear_periodic();

  /// Called from the memory-access path of the running process; fires
  /// quantum ticks and periodic service when their deadlines pass.
  void on_progress(u32 pid);

  /// Run `fn` as a different task: schedule the current process out (firing
  /// hooks, charging context switches), run, schedule it back in.
  template <typename Fn>
  void run_service(u32 pid, Fn&& fn) {
    if (in_service_) {  // nested service calls run inline
      fn();
      return;
    }
    in_service_ = true;
    switch_out(pid);
    fn();
    switch_in(pid);
    in_service_ = false;
    rearm_deadlines();
  }

  [[nodiscard]] u64 quantum_switches() const noexcept { return quantum_switches_; }
  [[nodiscard]] bool in_service() const noexcept { return in_service_; }

  /// Explicit process lifecycle around a workload run.
  void enter_process(u32 pid);
  void exit_process(u32 pid);

 private:
  friend struct ooh::snapshot::Access;

  void switch_out(u32 pid);
  void switch_in(u32 pid);
  void rearm_deadlines();
  void fire_quantum(u32 pid);

  sim::ExecContext& ctx_;
  std::vector<SchedHook*> hooks_;
  VirtDuration quantum_{secs(1.0)};
  VirtDuration next_quantum_{secs(1.0)};
  std::function<void()> periodic_;
  VirtDuration period_{0};
  VirtDuration next_periodic_{0};
  bool in_service_ = false;
  u64 quantum_switches_ = 0;
};

}  // namespace ooh::guest
