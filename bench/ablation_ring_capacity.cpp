// Ablation: per-process ring capacity vs overflow (dropped entries).
//
// The OoH module's per-process ring decouples the hardware logging rate
// from the Tracker's fetch rate. If the Tracker lags and the ring is too
// small, entries drop and the reported dirty set is incomplete -- the
// module counts drops so the Tracker can tell (evaluation question 3).
#include "common.hpp"
#include "guest/ooh_module.hpp"

using namespace ooh;

namespace {

struct RingRun {
  u64 dropped = 0;
  double capture_pct = 0.0;
};

RingRun run(std::size_t ring_entries, u64 pages) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(pages * kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.set_ring_entries(ring_entries);
  mod.track(proc);

  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());

  const std::vector<u64> got = mod.fetch(proc);
  RingRun out;
  out.dropped = mod.dropped(proc);
  out.capture_pct = 100.0 * static_cast<double>(got.size()) / static_cast<double>(pages);
  mod.untrack(proc);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation: ring capacity",
                      "EPML capture vs per-process ring size (Tracker never fetching)");
  const u64 pages = args.full ? 65536 : 8192;

  TextTable t({"ring entries", "dropped", "capture (%)"});
  for (const std::size_t cap : {std::size_t{1} << 10, std::size_t{1} << 12,
                                std::size_t{1} << 13, std::size_t{1} << 14,
                                std::size_t{1} << 20}) {
    const RingRun r = run(cap, pages);
    t.add_row(std::to_string(cap), {static_cast<double>(r.dropped), r.capture_pct}, 1);
  }
  t.print(std::cout);
  std::printf("\nShape check: capture is exact once the ring covers the interval's\n"
              "dirty set; smaller rings drop entries and *report* the loss.\n");
  return 0;
}
