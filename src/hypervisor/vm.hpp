// A virtual machine as the hypervisor sees it: EPT, N vCPUs (SMP guests;
// N=1 reproduces the paper's evaluation setup bit-for-bit), per-vCPU
// hypervisor PML state + dirty rings, and the kPmlDrain consumers that let
// the guest's OoH use of PML and the hypervisor's own use (live migration,
// WSS sampling) share the buffers without stepping on each other (§IV-C,
// generalized from two flags to N registered consumers).
//
// Everything that used to be one-per-VM session state (PML buffer, SPML
// ring, interval log, tracked-size hint) is one-per-vCPU: a hypercall or
// drain always operates on the session of the vCPU it arrived on, exactly
// like KVM's per-vCPU dirty rings. The EPT, SPP table and guest physical
// address space stay VM-global.
#pragma once

#include <memory>
#include <vector>

#include "base/ring_buffer.hpp"
#include "base/types.hpp"
#include "hypervisor/dirty_ring.hpp"
#include "sim/ept.hpp"
#include "sim/page_track.hpp"
#include "sim/spp.hpp"
#include "sim/vcpu.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::hv {

class Vm;

/// kPmlDrain consumer: GPAs drained from a vCPU's PML buffer are pushed to
/// that vCPU's dirty ring for the hypervisor's own use (live-migration
/// pre-copy rounds, WSS harvests). Registered while a hypervisor logging
/// session is active — the generalization of the paper's enabled_by_hyp
/// flag. A full ring takes the loss-free spill path (Event::kDirtyRingFull),
/// which is also the kDirtyRingFull fault-injection site.
class HypDirtyLogConsumer final : public sim::PageTrackNotifier {
 public:
  explicit HypDirtyLogConsumer(Vm& vm) noexcept : vm_(vm) {}
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;

 private:
  Vm& vm_;
};

/// kPmlDrain consumer: GPAs drained from a vCPU's PML buffer are copied into
/// that vCPU's guest-shared SPML ring (and the interval log used to re-arm
/// dirty flags at the interval boundary). Registered while a guest SPML
/// session is active on that vCPU (enabled_by_guest); its per-consumer
/// enable state is the paper's guest_logging_on — set while the tracked
/// process is scheduled in.
class SpmlRingConsumer final : public sim::PageTrackNotifier {
 public:
  explicit SpmlRingConsumer(Vm& vm) noexcept : vm_(vm) {}
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;

 private:
  Vm& vm_;
};

class Vm {
 public:
  Vm(sim::Machine& machine, u32 id, u64 mem_bytes, std::size_t spml_ring_entries,
     unsigned vcpus = 1);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] u32 id() const noexcept { return id_; }
  [[nodiscard]] u64 mem_bytes() const noexcept { return mem_bytes_; }
  [[nodiscard]] sim::Ept& ept() noexcept { return ept_; }

  [[nodiscard]] unsigned vcpu_count() const noexcept {
    return static_cast<unsigned>(cpus_.size());
  }
  [[nodiscard]] sim::Vcpu& vcpu(unsigned cpu) noexcept { return *cpus_[cpu]->vcpu; }
  /// Single-vCPU shorthand for vCPU 0 (the BSP). Tests and single-threaded
  /// call sites that genuinely mean "the one vCPU of an N=1 VM" keep using
  /// it; SMP-aware code indexes vcpu(i) explicitly.
  [[nodiscard]] sim::Vcpu& vcpu() noexcept { return *cpus_[0]->vcpu; }

  /// The BSP's execution context (vCPU 0's clock and counters). With one
  /// vCPU this is "the VM's timeline", the paper's evaluation setup; under
  /// SMP it is only vCPU 0's share — use vcpu(i).ctx() for the others.
  [[nodiscard]] sim::ExecContext& ctx() noexcept { return cpus_[0]->vcpu->ctx(); }

  /// vCPU 0's page-track notifier chain (shorthand; each vCPU owns its own
  /// chain — see sim/page_track.hpp).
  [[nodiscard]] sim::WriteTrackRegistry& track() noexcept {
    return cpus_[0]->vcpu->track_registry();
  }
  [[nodiscard]] sim::WriteTrackRegistry& track(unsigned cpu) noexcept {
    return cpus_[cpu]->vcpu->track_registry();
  }

  /// The ring shared between hypervisor and guest OS (SPML design), one per
  /// vCPU session. It is allocated in the guest's address space
  /// conceptually; the hypervisor only writes logged GPAs into it (§V
  /// isolation argument).
  [[nodiscard]] RingBuffer& spml_ring(unsigned cpu = 0) noexcept {
    return cpus_[cpu]->spml_ring;
  }

  /// The hypervisor's per-vCPU dirty ring: the "larger buffer" of the
  /// single-vCPU design, now harvestable concurrently with guest execution.
  [[nodiscard]] DirtyRing& dirty_ring(unsigned cpu = 0) noexcept {
    return cpus_[cpu]->dirty_ring;
  }

  /// GPAs routed to the guest ring since the last SPML interval reset on
  /// this vCPU; used to re-arm their dirty flags at the interval boundary.
  [[nodiscard]] std::vector<Gpa>& spml_interval_log(unsigned cpu = 0) noexcept {
    return cpus_[cpu]->spml_interval_log;
  }

  /// Sub-page permission table (Intel SPP); consulted by the page-walk
  /// circuit for EPT entries flagged spp. VM-global like the EPT.
  [[nodiscard]] sim::SppTable& spp_table() noexcept { return spp_table_; }

  // -- kPmlDrain consumers -----------------------------------------------------
  [[nodiscard]] sim::PageTrackNotifier& hyp_drain_consumer() noexcept {
    return hyp_drain_consumer_;
  }
  [[nodiscard]] sim::PageTrackNotifier& spml_drain_consumer() noexcept {
    return spml_drain_consumer_;
  }

  // The §IV-C coexistence state, derived from the per-vCPU drain chain
  // instead of stored as bespoke two-party flags:
  //   enabled_by_hyp   == the hypervisor's consumer is registered;
  //   enabled_by_guest == the guest's SPML consumer is registered;
  //   guest_logging_on == the SPML consumer's per-consumer enable state.
  [[nodiscard]] bool pml_enabled_by_hyp(unsigned cpu = 0) noexcept {
    return track(cpu).registered(sim::TrackLayer::kPmlDrain, &hyp_drain_consumer_);
  }
  [[nodiscard]] bool pml_enabled_by_guest(unsigned cpu = 0) noexcept {
    return track(cpu).registered(sim::TrackLayer::kPmlDrain, &spml_drain_consumer_);
  }
  [[nodiscard]] bool guest_logging_on(unsigned cpu = 0) noexcept {
    return track(cpu).enabled(sim::TrackLayer::kPmlDrain, &spml_drain_consumer_);
  }

  // -- per-vCPU PML session state ---------------------------------------------
  /// Hypervisor-level 4KiB PML buffer (HPA) of vCPU `cpu`; 0 = unallocated.
  [[nodiscard]] Hpa& pml_buffer(unsigned cpu = 0) noexcept {
    return cpus_[cpu]->pml_buffer;
  }
  /// Tracked process size on this vCPU's SPML session, for M14 scaling.
  [[nodiscard]] u64& spml_tracked_mem_bytes(unsigned cpu = 0) noexcept {
    return cpus_[cpu]->spml_tracked_mem_bytes;
  }

  /// GPAs popped by a *concurrent* userspace drain since the last quiescent
  /// harvest: their EPT dirty flags are still set, so the accounting oracle
  /// (ACC-1) and the next harvest's reset both need the record. Written by
  /// the single drainer thread, read/cleared only at quiescent points.
  [[nodiscard]] std::vector<Gpa>& drained_log(unsigned cpu = 0) noexcept {
    return cpus_[cpu]->drained_log;
  }

  // -- translation granularity policy -----------------------------------------
  /// When set, EPT violations back-fill 2 MiB PS-bit leaves where the
  /// region allows it (host THP-style). Off by default: the all-4 KiB
  /// configuration is the paper's evaluation setup and stays bit-identical.
  void set_ept_huge(bool on) noexcept { ept_huge_ = on; }
  [[nodiscard]] bool ept_huge() const noexcept { return ept_huge_; }

  /// When set (the default), enable_pml_for_hyp shatters every huge EPT
  /// leaf to 4 KiB before logging starts — KVM's eager page splitting — so
  /// PML reports single-page precision. Clear it to keep huge leaves and
  /// observe the 2 MiB-granular log entries instead.
  void set_eager_split(bool on) noexcept { eager_split_ = on; }
  [[nodiscard]] bool eager_split() const noexcept { return eager_split_; }

  /// True while a hypervisor logging session that eager-split is running:
  /// violations must back-fill at 4 KiB and no huge leaf may exist
  /// (invariant SPLIT-1).
  void set_eager_split_active(bool on) noexcept { eager_split_active_ = on; }
  [[nodiscard]] bool eager_split_active() const noexcept {
    return eager_split_active_;
  }

  // -- kDirtyRingFull fault plumbing ------------------------------------------
  // A ring-full fault fired by the drain consumer settles only once the
  // in-flight PML drain resets its index; the drain loop polls this flag to
  // run the FAULT-2 audit at the right instant (see docs/invariants.md).
  void note_ring_fault(unsigned cpu) noexcept { cpus_[cpu]->ring_fault_pending = true; }
  [[nodiscard]] bool take_ring_fault(unsigned cpu) noexcept {
    const bool pending = cpus_[cpu]->ring_fault_pending;
    cpus_[cpu]->ring_fault_pending = false;
    return pending;
  }

 private:
  friend struct ooh::snapshot::Access;

  struct CpuState {
    explicit CpuState(std::size_t spml_ring_entries) : spml_ring(spml_ring_entries) {}
    std::unique_ptr<sim::Vcpu> vcpu;
    DirtyRing dirty_ring;
    RingBuffer spml_ring;
    std::vector<Gpa> spml_interval_log;
    std::vector<Gpa> drained_log;
    Hpa pml_buffer = 0;
    u64 spml_tracked_mem_bytes = 0;
    bool ring_fault_pending = false;
  };

  u32 id_;
  u64 mem_bytes_;
  sim::Ept ept_;
  bool ept_huge_ = false;
  bool eager_split_ = true;
  bool eager_split_active_ = false;
  std::vector<std::unique_ptr<CpuState>> cpus_;
  sim::SppTable spp_table_;
  HypDirtyLogConsumer hyp_drain_consumer_{*this};
  SpmlRingConsumer spml_drain_consumer_{*this};
};

}  // namespace ooh::hv
