#include "sim/mmu.hpp"

#include <stdexcept>

#include "sim/exec_context.hpp"
#include "sim/vcpu.hpp"

namespace ooh::sim {

Mmu::Mmu(Vcpu& vcpu, Ept& ept, SppTable* spp)
    : ctx_(vcpu.ctx()), vcpu_(vcpu), ept_(ept), spp_(spp) {}

bool Mmu::read_log_active() const noexcept {
  const Vmcs& v = vcpu_.vmcs();
  return v.control(kEnablePml) && v.control(kEnablePmlReadLog) &&
         v.read(VmcsField::kPmlAddress) != 0;
}

bool Mmu::hyp_pml_active() const noexcept {
  const Vmcs& v = vcpu_.vmcs();
  return v.control(kEnablePml) && v.read(VmcsField::kPmlAddress) != 0;
}

bool Mmu::guest_pml_active() const noexcept {
  const Vmcs& v = vcpu_.vmcs();
  if (!v.control(kEnableGuestPml)) return false;
  const Vmcs* shadow = const_cast<Vcpu&>(vcpu_).shadow_vmcs();
  return shadow != nullptr && shadow->read(VmcsField::kGuestPmlEnable) != 0 &&
         shadow->read(VmcsField::kGuestPmlAddress) != 0;
}

void Mmu::log_gpa(Gpa gpa_page) {
  Vmcs& v = vcpu_.vmcs();
  u16 idx = static_cast<u16>(v.read(VmcsField::kPmlIndex));
  if (idx > kPmlIndexStart) {
    // Index underflowed past entry 0: PML-full VM-exit before logging (SDM).
    vcpu_.vmexit_to_root(Event::kVmExitPmlFull,
                         [&] { vcpu_.exits()->on_pml_full(vcpu_); });
    idx = static_cast<u16>(v.read(VmcsField::kPmlIndex));
    if (idx > kPmlIndexStart) {
      throw std::logic_error("PML-full handler did not reset the PML index");
    }
  }
  const Hpa buf = v.read(VmcsField::kPmlAddress);
  ctx_.pmem.write_u64(buf + u64{idx} * 8, gpa_page);
  v.write(VmcsField::kPmlIndex, static_cast<u16>(idx - 1));  // wraps past 0
  ctx_.count(Event::kPmlLogGpa);
  ctx_.charge_ns(ctx_.cost.pml_log_ns);
}

void Mmu::log_gva(Gva gva_page) {
  Vmcs& shadow = *vcpu_.shadow_vmcs();
  u16 idx = static_cast<u16>(shadow.read(VmcsField::kGuestPmlIndex));
  if (idx > kPmlIndexStart) {
    // Guest-level buffer full: posted self-IPI into the OoH module; the
    // module drains the buffer and resets the index. No VM-exit (EPML).
    ctx_.count(Event::kSelfIpi);
    ctx_.charge_us(ctx_.cost.self_ipi_us + ctx_.cost.irq_dispatch_us);
    vcpu_.irq_sink()->on_guest_pml_full(vcpu_);
    idx = static_cast<u16>(shadow.read(VmcsField::kGuestPmlIndex));
    if (idx > kPmlIndexStart) {
      throw std::logic_error("self-IPI handler did not reset the guest PML index");
    }
  }
  const Hpa buf = shadow.read(VmcsField::kGuestPmlAddress);
  ctx_.pmem.write_u64(buf + u64{idx} * 8, gva_page);
  shadow.write(VmcsField::kGuestPmlIndex, static_cast<u16>(idx - 1));
  ctx_.count(Event::kPmlLogGvaGuest);
  ctx_.charge_ns(ctx_.cost.pml_log_ns);
}

Mmu::Result Mmu::access(u32 pid, GuestPageTable& pt, Gva gva, bool is_write) {
  const Gva gva_page = page_floor(gva);
  Tlb& tlb = vcpu_.tlb();

  if (TlbEntry* te = tlb.lookup(pid, gva_page); te != nullptr) {
    // A cached translation can serve reads always, and writes when the
    // dirty state is already established (no flag transition => no logging).
    if (!is_write || (te->writable && te->dirty)) {
      ctx_.count(Event::kTlbHit);
      ctx_.charge_ns(ctx_.cost.tlb_hit_ns);
      return {Status::kOk, te->hpa_page | page_offset(gva)};
    }
    // Write through a clean/RO cached entry: hardware re-walks to set flags.
    tlb.invalidate_page(pid, gva_page);
  }
  ctx_.count(Event::kTlbMiss);

  // ---- guest page-table walk ----------------------------------------------
  ctx_.count(Event::kGuestPtWalk);
  ctx_.charge_ns(ctx_.cost.guest_walk_ns);
  Pte* pte = pt.pte(gva_page);
  if (pte == nullptr || !pte->present) return {Status::kFaultNotPresent, 0};
  if (is_write && (!pte->writable || pte->uffd_wp)) return {Status::kFaultNotWritable, 0};
  pte->accessed = true;
  if (is_write && !pte->dirty) {
    pte->dirty = true;
    if (guest_pml_active()) log_gva(gva_page);
  }
  const Gpa gpa = pte->gpa_page | page_offset(gva);

  // ---- EPT walk ------------------------------------------------------------
  ctx_.count(Event::kEptWalk);
  ctx_.charge_ns(ctx_.cost.ept_walk_ns);
  EptEntry* epte = ept_.entry(gpa);
  if (epte == nullptr || !epte->present) {
    // EPT violation: exit to the hypervisor, which back-fills the mapping.
    ctx_.charge_us(ctx_.cost.ept_violation_us);
    vcpu_.vmexit_to_root(Event::kVmExitEptViolation, [&] {
      vcpu_.exits()->on_ept_violation(vcpu_, gpa, is_write);
    });
    epte = ept_.entry(gpa);
    if (epte == nullptr || !epte->present) {
      throw std::logic_error("EPT violation handler did not map the GPA");
    }
  }
  // SPP: writes to a sub-page whose permission bit is clear raise an
  // SPP-violation exit before any dirty state changes (guard semantics).
  if (is_write && epte->spp && spp_ != nullptr && !spp_->write_allowed(gpa)) {
    ctx_.count(Event::kSppViolation);
    ctx_.count(Event::kVmExit);
    ctx_.charge_us(ctx_.cost.spp_violation_us);
    return {Status::kFaultSubPage, 0};
  }

  if (!epte->accessed) {
    epte->accessed = true;
    // Read-logging extension: accessed-flag transitions log the GPA so the
    // hypervisor can estimate the working set (touched pages, not just
    // dirtied ones).
    if (read_log_active()) {
      ctx_.count(Event::kPmlLogRead);
      log_gpa(pte->gpa_page);
    }
  }
  if (is_write && !epte->dirty) {
    epte->dirty = true;
    ctx_.count(Event::kEptDirtySet);
    if (hyp_pml_active() && !read_log_active()) log_gpa(pte->gpa_page);
  }

  TlbEntry te;
  te.gpa_page = pte->gpa_page;
  te.hpa_page = epte->hpa_page;
  // SPP pages never cache write permission: every store must re-consult the
  // sub-page mask.
  te.writable = pte->writable && !pte->uffd_wp && epte->writable && !epte->spp;
  te.dirty = pte->dirty && epte->dirty;
  tlb.insert(pid, gva_page, te);
  return {Status::kOk, epte->hpa_page | page_offset(gva)};
}

}  // namespace ooh::sim
