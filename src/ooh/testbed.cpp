#include "ooh/testbed.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "base/sync.hpp"

namespace ooh::lib {

TestBed::TestBed(const TestBedOptions& opts)
    : vcpus_per_vm_(opts.vcpus_per_vm == 0 ? 1 : opts.vcpus_per_vm) {
  machine_ = std::make_unique<sim::Machine>(opts.host_mem_bytes, opts.cost);
  hypervisor_ = std::make_unique<hv::Hypervisor>(*machine_);
  kernels_.reserve(opts.tenant_vms);
  for (unsigned i = 0; i < opts.tenant_vms; ++i) {
    hv::Vm& vm =
        hypervisor_->create_vm(opts.vm_mem_bytes, 1u << 20, vcpus_per_vm_);
    // SMP guests run vCPU threads that fault and map concurrently inside one
    // VM, so the shared EPT (and its mutable walk caches) must serialize.
    if (vcpus_per_vm_ > 1) vm.ept().set_concurrent(true);
    vm.set_ept_huge(opts.ept_huge);
    vm.set_eager_split(opts.eager_split);
    kernels_.push_back(std::make_unique<guest::GuestKernel>(*hypervisor_, vm));
    kernels_.back()->set_quantum_all(opts.sched_quantum);
  }
  checker_ = std::make_unique<check::CoherenceChecker>(*machine_, *hypervisor_);
  for (unsigned i = 0; i < opts.tenant_vms; ++i) {
    checker_->attach_kernel(kernels_[i]->vm().id(), *kernels_[i]);
  }
  if (check::kCoherenceAuditsEnabled) {
    // Lower layers (run_tracked collection intervals, migration rounds)
    // request audits through the hypervisor's hook; the hook is per-VM so
    // tenant worker threads can audit their own timelines concurrently.
    hypervisor_->set_audit_hook(
        [this](u32 vm_index) { checker_->audit_vm(vm_index); });
  }
  if (!opts.fault_plan.empty()) {
    // One injector per tenant vCPU: all fault state lives on that vCPU's own
    // timeline, so injected schedules replay deterministically even under
    // the worker pool. Every fired fault is chased by a full audit of the
    // blast-site VM (the FAULT-2 discipline). Layout is tenant-major so
    // fault_injector(i) keeps naming tenant i's BSP injector.
    injectors_.reserve(std::size_t{opts.tenant_vms} * vcpus_per_vm_);
    for (unsigned i = 0; i < opts.tenant_vms; ++i) {
      const u32 vm_index = kernels_[i]->vm().id();
      for (unsigned cpu = 0; cpu < vcpus_per_vm_; ++cpu) {
        injectors_.push_back(
            std::make_unique<sim::fault::FaultInjector>(opts.fault_plan));
        if (check::kCoherenceAuditsEnabled) {
          injectors_.back()->set_post_fault_hook(
              [this, vm_index] { checker_->audit_vm(vm_index); });
        }
        kernels_[i]->vm().vcpu(cpu).ctx().faults = injectors_.back().get();
      }
    }
  }
}

void TestBed::audit() {
  if (check::kCoherenceAuditsEnabled) checker_->audit_all();
}

snapshot::MachineSnapshot TestBed::save() {
  std::vector<guest::GuestKernel*> kernels;
  kernels.reserve(kernels_.size());
  for (const auto& k : kernels_) kernels.push_back(k.get());
  return snapshot::save_machine(*machine_, *hypervisor_, kernels);
}

void TestBed::restore(const snapshot::MachineSnapshot& snap) {
  std::vector<guest::GuestKernel*> kernels;
  kernels.reserve(kernels_.size());
  for (const auto& k : kernels_) kernels.push_back(k.get());
  snapshot::restore_machine(snap, *machine_, *hypervisor_, kernels);
  // The restore rewound every vCPU's virtual clock; without this reset the
  // next CLK-1 audit would flag the rewind as a monotonicity bug.
  checker_->reset_clock_history();
}

unsigned TestBed::default_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 2;
}

void TestBed::run_tenants(const std::function<void(unsigned)>& body, unsigned threads) {
  const unsigned n = tenant_count();
  if (threads == 0) threads = default_workers();
  const unsigned workers = std::min(threads, n);
  if (workers <= 1) {
    for (unsigned i = 0; i < n; ++i) body(i);
    audit();
    return;
  }

  // Worker pool: each worker claims whole VM indices off a shared cursor,
  // so one timeline runs start-to-finish on a single thread. Tenants share
  // no mutable state except the machine's sharded frame allocator, which
  // is why this needs no further synchronisation.
  // relaxed-ok below: the cursor only partitions indices; each tenant's
  // state is touched by exactly one worker, and join() publishes it.
  sync::Atomic<unsigned> cursor{0};
  sync::Mutex err_mu;
  std::exception_ptr first_error;
  const auto worker = [&] {
    for (;;) {
      // relaxed-ok: the cursor only partitions indices between workers.
      const unsigned i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        sync::SpinGuard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  // Global passes (frame-ownership exclusivity) walk every VM's EPT, so
  // they only run once the workers have joined.
  audit();
}

}  // namespace ooh::lib
