#include "ooh/tracker.hpp"

#include <algorithm>

#include "base/clock.hpp"

namespace ooh::lib {

std::string_view technique_name(Technique t) noexcept {
  switch (t) {
    case Technique::kProc: return "/proc";
    case Technique::kUfd: return "ufd";
    case Technique::kSpml: return "SPML";
    case Technique::kEpml: return "EPML";
    case Technique::kWp: return "wp";
    case Technique::kOracle: return "oracle";
  }
  return "?";
}

void DirtyTracker::init() {
  VirtualClock::Scope s(kernel_.ctx().clock, phases_.init);
  do_init();
}

void DirtyTracker::begin_interval() {
  VirtualClock::Scope s(kernel_.ctx().clock, phases_.arm);
  do_begin_interval();
}

std::vector<Gva> DirtyTracker::collect() {
  kernel_.ctx().count(Event::kTrackerCollect);
  VirtualClock::Scope s(kernel_.ctx().clock, phases_.collect);
  std::vector<Gva> pages = do_collect();
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  ++phases_.intervals;
  phases_.collected_pages += pages.size();
  return pages;
}

void DirtyTracker::shutdown() {
  do_shutdown();
}

}  // namespace ooh::lib
