#include "hypervisor/vm.hpp"

#include "sim/exec_context.hpp"
#include "sim/machine.hpp"

namespace ooh::hv {

Vm::Vm(sim::Machine& machine, u32 id, u64 mem_bytes, std::size_t spml_ring_entries)
    : id_(id), mem_bytes_(mem_bytes), vcpu_(machine, id), spml_ring_(spml_ring_entries) {}

bool HypDirtyLogConsumer::on_track(sim::TrackLayer /*layer*/,
                                   const sim::TrackEvent& ev) {
  vm_.hyp_dirty_log().insert(ev.gpa_page);
  return true;
}

bool SpmlRingConsumer::on_track(sim::TrackLayer /*layer*/,
                                const sim::TrackEvent& ev) {
  vm_.spml_ring().push(ev.gpa_page);
  vm_.spml_interval_log().push_back(ev.gpa_page);
  ev.vcpu->ctx().count(Event::kRingBufCopyEntry);
  return true;
}

}  // namespace ooh::hv
