# Empty compiler generated dependencies file for fig5_boehm_tracker.
# This may be replaced when dependencies are built.
