#include "guest/uffd.hpp"

#include <optional>

#include "guest/kernel.hpp"
#include "base/clock.hpp"

namespace ooh::guest {

void Uffd::register_wp(Process& proc, Handler on_fault, VirtDuration* tracker_bucket) {
  regs_[proc.pid()].on_wp = std::move(on_fault);
  regs_[proc.pid()].tracker_bucket = tracker_bucket;
  for (Vma& vma : proc.vmas_mut()) {
    vma.uffd = Vma::Uffd::kWriteProtect;
  }
  rearm_wp(proc);
}

void Uffd::register_missing(Process& proc, Handler on_fault) {
  regs_[proc.pid()].on_missing = std::move(on_fault);
  for (Vma& vma : proc.vmas_mut()) {
    vma.uffd = Vma::Uffd::kMissing;
  }
  sim::ExecContext& m = kernel_.ctx_of(proc);
  m.count(Event::kContextSwitch, 2);  // the register ioctl
  m.charge_us(2 * m.cost.ctx_switch_us);
}

void Uffd::rearm_wp(Process& proc) {
  // ioctl write-protect over the whole registered range (Table V metric M2,
  // modelled as one clear_refs-shaped PTE pass; see CostModel).
  sim::ExecContext& m = kernel_.ctx_of(proc);
  m.count(Event::kContextSwitch, 2);
  m.charge_us(m.cost.ufd_write_protect_us(proc.mapped_bytes()) + 2 * m.cost.ctx_switch_us);
  kernel_.page_table(proc).for_each_present(
      [](Gva, sim::Pte& pte) { pte.uffd_wp = true; });
  // Write-protecting is permission-reducing: cpumask-wide shootdown.
  kernel_.tlb_flush_pid(proc);
  m.count(Event::kTlbFlush);
  m.charge_us(m.cost.tlb_flush_us);
}

void Uffd::unregister(Process& proc) {
  regs_.erase(proc.pid());
  for (Vma& vma : proc.vmas_mut()) {
    vma.uffd = Vma::Uffd::kNone;
  }
  kernel_.page_table(proc).for_each_present(
      [](Gva, sim::Pte& pte) { pte.uffd_wp = false; });
  kernel_.tlb_flush_pid(proc);
}

bool Uffd::wp_registered(const Process& proc) const {
  const auto it = regs_.find(proc.pid());
  return it != regs_.end() && static_cast<bool>(it->second.on_wp);
}

bool Uffd::missing_registered(const Process& proc) const {
  const auto it = regs_.find(proc.pid());
  return it != regs_.end() && static_cast<bool>(it->second.on_missing);
}

void Uffd::deliver_wp_fault(Process& proc, Gva gva_page) {
  sim::ExecContext& m = kernel_.ctx_of(proc);
  // The faulting thread is suspended: the kernel part of the fault, the
  // handoff to the Tracker, its userspace handling (metric M6, the ufd
  // bottleneck), and the write-unprotect ioctl all run on its clock.
  m.count(Event::kPageFaultUffd);
  m.count(Event::kContextSwitch, 2);
  const u64 mem = proc.mapped_bytes();
  Registration& reg = regs_.at(proc.pid());
  {
    // The userspace half of the fault is Tracker execution: attribute it so
    // the "On Tracker" overhead of Table I is measurable.
    std::optional<VirtualClock::Scope> attributed;
    if (reg.tracker_bucket != nullptr) attributed.emplace(m.clock, *reg.tracker_bucket);
    m.charge_us(m.cost.pfh_kernel_per_fault_us(mem) + m.cost.pfh_user_per_fault_us(mem) +
                2 * m.cost.ctx_switch_us);
    reg.on_wp(gva_page);
  }

  sim::Pte* pte = kernel_.page_table(proc).pte(gva_page);
  if (pte != nullptr) pte->uffd_wp = false;
  kernel_.tlb_invalidate_page(proc, gva_page);
  m.count(Event::kUffdWriteUnprotect);
}

bool Uffd::on_track(sim::TrackLayer /*layer*/, const sim::TrackEvent& ev) {
  Process* proc = kernel_.find(ev.pid);
  if (proc == nullptr) return false;
  sim::Pte* pte = kernel_.page_table(*proc).pte(ev.gva_page);
  if (pte == nullptr || !pte->present || !pte->uffd_wp) return false;
  if (wp_registered(*proc)) {
    deliver_wp_fault(*proc, ev.gva_page);
    return true;
  }
  pte->uffd_wp = false;  // stale marker from a torn-down registration
  ev.vcpu->tlb().invalidate_page(ev.pid, ev.gva_page);
  return true;
}

void Uffd::deliver_missing_fault(Process& proc, Gva gva_page) {
  sim::ExecContext& m = kernel_.ctx_of(proc);
  m.count(Event::kPageFaultUffd);
  m.count(Event::kContextSwitch, 2);
  const u64 mem = proc.mapped_bytes();
  m.charge_us(m.cost.pfh_user_per_fault_us(mem) + 2 * m.cost.ctx_switch_us);
  if (auto& h = regs_.at(proc.pid()).on_missing; h) h(gva_page);
}

}  // namespace ooh::guest
