// Multi-granularity translation: PageGran helpers, PS-bit huge leaves in
// the guest radix tables and the EPT, the gran-tagged TLB, KVM-style eager
// page splitting, and the segment-table backend — plus the property sweeps
// that keep GRAN-1 (leaf exclusivity) true under random mixed-granularity
// operation on both backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "guest/kernel.hpp"
#include "hypervisor/hypervisor.hpp"
#include "ooh/testbed.hpp"
#include "sim/ept.hpp"
#include "sim/mmu.hpp"
#include "sim/page_table.hpp"
#include "sim/segment_table.hpp"

namespace ooh {
namespace {

// ---- PageGran helpers -------------------------------------------------------

TEST(GranHelpers, SizesMasksAndIndexing) {
  EXPECT_EQ(gran_size(PageGran::k4K), u64{4096});
  EXPECT_EQ(gran_size(PageGran::k2M), u64{2} * kMiB);
  EXPECT_EQ(gran_size(PageGran::k1G), u64{1} * kGiB);
  EXPECT_EQ(gran_pages(PageGran::k4K), u64{1});
  EXPECT_EQ(gran_pages(PageGran::k2M), u64{512});
  EXPECT_EQ(gran_pages(PageGran::k1G), u64{512} * 512);

  const u64 addr = 3 * kGiB + 5 * kMiB + 123;
  EXPECT_EQ(gran_floor(addr, PageGran::k2M), 3 * kGiB + 4 * kMiB);
  EXPECT_EQ(gran_floor(addr, PageGran::k1G), 3 * kGiB);
  EXPECT_EQ(gran_offset(addr, PageGran::k2M), kMiB + 123);
  EXPECT_TRUE(is_gran_aligned(4 * kMiB, PageGran::k2M));
  EXPECT_FALSE(is_gran_aligned(4 * kMiB + kPageSize, PageGran::k2M));
  EXPECT_TRUE(is_gran_aligned(0, PageGran::k1G));
  EXPECT_EQ(gran_ceil(addr, PageGran::k2M), 3 * kGiB + 6 * kMiB);
  EXPECT_EQ(gran_ceil(6 * kMiB, PageGran::k2M), 6 * kMiB);
  EXPECT_STREQ(gran_name(PageGran::k4K), "4K");
  EXPECT_STREQ(gran_name(PageGran::k2M), "2M");
  EXPECT_STREQ(gran_name(PageGran::k1G), "1G");
}

TEST(GranHelpers, PmlEntryEncodeRoundTripsAndIsBitIdenticalAt4K) {
  const u64 base4k = 0x1234 * kPageSize;
  // Gran code 0 = 4K: an all-4K PML buffer holds raw addresses, so the
  // encoding is invisible to every pre-existing consumer.
  EXPECT_EQ(pml_entry_encode(base4k, PageGran::k4K), base4k);
  EXPECT_EQ(pml_entry_base(base4k), base4k);
  EXPECT_EQ(pml_entry_gran(base4k), PageGran::k4K);

  const u64 base2m = 7 * 2 * kMiB;
  const u64 e2m = pml_entry_encode(base2m, PageGran::k2M);
  EXPECT_NE(e2m, base2m);
  EXPECT_EQ(pml_entry_base(e2m), base2m);
  EXPECT_EQ(pml_entry_gran(e2m), PageGran::k2M);

  const u64 e1g = pml_entry_encode(3 * kGiB, PageGran::k1G);
  EXPECT_EQ(pml_entry_base(e1g), 3 * kGiB);
  EXPECT_EQ(pml_entry_gran(e1g), PageGran::k1G);
}

// Regression: the old `(addr + kPageSize - 1) & ~kOffsetMask` form wrapped
// to 0 for addresses in the topmost page; the helper must saturate.
TEST(GranHelpers, PageCeilSaturatesAtTheTopOfTheAddressSpace) {
  EXPECT_EQ(page_ceil(0), u64{0});
  EXPECT_EQ(page_ceil(1), kPageSize);
  EXPECT_EQ(page_ceil(kPageSize), kPageSize);
  EXPECT_EQ(page_ceil(kPageSize + 1), 2 * kPageSize);
  const u64 top_page = gran_mask(PageGran::k4K);  // 0xFFFF...F000
  EXPECT_EQ(page_ceil(top_page), top_page);
  EXPECT_EQ(page_ceil(top_page + 1), top_page);  // saturates, no wrap to 0
  EXPECT_EQ(page_ceil(~u64{0}), top_page);
  EXPECT_EQ(gran_ceil(~u64{0}, PageGran::k1G), gran_mask(PageGran::k1G));
}

// ---- huge leaves in the guest radix tables ---------------------------------

TEST(MultiGranPageTable, HugeLeafSharesOnePteAcrossItsRegion) {
  sim::GuestPageTable pt;
  const Gva base = 4 * kMiB;
  const Gpa gpa = 32 * kMiB;
  pt.map_huge(base, gpa, PageGran::k2M, true);
  EXPECT_EQ(pt.present_pages(), gran_pages(PageGran::k2M));

  const sim::GuestPageTable::Lookup first = pt.lookup(base);
  const sim::GuestPageTable::Lookup mid = pt.lookup(base + 77 * kPageSize + 123);
  ASSERT_NE(first.pte, nullptr);
  EXPECT_EQ(first.gran, PageGran::k2M);
  EXPECT_EQ(first.pte, mid.pte);  // one shared leaf for the whole region
  EXPECT_EQ(first.gpa_page, gpa);
  EXPECT_EQ(mid.gpa_page, gpa + 77 * kPageSize);

  u64 leaves = 0;
  pt.for_each_leaf_present([&](Gva b, sim::Pte&, PageGran g) {
    ++leaves;
    EXPECT_EQ(b, base);
    EXPECT_EQ(g, PageGran::k2M);
  });
  EXPECT_EQ(leaves, 1u);

  // The per-4K view expands the leaf with per-page GPAs.
  u64 pages = 0;
  pt.for_each_mapping([&](Gva g, const sim::Pte&, Gpa gp) {
    EXPECT_EQ(gp - gpa, g - base);
    ++pages;
  });
  EXPECT_EQ(pages, gran_pages(PageGran::k2M));

  pt.unmap_huge(base, PageGran::k2M);
  EXPECT_EQ(pt.lookup(base).pte, nullptr);
  EXPECT_EQ(pt.present_pages(), 0u);
}

// ---- EPT huge leaves and eager splitting -----------------------------------

TEST(MultiGranEpt, SplitHugeLeafPreservesTranslationAndFlags) {
  sim::Ept ept;
  const Gpa base = 512 * kMiB;
  const Hpa run = 64 * kMiB;
  ept.map_huge(base, run, PageGran::k2M, true);
  EXPECT_EQ(ept.huge_leaves(), 1u);

  // Establish flags on the parent so the children must inherit them.
  sim::Ept::Lookup parent = ept.lookup(base + 9 * kPageSize);
  ASSERT_NE(parent.entry, nullptr);
  EXPECT_EQ(parent.gran, PageGran::k2M);
  EXPECT_EQ(parent.hpa_page, run + 9 * kPageSize);
  parent.entry->accessed = true;
  parent.entry->dirty = true;

  const u64 children = ept.split_huge_leaf(base, PageGran::k2M);
  EXPECT_EQ(children, gran_pages(PageGran::k2M));
  EXPECT_EQ(ept.huge_leaves(), 0u);
  for (const u64 i : {u64{0}, u64{1}, u64{255}, u64{511}}) {
    const sim::Ept::Lookup c = ept.lookup(base + i * kPageSize);
    ASSERT_NE(c.entry, nullptr);
    EXPECT_EQ(c.gran, PageGran::k4K);
    EXPECT_EQ(c.hpa_page, run + i * kPageSize);  // HPA run carved in place
    EXPECT_TRUE(c.entry->present);
    EXPECT_TRUE(c.entry->writable);
    EXPECT_TRUE(c.entry->accessed);
    EXPECT_TRUE(c.entry->dirty);
  }

  // 1G shatters into 512 2M leaves (one level per split, as KVM does).
  sim::Ept big;
  big.map_huge(0, 8 * kGiB, PageGran::k1G, true);
  EXPECT_EQ(big.huge_leaves(), 1u);
  EXPECT_EQ(big.split_huge_leaf(0, PageGran::k1G), u64{512});
  EXPECT_EQ(big.huge_leaves(), 512u);
  const sim::Ept::Lookup c2m = big.lookup(3 * 2 * kMiB + 5 * kPageSize);
  ASSERT_NE(c2m.entry, nullptr);
  EXPECT_EQ(c2m.gran, PageGran::k2M);
  EXPECT_EQ(c2m.hpa_page, 8 * kGiB + 3 * 2 * kMiB + 5 * kPageSize);
}

// ---- gran-tagged TLB through the MMU ---------------------------------------

struct HugeMmuFixture {
  HugeMmuFixture()
      : machine(2 * kGiB, CostModel::unit()),
        hv(machine),
        vm(hv.create_vm(kGiB)),
        mmu(vm.vcpu(), vm.ept()) {}
  sim::Machine machine;
  hv::Hypervisor hv;
  hv::Vm& vm;
  sim::GuestPageTable pt;
  sim::Mmu mmu;
};

TEST(MultiGranTlb, HugeFillCoversTheRegionAndRegionInvalidationDropsIt) {
  HugeMmuFixture f;
  const Gva gva = 64 * kMiB;
  const Gpa gpa = 128 * kMiB;
  f.pt.map_huge(gva, gpa, PageGran::k2M, true);
  const Hpa run = f.machine.pmem.alloc_frames_contiguous(gran_pages(PageGran::k2M));
  f.vm.ept().map_huge(gpa, run, PageGran::k2M, true);

  const sim::Mmu::Result r = f.mmu.access(1, f.pt, gva + 13 * kPageSize + 5, true);
  ASSERT_EQ(r.status, sim::Mmu::Status::kOk);
  EXPECT_EQ(page_floor(r.hpa), run + 13 * kPageSize);

  // One huge entry serves every 4 KiB page of the region.
  sim::Tlb& tlb = f.vm.vcpu().tlb();
  EXPECT_EQ(tlb.huge_entries(), 1u);
  sim::TlbEntry* lo = tlb.lookup(1, gva);
  sim::TlbEntry* hi = tlb.lookup(1, gva + 511 * kPageSize);
  ASSERT_NE(lo, nullptr);
  EXPECT_EQ(lo, hi);
  EXPECT_EQ(lo->gran, PageGran::k2M);
  EXPECT_EQ(lo->gpa_page, gpa);
  EXPECT_EQ(lo->hpa_page, run);
  EXPECT_EQ(tlb.lookup(1, gva + 2 * kMiB), nullptr);  // next region: miss
  EXPECT_EQ(tlb.lookup(2, gva), nullptr);             // pid-tagged

  // The shootdown a huge unmap/split owes: region invalidation drops it.
  tlb.invalidate_region(1, gva, PageGran::k2M);
  EXPECT_EQ(tlb.lookup(1, gva + 13 * kPageSize), nullptr);
  EXPECT_EQ(tlb.huge_entries(), 0u);
}

TEST(MultiGranTlb, FillGranIsTheMinimumOfGuestAndEptLeaves) {
  HugeMmuFixture f;
  const Gva gva = 64 * kMiB;
  const Gpa gpa = 128 * kMiB;
  // Huge guest leaf over 4 KiB EPT leaves: the fill must drop to 4K — a 2M
  // entry would claim a contiguous HPA run the EPT never promised.
  f.pt.map_huge(gva, gpa, PageGran::k2M, true);
  for (u64 i = 0; i < 4; ++i) {
    f.vm.ept().map(gpa + i * kPageSize, f.machine.pmem.alloc_frame(), true);
  }
  const sim::Mmu::Result r = f.mmu.access(1, f.pt, gva + 2 * kPageSize, true);
  ASSERT_EQ(r.status, sim::Mmu::Status::kOk);
  sim::TlbEntry* te = f.vm.vcpu().tlb().lookup(1, gva + 2 * kPageSize);
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(te->gran, PageGran::k4K);
  EXPECT_EQ(f.vm.vcpu().tlb().huge_entries(), 0u);
}

// ---- eager splitting: end-to-end dirty precision ---------------------------

// Harvested hypervisor-PML dirty sets for one deterministic workload under a
// given EPT backing mode.
std::vector<Gpa> harvest_under(bool ept_huge, bool eager_split) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 256 * kMiB;
  opts.host_mem_bytes = 2 * kGiB;
  opts.ept_huge = ept_huge;
  opts.eager_split = eager_split;
  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 1024;  // two full 2 MiB regions
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  bed.hypervisor().enable_pml_for_hyp(bed.vm());
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; i += 97) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  std::vector<Gpa> dirty = bed.hypervisor().harvest_hyp_dirty(bed.vm());
  bed.hypervisor().disable_pml_for_hyp(bed.vm());
  std::sort(dirty.begin(), dirty.end());
  return dirty;
}

TEST(EagerSplit, RestoresPagePrecisionUnderHugeBacking) {
  const std::vector<Gpa> native4k = harvest_under(false, false);
  const std::vector<Gpa> split = harvest_under(true, true);
  const std::vector<Gpa> plain2m = harvest_under(true, false);

  // ISSUE acceptance: eager-split precision equals native 4K exactly.
  EXPECT_EQ(split, native4k);

  // Plain 2M logging names whole huge regions: a strict dirty superset.
  EXPECT_GT(plain2m.size(), native4k.size());
  EXPECT_TRUE(std::includes(plain2m.begin(), plain2m.end(), native4k.begin(),
                            native4k.end()));
}

TEST(EagerSplit, SessionShattersHugeLeavesAndFaultsFillAt4K) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 256 * kMiB;
  opts.host_mem_bytes = 2 * kGiB;
  opts.ept_huge = true;
  opts.eager_split = true;
  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(4 * kMiB);
  for (u64 i = 0; i < 1024; ++i) proc.touch_write(base + i * kPageSize);
  EXPECT_GT(bed.vm().ept().huge_leaves(), 0u);  // THP backfill happened

  bed.hypervisor().enable_pml_for_hyp(bed.vm());
  EXPECT_TRUE(bed.vm().eager_split_active());
  EXPECT_EQ(bed.vm().ept().huge_leaves(), 0u);  // SPLIT-1

  // Mid-session demand faults must fill at 4K, not re-introduce huge leaves.
  const Gva more = proc.mmap(2 * kMiB);
  for (u64 i = 0; i < 512; ++i) proc.touch_write(more + i * kPageSize);
  EXPECT_EQ(bed.vm().ept().huge_leaves(), 0u);

  bed.hypervisor().disable_pml_for_hyp(bed.vm());
  EXPECT_FALSE(bed.vm().eager_split_active());
}

// ---- property sweeps: GRAN-1 under random mixed-gran operation -------------

// Radix backend: random 2M-region ops (map huge / map 4K pages / unmap
// either), a shadow model, and the leaf-exclusivity sweep after every step.
TEST(MultiGranProperty, RandomMixedGranOpsKeepLeavesExclusive) {
  sim::GuestPageTable pt;
  constexpr u64 kRegions = 16;
  const Gva lo = 8 * kMiB;
  // Shadow model: per region, kind 0 = empty, 1 = huge, 2 = some 4K pages.
  struct Region {
    int kind = 0;
    std::set<u64> pages;  // for kind 2
  };
  std::vector<Region> model(kRegions);
  std::map<Gva, Gpa> expected;  // per-4K truth

  Rng rng(1234);
  for (int step = 0; step < 400; ++step) {
    const u64 r = rng.below(kRegions);
    const Gva base = lo + r * gran_size(PageGran::k2M);
    const Gpa gpa = kGiB + r * gran_size(PageGran::k2M);
    Region& m = model[r];
    switch (rng.below(4)) {
      case 0:  // map huge (only over an empty region: caller keeps GRAN-1)
        if (m.kind == 0) {
          pt.map_huge(base, gpa, PageGran::k2M, true);
          m.kind = 1;
          for (u64 i = 0; i < 512; ++i) expected[base + i * kPageSize] = gpa + i * kPageSize;
        }
        break;
      case 1:  // map a few 4K pages
        if (m.kind != 1) {
          for (int n = 0; n < 8; ++n) {
            const u64 i = rng.below(512);
            pt.map(base + i * kPageSize, gpa + i * kPageSize, true);
            m.pages.insert(i);
            expected[base + i * kPageSize] = gpa + i * kPageSize;
          }
          m.kind = 2;
        }
        break;
      case 2:  // unmap huge
        if (m.kind == 1) {
          pt.unmap_huge(base, PageGran::k2M);
          m = Region{};
          for (u64 i = 0; i < 512; ++i) expected.erase(base + i * kPageSize);
        }
        break;
      default:  // unmap one 4K page
        if (m.kind == 2 && !m.pages.empty()) {
          const u64 i = *m.pages.begin();
          pt.unmap(base + i * kPageSize);
          m.pages.erase(i);
          if (m.pages.empty()) m.kind = 0;
          expected.erase(base + i * kPageSize);
        }
        break;
    }

    // GRAN-1 sweep: present leaves never overlap.
    std::vector<std::pair<u64, u64>> leaves;
    pt.for_each_leaf_present([&](Gva b, sim::Pte&, PageGran g) {
      leaves.emplace_back(b, b + gran_size(g));
    });
    std::sort(leaves.begin(), leaves.end());
    for (std::size_t i = 1; i < leaves.size(); ++i) {
      ASSERT_LE(leaves[i - 1].second, leaves[i].first) << "leaf overlap at step " << step;
    }

    // Spot-check translations against the shadow model.
    for (int probe = 0; probe < 16; ++probe) {
      const Gva g = lo + rng.below(kRegions * 512) * kPageSize;
      const sim::GuestPageTable::Lookup lu = pt.lookup(g);
      const auto it = expected.find(g);
      if (it == expected.end()) {
        EXPECT_TRUE(lu.pte == nullptr || !lu.pte->present) << std::hex << g;
      } else {
        ASSERT_NE(lu.pte, nullptr) << std::hex << g;
        EXPECT_EQ(lu.gpa_page, it->second) << std::hex << g;
      }
    }
  }
  EXPECT_EQ(pt.present_pages(), expected.size());
}

// Segment backend: random page map/unmap; find() must match a shadow map
// and coherent() (GRAN-1's segment form) must hold after every step.
TEST(MultiGranProperty, SegmentTableStaysCoherentUnderRandomOps) {
  sim::SegmentTable segs;
  std::map<Gva, Gpa> expected;
  Rng rng(77);
  constexpr u64 kSlots = 256;
  for (int step = 0; step < 2000; ++step) {
    const u64 slot = rng.below(kSlots);
    const Gva gva = 16 * kMiB + slot * kPageSize;
    // Half the slots translate contiguously (coalescable), half scattered.
    const Gpa gpa = slot % 2 == 0 ? 64 * kMiB + slot * kPageSize
                                  : 128 * kMiB + slot * 3 * kPageSize;
    if (expected.count(gva) == 0 && rng.below(2) == 0) {
      segs.map(gva, gpa, true);
      expected[gva] = gpa;
    } else {
      segs.unmap(gva);
      expected.erase(gva);
    }
    ASSERT_TRUE(segs.coherent()) << "step " << step;
    ASSERT_EQ(segs.present_pages(), expected.size());
    for (int probe = 0; probe < 8; ++probe) {
      const Gva g = 16 * kMiB + rng.below(kSlots) * kPageSize;
      const sim::Segment* s = segs.find(g);
      const auto it = expected.find(g);
      if (it == expected.end()) {
        EXPECT_EQ(s, nullptr) << std::hex << g;
      } else {
        ASSERT_NE(s, nullptr) << std::hex << g;
        EXPECT_EQ(s->gpa_of(g), it->second) << std::hex << g;
      }
    }
  }
}

// The conversion pass coalesces contiguous identical-flag runs and the
// segment backend then serves the same translations through the walk seam.
TEST(MultiGranProperty, ConvertToSegmentsPreservesEveryTranslation) {
  sim::GuestPageTable pt;
  std::map<Gva, Gpa> expected;
  Rng rng(5);
  for (int n = 0; n < 300; ++n) {
    const Gva gva = 32 * kMiB + rng.below(1024) * kPageSize;
    const Gpa gpa = 256 * kMiB + rng.below(4096) * kPageSize;
    if (expected.count(gva) != 0) continue;
    pt.map(gva, gpa, true);
    expected[gva] = gpa;
  }
  pt.convert_to_segments();
  ASSERT_EQ(pt.backend(), sim::TranslationBackend::kSegment);
  ASSERT_NE(pt.segment_table(), nullptr);
  EXPECT_TRUE(pt.segment_table()->coherent());
  EXPECT_EQ(pt.present_pages(), expected.size());
  for (const auto& [gva, gpa] : expected) {
    const sim::GuestPageTable::Lookup lu = pt.lookup(gva);
    ASSERT_NE(lu.pte, nullptr) << std::hex << gva;
    EXPECT_EQ(lu.gpa_page, gpa) << std::hex << gva;
  }
  EXPECT_EQ(pt.lookup(16 * kMiB).pte, nullptr);
}

}  // namespace
}  // namespace ooh
