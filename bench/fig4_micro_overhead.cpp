// Figure 4: slowdown factor of each tracking technique on the array-parser
// micro-benchmark as the monitored memory grows.
//
// Paper's shape: SPML worst at large sizes (up to 66x, reverse mapping);
// ufd worst below the ~250MB crossover (up to 15x); /proc up to ~4x; EPML
// negligible (max ~0.6%) at every size.
#include "common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Figure 4", "Microbench slowdown (x) per technique vs memory size");

  const std::vector<u64> sizes = bench::memory_sweep(args.full);
  std::vector<std::string> header = {"technique"};
  for (const u64 s : sizes) header.push_back(bench::mem_label(s));
  TextTable t(header);

  for (const lib::Technique tech :
       {lib::Technique::kProc, lib::Technique::kUfd, lib::Technique::kSpml,
        lib::Technique::kEpml, lib::Technique::kOracle}) {
    std::vector<double> row;
    for (const u64 mem : sizes) {
      const bench::MicroRun r = bench::run_micro(tech, mem);
      row.push_back(r.tracked_us / r.ideal_us);
    }
    t.add_row(std::string(lib::technique_name(tech)), row, 2);
  }
  t.print(std::cout);
  std::printf(
      "\nShape check: EPML ~1.0x everywhere; SPML grows fastest with memory;\n"
      "ufd worst below the crossover, SPML worst above it.\n");
  return 0;
}
