#include "hypervisor/vm.hpp"

#include "sim/machine.hpp"

namespace ooh::hv {

Vm::Vm(sim::Machine& machine, u32 id, u64 mem_bytes, std::size_t spml_ring_entries)
    : id_(id), mem_bytes_(mem_bytes), vcpu_(machine, id), spml_ring_(spml_ring_entries) {}

}  // namespace ooh::hv
