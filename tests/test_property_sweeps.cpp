// Parameterized property sweeps across memory sizes: the tracker invariants
// must hold at every scale, and the derived quantities (per-page costs,
// interpolation) must behave monotonically across the calibrated range.
#include <gtest/gtest.h>

#include "base/cost_model.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh {
namespace {

// ---- tracker completeness across sizes ---------------------------------------------

class SizeSweep
    : public ::testing::TestWithParam<std::tuple<lib::Technique, u64 /*pages*/>> {};

TEST_P(SizeSweep, CompleteAtEveryScale) {
  const auto [tech, pages] = GetParam();
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(pages * kPageSize);

  auto tracker = lib::make_tracker(tech, k, proc);
  lib::RunOptions opts;
  opts.collect_period = msecs(1);
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&, p = pages](guest::Process& pr) {
        for (u64 i = 0; i < p; ++i) pr.touch_write(base + i * kPageSize);
        for (u64 i = 0; i < p; i += 2) pr.touch_write(base + i * kPageSize);
      },
      tracker.get(), opts);
  tracker->shutdown();
  EXPECT_EQ(r.captured_truth, r.truth_pages);
  EXPECT_EQ(r.unique_pages, pages);
  EXPECT_EQ(r.dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TechniquesBySize, SizeSweep,
    ::testing::Combine(::testing::Values(lib::Technique::kProc, lib::Technique::kUfd,
                                         lib::Technique::kSpml, lib::Technique::kEpml),
                       ::testing::Values(u64{16}, u64{512}, u64{4096})),
    [](const auto& pinfo) {
      std::string name{lib::technique_name(std::get<0>(pinfo.param))};
      for (char& ch : name) {
        if (ch == '/') ch = '_';
      }
      return name + "_" + std::to_string(std::get<1>(pinfo.param)) + "pages";
    });

// ---- the same sweep under an adversarial fault schedule -----------------------------

class FaultySizeSweep
    : public ::testing::TestWithParam<std::tuple<lib::Technique, u64 /*pages*/>> {};

TEST_P(FaultySizeSweep, CompleteAtEveryScaleUnderInjectedFaults) {
  // Buffer-full faults forced at adversarial indices (relatively prime
  // cadences, so the fulls land at ever-shifting buffer offsets) plus one
  // suppressed-then-redelivered self-IPI. None of these may cost a page:
  // forced fulls drain early, and a single-drop IPI window redelivers on the
  // very next encounter before anything can be lost.
  const auto [tech, pages] = GetParam();
  sim::fault::FaultPlan plan;
  plan.add({sim::fault::FaultPoint::kPmlForceFull, /*first=*/0, /*every=*/61,
            /*limit=*/0});
  plan.add({sim::fault::FaultPoint::kEpmlForceFull, /*first=*/0, /*every=*/53,
            /*limit=*/0});
  plan.add({sim::fault::FaultPoint::kSelfIpiSuppress, /*first=*/0, /*every=*/0,
            /*limit=*/1, /*arg=*/1});
  lib::TestBedOptions o;
  o.fault_plan = plan;
  lib::TestBed bed(o);
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(std::get<1>(GetParam()) * kPageSize);

  auto tracker = lib::make_tracker(tech, k, proc);
  lib::RunOptions opts;
  opts.collect_period = msecs(1);
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&, p = pages](guest::Process& pr) {
        for (u64 i = 0; i < p; ++i) pr.touch_write(base + i * kPageSize);
        for (u64 i = 0; i < p; i += 2) pr.touch_write(base + i * kPageSize);
      },
      tracker.get(), opts);
  tracker->shutdown();
  EXPECT_GT(bed.fault_injector()->total_fired(), 0u);
  EXPECT_EQ(r.captured_truth, r.truth_pages);
  EXPECT_EQ(r.unique_pages, pages);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(bed.ctx().counters.get(Event::kEpmlEntryLost), 0u)
      << "a 1-deep drop window must redeliver before any entry is lost";
  bed.audit();
}

INSTANTIATE_TEST_SUITE_P(
    TechniquesBySize, FaultySizeSweep,
    ::testing::Combine(::testing::Values(lib::Technique::kSpml, lib::Technique::kEpml),
                       ::testing::Values(u64{16}, u64{512}, u64{4096})),
    [](const auto& pinfo) {
      std::string name{lib::technique_name(std::get<0>(pinfo.param))};
      for (char& ch : name) {
        if (ch == '/') ch = '_';
      }
      return name + "_" + std::to_string(std::get<1>(pinfo.param)) + "pages";
    });

// ---- cost-model monotonicity across the calibrated range ----------------------------

TEST(CostSweep, SizeDependentTotalsGrowMonotonically) {
  const CostModel cm = CostModel::paper_calibrated();
  const LogLogInterp* metrics[] = {&cm.m5_pfh_kernel,  &cm.m6_pfh_user,
                                   &cm.m15_clear_refs, &cm.m16_pt_walk_user,
                                   &cm.m17_reverse_map, &cm.m18_rb_copy,
                                   &cm.m14_disable_logging};
  for (const LogLogInterp* f : metrics) {
    double prev = 0.0;
    for (u64 mem = kMiB / 2; mem <= 2 * kGiB; mem *= 2) {
      const double total = f->at(static_cast<double>(mem));
      EXPECT_GT(total, prev);
      prev = total;
    }
  }
}

TEST(CostSweep, EpmlScalabilityClaimHoldsAcrossRange) {
  // Table VI's punchline as a property: at every size in the calibrated
  // range, EPML's per-interval size-dependent cost (M18) is orders of
  // magnitude below every other technique's dominant term.
  const CostModel cm = CostModel::paper_calibrated();
  for (u64 mem = kMiB; mem <= kGiB; mem *= 4) {
    const double x = static_cast<double>(mem);
    const double epml = cm.m18_rb_copy.at(x);
    EXPECT_LT(epml * 50, cm.m16_pt_walk_user.at(x)) << mem;   // /proc collect
    EXPECT_LT(epml * 50, cm.m6_pfh_user.at(x)) << mem;        // ufd monitor
    EXPECT_LT(epml * 100, cm.m17_reverse_map.at(x)) << mem;   // SPML collect
  }
}

TEST(CostSweep, PerFaultCostsStayMicroscale) {
  // Sanity envelope: per-event costs derived from the totals stay within
  // physically plausible bounds across the sweep (guards against broken
  // interpolation or unit slips).
  const CostModel cm = CostModel::paper_calibrated();
  for (u64 mem = kMiB; mem <= kGiB; mem *= 2) {
    EXPECT_GT(cm.pfh_kernel_per_fault_us(mem), 0.005);
    EXPECT_LT(cm.pfh_kernel_per_fault_us(mem), 5.0);
    EXPECT_GT(cm.pfh_user_per_fault_us(mem), 1.0);
    EXPECT_LT(cm.pfh_user_per_fault_us(mem), 50.0);
    EXPECT_GT(cm.reverse_map_per_page_us(mem), 1.0);
    EXPECT_LT(cm.reverse_map_per_page_us(mem), 200.0);
    EXPECT_LT(cm.rb_copy_per_entry_us(mem), 0.05);
  }
}

// ---- event-count invariants -----------------------------------------------------------

TEST(EventInvariants, EpmlLogsEqualRingTraffic) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 1000;
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
      },
      tracker.get());
  tracker->shutdown();
  EXPECT_EQ(r.events.get(Event::kPmlLogGvaGuest), pages);
  EXPECT_EQ(r.events.get(Event::kRingBufCopyEntry), pages);
  EXPECT_EQ(r.events.get(Event::kRingBufFetchEntry), pages);
  EXPECT_EQ(r.events.get(Event::kSelfIpi), (pages - 1) / kPmlBufferEntries);
}

TEST(EventInvariants, SpmlExitCountMatchesBufferArithmetic) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 2000;
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kSpml, k, proc);
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
      },
      tracker.get());
  tracker->shutdown();
  EXPECT_EQ(r.events.get(Event::kPmlLogGpa), pages);
  // 2000 logs with a 512-entry buffer: exactly 3 full exits mid-run.
  EXPECT_EQ(r.events.get(Event::kVmExitPmlFull), (pages - 1) / kPmlBufferEntries);
}

}  // namespace
}  // namespace ooh
