#include "ooh/guard_alloc.hpp"

#include <stdexcept>

#include "sim/spp.hpp"

namespace ooh::lib {

Gva PageGuardAllocator::alloc(u64 bytes) {
  if (bytes == 0) throw std::invalid_argument("alloc of zero bytes");
  // One mapping per allocation; Process::mmap leaves an unmapped guard page
  // between VMAs, which is exactly the classic guard.
  const u64 rounded = page_ceil(bytes);
  const Gva addr = proc_.mmap(rounded);
  ++stats_.allocations;
  stats_.payload_bytes += bytes;
  stats_.guard_bytes += kPageSize;        // the unmapped page after the VMA
  stats_.padding_bytes += rounded - bytes;  // page-rounding waste
  return addr;
}

SubPageGuardAllocator::SubPageGuardAllocator(guest::GuestKernel& kernel,
                                             guest::Process& proc, u64 arena_bytes)
    : GuardedAllocator(kernel, proc), arena_bytes_(page_ceil(arena_bytes)) {
  arena_ = proc_.mmap(arena_bytes_);
  kernel_.set_spp_handler(proc_, [this](Gva fault_addr) {
    ++stats_.overflows_detected;
    (void)fault_addr;
    return guest::GuestKernel::SppAction::kKill;  // guards are fatal, like a guard page
  });
}

SubPageGuardAllocator::~SubPageGuardAllocator() {
  kernel_.set_spp_handler(proc_, nullptr);
}

void SubPageGuardAllocator::protect_guard(Gva addr) {
  const Gva page = page_floor(addr);
  const u32 mask =
      kernel_.spp_mask_of(proc_, page) & ~(1u << sim::subpage_index(addr));
  kernel_.spp_protect(proc_, page, mask);
}

Gva SubPageGuardAllocator::alloc(u64 bytes) {
  if (bytes == 0) throw std::invalid_argument("alloc of zero bytes");
  const u64 sub = sim::kSubPageSize;
  const u64 rounded = (bytes + sub - 1) & ~(sub - 1);
  // Payload must not straddle its guard: place payload + guard contiguously,
  // starting a fresh page when they would not fit in the current one...
  // allocations larger than a page span pages; the guard is the sub-page
  // right after the payload.
  if (bump_ + rounded + sub > arena_bytes_) {
    throw std::bad_alloc{};
  }
  const Gva addr = arena_ + bump_;
  bump_ += rounded + sub;
  protect_guard(addr + rounded);  // the 128B redzone after the payload

  ++stats_.allocations;
  stats_.payload_bytes += bytes;
  stats_.guard_bytes += sub;
  stats_.padding_bytes += rounded - bytes;
  return addr;
}

}  // namespace ooh::lib
