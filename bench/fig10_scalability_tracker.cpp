// Figure 10: Tracker (Boehm GC) performance as the number of tenant VMs
// grows from 1 to 5, each VM running Boehm over Phoenix-histogram (Large).
//
// Paper's finding: per-VM GC time matches the single-VM results and stays
// ~constant as VMs are added (PML state is per-VM; no cross-VM coupling).
// The tenant timelines are independent per-vCPU contexts, so the bench
// executes them on a worker pool of real threads (--threads N, default
// auto) — the per-VM virtual-time results are bit-identical to a serial
// run, only the host wall clock shrinks.
#include <algorithm>

#include "boehm_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/128);
  bench::print_header("Figure 10", "Per-VM Boehm GC time with 1..5 tenant VMs");
  const unsigned threads =
      args.threads != 0 ? args.threads : std::max(2u, lib::TestBed::default_workers());
  std::printf("tenant timelines on up to %u worker threads (--threads N to change)\n",
              threads);

  TextTable t({"VMs + technique", "min GC (ms)", "max GC (ms)", "spread (%)", "wall (ms)"});
  for (unsigned vms = 1; vms <= 5; ++vms) {
    for (const lib::Technique tech :
         {lib::Technique::kSpml, lib::Technique::kEpml, lib::Technique::kWp,
          lib::Technique::kSeg}) {
      const bench::FleetResult fleet =
          bench::run_boehm_fleet(vms, args.scale, tech, threads, args.gran);
      double min_gc = 1e300, max_gc = 0.0;
      for (const bench::BoehmRun& r : fleet.runs) {
        min_gc = std::min(min_gc, r.gc_total_us);
        max_gc = std::max(max_gc, r.gc_total_us);
      }
      // Tiny --scale values can finish without a single timed collection;
      // report zero spread instead of dividing by a zero max.
      const double spread = max_gc > 0.0 ? (max_gc - min_gc) / max_gc * 100.0 : 0.0;
      t.add_row(std::to_string(vms) + " " + std::string(lib::technique_name(tech)),
                {min_gc / 1e3, max_gc / 1e3, spread, fleet.wall_ms}, 2);
    }
  }
  t.print(std::cout);

  // Wall-clock scaling check at 5 VMs: same fleet serial vs. worker pool.
  const bench::FleetResult serial =
      bench::run_boehm_fleet(5, args.scale, lib::Technique::kEpml, 1);
  const bench::FleetResult parallel =
      bench::run_boehm_fleet(5, args.scale, lib::Technique::kEpml, threads);
  std::printf("\n5-VM EPML fleet wall clock: serial %.1f ms, %u workers %.1f ms "
              "(speedup %.2fx)\n",
              serial.wall_ms, threads, parallel.wall_ms,
              parallel.wall_ms > 0.0 ? serial.wall_ms / parallel.wall_ms : 0.0);
  std::printf("Shape check: per-VM GC time is flat in the VM count (spread ~0%%).\n");

  // vCPU axis: one SMP guest, per-vCPU dirty rings, userspace drainers
  // popping concurrently while the vCPU threads keep dirtying. Virtual time
  // per vCPU is identical serial vs. concurrent; the wall clock shows the
  // concurrent-drain scaling (--vcpus N to widen the sweep).
  std::printf("\nSMP guest: per-vCPU dirty rings with concurrent userspace drain\n");
  const u64 smp_pages = 1024;  // fits the 1536-entry TLB: steady-state passes are lock-free
  const int smp_passes = args.full ? 256 : 48;
  TextTable s({"vCPUs", "virt/vCPU (ms)", "spread (%)", "drained", "harvested",
               "serial wall (ms)", "conc wall (ms)", "speedup"});
  for (const unsigned v : bench::vcpu_sweep(args.vcpus)) {
    const bench::SmpDrainResult ser = bench::run_smp_drain(v, smp_pages, smp_passes, false);
    const bench::SmpDrainResult conc = bench::run_smp_drain(v, smp_pages, smp_passes, true);
    s.add_row(std::to_string(v),
              {conc.max_vcpu_ms, conc.spread_pct, static_cast<double>(conc.drained),
               static_cast<double>(conc.harvested), ser.wall_ms, conc.wall_ms,
               conc.wall_ms > 0.0 ? ser.wall_ms / conc.wall_ms : 0.0},
              2);
  }
  s.print(std::cout);
  std::printf("Shape check: harvested pages scale with the vCPU count while the\n"
              "concurrent drain keeps ring occupancy (and the harvest pause) low.\n"
              "Per-vCPU virtual time is bit-identical serial vs. concurrent; the\n"
              "wall-clock columns depend on host cores (%u here).\n",
              lib::TestBed::default_workers());

  // EPT granularity axis: the same 2-vCPU PML session with 4K leaves, 2M
  // PS-bit leaves kept during logging, and 2M leaves eagerly split at
  // session start. 2M logging harvests a dirty superset (each PML entry
  // names a 2 MiB region); eager splitting restores 4K precision for a
  // one-off split cost at enable time. (--gran also runs the fleet table
  // above in one of these modes.)
  std::printf("\nEPT backing granularity: dirty precision vs. split cost\n");
  TextTable g({"gran", "virt/vCPU (ms)", "harvested", "wall (ms)"});
  for (const bench::GranMode m :
       {bench::GranMode::k4K, bench::GranMode::k2M,
        bench::GranMode::k2MEagerSplit}) {
    const bench::SmpDrainResult r =
        bench::run_smp_drain(2, smp_pages, smp_passes, false, m);
    g.add_row(bench::gran_mode_name(m),
              {r.max_vcpu_ms, static_cast<double>(r.harvested), r.wall_ms}, 2);
  }
  g.print(std::cout);
  std::printf("Shape check: 4K and 2M+split harvest identical page-precise dirty\n"
              "sets; plain 2M harvests a superset (whole huge regions).\n");

  // Adaptive axis (opt-in, keeps the stock figure byte-identical): the
  // tracker-side view of policy-driven backend switching — what the control
  // plane costs and saves when the workload's phase changes under it.
  if (args.adaptive) bench::print_adaptive_section();
  return 0;
}
