#include "guest/scheduler.hpp"

#include <algorithm>

namespace ooh::guest {

void Scheduler::remove_hook(SchedHook* h) {
  std::erase(hooks_, h);
}

void Scheduler::set_periodic(VirtDuration period, std::function<void()> fn) {
  period_ = period;
  periodic_ = std::move(fn);
  next_periodic_ = ctx_.clock.now() + period;
}

void Scheduler::clear_periodic() {
  periodic_ = nullptr;
  period_ = VirtDuration{0};
}

void Scheduler::switch_out(u32 pid) {
  for (SchedHook* h : hooks_) h->on_schedule_out(pid);
  ctx_.count(Event::kContextSwitch);
  ctx_.charge_us(ctx_.cost.ctx_switch_us);
}

void Scheduler::switch_in(u32 pid) {
  ctx_.count(Event::kContextSwitch);
  ctx_.charge_us(ctx_.cost.ctx_switch_us);
  for (SchedHook* h : hooks_) h->on_schedule_in(pid);
}

void Scheduler::rearm_deadlines() {
  next_quantum_ = ctx_.clock.now() + quantum_;
  if (periodic_) next_periodic_ = ctx_.clock.now() + period_;
}

void Scheduler::enter_process(u32 pid) {
  switch_in(pid);
  rearm_deadlines();
}

void Scheduler::exit_process(u32 pid) {
  switch_out(pid);
}

void Scheduler::fire_quantum(u32 pid) {
  // Timer tick: the process is briefly descheduled and rescheduled. This
  // is what makes N (context switches during tracking) nonzero, the term
  // Formula 4 charges SPML/EPML per switch.
  ctx_.count(Event::kSchedQuantum);
  ++quantum_switches_;
  in_service_ = true;
  switch_out(pid);
  switch_in(pid);
  in_service_ = false;
  next_quantum_ = ctx_.clock.now() + quantum_;
}

void Scheduler::on_progress(u32 pid) {
  if (in_service_) return;
  const VirtDuration now = ctx_.clock.now();
  if (periodic_ && now >= next_periodic_) {
    // Run a copy: the service is allowed to clear_periodic() from inside
    // itself (e.g. a collection cap), which destroys the stored callable.
    const std::function<void()> service = periodic_;
    const VirtDuration quantum_deadline = next_quantum_;
    run_service(pid, service);
    // A quantum deadline that passed before or during the service window
    // must still deliver its tick; run_service() rearmed the deadlines, so
    // without this check the expiry would be silently absorbed and
    // Formula 4's N term under-counted during long collection rounds.
    if (ctx_.clock.now() >= quantum_deadline) fire_quantum(pid);
    return;
  }
  if (now >= next_quantum_) fire_quantum(pid);
}

}  // namespace ooh::guest
