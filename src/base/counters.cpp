#include "base/counters.hpp"

#include <sstream>

namespace ooh {
namespace {

constexpr std::array<std::string_view, kEventCount> kNames = {
    "context_switch",
    "page_fault_demand",
    "page_fault_soft_dirty",
    "page_fault_uffd",
    "vmexit",
    "vmexit_pml_full",
    "vmexit_ept_violation",
    "spp_violation",
    "pml_log_read",
    "hypercall",
    "vmread",
    "vmwrite",
    "self_ipi",
    "pml_log_gpa",
    "pml_log_gva_guest",
    "ring_buf_copy_entry",
    "ring_buf_fetch_entry",
    "ring_buf_overflow",
    "reverse_map_lookup",
    "pagemap_scan",
    "clear_refs",
    "tlb_flush",
    "tlb_hit",
    "tlb_miss",
    "guest_pt_walk",
    "ept_walk",
    "ept_dirty_set",
    "ept_wp_fault",
    "disk_page_write",
    "uffd_write_unprotect",
    "sched_quantum",
    "tracker_collect",
    "gc_cycle",
    "migration_round",
    "migration_page_sent",
    "fault_injected",
    "self_ipi_suppressed",
    "epml_entry_lost",
    "epml_stale_entry_dropped",
    "tracker_degraded",
    "migration_send_retry",
    "migration_aborted",
    "tlb_shootdown_ipi",
    "dirty_ring_full",
    "policy_switch",
    "migration_throttle",
};

}  // namespace

std::string_view event_name(Event e) noexcept {
  return kNames[static_cast<std::size_t>(e)];
}

EventCounters EventCounters::diff(const EventCounters& since) const noexcept {
  EventCounters d;
  for (std::size_t i = 0; i < kEventCount; ++i) {
    d.counts_[i] = counts_[i] - since.counts_[i];
  }
  return d;
}

std::string EventCounters::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kEventCount; ++i) {
    if (counts_[i] != 0) {
      os << kNames[i] << ": " << counts_[i] << '\n';
    }
  }
  return os.str();
}

}  // namespace ooh
