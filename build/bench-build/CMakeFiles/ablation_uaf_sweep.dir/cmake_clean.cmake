file(REMOVE_RECURSE
  "../bench/ablation_uaf_sweep"
  "../bench/ablation_uaf_sweep.pdb"
  "CMakeFiles/ablation_uaf_sweep.dir/ablation_uaf_sweep.cpp.o"
  "CMakeFiles/ablation_uaf_sweep.dir/ablation_uaf_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uaf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
