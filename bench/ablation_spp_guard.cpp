// Ablation: OoH-SPP guarded allocator vs classic guard pages (§III-D).
//
// Sweeps allocation sizes and reports guard-memory overhead (the paper
// projects a 32x reduction), total footprint, and detection granularity
// (how many bytes past the payload an overflow can reach undetected).
#include "common.hpp"
#include "ooh/guard_alloc.hpp"
#include "sim/spp.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation: SPP guard allocator",
                      "guard waste: 4KiB guard pages vs 128B SPP sub-page guards");
  const int allocations = args.full ? 20000 : 2000;

  TextTable t({"alloc size", "page-guard waste (B/alloc)", "SPP waste (B/alloc)",
               "reduction (x)", "undetected slack pg (B)", "slack spp (B)"});
  for (const u64 size : {16ull, 64ull, 128ull, 512ull, 2048ull, 4096ull}) {
    lib::TestBed bed;
    auto& k = bed.kernel();
    auto& p1 = k.create_process();
    auto& p2 = k.create_process();
    lib::PageGuardAllocator page_alloc(k, p1);
    lib::SubPageGuardAllocator sub_alloc(k, p2, /*arena_bytes=*/512 * kMiB);
    for (int i = 0; i < allocations; ++i) {
      (void)page_alloc.alloc(size);
      (void)sub_alloc.alloc(size);
    }
    const auto& ps = page_alloc.stats();
    const auto& ss = sub_alloc.stats();
    const double page_waste =
        static_cast<double>(ps.guard_bytes + ps.padding_bytes) / allocations;
    const double sub_waste =
        static_cast<double>(ss.guard_bytes + ss.padding_bytes) / allocations;
    // Undetected slack: bytes past the payload before the guard bites.
    const double slack_pg = static_cast<double>(page_ceil(size) - size);
    const double slack_spp =
        static_cast<double>(((size + 127) & ~u64{127}) - size);
    t.add_row(std::to_string(size) + " B",
              {page_waste, sub_waste, page_waste / sub_waste, slack_pg, slack_spp}, 1);
  }
  t.print(std::cout);
  std::printf("\nShape check: guard waste shrinks by up to 32x (the sub-page count),\n"
              "and the undetected overflow slack shrinks from page- to 128B-rounding.\n");
  return 0;
}
