// Host physical memory: frame allocator plus lazily materialised contents.
//
// Frames are identified by HPA. Page *contents* are only materialised when
// something actually stores data (PML hardware writes, data-backed workloads,
// CRIU image verification); metadata-only workloads touch translations
// without allocating backing bytes, which keeps GB-scale sweeps cheap.
//
// This is the one mutable structure shared between concurrently running
// per-vCPU timelines, so it is thread-safe: the free list and the backing-
// page map are sharded by frame number, each shard behind its own mutex,
// and the bump pointer is a lock-free CAS. Frame *contents* need no lock
// beyond the map shard — no two VMs ever share a frame, so cross-thread
// access to the same frame's bytes does not happen by construction.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/sync.hpp"
#include "base/types.hpp"

namespace ooh::sim {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(u64 bytes);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  /// Allocate one free frame; throws std::bad_alloc when exhausted.
  [[nodiscard]] Hpa alloc_frame();
  void free_frame(Hpa frame);

  /// Allocate `count` physically contiguous frames (a huge-leaf backing
  /// run) from the bump pointer; returns the first frame's HPA. Contiguous
  /// runs never come from the recycled free lists — fragmentation there is
  /// exactly why real kernels struggle to build huge pages late. Throws
  /// std::bad_alloc when the bump region cannot fit the run. The run may be
  /// freed frame-by-frame with free_frame() (after an eager split breaks
  /// the leaf into 4 KiB mappings).
  [[nodiscard]] Hpa alloc_frames_contiguous(u64 count);

  [[nodiscard]] u64 total_frames() const noexcept { return total_frames_; }
  [[nodiscard]] u64 used_frames() const noexcept {
    // relaxed-ok: a monotonic statistics counter — readers tolerate a stale
    // snapshot and no other state is published through it.
    return used_frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 backed_frames() const;

  /// Mutable view of a frame's 4KiB contents, materialising them on demand.
  /// The pointer stays valid until the frame is freed.
  [[nodiscard]] u8* frame_data(Hpa frame);
  /// Read-only view; nullptr when the frame was never written (all-zero).
  [[nodiscard]] const u8* frame_data_if_present(Hpa frame) const;

  // Word accessors used by the PML circuit to write log entries into RAM.
  [[nodiscard]] u64 read_u64(Hpa addr) const;
  void write_u64(Hpa addr, u64 value);

 private:
  using Frame = std::array<u8, kPageSize>;
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable sync::Mutex mu;
    std::vector<u64> free_list;                             // recycled frame numbers
    std::unordered_map<u64, std::unique_ptr<Frame>> data;   // keyed by frame number
  };

  [[nodiscard]] Shard& shard_of(u64 frame_number) const noexcept {
    return shards_[frame_number % kShards];
  }

  u64 total_frames_;
  sync::Atomic<u64> used_frames_{0};
  sync::Atomic<u64> next_frame_{0};  // bump pointer, in frame numbers
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace ooh::sim
