// OoH-SPP secure heap allocator (paper §III-D).
//
// Allocates objects with overflow guards using (a) classic 4KiB guard pages
// and (b) OoH-SPP 128-byte guard sub-pages, triggers a buffer overflow
// against each, and compares detection plus guard-memory waste -- the 32x
// reduction the paper projects for its SPP follow-up.
//
//   $ ./secure_allocator
#include <cstdio>

#include "ooh/guard_alloc.hpp"
#include "ooh/testbed.hpp"
#include "sim/spp.hpp"

using namespace ooh;

namespace {

void demo_overflow(const char* name, guest::Process& proc, lib::GuardedAllocator& alloc) {
  const Gva obj = alloc.alloc(200);
  std::printf("[%s] allocated 200 bytes at 0x%llx\n", name,
              static_cast<unsigned long long>(obj));
  // Normal use: in-bounds writes.
  for (u64 off = 0; off < 200; off += 8) proc.write_u64(obj + off, off);
  std::printf("[%s] 25 in-bounds stores: ok\n", name);
  // The bug: a loop running past the end of the buffer.
  u64 reached = 0;
  try {
    for (u64 off = 0; off < 16 * kPageSize; off += 8) {
      proc.write_u64(obj + off, off);
      reached = off;
    }
    std::printf("[%s] overflow never trapped (!!)\n", name);
  } catch (const guest::GuestSegfault& sf) {
    std::printf("[%s] overflow trapped %llu bytes past the object (fault at +%llu)\n",
                name, static_cast<unsigned long long>(reached + 8 - 200),
                static_cast<unsigned long long>(sf.addr - obj));
  }
}

}  // namespace

int main() {
  lib::TestBed bed;
  guest::GuestKernel& kernel = bed.kernel();

  {
    guest::Process& proc = kernel.create_process();
    lib::PageGuardAllocator alloc(kernel, proc);
    demo_overflow("page-guard", proc, alloc);
  }
  {
    guest::Process& proc = kernel.create_process();
    lib::SubPageGuardAllocator alloc(kernel, proc);
    demo_overflow("spp-guard ", proc, alloc);
    std::printf("[spp-guard ] overflows detected by the SPP handler: %llu\n",
                static_cast<unsigned long long>(alloc.stats().overflows_detected));
  }

  // Waste comparison across a malloc-heavy workload.
  guest::Process& p1 = kernel.create_process();
  guest::Process& p2 = kernel.create_process();
  lib::PageGuardAllocator page_alloc(kernel, p1);
  lib::SubPageGuardAllocator sub_alloc(kernel, p2, 64 * kMiB);
  for (int i = 0; i < 5000; ++i) {
    const u64 size = 16 + (i % 17) * 24;  // a mix of small objects
    (void)page_alloc.alloc(size);
    (void)sub_alloc.alloc(size);
  }
  const auto& ps = page_alloc.stats();
  const auto& ss = sub_alloc.stats();
  std::printf("\n5000 small allocations:\n");
  std::printf("  page guards : %6.1f MiB guards+padding (%.2f guard bytes/payload byte)\n",
              static_cast<double>(ps.guard_bytes + ps.padding_bytes) / kMiB,
              ps.guard_overhead());
  std::printf("  SPP guards  : %6.1f MiB guards+padding (%.2f guard bytes/payload byte)\n",
              static_cast<double>(ss.guard_bytes + ss.padding_bytes) / kMiB,
              ss.guard_overhead());
  std::printf("  guard-memory reduction: %.0fx (paper projects 32x, §III-D)\n",
              ps.guard_overhead() / ss.guard_overhead());
  return 0;
}
