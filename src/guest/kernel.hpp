// The guest operating system kernel (Linux-like).
//
// Owns processes, the per-process page tables' fault policy (demand paging,
// soft-dirty, userfaultfd dispatch), the guest-physical frame allocator, the
// scheduler, and the interrupt table entry for EPML's posted self-IPI
// (the paper's "Linux Core" change, §IV-E).
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "base/types.hpp"
#include "guest/process.hpp"
#include "guest/scheduler.hpp"
#include "hypervisor/vm.hpp"
#include "sim/exec_context.hpp"
#include "sim/mmu.hpp"
#include "sim/page_table.hpp"

namespace ooh::hv {
class Hypervisor;
}

namespace ooh::guest {

class OohModule;
class Uffd;
class ProcFs;
class SwapDaemon;
enum class OohMode { kSpml, kEpml };

/// Raised when a guest access has no VMA or violates permissions for good.
struct GuestSegfault : std::runtime_error {
  explicit GuestSegfault(Gva gva)
      : std::runtime_error("guest segfault"), addr(gva) {}
  Gva addr;
};

class GuestKernel final : public sim::GuestIrqSink {
 public:
  GuestKernel(hv::Hypervisor& hypervisor, hv::Vm& vm);
  ~GuestKernel() override;

  GuestKernel(const GuestKernel&) = delete;
  GuestKernel& operator=(const GuestKernel&) = delete;

  Process& create_process();
  [[nodiscard]] Process* find(u32 pid) noexcept;

  /// Visit every live process as fn(Process&, sim::GuestPageTable&); the
  /// coherence oracle re-derives TLB entries and GPA ownership through this.
  template <typename Fn>
  void for_each_process(Fn&& fn) {
    for (auto& e : procs_) fn(*e.proc, *e.pt);
  }

  /// This VM's execution context (private clock, counters, TLB).
  [[nodiscard]] sim::ExecContext& ctx() noexcept { return ctx_; }
  [[nodiscard]] hv::Vm& vm() noexcept { return vm_; }
  [[nodiscard]] hv::Hypervisor& hypervisor() noexcept { return hypervisor_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] ProcFs& procfs() noexcept { return *procfs_; }
  [[nodiscard]] Uffd& uffd() noexcept { return *uffd_; }
  [[nodiscard]] sim::Mmu& mmu() noexcept { return mmu_; }

  /// Load/unload the OoH kernel module (UIO driver's kernel half).
  OohModule& load_ooh_module(OohMode mode);
  void unload_ooh_module();
  [[nodiscard]] OohModule* ooh_module() noexcept { return ooh_module_.get(); }

  /// Core access path: translate (fault + retry as needed), record truth,
  /// give the scheduler a chance to tick. Returns the HPA.
  Hpa access(Process& proc, Gva gva, bool is_write);

  /// Batched equivalent of n accesses at base, base+stride, ...: accesses a
  /// cached translation can serve run through Mmu::access_run (same charges,
  /// same truth/scheduler side effects per access); any access it cannot
  /// serve falls back to the full access() pipeline, then the run resumes.
  /// Virtual time is bit-identical to the per-access loop this replaces.
  void touch_run(Process& proc, Gva base, u64 stride, u64 n, bool is_write);

  /// Per-process page table (kernel-owned, like mm_struct). O(1): reads the
  /// pointer cached on the process at create_process() time.
  [[nodiscard]] sim::GuestPageTable& page_table(Process& proc);

  // ---- guest-physical memory -----------------------------------------------
  [[nodiscard]] Gpa alloc_gpa_frame();
  void free_gpa_frame(Gpa gpa);
  /// Force an EPT mapping to exist for `gpa` (models a kernel touch).
  void ensure_ept_mapped(Gpa gpa);

  /// The swap daemon (kernel's own dirty-tracking consumer, paper §I).
  [[nodiscard]] SwapDaemon& swap() noexcept { return *swap_; }

  // ---- OoH-SPP: sub-page write protection (paper §III-D) --------------------
  /// What the guest asks the handler to do after a guard hit.
  enum class SppAction { kUnprotect, kKill };
  using SppHandler = std::function<SppAction(Gva fault_addr)>;

  /// Install a 32-bit write-allow mask (bit i = sub-page i of 128B) for one
  /// page of `proc` (demand-mapping it if needed). Goes through the
  /// kOohSppProtect hypercall; the guest only ever names GPAs.
  void spp_protect(Process& proc, Gva gva_page, u32 write_mask);
  void spp_clear(Process& proc, Gva gva_page);
  [[nodiscard]] u32 spp_mask_of(Process& proc, Gva gva_page);
  void set_spp_handler(Process& proc, SppHandler handler);

  [[nodiscard]] u64 spp_violations() const noexcept { return spp_violations_; }

  // ---- sim::GuestIrqSink -----------------------------------------------------
  void on_guest_pml_full(sim::Vcpu& vcpu) override;

 private:
  friend class ProcFs;
  friend class Uffd;

  void handle_not_present(Process& proc, Gva gva, bool is_write);
  void handle_not_writable(Process& proc, Gva gva);
  void handle_subpage_fault(Process& proc, Gva gva);
  [[nodiscard]] Gpa translate_gva(Process& proc, Gva gva_page);

  hv::Hypervisor& hypervisor_;
  hv::Vm& vm_;
  sim::ExecContext& ctx_;
  sim::Mmu mmu_;
  Scheduler sched_;
  std::unique_ptr<ProcFs> procfs_;
  std::unique_ptr<Uffd> uffd_;
  std::unique_ptr<SwapDaemon> swap_;
  std::unique_ptr<OohModule> ooh_module_;
  struct ProcEntry {
    std::unique_ptr<Process> proc;
    std::unique_ptr<sim::GuestPageTable> pt;
  };
  std::vector<ProcEntry> procs_;
  std::unordered_map<u32, SppHandler> spp_handlers_;
  u64 spp_violations_ = 0;
  u32 next_pid_ = 1;
  Gpa next_gpa_frame_ = kPageSize;  // guest frame 0 reserved, like HPA 0
  std::vector<Gpa> gpa_free_list_;
};

}  // namespace ooh::guest
