// GC stress property test: drive the heap with thousands of random mutator
// operations, then verify the collector against an *independent* host-side
// reachability computation built only from a shadow action log.
#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "base/rng.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "trackers/boehmgc/gc.hpp"

namespace ooh::gc {
namespace {

/// Shadow model: an independent record of the object graph the test built.
struct Shadow {
  struct Node {
    unsigned slots = 0;
  };
  std::unordered_map<Gva, Node> nodes;
  std::unordered_map<Gva, std::vector<Gva>> refs;
  std::unordered_set<Gva> roots;

  void on_alloc(Gva o, unsigned slots) {
    nodes[o] = {slots};
    refs[o].assign(slots, 0);
  }
  void on_write(Gva o, unsigned slot, Gva target) { refs.at(o)[slot] = target; }

  [[nodiscard]] std::unordered_set<Gva> reachable() const {
    std::unordered_set<Gva> seen(roots.begin(), roots.end());
    std::deque<Gva> frontier(roots.begin(), roots.end());
    while (!frontier.empty()) {
      const Gva cur = frontier.front();
      frontier.pop_front();
      for (const Gva r : refs.at(cur)) {
        if (r != 0 && seen.insert(r).second) frontier.push_back(r);
      }
    }
    return seen;
  }

  /// Drop records of objects the GC legitimately freed.
  void prune(const std::unordered_set<Gva>& live) {
    std::erase_if(nodes, [&](const auto& kv) { return !live.contains(kv.first); });
    std::erase_if(refs, [&](const auto& kv) { return !live.contains(kv.first); });
  }
};

class GcStress : public ::testing::TestWithParam<lib::Technique> {};

TEST_P(GcStress, RandomMutationsNeverFreeLiveOrLeakDead) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  GcHeap heap(k, proc, 256 * kMiB, /*threshold=*/64 * kGiB);  // manual cycles only
  heap.set_technique(GetParam());
  heap.prepare_tracker();
  k.scheduler().enter_process(proc.pid());

  Shadow shadow;
  std::vector<Gva> handles;  // objects the mutator still remembers
  Rng rng(20240705);

  for (int round = 0; round < 8; ++round) {
    for (int op = 0; op < 600; ++op) {
      const u64 dice = rng.below(100);
      if (dice < 45 || handles.empty()) {
        const unsigned slots = static_cast<unsigned>(rng.below(4));
        const Gva o = heap.alloc(slots, 8 * rng.below(16));
        shadow.on_alloc(o, slots);
        handles.push_back(o);
      } else if (dice < 70) {
        // Link two remembered objects.
        const Gva from = handles[rng.below(handles.size())];
        const Gva to = handles[rng.below(handles.size())];
        const unsigned slots = shadow.nodes.at(from).slots;
        if (slots > 0) {
          const unsigned slot = static_cast<unsigned>(rng.below(slots));
          heap.write_ref(from, slot, to);
          shadow.on_write(from, slot, to);
        }
      } else if (dice < 80) {
        const Gva o = handles[rng.below(handles.size())];
        if (!shadow.roots.contains(o)) {
          heap.add_root(o);
          shadow.roots.insert(o);
        }
      } else if (dice < 88 && !shadow.roots.empty()) {
        const Gva o = *shadow.roots.begin();
        heap.remove_root(o);
        shadow.roots.erase(o);
      } else {
        // Forget some handles: they become collectable unless reachable.
        for (int drop = 0; drop < 5 && !handles.empty(); ++drop) {
          handles[rng.below(handles.size())] = handles.back();
          handles.pop_back();
        }
      }
    }

    (void)heap.collect();

    // Independent verification: reachability recomputed from the shadow log.
    const std::unordered_set<Gva> expect_live = shadow.reachable();
    for (const Gva o : expect_live) {
      ASSERT_TRUE(heap.is_object(o)) << "GC freed a reachable object";
    }
    EXPECT_EQ(heap.live_objects(), expect_live.size())
        << "GC retained unreachable objects";
    shadow.prune(expect_live);
    // Drop handles to freed objects so later ops stay valid.
    std::erase_if(handles, [&](Gva o) { return !expect_live.contains(o); });
  }
  k.scheduler().exit_process(proc.pid());
}

INSTANTIATE_TEST_SUITE_P(Techniques, GcStress,
                         ::testing::Values(lib::Technique::kOracle,
                                           lib::Technique::kProc,
                                           lib::Technique::kEpml),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case lib::Technique::kOracle: return "oracle";
                             case lib::Technique::kProc: return "proc";
                             case lib::Technique::kEpml: return "epml";
                             default: return "other";
                           }
                         });

}  // namespace
}  // namespace ooh::gc
