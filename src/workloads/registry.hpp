// Table III registry: every benchmark application at its Small/Medium/Large
// configuration, with the paper's reported memory consumption.
//
// `scale_divisor` shrinks a configuration for quick runs (CI, default bench
// mode): iteration counts and data sizes divide by it, so both virtual-time
// and host-time shrink while the access *shape* is preserved. 1 = the
// paper's full-scale setup (bench binaries' --full flag).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "workloads/workload.hpp"

namespace ooh::wl {

struct WorkloadSpec {
  std::string_view app;
  ConfigSize size;
  u64 paper_footprint_bytes;  ///< Table III "Memory Cons.".
};

/// All (app, config) combinations of Table III.
[[nodiscard]] const std::vector<WorkloadSpec>& table3_specs();

[[nodiscard]] const std::vector<std::string_view>& phoenix_apps();
[[nodiscard]] const std::vector<std::string_view>& tkrzw_apps();

/// Instantiate `app` at `size`, optionally scaled down. Throws on unknown
/// names. GCBench requires attach_gc() before run().
[[nodiscard]] std::unique_ptr<Workload> make_workload(std::string_view app,
                                                      ConfigSize size,
                                                      u64 scale_divisor = 1);

/// Table III footprint for (app, size); throws if unknown.
[[nodiscard]] u64 paper_footprint_bytes(std::string_view app, ConfigSize size);

}  // namespace ooh::wl
