// Working-set-size estimation via the read-logging PML extension (related
// work: PML extended to log read pages). The hypervisor samples touched
// pages -- reads AND writes -- without guest cooperation.
#include <gtest/gtest.h>

#include "hypervisor/hypervisor.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh {
namespace {

class WssTest : public ::testing::Test {
 protected:
  WssTest() : bed_(), kernel_(bed_.kernel()), proc_(kernel_.create_process()) {
    base_ = proc_.mmap(512 * kPageSize);
    for (int i = 0; i < 512; ++i) proc_.touch_write(base_ + i * kPageSize);
  }
  lib::TestBed bed_;
  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  Gva base_ = 0;
};

TEST_F(WssTest, CountsReadAndWrittenPages) {
  hv::Hypervisor& hv = bed_.hypervisor();
  hv.enable_wss_sampling(bed_.vm());
  // Touch 100 pages: 60 by reading, 40 by writing.
  for (int i = 0; i < 60; ++i) proc_.touch_read(base_ + i * kPageSize);
  for (int i = 60; i < 100; ++i) proc_.touch_write(base_ + i * kPageSize);
  const std::vector<Gpa> wss = hv.harvest_wss(bed_.vm());
  EXPECT_EQ(wss.size(), 100u) << "reads must count toward the working set";
  EXPECT_GT(bed_.ctx().counters.get(Event::kPmlLogRead), 0u);
  hv.disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, SamplesAreDisjointIntervals) {
  hv::Hypervisor& hv = bed_.hypervisor();
  hv.enable_wss_sampling(bed_.vm());
  for (int i = 0; i < 50; ++i) proc_.touch_read(base_ + i * kPageSize);
  EXPECT_EQ(hv.harvest_wss(bed_.vm()).size(), 50u);
  EXPECT_EQ(hv.harvest_wss(bed_.vm()).size(), 0u) << "nothing touched since";
  for (int i = 0; i < 10; ++i) proc_.touch_read(base_ + i * kPageSize);  // re-touch
  EXPECT_EQ(hv.harvest_wss(bed_.vm()).size(), 10u);
  hv.disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, HotColdWorkingSetTracksHotSet) {
  hv::Hypervisor& hv = bed_.hypervisor();
  hv.enable_wss_sampling(bed_.vm());
  // Hot set of 32 pages hammered repeatedly; one-shot cold sweep happened
  // only before sampling started.
  for (int rep = 0; rep < 20; ++rep) {
    for (int i = 0; i < 32; ++i) proc_.touch_write(base_ + i * kPageSize);
    const std::vector<Gpa> wss = hv.harvest_wss(bed_.vm());
    EXPECT_EQ(wss.size(), 32u);
  }
  hv.disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, MutuallyExclusiveWithGuestSpml) {
  auto tracker = lib::make_tracker(lib::Technique::kSpml, kernel_, proc_);
  tracker->init();
  EXPECT_THROW(bed_.hypervisor().enable_wss_sampling(bed_.vm()), std::logic_error);
  tracker->shutdown();
  bed_.hypervisor().enable_wss_sampling(bed_.vm());  // fine once SPML is gone
  bed_.hypervisor().disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, EpmlGuestTrackingCoexistsWithWss) {
  // EPML uses guest-PTE dirty flags and its own buffer; WSS uses EPT
  // accessed flags and the hypervisor buffer. They do not interfere.
  auto tracker = lib::make_tracker(lib::Technique::kEpml, kernel_, proc_);
  tracker->init();
  tracker->begin_interval();
  bed_.hypervisor().enable_wss_sampling(bed_.vm());

  kernel_.scheduler().enter_process(proc_.pid());
  for (int i = 0; i < 20; ++i) proc_.touch_write(base_ + i * kPageSize);
  for (int i = 20; i < 50; ++i) proc_.touch_read(base_ + i * kPageSize);
  kernel_.scheduler().exit_process(proc_.pid());

  EXPECT_EQ(bed_.hypervisor().harvest_wss(bed_.vm()).size(), 50u);
  EXPECT_EQ(tracker->collect().size(), 20u) << "EPML sees only the writes";
  bed_.hypervisor().disable_wss_sampling(bed_.vm());
  tracker->shutdown();
}

}  // namespace
}  // namespace ooh
