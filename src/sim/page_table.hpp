// Guest page table: per-process GVA -> GPA mapping with the PTE bits the
// paper's tracking techniques manipulate.
//
//   dirty       : hardware-set on write; EPML's guest-level PML triggers when
//                 a write *sets* this flag.
//   soft_dirty  : Linux's bit-55 clone; set by the #PF handler after
//                 clear_refs write-protected the PTE (/proc technique).
//   uffd_wp     : userfaultfd write-protect marker; faults go to userspace.
#pragma once

#include <cstdint>

#include "base/types.hpp"
#include "sim/radix.hpp"

namespace ooh::sim {

struct Pte {
  u64 gpa_page = 0;      ///< page-aligned GPA this GVA maps to.
  bool present : 1 = false;
  bool writable : 1 = false;
  bool user : 1 = false;
  bool accessed : 1 = false;
  bool dirty : 1 = false;
  bool soft_dirty : 1 = false;
  bool uffd_wp : 1 = false;
};

class GuestPageTable {
 public:
  /// Install a present mapping gva_page -> gpa_page (both page-aligned).
  void map(Gva gva_page, Gpa gpa_page, bool writable);
  void unmap(Gva gva_page);

  [[nodiscard]] Pte* pte(Gva gva) noexcept { return table_.find(page_floor(gva)); }
  [[nodiscard]] const Pte* pte(Gva gva) const noexcept {
    return table_.find(page_floor(gva));
  }

  /// Visit every *present* PTE as fn(gva_page, Pte&).
  template <typename Fn>
  void for_each_present(Fn&& fn) {
    table_.for_each([&](u64 addr, Pte& e) {
      if (e.present) fn(addr, e);
    });
  }

  [[nodiscard]] u64 present_pages() const noexcept { return present_pages_; }

  // ---- paging-structure walk cache (see RadixTable4) -------------------------
  void invalidate_walk_cache() const noexcept { table_.invalidate_walk_cache(); }
  [[nodiscard]] bool walk_cache_coherent() const noexcept {
    return table_.walk_cache_coherent();
  }
  /// Test-only: corrupt the walk cache so WALK-1 mutation tests can prove
  /// the coherence oracle notices.
  void debug_skew_walk_cache() noexcept { table_.debug_skew_walk_cache(); }

 private:
  RadixTable4<Pte> table_;
  u64 present_pages_ = 0;
};

}  // namespace ooh::sim
