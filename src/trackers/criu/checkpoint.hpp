// CRIU-like process checkpoint/restore with pluggable dirty tracking.
//
// Phase structure follows the paper (§VI-F): after an initial full copy,
// the process keeps running under tracking; at checkpoint time CRIU
// collects dirty addresses (the MD, memory-dump phase) and writes those
// pages to the image (the MW, memory-write phase).
//
// The technique changes the phase shape exactly as the paper describes:
//   * /proc fuses MD into MW -- pages are written as the pagemap walk finds
//     them, so MW grows with memory size (Fig. 7);
//   * SPML performs the GPA->GVA reverse mapping inside MD, dominating the
//     checkpoint (Fig. 8);
//   * EPML reads GVAs from the ring, leaving MW as a pure page write.
#pragma once

#include <unordered_map>
#include <vector>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "ooh/experiment.hpp"
#include "ooh/tracker.hpp"

namespace ooh::criu {

/// A checkpoint image: per-page contents (empty vector when the source VMA
/// is metadata-only) plus the VMA layout needed to restore.
struct CheckpointImage {
  struct VmaRecord {
    Gva start = 0;
    u64 bytes = 0;
    bool data_backed = false;
  };
  std::vector<VmaRecord> vmas;
  std::unordered_map<Gva, std::vector<u8>> pages;  ///< page GVA -> contents.
  u64 dump_ops = 0;  ///< total page writes, including overwrites of stale pages.
};

struct CheckpointPhases {
  VirtDuration init{0};      ///< tracker setup.
  VirtDuration precopy{0};   ///< incremental pre-dump rounds while running.
  VirtDuration md{0};        ///< final memory-dump (address collection).
  VirtDuration mw{0};        ///< final memory-write (page dump).
  [[nodiscard]] VirtDuration checkpoint_total() const noexcept { return md + mw; }
};

struct CheckpointOptions {
  /// Pre-copy cadence: dirty pages are collected and dumped every period
  /// while the workload runs. Zero = single final dump only.
  VirtDuration precopy_period{0};
  /// Dump the full mapped memory before tracking intervals begin.
  bool initial_full_copy = true;
};

struct CheckpointResult {
  CheckpointImage image;
  CheckpointPhases phases;
  lib::RunResult run;      ///< workload-side metrics (tracked time etc).
  u64 full_copy_pages = 0;
  u64 final_dirty_pages = 0;
};

class Checkpointer {
 public:
  Checkpointer(guest::GuestKernel& kernel, lib::Technique technique)
      : kernel_(kernel), technique_(technique) {}

  /// Run `workload` in `proc` under tracking and checkpoint it: initial full
  /// copy, optional pre-copy rounds, final MD + MW after the run.
  CheckpointResult checkpoint_during(guest::Process& proc, const lib::WorkloadFn& workload,
                                     const CheckpointOptions& opts = {});

  /// One-shot dump of the current memory state (no tracking).
  CheckpointImage full_checkpoint(guest::Process& proc);

  [[nodiscard]] lib::Technique technique() const noexcept { return technique_; }

  /// Write `pages` of `proc` into `image` (content + disk cost per page).
  void dump_pages(guest::Process& proc, const std::vector<Gva>& pages,
                  CheckpointImage& image);

 private:

  guest::GuestKernel& kernel_;
  lib::Technique technique_;
};

/// Rebuild `proc` (must be fresh, no VMAs) from `image`. Restored pages are
/// written through the MMU, so the restore itself is a trackable workload.
void restore(guest::Process& proc, const CheckpointImage& image);

/// A long-lived incremental checkpoint chain (CRIU's pre-dump series): one
/// full copy up front, then each step() runs a slice of the workload and
/// dumps only the pages dirtied since the previous step. The image always
/// restores to the state as of the latest step.
class IncrementalSession {
 public:
  IncrementalSession(guest::GuestKernel& kernel, lib::Technique technique,
                     guest::Process& proc);
  ~IncrementalSession();

  IncrementalSession(const IncrementalSession&) = delete;
  IncrementalSession& operator=(const IncrementalSession&) = delete;

  struct StepResult {
    u64 dirty_pages = 0;        ///< pages dumped this step.
    VirtDuration run_time{0};   ///< the workload slice's tracked time.
    VirtDuration dump_time{0};  ///< MD + MW for the delta.
  };
  StepResult step(const lib::WorkloadFn& slice);

  [[nodiscard]] const CheckpointImage& image() const noexcept { return image_; }
  [[nodiscard]] u64 steps() const noexcept { return steps_; }
  [[nodiscard]] u64 full_copy_pages() const noexcept { return full_copy_pages_; }

 private:
  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  Checkpointer checkpointer_;
  std::unique_ptr<lib::DirtyTracker> tracker_;
  CheckpointImage image_;
  u64 full_copy_pages_ = 0;
  u64 steps_ = 0;
};

}  // namespace ooh::criu
