file(REMOVE_RECURSE
  "../bench/table3_workload_footprints"
  "../bench/table3_workload_footprints.pdb"
  "CMakeFiles/table3_workload_footprints.dir/table3_workload_footprints.cpp.o"
  "CMakeFiles/table3_workload_footprints.dir/table3_workload_footprints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_workload_footprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
