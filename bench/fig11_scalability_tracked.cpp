// Figure 11: Tracked (Phoenix-histogram under Boehm) performance as the
// number of tenant VMs grows from 1 to 5.
//
// Paper's finding: the per-VM impact of each technique on the Tracked
// matches the single-VM result and stays constant as VMs are added.
#include "boehm_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/128);
  bench::print_header("Figure 11", "Per-VM Tracked time with 1..5 tenant VMs");

  TextTable t({"VMs + technique", "min app (ms)", "max app (ms)", "spread (%)"});
  for (unsigned vms = 1; vms <= 5; ++vms) {
    for (const lib::Technique tech :
         {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
      lib::TestBedOptions opts;
      opts.tenant_vms = vms;
      lib::TestBed bed(opts);
      double min_t = 1e300, max_t = 0.0;
      for (unsigned i = 0; i < vms; ++i) {
        const bench::BoehmRun r = bench::run_boehm_in(
            bed.kernel(i), "histogram", wl::ConfigSize::kLarge, args.scale, tech);
        min_t = std::min(min_t, r.app_time_us);
        max_t = std::max(max_t, r.app_time_us);
      }
      t.add_row(std::to_string(vms) + " " + std::string(lib::technique_name(tech)),
                {min_t / 1e3, max_t / 1e3, (max_t - min_t) / max_t * 100.0}, 2);
    }
  }
  t.print(std::cout);
  std::printf("\nShape check: per-VM Tracked time is flat in the VM count.\n");
  return 0;
}
