file(REMOVE_RECURSE
  "../bench/table1_ufd_proc_overhead"
  "../bench/table1_ufd_proc_overhead.pdb"
  "CMakeFiles/table1_ufd_proc_overhead.dir/table1_ufd_proc_overhead.cpp.o"
  "CMakeFiles/table1_ufd_proc_overhead.dir/table1_ufd_proc_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ufd_proc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
