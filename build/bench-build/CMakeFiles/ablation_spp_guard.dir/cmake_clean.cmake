file(REMOVE_RECURSE
  "../bench/ablation_spp_guard"
  "../bench/ablation_spp_guard.pdb"
  "CMakeFiles/ablation_spp_guard.dir/ablation_spp_guard.cpp.o"
  "CMakeFiles/ablation_spp_guard.dir/ablation_spp_guard.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spp_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
