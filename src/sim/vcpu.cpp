#include "sim/vcpu.hpp"

#include <stdexcept>

#include "sim/ept.hpp"
#include "sim/machine.hpp"

namespace ooh::sim {

Vcpu::Vcpu(Machine& machine, u32 vm_id, u32 cpu_index)
    : ctx_(machine.create_context()), id_(vm_id), cpu_index_(cpu_index) {
  // The hardware logging circuits are permanent chain members, first in
  // dispatch order; each checks its own VMCS arming per event, so an
  // unconfigured circuit is a no-op exactly like the un-enabled hardware.
  track_.register_notifier(TrackLayer::kGuestPtDirty, &guest_pml_circuit_);
  track_.register_notifier(TrackLayer::kEptAccessed, &hyp_pml_circuit_);
  track_.register_notifier(TrackLayer::kEptDirty, &hyp_pml_circuit_);
}

Vmcs& Vcpu::create_shadow_vmcs() {
  if (!shadow_) {
    shadow_ = std::make_unique<Vmcs>(/*shadow=*/true);
    vmcs_.write(VmcsField::kVmcsLinkPointer, reinterpret_cast<u64>(shadow_.get()));
  }
  return *shadow_;
}

void Vcpu::destroy_shadow_vmcs() {
  shadow_.reset();
  shadow_readable_ = {};
  shadow_writable_ = {};
  vmcs_.write(VmcsField::kVmcsLinkPointer, 0);
  vmcs_.set_control(kEnableVmcsShadowing, false);
}

u64 Vcpu::guest_vmread(VmcsField f) {
  if (mode_ != CpuMode::kVmxNonRoot) {
    throw std::logic_error("guest_vmread executed in root mode");
  }
  if (!vmcs_.control(kEnableVmcsShadowing) || shadow_ == nullptr) {
    // Without shadowing, vmread in non-root mode traps. OoH never takes this
    // path; treat it as a programming error rather than emulating the trap.
    throw std::logic_error("vmread in guest mode without VMCS shadowing");
  }
  if (!shadow_readable_.contains(f)) {
    throw std::logic_error("vmread of a field outside the shadowing read bitmap");
  }
  ctx_.count(Event::kVmread);
  ctx_.charge_us(ctx_.cost.vmread_us);
  return shadow_->read(f);
}

void Vcpu::guest_vmwrite(VmcsField f, u64 value) {
  if (mode_ != CpuMode::kVmxNonRoot) {
    throw std::logic_error("guest_vmwrite executed in root mode");
  }
  if (!vmcs_.control(kEnableVmcsShadowing) || shadow_ == nullptr) {
    throw std::logic_error("vmwrite in guest mode without VMCS shadowing");
  }
  if (!shadow_writable_.contains(f)) {
    throw std::logic_error("vmwrite of a field outside the shadowing write bitmap");
  }
  ctx_.count(Event::kVmwrite);
  ctx_.charge_us(ctx_.cost.vmwrite_us);
  if (f == VmcsField::kGuestPmlAddress) {
    // EPML ISA extension: the guest supplies a GPA; hardware translates it
    // through the EPT before storing so logging hits the right RAM page.
    if (ept_ == nullptr) throw std::logic_error("EPML vmwrite without an EPT");
    Hpa hpa = 0;
    if (value != 0 && !ept_->translate(value, hpa)) {
      throw std::runtime_error("EPML: guest PML buffer GPA not mapped in EPT");
    }
    shadow_->write(f, hpa);
    return;
  }
  shadow_->write(f, value);
}

u64 Vcpu::hypercall(Hypercall nr, u64 a0, u64 a1) {
  if (exits_ == nullptr) throw std::logic_error("hypercall with no VmExitHandler");
  return vmexit_to_root(Event::kHypercall,
                        [&] { return exits_->on_hypercall(*this, nr, a0, a1); });
}

void Vcpu::begin_exit(Event reason) {
  ctx_.count(Event::kVmExit);
  if (reason != Event::kVmExit) ctx_.count(reason);
  // Hypercall round-trip latency is folded into the per-hypercall constants
  // (Table V(a) M9..M14); other exits charge the bare transition here.
  if (reason != Event::kHypercall) ctx_.charge_us(ctx_.cost.vmexit_us);
  mode_ = CpuMode::kVmxRoot;
}

}  // namespace ooh::sim
