// Four-level radix table over the x86-64 48-bit address split
// (9 + 9 + 9 + 9 index bits above the 12-bit page offset).
//
// Shared by the guest page table (GVA -> GPA) and the EPT (GPA -> HPA);
// only the leaf entry type differs. Interior nodes are allocated lazily so a
// sparse 1.5 GiB mapping costs a few thousand nodes.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <memory>

#include "base/types.hpp"

namespace ooh::sim {

inline constexpr unsigned kRadixBits = 9;
inline constexpr std::size_t kRadixFanout = std::size_t{1} << kRadixBits;  // 512

/// Only bits 47:12 participate in the 9+9+9+9 split: an address with bits
/// set above 47 would silently alias a canonical one.
[[nodiscard]] constexpr bool radix_canonical(u64 addr) noexcept {
  return (addr >> 48) == 0;
}

[[nodiscard]] constexpr std::size_t radix_index(u64 addr, unsigned level) noexcept {
  // level 3 = top (bits 47:39) ... level 0 = leaf (bits 20:12).
  return (addr >> (kPageShift + kRadixBits * level)) & (kRadixFanout - 1);
}

template <typename EntryT>
class RadixTable4 {
 public:
  /// Pointer to the leaf entry for `addr`, or nullptr if any interior node
  /// on the path is absent. Never allocates.
  [[nodiscard]] EntryT* find(u64 addr) noexcept {
    assert(radix_canonical(addr) && "address beyond the 48-bit split aliases");
    L2* l2 = root_.children[radix_index(addr, 3)].get();
    if (l2 == nullptr) return nullptr;
    L1* l1 = l2->children[radix_index(addr, 2)].get();
    if (l1 == nullptr) return nullptr;
    Leaf* leaf = l1->children[radix_index(addr, 1)].get();
    if (leaf == nullptr) return nullptr;
    return &leaf->entries[radix_index(addr, 0)];
  }
  [[nodiscard]] const EntryT* find(u64 addr) const noexcept {
    return const_cast<RadixTable4*>(this)->find(addr);
  }

  /// Leaf entry for `addr`, allocating interior nodes as needed.
  [[nodiscard]] EntryT& ensure(u64 addr) {
    assert(radix_canonical(addr) && "address beyond the 48-bit split aliases");
    auto& l2 = root_.children[radix_index(addr, 3)];
    if (!l2) l2 = std::make_unique<L2>();
    auto& l1 = l2->children[radix_index(addr, 2)];
    if (!l1) l1 = std::make_unique<L1>();
    auto& leaf = l1->children[radix_index(addr, 1)];
    if (!leaf) {
      leaf = std::make_unique<Leaf>();
      ++leaf_count_;
    }
    return leaf->entries[radix_index(addr, 0)];
  }

  /// Visit every entry in existing leaves as fn(page_base_addr, EntryT&).
  /// Visits entries whether or not they are "present"; callers filter.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i3 = 0; i3 < kRadixFanout; ++i3) {
      L2* l2 = root_.children[i3].get();
      if (l2 == nullptr) continue;
      for (std::size_t i2 = 0; i2 < kRadixFanout; ++i2) {
        L1* l1 = l2->children[i2].get();
        if (l1 == nullptr) continue;
        for (std::size_t i1 = 0; i1 < kRadixFanout; ++i1) {
          Leaf* leaf = l1->children[i1].get();
          if (leaf == nullptr) continue;
          for (std::size_t i0 = 0; i0 < kRadixFanout; ++i0) {
            const u64 addr = ((static_cast<u64>(i3) << (kRadixBits * 3)) |
                              (static_cast<u64>(i2) << (kRadixBits * 2)) |
                              (static_cast<u64>(i1) << kRadixBits) | static_cast<u64>(i0))
                             << kPageShift;
            fn(addr, leaf->entries[i0]);
          }
        }
      }
    }
  }

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

 private:
  struct Leaf {
    std::array<EntryT, kRadixFanout> entries{};
  };
  struct L1 {
    std::array<std::unique_ptr<Leaf>, kRadixFanout> children;
  };
  struct L2 {
    std::array<std::unique_ptr<L1>, kRadixFanout> children;
  };
  struct L3 {
    std::array<std::unique_ptr<L2>, kRadixFanout> children;
  };
  L3 root_;
  std::size_t leaf_count_ = 0;
};

}  // namespace ooh::sim
