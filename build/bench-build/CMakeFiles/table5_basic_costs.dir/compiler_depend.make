# Empty compiler generated dependencies file for table5_basic_costs.
# This may be replaced when dependencies are built.
