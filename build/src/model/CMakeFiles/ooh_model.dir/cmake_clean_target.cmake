file(REMOVE_RECURSE
  "libooh_model.a"
)
