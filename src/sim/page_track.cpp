#include "sim/page_track.hpp"

#include <algorithm>
#include <stdexcept>

#include "base/sync.hpp"
#include "sim/exec_context.hpp"
#include "sim/vcpu.hpp"

namespace ooh::sim {

std::string_view track_layer_name(TrackLayer layer) noexcept {
  switch (layer) {
    case TrackLayer::kGuestPtDirty: return "guest-pt-dirty";
    case TrackLayer::kEptDirty: return "ept-dirty";
    case TrackLayer::kEptAccessed: return "ept-accessed";
    case TrackLayer::kEptWpFault: return "ept-wp-fault";
    case TrackLayer::kGuestWpFault: return "guest-wp-fault";
    case TrackLayer::kPmlDrain: return "pml-drain";
    case TrackLayer::kCount: break;
  }
  return "?";
}

void WriteTrackRegistry::register_notifier(TrackLayer layer, PageTrackNotifier* n,
                                           bool is_enabled) {
  if (n == nullptr) throw std::invalid_argument("null page-track notifier");
  if (registered(layer, n)) {
    throw std::logic_error("notifier already registered on this layer");
  }
  // Chain mutation is a quiescent-point operation (no concurrent dispatch
  // on this vCPU's chain); the annotation lets the schedule explorer flag a
  // registration racing a dispatch as RACE-1 instead of trusting the
  // comment.
  OOH_SYNC_PLAIN_WRITE(&chain(layer));
  chain(layer).push_back(Registration{n, is_enabled, 0});
}

void WriteTrackRegistry::unregister_notifier(TrackLayer layer, PageTrackNotifier* n) {
  auto& regs = chain(layer);
  const auto it = std::find_if(regs.begin(), regs.end(),
                               [n](const Registration& r) { return r.notifier == n; });
  if (it == regs.end()) {
    throw std::logic_error("notifier not registered on this layer");
  }
  OOH_SYNC_PLAIN_WRITE(&regs);
  regs.erase(it);
}

bool WriteTrackRegistry::registered(TrackLayer layer,
                                    const PageTrackNotifier* n) const noexcept {
  const auto& regs = chain(layer);
  return std::any_of(regs.begin(), regs.end(),
                     [n](const Registration& r) { return r.notifier == n; });
}

void WriteTrackRegistry::set_enabled(TrackLayer layer, PageTrackNotifier* n,
                                     bool is_enabled) {
  for (Registration& r : chain(layer)) {
    if (r.notifier == n) {
      r.enabled = is_enabled;
      return;
    }
  }
  throw std::logic_error("set_enabled on a notifier not registered on this layer");
}

bool WriteTrackRegistry::enabled(TrackLayer layer,
                                 const PageTrackNotifier* n) const noexcept {
  for (const Registration& r : chain(layer)) {
    if (r.notifier == n) return r.enabled;
  }
  return false;
}

bool WriteTrackRegistry::any_enabled(TrackLayer layer) const noexcept {
  const auto& regs = chain(layer);
  return std::any_of(regs.begin(), regs.end(),
                     [](const Registration& r) { return r.enabled; });
}

bool WriteTrackRegistry::dispatch(TrackLayer layer, const TrackEvent& ev) {
  Chain& c = chains_[static_cast<std::size_t>(layer)];
  // Dispatch mutates per-registration delivery counters, so for the
  // explorer's purposes it is a write to the chain: it conflicts with any
  // concurrent (un)registration on the same chain (see register_notifier).
  OOH_SYNC_PLAIN_WRITE(&c.regs);
  ++c.dispatched;
  bool handled = false;
  // Index loop, not iterators: a notifier may register or unregister
  // notifiers on this layer — including itself — while handling an event
  // (e.g. a tracker tearing down).
  for (std::size_t i = 0; i < c.regs.size();) {
    if (!c.regs[i].enabled) {
      ++i;
      continue;
    }
    PageTrackNotifier* n = c.regs[i].notifier;
    ++c.regs[i].delivered;
    if (n->on_track(layer, ev)) {
      handled = true;
      if (stops_at_first_handler(layer)) break;
    }
    // Unregistration during the callback shifts the chain left; advance
    // only if slot i still holds the notifier that just ran.
    if (i < c.regs.size() && c.regs[i].notifier == n) ++i;
  }
  return handled;
}

void WriteTrackRegistry::register_flush(PageTrackNotifier* n) {
  if (n == nullptr) throw std::invalid_argument("null page-track flush notifier");
  if (std::find(flush_chain_.begin(), flush_chain_.end(), n) != flush_chain_.end()) {
    throw std::logic_error("flush notifier already registered");
  }
  flush_chain_.push_back(n);
}

void WriteTrackRegistry::unregister_flush(PageTrackNotifier* n) {
  const auto it = std::find(flush_chain_.begin(), flush_chain_.end(), n);
  if (it == flush_chain_.end()) throw std::logic_error("flush notifier not registered");
  flush_chain_.erase(it);
}

void WriteTrackRegistry::notify_flush(u32 pid, Gva start, Gva end) {
  for (std::size_t i = 0; i < flush_chain_.size(); ++i) {
    flush_chain_[i]->on_track_flush(pid, start, end);
  }
}

u64 WriteTrackRegistry::events_delivered(TrackLayer layer,
                                         const PageTrackNotifier* n) const noexcept {
  for (const Registration& r : chain(layer)) {
    if (r.notifier == n) return r.delivered;
  }
  return 0;
}

u64 WriteTrackRegistry::events_dispatched(TrackLayer layer) const noexcept {
  return chains_[static_cast<std::size_t>(layer)].dispatched;
}

// ---- HypPmlLogger -----------------------------------------------------------

namespace {

bool hyp_pml_active(const Vcpu& vcpu) noexcept {
  const Vmcs& v = vcpu.vmcs();
  return v.control(kEnablePml) && v.read(VmcsField::kPmlAddress) != 0;
}

bool read_log_active(const Vcpu& vcpu) noexcept {
  const Vmcs& v = vcpu.vmcs();
  return v.control(kEnablePml) && v.control(kEnablePmlReadLog) &&
         v.read(VmcsField::kPmlAddress) != 0;
}

bool guest_pml_active(Vcpu& vcpu) noexcept {
  const Vmcs& v = vcpu.vmcs();
  if (!v.control(kEnableGuestPml)) return false;
  const Vmcs* shadow = vcpu.shadow_vmcs();
  return shadow != nullptr && shadow->read(VmcsField::kGuestPmlEnable) != 0 &&
         shadow->read(VmcsField::kGuestPmlAddress) != 0;
}

/// PML-full VM-exit into the root-mode handler (drain + index reset).
void raise_hyp_pml_full(Vcpu& vcpu) {
  vcpu.vmexit_to_root(Event::kVmExitPmlFull,
                      [&] { vcpu.exits()->on_pml_full(vcpu); });
}

}  // namespace

void HypPmlLogger::log_gpa(Vcpu& vcpu, u64 entry) {
  ExecContext& ctx = vcpu.ctx();
  Vmcs& v = vcpu.vmcs();
  u16 idx = static_cast<u16>(v.read(VmcsField::kPmlIndex));
  bool faulted = false;
  if (idx > kPmlIndexStart) {
    // Defensive: the eager full-exit below resets the index the moment the
    // 512th entry lands, so a wrapped index here means a handler declined
    // to drain. Give it one more exit, then treat it as the bug it is.
    raise_hyp_pml_full(vcpu);
    idx = static_cast<u16>(v.read(VmcsField::kPmlIndex));
    if (idx > kPmlIndexStart) {
      throw std::logic_error("PML-full handler did not reset the PML index");
    }
  } else if (ctx.fault_fire(fault::FaultPoint::kPmlForceFull)) {
    // Injected fault: hardware reports buffer-full at this (adversarial,
    // possibly mid-buffer) index; the handler drains the partial buffer.
    faulted = true;
    raise_hyp_pml_full(vcpu);
    idx = static_cast<u16>(v.read(VmcsField::kPmlIndex));
    if (idx > kPmlIndexStart) {
      throw std::logic_error("PML-full handler did not reset the PML index");
    }
  }
  const Hpa buf = v.read(VmcsField::kPmlAddress);
  ctx.pmem.write_u64(buf + u64{idx} * 8, entry);
  const u16 next = static_cast<u16>(idx - 1);  // wraps past 0
  v.write(VmcsField::kPmlIndex, next);
  ctx.count(Event::kPmlLogGpa);
  ctx.charge_ns(ctx.cost.pml_log_ns);
  if (next > kPmlIndexStart) {
    // That was the 512th entry: the buffer-full VM-exit fires as the write
    // that fills the buffer retires (SDM PML semantics), not lazily on the
    // next logging attempt.
    raise_hyp_pml_full(vcpu);
    if (static_cast<u16>(v.read(VmcsField::kPmlIndex)) > kPmlIndexStart) {
      throw std::logic_error("PML-full handler did not reset the PML index");
    }
  }
  if (faulted) ctx.fault_audit();
}

bool HypPmlLogger::on_track(TrackLayer layer, const TrackEvent& ev) {
  Vcpu& vcpu = *ev.vcpu;
  if (layer == TrackLayer::kEptAccessed) {
    // Read-logging extension: accessed-flag transitions log the GPA so the
    // hypervisor can estimate the working set (touched, not just dirtied).
    if (!read_log_active(vcpu)) return false;
    vcpu.ctx().count(Event::kPmlLogRead);
    log_gpa(vcpu, pml_entry_encode(ev.gpa_page, ev.gran));
    return true;
  }
  // kEptDirty. Under read-logging the accessed transition already logged
  // this page; logging the dirty transition too would double-count it.
  if (!hyp_pml_active(vcpu) || read_log_active(vcpu)) return false;
  // One buffer entry per leaf, at the leaf's granularity (a 2 MiB leaf
  // costs one entry, not 512 — PML's precision/byte trade-off).
  log_gpa(vcpu, pml_entry_encode(ev.gpa_page, ev.gran));
  return true;
}

// ---- GuestPmlLogger ---------------------------------------------------------

namespace {

/// Post the EPML self-IPI into the OoH module (drain + index reset), unless
/// an injected fault drops it. True when the IPI was actually delivered.
/// No VM-exit either way — that is the whole point of EPML.
bool raise_guest_pml_full(Vcpu& vcpu) {
  ExecContext& ctx = vcpu.ctx();
  if (!ctx.fault_gate_self_ipi()) {
    // The IPI was dropped by an injected suppression fault; the buffer stays
    // wrapped until the bounded-retry redelivery. The machine is settled at
    // this point, so run the post-fault audit right at the blast site.
    ctx.fault_audit();
    return false;
  }
  ctx.count(Event::kSelfIpi);
  ctx.charge_us(ctx.cost.self_ipi_us + ctx.cost.irq_dispatch_us);
  vcpu.irq_sink()->on_guest_pml_full(vcpu);
  return true;
}

}  // namespace

bool GuestPmlLogger::on_track(TrackLayer /*layer*/, const TrackEvent& ev) {
  Vcpu& vcpu = *ev.vcpu;
  if (!guest_pml_active(vcpu)) return false;
  ExecContext& ctx = vcpu.ctx();
  Vmcs& shadow = *vcpu.shadow_vmcs();
  u16 idx = static_cast<u16>(shadow.read(VmcsField::kGuestPmlIndex));
  bool faulted = false;
  if (idx > kPmlIndexStart) {
    // Buffer still full from an earlier fill whose self-IPI was dropped by
    // an injected fault or deferred by an in-progress drain. Retry delivery
    // (the bounded-retry redelivery model); while the IPI stays undelivered
    // this write's entry has nowhere to go and is lost — visibly.
    const bool delivered = raise_guest_pml_full(vcpu);
    idx = static_cast<u16>(shadow.read(VmcsField::kGuestPmlIndex));
    if (!delivered || idx > kPmlIndexStart) {
      ctx.count(Event::kEpmlEntryLost);
      return true;
    }
  } else if (ctx.fault_fire(fault::FaultPoint::kEpmlForceFull)) {
    // Injected fault: report buffer-full at this adversarial index. The
    // IPI delivery itself still goes through the suppression gate; if it
    // is dropped the partial buffer simply stays in place (nothing lost —
    // there is still room for this entry).
    faulted = true;
    if (raise_guest_pml_full(vcpu)) {
      idx = static_cast<u16>(shadow.read(VmcsField::kGuestPmlIndex));
    }
  }
  const Hpa buf = shadow.read(VmcsField::kGuestPmlAddress);
  ctx.pmem.write_u64(buf + u64{idx} * 8, pml_entry_encode(ev.gva_page, ev.gran));
  const u16 next = static_cast<u16>(idx - 1);
  shadow.write(VmcsField::kGuestPmlIndex, next);
  ctx.count(Event::kPmlLogGvaGuest);
  ctx.charge_ns(ctx.cost.pml_log_ns);
  if (next > kPmlIndexStart) {
    // That was the 512th entry: the posted self-IPI fires as the filling
    // write retires (mirroring hardware PML's eager full exit). A dropped
    // IPI leaves the index wrapped; the next tracked write retries.
    (void)raise_guest_pml_full(vcpu);
  }
  if (faulted) ctx.fault_audit();
  return true;
}

}  // namespace ooh::sim
