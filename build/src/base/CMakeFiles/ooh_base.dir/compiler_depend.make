# Empty compiler generated dependencies file for ooh_base.
# This may be replaced when dependencies are built.
