#include "sim/page_table.hpp"

#include <cassert>

namespace ooh::sim {

void GuestPageTable::map(Gva gva_page, Gpa gpa_page, bool writable) {
  assert(is_page_aligned(gva_page) && is_page_aligned(gpa_page));
  if (backend_ == TranslationBackend::kSegment) {
    segs_->map(gva_page, gpa_page, writable);
    return;
  }
  Pte& e = table_.ensure(gva_page);
  if (!e.present) ++present_pages_;
  e = Pte{};
  e.gpa_page = gpa_page;
  e.present = true;
  e.writable = writable;
  e.user = true;
}

void GuestPageTable::unmap(Gva gva_page) {
  if (backend_ == TranslationBackend::kSegment) {
    segs_->unmap(page_floor(gva_page));
    return;
  }
  Pte* e = table_.find(page_floor(gva_page));
  if (e != nullptr && e->present) {
    *e = Pte{};
    --present_pages_;
    // Structural invalidation point: mirrors the TLB shootdown the unmap
    // path performs (leaves are zeroed in place, so this is discipline, not
    // a dangling-pointer fix — see docs/architecture.md "hot path").
    table_.invalidate_walk_cache();
  }
}

void GuestPageTable::map_huge(Gva gva_base, Gpa gpa_base, PageGran gran,
                              bool writable) {
  assert(backend_ == TranslationBackend::kRadix &&
         "segments are already range-based; huge leaves are a radix notion");
  assert(gran != PageGran::k4K && is_gran_aligned(gva_base, gran) &&
         is_gran_aligned(gpa_base, gran));
  Pte& e = table_.ensure_huge(gva_base, gran);
  if (!e.present) present_pages_ += gran_pages(gran);
  e = Pte{};
  e.gpa_page = gpa_base;
  e.present = true;
  e.writable = writable;
  e.user = true;
}

void GuestPageTable::unmap_huge(Gva gva_base, PageGran gran) {
  assert(backend_ == TranslationBackend::kRadix);
  Pte* e = table_.find_huge(gran_floor(gva_base, gran), gran);
  if (e != nullptr && e->present) {
    *e = Pte{};
    present_pages_ -= gran_pages(gran);
    table_.invalidate_walk_cache();
  }
}

void GuestPageTable::convert_to_segments() {
  assert(backend_ == TranslationBackend::kRadix);
  auto segs = std::make_unique<SegmentTable>();
  // The radix for_each visits in ascending GVA order, so the SegmentTable's
  // per-page map() coalesces contiguous identical-flag runs as it goes; the
  // sticky flags are then re-applied per resulting segment (OR of the run —
  // identical by the coalescing rule, writable included).
  table_.for_each_leaf([&](u64 addr, Pte& e, PageGran g) {
    if (!e.present) return;
    assert(g == PageGran::k4K && "split huge leaves before converting");
    (void)g;
    segs->map(addr, e.gpa_page, e.writable);
    Segment* s = segs->find(addr);
    if (s->pages == 1) {
      // Fresh segment: seed its flags from this first page.
      s->pte.accessed = e.accessed;
      s->pte.dirty = e.dirty;
      s->pte.soft_dirty = e.soft_dirty;
      s->pte.uffd_wp = e.uffd_wp;
    } else {
      // Coalesced into an existing run: widen the shared flags (sticky OR)
      // — the documented segment-granularity precision trade. Widening
      // uffd_wp tightens the derived write permission, so callers must TLB-
      // shootdown the pid after converting (the kSeg tracker init does).
      s->pte.accessed = s->pte.accessed || e.accessed;
      s->pte.dirty = s->pte.dirty || e.dirty;
      s->pte.soft_dirty = s->pte.soft_dirty || e.soft_dirty;
      s->pte.uffd_wp = s->pte.uffd_wp || e.uffd_wp;
    }
  });
  segs_ = std::move(segs);
  backend_ = TranslationBackend::kSegment;
  present_pages_ = 0;
  table_.clear();
}

}  // namespace ooh::sim
