// OoH-SPP tests (paper §III-D): sub-page permission semantics in the MMU,
// the hypercall interface, fault delivery, and the two guard allocators
// (classic page guards vs 128-byte SPP guards).
#include <gtest/gtest.h>

#include "guest/kernel.hpp"
#include "hypervisor/hypervisor.hpp"
#include "ooh/guard_alloc.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/spp.hpp"

namespace ooh {
namespace {

// ---- SppTable unit tests -------------------------------------------------------

TEST(SppTable, DefaultsToAllWritable) {
  sim::SppTable t;
  EXPECT_TRUE(t.write_allowed(0x5000));
  EXPECT_TRUE(t.write_allowed(0x5000 + 129));
  EXPECT_EQ(t.mask(0x5000), sim::kSppAllWritable);
}

TEST(SppTable, MaskControlsSubPages) {
  sim::SppTable t;
  // Protect sub-pages 0 and 31 of page 0x5000.
  t.set_mask(0x5000, sim::kSppAllWritable & ~(1u << 0) & ~(1u << 31));
  EXPECT_FALSE(t.write_allowed(0x5000));          // sub-page 0 (offset 0)
  EXPECT_FALSE(t.write_allowed(0x5000 + 127));    // still sub-page 0
  EXPECT_TRUE(t.write_allowed(0x5000 + 128));     // sub-page 1
  EXPECT_FALSE(t.write_allowed(0x5000 + 4095));   // sub-page 31
  EXPECT_TRUE(t.write_allowed(0x6000));           // other page untouched
  t.clear(0x5000);
  EXPECT_TRUE(t.write_allowed(0x5000));
}

TEST(SppTable, SubPageIndexArithmetic) {
  EXPECT_EQ(sim::subpage_index(0x5000), 0u);
  EXPECT_EQ(sim::subpage_index(0x5080), 1u);
  EXPECT_EQ(sim::subpage_index(0x5FFF), 31u);
  EXPECT_EQ(sim::kSubPagesPerPage, 32u);
}

// ---- kernel-level SPP behaviour -------------------------------------------------

class SppKernelTest : public ::testing::Test {
 protected:
  SppKernelTest() : bed_(), kernel_(bed_.kernel()), proc_(kernel_.create_process()) {
    base_ = proc_.mmap(4 * kPageSize);
    for (int i = 0; i < 4; ++i) proc_.touch_write(base_ + i * kPageSize);
  }
  lib::TestBed bed_;
  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  Gva base_ = 0;
};

TEST_F(SppKernelTest, ProtectedSubPageFaultsOthersProceed) {
  // Protect sub-page 2 of the first page.
  kernel_.spp_protect(proc_, base_, sim::kSppAllWritable & ~(1u << 2));
  proc_.touch_write(base_);          // sub-page 0: fine
  proc_.touch_write(base_ + 384);    // sub-page 3: fine
  EXPECT_THROW(proc_.touch_write(base_ + 2 * 128), guest::GuestSegfault);
  EXPECT_EQ(bed_.ctx().counters.get(Event::kSppViolation), 1u);
  EXPECT_EQ(kernel_.spp_violations(), 1u);
  // Reads are never blocked by SPP.
  proc_.touch_read(base_ + 2 * 128);
}

TEST_F(SppKernelTest, HandlerUnprotectAllowsRetry) {
  kernel_.spp_protect(proc_, base_, sim::kSppAllWritable & ~(1u << 5));
  int hits = 0;
  kernel_.set_spp_handler(proc_, [&](Gva) {
    ++hits;
    return guest::GuestKernel::SppAction::kUnprotect;
  });
  proc_.touch_write(base_ + 5 * 128);  // faults once, then proceeds
  proc_.touch_write(base_ + 5 * 128);  // unprotected now: no fault
  EXPECT_EQ(hits, 1);
}

TEST_F(SppKernelTest, ClearRestoresFullAccess) {
  kernel_.spp_protect(proc_, base_, 0);  // everything read-only
  EXPECT_THROW(proc_.touch_write(base_ + 1000), guest::GuestSegfault);
  kernel_.spp_clear(proc_, base_);
  proc_.touch_write(base_ + 1000);
}

TEST_F(SppKernelTest, TlbDoesNotCacheAroundSpp) {
  // Write through the page first so a dirty translation is cached, then
  // protect: the next write must still fault (no stale fast path).
  proc_.touch_write(base_ + kPageSize);
  kernel_.spp_protect(proc_, base_ + kPageSize, 0);
  EXPECT_THROW(proc_.touch_write(base_ + kPageSize), guest::GuestSegfault);
}

TEST_F(SppKernelTest, SppAndPmlCompose) {
  // EPML tracking and SPP guards coexist: allowed writes still log.
  auto tracker = lib::make_tracker(lib::Technique::kEpml, kernel_, proc_);
  tracker->init();
  tracker->begin_interval();
  kernel_.spp_protect(proc_, base_, sim::kSppAllWritable & ~1u);
  kernel_.scheduler().enter_process(proc_.pid());
  proc_.touch_write(base_ + 512);  // allowed sub-page
  EXPECT_THROW(proc_.touch_write(base_), guest::GuestSegfault);
  kernel_.scheduler().exit_process(proc_.pid());
  const std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty, std::vector<Gva>{base_}) << "the allowed write was logged";
  tracker->shutdown();
}

// ---- guard allocators ------------------------------------------------------------

TEST(GuardAllocators, PageGuardDetectsOverflowAtPageBoundary) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  lib::PageGuardAllocator alloc(k, proc);
  const Gva a = alloc.alloc(100);
  proc.write_u64(a, 1);
  proc.write_u64(a + 4088, 2);  // within the rounded page: undetected (classic flaw)
  EXPECT_THROW(proc.write_u64(a + kPageSize, 3), guest::GuestSegfault);
  EXPECT_EQ(alloc.stats().guard_bytes, kPageSize);
  EXPECT_EQ(alloc.stats().padding_bytes, kPageSize - 100);
}

TEST(GuardAllocators, SubPageGuardDetectsOverflowAt128Bytes) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  lib::SubPageGuardAllocator alloc(k, proc);
  const Gva a = alloc.alloc(100);
  proc.write_u64(a, 1);
  proc.write_u64(a + 96, 2);  // within the 128B-rounded payload
  // The very next sub-page is the guard: a 128-byte-out overflow traps,
  // where the page-guard variant would have silently corrupted.
  EXPECT_THROW(proc.write_u64(a + 128, 3), guest::GuestSegfault);
  EXPECT_EQ(alloc.stats().overflows_detected, 1u);
  EXPECT_EQ(alloc.stats().guard_bytes, sim::kSubPageSize);
}

TEST(GuardAllocators, SubsequentAllocationsAreIndependent) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  lib::SubPageGuardAllocator alloc(k, proc);
  std::vector<Gva> objs;
  for (int i = 0; i < 64; ++i) objs.push_back(alloc.alloc(64));
  // Every payload is writable; every guard in between traps.
  for (const Gva o : objs) proc.write_u64(o, 42);
  EXPECT_THROW(proc.write_u64(objs[10] + 128, 1), guest::GuestSegfault);
  for (const Gva o : objs) proc.write_u64(o + 56, 43);
  EXPECT_EQ(alloc.stats().allocations, 64u);
}

TEST(GuardAllocators, SubPageGuardWastes32xLessMemory) {
  // The §III-D headline: guard overhead drops by the sub-page count (32).
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& p1 = k.create_process();
  auto& p2 = k.create_process();
  lib::PageGuardAllocator page_alloc(k, p1);
  lib::SubPageGuardAllocator sub_alloc(k, p2);
  for (int i = 0; i < 100; ++i) {
    (void)page_alloc.alloc(128);
    (void)sub_alloc.alloc(128);
  }
  const double page_oh = page_alloc.stats().guard_overhead();
  const double sub_oh = sub_alloc.stats().guard_overhead();
  EXPECT_DOUBLE_EQ(page_oh / sub_oh, 32.0);
}

TEST(GuardAllocators, LargeAllocationsSpanPages) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  lib::SubPageGuardAllocator alloc(k, proc);
  const Gva a = alloc.alloc(3 * kPageSize);  // multi-page payload
  proc.write_u64(a, 1);
  proc.write_u64(a + 3 * kPageSize - 8, 2);
  EXPECT_THROW(proc.write_u64(a + 3 * kPageSize, 3), guest::GuestSegfault);
}

TEST(GuardAllocators, ZeroByteAllocationRejected) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  lib::SubPageGuardAllocator sub_alloc(k, proc);
  lib::PageGuardAllocator page_alloc(k, proc);
  EXPECT_THROW((void)sub_alloc.alloc(0), std::invalid_argument);
  EXPECT_THROW((void)page_alloc.alloc(0), std::invalid_argument);
}

TEST(GuardAllocators, ArenaExhaustionThrowsBadAlloc) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  lib::SubPageGuardAllocator alloc(k, proc, /*arena_bytes=*/2 * kPageSize);
  EXPECT_THROW((void)alloc.alloc(4 * kPageSize), std::bad_alloc);
}

}  // namespace
}  // namespace ooh
