#include "ooh/epoch_run.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ooh::lib {

unsigned epoch_threads_from_env() noexcept {
  const char* env = std::getenv("OOH_EPOCH_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<unsigned>(v) : 0;
}

EpochChain record_epochs(TestBed& bed, std::size_t epochs, const EpochBody& body) {
  EpochChain chain;
  chain.boundaries.reserve(epochs + 1);
  chain.boundaries.push_back(bed.save());
  for (std::size_t e = 0; e < epochs; ++e) {
    body(bed, e);
    chain.boundaries.push_back(bed.save());
  }
  return chain;
}

std::vector<std::vector<u8>> replay_epochs(
    const std::function<std::unique_ptr<TestBed>()>& make_bed,
    const EpochChain& chain, const EpochBody& body, ReplayOptions opt) {
  const std::size_t n = chain.epochs();
  epoch::Options pool;
  pool.threads = opt.threads;
  pool.stagger_seed = opt.stagger_seed;
  auto exits = epoch::EpochPool::map<std::vector<u8>>(
      n,
      [&](std::size_t e) {
        // A private bed per epoch: restore is in-place, so concurrent
        // epochs must not share one machine.
        std::unique_ptr<TestBed> bed = make_bed();
        bed->restore(chain.boundaries[e]);
        body(*bed, e);
        return bed->save().bytes;
      },
      pool);
  if (opt.verify_seams) {
    for (std::size_t e = 0; e < n; ++e) {
      if (exits[e] != chain.boundaries[e + 1].bytes) {
        throw std::runtime_error(
            "epoch replay: epoch " + std::to_string(e) +
            "'s exit state diverges from the recorded boundary " +
            std::to_string(e + 1) + " (EPOCH-1 seam mismatch)");
      }
    }
  }
  return exits;
}

EventCounters merge_counters(const std::vector<EventCounters>& parts) {
  EventCounters total;
  for (const EventCounters& p : parts) total.merge(p);
  return total;
}

}  // namespace ooh::lib
