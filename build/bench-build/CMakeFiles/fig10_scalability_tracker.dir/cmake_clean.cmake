file(REMOVE_RECURSE
  "../bench/fig10_scalability_tracker"
  "../bench/fig10_scalability_tracker.pdb"
  "CMakeFiles/fig10_scalability_tracker.dir/fig10_scalability_tracker.cpp.o"
  "CMakeFiles/fig10_scalability_tracker.dir/fig10_scalability_tracker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scalability_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
