
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/cost_model.cpp" "src/base/CMakeFiles/ooh_base.dir/cost_model.cpp.o" "gcc" "src/base/CMakeFiles/ooh_base.dir/cost_model.cpp.o.d"
  "/root/repo/src/base/counters.cpp" "src/base/CMakeFiles/ooh_base.dir/counters.cpp.o" "gcc" "src/base/CMakeFiles/ooh_base.dir/counters.cpp.o.d"
  "/root/repo/src/base/interp.cpp" "src/base/CMakeFiles/ooh_base.dir/interp.cpp.o" "gcc" "src/base/CMakeFiles/ooh_base.dir/interp.cpp.o.d"
  "/root/repo/src/base/stats.cpp" "src/base/CMakeFiles/ooh_base.dir/stats.cpp.o" "gcc" "src/base/CMakeFiles/ooh_base.dir/stats.cpp.o.d"
  "/root/repo/src/base/table.cpp" "src/base/CMakeFiles/ooh_base.dir/table.cpp.o" "gcc" "src/base/CMakeFiles/ooh_base.dir/table.cpp.o.d"
  "/root/repo/src/base/vtime.cpp" "src/base/CMakeFiles/ooh_base.dir/vtime.cpp.o" "gcc" "src/base/CMakeFiles/ooh_base.dir/vtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
