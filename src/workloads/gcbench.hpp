// GCBench: the classic garbage-collection micro-benchmark the paper uses
// for the Boehm evaluation (§VI-A). Builds a stretch tree, a long-lived
// tree and a long-lived array, then churns short-lived binary trees of
// increasing depth -- top-down and bottom-up, as in the original.
//
// Requires an attached GcHeap (attach_gc): nodes are GC objects and the
// churn is what drives collection cycles.
#pragma once

#include "workloads/workload.hpp"

namespace ooh::wl {

class GcBench final : public Workload {
 public:
  /// Table III parameters: array length, long-lived tree depth, stretch
  /// tree depth. `work_divisor` scales down the short-lived tree counts for
  /// quick runs (1 = the classic iteration formula).
  GcBench(u64 array_len, int lived_depth, int stretch_depth, u64 work_divisor = 1)
      : array_len_(array_len),
        lived_depth_(lived_depth),
        stretch_depth_(stretch_depth),
        work_divisor_(std::max<u64>(1, work_divisor)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "GCBench"; }
  [[nodiscard]] u64 footprint_bytes() const noexcept override;
  void setup(guest::Process&) override {}  // heap comes from the GcHeap
  void run(guest::Process& proc) override;

 private:
  [[nodiscard]] static u64 tree_size(int depth) noexcept {
    return (u64{1} << (depth + 1)) - 1;
  }
  Gva make_tree_top_down(guest::Process& proc, int depth);
  Gva make_tree_bottom_up(guest::Process& proc, int depth);

  u64 array_len_;
  int lived_depth_;
  int stretch_depth_;
  u64 work_divisor_;
  static constexpr int kMinDepth = 4;
};

}  // namespace ooh::wl
