#include "hypervisor/vm.hpp"

#include "sim/exec_context.hpp"
#include "sim/machine.hpp"

namespace ooh::hv {

Vm::Vm(sim::Machine& machine, u32 id, u64 mem_bytes, std::size_t spml_ring_entries,
       unsigned vcpus)
    : id_(id), mem_bytes_(mem_bytes) {
  cpus_.reserve(vcpus == 0 ? 1 : vcpus);
  for (unsigned cpu = 0; cpu < (vcpus == 0 ? 1 : vcpus); ++cpu) {
    cpus_.push_back(std::make_unique<CpuState>(spml_ring_entries));
    cpus_.back()->vcpu = std::make_unique<sim::Vcpu>(machine, id, cpu);
  }
}

bool HypDirtyLogConsumer::on_track(sim::TrackLayer /*layer*/,
                                   const sim::TrackEvent& ev) {
  const unsigned cpu = ev.vcpu->cpu_index();
  DirtyRing& ring = vm_.dirty_ring(cpu);
  sim::ExecContext& ctx = ev.vcpu->ctx();
  // Adversarial ring-full (kDirtyRingFull) forces the spill path even when
  // the ring has room, mirroring the kPmlForceFull pattern: the fault is
  // noted here but audited only after the in-flight PML drain settles the
  // buffer index (Vm::take_ring_fault in Hypervisor::drain_pml_buffer).
  const bool faulted = ctx.fault_fire(sim::fault::FaultPoint::kDirtyRingFull);
  if (faulted || !ring.try_push(ev.gpa_page)) {
    ring.spill(ev.gpa_page);
    ctx.count(Event::kDirtyRingFull);
    if (faulted) vm_.note_ring_fault(cpu);
  }
  return true;
}

bool SpmlRingConsumer::on_track(sim::TrackLayer /*layer*/,
                                const sim::TrackEvent& ev) {
  const unsigned cpu = ev.vcpu->cpu_index();
  vm_.spml_ring(cpu).push(ev.gpa_page);
  vm_.spml_interval_log(cpu).push_back(ev.gpa_page);
  ev.vcpu->ctx().count(Event::kRingBufCopyEntry);
  return true;
}

}  // namespace ooh::hv
