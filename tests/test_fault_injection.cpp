// Fault-injection suite (FAULT-1/FAULT-2 in docs/invariants.md): the
// deterministic FaultPlan/FaultInjector machinery, each injection point fired
// through the real PML/EPML/allocation/migration paths, graceful degradation
// to weaker techniques, bounded-retry self-IPI redelivery, and bit-identical
// same-seed replays. In audit builds every injected fault is chased by a full
// CoherenceChecker pass (the TestBed wires the post-fault hook), so a green
// run here is also the "audits stay clean after every fault" guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "guest/ooh_module.hpp"
#include "hypervisor/migration.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/fault/fault_plan.hpp"
#include "sim/fault/injector.hpp"

namespace ooh::lib {
namespace {

using sim::fault::FaultInjector;
using sim::fault::FaultPlan;
using sim::fault::FaultPoint;
using sim::fault::FaultRule;
using sim::fault::kFaultPointCount;

// ---- FaultPlan / FaultInjector unit tests -----------------------------------

TEST(FaultPlanTest, RuleFiresAtFirstThenEveryUpToLimit) {
  FaultPlan plan;
  plan.add({FaultPoint::kPmlForceFull, /*first=*/2, /*every=*/3, /*limit=*/2});
  FaultInjector inj(plan);
  std::vector<u64> fired_at;
  for (u64 i = 0; i < 12; ++i) {
    if (inj.fire(FaultPoint::kPmlForceFull)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<u64>{2, 5})) << "limit 2 stops arrival 8";
  EXPECT_EQ(inj.arrivals(FaultPoint::kPmlForceFull), 12u);
  EXPECT_EQ(inj.fired(FaultPoint::kPmlForceFull), 2u);
  EXPECT_EQ(inj.total_fired(), 2u);
}

TEST(FaultPlanTest, OnceRuleFiresExactlyOnce) {
  FaultPlan plan;
  plan.add({FaultPoint::kGpaAllocFail, /*first=*/4, /*every=*/0, /*limit=*/1});
  FaultInjector inj(plan);
  std::vector<u64> fired_at;
  for (u64 i = 0; i < 20; ++i) {
    if (inj.fire(FaultPoint::kGpaAllocFail)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, std::vector<u64>{4});
}

TEST(FaultPlanTest, ZeroLimitMeansUncapped) {
  FaultPlan plan;
  plan.add({FaultPoint::kMigrationSendFail, /*first=*/0, /*every=*/1, /*limit=*/0});
  FaultInjector inj(plan);
  u64 fired = 0;
  for (u64 i = 0; i < 9; ++i) fired += inj.fire(FaultPoint::kMigrationSendFail) ? 1 : 0;
  EXPECT_EQ(fired, 9u);
}

TEST(FaultPlanTest, ArrivalCountsAreIsolatedPerPoint) {
  FaultPlan plan;
  plan.add({FaultPoint::kPmlForceFull, /*first=*/1, /*every=*/0, /*limit=*/1});
  FaultInjector inj(plan);
  // Arrivals at *other* points must not advance kPmlForceFull's count.
  EXPECT_FALSE(inj.fire(FaultPoint::kEpmlForceFull));
  EXPECT_FALSE(inj.fire(FaultPoint::kEpmlForceFull));
  EXPECT_FALSE(inj.fire(FaultPoint::kPmlForceFull)) << "arrival 0: not yet";
  EXPECT_TRUE(inj.fire(FaultPoint::kPmlForceFull)) << "arrival 1 fires";
  EXPECT_EQ(inj.arrivals(FaultPoint::kEpmlForceFull), 2u);
  EXPECT_EQ(inj.fired(FaultPoint::kEpmlForceFull), 0u);
}

TEST(FaultPlanTest, FromSeedIsDeterministicAndCoversEveryPoint) {
  const FaultPlan a = FaultPlan::from_seed(1234);
  const FaultPlan b = FaultPlan::from_seed(1234);
  ASSERT_EQ(a.rules().size(), b.rules().size());
  for (std::size_t i = 0; i < a.rules().size(); ++i) {
    EXPECT_EQ(a.rules()[i].point, b.rules()[i].point);
    EXPECT_EQ(a.rules()[i].first, b.rules()[i].first);
    EXPECT_EQ(a.rules()[i].every, b.rules()[i].every);
    EXPECT_EQ(a.rules()[i].limit, b.rules()[i].limit);
    EXPECT_EQ(a.rules()[i].arg, b.rules()[i].arg);
  }
  // Whole-surface coverage: at least one rule per injection point.
  std::vector<bool> covered(kFaultPointCount, false);
  for (const FaultRule& r : a.rules()) covered[static_cast<std::size_t>(r.point)] = true;
  for (std::size_t p = 0; p < kFaultPointCount; ++p) {
    EXPECT_TRUE(covered[p]) << "no rule for "
                            << sim::fault::fault_point_name(static_cast<FaultPoint>(p));
  }
  // Different seeds diverge somewhere (sanity that the seed is used).
  const FaultPlan c = FaultPlan::from_seed(1235);
  bool differs = false;
  for (std::size_t i = 0; i < a.rules().size() && i < c.rules().size(); ++i) {
    differs |= a.rules()[i].first != c.rules()[i].first ||
               a.rules()[i].every != c.rules()[i].every;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, IpiGateDropsArgEncountersThenRedelivers) {
  FaultPlan plan;
  plan.add({FaultPoint::kSelfIpiSuppress, /*first=*/0, /*every=*/0, /*limit=*/1,
            /*arg=*/2});
  FaultInjector inj(plan);
  const auto g0 = inj.gate_self_ipi();  // opens the window, drop 1 of 2
  EXPECT_FALSE(g0.deliver);
  EXPECT_TRUE(g0.fired);
  const auto g1 = inj.gate_self_ipi();  // drop 2 of 2
  EXPECT_FALSE(g1.deliver);
  EXPECT_FALSE(g1.fired);
  const auto g2 = inj.gate_self_ipi();  // window dry: the redelivery
  EXPECT_TRUE(g2.deliver);
  const auto g3 = inj.gate_self_ipi();  // back to normal delivery
  EXPECT_TRUE(g3.deliver);
  EXPECT_EQ(inj.ipis_suppressed(), 2u);
  EXPECT_EQ(inj.ipis_redelivered(), 1u);
}

TEST(FaultInjectorTest, IpiGateClampsDropWindowToBound) {
  FaultPlan plan;
  plan.add({FaultPoint::kSelfIpiSuppress, /*first=*/0, /*every=*/0, /*limit=*/1,
            /*arg=*/100000});
  FaultInjector inj(plan);
  u64 drops = 0;
  while (!inj.gate_self_ipi().deliver) {
    ++drops;
    ASSERT_LE(drops, FaultInjector::kMaxIpiDrops + 1) << "window must be bounded";
  }
  EXPECT_EQ(drops, FaultInjector::kMaxIpiDrops);
  EXPECT_EQ(inj.ipis_redelivered(), 1u) << "a writing guest always gets its IPI back";
}

// ---- shared scenario helpers ------------------------------------------------

struct TrackedRun {
  RunResult result;
  VirtDuration final_clock{0};
  EventCounters counters;
  u64 faults_fired = 0;
};

/// One tracked run of `pages` sequential writes under `plan`.
TrackedRun run_tracked_with_plan(Technique tech, const FaultPlan& plan,
                                 u64 pages = 300,
                                 VirtDuration collect_period = msecs(0.1)) {
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = make_tracker(tech, k, proc);
  RunOptions ropts;
  ropts.collect_period = collect_period;
  TrackedRun out;
  out.result = run_tracked(
      k, proc,
      [=](guest::Process& p) {
        for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
      },
      tracker.get(), ropts);
  tracker->shutdown();
  bed.audit();  // full machine audit on top of the per-fault audits
  out.final_clock = k.ctx().clock.now();
  out.counters = k.ctx().counters;
  if (const FaultInjector* inj = bed.fault_injector()) {
    out.faults_fired = inj->total_fired();
  }
  return out;
}

// ---- injected buffer-full faults (PML + EPML) -------------------------------

TEST(FaultInjection, ForcedPmlFullExitsEarlyAndSpmlStaysComplete) {
  FaultPlan plan;
  // Buffer-full at adversarial indices: arrival 0, then every 37 log events.
  plan.add({FaultPoint::kPmlForceFull, /*first=*/0, /*every=*/37, /*limit=*/0});
  const TrackedRun r = run_tracked_with_plan(Technique::kSpml, plan);
  EXPECT_GT(r.faults_fired, 0u);
  EXPECT_EQ(r.counters.get(Event::kFaultInjected), r.faults_fired);
  // Forced fulls mean far more PML-full exits than the 300-page workload
  // could produce naturally (300 writes < one 512-entry buffer).
  EXPECT_GE(r.counters.get(Event::kVmExitPmlFull), r.faults_fired);
  // The injected exits drain partial buffers; no page may be lost to them.
  EXPECT_EQ(r.result.captured_truth, r.result.truth_pages);
  EXPECT_EQ(r.result.dropped, 0u);
}

TEST(FaultInjection, ForcedEpmlFullPostsEarlyIpisAndEpmlStaysComplete) {
  FaultPlan plan;
  plan.add({FaultPoint::kEpmlForceFull, /*first=*/5, /*every=*/41, /*limit=*/0});
  const TrackedRun r = run_tracked_with_plan(Technique::kEpml, plan);
  EXPECT_GT(r.faults_fired, 0u);
  EXPECT_GE(r.counters.get(Event::kSelfIpi), r.faults_fired)
      << "every forced full posts a (non-suppressed) self-IPI";
  EXPECT_EQ(r.counters.get(Event::kVmExitPmlFull), 0u)
      << "forced EPML fulls post IPIs, never PML-full VM exits";
  EXPECT_EQ(r.result.captured_truth, r.result.truth_pages);
  EXPECT_EQ(r.result.dropped, 0u);
}

// ---- self-IPI suppression + bounded-retry redelivery ------------------------

TEST(FaultInjection, SuppressedSelfIpiLosesBoundedEntriesThenRedelivers) {
  FaultPlan plan;
  plan.add({FaultPoint::kSelfIpiSuppress, /*first=*/0, /*every=*/0, /*limit=*/1,
            /*arg=*/3});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 600;
  const Gva base = proc.mmap(pages * kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.track(proc);
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());

  // Write 512 fills the buffer; its IPI opens the drop window (drop 1/3).
  // Writes 513 and 514 find the buffer wrapped, their IPIs drop (2/3, 3/3)
  // and the entries are lost. Write 515's encounter is the redelivery: the
  // buffer drains and everything after it logs normally.
  const FaultInjector* inj = bed.fault_injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->ipis_suppressed(), 3u);
  EXPECT_EQ(inj->ipis_redelivered(), 1u);
  EXPECT_EQ(bed.ctx().counters.get(Event::kSelfIpiSuppressed), 3u);
  EXPECT_EQ(bed.ctx().counters.get(Event::kEpmlEntryLost), 2u)
      << "exactly the two writes inside the dead window are lost, visibly";
  EXPECT_EQ(mod.fetch(proc).size(), pages - 2);
  bed.audit();
  mod.untrack(proc);
}

// ---- graceful degradation (allocation faults) -------------------------------

TEST(FaultInjection, EpmlDegradesToSpmlWhenGuestBufferAllocFails) {
  FaultPlan plan;
  plan.add({FaultPoint::kGpaAllocFail, /*first=*/0, /*every=*/0, /*limit=*/1});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 200;
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = make_tracker(Technique::kEpml, k, proc);
  tracker->init();  // guest buffer page allocation fails -> degrade
  EXPECT_TRUE(tracker->degraded());
  EXPECT_EQ(tracker->technique(), Technique::kEpml);
  EXPECT_EQ(tracker->effective_technique(), Technique::kSpml);
  EXPECT_EQ(bed.ctx().counters.get(Event::kTrackerDegraded), 1u);
  EXPECT_EQ(bed.fault_injector()->degradations(), 1u);

  // The degraded session still tracks completely (on the SPML path).
  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  const std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty.size(), pages);
  EXPECT_GT(bed.ctx().counters.get(Event::kReverseMapLookup), 0u)
      << "collection went through SPML's reverse map, not EPML's ring";
  tracker->shutdown();
  bed.audit();
}

TEST(FaultInjection, SpmlDegradesToProcWhenHostPmlBufferAllocFails) {
  FaultPlan plan;
  plan.add({FaultPoint::kFrameAllocFail, /*first=*/0, /*every=*/0, /*limit=*/1});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 150;
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = make_tracker(Technique::kSpml, k, proc);
  tracker->init();  // kOohInitPml fails host-side -> degrade to soft-dirty
  EXPECT_TRUE(tracker->degraded());
  EXPECT_EQ(tracker->effective_technique(), Technique::kProc);
  EXPECT_EQ(bed.ctx().counters.get(Event::kTrackerDegraded), 1u);

  tracker->begin_interval();
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  const std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty.size(), pages);
  EXPECT_GT(bed.ctx().counters.get(Event::kClearRefs), 0u)
      << "the fallback is running the /proc soft-dirty protocol";
  tracker->shutdown();
  bed.audit();
}

TEST(FaultInjection, WpDegradesToProcWhenProtectPassFails) {
  FaultPlan plan;
  plan.add({FaultPoint::kWpProtectFail, /*first=*/0, /*every=*/0, /*limit=*/1});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 100;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  auto tracker = make_tracker(Technique::kWp, k, proc);
  tracker->init();
  EXPECT_TRUE(tracker->degraded());
  EXPECT_EQ(tracker->effective_technique(), Technique::kProc);
  EXPECT_EQ(bed.ctx().counters.get(Event::kTrackerDegraded), 1u);
  EXPECT_EQ(bed.ctx().counters.get(Event::kEptWpFault), 0u)
      << "the failed protect pass must not have write-protected anything";

  tracker->begin_interval();
  for (u64 i = 0; i < pages; i += 2) proc.touch_write(base + i * kPageSize);
  const std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty.size(), pages / 2);
  tracker->shutdown();
  bed.audit();
}

TEST(FaultInjection, DegradationChainsEpmlToSpmlToProc) {
  // Both allocation points fail: EPML's guest buffer AND the host PML buffer
  // behind SPML. The chain must walk all the way down to /proc and still
  // produce a complete session.
  FaultPlan plan;
  plan.add({FaultPoint::kGpaAllocFail, /*first=*/0, /*every=*/0, /*limit=*/1});
  plan.add({FaultPoint::kFrameAllocFail, /*first=*/0, /*every=*/0, /*limit=*/1});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 120;
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = make_tracker(Technique::kEpml, k, proc);
  tracker->init();
  EXPECT_TRUE(tracker->degraded());
  EXPECT_EQ(tracker->effective_technique(), Technique::kProc);
  EXPECT_EQ(bed.ctx().counters.get(Event::kTrackerDegraded), 2u);
  EXPECT_EQ(bed.fault_injector()->degradations(), 2u);

  tracker->begin_interval();
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  EXPECT_EQ(tracker->collect().size(), pages);
  tracker->shutdown();
  bed.audit();
}

// ---- migration transfer faults ----------------------------------------------

TEST(FaultInjection, MigrationSendRetriesWithBackoffThenSucceeds) {
  FaultPlan plan;
  plan.add({FaultPoint::kMigrationSendFail, /*first=*/0, /*every=*/0, /*limit=*/1});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(40 * kPageSize);
  for (u64 i = 0; i < 40; ++i) proc.touch_write(base + i * kPageSize);

  hv::MigrationEngine engine(bed.hypervisor());
  hv::MigrationOptions mopts;
  const auto before = bed.ctx().clock.now();
  const hv::MigrationReport rep = engine.migrate(bed.vm(), [] {}, mopts);
  EXPECT_TRUE(rep.converged);
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.send_retries, 1u);
  EXPECT_EQ(bed.ctx().counters.get(Event::kMigrationSendRetry), 1u);
  EXPECT_GE((bed.ctx().clock.now() - before).count(),
            usecs(mopts.retry_backoff_us).count())
      << "the retry charged its backoff";
  EXPECT_GE(rep.pages_sent, rep.initial_pages) << "no page lost to the retry";
  bed.audit();
}

TEST(FaultInjection, MigrationAbortsWhenTransportStaysDead) {
  FaultPlan plan;
  plan.add({FaultPoint::kMigrationSendFail, /*first=*/0, /*every=*/1, /*limit=*/0});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(16 * kPageSize);
  for (u64 i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);

  hv::MigrationEngine engine(bed.hypervisor());
  const hv::MigrationReport rep = engine.migrate(bed.vm(), [] {});
  EXPECT_TRUE(rep.aborted);
  EXPECT_FALSE(rep.converged);
  EXPECT_EQ(rep.pages_sent, 0u) << "every attempt failed: nothing transferred";
  EXPECT_EQ(rep.send_retries, 3u) << "default retry budget is 3 attempts";
  EXPECT_EQ(bed.ctx().counters.get(Event::kMigrationAborted), 1u);
  bed.audit();
}

TEST(FaultInjection, MigrationCarriesFailedRoundIntoNextInsteadOfDropping) {
  // The initial copy succeeds (arrival 0 clean); the first pre-copy round's
  // transfer fails through its whole retry budget (arrivals 1..3), so its
  // dirty set must be carried into the next round, not dropped.
  FaultPlan plan;
  plan.add({FaultPoint::kMigrationSendFail, /*first=*/1, /*every=*/1, /*limit=*/3});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 50;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  hv::MigrationEngine engine(bed.hypervisor());
  hv::MigrationOptions mopts;
  mopts.stop_copy_threshold_pages = 0;
  int round = 0;
  const hv::MigrationReport rep = engine.migrate(
      bed.vm(),
      [&] {
        if (round++ == 0) {
          for (int i = 0; i < 10; ++i) proc.touch_write(base + i * kPageSize);
        }
      },
      mopts);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.send_retries, 3u);
  EXPECT_EQ(rep.pages_sent, rep.initial_pages + 10)
      << "the failed round's 10 pages arrive via the carry, exactly once";
  bed.audit();
}

TEST(FaultInjection, MigrationSurvivesRetryBudgetBeyondShiftWidth) {
  // Regression: the backoff charge computed retry_backoff_us * (u64{1} <<
  // attempt) with an unclamped exponent — undefined behaviour the moment
  // send_retry_limit exceeds 63. The exponent now clamps at 20, so a huge
  // retry budget must abort cleanly after charging a bounded backoff.
  FaultPlan plan;
  plan.add({FaultPoint::kMigrationSendFail, /*first=*/0, /*every=*/1, /*limit=*/0});
  TestBedOptions o;
  o.fault_plan = plan;
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(8 * kPageSize);
  for (u64 i = 0; i < 8; ++i) proc.touch_write(base + i * kPageSize);

  hv::MigrationEngine engine(bed.hypervisor());
  hv::MigrationOptions mopts;
  mopts.send_retry_limit = 80;  // > 63: would have shifted past the u64 width
  mopts.retry_backoff_us = 0.01;
  const auto before = bed.ctx().clock.now();
  const hv::MigrationReport rep = engine.migrate(bed.vm(), [] {}, mopts);
  EXPECT_TRUE(rep.aborted);
  EXPECT_FALSE(rep.converged);
  EXPECT_EQ(rep.send_retries, 80u);
  // Attempts 0..19 back off exponentially, 20..79 at the 2^20 cap:
  // sum = (2^20 - 1) + 60 * 2^20 backoff units.
  const double cap = static_cast<double>(u64{1} << 20);
  const double expected_backoff_us = mopts.retry_backoff_us * ((cap - 1.0) + 60.0 * cap);
  const double waited_us = (bed.ctx().clock.now() - before).count();
  EXPECT_GE(waited_us, expected_backoff_us);
  EXPECT_LE(waited_us, expected_backoff_us * 1.05 + 1000.0)
      << "backoff must stay bounded by the clamped exponent";
  bed.audit();
}

// ---- determinism: same-seed replay + faults-off transparency ----------------

TEST(FaultReplay, SameSeedReplaysBitIdentically) {
  const FaultPlan plan = FaultPlan::from_seed(42);
  const TrackedRun a = run_tracked_with_plan(Technique::kEpml, plan, 2000, msecs(2));
  const TrackedRun b = run_tracked_with_plan(Technique::kEpml, plan, 2000, msecs(2));
  EXPECT_GT(a.faults_fired, 0u) << "the seeded plan must actually exercise faults";
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  // Bit-identical virtual time: compare the double's bits, not its value.
  u64 abits = 0;
  u64 bbits = 0;
  const double aclk = a.final_clock.count();
  const double bclk = b.final_clock.count();
  std::memcpy(&abits, &aclk, sizeof(abits));
  std::memcpy(&bbits, &bclk, sizeof(bbits));
  EXPECT_EQ(abits, bbits);
  EXPECT_TRUE(a.counters == b.counters) << "every event count must replay exactly";
}

TEST(FaultReplay, DifferentSeedsProduceDifferentSchedules) {
  const TrackedRun a =
      run_tracked_with_plan(Technique::kEpml, FaultPlan::from_seed(7), 2000, msecs(2));
  const TrackedRun b =
      run_tracked_with_plan(Technique::kEpml, FaultPlan::from_seed(8), 2000, msecs(2));
  // Either the fired counts differ or some counter does; identical runs for
  // different seeds would mean the seed never reaches the schedule.
  EXPECT_TRUE(a.faults_fired != b.faults_fired || !(a.counters == b.counters));
}

TEST(FaultReplay, WiredButNeverFiringPlanIsBitIdenticalToNoInjector) {
  // Stronger than "empty plan == no injector" (the TestBed skips wiring for
  // an empty plan): a *wired* injector whose rules never fire must leave the
  // run bit-identical to a bed without the fault subsystem at all.
  FaultPlan inert;
  inert.add({FaultPoint::kPmlForceFull, /*first=*/u64{1} << 60, /*every=*/0,
             /*limit=*/1});
  const TrackedRun with = run_tracked_with_plan(Technique::kSpml, inert);
  const TrackedRun without = run_tracked_with_plan(Technique::kSpml, FaultPlan{});
  EXPECT_EQ(with.faults_fired, 0u);
  u64 wbits = 0;
  u64 obits = 0;
  const double wclk = with.final_clock.count();
  const double oclk = without.final_clock.count();
  std::memcpy(&wbits, &wclk, sizeof(wbits));
  std::memcpy(&obits, &oclk, sizeof(obits));
  EXPECT_EQ(wbits, obits);
  EXPECT_TRUE(with.counters == without.counters);
}

// ---- seeded whole-surface sweep (FAULT-2: audits clean after every fault) ---

/// A storm scenario designed to reach every injection point class that a
/// tracked run can reach: EPML (buffer fulls + IPI gate + guest allocs),
/// then migration on the same bed. Guest OOM injected on the demand-paging
/// path stops the workload early (run_tracked's graceful path) and an
/// injected host OOM at migration's logging setup aborts the migration;
/// either way the bed must stay alive, coherent, and replayable.
EventCounters seeded_storm(u64 seed, u64* fired_out) {
  TestBedOptions o;
  o.fault_plan = FaultPlan::from_seed(seed);
  TestBed bed(o);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 1600;  // > 3 buffer fills in one interval
  const Gva base = proc.mmap(pages * kPageSize);
  auto tracker = make_tracker(Technique::kEpml, k, proc);
  RunOptions ropts;
  ropts.collect_period = msecs(1);
  (void)run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
      },
      tracker.get(), ropts);
  tracker->shutdown();
  hv::MigrationEngine engine(bed.hypervisor());
  (void)engine.migrate(bed.vm(), [] {});
  bed.audit();  // the whole machine must still be coherent
  if (fired_out != nullptr) *fired_out = bed.fault_injector()->total_fired();
  return bed.ctx().counters;
}

TEST(FaultSweep, SeededStormsFireAuditCleanAndReplay) {
  for (const u64 seed : {u64{1}, u64{7}, u64{42}}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    u64 fired_a = 0;
    u64 fired_b = 0;
    const EventCounters a = seeded_storm(seed, &fired_a);
    const EventCounters b = seeded_storm(seed, &fired_b);
    EXPECT_GT(fired_a, 0u);
    EXPECT_EQ(fired_a, fired_b);
    EXPECT_TRUE(a == b) << "seed " << seed << " did not replay bit-identically";
  }
}

}  // namespace
}  // namespace ooh::lib
