file(REMOVE_RECURSE
  "../bench/ablation_ring_capacity"
  "../bench/ablation_ring_capacity.pdb"
  "CMakeFiles/ablation_ring_capacity.dir/ablation_ring_capacity.cpp.o"
  "CMakeFiles/ablation_ring_capacity.dir/ablation_ring_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ring_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
