// Monotonic arena for page-table radix nodes.
//
// The radix tables (guest PT and EPT) allocate interior nodes and leaves
// lazily and never free them individually — unmap zeroes entries in place
// (see sim/radix.hpp). That lifetime is exactly what a bump arena models:
// nodes are created one after another, live until the whole table resets,
// and die together. Routing node allocation through an arena buys three
// things the snapshot/epoch machinery depends on:
//
//   1. Zero steady-state allocation: once the working set's nodes exist,
//      ensure() never touches the global allocator again, so benchmark
//      inner loops report allocs_per_op == 0.
//   2. Prefaulted blocks, per the umbra `Mmap::prefault` idiom: each block
//      is touched page-by-page at reservation time so first-populate cost
//      is paid at a predictable point (arena growth), not scattered over
//      the simulation as minor faults.
//   3. Wholesale reset: RadixTable4::clear() (used by snapshot restore)
//      drops every node by rewinding the arena instead of walking the tree
//      deleting unique_ptrs.
//
// Only trivially-destructible types may be created here — the arena never
// runs destructors. Reset keeps the reserved blocks so a restore-into-place
// reuses warm memory; create<T>() value-initialises, so recycled bytes are
// re-zeroed per node.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

#include "base/types.hpp"

namespace ooh::base {

class Arena {
 public:
  /// Block size tuned for radix nodes: a 4 KiB-entry leaf is ~4 KiB for
  /// u64-sized entries, an interior node is 512 pointers (4 KiB); 1 MiB
  /// holds ~256 of either, so table growth calls the allocator rarely.
  static constexpr std::size_t kBlockBytes = std::size_t{1} << 20;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    for (Block& b : blocks_) ::operator delete(b.data, std::align_val_t{kMaxAlign});
  }

  /// Bump-allocate `bytes` (aligned to `align`, which must divide
  /// kMaxAlign). Blocks are prefaulted on reservation: every page is
  /// touched once so later node writes never minor-fault.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    assert(align != 0 && kMaxAlign % align == 0 && "over-aligned arena node");
    assert(bytes <= kBlockBytes && "node larger than an arena block");
    std::size_t off = (offset_ + align - 1) & ~(align - 1);
    if (block_ >= blocks_.size() || off + bytes > kBlockBytes) {
      if (block_ < blocks_.size()) ++block_;  // current block exhausted
      if (block_ >= blocks_.size()) grow();
      off = 0;
    }
    offset_ = off + bytes;
    return blocks_[block_].data + off;
  }

  /// Placement-construct a value-initialised T. Value-init (T{}) matters:
  /// after reset() the underlying bytes are recycled, and zeroed members
  /// (null child pointers, absent entries) are the radix tables' "empty".
  template <typename T>
  [[nodiscard]] T* create() {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return ::new (allocate(sizeof(T), alignof(T))) T{};
  }

  /// Rewind to empty, keeping every reserved block for reuse. All pointers
  /// handed out so far become invalid at once — the radix-table lifetime.
  void reset() noexcept {
    block_ = 0;
    offset_ = 0;
  }

  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    return blocks_.size() * kBlockBytes;
  }
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    if (blocks_.empty()) return 0;
    return block_ * kBlockBytes + offset_;
  }

 private:
  static constexpr std::size_t kMaxAlign = alignof(std::max_align_t);

  struct Block {
    std::byte* data = nullptr;
  };

  void grow() {
    auto* data = static_cast<std::byte*>(
        ::operator new(kBlockBytes, std::align_val_t{kMaxAlign}));
    // Bulk prefault (umbra Mmap::prefault idiom): touch one byte per page
    // so the whole block is resident before any node lands in it.
    for (std::size_t i = 0; i < kBlockBytes; i += kPageSize) data[i] = std::byte{0};
    blocks_.push_back(Block{data});
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< index of the block currently bumped into.
  std::size_t offset_ = 0;  ///< bump offset within blocks_[block_].
};

}  // namespace ooh::base
