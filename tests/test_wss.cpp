// Working-set-size estimation via the read-logging PML extension (related
// work: PML extended to log read pages). The hypervisor samples touched
// pages -- reads AND writes -- without guest cooperation.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "hypervisor/hypervisor.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/ept.hpp"

namespace ooh {
namespace {

class WssTest : public ::testing::Test {
 protected:
  WssTest() : bed_(), kernel_(bed_.kernel()), proc_(kernel_.create_process()) {
    base_ = proc_.mmap(512 * kPageSize);
    for (int i = 0; i < 512; ++i) proc_.touch_write(base_ + i * kPageSize);
  }
  lib::TestBed bed_;
  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  Gva base_ = 0;
};

TEST_F(WssTest, CountsReadAndWrittenPages) {
  hv::Hypervisor& hv = bed_.hypervisor();
  hv.enable_wss_sampling(bed_.vm());
  // Touch 100 pages: 60 by reading, 40 by writing.
  for (int i = 0; i < 60; ++i) proc_.touch_read(base_ + i * kPageSize);
  for (int i = 60; i < 100; ++i) proc_.touch_write(base_ + i * kPageSize);
  const std::vector<Gpa> wss = hv.harvest_wss(bed_.vm());
  EXPECT_EQ(wss.size(), 100u) << "reads must count toward the working set";
  EXPECT_GT(bed_.ctx().counters.get(Event::kPmlLogRead), 0u);
  hv.disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, SamplesAreDisjointIntervals) {
  hv::Hypervisor& hv = bed_.hypervisor();
  hv.enable_wss_sampling(bed_.vm());
  for (int i = 0; i < 50; ++i) proc_.touch_read(base_ + i * kPageSize);
  EXPECT_EQ(hv.harvest_wss(bed_.vm()).size(), 50u);
  EXPECT_EQ(hv.harvest_wss(bed_.vm()).size(), 0u) << "nothing touched since";
  for (int i = 0; i < 10; ++i) proc_.touch_read(base_ + i * kPageSize);  // re-touch
  EXPECT_EQ(hv.harvest_wss(bed_.vm()).size(), 10u);
  hv.disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, HotColdWorkingSetTracksHotSet) {
  hv::Hypervisor& hv = bed_.hypervisor();
  hv.enable_wss_sampling(bed_.vm());
  // Hot set of 32 pages hammered repeatedly; one-shot cold sweep happened
  // only before sampling started.
  for (int rep = 0; rep < 20; ++rep) {
    for (int i = 0; i < 32; ++i) proc_.touch_write(base_ + i * kPageSize);
    const std::vector<Gpa> wss = hv.harvest_wss(bed_.vm());
    EXPECT_EQ(wss.size(), 32u);
  }
  hv.disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, MutuallyExclusiveWithGuestSpml) {
  auto tracker = lib::make_tracker(lib::Technique::kSpml, kernel_, proc_);
  tracker->init();
  EXPECT_THROW(bed_.hypervisor().enable_wss_sampling(bed_.vm()), std::logic_error);
  tracker->shutdown();
  bed_.hypervisor().enable_wss_sampling(bed_.vm());  // fine once SPML is gone
  bed_.hypervisor().disable_wss_sampling(bed_.vm());
}

TEST_F(WssTest, EpmlGuestTrackingCoexistsWithWss) {
  // EPML uses guest-PTE dirty flags and its own buffer; WSS uses EPT
  // accessed flags and the hypervisor buffer. They do not interfere.
  auto tracker = lib::make_tracker(lib::Technique::kEpml, kernel_, proc_);
  tracker->init();
  tracker->begin_interval();
  bed_.hypervisor().enable_wss_sampling(bed_.vm());

  kernel_.scheduler().enter_process(proc_.pid());
  for (int i = 0; i < 20; ++i) proc_.touch_write(base_ + i * kPageSize);
  for (int i = 20; i < 50; ++i) proc_.touch_read(base_ + i * kPageSize);
  kernel_.scheduler().exit_process(proc_.pid());

  EXPECT_EQ(bed_.hypervisor().harvest_wss(bed_.vm()).size(), 50u);
  EXPECT_EQ(tracker->collect().size(), 20u) << "EPML sees only the writes";
  bed_.hypervisor().disable_wss_sampling(bed_.vm());
  tracker->shutdown();
}

// ---- gran-aware re-arm under 2 MiB backing ----------------------------------

struct HarvestProbe {
  double harvest_us = 0.0;   ///< virtual time harvest_wss charged.
  u64 sample_pages = 0;      ///< page-granular sample size.
  u64 leaves = 0;            ///< distinct EPT leaves covering the sample.
};

// One deterministic 512-page read sweep under the given backing mode and
// dbit_clear_ns; probes what the re-arm pass charged. Two probes differing
// only in dbit_clear_ns isolate exactly the flag-clear charge.
HarvestProbe probe_harvest(bool ept_huge, double dbit_clear_ns) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 256 * kMiB;
  opts.host_mem_bytes = 2 * kGiB;
  opts.ept_huge = ept_huge;
  opts.eager_split = false;  // keep the huge leaves through the session
  opts.cost.dbit_clear_ns = dbit_clear_ns;
  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 512;  // one full 2 MiB region's worth
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  hv::Hypervisor& hv = bed.hypervisor();
  hv.enable_wss_sampling(bed.vm());
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_read(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());

  HarvestProbe p;
  const VirtDuration before = bed.ctx().clock.now();
  const std::vector<Gpa> wss = hv.harvest_wss(bed.vm());
  p.harvest_us = (bed.ctx().clock.now() - before).count();
  p.sample_pages = wss.size();
  std::unordered_set<Gpa> leaves;
  for (const Gpa gpa : wss) {
    const sim::Ept::Lookup leaf = bed.vm().ept().lookup(gpa);
    if (leaf.entry != nullptr) leaves.insert(gran_floor(gpa, leaf.gran));
  }
  p.leaves = leaves.size();
  hv.disable_wss_sampling(bed.vm());
  return p;
}

TEST(WssHugeBacking, RearmChargesDbitClearOncePerSharedLeaf) {
  // Regression: the re-arm loop used to walk every sampled GPA to its leaf
  // per 4 KiB page. A shared 2 MiB leaf is one hardware flag word: it must
  // be visited, cleared and charged once — not once per constituent page.
  const double kD = 5000.0;  // ns; large enough to dominate float noise
  const HarvestProbe h0 = probe_harvest(/*ept_huge=*/true, 0.0);
  const HarvestProbe h1 = probe_harvest(/*ept_huge=*/true, kD);
  ASSERT_EQ(h0.sample_pages, h1.sample_pages) << "identical deterministic runs";
  ASSERT_GE(h1.sample_pages, 512u) << "huge-leaf drain expands per-4K";
  ASSERT_GE(h1.leaves, 1u);
  ASSERT_LT(h1.leaves, h1.sample_pages) << "sample shares huge leaves";
  const double extra_huge_ns = (h1.harvest_us - h0.harvest_us) * 1e3;
  EXPECT_NEAR(extra_huge_ns, kD * static_cast<double>(h1.leaves), kD * 0.01)
      << "one dbit_clear_ns charge per shared leaf, not per page";

  // Contrast: 4 KiB backing really does pay once per page.
  const HarvestProbe f0 = probe_harvest(/*ept_huge=*/false, 0.0);
  const HarvestProbe f1 = probe_harvest(/*ept_huge=*/false, kD);
  ASSERT_EQ(f1.sample_pages, 512u);
  ASSERT_EQ(f1.leaves, 512u);
  const double extra_4k_ns = (f1.harvest_us - f0.harvest_us) * 1e3;
  EXPECT_NEAR(extra_4k_ns, kD * 512.0, kD);
  EXPECT_LT(extra_huge_ns, extra_4k_ns / 100.0)
      << "the 2 MiB-backed re-arm is two orders cheaper";
  (void)f0;
}

}  // namespace
}  // namespace ooh
