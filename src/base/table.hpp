// ASCII table printer for the bench harnesses.
//
// Every bench binary regenerates one of the paper's tables/figures as rows
// and series; this renders them with aligned columns so outputs diff cleanly
// against EXPERIMENTS.md.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ooh {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats each double with `precision` significant decimals.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 2);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ooh
