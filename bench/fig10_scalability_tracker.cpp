// Figure 10: Tracker (Boehm GC) performance as the number of tenant VMs
// grows from 1 to 5, each VM running Boehm over Phoenix-histogram (Large).
//
// Paper's finding: per-VM GC time matches the single-VM results and stays
// ~constant as VMs are added (PML state is per-VM; no cross-VM coupling).
#include "boehm_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/128);
  bench::print_header("Figure 10", "Per-VM Boehm GC time with 1..5 tenant VMs");

  TextTable t({"VMs + technique", "min GC (ms)", "max GC (ms)", "spread (%)"});
  for (unsigned vms = 1; vms <= 5; ++vms) {
    for (const lib::Technique tech : {lib::Technique::kSpml, lib::Technique::kEpml}) {
      lib::TestBedOptions opts;
      opts.tenant_vms = vms;
      lib::TestBed bed(opts);
      double min_gc = 1e300, max_gc = 0.0;
      for (unsigned i = 0; i < vms; ++i) {
        const bench::BoehmRun r = bench::run_boehm_in(
            bed.kernel(i), "histogram", wl::ConfigSize::kLarge, args.scale, tech);
        min_gc = std::min(min_gc, r.gc_total_us);
        max_gc = std::max(max_gc, r.gc_total_us);
      }
      t.add_row(std::to_string(vms) + " " + std::string(lib::technique_name(tech)),
                {min_gc / 1e3, max_gc / 1e3, (max_gc - min_gc) / max_gc * 100.0}, 2);
    }
  }
  t.print(std::cout);
  std::printf("\nShape check: per-VM GC time is flat in the VM count (spread ~0%%).\n");
  return 0;
}
