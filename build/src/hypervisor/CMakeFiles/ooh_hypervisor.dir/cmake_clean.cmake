file(REMOVE_RECURSE
  "CMakeFiles/ooh_hypervisor.dir/hypervisor.cpp.o"
  "CMakeFiles/ooh_hypervisor.dir/hypervisor.cpp.o.d"
  "CMakeFiles/ooh_hypervisor.dir/migration.cpp.o"
  "CMakeFiles/ooh_hypervisor.dir/migration.cpp.o.d"
  "CMakeFiles/ooh_hypervisor.dir/vm.cpp.o"
  "CMakeFiles/ooh_hypervisor.dir/vm.cpp.o.d"
  "libooh_hypervisor.a"
  "libooh_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
