// Page-track notifier chain tests: registry semantics (registration,
// enable state, dispatch order, per-notifier counters, fault-layer
// stop-at-first-handler), the EPT write-protection fault path incl. the
// TLB-invalidation regression, SPML's rmap-cache flush on munmap, the
// WpTracker backend's completeness, and migration + guest-EPML coexistence
// where unregistering one consumer must not perturb the other's virtual
// time.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <vector>

#include "hypervisor/hypervisor.hpp"
#include "hypervisor/migration.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/machine.hpp"
#include "sim/mmu.hpp"
#include "sim/page_track.hpp"

namespace ooh {
namespace {

using sim::TrackEvent;
using sim::TrackLayer;
using sim::WriteTrackRegistry;

/// Records every delivery; configurable handled-result and side effects.
struct Recorder final : sim::PageTrackNotifier {
  bool on_track(TrackLayer layer, const TrackEvent& ev) override {
    deliveries.push_back({layer, ev});
    if (on_deliver) on_deliver();
    return handled;
  }
  void on_track_flush(u32 pid, Gva start, Gva end) override {
    flushes.push_back({pid, start, end});
  }

  struct Delivery {
    TrackLayer layer;
    TrackEvent ev;
  };
  struct Flush {
    u32 pid;
    Gva start, end;
  };
  std::vector<Delivery> deliveries;
  std::vector<Flush> flushes;
  bool handled = true;
  std::function<void()> on_deliver;
};

// ---- registry unit tests ----------------------------------------------------

TEST(WriteTrackRegistryTest, DispatchFollowsRegistrationOrder) {
  WriteTrackRegistry reg;
  std::vector<int> order;
  Recorder a, b, c;
  a.on_deliver = [&] { order.push_back(0); };
  b.on_deliver = [&] { order.push_back(1); };
  c.on_deliver = [&] { order.push_back(2); };
  reg.register_notifier(TrackLayer::kEptDirty, &a);
  reg.register_notifier(TrackLayer::kEptDirty, &b);
  reg.register_notifier(TrackLayer::kEptDirty, &c);

  EXPECT_TRUE(reg.dispatch(TrackLayer::kEptDirty, {nullptr, 1, 0x1000, 0x2000}));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(a.deliveries[0].ev.pid, 1u);
  EXPECT_EQ(a.deliveries[0].ev.gva_page, 0x1000u);
  EXPECT_EQ(a.deliveries[0].ev.gpa_page, 0x2000u);
}

TEST(WriteTrackRegistryTest, EmptyChainDispatchIsUnhandled) {
  WriteTrackRegistry reg;
  EXPECT_FALSE(reg.dispatch(TrackLayer::kEptDirty, {}));
  EXPECT_EQ(reg.events_dispatched(TrackLayer::kEptDirty), 1u);
}

TEST(WriteTrackRegistryTest, DuplicateAndNullRegistrationThrow) {
  WriteTrackRegistry reg;
  Recorder a;
  reg.register_notifier(TrackLayer::kEptDirty, &a);
  EXPECT_THROW(reg.register_notifier(TrackLayer::kEptDirty, &a), std::logic_error);
  EXPECT_THROW(reg.register_notifier(TrackLayer::kEptDirty, nullptr),
               std::logic_error);
  // The same notifier on a *different* layer is fine.
  reg.register_notifier(TrackLayer::kGuestPtDirty, &a);
  EXPECT_TRUE(reg.registered(TrackLayer::kGuestPtDirty, &a));
}

TEST(WriteTrackRegistryTest, UnregisterStopsDeliveryAndPreservesOthers) {
  WriteTrackRegistry reg;
  Recorder a, b;
  reg.register_notifier(TrackLayer::kEptDirty, &a);
  reg.register_notifier(TrackLayer::kEptDirty, &b);
  reg.dispatch(TrackLayer::kEptDirty, {});
  reg.unregister_notifier(TrackLayer::kEptDirty, &a);
  EXPECT_FALSE(reg.registered(TrackLayer::kEptDirty, &a));
  reg.dispatch(TrackLayer::kEptDirty, {});
  EXPECT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries.size(), 2u);
  EXPECT_EQ(reg.events_delivered(TrackLayer::kEptDirty, &b), 2u);
  EXPECT_EQ(reg.events_dispatched(TrackLayer::kEptDirty), 2u);
}

TEST(WriteTrackRegistryTest, DisabledRegistrationKeepsPositionButGetsNothing) {
  WriteTrackRegistry reg;
  std::vector<int> order;
  Recorder a, b;
  a.on_deliver = [&] { order.push_back(0); };
  b.on_deliver = [&] { order.push_back(1); };
  reg.register_notifier(TrackLayer::kEptDirty, &a);
  reg.register_notifier(TrackLayer::kEptDirty, &b);
  reg.set_enabled(TrackLayer::kEptDirty, &a, false);
  EXPECT_FALSE(reg.enabled(TrackLayer::kEptDirty, &a));
  EXPECT_TRUE(reg.any_enabled(TrackLayer::kEptDirty));

  reg.dispatch(TrackLayer::kEptDirty, {});
  EXPECT_EQ(order, (std::vector<int>{1}));

  // Re-enabling restores the original chain position, not a new tail slot.
  reg.set_enabled(TrackLayer::kEptDirty, &a, true);
  order.clear();
  reg.dispatch(TrackLayer::kEptDirty, {});
  EXPECT_EQ(order, (std::vector<int>{0, 1}));

  reg.set_enabled(TrackLayer::kEptDirty, &a, false);
  reg.set_enabled(TrackLayer::kEptDirty, &b, false);
  EXPECT_FALSE(reg.any_enabled(TrackLayer::kEptDirty));
}

TEST(WriteTrackRegistryTest, FaultLayersStopAtFirstHandler) {
  WriteTrackRegistry reg;
  Recorder first, second;
  reg.register_notifier(TrackLayer::kEptWpFault, &first);
  reg.register_notifier(TrackLayer::kEptWpFault, &second);

  // First handler claims the fault: the chain stops there.
  EXPECT_TRUE(reg.dispatch(TrackLayer::kEptWpFault, {}));
  EXPECT_EQ(first.deliveries.size(), 1u);
  EXPECT_EQ(second.deliveries.size(), 0u);

  // First handler declines: the fault falls through to the second.
  first.handled = false;
  EXPECT_TRUE(reg.dispatch(TrackLayer::kEptWpFault, {}));
  EXPECT_EQ(first.deliveries.size(), 2u);
  EXPECT_EQ(second.deliveries.size(), 1u);

  // Logging layers run the whole chain even when everyone handles.
  Recorder la, lb;
  reg.register_notifier(TrackLayer::kEptDirty, &la);
  reg.register_notifier(TrackLayer::kEptDirty, &lb);
  EXPECT_TRUE(reg.dispatch(TrackLayer::kEptDirty, {}));
  EXPECT_EQ(la.deliveries.size(), 1u);
  EXPECT_EQ(lb.deliveries.size(), 1u);
}

TEST(WriteTrackRegistryTest, NotifierMayUnregisterItselfDuringDispatch) {
  WriteTrackRegistry reg;
  Recorder a, b;
  a.on_deliver = [&] { reg.unregister_notifier(TrackLayer::kEptDirty, &a); };
  reg.register_notifier(TrackLayer::kEptDirty, &a);
  reg.register_notifier(TrackLayer::kEptDirty, &b);
  reg.dispatch(TrackLayer::kEptDirty, {});
  EXPECT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries.size(), 1u) << "later notifiers still ran";
  reg.dispatch(TrackLayer::kEptDirty, {});
  EXPECT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries.size(), 2u);
}

TEST(WriteTrackRegistryTest, FlushChainDeliversRangeTeardown) {
  WriteTrackRegistry reg;
  Recorder a;
  reg.register_flush(&a);
  reg.notify_flush(7, 0x1000, 0x9000);
  ASSERT_EQ(a.flushes.size(), 1u);
  EXPECT_EQ(a.flushes[0].pid, 7u);
  EXPECT_EQ(a.flushes[0].start, 0x1000u);
  EXPECT_EQ(a.flushes[0].end, 0x9000u);
  reg.unregister_flush(&a);
  reg.notify_flush(7, 0x1000, 0x9000);
  EXPECT_EQ(a.flushes.size(), 1u);
}

// ---- EPT write-protection fault path (sim level) ----------------------------

struct WpFixture {
  WpFixture()
      : machine(2 * kGiB, CostModel::unit()),
        hv(machine),
        vm(hv.create_vm(kGiB)),
        mmu(vm.vcpu(), vm.ept()) {
    pt.map(kGva, kGpa, true);
  }
  static constexpr Gva kGva = 0x100000;
  static constexpr Gpa kGpa = 0x5000;
  sim::Machine machine;
  hv::Hypervisor hv;
  hv::Vm& vm;
  sim::GuestPageTable pt;
  sim::Mmu mmu;
};

/// A KVM-page_track-style consumer: records the faulting page, restores
/// write access, and invalidates the stale translation.
struct WpHandler final : sim::PageTrackNotifier {
  explicit WpHandler(sim::Ept& ept) : ept_(ept) {}
  bool on_track(TrackLayer, const TrackEvent& ev) override {
    faults.push_back(ev.gpa_page);
    if (sim::EptEntry* e = ept_.entry(ev.gpa_page); e != nullptr) {
      e->writable = true;
    }
    ev.vcpu->tlb().invalidate_page(ev.pid, ev.gva_page);
    return true;
  }
  sim::Ept& ept_;
  std::vector<Gpa> faults;
};

TEST(EptWriteProtect, FaultDispatchesToHandlerAndWriteCompletes) {
  WpFixture f;
  ASSERT_EQ(f.mmu.access(1, f.pt, WpFixture::kGva, true).status,
            sim::Mmu::Status::kOk);  // establish the EPT mapping

  WpHandler handler(f.vm.ept());
  f.vm.track().register_notifier(TrackLayer::kEptWpFault, &handler);
  sim::EptEntry* e = f.vm.ept().entry(WpFixture::kGpa);
  ASSERT_NE(e, nullptr);
  e->writable = false;
  f.vm.vcpu().tlb().invalidate_page(1, WpFixture::kGva);

  const auto r = f.mmu.access(1, f.pt, WpFixture::kGva, true);
  EXPECT_EQ(r.status, sim::Mmu::Status::kOk);
  ASSERT_EQ(handler.faults.size(), 1u);
  EXPECT_EQ(handler.faults[0], WpFixture::kGpa);
  EXPECT_TRUE(e->writable) << "handler restored write access";
  EXPECT_GE(f.vm.vcpu().ctx().counters.get(Event::kEptWpFault), 1u);
  f.vm.track().unregister_notifier(TrackLayer::kEptWpFault, &handler);
}

TEST(EptWriteProtect, UnhandledFaultIsAConfigurationError) {
  WpFixture f;
  ASSERT_EQ(f.mmu.access(1, f.pt, WpFixture::kGva, true).status,
            sim::Mmu::Status::kOk);
  sim::EptEntry* e = f.vm.ept().entry(WpFixture::kGpa);
  ASSERT_NE(e, nullptr);
  e->writable = false;
  f.vm.vcpu().tlb().invalidate_page(1, WpFixture::kGva);
  EXPECT_THROW((void)f.mmu.access(1, f.pt, WpFixture::kGva, true), std::logic_error);
}

TEST(EptWriteProtect, StaleTlbEntryBypassesTheFaultUntilInvalidated) {
  // Regression (satellite fix): protecting an EPT entry without shooting
  // down the vCPU's cached translation lets writes bypass the permission
  // fault — the consumer silently misses dirty pages. The TLB serves a
  // cached writable+dirty translation without any walk, exactly as real
  // hardware does, so every protect/unprotect *must* invalidate.
  WpFixture f;
  ASSERT_EQ(f.mmu.access(1, f.pt, WpFixture::kGva, true).status,
            sim::Mmu::Status::kOk);  // TLB now caches writable+dirty

  WpHandler handler(f.vm.ept());
  f.vm.track().register_notifier(TrackLayer::kEptWpFault, &handler);
  sim::EptEntry* e = f.vm.ept().entry(WpFixture::kGpa);
  ASSERT_NE(e, nullptr);
  e->writable = false;  // protect, deliberately WITHOUT invalidating

  (void)f.mmu.access(1, f.pt, WpFixture::kGva, true);
  EXPECT_EQ(handler.faults.size(), 0u)
      << "stale translation served the write: no fault observed";

  f.vm.vcpu().tlb().invalidate_page(1, WpFixture::kGva);
  (void)f.mmu.access(1, f.pt, WpFixture::kGva, true);
  EXPECT_EQ(handler.faults.size(), 1u)
      << "after invalidation the write faults as required";
  f.vm.track().unregister_notifier(TrackLayer::kEptWpFault, &handler);
}

// ---- WpTracker backend ------------------------------------------------------

TEST(WpTrackerTest, CatchesRewritesOfTlbCachedPages) {
  // The tracker-level face of the TLB regression: pages written (and TLB
  // cached) before init must still be caught after the protect pass.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 32;
  const Gva base = proc.mmap(pages * kPageSize);
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  auto tracker = lib::make_tracker(lib::Technique::kWp, k, proc);
  tracker->init();
  tracker->begin_interval();
  for (u64 i = 0; i < 8; ++i) proc.touch_write(base + i * kPageSize);
  const std::vector<Gva> dirty = tracker->collect();
  k.scheduler().exit_process(proc.pid());

  ASSERT_EQ(dirty.size(), 8u);
  for (u64 i = 0; i < 8; ++i) EXPECT_EQ(dirty[i], base + i * kPageSize);
  tracker->shutdown();
}

TEST(WpTrackerTest, ReprotectsAcrossIntervalsAndCatchesDemandMappedPages) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 16;
  const Gva base = proc.mmap(pages * kPageSize);
  k.scheduler().enter_process(proc.pid());
  proc.touch_write(base);  // only page 0 is mapped when the tracker attaches

  auto tracker = lib::make_tracker(lib::Technique::kWp, k, proc);
  tracker->init();
  tracker->begin_interval();
  // Interval 1: one protected page rewritten + several never-seen pages
  // demand-mapped by first touch.
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty.size(), pages);

  // Interval 2: everything collected was re-protected, so rewrites fault
  // and are caught again.
  tracker->begin_interval();
  for (u64 i = 0; i < 4; ++i) proc.touch_write(base + i * kPageSize);
  dirty = tracker->collect();
  EXPECT_EQ(dirty.size(), 4u);

  // Interval 3: nothing written, nothing reported.
  tracker->begin_interval();
  dirty = tracker->collect();
  EXPECT_TRUE(dirty.empty());
  k.scheduler().exit_process(proc.pid());
  tracker->shutdown();

  // Shutdown restored write access: writes proceed without a tracker.
  k.scheduler().enter_process(proc.pid());
  proc.touch_write(base);
  k.scheduler().exit_process(proc.pid());
}

// ---- SPML rmap-cache flush on munmap (satellite fix) ------------------------

TEST(SpmlRmapCache, MunmapDropsStaleReverseMappings) {
  // Unmapping a tracked VMA frees its guest frames; a later mapping
  // recycles them. A stale GPA->GVA cache entry would reverse-map the new
  // mapping's writes to the *old* VMA's addresses.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 24;
  const Gva old_base = proc.mmap(pages * kPageSize);

  auto tracker = lib::make_tracker(lib::Technique::kSpml, k, proc);
  tracker->init();
  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(old_base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  (void)tracker->collect();  // populates the GPA->GVA cache for old_base

  proc.munmap(old_base);  // frees the frames; flush drops the cache range
  const Gva new_base = proc.mmap(pages * kPageSize);
  ASSERT_NE(new_base, old_base);

  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(new_base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  const std::vector<Gva> dirty = tracker->collect();

  std::unordered_set<Gva> expected;
  for (u64 i = 0; i < pages; ++i) expected.insert(new_base + i * kPageSize);
  EXPECT_EQ(dirty.size(), pages);
  for (const Gva page : dirty) {
    EXPECT_TRUE(expected.contains(page))
        << "reverse map produced a stale (unmapped) address 0x" << std::hex << page;
  }
  tracker->shutdown();
}

// ---- migration + guest EPML coexistence -------------------------------------

struct CoexistOutcome {
  std::vector<Gva> interval1, interval2;
  double collect_us = 0.0;  ///< tracker-attributed collect time, both intervals.
  double arm_us = 0.0;
  u64 migration_sent = 0;
};

/// One tenant running an EPML session over two intervals; if `migrate` is
/// set, a pre-copy migration (hypervisor-side kPmlDrain consumer) runs
/// between the intervals and unregisters when it converges.
CoexistOutcome run_epml_session(bool migrate) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize);
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());

  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();

  CoexistOutcome out;
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < 16; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());

  if (migrate) {
    hv::MigrationEngine engine(bed.hypervisor());
    const hv::MigrationReport rep = engine.migrate(bed.vm(), [] {});
    EXPECT_TRUE(rep.converged);
    out.migration_sent = rep.pages_sent;
  }

  out.interval1 = tracker->collect();
  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 16; i < 48; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  out.interval2 = tracker->collect();

  out.collect_us = tracker->phases().collect.count();
  out.arm_us = tracker->phases().arm.count();
  tracker->shutdown();
  return out;
}

TEST(Coexistence, MigrationAndEpmlBothCompleteAndIndependent) {
  const CoexistOutcome with = run_epml_session(/*migrate=*/true);
  const CoexistOutcome without = run_epml_session(/*migrate=*/false);

  // Both consumers saw complete dirty sets: the EPML session caught every
  // tracked write in each interval; the migration sent at least the full
  // initial copy.
  EXPECT_EQ(with.interval1.size(), 16u);
  EXPECT_EQ(with.interval2.size(), 32u);
  EXPECT_GE(with.migration_sent, 64u);

  // Registering + unregistering the hypervisor-side consumer around the
  // interval boundary must not perturb the EPML session's results: same
  // dirty sets, bit-identical tracker-attributed virtual time.
  EXPECT_EQ(with.interval1, without.interval1);
  EXPECT_EQ(with.interval2, without.interval2);
  EXPECT_EQ(with.collect_us, without.collect_us);
  EXPECT_EQ(with.arm_us, without.arm_us);
}

// ---- hardware circuits are permanent chain members --------------------------

TEST(HardwareCircuits, RegisteredAtVcpuConstruction) {
  lib::TestBed bed;
  WriteTrackRegistry& track = bed.vm().track();
  // The PML logging circuits occupy the head of their chains from birth, so
  // software consumers registered later always run after the hardware.
  EXPECT_GE(track.notifier_count(TrackLayer::kGuestPtDirty), 1u);
  EXPECT_GE(track.notifier_count(TrackLayer::kEptDirty), 1u);
  EXPECT_GE(track.notifier_count(TrackLayer::kEptAccessed), 1u);
}

}  // namespace
}  // namespace ooh
