// CRIU tests: checkpoint/restore round-trips byte-for-byte, incremental
// image freshness depends on tracker completeness (and holds for every
// technique), and the phase shapes match §VI-F (/proc fuses MD into MW;
// SPML's MD dominated by reverse mapping; EPML MW is pure page writing).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "ooh/testbed.hpp"
#include "trackers/criu/checkpoint.hpp"

namespace ooh::criu {
namespace {

using lib::Technique;

constexpr Technique kAll[] = {Technique::kProc, Technique::kUfd, Technique::kSpml,
                              Technique::kEpml, Technique::kWp, Technique::kOracle};

std::string tech_label(Technique t) {
  switch (t) {
    case Technique::kProc: return "proc";
    case Technique::kUfd: return "ufd";
    case Technique::kSpml: return "spml";
    case Technique::kEpml: return "epml";
    case Technique::kWp: return "wp";
    case Technique::kOracle: return "oracle";
  }
  return "?";
}

/// A workload that writes a derministic pattern the restore test can verify.
lib::WorkloadFn pattern_writer(Gva base, u64 pages, u64 seed) {
  return [=](guest::Process& p) {
    Rng rng(seed);
    for (u64 i = 0; i < pages; ++i) {
      p.write_u64(base + i * kPageSize + (i % 100) * 8, rng.next());
    }
    // Rewrite a subset so the image must refresh stale full-copy pages.
    for (u64 i = 0; i < pages; i += 3) {
      p.write_u64(base + i * kPageSize, rng.next());
    }
  };
}

std::vector<u8> read_page(guest::Process& p, Gva page) {
  std::vector<u8> buf(kPageSize);
  p.read_bytes(page, buf);
  return buf;
}

class CriuRoundTrip : public ::testing::TestWithParam<Technique> {};

TEST_P(CriuRoundTrip, RestoredMemoryEqualsOriginal) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 64;
  const Gva base = proc.mmap(pages * kPageSize, /*data_backed=*/true);
  // Warm with initial content so the full copy has something to be stale about.
  for (u64 i = 0; i < pages; ++i) proc.write_u64(base + i * kPageSize, i);

  Checkpointer cp(k, GetParam());
  const CheckpointResult res =
      cp.checkpoint_during(proc, pattern_writer(base, pages, 77));

  guest::Process& restored = k.create_process();
  restore(restored, res.image);

  for (u64 i = 0; i < pages; ++i) {
    const Gva page = base + i * kPageSize;
    EXPECT_EQ(read_page(proc, page), read_page(restored, page))
        << tech_label(GetParam()) << ": page " << i
        << " stale in image (tracker missed the re-write)";
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, CriuRoundTrip, ::testing::ValuesIn(kAll),
                         [](const auto& pinfo) { return tech_label(pinfo.param); });

class CriuPrecopy : public ::testing::TestWithParam<Technique> {};

TEST_P(CriuPrecopy, IncrementalRoundsStillYieldCorrectImage) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 128;
  const Gva base = proc.mmap(pages * kPageSize, /*data_backed=*/true);
  for (u64 i = 0; i < pages; ++i) proc.write_u64(base + i * kPageSize, i);

  Checkpointer cp(k, GetParam());
  CheckpointOptions opts;
  opts.precopy_period = usecs(200);
  const CheckpointResult res =
      cp.checkpoint_during(proc, pattern_writer(base, pages, 99), opts);
  EXPECT_GT(res.phases.precopy.count(), 0.0);

  guest::Process& restored = k.create_process();
  restore(restored, res.image);
  for (u64 i = 0; i < pages; ++i) {
    const Gva page = base + i * kPageSize;
    EXPECT_EQ(read_page(proc, page), read_page(restored, page));
  }
  EXPECT_GT(res.image.dump_ops, res.image.pages.size())
      << "pre-copy rounds must have re-dumped some pages";
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, CriuPrecopy,
                         ::testing::Values(Technique::kProc, Technique::kEpml,
                                           Technique::kSpml),
                         [](const auto& pinfo) { return tech_label(pinfo.param); });

TEST(Criu, FullCheckpointCapturesAllPresentPages) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(16 * kPageSize, true);
  for (u64 i = 0; i < 16; i += 2) proc.write_u64(base + i * kPageSize, i);

  Checkpointer cp(k, Technique::kOracle);
  const CheckpointImage image = cp.full_checkpoint(proc);
  EXPECT_EQ(image.pages.size(), 8u) << "only touched pages are present";
  guest::Process& restored = k.create_process();
  restore(restored, image);
  for (u64 i = 0; i < 16; i += 2) {
    EXPECT_EQ(restored.read_u64(base + i * kPageSize), i);
  }
}

TEST(Criu, RestoreRequiresFreshProcess) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  (void)proc.mmap(kPageSize);
  CheckpointImage image;
  EXPECT_THROW(restore(proc, image), std::invalid_argument);
}

TEST(Criu, ProcFusesMdIntoMw) {
  // §VI-F: with /proc, CRIU dumps pages as the pagemap walk finds them, so
  // MD is empty and MW carries the scan; with EPML, MD is the cheap ring
  // read and MW is pure page writing.
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 256;
  const Gva base = proc.mmap(pages * kPageSize);

  Checkpointer cp(k, Technique::kProc);
  const CheckpointResult res = cp.checkpoint_during(proc, pattern_writer(base, pages, 5));
  EXPECT_EQ(res.phases.md.count(), 0.0);
  EXPECT_GT(res.phases.mw.count(),
            bed.machine().cost.pagemap_scan_us(proc.mapped_bytes()))
      << "/proc MW must include the pagemap walk";
}

TEST(Criu, SpmlMdDominatedByReverseMapping) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 2560;  // 10 MiB
  const Gva base = proc.mmap(pages * kPageSize);

  Checkpointer cp(k, Technique::kSpml);
  const CheckpointResult res = cp.checkpoint_during(proc, pattern_writer(base, pages, 5));
  EXPECT_GT(res.phases.md.count(), res.phases.mw.count())
      << "SPML checkpoint time is dominated by MD (reverse mapping), Fig. 8";
}

TEST(Criu, EpmlMwIsPurePageWriting) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 256;
  const Gva base = proc.mmap(pages * kPageSize);

  Checkpointer cp(k, Technique::kEpml);
  const CheckpointResult res = cp.checkpoint_during(proc, pattern_writer(base, pages, 5));
  const double expected_mw =
      bed.machine().cost.disk_write_page_us * static_cast<double>(res.final_dirty_pages);
  EXPECT_NEAR(res.phases.mw.count(), expected_mw, expected_mw * 0.1);
  EXPECT_LT(res.phases.md.count(), res.phases.mw.count());
}

TEST(Criu, MwShapeMatchesFig7AcrossTechniques) {
  // Fig. 7: with a fixed dirty set, MW grows with *memory size* for /proc
  // (the fused pagemap walk scans everything) but stays ~constant for EPML
  // (pure page writes of the dirty set).
  const u64 dirty = 256;
  auto mw_time = [&](Technique t, u64 total_pages) {
    lib::TestBed bed;
    guest::GuestKernel& k = bed.kernel();
    guest::Process& proc = k.create_process();
    const Gva base = proc.mmap(total_pages * kPageSize);
    for (u64 i = 0; i < total_pages; ++i) proc.touch_write(base + i * kPageSize);
    Checkpointer cp(k, t);
    CheckpointOptions opts;
    opts.initial_full_copy = false;  // isolate the dirty-page MW
    const auto writer = [&](guest::Process& p) {
      for (u64 i = 0; i < dirty; ++i) p.touch_write(base + i * kPageSize);
    };
    return cp.checkpoint_during(proc, writer, opts).phases.mw.count();
  };
  const u64 small = 1024, large = 16384;  // 4 MiB vs 64 MiB
  const double proc_small = mw_time(Technique::kProc, small);
  const double proc_large = mw_time(Technique::kProc, large);
  const double epml_small = mw_time(Technique::kEpml, small);
  const double epml_large = mw_time(Technique::kEpml, large);
  EXPECT_GT(proc_large, epml_large * 2) << "EPML improves MW vs /proc";
  EXPECT_GT(proc_large / proc_small, 4.0) << "/proc MW grows with memory";
  EXPECT_LT(epml_large / epml_small, 1.5) << "EPML MW ~constant (Fig. 7)";
}

TEST(Criu, MetadataOnlyVmasDumpEmptyPages) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(4 * kPageSize, /*data_backed=*/false);
  for (int i = 0; i < 4; ++i) proc.touch_write(base + i * kPageSize);
  Checkpointer cp(k, Technique::kOracle);
  const CheckpointImage image = cp.full_checkpoint(proc);
  EXPECT_EQ(image.pages.size(), 4u);
  for (const auto& [gva, content] : image.pages) EXPECT_TRUE(content.empty());
  guest::Process& restored = k.create_process();
  restore(restored, image);  // must not throw
  EXPECT_EQ(k.page_table(restored).present_pages(), 4u);
}

}  // namespace
}  // namespace ooh::criu
