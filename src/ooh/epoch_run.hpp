// Epoch-parallel execution at the experiment layer.
//
// Two shapes of parallelism, both with bit-identical virtual-time outputs:
//
//   * run_cells(): a figure's independent cells (app x technique grid, each
//     cell building its own TestBed) fan out across the epoch worker pool.
//     Results land in submission-order slots, so row order — and every byte
//     of figure output — is identical to the serial loop (EPOCH-1). This is
//     where the order-of-magnitude figure wall-clock comes from.
//
//   * record_epochs() / replay_epochs(): one bed's run split into chained
//     epochs at quiescent points. Recording runs the epochs serially once,
//     capturing a CoW machine snapshot at every boundary (milliseconds per
//     capture; sim/snapshot). Replay then simulates any or all epochs
//     *independently* — each on a private bed restored to its entry
//     boundary — across the pool. Because a restored bed is byte-identical
//     to the recorded machine, each replayed epoch's exit state must equal
//     the next recorded boundary; replay verifies exactly that, making the
//     merged timeline provably equal to the serial one rather than
//     hopefully so.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ooh/testbed.hpp"
#include "sim/epoch/epoch_pool.hpp"

namespace ooh::lib {

/// Worker count for epoch-parallel figure drivers: the OOH_EPOCH_THREADS
/// environment variable when set (1 forces the serial inline path), else 0,
/// which lets EpochPool auto-size to the hardware.
[[nodiscard]] unsigned epoch_threads_from_env() noexcept;

/// Fan a figure's `n` independent cells across the epoch pool, returning
/// results in submission order. Each cell must build its own TestBed (cells
/// share no simulator state); the pool guarantees the output vector — and
/// therefore the emitted figure bytes — cannot depend on worker count or
/// completion order. Thread count comes from OOH_EPOCH_THREADS (see above).
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> run_cells(std::size_t n, Fn&& fn, unsigned threads = 0) {
  epoch::Options opt;
  opt.threads = threads != 0 ? threads : epoch_threads_from_env();
  return epoch::EpochPool::map<T>(n, std::forward<Fn>(fn), opt);
}

/// One epoch of a chained run: advance `bed` from its current (entry)
/// boundary to the exit boundary. Must leave the bed quiescent (the
/// snapshot contract, sim/snapshot/machine_image.hpp).
using EpochBody = std::function<void(TestBed& bed, std::size_t epoch)>;

/// A recorded chain over `epochs` epochs: boundaries[i] is the machine
/// state entering epoch i; boundaries[epochs] is the final exit state.
struct EpochChain {
  std::vector<snapshot::MachineSnapshot> boundaries;

  [[nodiscard]] std::size_t epochs() const noexcept {
    return boundaries.empty() ? 0 : boundaries.size() - 1;
  }
};

/// Serial recording pass: run body(bed, 0..epochs-1), snapshotting the bed
/// before the first epoch and after every epoch. Captures are CoW — the
/// pass costs one serial simulation plus O(backed frames) pointer copies
/// per boundary.
[[nodiscard]] EpochChain record_epochs(TestBed& bed, std::size_t epochs,
                                       const EpochBody& body);

struct ReplayOptions {
  /// Epoch worker threads; 0 auto-sizes, 1 replays serially.
  unsigned threads = 0;
  /// Determinism-test knob: seeded stagger shuffling real-time completion
  /// order (epoch::Options::stagger_seed).
  u64 stagger_seed = 0;
  /// Byte-compare every replayed epoch's exit state against the next
  /// recorded boundary; a mismatch throws std::runtime_error naming the
  /// seam. This is the EPOCH-1 merge proof — leave it on outside benches.
  bool verify_seams = true;
};

/// Replay the chain's epochs independently across the pool. Each epoch gets
/// a fresh bed from `make_bed` (which must rebuild the recording bed's
/// TestBedOptions), restored to its entry boundary. Returns each epoch's
/// exit state stream in submission order — byte-equal to the recorded
/// boundaries when the bodies are deterministic, which verify_seams checks.
[[nodiscard]] std::vector<std::vector<u8>> replay_epochs(
    const std::function<std::unique_ptr<TestBed>()>& make_bed,
    const EpochChain& chain, const EpochBody& body, ReplayOptions opt = {});

/// Deterministic submission-order merge of per-epoch event-counter deltas
/// into one machine-wide total. Addition is commutative, so this exists
/// less for ordering than for the name: merged figures must come from this
/// (auditable) fold, not ad-hoc summation at call sites.
[[nodiscard]] EventCounters merge_counters(const std::vector<EventCounters>& parts);

}  // namespace ooh::lib
