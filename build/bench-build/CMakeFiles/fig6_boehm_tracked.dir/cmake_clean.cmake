file(REMOVE_RECURSE
  "../bench/fig6_boehm_tracked"
  "../bench/fig6_boehm_tracked.pdb"
  "CMakeFiles/fig6_boehm_tracked.dir/fig6_boehm_tracked.cpp.o"
  "CMakeFiles/fig6_boehm_tracked.dir/fig6_boehm_tracked.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_boehm_tracked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
