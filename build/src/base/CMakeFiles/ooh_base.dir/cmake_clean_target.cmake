file(REMOVE_RECURSE
  "libooh_base.a"
)
