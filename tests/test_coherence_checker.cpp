// Mutation self-test for the machine-state coherence oracle (sim/check):
// seed deliberate corruptions across every layer the checker audits — stale
// TLB entries, out-of-range PML indices, misaligned or duplicated log
// entries, unaccounted EPT flags, double-mapped guest frames, unregistered
// hardware circuits, backwards clocks, leaked and double-owned host frames
// — and assert the oracle flags each one with the right invariant ID. The
// clean-machine tests pin the zero-false-positive and zero-virtual-time
// guarantees the figure pipelines rely on.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "guest/kernel.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/migration.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/check/coherence.hpp"

namespace ooh {
namespace {

void expect_violation(const std::function<void()>& audit, const std::string& id) {
  try {
    audit();
    ADD_FAILURE() << "expected InvariantViolation " << id << ", none thrown";
  } catch (const check::InvariantViolation& v) {
    EXPECT_EQ(v.id, id) << v.what();
  }
}

class CoherenceMutationTest : public ::testing::Test {
 protected:
  CoherenceMutationTest()
      : machine_(256 * kMiB, CostModel::unit()),
        hv_(machine_),
        vm_(hv_.create_vm(64 * kMiB)),
        kernel_(hv_, vm_),
        checker_(machine_, hv_) {
    checker_.attach_kernel(vm_.id(), kernel_);
  }

  /// Map and dirty `pages` pages in a fresh process; returns (proc, base).
  std::pair<guest::Process*, Gva> dirty_pages(u64 pages) {
    guest::Process& p = kernel_.create_process();
    const Gva base = p.mmap(pages * kPageSize);
    for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
    return {&p, base};
  }

  sim::Machine machine_;
  hv::Hypervisor hv_;
  hv::Vm& vm_;
  guest::GuestKernel kernel_;
  check::CoherenceChecker checker_;
};

// ---- clean machine: no false positives, no cost -----------------------------

TEST_F(CoherenceMutationTest, CleanMachinePassesEveryAudit) {
  auto [proc, base] = dirty_pages(16);
  hv_.enable_pml_for_hyp(vm_);
  for (u64 i = 0; i < 8; ++i) proc->touch_write(base + i * kPageSize);
  EXPECT_NO_THROW(checker_.audit_all());
  (void)hv_.harvest_hyp_dirty(vm_);
  EXPECT_NO_THROW(checker_.audit_all());
  hv_.disable_pml_for_hyp(vm_);
  EXPECT_NO_THROW(checker_.audit_all());
  EXPECT_GE(checker_.audits_run(), 6u);
}

TEST_F(CoherenceMutationTest, CleanMigrationPassesEveryAudit) {
  auto [proc, base] = dirty_pages(32);
  hv::MigrationEngine engine(hv_);
  hv::MigrationOptions opts;
  opts.max_rounds = 3;
  const auto rep = engine.migrate(
      vm_, [&] { for (u64 i = 0; i < 8; ++i) proc->touch_write(base + i * kPageSize); },
      opts);
  EXPECT_GE(rep.rounds, 1u);
  EXPECT_NO_THROW(checker_.audit_all());
}

TEST_F(CoherenceMutationTest, AuditChargesZeroVirtualTimeAndCountsNoEvents) {
  auto [proc, base] = dirty_pages(8);
  (void)proc;
  (void)base;
  hv_.enable_pml_for_hyp(vm_);
  const VirtDuration before = vm_.ctx().clock.now();
  const EventCounters counters_before = vm_.ctx().counters;
  checker_.audit_all();
  EXPECT_EQ(vm_.ctx().clock.now(), before);
  EXPECT_TRUE(vm_.ctx().counters == counters_before);
}

TEST_F(CoherenceMutationTest, ViolationCarriesStructuredDiagnosis) {
  vm_.vcpu().tlb().insert(/*pid=*/999, 0x7000,
                          sim::TlbEntry{0x3000, 0x4000, false, false});
  try {
    checker_.audit_tlb(vm_);
    ADD_FAILURE() << "expected a TLB-1 violation";
  } catch (const check::InvariantViolation& v) {
    EXPECT_EQ(v.id, "TLB-1");
    EXPECT_EQ(v.layer, check::Layer::kTlb);
    EXPECT_EQ(v.vm_id, vm_.id());
    EXPECT_EQ(v.gva, 0x7000u);
    EXPECT_NE(std::string(v.what()).find("coherence violation TLB-1"),
              std::string::npos);
    EXPECT_FALSE(v.expected.empty());
    EXPECT_FALSE(v.actual.empty());
  }
}

// ---- TLB corruptions --------------------------------------------------------

TEST_F(CoherenceMutationTest, DetectsTlbEntryForUnknownPid) {
  vm_.vcpu().tlb().insert(/*pid=*/999, 0x7000,
                          sim::TlbEntry{0x3000, 0x4000, false, false});
  expect_violation([&] { checker_.audit_tlb(vm_); }, "TLB-1");
}

TEST_F(CoherenceMutationTest, DetectsTlbEntrySurvivingUnmap) {
  auto [proc, base] = dirty_pages(1);
  // Unmap the PTE directly, bypassing Process::munmap's TLB shootdown — the
  // classic missed-invalidation bug.
  kernel_.page_table(*proc).unmap(base);
  expect_violation([&] { checker_.audit_tlb(vm_); }, "TLB-1");
}

TEST_F(CoherenceMutationTest, DetectsStaleCachedWritePermission) {
  auto [proc, base] = dirty_pages(1);
  // Write-protect the PTE without invalidating the cached translation:
  // stores through the stale entry would bypass the fault path entirely.
  kernel_.page_table(*proc).pte(base)->writable = false;
  expect_violation([&] { checker_.audit_tlb(vm_); }, "TLB-2");
}

TEST_F(CoherenceMutationTest, DetectsStaleCachedDirtyState) {
  auto [proc, base] = dirty_pages(1);
  // Clear the EPT dirty flag without the INVEPT the real paths perform:
  // the cached dirty=1 entry would let every later store skip PML logging.
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  vm_.ept().entry(gpa)->dirty = false;
  expect_violation([&] { checker_.audit_tlb(vm_); }, "TLB-3");
}

// ---- walk-cache corruptions -------------------------------------------------

TEST_F(CoherenceMutationTest, DetectsSkewedGuestWalkCache) {
  auto [proc, base] = dirty_pages(1);
  (void)base;
  // Skew the MRU leaf memo's tag so it no longer matches a fresh top-down
  // walk — a walk cache that survived a structural table change.
  kernel_.page_table(*proc).debug_skew_walk_cache();
  expect_violation([&] { checker_.audit_walk_caches(vm_); }, "WALK-1");
}

TEST_F(CoherenceMutationTest, DetectsSkewedEptWalkCache) {
  auto [proc, base] = dirty_pages(1);
  (void)proc;
  (void)base;
  vm_.ept().debug_skew_walk_cache();
  expect_violation([&] { checker_.audit_walk_caches(vm_); }, "WALK-1");
}

TEST_F(CoherenceMutationTest, WalkCachesCoherentAfterUnmapAndRemap) {
  auto [proc, base] = dirty_pages(4);
  proc->munmap(base);
  EXPECT_NO_THROW(checker_.audit_walk_caches(vm_));
  const Gva base2 = proc->mmap(4 * kPageSize);
  for (u64 i = 0; i < 4; ++i) proc->touch_write(base2 + i * kPageSize);
  EXPECT_NO_THROW(checker_.audit_walk_caches(vm_));
}

// ---- PML / EPML buffer corruptions ------------------------------------------

TEST_F(CoherenceMutationTest, DetectsPmlIndexOutOfBounds) {
  hv_.enable_pml_for_hyp(vm_);
  vm_.vcpu().vmcs().write(sim::VmcsField::kPmlIndex, 600);
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "PML-1");
}

TEST_F(CoherenceMutationTest, DetectsMisalignedPmlEntry) {
  hv_.enable_pml_for_hyp(vm_);
  vm_.vcpu().vmcs().write(sim::VmcsField::kPmlIndex, 510);
  machine_.pmem.write_u64(vm_.pml_buffer() + 511 * 8, 0x1234);  // not 4K-aligned
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "PML-2");
}

TEST_F(CoherenceMutationTest, DetectsOutOfRangePmlEntry) {
  hv_.enable_pml_for_hyp(vm_);
  vm_.vcpu().vmcs().write(sim::VmcsField::kPmlIndex, 510);
  machine_.pmem.write_u64(vm_.pml_buffer() + 511 * 8, vm_.mem_bytes() + kPageSize);
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "PML-2");
}

TEST_F(CoherenceMutationTest, DetectsDuplicatePmlEntries) {
  hv_.enable_pml_for_hyp(vm_);
  vm_.vcpu().vmcs().write(sim::VmcsField::kPmlIndex, 509);
  machine_.pmem.write_u64(vm_.pml_buffer() + 510 * 8, 0x5000);
  machine_.pmem.write_u64(vm_.pml_buffer() + 511 * 8, 0x5000);
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "PML-3");
}

TEST_F(CoherenceMutationTest, DetectsVmcsBufferAddressMismatch) {
  hv_.enable_pml_for_hyp(vm_);
  vm_.vcpu().vmcs().write(sim::VmcsField::kPmlAddress,
                          vm_.pml_buffer() + kPageSize);
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "PML-4");
}

TEST_F(CoherenceMutationTest, DetectsGuestPmlControlWithoutShadowVmcs) {
  vm_.vcpu().vmcs().set_control(sim::kEnableGuestPml, true);
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "EPML-3");
}

TEST_F(CoherenceMutationTest, DetectsGuestPmlIndexOutOfBounds) {
  auto [proc, base] = dirty_pages(1);
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  const Hpa buf_hpa = vm_.ept().entry(gpa)->hpa_page;
  sim::Vmcs& shadow = vm_.vcpu().create_shadow_vmcs();
  shadow.write(sim::VmcsField::kGuestPmlAddress, buf_hpa);
  shadow.write(sim::VmcsField::kGuestPmlIndex, 700);
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "EPML-1");
}

TEST_F(CoherenceMutationTest, DetectsMisalignedGuestPmlEntry) {
  auto [proc, base] = dirty_pages(1);
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  const Hpa buf_hpa = vm_.ept().entry(gpa)->hpa_page;
  sim::Vmcs& shadow = vm_.vcpu().create_shadow_vmcs();
  shadow.write(sim::VmcsField::kGuestPmlAddress, buf_hpa);
  shadow.write(sim::VmcsField::kGuestPmlIndex, 510);
  machine_.pmem.write_u64(buf_hpa + 511 * 8, 0x13);  // not a page-aligned GVA
  expect_violation([&] { checker_.audit_pml_buffers(vm_); }, "EPML-2");
}

// ---- dirty-flag accounting corruptions --------------------------------------

TEST_F(CoherenceMutationTest, DetectsUnaccountedEptDirtyFlag) {
  auto [proc, base] = dirty_pages(4);
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  hv_.enable_pml_for_hyp(vm_);  // clears all dirty flags, arms logging
  // Set a dirty flag behind the walk circuit's back: no PML entry, no
  // drained log record — a write the paper's mechanism would have missed.
  vm_.ept().entry(gpa)->dirty = true;
  expect_violation([&] { checker_.audit_dirty_accounting(vm_); }, "ACC-1");
}

TEST_F(CoherenceMutationTest, DetectsDoubleAccountedGpa) {
  auto [proc, base] = dirty_pages(4);
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  hv_.enable_pml_for_hyp(vm_);
  // The same GPA both in flight in the buffer and already drained to the
  // dirty ring: one write accounted twice.
  vm_.dirty_ring().spill(gpa);
  vm_.vcpu().vmcs().write(sim::VmcsField::kPmlIndex, 510);
  machine_.pmem.write_u64(vm_.pml_buffer() + 511 * 8, gpa);
  expect_violation([&] { checker_.audit_dirty_accounting(vm_); }, "ACC-2");
}

// ---- guest page-table corruptions -------------------------------------------

TEST_F(CoherenceMutationTest, DetectsPteMappingOutOfGuestSpace) {
  guest::Process& p = kernel_.create_process();
  (void)p.mmap(kPageSize);
  kernel_.page_table(p).map(0x40000000, vm_.mem_bytes() + kPageSize, true);
  expect_violation([&] { checker_.audit_guest_tables(vm_); }, "PT-1");
}

TEST_F(CoherenceMutationTest, DetectsGuestFrameMappedTwice) {
  auto [proc, base] = dirty_pages(1);
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  guest::Process& other = kernel_.create_process();
  kernel_.page_table(other).map(0x40000000, gpa, true);
  expect_violation([&] { checker_.audit_guest_tables(vm_); }, "PT-2");
}

// ---- granularity corruptions ------------------------------------------------

TEST_F(CoherenceMutationTest, DetectsCrossGranOverlapInEpt) {
  auto [proc, base] = dirty_pages(8);
  // Slam a PS-bit 2 MiB leaf over the region the demand-paged 4 KiB EPT
  // entries already occupy: a cross-granularity double cover of those GPAs.
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  vm_.ept().map_huge(gran_floor(gpa, PageGran::k2M), 16 * kMiB, PageGran::k2M,
                     true);
  expect_violation([&] { checker_.audit_granularity(vm_); }, "GRAN-1");
}

TEST_F(CoherenceMutationTest, DetectsOverlappingSegments) {
  guest::Process& p = kernel_.create_process();
  const Gva base = p.mmap(4 * kPageSize);
  // Touch out of order so the GPA runs cannot coalesce into one segment.
  p.touch_write(base + 2 * kPageSize);
  p.touch_write(base);
  p.touch_write(base + kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kSeg, kernel_, p);
  tracker->init();  // converts the radix table to the segment backend
  ASSERT_GE(kernel_.page_table(p).segment_table()->segment_count(), 2u);
  EXPECT_NO_THROW(checker_.audit_granularity(vm_));
  kernel_.page_table(p).segment_table()->debug_overlap_segments();
  expect_violation([&] { checker_.audit_granularity(vm_); }, "GRAN-1");
}

TEST_F(CoherenceMutationTest, DetectsHugeLeafDuringEagerSplitSession) {
  auto [proc, base] = dirty_pages(4);
  (void)proc;
  (void)base;
  hv_.enable_pml_for_hyp(vm_);  // eager-split session: active from here on
  ASSERT_TRUE(vm_.eager_split_active());
  EXPECT_NO_THROW(checker_.audit_eager_split(vm_));
  // A PS-bit leaf appearing mid-session coarsens dirty logging back to
  // 2 MiB supersets — exactly what the split paid to prevent.
  vm_.ept().map_huge(32 * kMiB, 48 * kMiB, PageGran::k2M, true);
  expect_violation([&] { checker_.audit_eager_split(vm_); }, "SPLIT-1");
}

// ---- notifier-registry corruptions ------------------------------------------

TEST_F(CoherenceMutationTest, DetectsMissingHardwareCircuit) {
  auto* circuit =
      const_cast<sim::PageTrackNotifier*>(vm_.vcpu().hyp_pml_circuit());
  vm_.track().unregister_notifier(sim::TrackLayer::kEptDirty, circuit);
  expect_violation([&] { checker_.audit_registry(vm_); }, "REG-2");
}

TEST_F(CoherenceMutationTest, DetectsSoftwareConsumerAheadOfCircuit) {
  auto* circuit =
      const_cast<sim::PageTrackNotifier*>(vm_.vcpu().guest_pml_circuit());
  // Re-registering the circuit after a software consumer demotes the
  // hardware to the back of the chain: consumers would observe events
  // before the hardware logged them.
  vm_.track().unregister_notifier(sim::TrackLayer::kGuestPtDirty, circuit);
  vm_.track().register_notifier(sim::TrackLayer::kGuestPtDirty,
                                &vm_.hyp_drain_consumer());
  vm_.track().register_notifier(sim::TrackLayer::kGuestPtDirty, circuit);
  expect_violation([&] { checker_.audit_registry(vm_); }, "REG-2");
}

// ---- policy-handoff corruptions ---------------------------------------------

TEST_F(CoherenceMutationTest, DetectsOrphanedWriteProtectionAfterHandoff) {
  auto [proc, base] = dirty_pages(4);
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  EXPECT_NO_THROW(checker_.audit_policy_handoff(vm_));
  // A backend switch away from write-protection that forgot to restore an
  // entry: no kEptWpFault handler is live, so the next write to this page
  // would be an unhandled WP fault and its dirty transition never observed.
  vm_.ept().entry(gpa)->writable = false;
  expect_violation([&] { checker_.audit_policy_handoff(vm_); }, "POL-1");
}

TEST_F(CoherenceMutationTest, LiveWpSessionOwnsItsProtections) {
  guest::Process& p = kernel_.create_process();
  const Gva base = p.mmap(4 * kPageSize);
  for (int i = 0; i < 4; ++i) p.touch_write(base + i * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kWp, kernel_, p);
  tracker->init();
  tracker->begin_interval();  // write-protects the VMA's EPT entries
  EXPECT_NO_THROW(checker_.audit_policy_handoff(vm_))
      << "a live kEptWpFault handler owns its protections";
  tracker->shutdown();  // the handoff path: restore writability, unregister
  EXPECT_NO_THROW(checker_.audit_policy_handoff(vm_))
      << "a clean shutdown leaves no orphaned protection behind";
}

// ---- clock corruption -------------------------------------------------------

TEST_F(CoherenceMutationTest, DetectsClockRunningBackwards) {
  auto [proc, base] = dirty_pages(4);
  (void)proc;
  (void)base;
  ASSERT_GT(vm_.ctx().clock.now().count(), 0.0);
  EXPECT_NO_THROW(checker_.audit_clock(vm_));  // snapshot the current time
  vm_.ctx().clock.reset();
  expect_violation([&] { checker_.audit_clock(vm_); }, "CLK-1");
}

// ---- frame-ownership corruptions --------------------------------------------

TEST_F(CoherenceMutationTest, DetectsFrameOwnedByTwoVms) {
  auto [proc, base] = dirty_pages(1);
  const Gpa gpa = kernel_.page_table(*proc).pte(base)->gpa_page;
  const Hpa stolen = vm_.ept().entry(gpa)->hpa_page;
  hv::Vm& intruder = hv_.create_vm(16 * kMiB);
  intruder.ept().map(0x8000, stolen);
  expect_violation([&] { checker_.audit_frames(); }, "FRAME-1");
}

TEST_F(CoherenceMutationTest, DetectsLeakedFrame) {
  auto [proc, base] = dirty_pages(2);
  (void)proc;
  (void)base;
  const Hpa leaked = machine_.pmem.alloc_frame();  // never mapped anywhere
  EXPECT_NE(leaked, 0u);
  expect_violation([&] { checker_.audit_frames(); }, "FRAME-2");
}

TEST_F(CoherenceMutationTest, DetectsEptEntryNamingBogusFrame) {
  vm_.ept().map(0x8000, machine_.pmem.total_frames() * kPageSize + kPageSize);
  expect_violation([&] { checker_.audit_frames(); }, "FRAME-3");
}

// ---- auto-wiring ------------------------------------------------------------

TEST(CoherenceWiring, AuditsRunAutomaticallyDuringTrackedRuns) {
  if (!check::kCoherenceAuditsEnabled) {
    GTEST_SKIP() << "auto-audit wiring compiled out (OOH_COHERENCE_AUDITS off)";
  }
  lib::TestBedOptions opts;
  opts.host_mem_bytes = 256 * kMiB;
  opts.vm_mem_bytes = 64 * kMiB;
  opts.cost = CostModel::unit();
  lib::TestBed bed(opts);
  guest::Process& proc = bed.kernel().create_process();
  const Gva base = proc.mmap(16 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kProc, bed.kernel(), proc);
  (void)lib::run_tracked(bed.kernel(), proc,
                         [&](guest::Process& p) {
                           for (u64 i = 0; i < 16; ++i)
                             p.touch_write(base + i * kPageSize);
                         },
                         tracker.get(), {});
  EXPECT_GT(bed.checker().audits_run(), 0u)
      << "run_tracked's collection boundary should audit via the hook";
  EXPECT_NO_THROW(bed.audit());
}

}  // namespace
}  // namespace ooh
