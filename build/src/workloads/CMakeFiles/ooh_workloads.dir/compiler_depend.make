# Empty compiler generated dependencies file for ooh_workloads.
# This may be replaced when dependencies are built.
