// The machine snapshot walk: one fixed serialization order over every
// subsystem (see machine_image.hpp for the format contract and the epoch
// boundary / quiescence rules).
//
// Determinism notes, per container kind:
//   * unordered_map state (SPP masks, phys-mem shard maps) is emitted in
//     sorted key order;
//   * insertion-ordered containers (FlatPageMap truth ledgers, VMA lists,
//     segment tables, free lists) are emitted in their own order, which IS
//     their semantic state;
//   * derived caches (radix MRU walk caches, VMA/segment MRU memos, the
//     TLB's heap layout beyond the live slots) are NOT serialized — restore
//     resets them, and no virtual-time result can observe the difference;
//   * VMCS kVmcsLinkPointer holds a raw host pointer and is canonicalized
//     to shadow-VMCS *presence*; restore re-links to the restored bed's own
//     shadow object.
#include "sim/snapshot/machine_image.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/clock.hpp"
#include "base/counters.hpp"
#include "base/ring_buffer.hpp"
#include "guest/kernel.hpp"
#include "guest/process.hpp"
#include "guest/scheduler.hpp"
#include "guest/swap.hpp"
#include "guest/uffd.hpp"
#include "hypervisor/dirty_ring.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/vm.hpp"
#include "sim/ept.hpp"
#include "sim/machine.hpp"
#include "sim/page_table.hpp"
#include "sim/page_table_entry.hpp"
#include "sim/page_track.hpp"
#include "sim/segment_table.hpp"
#include "sim/snapshot/serializer.hpp"
#include "sim/spp.hpp"
#include "sim/tlb.hpp"
#include "sim/vcpu.hpp"
#include "sim/vmcs.hpp"

namespace ooh::snapshot {
namespace {

// Section tags ("MACH", "PMEM", "CTX\0", "VM\0\0", "KERN").
constexpr u32 kSecMachine = 0x4D414348;
constexpr u32 kSecPmem = 0x504D454D;
constexpr u32 kSecCtx = 0x43545800;
constexpr u32 kSecVm = 0x564D0000;
constexpr u32 kSecKernel = 0x4B45524E;

[[noreturn]] void busy(const std::string& what) {
  throw std::logic_error("snapshot: machine not quiescent: " + what);
}

[[noreturn]] void mismatch(const std::string& what) {
  throw std::runtime_error("snapshot: restore target mismatch: " + what);
}

[[nodiscard]] u8 pack_pte_flags(const sim::Pte& e) noexcept {
  return static_cast<u8>((e.present ? 1u : 0u) | (e.writable ? 2u : 0u) |
                         (e.user ? 4u : 0u) | (e.accessed ? 8u : 0u) |
                         (e.dirty ? 16u : 0u) | (e.soft_dirty ? 32u : 0u) |
                         (e.uffd_wp ? 64u : 0u));
}

void unpack_pte_flags(sim::Pte& e, u8 bits) noexcept {
  e.present = (bits & 1u) != 0;
  e.writable = (bits & 2u) != 0;
  e.user = (bits & 4u) != 0;
  e.accessed = (bits & 8u) != 0;
  e.dirty = (bits & 16u) != 0;
  e.soft_dirty = (bits & 32u) != 0;
  e.uffd_wp = (bits & 64u) != 0;
}

[[nodiscard]] u8 pack_ept_flags(const sim::EptEntry& e) noexcept {
  return static_cast<u8>((e.present ? 1u : 0u) | (e.writable ? 2u : 0u) |
                         (e.accessed ? 4u : 0u) | (e.dirty ? 8u : 0u) |
                         (e.spp ? 16u : 0u));
}

void unpack_ept_flags(sim::EptEntry& e, u8 bits) noexcept {
  e.present = (bits & 1u) != 0;
  e.writable = (bits & 2u) != 0;
  e.accessed = (bits & 4u) != 0;
  e.dirty = (bits & 8u) != 0;
  e.spp = (bits & 16u) != 0;
}

[[nodiscard]] u8 pack_field_set(const sim::VmcsFieldSet& s) noexcept {
  u8 bits = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::VmcsField::kCount); ++i) {
    if (s.contains(static_cast<sim::VmcsField>(i))) bits |= static_cast<u8>(1u << i);
  }
  return bits;
}

void unpack_field_set(sim::VmcsFieldSet& s, u8 bits) noexcept {
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::VmcsField::kCount); ++i) {
    const auto f = static_cast<sim::VmcsField>(i);
    if ((bits >> i) & 1u) {
      s.add(f);
    } else {
      s.remove(f);
    }
  }
}

}  // namespace

// All per-subsystem walkers live on a nested type so they share Access's
// friendship with every serializable class while staying out of the header.
struct Access::Impl {
  // ---- physical memory (allocator state + CoW frame capture) ---------------

  static void save_pmem(Writer& w, sim::PhysicalMemory& pm,
                        std::vector<sim::PhysicalMemory::FrameImage>& frames_out) {
    const auto sec = w.begin_section(kSecPmem);
    w.u64(pm.total_frames_);
    // relaxed-ok: quiescent by contract — no concurrent allocator users.
    w.u64(pm.next_frame_.load(std::memory_order_relaxed));
    // relaxed-ok: quiescent by contract, as above.
    w.u64(pm.used_frames_.load(std::memory_order_relaxed));
    // relaxed-ok: quiescent by contract, as above.
    w.u64(pm.alloc_rotor_.load(std::memory_order_relaxed));
    for (const auto& s : pm.shards_) {
      w.u64(s.free_list.size());
      for (const u64 fn : s.free_list) w.u64(fn);
    }
    frames_out = pm.capture_frames();
    w.u64(frames_out.size());
    for (const auto& [fn, frame] : frames_out) {
      w.u64(fn);
      w.u64(fnv1a(frame->data(), frame->size()));
    }
    w.end_section(sec);
  }

  static void restore_pmem(Reader& r, const MachineSnapshot& snap,
                           sim::PhysicalMemory& pm) {
    r.expect_section(kSecPmem);
    if (r.u64() != pm.total_frames_) mismatch("host memory size");
    // relaxed-ok: quiescent by contract, see save_pmem.
    pm.next_frame_.store(r.u64(), std::memory_order_relaxed);
    // relaxed-ok: quiescent by contract, as above.
    pm.used_frames_.store(r.u64(), std::memory_order_relaxed);
    // relaxed-ok: quiescent by contract, as above. The rotor restore is what
    // makes a replayed epoch allocate the same HPA sequence the recording
    // did (the serialized EPT contains HPAs, so seams are byte-compared).
    pm.alloc_rotor_.store(r.u64(), std::memory_order_relaxed);
    for (auto& s : pm.shards_) {
      s.data.clear();
      s.free_list.clear();
      const u64 n = r.u64();
      s.free_list.reserve(n);
      for (u64 i = 0; i < n; ++i) s.free_list.push_back(r.u64());
    }
    const u64 nframes = r.u64();
    if (nframes != snap.frames.size()) mismatch("captured frame count");
    for (const auto& [fn, frame] : snap.frames) {
      if (r.u64() != fn) mismatch("captured frame order");
      r.u64();  // content digest: a witness for stream comparison, not re-checked
                // here — the installed contents ARE the captured (immutable) image.
      // Installing the shared image leaves use_count > 1: the frame is
      // shared-read-only (FRAME-4) and the first write clones it.
      pm.shard_of(fn).data[fn] =
          std::const_pointer_cast<sim::PhysicalMemory::Frame>(frame);
    }
  }

  // ---- per-vCPU execution context (clock, counters, TLB) --------------------

  static void save_tlb(Writer& w, const sim::Tlb& t) {
    w.u64(t.capacity_);
    w.u64(t.size_);
    w.u64(t.huge_entries_);
    w.u64(t.generation_);
    w.u64(t.rand_state_);
    for (std::size_t i = 0; i < t.size_; ++i) {
      const auto& s = t.slots_[i];
      w.u32(s.pid);
      w.u32(s.bucket);
      w.u64(s.gva_page);
      w.u64(s.entry.gpa_page);
      w.u64(s.entry.hpa_page);
      w.u8(static_cast<u8>((s.entry.writable ? 1u : 0u) | (s.entry.dirty ? 2u : 0u)));
      w.u8(static_cast<u8>(s.entry.gran));
    }
  }

  static void restore_tlb(Reader& r, sim::Tlb& t) {
    if (r.u64() != t.capacity_) mismatch("TLB capacity");
    const u64 size = r.u64();
    t.huge_entries_ = static_cast<std::size_t>(r.u64());
    t.generation_ = r.u64();
    t.rand_state_ = r.u64();
    t.size_ = static_cast<std::size_t>(size);
    std::fill(t.index_.begin(), t.index_.end(), sim::Tlb::kEmptyBucket);
    for (std::size_t i = 0; i < t.size_; ++i) {
      auto& s = t.slots_[i];
      s.pid = r.u32();
      s.bucket = r.u32();
      s.gva_page = r.u64();
      s.entry.gpa_page = r.u64();
      s.entry.hpa_page = r.u64();
      const u8 flags = r.u8();
      s.entry.writable = (flags & 1u) != 0;
      s.entry.dirty = (flags & 2u) != 0;
      s.entry.gran = static_cast<PageGran>(r.u8());
      // Slots record their index_ bucket (kept in lockstep by the Tlb), so
      // the probe structure rebuilds exactly without re-hashing.
      t.index_[s.bucket] = static_cast<u32>(i) + 1;
    }
  }

  static void save_ctx(Writer& w, sim::ExecContext& ctx) {
    const auto sec = w.begin_section(kSecCtx);
    if (!ctx.clock.open_buckets_.empty()) busy("open clock attribution scope");
    w.f64(ctx.clock.now_.count());
    for (std::size_t i = 0; i < kEventCount; ++i) {
      w.u64(ctx.counters.get(static_cast<Event>(i)));
    }
    save_tlb(w, ctx.tlb);
    w.end_section(sec);
  }

  static void restore_ctx(Reader& r, sim::ExecContext& ctx) {
    r.expect_section(kSecCtx);
    if (!ctx.clock.open_buckets_.empty()) busy("open clock attribution scope");
    ctx.clock.now_ = VirtDuration{r.f64()};
    ctx.counters.reset();
    for (std::size_t i = 0; i < kEventCount; ++i) {
      ctx.counters.add(static_cast<Event>(i), r.u64());
    }
    restore_tlb(r, ctx.tlb);
  }

  // ---- EPT / SPP ------------------------------------------------------------

  static void save_ept(Writer& w, sim::Ept& ept) {
    w.u64(ept.present_pages_);
    w.u64(ept.huge_present_);
    std::vector<std::tuple<u64, sim::EptEntry, PageGran>> leaves;
    ept.table_.for_each_leaf([&](u64 addr, sim::EptEntry& e, PageGran g) {
      if (e.present) leaves.emplace_back(addr, e, g);
    });
    w.u64(leaves.size());
    for (const auto& [addr, e, g] : leaves) {
      w.u64(addr);
      w.u64(e.hpa_page);
      w.u8(pack_ept_flags(e));
      w.u8(static_cast<u8>(g));
    }
  }

  static void restore_ept(Reader& r, sim::Ept& ept) {
    ept.table_.clear();
    ept.present_pages_ = r.u64();
    ept.huge_present_ = r.u64();
    const u64 n = r.u64();
    for (u64 i = 0; i < n; ++i) {
      const u64 addr = r.u64();
      sim::EptEntry e;
      e.hpa_page = r.u64();
      unpack_ept_flags(e, r.u8());
      const auto g = static_cast<PageGran>(r.u8());
      if (g == PageGran::k4K) {
        ept.table_.ensure(addr) = e;
      } else {
        ept.table_.ensure_huge(addr, g) = e;
      }
    }
  }

  static void save_spp(Writer& w, sim::SppTable& spp) {
    std::vector<std::pair<Gpa, u32>> masks(spp.masks_.begin(), spp.masks_.end());
    std::sort(masks.begin(), masks.end());
    w.u64(masks.size());
    for (const auto& [gpa, mask] : masks) {
      w.u64(gpa);
      w.u32(mask);
    }
  }

  static void restore_spp(Reader& r, sim::SppTable& spp) {
    spp.masks_.clear();
    const u64 n = r.u64();
    for (u64 i = 0; i < n; ++i) {
      const Gpa gpa = r.u64();
      spp.masks_[gpa] = r.u32();
    }
  }

  // ---- notifier registry ----------------------------------------------------
  // Chains hold raw notifier pointers, so only *state* (enable flags and
  // counters) travels; chain membership must already match — which the
  // quiescence rules guarantee (no session consumers, no flush registrants).

  static void save_registry(Writer& w, sim::WriteTrackRegistry& reg) {
    if (!reg.chain(sim::TrackLayer::kPmlDrain).empty()) busy("active PML session");
    if (!reg.flush_chain_.empty()) busy("registered flush notifiers");
    for (std::size_t l = 0; l < sim::kTrackLayerCount; ++l) {
      const auto& chain = reg.chains_[l];
      w.u32(static_cast<u32>(chain.regs.size()));
      w.u64(chain.dispatched);
      for (const auto& entry : chain.regs) {
        w.boolean(entry.enabled);
        w.u64(entry.delivered);
      }
    }
  }

  static void restore_registry(Reader& r, sim::WriteTrackRegistry& reg) {
    if (!reg.chain(sim::TrackLayer::kPmlDrain).empty()) busy("active PML session");
    if (!reg.flush_chain_.empty()) busy("registered flush notifiers");
    for (std::size_t l = 0; l < sim::kTrackLayerCount; ++l) {
      auto& chain = reg.chains_[l];
      if (r.u32() != chain.regs.size()) mismatch("notifier chain length");
      chain.dispatched = r.u64();
      for (auto& entry : chain.regs) {
        entry.enabled = r.boolean();
        entry.delivered = r.u64();
      }
    }
  }

  // ---- rings ---------------------------------------------------------------

  static void save_dirty_ring(Writer& w, const hv::DirtyRing& ring) {
    w.u64(ring.capacity_);
    const u64 head = ring.head_.load(std::memory_order_acquire);
    const u64 tail = ring.tail_.load(std::memory_order_acquire);
    w.u64(head);
    w.u64(tail);
    for (u64 i = head; i != tail; ++i) w.u64(ring.slots_[i & ring.mask_]);
    w.u64(ring.spill_.size());
    for (const u64 v : ring.spill_) w.u64(v);
  }

  static void restore_dirty_ring(Reader& r, hv::DirtyRing& ring) {
    if (r.u64() != ring.capacity_) mismatch("dirty-ring capacity");
    const u64 head = r.u64();
    const u64 tail = r.u64();
    // relaxed-ok: quiescent by contract — no producer or consumer in flight.
    ring.head_.store(head, std::memory_order_relaxed);
    // relaxed-ok: quiescent by contract, as above.
    ring.tail_.store(tail, std::memory_order_relaxed);
    for (u64 i = head; i != tail; ++i) ring.slots_[i & ring.mask_] = r.u64();
    ring.spill_.clear();
    const u64 nspill = r.u64();
    ring.spill_.reserve(nspill);
    for (u64 i = 0; i < nspill; ++i) ring.spill_.push_back(r.u64());
  }

  static void save_ring_buffer(Writer& w, const RingBuffer& rb) {
    w.u64(rb.buf_.size());
    w.u64(rb.head_);
    w.u64(rb.size_);
    w.u64(rb.dropped_);
    for (std::size_t i = 0; i < rb.size_; ++i) {
      w.u64(rb.buf_[(rb.head_ + i) % rb.buf_.size()]);
    }
  }

  static void restore_ring_buffer(Reader& r, RingBuffer& rb) {
    if (r.u64() != rb.buf_.size()) mismatch("ring-buffer capacity");
    rb.head_ = static_cast<std::size_t>(r.u64());
    rb.size_ = static_cast<std::size_t>(r.u64());
    rb.dropped_ = r.u64();
    for (std::size_t i = 0; i < rb.size_; ++i) {
      rb.buf_[(rb.head_ + i) % rb.buf_.size()] = r.u64();
    }
  }

  static void save_u64_vec(Writer& w, const std::vector<u64>& v) {
    w.u64(v.size());
    for (const u64 x : v) w.u64(x);
  }

  static void restore_u64_vec(Reader& r, std::vector<u64>& v) {
    v.clear();
    const u64 n = r.u64();
    v.reserve(n);
    for (u64 i = 0; i < n; ++i) v.push_back(r.u64());
  }

  // ---- per-vCPU hypervisor session state ------------------------------------

  static void save_cpu(Writer& w, hv::Vm::CpuState& cs) {
    sim::Vcpu& v = *cs.vcpu;
    w.u8(static_cast<u8>(v.mode_));
    w.boolean(v.shadow_ != nullptr);
    for (std::size_t f = 0; f < static_cast<std::size_t>(sim::VmcsField::kCount); ++f) {
      // The link pointer is a raw host pointer; presence above canonicalizes it.
      if (static_cast<sim::VmcsField>(f) == sim::VmcsField::kVmcsLinkPointer) continue;
      w.u64(v.vmcs_.read(static_cast<sim::VmcsField>(f)));
    }
    if (v.shadow_ != nullptr) {
      for (std::size_t f = 0; f < static_cast<std::size_t>(sim::VmcsField::kCount); ++f) {
        w.u64(v.shadow_->read(static_cast<sim::VmcsField>(f)));
      }
    }
    w.u8(pack_field_set(v.shadow_readable_));
    w.u8(pack_field_set(v.shadow_writable_));
    save_registry(w, v.track_);
    save_dirty_ring(w, cs.dirty_ring);
    save_ring_buffer(w, cs.spml_ring);
    save_u64_vec(w, cs.spml_interval_log);
    save_u64_vec(w, cs.drained_log);
    w.u64(cs.pml_buffer);
    w.u64(cs.spml_tracked_mem_bytes);
    w.boolean(cs.ring_fault_pending);
  }

  static void restore_cpu(Reader& r, hv::Vm::CpuState& cs) {
    sim::Vcpu& v = *cs.vcpu;
    v.mode_ = static_cast<sim::CpuMode>(r.u8());
    // Shadow presence first: create/destroy touch the link pointer and the
    // shadowing control, which the verbatim field writes below then restore.
    const bool want_shadow = r.boolean();
    if (want_shadow && v.shadow_ == nullptr) v.create_shadow_vmcs();
    if (!want_shadow && v.shadow_ != nullptr) v.destroy_shadow_vmcs();
    for (std::size_t f = 0; f < static_cast<std::size_t>(sim::VmcsField::kCount); ++f) {
      if (static_cast<sim::VmcsField>(f) == sim::VmcsField::kVmcsLinkPointer) continue;
      v.vmcs_.write(static_cast<sim::VmcsField>(f), r.u64());
    }
    if (want_shadow) {
      for (std::size_t f = 0; f < static_cast<std::size_t>(sim::VmcsField::kCount); ++f) {
        v.shadow_->write(static_cast<sim::VmcsField>(f), r.u64());
      }
    }
    unpack_field_set(v.shadow_readable_, r.u8());
    unpack_field_set(v.shadow_writable_, r.u8());
    restore_registry(r, v.track_);
    restore_dirty_ring(r, cs.dirty_ring);
    restore_ring_buffer(r, cs.spml_ring);
    restore_u64_vec(r, cs.spml_interval_log);
    restore_u64_vec(r, cs.drained_log);
    cs.pml_buffer = r.u64();
    cs.spml_tracked_mem_bytes = r.u64();
    cs.ring_fault_pending = r.boolean();
  }

  // ---- one VM ---------------------------------------------------------------

  static void save_vm(Writer& w, hv::Vm& vm) {
    const auto sec = w.begin_section(kSecVm);
    w.u32(vm.id_);
    w.u64(vm.mem_bytes_);
    w.boolean(vm.ept_huge_);
    w.boolean(vm.eager_split_);
    w.boolean(vm.eager_split_active_);
    save_ept(w, vm.ept_);
    save_spp(w, vm.spp_table_);
    w.u32(static_cast<u32>(vm.cpus_.size()));
    for (auto& cs : vm.cpus_) save_cpu(w, *cs);
    w.end_section(sec);
  }

  static void restore_vm(Reader& r, hv::Vm& vm) {
    r.expect_section(kSecVm);
    if (r.u32() != vm.id_) mismatch("VM id");
    if (r.u64() != vm.mem_bytes_) mismatch("VM memory size");
    vm.ept_huge_ = r.boolean();
    vm.eager_split_ = r.boolean();
    vm.eager_split_active_ = r.boolean();
    restore_ept(r, vm.ept_);
    restore_spp(r, vm.spp_table_);
    if (r.u32() != vm.cpus_.size()) mismatch("vCPU count");
    for (auto& cs : vm.cpus_) restore_cpu(r, *cs);
  }

  // ---- guest page tables ----------------------------------------------------

  static void save_gpt(Writer& w, sim::GuestPageTable& pt) {
    w.u8(static_cast<u8>(pt.backend_));
    if (pt.backend_ == sim::TranslationBackend::kSegment) {
      const sim::SegmentTable& st = *pt.segs_;
      w.u64(st.present_pages_);
      w.u64(st.segs_.size());
      for (const sim::Segment& s : st.segs_) {
        w.u64(s.gva_base);
        w.u64(s.gpa_base);
        w.u64(s.pages);
        w.u64(s.pte.gpa_page);
        w.u8(pack_pte_flags(s.pte));
      }
      return;
    }
    w.u64(pt.present_pages_);
    std::vector<std::tuple<u64, sim::Pte, PageGran>> leaves;
    pt.table_.for_each_leaf([&](u64 addr, sim::Pte& e, PageGran g) {
      if (e.present) leaves.emplace_back(addr, e, g);
    });
    w.u64(leaves.size());
    for (const auto& [addr, e, g] : leaves) {
      w.u64(addr);
      w.u64(e.gpa_page);
      w.u8(pack_pte_flags(e));
      w.u8(static_cast<u8>(g));
    }
  }

  static void restore_gpt(Reader& r, sim::GuestPageTable& pt) {
    const auto backend = static_cast<sim::TranslationBackend>(r.u8());
    pt.table_.clear();
    pt.backend_ = backend;
    if (backend == sim::TranslationBackend::kSegment) {
      pt.present_pages_ = 0;
      pt.segs_ = std::make_unique<sim::SegmentTable>();
      sim::SegmentTable& st = *pt.segs_;
      st.present_pages_ = r.u64();
      const u64 n = r.u64();
      st.segs_.reserve(n);
      for (u64 i = 0; i < n; ++i) {
        sim::Segment s;
        s.gva_base = r.u64();
        s.gpa_base = r.u64();
        s.pages = r.u64();
        s.pte.gpa_page = r.u64();
        unpack_pte_flags(s.pte, r.u8());
        st.segs_.push_back(s);
      }
      st.mru_ = 0;
      return;
    }
    pt.segs_.reset();
    pt.present_pages_ = r.u64();
    const u64 n = r.u64();
    for (u64 i = 0; i < n; ++i) {
      const u64 addr = r.u64();
      sim::Pte e;
      e.gpa_page = r.u64();
      unpack_pte_flags(e, r.u8());
      const auto g = static_cast<PageGran>(r.u8());
      if (g == PageGran::k4K) {
        pt.table_.ensure(addr) = e;
      } else {
        pt.table_.ensure_huge(addr, g) = e;
      }
    }
  }

  // ---- guest processes ------------------------------------------------------

  static void save_process(Writer& w, guest::Process& p, sim::GuestPageTable& pt) {
    w.u32(p.pid_);
    w.u32(static_cast<u32>(p.cpu_));
    w.u64(p.cpu_mask_);
    w.u64(p.next_mmap_);
    w.u64(p.mapped_bytes_);
    w.u64(p.truth_seq_);
    w.u64(p.vmas_.size());
    for (const guest::Vma& v : p.vmas_) {
      w.u64(v.start);
      w.u64(v.end);
      w.boolean(v.writable);
      w.boolean(v.data_backed);
      w.u8(static_cast<u8>(v.uffd));
    }
    w.u64(p.truth_.size());
    for (const auto& item : p.truth_) {
      w.u64(item.first);
      w.u64(item.second);
    }
    save_gpt(w, pt);
  }

  static void restore_process(Reader& r, guest::GuestKernel& k) {
    const u32 pid = r.u32();
    guest::GuestKernel::ProcEntry entry;
    entry.proc = std::make_unique<guest::Process>(k, pid);
    entry.pt = std::make_unique<sim::GuestPageTable>();
    guest::Process& p = *entry.proc;
    p.cpu_ = r.u32();
    p.cpu_mask_ = r.u64();
    p.next_mmap_ = r.u64();
    p.mapped_bytes_ = r.u64();
    p.truth_seq_ = r.u64();
    const u64 nvma = r.u64();
    p.vmas_.reserve(nvma);
    for (u64 i = 0; i < nvma; ++i) {
      guest::Vma v;
      v.start = r.u64();
      v.end = r.u64();
      v.writable = r.boolean();
      v.data_backed = r.boolean();
      v.uffd = static_cast<guest::Vma::Uffd>(r.u8());
      p.vmas_.push_back(v);
    }
    p.vma_mru_ = 0;
    const u64 ntruth = r.u64();
    for (u64 i = 0; i < ntruth; ++i) {
      // Re-inserting in stored (= insertion) order reproduces the ledger's
      // iteration order exactly; FlatPageMap's growth is deterministic in
      // the insertion sequence.
      const Gva page = r.u64();
      const u64 seq = r.u64();
      p.truth_.insert_or_assign(page, seq);
    }
    restore_gpt(r, *entry.pt);
    p.pt_ = entry.pt.get();
    k.procs_.push_back(std::move(entry));
  }

  // ---- one guest kernel -----------------------------------------------------

  static void check_kernel_quiescent(guest::GuestKernel& k) {
    if (k.ooh_module_ != nullptr) busy("OoH module loaded");
    if (!k.spp_handlers_.empty()) busy("installed SPP handlers");
    if (!k.uffd_->regs_.empty()) busy("active userfaultfd registrations");
    if (!k.swap_->slots_.empty() || !k.swap_->clock_hand_.empty()) {
      busy("swapped-out pages");
    }
    for (const auto& s : k.scheds_) {
      if (s->in_service_) busy("scheduler mid-service");
      if (s->periodic_) busy("armed periodic scheduler service");
      if (!s->hooks_.empty()) busy("registered scheduler hooks");
    }
  }

  static void save_kernel(Writer& w, guest::GuestKernel& k) {
    const auto sec = w.begin_section(kSecKernel);
    check_kernel_quiescent(k);
    w.u32(k.vm_.id());
    w.u32(k.next_pid_);
    w.u32(static_cast<u32>(k.next_place_cpu_));
    w.u64(k.next_gpa_frame_);
    w.u64(k.spp_violations_);
    save_u64_vec(w, k.gpa_free_list_);
    w.u32(static_cast<u32>(k.scheds_.size()));
    for (const auto& s : k.scheds_) {
      w.f64(s->quantum_.count());
      w.f64(s->next_quantum_.count());
      w.f64(s->period_.count());
      w.f64(s->next_periodic_.count());
      w.u64(s->quantum_switches_);
    }
    w.u32(static_cast<u32>(k.procs_.size()));
    for (auto& e : k.procs_) save_process(w, *e.proc, *e.pt);
    w.end_section(sec);
  }

  static void restore_kernel(Reader& r, guest::GuestKernel& k) {
    r.expect_section(kSecKernel);
    check_kernel_quiescent(k);
    if (r.u32() != k.vm_.id()) mismatch("kernel/VM pairing");
    k.next_pid_ = r.u32();
    k.next_place_cpu_ = r.u32();
    k.next_gpa_frame_ = r.u64();
    k.spp_violations_ = r.u64();
    restore_u64_vec(r, k.gpa_free_list_);
    if (r.u32() != k.scheds_.size()) mismatch("scheduler count");
    for (const auto& s : k.scheds_) {
      s->quantum_ = VirtDuration{r.f64()};
      s->next_quantum_ = VirtDuration{r.f64()};
      s->period_ = VirtDuration{r.f64()};
      s->next_periodic_ = VirtDuration{r.f64()};
      s->quantum_switches_ = r.u64();
    }
    k.procs_.clear();
    const u32 nproc = r.u32();
    for (u32 i = 0; i < nproc; ++i) restore_process(r, k);
  }
};

MachineSnapshot Access::save(sim::Machine& machine, hv::Hypervisor& hypervisor,
                             const std::vector<guest::GuestKernel*>& kernels) {
  Writer w;
  MachineSnapshot snap;
  {
    const auto sec = w.begin_section(kSecMachine);
    w.u32(static_cast<u32>(machine.context_count()));
    w.u32(static_cast<u32>(hypervisor.vm_count()));
    w.u32(static_cast<u32>(kernels.size()));
    w.end_section(sec);
  }
  Impl::save_pmem(w, machine.pmem, snap.frames);
  for (std::size_t i = 0; i < machine.context_count(); ++i) {
    Impl::save_ctx(w, machine.context(i));
  }
  for (std::size_t i = 0; i < hypervisor.vm_count(); ++i) {
    Impl::save_vm(w, hypervisor.vm(i));
  }
  for (guest::GuestKernel* k : kernels) Impl::save_kernel(w, *k);
  snap.bytes = std::move(w).take();
  return snap;
}

void Access::restore(const MachineSnapshot& snap, sim::Machine& machine,
                     hv::Hypervisor& hypervisor,
                     const std::vector<guest::GuestKernel*>& kernels) {
  Reader r(snap.bytes);
  r.expect_section(kSecMachine);
  if (r.u32() != machine.context_count()) mismatch("execution context count");
  if (r.u32() != hypervisor.vm_count()) mismatch("VM count");
  if (r.u32() != kernels.size()) mismatch("guest kernel count");
  Impl::restore_pmem(r, snap, machine.pmem);
  for (std::size_t i = 0; i < machine.context_count(); ++i) {
    Impl::restore_ctx(r, machine.context(i));
  }
  for (std::size_t i = 0; i < hypervisor.vm_count(); ++i) {
    Impl::restore_vm(r, hypervisor.vm(i));
  }
  for (guest::GuestKernel* k : kernels) Impl::restore_kernel(r, *k);
  if (!r.at_end()) mismatch("trailing bytes after the last section");
}

}  // namespace ooh::snapshot
