file(REMOVE_RECURSE
  "../bench/fig7_criu_mw"
  "../bench/fig7_criu_mw.pdb"
  "CMakeFiles/fig7_criu_mw.dir/fig7_criu_mw.cpp.o"
  "CMakeFiles/fig7_criu_mw.dir/fig7_criu_mw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_criu_mw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
