// Working-set-size / dirty-rate estimator — the sensing half of the
// adaptive tracking control plane (ROADMAP item 3).
//
// Intel PML doubles as a WSS estimator (PAPERS.md: "Intel Page Modification
// Logging for virtual machine working set estimation"): the same dirty-page
// stream every tracker backend harvests is, windowed and smoothed, a
// per-process working-set signal. The estimator consumes that stream from
// two feeds:
//
//   * the page-track notifier chain (kGuestPtDirty + kEptDirty): intra-
//     window touches, delivered per write-transition while the guest runs;
//   * the authoritative per-interval ingest (note_interval): the dedup'd
//     page set a DirtyTracker::collect() or Hypervisor::harvest_wss pass
//     returned, folded in at the window boundary.
//
// Backends that never reset guest-PT dirty flags (wp, /proc between
// intervals) starve the chain feed, so the interval ingest — not the chain
// — closes each window; the chain only enriches the window set. Windows are
// measured in *virtual* time and every update charges explicit virtual time
// (CostModel::wss_estimator_update_ns), so an adaptive run's timeline is
// seed-deterministic and honest about the estimator's own cost.
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "sim/page_track.hpp"

namespace ooh::sim {
class ExecContext;
}

namespace ooh::lib {

/// Smoothed working-set signal for one process (or, under pid 0, one VM).
struct WssSignal {
  double wss_pages = 0.0;     ///< EWMA of unique pages per window.
  double dirty_rate = 0.0;    ///< EWMA of pages per virtual millisecond.
  u64 last_window_pages = 0;  ///< unique pages in the last closed window.
  u64 windows = 0;            ///< windows closed so far.
};

class WssEstimator final : public sim::PageTrackNotifier {
 public:
  /// `alpha` weights the newest window in the EWMA (0 < alpha <= 1).
  explicit WssEstimator(double alpha = 0.5) : alpha_(alpha) {}

  // ---- sim::PageTrackNotifier (kGuestPtDirty + kEptDirty, logging) --------
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;
  void on_track_flush(u32 pid, Gva start, Gva end) override;

  /// Observe chain events for `pid` (events for other pids are ignored).
  void watch(u32 pid) { watched_.insert(pid); }
  void unwatch(u32 pid) { watched_.erase(pid); }

  /// Open `pid`'s first window at virtual time `now` (tracking started).
  /// Without this anchor the first note_interval has no window span and
  /// assumes a 1 ms window.
  void begin_window(u32 pid, VirtDuration now);

  /// Close `pid`'s window at virtual time `now`: fold the interval's
  /// authoritative page set into the window, update the EWMAs, and start
  /// the next window. Charges wss_estimator_update_ns per folded page.
  void note_interval(u32 pid, std::span<const Gva> pages, VirtDuration now,
                     sim::ExecContext& ctx);

  /// Hypervisor-side feed: a Hypervisor::harvest_wss sample closes the
  /// VM-wide (pid 0) window. GPAs and GVAs never mix within one slot: the
  /// VM-wide signal is kept per-GPA, per-process signals per-GVA.
  void ingest_sample(std::span<const Gpa> gpas, VirtDuration now,
                     sim::ExecContext& ctx);

  /// The smoothed signal for `pid` (zero-valued before the first window).
  [[nodiscard]] const WssSignal& signal(u32 pid = 0) const noexcept;

 private:
  struct ProcState {
    std::unordered_set<u64> window;  ///< unique pages in the open window.
    VirtDuration window_start{0};
    bool started = false;  ///< window_start captured at the first feed.
    WssSignal sig;
  };

  void close_window(ProcState& st, VirtDuration now);

  double alpha_;
  std::unordered_set<u32> watched_;
  std::unordered_map<u32, ProcState> procs_;
};

}  // namespace ooh::lib
