// Insertion-ordered open-addressed map from a page-aligned address to a
// u64 payload.
//
// Built for the guest process's "truth" ledger, which sits on the hot side
// of every simulated store: one insert-or-assign per write. A node-based
// unordered_map pays an allocation plus pointer chases per first touch of a
// page; this map keeps items in a dense vector (insertion order, swap-with-
// last erase) addressed by a power-of-two linear-probe index, so the
// steady-state re-dirty path is one hash and one probe with no allocation.
// Fully deterministic: no randomized hashing, growth points depend only on
// the insertion sequence.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "base/types.hpp"

namespace ooh {

class FlatPageMap {
 public:
  struct Item {
    Gva first = 0;   ///< page address (the key)
    u64 second = 0;  ///< payload (e.g. last-write sequence number)
  };
  using const_iterator = const Item*;

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] const_iterator begin() const noexcept { return items_.data(); }
  [[nodiscard]] const_iterator end() const noexcept {
    return items_.data() + items_.size();
  }

  [[nodiscard]] bool contains(Gva page) const noexcept {
    return !index_.empty() && index_[locate(page)] != kEmpty;
  }

  void insert_or_assign(Gva page, u64 value) {
    if (index_.empty() || (items_.size() + 1) * 4 > index_.size() * 3) grow();
    const std::size_t b = locate(page);
    if (index_[b] != kEmpty) {
      items_[index_[b] - 1].second = value;
      return;
    }
    items_.push_back({page, value});
    index_[b] = static_cast<u32>(items_.size());
  }

  void erase(Gva page) noexcept {
    if (index_.empty()) return;
    const std::size_t b = locate(page);
    if (index_[b] == kEmpty) return;
    const std::size_t pos = index_[b] - 1;
    erase_bucket(b);
    const std::size_t last = items_.size() - 1;
    if (pos != last) {
      items_[pos] = items_[last];
      index_[locate(items_[pos].first)] = static_cast<u32>(pos) + 1;
    }
    items_.pop_back();
  }

  void clear() noexcept {
    items_.clear();
    std::fill(index_.begin(), index_.end(), kEmpty);
  }

 private:
  static constexpr u32 kEmpty = 0;  ///< index_ stores item pos + 1.

  [[nodiscard]] static u64 hash(Gva page) noexcept {
    const u64 h = page_index(page) * 0x9E3779B97F4A7C15ULL;
    return h ^ (h >> 29);
  }

  /// Bucket holding `page`, or the first empty bucket of its probe chain.
  [[nodiscard]] std::size_t locate(Gva page) const noexcept {
    const std::size_t mask = index_.size() - 1;
    std::size_t b = static_cast<std::size_t>(hash(page)) & mask;
    while (index_[b] != kEmpty && items_[index_[b] - 1].first != page) {
      b = (b + 1) & mask;
    }
    return b;
  }

  /// Backward-shift deletion of bucket `b` (no tombstones).
  void erase_bucket(std::size_t b) noexcept {
    const std::size_t mask = index_.size() - 1;
    std::size_t hole = b;
    std::size_t j = (b + 1) & mask;
    while (index_[j] != kEmpty) {
      const std::size_t home =
          static_cast<std::size_t>(hash(items_[index_[j] - 1].first)) & mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        index_[hole] = index_[j];
        hole = j;
      }
      j = (j + 1) & mask;
    }
    index_[hole] = kEmpty;
  }

  void grow() {
    const std::size_t n = std::max<std::size_t>(64, index_.size() * 2);
    index_.assign(n, kEmpty);
    const std::size_t mask = n - 1;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      std::size_t b = static_cast<std::size_t>(hash(items_[i].first)) & mask;
      while (index_[b] != kEmpty) b = (b + 1) & mask;
      index_[b] = static_cast<u32>(i) + 1;
    }
  }

  std::vector<Item> items_;  ///< dense, insertion-ordered live items.
  std::vector<u32> index_;   ///< open-addressed page -> item pos + 1.
};

}  // namespace ooh
