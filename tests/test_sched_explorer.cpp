// Schedule-explorer tests: the real DirtyRing/Ept scenarios must come out
// clean across every explored interleaving, and — the part that proves the
// checker itself works — seeded concurrency bugs must be caught by ID:
//
//   * an MPSC misuse of the SPSC ring (two producers)  -> SCHED-LOST
//   * a ring publishing its tail with a relaxed store  -> SCHED-RACE
//   * an ABBA lock cycle                               -> SCHED-DEADLOCK
//   * teardown that frees the ring before the drainer
//     is provably done                                 -> SCHED-RACE (freed)
//
// Each finding must carry a minimized schedule that replays to the same
// finding. The exploration machinery only exists under -DOOH_SCHED_CHECK=ON
// (the sched-check CI job); in ordinary builds the scenarios still run once
// sequentially and the mutation tests skip.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "base/sync.hpp"
#include "base/types.hpp"
#include "hypervisor/dirty_ring.hpp"
#include "sim/check/sched_explorer.hpp"

namespace ooh {
namespace {

namespace sched = check::sched;

// ---- the real implementation is clean ---------------------------------------

TEST(SchedExplorer, BuiltinScenariosExistAndRunBuiltinRejectsUnknownNames) {
  const auto& scenarios = sched::builtin_scenarios();
  ASSERT_EQ(scenarios.size(), 6u);
  EXPECT_EQ(scenarios[0].name, "ring_push_pop");
  EXPECT_EQ(scenarios[5].name, "snapshot_during_epochs");
  EXPECT_THROW((void)sched::run_builtin("no_such_scenario"),
               std::invalid_argument);
}

TEST(SchedExplorer, RingPushPopCleanAcrossAllBoundedInterleavings) {
  const sched::Result r = sched::run_builtin("ring_push_pop");
  EXPECT_EQ(r.instrumented, sched::available());
  for (const sched::Finding& f : r.findings) {
    ADD_FAILURE() << f.id << ": " << f.message << " schedule "
                  << sched::format_schedule(f.schedule);
  }
  if (!sched::available()) return;  // sequential fallback: one run, no claims
  // The DFS must have exhausted the schedule space within the preemption
  // bound — a capped run proves nothing.
  EXPECT_FALSE(r.exhausted_cap);
  EXPECT_GT(r.interleavings, 50u);
  EXPECT_GT(r.decision_points, 1000u);
}

TEST(SchedExplorer, AllBuiltinScenariosComeOutClean) {
  for (const sched::NamedScenario& s : sched::builtin_scenarios()) {
    const sched::Result r = sched::explore(s.name, s.body, s.opts);
    for (const sched::Finding& f : r.findings) {
      ADD_FAILURE() << s.name << ": " << f.id << ": " << f.message
                    << " schedule " << sched::format_schedule(f.schedule);
    }
  }
}

#ifdef OOH_SCHED_CHECK

// ---- seeded mutation: lost update -------------------------------------------

// Two producers on one SPSC ring (an MPSC misuse): both read the same tail,
// write the same slot and publish tail+1 — one entry vanishes in the
// interleavings where their pushes overlap.
void mutation_two_producers(sched::ScenarioRun& run) {
  auto ring = std::make_shared<hv::DirtyRing>(8);
  auto popped = std::make_shared<std::vector<u64>>();
  run.threads({
      [ring] {
        if (!ring->try_push(1 * kPageSize)) ring->spill(1 * kPageSize);
        if (!ring->try_push(2 * kPageSize)) ring->spill(2 * kPageSize);
      },
      [ring] {
        if (!ring->try_push(3 * kPageSize)) ring->spill(3 * kPageSize);
        if (!ring->try_push(4 * kPageSize)) ring->spill(4 * kPageSize);
      },
      [ring, popped] {
        u64 v = 0;
        for (int i = 0; i < 6; ++i) {
          if (ring->try_pop(v)) popped->push_back(v);
        }
      },
  });
  std::size_t recovered = popped->size() + ring->pending() + ring->spill_size();
  run.expect(recovered == 4, "SCHED-LOST",
             "MPSC misuse of the SPSC ring lost an entry");
}

TEST(SchedExplorerMutation, TwoProducerMisuseIsFlaggedAsLostById) {
  sched::Options opts;
  opts.preemption_bound = 2;
  opts.random_runs = 200;
  const sched::Result r = sched::explore("two_producers",
                                         mutation_two_producers, opts);
  const sched::Finding* lost = r.find("SCHED-LOST");
  ASSERT_NE(lost, nullptr) << "explorer missed the seeded lost update";
  ASSERT_FALSE(lost->schedule.empty());
  // The minimized schedule must replay to the same finding.
  if (lost->seed == 0) {
    const sched::Result again =
        sched::replay(mutation_two_producers, lost->schedule);
    EXPECT_NE(again.find("SCHED-LOST"), nullptr)
        << "minimized schedule " << sched::format_schedule(lost->schedule)
        << " does not reproduce";
  }
  // The concurrent same-slot plain writes are a race in their own right.
  EXPECT_NE(r.find("SCHED-RACE"), nullptr);
}

// ---- seeded mutation: missing release ---------------------------------------

// The DirtyRing with its publication edge deliberately weakened: the tail
// store is relaxed, so the consumer's acquire pairs with nothing and the
// slot read is unordered against the slot write. The explorer must flag the
// race even though its own execution is serialized — the vector clocks
// track the *declared* orders, not luck.
class BuggyRelaxedRing {
 public:
  explicit BuggyRelaxedRing(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {}

  bool try_push(u64 value) noexcept {
    // relaxed-ok: tail_ is producer-owned (this mirrors DirtyRing).
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    OOH_SYNC_PLAIN_WRITE(&slots_[tail & mask_]);
    slots_[tail & mask_] = value;
    // SEEDED BUG: publication needs release; relaxed severs the edge.
    // relaxed-ok: this is the deliberate mutation under test.
    tail_.store(tail + 1, std::memory_order_relaxed);
    return true;
  }

  bool try_pop(u64& out) noexcept {
    // relaxed-ok: head_ is consumer-owned (this mirrors DirtyRing).
    const u64 head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    OOH_SYNC_PLAIN_READ(&slots_[head & mask_]);
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::size_t mask_;
  std::vector<u64> slots_;
  sync::Atomic<u64> head_{0};
  sync::Atomic<u64> tail_{0};
};

void mutation_missing_release(sched::ScenarioRun& run) {
  auto ring = std::make_shared<BuggyRelaxedRing>(4);
  run.threads({
      [ring] {
        (void)ring->try_push(1 * kPageSize);
        (void)ring->try_push(2 * kPageSize);
      },
      [ring] {
        u64 v = 0;
        for (int i = 0; i < 4; ++i) (void)ring->try_pop(v);
      },
  });
}

TEST(SchedExplorerMutation, MissingReleaseOnTailIsFlaggedAsRaceById) {
  sched::Options opts;
  opts.preemption_bound = 2;
  opts.random_runs = 100;
  const sched::Result r = sched::explore("missing_release",
                                         mutation_missing_release, opts);
  const sched::Finding* race = r.find("SCHED-RACE");
  ASSERT_NE(race, nullptr) << "explorer missed the seeded missing release";
  // The declared-order race fires even on the nonpreemptive baseline (the
  // producer's relaxed store severs the edge no matter the schedule), so
  // the minimized schedule may legitimately be empty — replaying it (empty
  // = default schedule) must still reproduce the finding.
  if (race->seed == 0) {
    const sched::Result again =
        sched::replay(mutation_missing_release, race->schedule);
    EXPECT_NE(again.find("SCHED-RACE"), nullptr)
        << "minimized schedule " << sched::format_schedule(race->schedule)
        << " does not reproduce";
  }
}

// The twin control: the very same scenario over the real DirtyRing (correct
// release/acquire pairs) explores clean — proving the race above comes from
// the weakened ordering, not from the checker being trigger-happy.
void control_correct_release(sched::ScenarioRun& run) {
  auto ring = std::make_shared<hv::DirtyRing>(4);
  run.threads({
      [ring] {
        (void)ring->try_push(1 * kPageSize);
        (void)ring->try_push(2 * kPageSize);
      },
      [ring] {
        u64 v = 0;
        for (int i = 0; i < 4; ++i) (void)ring->try_pop(v);
      },
  });
}

TEST(SchedExplorerMutation, CorrectReleasePairIsNotFlagged) {
  sched::Options opts;
  opts.preemption_bound = 2;
  opts.random_runs = 100;
  const sched::Result r = sched::explore("correct_release",
                                         control_correct_release, opts);
  for (const sched::Finding& f : r.findings) {
    ADD_FAILURE() << f.id << ": " << f.message;
  }
}

// ---- seeded mutation: ABBA deadlock -----------------------------------------

void mutation_abba_deadlock(sched::ScenarioRun& run) {
  struct Shared {
    sync::Mutex a;
    sync::Mutex b;
  };
  auto sh = std::make_shared<Shared>();
  run.threads({
      [sh] {
        sh->a.lock();
        sh->b.lock();
        sh->b.unlock();
        sh->a.unlock();
      },
      [sh] {
        sh->b.lock();
        sh->a.lock();
        sh->a.unlock();
        sh->b.unlock();
      },
  });
}

TEST(SchedExplorerMutation, AbbaLockCycleIsFlaggedAsDeadlockById) {
  sched::Options opts;
  opts.preemption_bound = 2;
  const sched::Result r = sched::explore("abba", mutation_abba_deadlock, opts);
  const sched::Finding* dl = r.find("SCHED-DEADLOCK");
  ASSERT_NE(dl, nullptr) << "explorer missed the ABBA cycle";
  ASSERT_FALSE(dl->schedule.empty());
  if (dl->seed == 0) {
    const sched::Result again =
        sched::replay(mutation_abba_deadlock, dl->schedule);
    EXPECT_NE(again.find("SCHED-DEADLOCK"), nullptr);
  }
}

// ---- seeded mutation: teardown frees the ring under the drainer -------------

// The builtin mid_drain_teardown joins the drainer (drainer_done edge)
// before freeing. This mutation waits only for the *producer*, so the free
// is unordered against the drainer's pops — the explorer must flag the
// freed-memory access in the interleavings where the free lands mid-drain.
void mutation_early_teardown(sched::ScenarioRun& run) {
  struct Shared {
    std::unique_ptr<hv::DirtyRing> ring = std::make_unique<hv::DirtyRing>(8);
    sync::Atomic<bool> producer_done{false};
    sync::Atomic<bool> drainer_done{false};
  };
  auto sh = std::make_shared<Shared>();
  run.threads({
      [sh] {
        for (u64 v = 1; v <= 3; ++v) {
          if (!sh->ring->try_push(v * kPageSize)) sh->ring->spill(v * kPageSize);
        }
        sh->producer_done.store(true, std::memory_order_release);
      },
      [sh] {
        u64 v = 0;
        for (int i = 0; i < 5; ++i) (void)sh->ring->try_pop(v);
        sh->drainer_done.store(true, std::memory_order_release);
      },
      [sh] {
        // SEEDED BUG: joins the producer, not the drainer.
        sched::await([&] {
          return sh->producer_done.load(std::memory_order_acquire);
        });
        sched::annotate_free(sh->ring.get(), sizeof(hv::DirtyRing));
      },
  });
}

TEST(SchedExplorerMutation, TeardownBeforeDrainerJoinIsFlaggedAsRaceById) {
  sched::Options opts;
  opts.preemption_bound = 2;
  opts.random_runs = 200;
  const sched::Result r = sched::explore("early_teardown",
                                         mutation_early_teardown, opts);
  const sched::Finding* race = r.find("SCHED-RACE");
  ASSERT_NE(race, nullptr) << "explorer missed the early free";
  ASSERT_FALSE(race->schedule.empty());
  if (race->seed == 0) {
    const sched::Result again =
        sched::replay(mutation_early_teardown, race->schedule);
    EXPECT_NE(again.find("SCHED-RACE"), nullptr);
  }
}

// ---- replay and formatting --------------------------------------------------

TEST(SchedExplorer, FormatScheduleCompressesRuns) {
  EXPECT_EQ(sched::format_schedule({0, 0, 0, 1, 0, 0}), "T0x3 T1 T0x2");
  EXPECT_EQ(sched::format_schedule({}), "");
}

#else  // !OOH_SCHED_CHECK

TEST(SchedExplorerMutation, RequiresInstrumentedBuild) {
  GTEST_SKIP() << "mutation self-tests need -DOOH_SCHED_CHECK=ON "
                  "(the sched-check CI job)";
}

#endif  // OOH_SCHED_CHECK

}  // namespace
}  // namespace ooh
