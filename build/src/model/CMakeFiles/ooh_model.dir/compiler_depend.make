# Empty compiler generated dependencies file for ooh_model.
# This may be replaced when dependencies are built.
