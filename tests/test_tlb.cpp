// Unit tests for the open-addressed array TLB (src/sim/tlb.{hpp,cpp}).
//
// The TLB's contract has two halves: the *semantic* one (ASID-tagged
// lookup/insert/invalidate/flush, capacity bound) and the *determinism* one
// (victim selection is a fixed pseudo-random sequence, so two instances fed
// the same operation stream always cache the same set — this is what keeps
// every virtual-time output bit-identical across the map -> array rewrite).
#include <gtest/gtest.h>

#include <vector>

#include "base/types.hpp"
#include "sim/tlb.hpp"

namespace ooh::sim {
namespace {

[[nodiscard]] TlbEntry entry_for(u64 tag) {
  TlbEntry e;
  e.gpa_page = tag << kPageShift;
  e.hpa_page = (tag + 1) << kPageShift;
  e.writable = (tag % 2) == 0;
  e.dirty = (tag % 3) == 0;
  return e;
}

TEST(Tlb, MissThenHitRoundTrip) {
  Tlb tlb;
  EXPECT_EQ(tlb.lookup(1, 0x1000), nullptr);

  tlb.insert(1, 0x1000, entry_for(7));
  TlbEntry* e = tlb.lookup(1, 0x1000);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->gpa_page, u64{7} << kPageShift);
  EXPECT_EQ(e->hpa_page, u64{8} << kPageShift);
  EXPECT_EQ(tlb.size(), 1u);

  // Same page, different ASID: a miss (entries are PID-tagged).
  EXPECT_EQ(tlb.lookup(2, 0x1000), nullptr);
}

TEST(Tlb, InPlaceRefreshKeepsSizeAndGeneration) {
  Tlb tlb;
  tlb.insert(3, 0x2000, entry_for(1));
  const u64 gen = tlb.generation();

  // Re-inserting an existing (pid, page) refreshes the payload in place:
  // no structural change, so memoised entry pointers stay valid and the
  // generation must not move.
  tlb.insert(3, 0x2000, entry_for(9));
  EXPECT_EQ(tlb.size(), 1u);
  EXPECT_EQ(tlb.generation(), gen);
  TlbEntry* e = tlb.lookup(3, 0x2000);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->gpa_page, u64{9} << kPageShift);
}

TEST(Tlb, StructuralMutationsBumpGeneration) {
  Tlb tlb;
  const u64 g0 = tlb.generation();
  tlb.insert(1, 0x1000, entry_for(1));
  const u64 g1 = tlb.generation();
  EXPECT_GT(g1, g0);
  tlb.invalidate_page(1, 0x1000);
  const u64 g2 = tlb.generation();
  EXPECT_GT(g2, g1);
  tlb.insert(1, 0x1000, entry_for(1));
  tlb.flush_all();
  EXPECT_GT(tlb.generation(), g2);
}

TEST(Tlb, InvalidatePageRemovesOnlyThatEntry) {
  Tlb tlb;
  tlb.insert(1, 0x1000, entry_for(1));
  tlb.insert(1, 0x2000, entry_for(2));
  tlb.insert(2, 0x1000, entry_for(3));

  tlb.invalidate_page(1, 0x1000);
  EXPECT_EQ(tlb.lookup(1, 0x1000), nullptr);
  EXPECT_NE(tlb.lookup(1, 0x2000), nullptr);
  EXPECT_NE(tlb.lookup(2, 0x1000), nullptr);
  EXPECT_EQ(tlb.size(), 2u);

  // Invalidating an absent page is a no-op.
  tlb.invalidate_page(1, 0x1000);
  EXPECT_EQ(tlb.size(), 2u);
}

TEST(Tlb, FlushPidIsAsidScoped) {
  Tlb tlb;
  for (u64 i = 0; i < 16; ++i) tlb.insert(1, i * kPageSize, entry_for(i));
  for (u64 i = 0; i < 8; ++i) tlb.insert(2, i * kPageSize, entry_for(i));

  tlb.flush_pid(1);
  EXPECT_EQ(tlb.size(), 8u);
  for (u64 i = 0; i < 16; ++i) EXPECT_EQ(tlb.lookup(1, i * kPageSize), nullptr);
  for (u64 i = 0; i < 8; ++i) EXPECT_NE(tlb.lookup(2, i * kPageSize), nullptr);
}

TEST(Tlb, FlushAllEmptiesAndStaysUsable) {
  Tlb tlb;
  for (u64 i = 0; i < 100; ++i) tlb.insert(1, i * kPageSize, entry_for(i));
  tlb.flush_all();
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_EQ(tlb.lookup(1, 0), nullptr);

  tlb.insert(1, 0x5000, entry_for(5));
  EXPECT_NE(tlb.lookup(1, 0x5000), nullptr);
  EXPECT_EQ(tlb.size(), 1u);
}

TEST(Tlb, CapacityBoundHoldsUnderOverflow) {
  Tlb tlb(64);
  for (u64 i = 0; i < 1000; ++i) {
    tlb.insert(1, i * kPageSize, entry_for(i));
    EXPECT_LE(tlb.size(), tlb.capacity());
  }
  EXPECT_EQ(tlb.size(), tlb.capacity());

  // Exactly capacity entries survive, all of them ones we inserted.
  u64 live = 0;
  tlb.for_each([&](u32 pid, Gva gva_page, const TlbEntry& e) {
    EXPECT_EQ(pid, 1u);
    const u64 i = gva_page / kPageSize;
    EXPECT_LT(i, 1000u);
    EXPECT_EQ(e.gpa_page, entry_for(i).gpa_page);
    ++live;
  });
  EXPECT_EQ(live, tlb.capacity());
}

TEST(Tlb, EvictionSequenceIsDeterministic) {
  // Two instances fed the identical operation stream must evict identical
  // victims — the pseudo-random victim sequence is part of the repro
  // contract (it feeds refill walks and therefore virtual time).
  Tlb a(32);
  Tlb b(32);
  for (u64 i = 0; i < 500; ++i) {
    const u32 pid = static_cast<u32>(1 + i % 3);
    const Gva page = (i * 7 % 211) * kPageSize;
    a.insert(pid, page, entry_for(i));
    b.insert(pid, page, entry_for(i));
  }
  ASSERT_EQ(a.size(), b.size());
  std::vector<std::pair<u32, Gva>> in_a;
  a.for_each([&](u32 pid, Gva gva, const TlbEntry&) { in_a.emplace_back(pid, gva); });
  std::size_t i = 0;
  b.for_each([&](u32 pid, Gva gva, const TlbEntry&) {
    ASSERT_LT(i, in_a.size());
    EXPECT_EQ(in_a[i].first, pid);
    EXPECT_EQ(in_a[i].second, gva);
    ++i;
  });
}

TEST(Tlb, WidePidsDoNotAlias) {
  // The pre-PR4 packed key (pid << 40 | page index) wrapped at pid 2^24:
  // pid and pid + 2^24 collided, as did pid 2^24 and pid 0. Full-width
  // storage must keep all of these distinct.
  Tlb tlb;
  const u32 lo = 5;
  const u32 hi = lo + (u32{1} << 24);
  const Gva page = 0x3000;

  tlb.insert(lo, page, entry_for(1));
  tlb.insert(hi, page, entry_for(2));
  tlb.insert(u32{1} << 24, page, entry_for(3));

  EXPECT_EQ(tlb.size(), 3u);
  ASSERT_NE(tlb.lookup(lo, page), nullptr);
  ASSERT_NE(tlb.lookup(hi, page), nullptr);
  ASSERT_NE(tlb.lookup(u32{1} << 24, page), nullptr);
  EXPECT_EQ(tlb.lookup(lo, page)->gpa_page, entry_for(1).gpa_page);
  EXPECT_EQ(tlb.lookup(hi, page)->gpa_page, entry_for(2).gpa_page);
  EXPECT_EQ(tlb.lookup(u32{1} << 24, page)->gpa_page, entry_for(3).gpa_page);
  EXPECT_EQ(tlb.lookup(0, page), nullptr);

  tlb.flush_pid(hi);
  EXPECT_NE(tlb.lookup(lo, page), nullptr);
  EXPECT_EQ(tlb.lookup(hi, page), nullptr);
}

TEST(Tlb, ProbeChainSurvivesInterleavedEviction) {
  // Stress the backward-shift deletion: interleave inserts and targeted
  // invalidations at small capacity so probe chains wrap and compact, then
  // verify every surviving key still resolves.
  Tlb tlb(16);
  for (u64 round = 0; round < 50; ++round) {
    for (u64 i = 0; i < 8; ++i) {
      tlb.insert(static_cast<u32>(i % 2), (round * 8 + i) * kPageSize,
                 entry_for(round * 8 + i));
    }
    tlb.invalidate_page(static_cast<u32>(round % 2), (round * 8) * kPageSize);
    std::vector<std::pair<u32, Gva>> live;
    tlb.for_each([&](u32 pid, Gva gva, const TlbEntry&) { live.emplace_back(pid, gva); });
    EXPECT_LE(live.size(), tlb.capacity());
    for (const auto& [pid, gva] : live) {
      EXPECT_NE(tlb.lookup(pid, gva), nullptr) << "pid=" << pid << " gva=" << gva;
    }
  }
}

}  // namespace
}  // namespace ooh::sim
