// OoH kernel-module tests: per-process multiplexing via schedule hooks
// (challenge C2), SPML's hypercall + shared-ring path, EPML's vmwrite +
// guest-buffer + self-IPI path, per-process ring isolation (§V), overflow
// accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "guest/kernel.hpp"
#include "guest/ooh_module.hpp"
#include "hypervisor/hypervisor.hpp"

namespace ooh::guest {
namespace {

class OohModuleTest : public ::testing::Test {
 protected:
  OohModuleTest()
      : machine_(512 * kMiB, CostModel::unit()),
        hv_(machine_),
        vm_(hv_.create_vm(256 * kMiB)),
        kernel_(hv_, vm_) {}

  /// Touch `pages` pages of `proc` under scheduling (hooks fire).
  void run_writes(Process& proc, Gva base, u64 pages) {
    Scheduler& sched = kernel_.scheduler();
    sched.enter_process(proc.pid());
    for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
    sched.exit_process(proc.pid());
  }

  sim::Machine machine_;
  hv::Hypervisor hv_;
  hv::Vm& vm_;
  GuestKernel kernel_;
};

TEST_F(OohModuleTest, LoadUnloadLifecycle) {
  EXPECT_EQ(kernel_.ooh_module(), nullptr);
  OohModule& mod = kernel_.load_ooh_module(OohMode::kSpml);
  EXPECT_EQ(mod.mode(), OohMode::kSpml);
  EXPECT_THROW((void)kernel_.load_ooh_module(OohMode::kEpml), std::logic_error);
  kernel_.unload_ooh_module();
  EXPECT_EQ(kernel_.ooh_module(), nullptr);
  kernel_.load_ooh_module(OohMode::kEpml);
}

TEST_F(OohModuleTest, SpmlCollectsGpasForTrackedProcessOnly) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kSpml);
  Process& tracked = kernel_.create_process();
  Process& other = kernel_.create_process();
  const Gva tb = tracked.mmap(8 * kPageSize);
  const Gva ob = other.mmap(8 * kPageSize);

  mod.track(tracked);
  run_writes(tracked, tb, 8);
  run_writes(other, ob, 8);  // not tracked: logging disabled while it runs

  const std::vector<u64> got = mod.fetch(tracked);
  EXPECT_EQ(got.size(), 8u);
  // Entries are GPAs of the tracked process's pages.
  std::vector<u64> expect;
  kernel_.page_table(tracked).for_each_present(
      [&](Gva, sim::Pte& pte) { expect.push_back(pte.gpa_page); });
  std::vector<u64> sorted_got = got;
  std::sort(sorted_got.begin(), sorted_got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted_got, expect);
  EXPECT_EQ(mod.fetch(tracked).size(), 0u) << "fetch drains";
  mod.untrack(tracked);
}

TEST_F(OohModuleTest, EpmlCollectsGvasDirectly) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  const Gva base = p.mmap(8 * kPageSize);
  mod.track(p);
  run_writes(p, base, 8);
  std::vector<u64> got = mod.fetch(p);
  std::sort(got.begin(), got.end());
  std::vector<u64> expect;
  for (u64 i = 0; i < 8; ++i) expect.push_back(base + i * kPageSize);
  EXPECT_EQ(got, expect) << "EPML logs guest *virtual* addresses";
  mod.untrack(p);
}

TEST_F(OohModuleTest, EpmlSelfIpiDrainsOnBufferFull) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  const u64 pages = 1200;  // > 2 buffers of 512
  const Gva base = p.mmap(pages * kPageSize);
  mod.track(p);
  run_writes(p, base, pages);
  EXPECT_GE(vm_.ctx().counters.get(Event::kSelfIpi), 2u);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kVmExitPmlFull), 0u)
      << "EPML never exits for its guest-level buffer";
  EXPECT_EQ(mod.fetch(p).size(), pages);
  mod.untrack(p);
}

TEST_F(OohModuleTest, NestedBufferFullDuringDrainIsDeferredNotReentered) {
  // Reentrancy regression: a self-IPI raised while the drain handler runs
  // (writes landing in the interrupt window) used to re-enter the drain,
  // re-copying slots and double-resetting the index. The fix defers the
  // nested IPI and redelivers it once the index reset is done.
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  const u64 pages = kPmlBufferEntries + 8;
  const Gva base = p.mmap(pages * kPageSize);
  mod.track(p);

  // While the full-buffer drain is mid-flight (slots copied, index not yet
  // reset), dirty three more pages. The buffer is still wrapped, so the
  // hardware posts nested self-IPIs; the handler must defer them instead of
  // starting a nested drain, and the writes are accounted as lost entries.
  mod.set_mid_drain_hook([&] {
    for (u64 i = 0; i < 3; ++i) {
      p.touch_write(base + (kPmlBufferEntries + i) * kPageSize);
    }
  });
  run_writes(p, base, kPmlBufferEntries);  // 512th write raises the IPI

  EXPECT_EQ(vm_.ctx().counters.get(Event::kSelfIpi), 4u)
      << "1 full-buffer IPI + 3 nested (deferred) IPIs";
  EXPECT_EQ(vm_.ctx().counters.get(Event::kEpmlEntryLost), 3u)
      << "interrupt-window writes against a wrapped buffer are lost, visibly";
  EXPECT_EQ(vm_.ctx().counters.get(Event::kRingBufCopyEntry), kPmlBufferEntries)
      << "each slot is copied exactly once (no nested re-drain)";
  EXPECT_EQ(mod.fetch(p).size(), kPmlBufferEntries);

  // The deferred redelivery left the buffer reset and armed: logging still
  // works for fresh pages afterwards.
  run_writes(p, base + (kPmlBufferEntries + 3) * kPageSize, 5);
  EXPECT_EQ(mod.fetch(p).size(), 5u);
  mod.untrack(p);
}

TEST_F(OohModuleTest, SpmlBufferFullExitsToHypervisor) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kSpml);
  Process& p = kernel_.create_process();
  const u64 pages = 1200;
  const Gva base = p.mmap(pages * kPageSize);
  mod.track(p);
  run_writes(p, base, pages);
  EXPECT_GE(vm_.ctx().counters.get(Event::kVmExitPmlFull), 2u);
  EXPECT_EQ(mod.fetch(p).size(), pages);
  mod.untrack(p);
}

TEST_F(OohModuleTest, PerProcessRingsAreIsolated) {
  // §V isolation fix: two tracked processes never see each other's pages.
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p1 = kernel_.create_process();
  Process& p2 = kernel_.create_process();
  const Gva b1 = p1.mmap(4 * kPageSize);
  const Gva b2 = p2.mmap(6 * kPageSize);
  mod.track(p1);
  mod.track(p2);
  run_writes(p1, b1, 4);
  run_writes(p2, b2, 6);
  const std::vector<u64> got1 = mod.fetch(p1);
  const std::vector<u64> got2 = mod.fetch(p2);
  EXPECT_EQ(got1.size(), 4u);
  EXPECT_EQ(got2.size(), 6u);
  for (const u64 gva : got1) EXPECT_NE(p1.vma_of(gva), nullptr);
  for (const u64 gva : got2) EXPECT_NE(p2.vma_of(gva), nullptr);
  mod.untrack(p1);
  mod.untrack(p2);
}

TEST_F(OohModuleTest, InterIntervalRedirtyIsReLogged) {
  for (const OohMode mode : {OohMode::kSpml, OohMode::kEpml}) {
    SCOPED_TRACE(mode == OohMode::kSpml ? "SPML" : "EPML");
    OohModule& mod = kernel_.load_ooh_module(mode);
    Process& p = kernel_.create_process();
    const Gva base = p.mmap(4 * kPageSize);
    mod.track(p);
    run_writes(p, base, 4);
    EXPECT_EQ(mod.fetch(p).size(), 4u);
    run_writes(p, base, 2);  // re-dirty a subset
    EXPECT_EQ(mod.fetch(p).size(), 2u);
    mod.untrack(p);
    kernel_.unload_ooh_module();
  }
}

TEST_F(OohModuleTest, WithinIntervalDuplicateWritesLogOnce) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  const Gva base = p.mmap(2 * kPageSize);
  mod.track(p);
  Scheduler& sched = kernel_.scheduler();
  sched.enter_process(p.pid());
  for (int rep = 0; rep < 100; ++rep) {
    p.touch_write(base);
    p.touch_write(base + kPageSize);
  }
  sched.exit_process(p.pid());
  EXPECT_EQ(mod.fetch(p).size(), 2u) << "a page logs once per interval";
  mod.untrack(p);
}

TEST_F(OohModuleTest, EpmlTogglesLoggingAtContextSwitch) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  const Gva base = p.mmap(2 * kPageSize);
  mod.track(p);
  // Not scheduled in: writes must not log.
  p.touch_write(base);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPmlLogGvaGuest), 0u);
  run_writes(p, base + kPageSize, 1);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPmlLogGvaGuest), 1u);
  mod.untrack(p);
}

TEST_F(OohModuleTest, SpmlSchedHooksIssueHypercalls) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kSpml);
  Process& p = kernel_.create_process();
  (void)p.mmap(kPageSize);
  mod.track(p);
  const u64 before = vm_.ctx().counters.get(Event::kHypercall);
  kernel_.scheduler().enter_process(p.pid());
  kernel_.scheduler().exit_process(p.pid());
  // enable_logging at schedule-in, disable_logging at schedule-out.
  EXPECT_EQ(vm_.ctx().counters.get(Event::kHypercall), before + 2);
  mod.untrack(p);
}

TEST_F(OohModuleTest, EpmlSchedHooksUseVmwritesNotHypercalls) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  (void)p.mmap(kPageSize);
  mod.track(p);
  const u64 hc_before = vm_.ctx().counters.get(Event::kHypercall);
  const u64 vw_before = vm_.ctx().counters.get(Event::kVmwrite);
  kernel_.scheduler().enter_process(p.pid());
  kernel_.scheduler().exit_process(p.pid());
  EXPECT_EQ(vm_.ctx().counters.get(Event::kHypercall), hc_before)
      << "EPML's only hypercall is the one-time init (§IV-D)";
  EXPECT_GE(vm_.ctx().counters.get(Event::kVmwrite), vw_before + 3);
  mod.untrack(p);
}

TEST_F(OohModuleTest, RingOverflowIsCountedAsDropped) {
  (void)kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  const Gva base = p.mmap(64 * kPageSize);
  // Shrink the ring via a fresh module? The ring size is fixed; emulate
  // overflow by pushing into a tiny RingBuffer directly.
  RingBuffer tiny(4);
  for (u64 i = 0; i < 10; ++i) tiny.push(base + i * kPageSize);
  EXPECT_EQ(tiny.dropped(), 6u);
  (void)p;
}

TEST_F(OohModuleTest, UntrackWhileScheduledInIsSafe) {
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  Process& p = kernel_.create_process();
  const Gva base = p.mmap(2 * kPageSize);
  mod.track(p);
  kernel_.scheduler().enter_process(p.pid());
  p.touch_write(base);
  mod.untrack(p);  // schedules the logging off first
  p.touch_write(base + kPageSize);  // must not log into a dead buffer
  kernel_.scheduler().exit_process(p.pid());
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPmlLogGvaGuest), 1u);
}

}  // namespace
}  // namespace ooh::guest
