// Figure 8: complete CRIU checkpoint time per technique, highlighting the
// MD (memory-dump / address-collection) phase -- where SPML pays its
// reverse mapping.
//
// Paper's findings: SPML checkpoints up to 5x slower than /proc (reverse
// mapping is >66% of its MD); EPML is up to 4x faster than /proc and up to
// 13x faster than SPML.
#include <algorithm>

#include "criu_common.hpp"
#include "ooh/epoch_run.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/128);
  bench::print_header("Figure 8", "CRIU checkpoint time (MD + MW) per technique");

  TextTable t({"application + technique", "MD (ms)", "MW (ms)", "total (ms)"});
  struct Summary {
    double proc = 0, spml = 0, epml = 0;
    bool tkrzw = false;
  };
  double worst_spml_over_proc = 0, best_proc_over_epml = 0, best_spml_over_epml = 0;

  // Every (app, technique) checkpoint is a self-contained cell (run_criu
  // builds its own beds): fan the grid across the epoch pool and fold the
  // summaries serially in submission order (EPOCH-1: output byte-identical
  // to the old nested loop at any worker count).
  const auto apps = bench::criu_apps();
  constexpr lib::Technique kTechs[] = {lib::Technique::kProc, lib::Technique::kSpml,
                                       lib::Technique::kEpml};
  const std::vector<bench::CriuRun> results = lib::run_cells<bench::CriuRun>(
      apps.size() * 3,
      [&](std::size_t i) {
        const auto& [app, size] = apps[i / 3];
        return bench::run_criu(app, size, args.scale, kTechs[i % 3]);
      },
      args.threads);

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const auto& [app, size] = apps[a];
    Summary s;
    s.tkrzw = std::find(wl::tkrzw_apps().begin(), wl::tkrzw_apps().end(), app) !=
              wl::tkrzw_apps().end();
    for (std::size_t ti = 0; ti < 3; ++ti) {
      const lib::Technique tech = kTechs[ti];
      const bench::CriuRun& r = results[a * 3 + ti];
      const double md = r.res.phases.md.count() / 1e3;
      const double mw = r.res.phases.mw.count() / 1e3;
      const double total = r.res.phases.checkpoint_total().count() / 1e3;
      t.add_row(std::string(app) + " " + std::string(lib::technique_name(tech)),
                {md, mw, total}, 3);
      if (tech == lib::Technique::kProc) s.proc = total;
      if (tech == lib::Technique::kSpml) s.spml = total;
      if (tech == lib::Technique::kEpml) s.epml = total;
    }
    worst_spml_over_proc = std::max(worst_spml_over_proc, s.spml / s.proc);
    if (s.tkrzw) {
      // Paper quotes the speedups on the write-heavy tkrzw engines (tiny,
      // baby); read-heavy Phoenix apps have near-empty dirty sets and would
      // make the ratio unboundedly flattering for EPML.
      best_proc_over_epml = std::max(best_proc_over_epml, s.proc / s.epml);
      best_spml_over_epml = std::max(best_spml_over_epml, s.spml / s.epml);
    }
  }
  t.print(std::cout);
  std::printf("\nSpeedup summary (paper: SPML up to 5x slower than /proc; EPML up to\n"
              "4x faster than /proc and up to 13x faster than SPML):\n");
  std::printf("  SPML slowdown vs /proc : up to %.1fx\n", worst_spml_over_proc);
  std::printf("  EPML speedup vs /proc  : up to %.1fx\n", best_proc_over_epml);
  std::printf("  EPML speedup vs SPML   : up to %.1fx\n", best_spml_over_epml);
  return 0;
}
