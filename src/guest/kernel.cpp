#include "guest/kernel.hpp"

#include <cassert>
#include <cstring>
#include <new>

#include "guest/ooh_module.hpp"
#include "guest/procfs.hpp"
#include "guest/swap.hpp"
#include "guest/uffd.hpp"
#include "hypervisor/hypervisor.hpp"

namespace ooh::guest {

GuestKernel::GuestKernel(hv::Hypervisor& hypervisor, hv::Vm& vm)
    : hypervisor_(hypervisor),
      vm_(vm),
      ctx_(vm.ctx()),
      mmu_(vm.vcpu(), vm.ept(), &vm.spp_table()),
      sched_(ctx_) {
  procfs_ = std::make_unique<ProcFs>(*this);
  uffd_ = std::make_unique<Uffd>(*this);
  swap_ = std::make_unique<SwapDaemon>(*this);
  // Install the kernel as the posted-interrupt sink (EPML self-IPI vector).
  vm_.vcpu().attach(vm_.vcpu().exits(), this, vm_.vcpu().ept());
  // Guest write-protect fault policy as a notifier chain: userfaultfd gets
  // first claim (it checks the PTE's uffd_wp marker), soft-dirty is the
  // fallback — the dispatch order Linux's own fault handler hard-codes.
  vm_.track().register_notifier(sim::TrackLayer::kGuestWpFault, uffd_.get());
  vm_.track().register_notifier(sim::TrackLayer::kGuestWpFault, procfs_.get());
}

GuestKernel::~GuestKernel() {
  ooh_module_.reset();
  vm_.track().unregister_notifier(sim::TrackLayer::kGuestWpFault, procfs_.get());
  vm_.track().unregister_notifier(sim::TrackLayer::kGuestWpFault, uffd_.get());
}

Process& GuestKernel::create_process() {
  ProcEntry e;
  e.proc = std::make_unique<Process>(*this, next_pid_);
  e.pt = std::make_unique<sim::GuestPageTable>();
  // Both sides of the entry are heap-owned, so the cached pointer stays
  // valid for the process's whole life (procs_ growth moves only the
  // unique_ptrs).
  e.proc->pt_ = e.pt.get();
  ++next_pid_;
  procs_.push_back(std::move(e));
  return *procs_.back().proc;
}

Process* GuestKernel::find(u32 pid) noexcept {
  for (auto& e : procs_) {
    if (e.proc->pid() == pid) return e.proc.get();
  }
  return nullptr;
}

sim::GuestPageTable& GuestKernel::page_table(Process& proc) {
  if (&proc.kernel_ != this || proc.pt_ == nullptr) {
    throw std::logic_error("process does not belong to this kernel");
  }
  return *proc.pt_;
}

OohModule& GuestKernel::load_ooh_module(OohMode mode) {
  if (ooh_module_) throw std::logic_error("OoH module already loaded");
  ooh_module_ = std::make_unique<OohModule>(*this, mode);
  return *ooh_module_;
}

void GuestKernel::unload_ooh_module() {
  ooh_module_.reset();
}

Gpa GuestKernel::alloc_gpa_frame() {
  if (ctx_.fault_fire(sim::fault::FaultPoint::kGpaAllocFail)) {
    // Injected guest OOM: callers (EPML buffer setup, mmap growth) see the
    // same failure a loaded guest would produce and must degrade, not die.
    throw std::bad_alloc{};
  }
  if (!gpa_free_list_.empty()) {
    const Gpa gpa = gpa_free_list_.back();
    gpa_free_list_.pop_back();
    return gpa;
  }
  if (next_gpa_frame_ + kPageSize > vm_.mem_bytes()) {
    throw std::runtime_error("guest out of physical memory");
  }
  const Gpa gpa = next_gpa_frame_;
  next_gpa_frame_ += kPageSize;
  return gpa;
}

void GuestKernel::free_gpa_frame(Gpa gpa) {
  gpa_free_list_.push_back(page_floor(gpa));
}

void GuestKernel::ensure_ept_mapped(Gpa gpa) {
  sim::EptEntry* e = vm_.ept().entry(gpa);
  if (e != nullptr && e->present) return;
  ctx_.charge_us(ctx_.cost.ept_violation_us);
  vm_.vcpu().vmexit_to_root(Event::kVmExitEptViolation, [&] {
    vm_.vcpu().exits()->on_ept_violation(vm_.vcpu(), gpa, /*is_write=*/true);
  });
}

void GuestKernel::on_guest_pml_full(sim::Vcpu& /*vcpu*/) {
  if (!ooh_module_) throw std::logic_error("EPML self-IPI with no OoH module loaded");
  ooh_module_->handle_guest_pml_full();
}

Hpa GuestKernel::access(Process& proc, Gva gva, bool is_write) {
  sim::GuestPageTable& pt = page_table(proc);
  // A single access needs at most: missing fault, then (after the page is
  // mapped write-protected by a registered ufd) a write-protect fault, then
  // success. The bound just guards against policy bugs.
  for (int tries = 0; tries < 4; ++tries) {
    const sim::Mmu::Result r = mmu_.access(proc.pid(), pt, gva, is_write);
    switch (r.status) {
      case sim::Mmu::Status::kOk:
        if (is_write) proc.truth_record(page_floor(gva));
        sched_.on_progress(proc.pid());
        return r.hpa;
      case sim::Mmu::Status::kFaultNotPresent:
        handle_not_present(proc, gva, is_write);
        break;
      case sim::Mmu::Status::kFaultNotWritable:
        handle_not_writable(proc, gva);
        break;
      case sim::Mmu::Status::kFaultSubPage:
        handle_subpage_fault(proc, gva);
        break;
    }
  }
  throw std::logic_error("fault retry loop did not converge");
}

void GuestKernel::touch_run(Process& proc, Gva base, u64 stride, u64 n,
                            bool is_write) {
  const u32 pid = proc.pid();
  u64 i = 0;
  while (i < n) {
    // Fast path: serve as many accesses as cached translations allow. The
    // lambda replays exactly what the kOk arm of access() plus the caller's
    // touch_write/touch_read would have done after the MMU hit.
    i += mmu_.access_run(pid, base + i * stride, stride, n - i, is_write,
                         [&](Gva page) {
                           if (is_write) proc.truth_record(page);
                           sched_.on_progress(pid);
                           ctx_.charge_ns(ctx_.cost.workload_write_ns);
                         });
    if (i < n) {
      // The next access needs the full pipeline (TLB miss, fault, or a
      // dirty-flag transition); route it through access() like the
      // per-access loop would, then resume the run.
      (void)access(proc, base + i * stride, is_write);
      ctx_.charge_ns(ctx_.cost.workload_write_ns);
      ++i;
    }
  }
}

Gpa GuestKernel::translate_gva(Process& proc, Gva gva_page) {
  // Fault the page in if needed, then read the translation from the PTE.
  (void)access(proc, gva_page, /*is_write=*/false);
  const sim::Pte* pte = page_table(proc).pte(gva_page);
  assert(pte != nullptr && pte->present);
  return pte->gpa_page;
}

void GuestKernel::spp_protect(Process& proc, Gva gva_page, u32 write_mask) {
  const Gpa gpa = translate_gva(proc, page_floor(gva_page));
  if (vm_.vcpu().hypercall(sim::Hypercall::kOohSppProtect, gpa, write_mask) != 0) {
    throw std::runtime_error("SPP protect hypercall rejected");
  }
}

void GuestKernel::spp_clear(Process& proc, Gva gva_page) {
  const Gpa gpa = translate_gva(proc, page_floor(gva_page));
  (void)vm_.vcpu().hypercall(sim::Hypercall::kOohSppClear, gpa);
}

u32 GuestKernel::spp_mask_of(Process& proc, Gva gva_page) {
  const sim::Pte* pte = page_table(proc).pte(page_floor(gva_page));
  if (pte == nullptr || !pte->present) return sim::kSppAllWritable;
  return vm_.spp_table().mask(pte->gpa_page);
}

void GuestKernel::set_spp_handler(Process& proc, SppHandler handler) {
  if (handler) {
    spp_handlers_[proc.pid()] = std::move(handler);
  } else {
    spp_handlers_.erase(proc.pid());
  }
}

void GuestKernel::handle_subpage_fault(Process& proc, Gva gva) {
  ++spp_violations_;
  const auto it = spp_handlers_.find(proc.pid());
  // No handler: the guard hit is fatal, like a write to a guard page.
  if (it == spp_handlers_.end()) throw GuestSegfault(gva);
  switch (it->second(gva)) {
    case SppAction::kKill:
      throw GuestSegfault(gva);
    case SppAction::kUnprotect: {
      // Open the faulted sub-page so the access can proceed.
      const Gva page = page_floor(gva);
      const u32 mask = spp_mask_of(proc, page) | (1u << sim::subpage_index(gva));
      spp_protect(proc, page, mask);
      break;
    }
  }
}

void GuestKernel::handle_not_present(Process& proc, Gva gva, bool /*is_write*/) {
  Vma* vma = proc.vma_of(gva);
  if (vma == nullptr) throw GuestSegfault(gva);
  const Gva page = page_floor(gva);

  // Swapped-out page? Major fault: the daemon restores it.
  if (swap_->swap_in_if_needed(proc, page)) return;

  if (vma->uffd == Vma::Uffd::kMissing && uffd_->missing_registered(proc)) {
    uffd_->deliver_missing_fault(proc, page);
  }

  // Demand paging: minor fault, two world switches, map a fresh frame.
  ctx_.count(Event::kPageFaultDemand);
  ctx_.count(Event::kContextSwitch, 2);
  ctx_.charge_us(ctx_.cost.demand_fault_us + 2 * ctx_.cost.ctx_switch_us);

  sim::GuestPageTable& pt = page_table(proc);
  pt.map(page, alloc_gpa_frame(), vma->writable);
  sim::Pte* pte = pt.pte(page);
  assert(pte != nullptr);
  if (vma->data_backed) {
    // Anonymous pages are zeroed: a recycled frame (e.g. from a swap
    // eviction) must not leak its previous contents.
    ensure_ept_mapped(pte->gpa_page);
    Hpa hpa = 0;
    if (vm_.ept().translate(pte->gpa_page, hpa)) {
      std::memset(ctx_.pmem.frame_data(hpa), 0, kPageSize);
    }
  }
  // Linux marks freshly mapped pages soft-dirty so /proc does not miss them.
  pte->soft_dirty = true;
  if (vma->uffd == Vma::Uffd::kWriteProtect && uffd_->wp_registered(proc)) {
    pte->uffd_wp = true;  // the retried write will raise the ufd-wp fault
  }
}

void GuestKernel::handle_not_writable(Process& proc, Gva gva) {
  const Gva page = page_floor(gva);
  sim::GuestPageTable& pt = page_table(proc);
  sim::Pte* pte = pt.pte(page);
  assert(pte != nullptr && pte->present);
  Vma* vma = proc.vma_of(gva);
  if (vma == nullptr || !vma->writable) throw GuestSegfault(gva);

  // Fault policy lives in the kGuestWpFault chain: userfaultfd claims
  // uffd_wp-marked PTEs, the soft-dirty handler takes the rest.
  if (!vm_.track().dispatch(sim::TrackLayer::kGuestWpFault,
                            {&vm_.vcpu(), proc.pid(), page, pte->gpa_page})) {
    throw std::logic_error("guest write-protect fault with no handler");
  }
}

}  // namespace ooh::guest
