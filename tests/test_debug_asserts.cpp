// Regression tests for the debug-build guard rails in base/ring_buffer.hpp
// and sim/radix.hpp: zero-capacity rings and non-canonical (>= 2^48)
// addresses used to slip through silently (division by zero on first push,
// aliased radix slots). The guards are plain asserts, so these use
// EXPECT_DEBUG_DEATH — they check the death in -DNDEBUG-less builds and the
// (harmless) fallthrough in release builds.
#include <gtest/gtest.h>

#include "base/ring_buffer.hpp"
#include "sim/radix.hpp"

namespace ooh {
namespace {

TEST(RingBufferAsserts, ZeroCapacityTripsDebugAssert) {
  EXPECT_DEBUG_DEATH({ RingBuffer ring(0); }, "capacity must be nonzero");
}

TEST(RingBufferAsserts, WrapAroundKeepsFifoOrder) {
  RingBuffer ring(4);
  for (u64 v = 0; v < 4; ++v) EXPECT_TRUE(ring.push(v));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(99));  // overflow drops the newest entry
  EXPECT_EQ(ring.dropped(), 1u);
  u64 out = 0;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(ring.push(4));  // head has advanced: exercises the wrap
  const std::vector<u64> rest = ring.drain();
  EXPECT_EQ(rest, (std::vector<u64>{1, 2, 3, 4}));
  EXPECT_TRUE(ring.empty());
}

TEST(RadixAsserts, CanonicalPredicateMatchesTheSplit) {
  EXPECT_TRUE(sim::radix_canonical(0));
  EXPECT_TRUE(sim::radix_canonical((u64{1} << 48) - kPageSize));
  EXPECT_FALSE(sim::radix_canonical(u64{1} << 48));
  EXPECT_FALSE(sim::radix_canonical(~u64{0}));
}

TEST(RadixAsserts, NonCanonicalFindTripsDebugAssert) {
  sim::RadixTable4<int> table;
  EXPECT_DEBUG_DEATH({ (void)table.find(u64{1} << 48); },
                     "beyond the 48-bit split");
}

TEST(RadixAsserts, NonCanonicalEnsureTripsDebugAssert) {
  sim::RadixTable4<int> table;
  EXPECT_DEBUG_DEATH({ (void)table.ensure(u64{1} << 48); },
                     "beyond the 48-bit split");
}

TEST(RadixAsserts, CanonicalAddressesStillResolve) {
  sim::RadixTable4<int> table;
  const u64 addr = (u64{0x7fff} << 32) | 0x1234'5000;
  ASSERT_TRUE(sim::radix_canonical(addr));
  EXPECT_EQ(table.find(addr), nullptr);
  table.ensure(addr) = 42;
  ASSERT_NE(table.find(addr), nullptr);
  EXPECT_EQ(*table.find(addr), 42);
}

}  // namespace
}  // namespace ooh
