// Machine snapshot/restore: versioned serialization of the full simulated
// machine — frames, guest page tables (radix + segment + huge leaves), EPT,
// VMCS (+ shadow), TLB, PML session state, dirty rings, registries, clocks
// and counters — with copy-on-write frame sharing so a GiB-footprint tenant
// snapshots in milliseconds.
//
// A snapshot is two parts:
//   bytes   the canonical state stream (serializer.hpp format). The same
//           machine state always produces the same bytes, so round-trip
//           tests simply byte-compare save(bed).bytes against
//           save(restore(bed)).bytes. Frame *contents* appear only as
//           per-frame FNV-1a digests.
//   frames  CoW references to the backed frames' contents, captured via
//           PhysicalMemory::capture_frames() — O(backed frames) pointer
//           copies, never a byte copy. While a snapshot is alive, a write to
//           a captured frame clones it first (phys_mem.cpp frame_data), so
//           the captured image is frozen; the FRAME-4 ownership audit knows
//           these frames as shared-read-only.
//
// Epoch boundary contract — save() only accepts a *quiescent* machine:
//   * no OoH module loaded, no uffd registrations, empty swap slots;
//   * no PML session (the kPmlDrain chains and flush chains are empty);
//   * no scheduler mid-service, no periodic service armed, no sched hooks;
//   * no open clock attribution scopes; no installed SPP handlers.
// These are exactly the points between run_tracked collection intervals /
// workload runs where the TestBed sits between figure cells, which is what
// makes them the epoch seams of src/sim/epoch. A non-quiescent save throws
// std::logic_error naming the live session it found.
//
// restore() is in-place: it rewinds an *identically constructed* machine
// (same TestBedOptions) onto the captured state. Structural mismatches
// (different VM/vCPU/ring shapes) throw std::runtime_error.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "sim/phys_mem.hpp"

namespace ooh::sim {
class Machine;
}
namespace ooh::hv {
class Hypervisor;
}
namespace ooh::guest {
class GuestKernel;
}

namespace ooh::snapshot {

struct MachineSnapshot {
  std::vector<ooh::u8> bytes;                       ///< canonical state stream.
  std::vector<sim::PhysicalMemory::FrameImage> frames;  ///< CoW frame contents.

  [[nodiscard]] std::size_t stream_bytes() const noexcept { return bytes.size(); }
  [[nodiscard]] std::size_t frame_count() const noexcept { return frames.size(); }
};

/// The one friend every serializable class grants. All save/restore logic
/// lives behind it (machine_image.cpp), so the intrusion per class is a
/// single `friend struct ooh::snapshot::Access;` line.
struct Access {
  [[nodiscard]] static MachineSnapshot save(
      sim::Machine& machine, hv::Hypervisor& hypervisor,
      const std::vector<guest::GuestKernel*>& kernels);

  static void restore(const MachineSnapshot& snap, sim::Machine& machine,
                      hv::Hypervisor& hypervisor,
                      const std::vector<guest::GuestKernel*>& kernels);

 private:
  /// Per-subsystem walkers (machine_image.cpp). A nested type shares the
  /// enclosing class's friendships, so every walker reaches the privates
  /// without each class having to befriend a dozen helper functions.
  struct Impl;
};

/// Convenience wrappers (the TestBed's save()/restore() call these).
[[nodiscard]] inline MachineSnapshot save_machine(
    sim::Machine& machine, hv::Hypervisor& hypervisor,
    const std::vector<guest::GuestKernel*>& kernels) {
  return Access::save(machine, hypervisor, kernels);
}

inline void restore_machine(const MachineSnapshot& snap, sim::Machine& machine,
                            hv::Hypervisor& hypervisor,
                            const std::vector<guest::GuestKernel*>& kernels) {
  Access::restore(snap, machine, hypervisor, kernels);
}

}  // namespace ooh::snapshot
