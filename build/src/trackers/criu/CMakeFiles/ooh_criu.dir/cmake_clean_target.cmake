file(REMOVE_RECURSE
  "libooh_criu.a"
)
