// Figure 5: Boehm GC execution time per technique (/proc, SPML, EPML),
// highlighting the first collection cycle -- where SPML performs the
// reverse mapping -- against the later cycles.
//
// Paper's findings: ignoring the first cycle, SPML outperforms /proc by up
// to 36%; EPML outperforms /proc by up to 58% and SPML by up to 47%.
#include "boehm_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/64);
  bench::print_header("Figure 5", "Boehm GC time per technique (first cycle highlighted)");

  struct App {
    std::string_view name;
    wl::ConfigSize size;
  };
  const std::vector<App> apps = {
      {"GCBench", wl::ConfigSize::kSmall},    {"GCBench", wl::ConfigSize::kMedium},
      {"GCBench", wl::ConfigSize::kLarge},    {"histogram", wl::ConfigSize::kLarge},
      {"word-count", wl::ConfigSize::kMedium}, {"string-match", wl::ConfigSize::kLarge},
  };

  TextTable t({"application + technique", "cycles", "GC total (ms)", "cycle1 (ms)",
               "later avg (ms)"});
  for (const App& app : apps) {
    for (const lib::Technique tech :
         {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
      const bench::BoehmRun r = bench::run_boehm(app.name, app.size, args.scale, tech);
      t.add_row(std::string(app.name) + " (" + std::string(wl::config_name(app.size)) + ") " +
                    std::string(lib::technique_name(tech)),
                {static_cast<double>(r.cycles), r.gc_total_us / 1e3,
                 r.gc_first_cycle_us / 1e3, r.gc_later_avg_us / 1e3},
                2);
    }
  }
  t.print(std::cout);
  std::printf("\nShape check: SPML's cycle 1 dwarfs its later cycles (reverse map);\n"
              "EPML has the lowest GC time overall.\n");
  return 0;
}
