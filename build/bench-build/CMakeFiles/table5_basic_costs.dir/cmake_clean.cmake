file(REMOVE_RECURSE
  "../bench/table5_basic_costs"
  "../bench/table5_basic_costs.pdb"
  "CMakeFiles/table5_basic_costs.dir/table5_basic_costs.cpp.o"
  "CMakeFiles/table5_basic_costs.dir/table5_basic_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_basic_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
