# Empty dependencies file for fig9_criu_tracked.
# This may be replaced when dependencies are built.
