// Cross-cutting consistency properties:
//  * random mixed operation sequences keep PTE/EPT/TLB state coherent,
//  * all exact techniques report byte-identical dirty sets for the same
//    deterministic workload,
//  * virtual time is monotone and attribution buckets never exceed it.
#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.hpp"
#include "guest/procfs.hpp"
#include "guest/swap.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh {
namespace {

TEST(Consistency, RandomOpsKeepTranslationStateCoherent) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 128;
  const Gva base = proc.mmap(pages * kPageSize);
  Rng rng(31337);

  for (int op = 0; op < 5000; ++op) {
    const Gva gva = base + rng.below(pages) * kPageSize + 8 * rng.below(512);
    switch (rng.below(6)) {
      case 0:
      case 1:
        proc.touch_write(gva);
        break;
      case 2:
        proc.touch_read(gva);
        break;
      case 3:
        if (rng.below(20) == 0) k.procfs().clear_refs(proc);
        break;
      case 4:
        if (rng.below(20) == 0) {
          k.page_table(proc).for_each_present(
              [](Gva, sim::Pte& pte) { pte.accessed = false; });
          bed.vm().vcpu().tlb().flush_pid(proc.pid());
          (void)k.swap().evict(proc, 8);
        }
        break;
      case 5:
        if (rng.below(50) == 0) bed.vm().vcpu().tlb().flush_all();
        break;
    }

    if (op % 500 == 0) {
      // Invariant: every present PTE maps a GPA inside the VM, the GPA is
      // EPT-mapped (it was accessed at least once to become present), and
      // a dirty PTE implies a dirty EPT entry for its frame.
      k.page_table(proc).for_each_present([&](Gva gva_page, sim::Pte& pte) {
        ASSERT_LT(pte.gpa_page, bed.vm().mem_bytes());
        const sim::EptEntry* e = bed.vm().ept().entry(pte.gpa_page);
        if (pte.accessed) {
          ASSERT_NE(e, nullptr) << "accessed page lost its EPT mapping";
          ASSERT_TRUE(e->present);
        }
        (void)gva_page;
      });
      // Invariant: truth never exceeds the address range.
      for (const auto& [page, seq] : proc.truth_dirty()) {
        ASSERT_GE(page, base);
        ASSERT_LT(page, base + pages * kPageSize);
        (void)seq;
      }
    }
  }
  // Final read-back of every page must succeed (swap-ins included).
  for (u64 i = 0; i < pages; ++i) proc.touch_read(base + i * kPageSize);
}

TEST(Consistency, AllTechniquesReportIdenticalDirtySets) {
  // Same deterministic workload under each technique: the reported page
  // sets must be *identical*, not merely complete.
  const auto run_with = [](lib::Technique t) {
    lib::TestBed bed;
    auto& k = bed.kernel();
    auto& proc = k.create_process();
    const u64 pages = 256;
    const Gva base = proc.mmap(pages * kPageSize);
    for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);  // warm

    auto tracker = lib::make_tracker(t, k, proc);
    tracker->init();
    tracker->begin_interval();
    k.scheduler().enter_process(proc.pid());
    Rng rng(99);
    for (int i = 0; i < 300; ++i) {
      proc.touch_write(base + rng.below(pages) * kPageSize);
    }
    k.scheduler().exit_process(proc.pid());
    std::vector<Gva> pages_out = tracker->collect();
    tracker->shutdown();
    std::sort(pages_out.begin(), pages_out.end());
    return pages_out;
  };

  const std::vector<Gva> oracle = run_with(lib::Technique::kOracle);
  EXPECT_EQ(run_with(lib::Technique::kProc), oracle);
  EXPECT_EQ(run_with(lib::Technique::kUfd), oracle);
  EXPECT_EQ(run_with(lib::Technique::kSpml), oracle);
  EXPECT_EQ(run_with(lib::Technique::kEpml), oracle);

  // The segment backend is deliberately coarser: per-run flags expand each
  // touched segment to every page it covers, so its report is a superset of
  // the precise set — never a miss, never equality in general.
  const std::vector<Gva> seg = run_with(lib::Technique::kSeg);
  EXPECT_GE(seg.size(), oracle.size());
  EXPECT_TRUE(std::includes(seg.begin(), seg.end(), oracle.begin(), oracle.end()));
}

TEST(Consistency, ClockMonotoneAndBucketsBounded) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(512 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kSpml, k, proc);
  lib::RunOptions opts;
  opts.collect_period = usecs(200);
  const VirtDuration before = bed.ctx().clock.now();
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (u64 i = 0; i < 512; ++i) p.touch_write(base + i * kPageSize);
      },
      tracker.get(), opts);
  const VirtDuration after = bed.ctx().clock.now();
  tracker->shutdown();

  EXPECT_GT(after.count(), before.count());
  const double total_span = (after - before).count();
  EXPECT_LE(r.phases.init.count(), total_span);
  EXPECT_LE(r.phases.collect.count(), total_span);
  EXPECT_LE(r.tracked_time.count(), total_span);
  EXPECT_GE(r.phases.collect.count(), 0.0);
  EXPECT_GE(r.phases.arm.count(), 0.0);
}

TEST(Consistency, CountersNeverDecrease) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(64 * kPageSize);
  EventCounters prev = bed.ctx().counters;
  for (int round = 0; round < 10; ++round) {
    for (u64 i = 0; i < 64; ++i) proc.touch_write(base + i * kPageSize);
    k.procfs().clear_refs(proc);
    const EventCounters now = bed.ctx().counters;
    for (std::size_t e = 0; e < kEventCount; ++e) {
      ASSERT_GE(now.get(static_cast<Event>(e)), prev.get(static_cast<Event>(e)));
    }
    prev = now;
  }
}

}  // namespace
}  // namespace ooh
