# Empty compiler generated dependencies file for ooh_uafguard.
# This may be replaced when dependencies are built.
