// A virtual machine as the hypervisor sees it: EPT, one vCPU (the paper's
// evaluation setup), the hypervisor-level PML state, and the kPmlDrain
// consumers that let the guest's OoH use of PML and the hypervisor's own
// use (live migration, WSS sampling) share one buffer without stepping on
// each other (§IV-C, generalized from two flags to N registered consumers).
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "base/ring_buffer.hpp"
#include "base/types.hpp"
#include "sim/ept.hpp"
#include "sim/page_track.hpp"
#include "sim/spp.hpp"
#include "sim/vcpu.hpp"

namespace ooh::hv {

class Vm;

/// kPmlDrain consumer: GPAs drained from the PML buffer are retained in the
/// VM's hyp_dirty_log for the hypervisor's own use (live-migration pre-copy
/// rounds, WSS harvests). Registered while a hypervisor logging session is
/// active — the generalization of the paper's enabled_by_hyp flag.
class HypDirtyLogConsumer final : public sim::PageTrackNotifier {
 public:
  explicit HypDirtyLogConsumer(Vm& vm) noexcept : vm_(vm) {}
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;

 private:
  Vm& vm_;
};

/// kPmlDrain consumer: GPAs drained from the PML buffer are copied into the
/// guest-shared SPML ring (and the interval log used to re-arm dirty flags
/// at the interval boundary). Registered while a guest SPML session is
/// active (enabled_by_guest); its per-consumer enable state is the paper's
/// guest_logging_on — set while the tracked process is scheduled in.
class SpmlRingConsumer final : public sim::PageTrackNotifier {
 public:
  explicit SpmlRingConsumer(Vm& vm) noexcept : vm_(vm) {}
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;

 private:
  Vm& vm_;
};

class Vm {
 public:
  Vm(sim::Machine& machine, u32 id, u64 mem_bytes, std::size_t spml_ring_entries);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] u32 id() const noexcept { return id_; }
  [[nodiscard]] u64 mem_bytes() const noexcept { return mem_bytes_; }
  [[nodiscard]] sim::Ept& ept() noexcept { return ept_; }
  [[nodiscard]] sim::Vcpu& vcpu() noexcept { return vcpu_; }

  /// The vCPU's execution context: this VM's private clock and counters
  /// (one vCPU per VM, the paper's evaluation setup).
  [[nodiscard]] sim::ExecContext& ctx() noexcept { return vcpu_.ctx(); }

  /// The vCPU's page-track notifier chain (shorthand; see sim/page_track.hpp).
  [[nodiscard]] sim::WriteTrackRegistry& track() noexcept {
    return vcpu_.track_registry();
  }

  /// The ring shared between hypervisor and guest OS (SPML design). It is
  /// allocated in the guest's address space conceptually; the hypervisor
  /// only writes logged GPAs into it (§V isolation argument).
  [[nodiscard]] RingBuffer& spml_ring() noexcept { return spml_ring_; }

  /// The hypervisor's "larger buffer": dirty GPAs retained for its own use
  /// (live migration pre-copy). Deduplicated.
  [[nodiscard]] std::unordered_set<Gpa>& hyp_dirty_log() noexcept { return hyp_dirty_log_; }

  /// GPAs routed to the guest ring since the last SPML interval reset; used
  /// to re-arm their dirty flags at the interval boundary.
  [[nodiscard]] std::vector<Gpa>& spml_interval_log() noexcept { return spml_interval_log_; }

  /// Sub-page permission table (Intel SPP); consulted by the page-walk
  /// circuit for EPT entries flagged spp.
  [[nodiscard]] sim::SppTable& spp_table() noexcept { return spp_table_; }

  // -- kPmlDrain consumers -----------------------------------------------------
  [[nodiscard]] sim::PageTrackNotifier& hyp_drain_consumer() noexcept {
    return hyp_drain_consumer_;
  }
  [[nodiscard]] sim::PageTrackNotifier& spml_drain_consumer() noexcept {
    return spml_drain_consumer_;
  }

  // The §IV-C coexistence state, derived from the drain chain instead of
  // stored as bespoke two-party flags:
  //   enabled_by_hyp   == the hypervisor's consumer is registered;
  //   enabled_by_guest == the guest's SPML consumer is registered;
  //   guest_logging_on == the SPML consumer's per-consumer enable state.
  [[nodiscard]] bool pml_enabled_by_hyp() noexcept {
    return track().registered(sim::TrackLayer::kPmlDrain, &hyp_drain_consumer_);
  }
  [[nodiscard]] bool pml_enabled_by_guest() noexcept {
    return track().registered(sim::TrackLayer::kPmlDrain, &spml_drain_consumer_);
  }
  [[nodiscard]] bool guest_logging_on() noexcept {
    return track().enabled(sim::TrackLayer::kPmlDrain, &spml_drain_consumer_);
  }

  // -- PML state -------------------------------------------------------------
  Hpa pml_buffer = 0;             ///< hypervisor-level 4KiB PML buffer (HPA).
  u64 spml_tracked_mem_bytes = 0; ///< tracked process size, for M14 scaling.

 private:
  u32 id_;
  u64 mem_bytes_;
  sim::Ept ept_;
  sim::Vcpu vcpu_;
  RingBuffer spml_ring_;
  std::unordered_set<Gpa> hyp_dirty_log_;
  std::vector<Gpa> spml_interval_log_;
  sim::SppTable spp_table_;
  HypDirtyLogConsumer hyp_drain_consumer_{*this};
  SpmlRingConsumer spml_drain_consumer_{*this};
};

}  // namespace ooh::hv
