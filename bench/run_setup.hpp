// Shared run-setup helpers: every bench binary builds its TestBed, its
// tracked process and its pre-faulted working set the same way. The sizing
// and warmup rules used to be copy-pasted across common.hpp,
// boehm_common.hpp and criu_common.hpp; they live here once so a change to
// the methodology (headroom, prefault discipline, the --gran axis) cannot
// silently diverge between figures.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#include "guest/kernel.hpp"
#include "guest/process.hpp"
#include "ooh/testbed.hpp"
#include "workloads/registry.hpp"

namespace ooh::bench {

/// The --gran axis of figs. 10-11: how the hypervisor backs guest memory.
///   k4K           all-4 KiB EPT leaves (the paper's configuration; every
///                 default figure output is byte-identical to it).
///   k2M           2 MiB PS-bit backfill, huge leaves kept during logging —
///                 PML entries name 2 MiB supersets.
///   k2MEagerSplit 2 MiB backfill, shattered to 4 KiB when a logging
///                 session starts (KVM eager page splitting): page-precise
///                 dirty sets, split cost paid at session start.
enum class GranMode { k4K, k2M, k2MEagerSplit };

[[nodiscard]] inline const char* gran_mode_name(GranMode m) noexcept {
  switch (m) {
    case GranMode::k4K: return "4K";
    case GranMode::k2M: return "2M";
    case GranMode::k2MEagerSplit: return "2M+split";
  }
  return "?";
}

[[nodiscard]] inline std::optional<GranMode> parse_gran_mode(
    std::string_view s) noexcept {
  if (s == "4k" || s == "4K") return GranMode::k4K;
  if (s == "2m" || s == "2M") return GranMode::k2M;
  if (s == "2m+split" || s == "2M+split" || s == "split") {
    return GranMode::k2MEagerSplit;
  }
  return std::nullopt;
}

/// Translate a GranMode onto TestBedOptions' knobs.
inline void apply_gran(lib::TestBedOptions& opts, GranMode m) noexcept {
  opts.ept_huge = m != GranMode::k4K;
  opts.eager_split = m == GranMode::k2MEagerSplit;
}

/// TestBedOptions sized so a tracked working set of `mem_bytes` fits with
/// the standard headroom (2x the set for guest metadata and buffers, 2 GiB
/// of host slack for PML buffers and page tables).
[[nodiscard]] inline lib::TestBedOptions sized_bed_options(u64 mem_bytes) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = std::max<u64>(mem_bytes * 2, 64 * kMiB);
  opts.host_mem_bytes = opts.vm_mem_bytes + 2 * kGiB;
  return opts;
}

/// A process with `bytes` mmapped and every page pre-faulted by a write, so
/// the timed phase that follows allocates nothing. touch_range_write is
/// bit-identical in virtual time to the historical per-page touch loop.
struct PreparedProcess {
  guest::Process* proc = nullptr;
  Gva base = 0;
};

inline PreparedProcess prepare_process(guest::GuestKernel& k, u64 bytes) {
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(bytes);
  proc.touch_range_write(base, bytes);
  return {&proc, base};
}

/// A process with the named workload instantiated and set up in it — the
/// fragment the CRIU runners repeat for their ideal and checkpointed runs.
struct WorkloadRun {
  guest::Process* proc = nullptr;
  std::unique_ptr<wl::Workload> workload;
};

inline WorkloadRun prepare_workload(guest::GuestKernel& k, std::string_view app,
                                    wl::ConfigSize size, u64 scale) {
  WorkloadRun r;
  r.proc = &k.create_process();
  r.workload = wl::make_workload(app, size, scale);
  r.workload->setup(*r.proc);
  return r;
}

}  // namespace ooh::bench
