// Boehm-like GC tests: liveness correctness (reachable objects survive,
// garbage is reclaimed, memory is reused), incremental marking driven by
// dirty pages, and the per-technique cost shape of Fig. 5.
#include <gtest/gtest.h>

#include "ooh/testbed.hpp"
#include "trackers/boehmgc/gc.hpp"

namespace ooh::gc {
namespace {

using lib::Technique;

struct GcFixture {
  GcFixture(u64 heap_mb = 64, u64 threshold = 256 * kPageSize)
      : bed(), kernel(bed.kernel()), proc(kernel.create_process()),
        heap(kernel, proc, heap_mb * kMiB, threshold) {}
  lib::TestBed bed;
  guest::GuestKernel& kernel;
  guest::Process& proc;
  GcHeap heap;
};

TEST(GcHeap, GarbageIsFreedLiveSurvives) {
  GcFixture f;
  GcHeap& h = f.heap;
  const Gva root = h.alloc(2, 8);
  h.add_root(root);
  const Gva kept = h.alloc(0, 8);
  h.write_ref(root, 0, kept);
  std::vector<Gva> garbage;
  for (int i = 0; i < 100; ++i) garbage.push_back(h.alloc(0, 64));

  const GcCycleStats st = h.collect();
  EXPECT_EQ(st.objects_freed, 100u);
  EXPECT_TRUE(h.is_object(root));
  EXPECT_TRUE(h.is_object(kept));
  for (const Gva g : garbage) EXPECT_FALSE(h.is_object(g));
  EXPECT_EQ(h.live_objects(), 2u);
}

TEST(GcHeap, DeepChainsAndCyclesCollectCorrectly) {
  GcFixture f;
  GcHeap& h = f.heap;
  // A reachable chain of 1000 objects.
  const Gva head = h.alloc(1, 0);
  h.add_root(head);
  Gva cur = head;
  for (int i = 0; i < 999; ++i) {
    const Gva next = h.alloc(1, 0);
    h.write_ref(cur, 0, next);
    cur = next;
  }
  // An unreachable 3-cycle (cycles must not leak).
  const Gva a = h.alloc(1, 0), b = h.alloc(1, 0), c = h.alloc(1, 0);
  h.write_ref(a, 0, b);
  h.write_ref(b, 0, c);
  h.write_ref(c, 0, a);

  (void)h.collect();
  EXPECT_EQ(h.live_objects(), 1000u);
  EXPECT_FALSE(h.is_object(a));
}

TEST(GcHeap, DroppedRootBecomesGarbage) {
  GcFixture f;
  GcHeap& h = f.heap;
  const Gva root = h.alloc(1, 0);
  h.add_root(root);
  (void)h.collect();
  EXPECT_TRUE(h.is_object(root));
  h.remove_root(root);
  (void)h.collect();
  EXPECT_FALSE(h.is_object(root));
}

TEST(GcHeap, FreedMemoryIsReused) {
  GcFixture f;
  GcHeap& h = f.heap;
  std::vector<Gva> garbage;
  for (int i = 0; i < 50; ++i) garbage.push_back(h.alloc(0, 256));
  const u64 used_before = h.heap_used_bytes();
  (void)h.collect();
  for (int i = 0; i < 50; ++i) (void)h.alloc(0, 256);
  EXPECT_EQ(h.heap_used_bytes(), used_before)
      << "same-size allocations must come from the free list";
}

TEST(GcHeap, AllocationTriggersCollectionAtThreshold) {
  GcFixture f(/*heap_mb=*/64, /*threshold=*/64 * 1024);
  GcHeap& h = f.heap;
  for (int i = 0; i < 5000; ++i) (void)h.alloc(0, 64);
  EXPECT_GT(h.stats().cycle_count(), 1u);
  EXPECT_GT(f.bed.ctx().counters.get(Event::kGcCycle), 1u);
}

TEST(GcHeap, RefSlotAndDataBoundsChecked) {
  GcFixture f;
  GcHeap& h = f.heap;
  const Gva o = h.alloc(2, 16);
  EXPECT_THROW(h.write_ref(o, 2, 0), std::out_of_range);
  EXPECT_THROW((void)h.read_ref(o, 5), std::out_of_range);
  EXPECT_THROW(h.write_data(o, 16, 1), std::out_of_range);
  EXPECT_THROW(h.write_ref(o, 0, 0xdeadbeef), std::invalid_argument)
      << "targets must be live objects";
  EXPECT_THROW((void)h.alloc(0, 999 * kGiB), std::bad_alloc);
}

TEST(GcHeap, WriteRefReadRefRoundTrip) {
  GcFixture f;
  GcHeap& h = f.heap;
  const Gva a = h.alloc(2, 0);
  const Gva b = h.alloc(0, 0);
  h.add_root(a);
  h.write_ref(a, 1, b);
  EXPECT_EQ(h.read_ref(a, 1), b);
  EXPECT_EQ(h.read_ref(a, 0), 0u);
  h.write_ref(a, 1, 0);
  EXPECT_EQ(h.read_ref(a, 1), 0u);
  (void)h.collect();
  EXPECT_FALSE(h.is_object(b)) << "cleared ref makes b garbage";
}

class GcIncremental : public ::testing::TestWithParam<Technique> {};

TEST_P(GcIncremental, LaterCyclesRescanOnlyDirtyPages) {
  GcFixture f;
  GcHeap& h = f.heap;
  h.set_technique(GetParam());
  guest::Scheduler& sched = f.kernel.scheduler();

  sched.enter_process(f.proc.pid());
  // Build a sizable stable structure.
  const Gva root = h.alloc(1, 0);
  h.add_root(root);
  Gva cur = root;
  for (int i = 0; i < 2000; ++i) {
    const Gva next = h.alloc(1, 0);
    h.write_ref(cur, 0, next);
    cur = next;
  }
  const GcCycleStats full = h.collect();
  EXPECT_TRUE(full.full);
  EXPECT_GE(full.objects_marked, 2000u);

  // Touch a handful of objects; the next cycle must re-scan only their pages.
  h.write_ref(cur, 0, 0);
  const GcCycleStats inc = h.collect();
  sched.exit_process(f.proc.pid());
  EXPECT_FALSE(inc.full);
  EXPECT_LT(inc.pages_rescanned, 50u)
      << "incremental cycle rescanned far too many pages";
  EXPECT_LT(inc.objects_marked, full.objects_marked / 4);
}

INSTANTIATE_TEST_SUITE_P(Techniques, GcIncremental,
                         ::testing::Values(Technique::kProc, Technique::kSpml,
                                           Technique::kEpml, Technique::kOracle),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case Technique::kProc: return "proc";
                             case Technique::kSpml: return "spml";
                             case Technique::kEpml: return "epml";
                             case Technique::kOracle: return "oracle";
                             default: return "other";
                           }
                         });

TEST(GcIncrementalCost, EpmlDirtyQueryCheaperThanProcAndSpml) {
  // Fig. 5's mechanism: the techniques differ in the cost of *finding* the
  // dirty pages at each cycle.
  auto query_time = [](Technique t) {
    GcFixture f;
    GcHeap& h = f.heap;
    h.set_technique(t);
    guest::Scheduler& sched = f.kernel.scheduler();
    sched.enter_process(f.proc.pid());
    const Gva root = h.alloc(1, 0);
    h.add_root(root);
    Gva cur = root;
    for (int i = 0; i < 3000; ++i) {
      const Gva next = h.alloc(1, 0);
      h.write_ref(cur, 0, next);
      cur = next;
    }
    (void)h.collect();                 // full cycle
    h.write_ref(root, 0, root == cur ? 0 : h.read_ref(root, 0));  // dirty a page
    const GcCycleStats inc = h.collect();
    sched.exit_process(f.proc.pid());
    return inc.dirty_query.count();
  };
  const double epml = query_time(Technique::kEpml);
  const double proc = query_time(Technique::kProc);
  const double spml = query_time(Technique::kSpml);
  EXPECT_LT(epml * 5, proc);
  EXPECT_LT(epml, spml);
  // Paper §VI-E: *ignoring the first cycle* (where SPML reverse-maps), SPML
  // outperforms /proc, because later cycles reuse the first cycle's
  // addresses while /proc rescans the pagemap every cycle.
  EXPECT_LT(spml * 5, proc) << "cached SPML beats /proc after cycle 1";
}

TEST(GcStatsTest, CyclesAccumulate) {
  GcFixture f(/*heap_mb=*/64, /*threshold=*/32 * 1024);
  GcHeap& h = f.heap;
  for (int i = 0; i < 3000; ++i) (void)h.alloc(0, 64);
  const GcStats& stats = h.stats();
  EXPECT_GE(stats.cycle_count(), 2u);
  EXPECT_GT(stats.total_gc_time.count(), 0.0);
  EXPECT_GT(stats.total_allocated_bytes, 3000u * 64u);
  unsigned expect_cycle = 1;
  for (const GcCycleStats& c : stats.cycles) {
    EXPECT_EQ(c.cycle, expect_cycle++);
    EXPECT_GE(c.duration.count(), 0.0);
  }
}

}  // namespace
}  // namespace ooh::gc
