# Empty compiler generated dependencies file for ablation_spp_guard.
# This may be replaced when dependencies are built.
