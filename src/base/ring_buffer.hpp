// Fixed-capacity ring buffer of 64-bit entries.
//
// This models the two rings the paper's design uses:
//   * the ring shared between hypervisor and guest OS (SPML), and
//   * the per-tracked-process ring the OoH module exposes to userspace
//     (both designs; per-process after the §V isolation fix).
// Overflow drops the newest entry and counts it, mirroring what a real
// shared ring does when the consumer lags; trackers surface the drop count
// so completeness tests can distinguish "missed" from "not dirtied".
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "base/types.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh {

class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    // A zero-capacity ring divides by zero on the first push.
    assert(capacity > 0 && "RingBuffer capacity must be nonzero");
  }

  /// Push one entry; returns false (and counts a drop) when full.
  bool push(u64 value) noexcept {
    assert(size_ <= buf_.size() && head_ < buf_.size());
    if (size_ == buf_.size()) {
      ++dropped_;
      return false;
    }
    buf_[(head_ + size_) % buf_.size()] = value;
    ++size_;
    return true;
  }

  /// Pop the oldest entry into `out`; false when empty.
  bool pop(u64& out) noexcept {
    assert(size_ <= buf_.size() && head_ < buf_.size());
    if (size_ == 0) return false;
    out = buf_[head_];
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return true;
  }

  /// Drain everything (oldest first) into a vector.
  [[nodiscard]] std::vector<u64> drain() {
    std::vector<u64> out;
    out.reserve(size_);
    u64 v = 0;
    while (pop(v)) out.push_back(v);
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }
  void reset_dropped() noexcept { dropped_ = 0; }

 private:
  friend struct ooh::snapshot::Access;

  std::vector<u64> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  u64 dropped_ = 0;
};

}  // namespace ooh
