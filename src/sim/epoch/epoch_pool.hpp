// EpochPool: a deterministic-by-construction worker pool for epochs.
//
// Workers claim epoch indices from a shared cursor (the PR 1 ExecContext
// sharding idiom) and write each result into its submission-order slot, so
// the merged output is a pure function of the epoch bodies — real-time
// completion order, worker count, and OS scheduling cannot leak into it
// (invariant EPOCH-1, pinned by the serial-vs-2/4/8-thread tests).
//
// threads <= 1 (or a single epoch) short-circuits to a plain serial loop on
// the calling thread: the N=1 path spawns nothing and is byte-identical to
// the pre-epoch code.
//
// The cross-thread state (claim cursor, error slot) lives behind the
// sync.hpp seam so instrumented builds let the SchedExplorer drive the
// claim protocol through every interleaving (scenario
// "snapshot_during_epochs" in sched_explorer.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "base/sync.hpp"
#include "base/types.hpp"

namespace ooh::epoch {

/// One claim step of the pool protocol: atomically take the next unclaimed
/// epoch index, or n if all are claimed. Factored out so the sched-check
/// scenario exercises the exact production claim path.
[[nodiscard]] inline std::size_t claim_next(sync::Atomic<u64>& cursor, std::size_t n) {
  // relaxed-ok: the cursor only partitions indices between workers; each
  // epoch's inputs are immutable before run() and its result slot is
  // written by exactly one claimant, published by the joining thread.
  const u64 i = cursor.fetch_add(1, std::memory_order_relaxed);
  return i < n ? static_cast<std::size_t>(i) : n;
}

/// Pool options (namespace scope so default arguments may instantiate it
/// inside EpochPool's own definition).
struct Options {
  /// Worker count; 0 picks hardware_concurrency (capped by epoch count),
  /// 1 forces the serial inline path.
  unsigned threads = 0;
  /// When nonzero, each worker spins a seeded, index-dependent number of
  /// yields before running an epoch — a determinism *test* knob that
  /// shuffles real-time completion order without touching results.
  u64 stagger_seed = 0;
};

class EpochPool {
 public:
  using Options = epoch::Options;

  /// Run body(i) for every i in [0, n) across the worker pool. body must
  /// only write state owned by epoch i (its result slot); the pool provides
  /// the submission-order guarantee, the body provides isolation. The
  /// first-thrown exception (lowest epoch index wins, deterministically)
  /// is rethrown on the calling thread after all workers join.
  static void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                          Options opt = Options());

  /// Map convenience: results vector in submission order.
  template <typename T, typename Fn>
  [[nodiscard]] static std::vector<T> map(std::size_t n, Fn&& fn, Options opt = Options()) {
    std::vector<T> out(n);
    run_indexed(
        n, [&](std::size_t i) { out[i] = fn(i); }, opt);
    return out;
  }

  /// Effective worker count for `n` epochs under `opt`.
  [[nodiscard]] static unsigned workers_for(std::size_t n, Options opt);
};

}  // namespace ooh::epoch
