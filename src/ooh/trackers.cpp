#include "ooh/trackers.hpp"

#include <unordered_map>

#include "guest/ooh_module.hpp"
#include "guest/procfs.hpp"
#include "guest/uffd.hpp"

namespace ooh::lib {
namespace {

/// Load (or re-load) the OoH kernel module in the requested mode. One design
/// is active per guest at a time, matching the paper's prototypes.
guest::OohModule& ensure_module(guest::GuestKernel& kernel, guest::OohMode mode) {
  guest::OohModule* mod = kernel.ooh_module();
  if (mod != nullptr && mod->mode() != mode) {
    kernel.unload_ooh_module();
    mod = nullptr;
  }
  return mod != nullptr ? *mod : kernel.load_ooh_module(mode);
}

}  // namespace

// ---- ProcTracker ------------------------------------------------------------

void ProcTracker::do_begin_interval() {
  kernel_.procfs().clear_refs(proc_);
}

std::vector<Gva> ProcTracker::do_collect() {
  return kernel_.procfs().pagemap_dirty(proc_);
}

// ---- UfdTracker --------------------------------------------------------------

void UfdTracker::do_init() {
  kernel_.uffd().register_wp(
      proc_, [this](Gva page) { pending_.insert(page); }, &phases_.monitor);
}

void UfdTracker::do_begin_interval() {
  // Registration already write-protected everything; later intervals must
  // re-protect so second writes to the same page fault again.
  if (first_interval_) {
    first_interval_ = false;
    return;
  }
  kernel_.uffd().rearm_wp(proc_);
}

std::vector<Gva> UfdTracker::do_collect() {
  std::vector<Gva> out(pending_.begin(), pending_.end());
  pending_.clear();
  return out;
}

void UfdTracker::do_shutdown() {
  kernel_.uffd().unregister(proc_);
}

// ---- SpmlTracker -------------------------------------------------------------

void SpmlTracker::do_init() {
  module_ = &ensure_module(kernel_, guest::OohMode::kSpml);
  module_->track(proc_);
}

std::vector<Gva> SpmlTracker::do_collect() {
  sim::ExecContext& m = kernel_.ctx();
  std::vector<u64> gpas = module_->fetch(proc_);  // GPAs; charges the RB copy

  // Deduplicate: a page drained more than once re-logs within the interval.
  std::sort(gpas.begin(), gpas.end());
  gpas.erase(std::unique(gpas.begin(), gpas.end()), gpas.end());

  // Reverse mapping GPA -> GVA (§IV-C item 2): a userspace page-table scan
  // through /proc (M16) plus a per-GPA lookup (M17) -- the dominant SPML
  // term (Fig. 3). Resolved addresses are cached and reused by later
  // intervals, as the paper's Boehm integration does (§VI-E footnote 2), so
  // only GPAs never seen before pay the cost.
  const bool any_miss =
      std::any_of(gpas.begin(), gpas.end(),
                  [&](Gpa g) { return !rmap_cache_.contains(g); });
  if (any_miss) {
    m.count(Event::kPagemapScan);
    m.charge_us(m.cost.pagemap_scan_us(proc_.mapped_bytes()));
    const double per_page = m.cost.reverse_map_per_page_us(proc_.mapped_bytes());
    std::unordered_map<Gpa, Gva> current;
    for (const auto& [gva, gpa] : kernel_.procfs().pagemap_entries(proc_)) {
      current.emplace(gpa, gva);
    }
    for (const Gpa gpa : gpas) {
      if (rmap_cache_.contains(gpa)) continue;
      m.count(Event::kReverseMapLookup);
      m.charge_us(per_page);
      if (const auto it = current.find(gpa); it != current.end()) {
        rmap_cache_.emplace(gpa, it->second);
      }
    }
  }
  std::vector<Gva> out;
  out.reserve(gpas.size());
  for (const Gpa gpa : gpas) {
    if (const auto it = rmap_cache_.find(gpa); it != rmap_cache_.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

void SpmlTracker::do_shutdown() {
  if (module_ != nullptr && module_->tracking(proc_)) module_->untrack(proc_);
}

u64 SpmlTracker::dropped() const {
  return module_ != nullptr && module_->tracking(proc_) ? module_->dropped(proc_)
                                                        : 0;
}

// ---- EpmlTracker -------------------------------------------------------------

void EpmlTracker::do_init() {
  module_ = &ensure_module(kernel_, guest::OohMode::kEpml);
  module_->track(proc_);
}

std::vector<Gva> EpmlTracker::do_collect() {
  // The hardware already logged GVAs: collection is a ring-buffer read.
  return module_->fetch(proc_);
}

void EpmlTracker::do_shutdown() {
  if (module_ != nullptr && module_->tracking(proc_)) module_->untrack(proc_);
}

u64 EpmlTracker::dropped() const {
  return module_ != nullptr && module_->tracking(proc_) ? module_->dropped(proc_)
                                                        : 0;
}

// ---- OracleTracker -----------------------------------------------------------

void OracleTracker::do_begin_interval() {
  baseline_seq_ = proc_.truth_seq();
}

std::vector<Gva> OracleTracker::do_collect() {
  std::vector<Gva> out;
  for (const auto& [page, seq] : proc_.truth_dirty()) {
    if (seq > baseline_seq_) out.push_back(page);
  }
  return out;
}

// ---- factory -------------------------------------------------------------------

std::unique_ptr<DirtyTracker> make_tracker(Technique t, guest::GuestKernel& kernel,
                                           guest::Process& proc) {
  switch (t) {
    case Technique::kProc: return std::make_unique<ProcTracker>(kernel, proc);
    case Technique::kUfd: return std::make_unique<UfdTracker>(kernel, proc);
    case Technique::kSpml: return std::make_unique<SpmlTracker>(kernel, proc);
    case Technique::kEpml: return std::make_unique<EpmlTracker>(kernel, proc);
    case Technique::kOracle: return std::make_unique<OracleTracker>(kernel, proc);
  }
  throw std::invalid_argument("unknown technique");
}

}  // namespace ooh::lib
