// The hypervisor (Xen-like): VM lifecycle, VM-exit handling, the OoH
// hypercall interface of §IV, and coexistence between the guest's use of
// PML (SPML) and the hypervisor's own (live migration).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "hypervisor/vm.hpp"
#include "sim/hw_if.hpp"
#include "sim/machine.hpp"

namespace ooh::hv {

class Hypervisor final : public sim::VmExitHandler {
 public:
  explicit Hypervisor(sim::Machine& machine) : machine_(machine) {}

  /// Create a VM with `mem_bytes` of guest-physical space. Host frames are
  /// demand-allocated on EPT violations, as on a real overcommitted host.
  Vm& create_vm(u64 mem_bytes, std::size_t spml_ring_entries = 1u << 20);

  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] Vm& vm(std::size_t i) noexcept { return *vms_[i]; }

  // ---- sim::VmExitHandler ---------------------------------------------------
  void on_pml_full(sim::Vcpu& vcpu) override;
  void on_ept_violation(sim::Vcpu& vcpu, Gpa gpa, bool is_write) override;
  u64 on_hypercall(sim::Vcpu& vcpu, sim::Hypercall nr, u64 a0, u64 a1) override;

  // ---- hypervisor's own PML use (live migration, checkpoint) ----------------
  /// Start logging for the whole VM: clear all EPT dirty flags, flush, arm PML.
  void enable_pml_for_hyp(Vm& vm);
  void disable_pml_for_hyp(Vm& vm);
  /// Flush the in-flight PML buffer and take the accumulated dirty GPA set.
  [[nodiscard]] std::vector<Gpa> harvest_hyp_dirty(Vm& vm);
  /// Final stop-and-copy harvest: drain + take the log WITHOUT re-arming
  /// (no dirty-flag reset, no INVEPT) — the vCPU is paused and will not run
  /// on this host again. Captures writes that landed between the last
  /// pre-copy harvest and the pause.
  [[nodiscard]] std::vector<Gpa> collect_dirty_paused(Vm& vm);

  // ---- working-set-size estimation (read-logging PML extension) -------------
  /// Start WSS sampling: PML logs on accessed-flag transitions, so the
  /// harvested set is the *touched* (read or written) pages -- the extension
  /// of Bitchebe et al. cited in the paper's related work. Mutually
  /// exclusive with a guest SPML session (one buffer, different meanings).
  void enable_wss_sampling(Vm& vm);
  void disable_wss_sampling(Vm& vm);
  /// Touched pages since the last harvest; resets accessed+dirty flags.
  [[nodiscard]] std::vector<Gpa> harvest_wss(Vm& vm);

  [[nodiscard]] sim::Machine& machine() noexcept { return machine_; }

  // ---- coherence-oracle seam -------------------------------------------------
  /// The environment (TestBed) may install a hook that audits one VM's
  /// cross-layer state; lower layers then request audits at their natural
  /// boundaries (collection intervals, migration rounds) without depending
  /// on the checker. The hook must be per-VM-scoped: tenants audit
  /// concurrently from worker threads.
  void set_audit_hook(std::function<void(u32 vm_index)> hook) {
    audit_hook_ = std::move(hook);
  }
  /// Run the installed audit hook over `vm_index` (no-op when absent).
  void audit_now(u32 vm_index) {
    if (audit_hook_) audit_hook_(vm_index);
  }

 private:
  [[nodiscard]] Vm& vm_of(const sim::Vcpu& vcpu);
  void ensure_pml_buffer(Vm& vm);
  /// Clear EPT dirty flags for `gpa_pages` and invalidate cached
  /// translations, re-arming PML for them (interval/round boundary).
  void reset_dirty_for(Vm& vm, std::span<const Gpa> gpa_pages);
  /// Copy logged GPAs to their consumers, clear their EPT dirty flags so
  /// future writes re-log, invalidate cached translations, reset the index.
  void drain_pml_buffer(Vm& vm);
  void clear_all_ept_dirty(Vm& vm);
  void update_pml_enable(Vm& vm);

  sim::Machine& machine_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::function<void(u32)> audit_hook_;
};

}  // namespace ooh::hv
