// Per-vCPU dirty ring: the KVM-dirty-ring-style harvesting primitive that
// replaces the hypervisor's stop-the-world dirty bitmap.
//
// Each vCPU owns one ring. The vCPU thread is the only producer (pushing GPAs
// as its PML buffer drains) and a single userspace drain thread is the only
// consumer, so the ring is a classic single-producer/single-consumer queue:
// two monotonic indices, release/acquire ordering on each, and no locks. The
// consumer may drain while the producing vCPU keeps running — that is the
// point — and popping charges no virtual time (it is host-side work off the
// guest's critical path).
//
// A full ring never loses an entry: the producer diverts the GPA to a
// producer-private spill log (counting Event::kDirtyRingFull) that harvest
// code folds back in at the next quiescent point. This mirrors KVM's
// "ring full -> exit to userspace" behaviour while keeping the simulation
// loss-free, and gives the kDirtyRingFull fault point a real degraded path
// to exercise.
//
// Invariant RING-1 (docs/invariants.md): popped() <= pushed(), and
// pushed() - popped() <= capacity() at every instant; the spill log is only
// ever touched by the producer between quiescent points.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "base/types.hpp"

namespace ooh::hv {

class DirtyRing {
 public:
  static constexpr std::size_t kDefaultEntries = std::size_t{1} << 16;

  explicit DirtyRing(std::size_t capacity = kDefaultEntries)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "DirtyRing capacity must be a power of two");
  }

  DirtyRing(const DirtyRing&) = delete;
  DirtyRing& operator=(const DirtyRing&) = delete;

  // ---- producer side (the owning vCPU's thread) ---------------------------

  /// Append one GPA; false when the ring is full (caller takes the spill
  /// path). Safe against a concurrently popping consumer.
  [[nodiscard]] bool try_push(u64 value) noexcept {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= capacity_) return false;
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Loss-free overflow path: producer-private, folded in at harvest time.
  void spill(u64 value) { spill_.push_back(value); }

  // ---- consumer side (one userspace drain thread) -------------------------

  /// Pop the oldest entry; false when the ring is observed empty. Safe while
  /// the producer keeps pushing.
  [[nodiscard]] bool try_pop(u64& out) noexcept {
    const u64 head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // ---- quiescent-point operations (no vCPU running, no drain in flight) ---

  /// Move the spill log out (harvest folds these after the ring contents).
  [[nodiscard]] std::vector<u64> take_spill() {
    std::vector<u64> out;
    out.swap(spill_);
    return out;
  }

  /// Drop everything (tests / teardown). Cumulative counters are kept.
  void clear() noexcept {
    head_.store(tail_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    spill_.clear();
  }

  // ---- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] u64 pushed() const noexcept {
    return tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] u64 popped() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Entries currently in the ring. Exact at quiescent points; a safe
  /// point-in-time snapshot under concurrency.
  [[nodiscard]] std::size_t pending() const noexcept {
    const u64 tail = tail_.load(std::memory_order_acquire);
    const u64 head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }
  [[nodiscard]] std::size_t spill_size() const noexcept { return spill_.size(); }
  [[nodiscard]] const std::vector<u64>& spill_log() const noexcept { return spill_; }

  /// Quiescent-point read-only visit of the entries currently pending in
  /// the ring (oldest first) without consuming them; used by the coherence
  /// oracle's dirty-accounting audit.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    const u64 tail = tail_.load(std::memory_order_acquire);
    for (u64 i = head_.load(std::memory_order_acquire); i != tail; ++i) {
      fn(slots_[i & mask_]);
    }
  }

  /// RING-1: index accounting is sane (monotone indices, bounded occupancy).
  [[nodiscard]] bool bounds_ok() const noexcept {
    const u64 tail = tail_.load(std::memory_order_acquire);
    const u64 head = head_.load(std::memory_order_acquire);
    return head <= tail && tail - head <= capacity_;
  }

 private:
  std::size_t capacity_;
  std::size_t mask_;
  std::vector<u64> slots_;
  std::atomic<u64> head_{0};  ///< consumer cursor: total entries popped.
  std::atomic<u64> tail_{0};  ///< producer cursor: total entries pushed.
  std::vector<u64> spill_;    ///< producer-private overflow (never dropped).
};

}  // namespace ooh::hv
