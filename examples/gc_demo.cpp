// Boehm-style incremental garbage collection under different dirty-page
// tracking techniques.
//
// Runs GCBench against the mark-sweep heap and prints every collection
// cycle: the full first cycle, then incremental cycles whose cost is the
// dirty-page query plus a re-scan of only the dirtied pages. Shows why the
// paper integrates OoH into Boehm: the dirty query is the technique-
// dependent part.
//
//   $ ./gc_demo
#include <cstdio>

#include "ooh/testbed.hpp"
#include "trackers/boehmgc/gc.hpp"
#include "workloads/gcbench.hpp"

using namespace ooh;

int main() {
  for (const lib::Technique tech :
       {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
    lib::TestBed bed;
    guest::GuestKernel& kernel = bed.kernel();
    guest::Process& proc = kernel.create_process();

    gc::GcHeap heap(kernel, proc, /*heap_bytes=*/256 * kMiB,
                    /*gc_threshold_bytes=*/2 * kMiB);
    heap.set_technique(tech);

    wl::GcBench bench(/*array_len=*/50'000, /*lived_depth=*/12, /*stretch_depth=*/14,
                      /*work_divisor=*/8);
    bench.attach_gc(&heap);

    kernel.scheduler().enter_process(proc.pid());
    bench.run(proc);
    (void)heap.collect();  // final full sweep
    kernel.scheduler().exit_process(proc.pid());

    const gc::GcStats& stats = heap.stats();
    std::printf("\n=== GCBench under %s: %u collection cycles ===\n",
                std::string(lib::technique_name(tech)).c_str(), stats.cycle_count());
    std::printf("%-6s %-12s %-14s %-10s %-9s %-9s\n", "cycle", "pause", "dirty query",
                "rescanned", "marked", "freed");
    for (const gc::GcCycleStats& c : stats.cycles) {
      std::printf("%-6u %-12s %-14s %-10llu %-9llu %-9llu%s\n", c.cycle,
                  format_duration(c.duration).c_str(),
                  format_duration(c.dirty_query).c_str(),
                  static_cast<unsigned long long>(c.pages_rescanned),
                  static_cast<unsigned long long>(c.objects_marked),
                  static_cast<unsigned long long>(c.objects_freed),
                  c.full ? "  (full)" : "");
    }
    std::printf("total GC time: %s | live at end: %llu objects (%.1f MiB)\n",
                format_duration(stats.total_gc_time).c_str(),
                static_cast<unsigned long long>(heap.live_objects()),
                static_cast<double>(heap.live_bytes()) / kMiB);
  }
  std::printf("\nNote the dirty-query column: /proc pays clear_refs + a pagemap scan\n"
              "every cycle; SPML pays reverse mapping once (cycle 1 for its pages)\n"
              "and ring reads after; EPML pays only ring reads.\n");
  return 0;
}
