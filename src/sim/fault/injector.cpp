#include "sim/fault/injector.hpp"

#include <algorithm>

namespace ooh::sim::fault {

bool FaultInjector::fire(FaultPoint point) {
  const u64 arrival = arrivals_[idx(point)]++;
  const auto& rules = plan_.rules();
  per_rule_fired_.resize(rules.size(), 0);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& r = rules[i];
    if (r.point != point) continue;
    if (r.limit != 0 && per_rule_fired_[i] >= r.limit) continue;
    if (arrival < r.first) continue;
    if (r.every == 0 ? arrival != r.first : (arrival - r.first) % r.every != 0) {
      continue;
    }
    ++per_rule_fired_[i];
    ++fired_[idx(point)];
    last_arg_ = r.arg;
    return true;
  }
  return false;
}

FaultInjector::IpiGate FaultInjector::gate_self_ipi() {
  IpiGate g;
  if (ipi_drops_remaining_ == 0 && fire(FaultPoint::kSelfIpiSuppress)) {
    ipi_drops_remaining_ = std::clamp<u64>(last_arg_, 1, kMaxIpiDrops);
    ipi_window_open_ = true;
    g.fired = true;
  }
  if (ipi_drops_remaining_ > 0) {
    --ipi_drops_remaining_;
    ++ipis_suppressed_;
    g.deliver = false;
    return g;
  }
  if (ipi_window_open_) {
    // The drop window ran dry on an earlier encounter; this one is the
    // bounded-retry redelivery.
    ipi_window_open_ = false;
    ++ipis_redelivered_;
  }
  g.deliver = true;
  return g;
}

u64 FaultInjector::total_fired() const noexcept {
  u64 total = 0;
  for (const u64 n : fired_) total += n;
  return total;
}

}  // namespace ooh::sim::fault
