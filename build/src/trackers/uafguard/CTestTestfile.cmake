# CMake generated Testfile for 
# Source directory: /root/repo/src/trackers/uafguard
# Build directory: /root/repo/build/src/trackers/uafguard
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
