// The paper's analytical cost model (§VI-B, Formulas 1-4).
//
//   E(C_tker)      = E(C_x) + E(C_p) + I(C_x, C_p)        (Formula 1)
//   E(C_x)         = per-technique development             (Formula 2)
//   E(C_tked_tker) = E(C_tked) + E(C_tker) + I(C_x,C_tked) (Formula 3)
//   I(C_x, C_tked) = per-technique development             (Formula 4)
//
// I(C_x, C_p) (cache pollution) is negligible per the paper and omitted.
// The paper uses these formulas to predict EPML on hardware that does not
// exist; we use them the same way and additionally *validate* them against
// the simulator (Table IV), deriving the event counts from a real run.
#pragma once

#include "base/cost_model.hpp"
#include "base/counters.hpp"
#include "base/types.hpp"
#include "ooh/tracker.hpp"

namespace ooh::model {

/// Inputs to Formulas 2 and 4. Everything here is an observable of a run
/// (event counts), not a time.
struct ModelParams {
  u64 mem_bytes = 0;            ///< Tracked memory size (drives M5/M6/M14-M18).
  u64 intervals = 1;            ///< collection intervals performed.
  u64 dirty_pages = 0;          ///< reverse-map lookups (SPML) / dirty pages.
  u64 rb_entries = 0;           ///< entries fetched from the ring (M18 scaling).
  u64 rmap_scans = 0;           ///< pagemap scans the reverse mapper performed.
  u64 n_ctx_switches = 0;       ///< N: tracked schedule-in/out pairs (Formula 4).
  u64 faults = 0;               ///< monitoring-phase page faults (/proc, ufd).
  u64 pml_full_exits = 0;       ///< hypervisor-buffer-full VM-exits (SPML).
  u64 self_ipis = 0;            ///< guest-buffer-full posted IPIs (EPML).
  double e_cp_us = 0.0;         ///< E(C_p): the tracking routine (dump, mark...).
};

struct Estimate {
  double technique_us = 0.0;  ///< E(C_x): tracker-side technique cost.
  double impact_us = 0.0;     ///< I(C_x, C_tked): interference on Tracked.

  /// Formula 1 (I(C_x,C_p) ~ 0).
  [[nodiscard]] double tracker_us(double e_cp_us) const noexcept {
    return technique_us + e_cp_us;
  }
  /// Formula 3.
  [[nodiscard]] double tracked_us(double e_tked_us, double e_cp_us) const noexcept {
    return e_tked_us + tracker_us(e_cp_us) + impact_us;
  }
};

/// Formulas 2 + 4 for technique `t`.
[[nodiscard]] Estimate estimate(lib::Technique t, const ModelParams& p,
                                const CostModel& cost);

/// Derive ModelParams from a run's event deltas (for Table IV validation).
[[nodiscard]] ModelParams params_from_events(lib::Technique t, u64 mem_bytes,
                                             const EventCounters& events);

/// |estimated - measured| / measured accuracy, as the paper reports (96%+).
[[nodiscard]] double accuracy_pct(double estimated, double measured);

}  // namespace ooh::model
