
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/hypervisor.cpp" "src/hypervisor/CMakeFiles/ooh_hypervisor.dir/hypervisor.cpp.o" "gcc" "src/hypervisor/CMakeFiles/ooh_hypervisor.dir/hypervisor.cpp.o.d"
  "/root/repo/src/hypervisor/migration.cpp" "src/hypervisor/CMakeFiles/ooh_hypervisor.dir/migration.cpp.o" "gcc" "src/hypervisor/CMakeFiles/ooh_hypervisor.dir/migration.cpp.o.d"
  "/root/repo/src/hypervisor/vm.cpp" "src/hypervisor/CMakeFiles/ooh_hypervisor.dir/vm.cpp.o" "gcc" "src/hypervisor/CMakeFiles/ooh_hypervisor.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ooh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ooh_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
