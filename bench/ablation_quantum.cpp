// Ablation: scheduler quantum (context-switch rate) vs tracked overhead.
//
// Formula 4's N term: SPML pays an enable_logging + disable_logging
// hypercall pair per context switch of the tracked process; EPML pays three
// vmwrites. Shorter quanta raise N and should separate the designs.
#include "common.hpp"

using namespace ooh;

namespace {

struct QuantumRun {
  double tracked_ms = 0.0;
  u64 n = 0;  ///< quantum-driven context switches.
};

QuantumRun run(lib::Technique tech, VirtDuration quantum) {
  const u64 mem = 10 * kMiB;
  const u64 pages = pages_for_bytes(mem);
  lib::TestBedOptions tb;
  tb.sched_quantum = quantum;
  lib::TestBed bed(tb);
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(mem);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  auto tracker = lib::make_tracker(tech, k, proc);
  lib::RunOptions opts;
  opts.collect_period = VirtDuration{0};
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (int pass = 0; pass < 16; ++pass) {
          for (u64 i = 0; i < pages; ++i) p.write_u64(base + i * kPageSize, i);
        }
      },
      tracker.get(), opts);
  tracker->shutdown();
  return {r.tracked_time.count() / 1e3, r.events.get(Event::kSchedQuantum)};
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::Args::parse(argc, argv);
  bench::print_header("Ablation: scheduler quantum",
                      "Tracked time (ms) and N vs context-switch rate, 10MB microbench");

  const std::vector<double> quanta_ms = {0.5, 1.0, 5.0, 20.0, 1000.0};
  TextTable t({"quantum", "N", "SPML (ms)", "EPML (ms)", "SPML-EPML gap (ms)"});
  for (const double q : quanta_ms) {
    const QuantumRun spml = run(lib::Technique::kSpml, msecs(q));
    const QuantumRun epml = run(lib::Technique::kEpml, msecs(q));
    t.add_row(TextTable::fmt(q, 1) + "ms",
              {static_cast<double>(spml.n), spml.tracked_ms, epml.tracked_ms,
               spml.tracked_ms - epml.tracked_ms},
              2);
  }
  t.print(std::cout);
  std::printf("\nShape check: as the quantum shrinks (N grows), SPML's per-switch\n"
              "hypercall pair widens the gap to EPML's vmwrites.\n");
  return 0;
}
