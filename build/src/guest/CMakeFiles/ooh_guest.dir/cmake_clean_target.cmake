file(REMOVE_RECURSE
  "libooh_guest.a"
)
