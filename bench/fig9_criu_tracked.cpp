// Figure 9: impact of CRIU checkpointing on the Tracked application's
// execution time per technique, against the untracked ideal.
//
// Paper's findings: /proc costs up to ~102% (pca); SPML from ~1% to ~114%;
// EPML never exceeds 14% with an average of ~3%.
#include "criu_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/128);
  bench::print_header("Figure 9", "CRIU overhead (%) on Tracked per technique");

  TextTable t({"application", "/proc (%)", "SPML (%)", "EPML (%)"});
  double epml_max = 0.0, epml_sum = 0.0;
  int n = 0;
  for (const auto& [app, size] : bench::criu_apps()) {
    std::vector<double> row;
    for (const lib::Technique tech :
         {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
      const bench::CriuRun r = bench::run_criu(app, size, args.scale, tech);
      const double oh = (r.res.run.tracked_time.count() - r.ideal_us) / r.ideal_us * 100.0;
      row.push_back(oh);
      if (tech == lib::Technique::kEpml) {
        epml_max = std::max(epml_max, oh);
        epml_sum += oh;
        ++n;
      }
    }
    t.add_row(std::string(app), row, 1);
  }
  t.print(std::cout);
  std::printf("\nEPML overhead: max %.1f%%, average %.1f%% (paper: max 14%%, avg 3%%).\n",
              epml_max, epml_sum / std::max(n, 1));
  return 0;
}
