// The MMU write path: TLB -> guest page-table walk -> EPT walk, with the
// PML logging circuit at the two dirty-flag transition points.
//
// This is where the paper's central hardware mechanism lives:
//   * hypervisor-level PML (original Intel PML): a write that sets an EPT
//     dirty flag logs the GPA into the buffer at VMCS.PML_ADDRESS; when the
//     index underflows, a PML-full VM-exit is raised *before* logging.
//   * guest-level PML (the EPML extension): a write that sets a guest-PTE
//     dirty flag logs the GVA into the buffer at VMCS.GUEST_PML_ADDRESS
//     (shadow VMCS); a full buffer raises a posted self-IPI handled by the
//     guest OoH module with no VM-exit.
//
// Faults are *returned*, not handled: the guest kernel owns fault policy
// (demand paging, soft-dirty, userfaultfd) and retries the access.
#pragma once

#include "base/types.hpp"
#include "sim/ept.hpp"
#include "sim/page_table.hpp"
#include "sim/spp.hpp"

namespace ooh::sim {

class ExecContext;
class Vcpu;

class Mmu {
 public:
  /// All time and events the walk circuit charges go to `vcpu`'s own
  /// execution context. `spp` is the sub-page permission table the hardware
  /// consults for EPT entries with the spp flag (nullptr = SPP absent from
  /// this machine).
  Mmu(Vcpu& vcpu, Ept& ept, SppTable* spp = nullptr);

  enum class Status {
    kOk,
    kFaultNotPresent,   ///< PTE absent: demand paging or ufd `miss` territory.
    kFaultNotWritable,  ///< write to a present RO/uffd-wp PTE: tracking territory.
    kFaultSubPage,      ///< write blocked by an SPP sub-page mask (guard hit).
  };

  struct Result {
    Status status = Status::kOk;
    Hpa hpa = 0;  ///< translated host physical address (valid when kOk).
  };

  /// Perform one access at `gva` for guest process `pid` through `pt`.
  [[nodiscard]] Result access(u32 pid, GuestPageTable& pt, Gva gva, bool is_write);

  [[nodiscard]] Ept& ept() noexcept { return ept_; }

 private:
  [[nodiscard]] bool hyp_pml_active() const noexcept;
  [[nodiscard]] bool guest_pml_active() const noexcept;
  [[nodiscard]] bool read_log_active() const noexcept;
  void log_gpa(Gpa gpa_page);
  void log_gva(Gva gva_page);

  ExecContext& ctx_;
  Vcpu& vcpu_;
  Ept& ept_;
  SppTable* spp_;
};

}  // namespace ooh::sim
