// Per-vCPU execution context: the mutable state one virtual CPU timeline
// owns exclusively — its virtual clock, event counters and TLB — plus
// references to the machine-wide read-only cost model and the (thread-safe)
// frame allocator.
//
// The paper's scalability argument (Figs. 10-11) is that PML state is
// per-vCPU with no cross-VM coupling; this type is that argument in code.
// Because no two contexts share mutable state, independent tenant-VM
// timelines may run on different host threads and still produce bit-
// identical virtual-time results to a serial run.
#pragma once

#include "base/clock.hpp"
#include "base/cost_model.hpp"
#include "base/counters.hpp"
#include "sim/phys_mem.hpp"
#include "sim/tlb.hpp"

namespace ooh::sim {

class ExecContext {
 public:
  ExecContext(u32 id, const CostModel& cost_model, PhysicalMemory& phys)
      : cost(cost_model), pmem(phys), id_(id) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  [[nodiscard]] u32 id() const noexcept { return id_; }

  void charge_us(double us) { clock.advance(usecs(us)); }
  void charge_ns(double ns) { clock.advance(nsecs(ns)); }
  void count(Event e, u64 n = 1) noexcept { counters.add(e, n); }

  VirtualClock clock;
  EventCounters counters;
  Tlb tlb;
  const CostModel& cost;
  PhysicalMemory& pmem;

 private:
  u32 id_;
};

}  // namespace ooh::sim
