// Adaptive tracking control plane (src/ooh/adaptive): WSS/dirty-rate
// estimation, policy-driven runtime backend switching, and the handoff
// contract — no dirty page is lost across a switch (POL-1's software half),
// and same-seed adaptive runs replay bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <vector>

#include "base/counters.hpp"
#include "ooh/adaptive/adaptive_tracker.hpp"
#include "ooh/adaptive/convergence.hpp"
#include "ooh/adaptive/policy.hpp"
#include "ooh/adaptive/wss_estimator.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh::lib {
namespace {

// ---- WssEstimator: property sweep over synthetic dirty rates ----------------

TEST(WssEstimator, TracksConstantSyntheticRatesWithinTolerance) {
  TestBed bed;
  sim::ExecContext& ctx = bed.ctx();
  const double window_ms = 5.0;
  for (const u64 pages_per_window : {u64{1}, u64{10}, u64{100}, u64{1000}}) {
    const double rate = static_cast<double>(pages_per_window) / window_ms;
    WssEstimator est(0.5);
    VirtDuration now = msecs(100);
    est.begin_window(7, now);
    std::vector<Gva> pages(pages_per_window);
    for (int w = 0; w < 8; ++w) {
      for (u64 i = 0; i < pages_per_window; ++i) {
        pages[i] = (0x1000 + i) * kPageSize;
      }
      now += msecs(window_ms);
      est.note_interval(7, pages, now, ctx);
    }
    const WssSignal& sig = est.signal(7);
    EXPECT_EQ(sig.windows, 8u);
    EXPECT_EQ(sig.last_window_pages, pages_per_window);
    // An EWMA of a constant is that constant, to float precision.
    EXPECT_NEAR(sig.dirty_rate, rate, rate * 1e-9);
    EXPECT_NEAR(sig.wss_pages, static_cast<double>(pages_per_window), 1e-6);
  }
}

TEST(WssEstimator, EwmaDecaysGeometricallyWhenThePhaseGoesCold) {
  TestBed bed;
  sim::ExecContext& ctx = bed.ctx();
  WssEstimator est(0.5);
  VirtDuration now = msecs(10);
  est.begin_window(3, now);
  std::vector<Gva> hot(100);
  for (u64 i = 0; i < hot.size(); ++i) hot[i] = (0x2000 + i) * kPageSize;
  for (int w = 0; w < 4; ++w) {
    now += msecs(1.0);
    est.note_interval(3, hot, now, ctx);  // 100 pages/ms
  }
  EXPECT_NEAR(est.signal(3).dirty_rate, 100.0, 1e-6);
  double prev = est.signal(3).dirty_rate;
  for (int w = 0; w < 12; ++w) {
    now += msecs(1.0);
    est.note_interval(3, {}, now, ctx);  // cold: zero dirty pages
    const double cur = est.signal(3).dirty_rate;
    EXPECT_NEAR(cur, prev * 0.5, 1e-9) << "alpha=0.5: the rate halves per window";
    prev = cur;
  }
  EXPECT_LT(est.signal(3).dirty_rate, 0.05)
      << "12 cold windows cross the default cold threshold";
}

TEST(WssEstimator, IngestsHarvestWssSamplesAsTheVmWideSignal) {
  // The hypervisor-side feed: harvest_wss's GPA sample closes the pid-0
  // (VM-wide) window.
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(64 * kPageSize);
  for (u64 i = 0; i < 64; ++i) proc.touch_write(base + i * kPageSize);

  hv::Hypervisor& hv = bed.hypervisor();
  hv.enable_wss_sampling(bed.vm());
  WssEstimator est(0.5);
  est.begin_window(0, bed.ctx().clock.now());
  for (u64 i = 0; i < 20; ++i) proc.touch_read(base + i * kPageSize);
  const std::vector<Gpa> sample = hv.harvest_wss(bed.vm());
  est.ingest_sample(sample, bed.ctx().clock.now(), bed.ctx());
  hv.disable_wss_sampling(bed.vm());

  EXPECT_EQ(sample.size(), 20u);
  EXPECT_EQ(est.signal().windows, 1u);
  EXPECT_EQ(est.signal().last_window_pages, 20u);
  EXPECT_GT(est.signal().dirty_rate, 0.0);
}

TEST(WssEstimator, ChargesItsUpdateCostToTheCallersTimeline) {
  TestBedOptions o;
  o.cost.wss_estimator_update_ns = 100.0;
  TestBed bed(o);
  sim::ExecContext& ctx = bed.ctx();
  WssEstimator est(0.5);
  est.begin_window(1, ctx.clock.now());
  std::vector<Gva> pages(50);
  for (u64 i = 0; i < pages.size(); ++i) pages[i] = i * kPageSize;
  const VirtDuration before = ctx.clock.now();
  est.note_interval(1, pages, ctx.clock.now() + msecs(1), ctx);
  const double charged_ns = (ctx.clock.now() - before).count() * 1e3;
  EXPECT_NEAR(charged_ns, 100.0 * 50.0, 1e-6)
      << "per-page fold cost charged to virtual time";
}

// ---- PolicyEngine: pure decision logic --------------------------------------

TEST(PolicyEngine, HysteresisBandAndFlapDamping) {
  PolicyConfig cfg;
  cfg.hot = Technique::kEpml;
  cfg.cold = Technique::kWp;
  cfg.cold_rate_threshold = 1.0;
  cfg.hot_rate_threshold = 10.0;
  cfg.warmup_windows = 1;
  cfg.min_windows_between_switches = 2;
  PolicyEngine eng(cfg);

  WssSignal sig;
  sig.windows = 0;
  sig.dirty_rate = 100.0;
  EXPECT_EQ(eng.decide(sig, Technique::kWp), Technique::kWp) << "warming up";

  sig.windows = 2;
  EXPECT_EQ(eng.decide(sig, Technique::kWp), Technique::kEpml) << "hot rate";
  EXPECT_EQ(eng.switches(), 1u);

  sig.windows = 3;
  sig.dirty_rate = 0.1;  // cold — but the switch was one window ago
  EXPECT_EQ(eng.decide(sig, Technique::kEpml), Technique::kEpml)
      << "flap damping holds the backend";

  sig.windows = 4;
  EXPECT_EQ(eng.decide(sig, Technique::kEpml), Technique::kWp);
  EXPECT_EQ(eng.switches(), 2u);

  sig.windows = 6;
  sig.dirty_rate = 5.0;  // inside the hysteresis band
  EXPECT_EQ(eng.decide(sig, Technique::kWp), Technique::kWp);
  EXPECT_EQ(eng.switches(), 2u);
}

// ---- AdaptiveTracker: runtime switching, loss-freedom, determinism ----------

struct AdaptiveRunResult {
  double final_us = 0.0;
  u64 switches = 0;
  std::vector<Technique> history;
  EventCounters events;
  std::vector<u8> state;
};

// Drive a phase-changing workload through explicit tracker intervals:
// 3 hot write intervals, `cold_intervals` read-only intervals (the dirty
// rate decays to zero), then 3 hot intervals on fresh page ranges whose
// capture is asserted exactly — including the first interval after each
// backend switch, the point where a lossy handoff would drop pages.
AdaptiveRunResult run_phase_changing(unsigned cold_intervals,
                                     bool assert_switching) {
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 192;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  AdaptiveOptions ao;
  ao.initial = Technique::kEpml;
  ao.policy.hot = Technique::kEpml;
  ao.policy.cold = Technique::kWp;
  ao.estimator_alpha = 0.9;  // weight the newest window: fast phase response
  AdaptiveTracker tracker(k, proc, ao);
  tracker.init();
  tracker.begin_interval();

  const auto interval = [&](const std::function<void()>& body) {
    k.scheduler().enter_process(proc.pid());
    body();
    k.scheduler().exit_process(proc.pid());
    std::vector<Gva> got = tracker.collect();
    tracker.begin_interval();
    std::sort(got.begin(), got.end());
    return got;
  };
  const auto write_range = [&](u64 from, u64 n) {
    std::vector<Gva> expect;
    expect.reserve(n);
    for (u64 i = from; i < from + n; ++i) {
      proc.touch_write(base + i * kPageSize);
      expect.push_back(base + i * kPageSize);
    }
    return expect;
  };

  // Phase 1: hot — 64 pages rewritten per interval; stays on EPML.
  for (int w = 0; w < 3; ++w) {
    std::vector<Gva> expect;
    const std::vector<Gva> got =
        interval([&] { expect = write_range(0, 64); });
    EXPECT_EQ(got, expect);
  }
  EXPECT_EQ(tracker.effective_technique(), Technique::kEpml);
  if (assert_switching) EXPECT_EQ(tracker.switches(), 0u);

  // Phase 2: cold — reads only; the EWMA decays to zero and the policy
  // hands off to write-protection.
  for (unsigned w = 0; w < cold_intervals; ++w) {
    const std::vector<Gva> got = interval([&] {
      for (u64 i = 0; i < 64; ++i) proc.touch_read(base + i * kPageSize);
    });
    EXPECT_TRUE(got.empty()) << "no writes in a cold interval";
  }
  if (assert_switching) {
    EXPECT_EQ(tracker.effective_technique(), Technique::kWp)
        << "cold phase must hand off EPML -> wp";
    EXPECT_GE(tracker.switches(), 1u);
    EXPECT_EQ(tracker.switch_history().front(), Technique::kWp);
  }

  // Phase 3: hot again on fresh ranges. The first interval after each
  // switch is where a lossy handoff would drop pages: capture must stay
  // exact through the wp session and the switch back to EPML.
  for (u64 w = 0; w < 3; ++w) {
    std::vector<Gva> expect;
    const std::vector<Gva> got =
        interval([&] { expect = write_range(64 + w * 16, 16); });
    EXPECT_EQ(got, expect) << "interval " << w << " after the cold phase lost pages";
  }
  if (assert_switching) {
    EXPECT_EQ(tracker.effective_technique(), Technique::kEpml)
        << "renewed write pressure must hand back wp -> EPML";
    EXPECT_GE(tracker.switches(), 2u);
    EXPECT_EQ(tracker.switch_history().back(), Technique::kEpml);
  }
  EXPECT_EQ(bed.ctx().counters.get(Event::kPolicySwitch), tracker.switches());
  EXPECT_EQ(tracker.dropped(), 0u);

  AdaptiveRunResult r;
  r.switches = tracker.switches();
  r.history = tracker.switch_history();
  tracker.shutdown();
  bed.audit();  // includes the POL-1 orphaned-protection pass
  r.final_us = bed.ctx().clock.now().count();
  r.events = bed.ctx().counters;
  // The snapshot quiescence contract wants the OoH module unloaded (the
  // EPML backend leaves it resident, one module per guest).
  k.unload_ooh_module();
  r.state = bed.state_bytes();
  return r;
}

TEST(AdaptiveTracker, SwitchesBackendsAcrossPhasesWithoutLosingPages) {
  const AdaptiveRunResult r = run_phase_changing(10, /*assert_switching=*/true);
  EXPECT_GE(r.switches, 2u);
}

TEST(AdaptiveTracker, SameSeedSwitchingRunsReplayBitIdentically) {
  const AdaptiveRunResult a = run_phase_changing(10, /*assert_switching=*/false);
  const AdaptiveRunResult b = run_phase_changing(10, /*assert_switching=*/false);
  ASSERT_GE(a.switches, 1u) << "the replayed run must actually switch";
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.final_us, b.final_us) << "virtual clocks diverged";
  EXPECT_TRUE(a.events == b.events) << "event streams diverged";
  EXPECT_EQ(a.state, b.state) << "machine state diverged";
}

TEST(AdaptiveTracker, AggregatesPhasesAndReportsAdaptiveTechnique) {
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(32 * kPageSize);
  for (u64 i = 0; i < 32; ++i) proc.touch_write(base + i * kPageSize);

  auto tracker = make_tracker(Technique::kAdaptive, k, proc);
  EXPECT_EQ(tracker->technique(), Technique::kAdaptive);
  tracker->init();
  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < 32; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  EXPECT_EQ(tracker->collect().size(), 32u);
  tracker->shutdown();
  EXPECT_EQ(tracker->effective_technique(), Technique::kEpml)
      << "default initial backend";
  EXPECT_EQ(tracker->phases().intervals, 1u);
  EXPECT_EQ(tracker->phases().collected_pages, 32u);
  bed.audit();
}

// ---- ConvergencePredictor: unit behaviour -----------------------------------

TEST(ConvergencePredictor, ComparesDirtyRateAgainstSendBandwidth) {
  CostModel cost;
  cost.migration_send_page_us = 100.0;  // 10 pages/ms transport
  ConvergencePredictor p(0.5);
  EXPECT_DOUBLE_EQ(ConvergencePredictor::send_rate(cost), 10.0);
  EXPECT_FALSE(p.non_convergent(cost)) << "no observations yet";

  p.observe_round(100, msecs(2.0));  // 50 pages/ms > 10
  EXPECT_TRUE(p.non_convergent(cost));
  p.note_verdict(true);
  p.observe_round(100, msecs(2.0));
  EXPECT_TRUE(p.non_convergent(cost));
  p.note_verdict(true);
  EXPECT_EQ(p.sustained_non_convergence(), 2u);

  // A quiet round drags the EWMA down and resets the sustained streak.
  p.observe_round(1, msecs(10.0));
  p.note_verdict(p.non_convergent(cost));
  EXPECT_LT(p.dirty_rate(), 50.0);
  p.observe_round(0, msecs(10.0));
  p.observe_round(0, msecs(10.0));
  EXPECT_FALSE(p.non_convergent(cost));
  p.note_verdict(false);
  EXPECT_EQ(p.sustained_non_convergence(), 0u);
  EXPECT_EQ(p.rounds(), 5u);
}

}  // namespace
}  // namespace ooh::lib
