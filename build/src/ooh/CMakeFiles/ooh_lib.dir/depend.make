# Empty dependencies file for ooh_lib.
# This may be replaced when dependencies are built.
