file(REMOVE_RECURSE
  "CMakeFiles/ooh_sim.dir/ept.cpp.o"
  "CMakeFiles/ooh_sim.dir/ept.cpp.o.d"
  "CMakeFiles/ooh_sim.dir/mmu.cpp.o"
  "CMakeFiles/ooh_sim.dir/mmu.cpp.o.d"
  "CMakeFiles/ooh_sim.dir/page_table.cpp.o"
  "CMakeFiles/ooh_sim.dir/page_table.cpp.o.d"
  "CMakeFiles/ooh_sim.dir/phys_mem.cpp.o"
  "CMakeFiles/ooh_sim.dir/phys_mem.cpp.o.d"
  "CMakeFiles/ooh_sim.dir/tlb.cpp.o"
  "CMakeFiles/ooh_sim.dir/tlb.cpp.o.d"
  "CMakeFiles/ooh_sim.dir/vcpu.cpp.o"
  "CMakeFiles/ooh_sim.dir/vcpu.cpp.o.d"
  "libooh_sim.a"
  "libooh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
