file(REMOVE_RECURSE
  "CMakeFiles/gc_demo.dir/gc_demo.cpp.o"
  "CMakeFiles/gc_demo.dir/gc_demo.cpp.o.d"
  "gc_demo"
  "gc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
