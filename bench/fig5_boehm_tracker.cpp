// Figure 5: Boehm GC execution time per technique (/proc, SPML, EPML),
// highlighting the first collection cycle -- where SPML performs the
// reverse mapping -- against the later cycles.
//
// Paper's findings: ignoring the first cycle, SPML outperforms /proc by up
// to 36%; EPML outperforms /proc by up to 58% and SPML by up to 47%.
#include "boehm_common.hpp"
#include "ooh/epoch_run.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/64);
  bench::print_header("Figure 5", "Boehm GC time per technique (first cycle highlighted)");

  struct App {
    std::string_view name;
    wl::ConfigSize size;
  };
  const std::vector<App> apps = {
      {"GCBench", wl::ConfigSize::kSmall},    {"GCBench", wl::ConfigSize::kMedium},
      {"GCBench", wl::ConfigSize::kLarge},    {"histogram", wl::ConfigSize::kLarge},
      {"word-count", wl::ConfigSize::kMedium}, {"string-match", wl::ConfigSize::kLarge},
  };

  // Each (app, technique) cell builds its own TestBed inside run_boehm, so
  // the 18 cells are independent epochs: fan them across the epoch pool
  // (OOH_EPOCH_THREADS / --threads; EPOCH-1 keeps the emitted bytes
  // identical to the serial loop) and render rows in submission order.
  struct Cell {
    App app;
    lib::Technique tech;
  };
  std::vector<Cell> cells;
  for (const App& app : apps) {
    for (const lib::Technique tech :
         {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
      cells.push_back({app, tech});
    }
  }
  const std::vector<bench::BoehmRun> results = lib::run_cells<bench::BoehmRun>(
      cells.size(),
      [&](std::size_t i) {
        return bench::run_boehm(cells[i].app.name, cells[i].app.size, args.scale,
                                cells[i].tech);
      },
      args.threads);

  TextTable t({"application + technique", "cycles", "GC total (ms)", "cycle1 (ms)",
               "later avg (ms)"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const App& app = cells[i].app;
    const bench::BoehmRun& r = results[i];
    t.add_row(std::string(app.name) + " (" + std::string(wl::config_name(app.size)) + ") " +
                  std::string(lib::technique_name(cells[i].tech)),
              {static_cast<double>(r.cycles), r.gc_total_us / 1e3,
               r.gc_first_cycle_us / 1e3, r.gc_later_avg_us / 1e3},
              2);
  }
  t.print(std::cout);
  std::printf("\nShape check: SPML's cycle 1 dwarfs its later cycles (reverse map);\n"
              "EPML has the lowest GC time overall.\n");
  return 0;
}
