# CMake generated Testfile for 
# Source directory: /root/repo/src/trackers/boehmgc
# Build directory: /root/repo/build/src/trackers/boehmgc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
