file(REMOVE_RECURSE
  "libooh_boehmgc.a"
)
