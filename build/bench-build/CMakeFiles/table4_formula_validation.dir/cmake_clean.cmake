file(REMOVE_RECURSE
  "../bench/table4_formula_validation"
  "../bench/table4_formula_validation.pdb"
  "CMakeFiles/table4_formula_validation.dir/table4_formula_validation.cpp.o"
  "CMakeFiles/table4_formula_validation.dir/table4_formula_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_formula_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
