// userfaultfd clone: miss and write_protect modes (paper §III-A).
//
// Faults on registered ranges suspend the faulting process and synchronously
// run the Tracker's handler (they time-share one CPU); the handler records
// the address and write-unprotects the page, which resumes the Tracked.
#pragma once

#include <functional>
#include <unordered_map>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "guest/process.hpp"
#include "sim/page_track.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::guest {

class GuestKernel;

/// Registered on the kGuestWpFault layer (ahead of the soft-dirty handler):
/// it claims exactly the faults whose PTE carries the uffd_wp marker.
class Uffd final : public sim::PageTrackNotifier {
 public:
  explicit Uffd(GuestKernel& kernel) : kernel_(kernel) {}

  /// Tracker-side handler, run while the faulting process is suspended.
  using Handler = std::function<void(Gva page)>;

  /// Register every VMA of `proc` for write-protect notifications and
  /// write-protect all present PTEs (ioctl register + wp; metric M2).
  /// If `tracker_bucket` is non-null, the time spent servicing each fault in
  /// userspace is also attributed to it (Table I's "On Tracker" column).
  void register_wp(Process& proc, Handler on_fault,
                   VirtDuration* tracker_bucket = nullptr);

  /// Register for missing-page (first touch) notifications.
  void register_missing(Process& proc, Handler on_fault);

  /// Re-write-protect the registered range for a new tracking interval.
  void rearm_wp(Process& proc);

  void unregister(Process& proc);
  [[nodiscard]] bool wp_registered(const Process& proc) const;
  [[nodiscard]] bool missing_registered(const Process& proc) const;

  // ---- kernel fault-path entry points ---------------------------------------
  /// Deliver a write-protect fault; resolves (unprotects) before returning.
  void deliver_wp_fault(Process& proc, Gva gva_page);
  /// Deliver a missing fault (before the kernel maps the page).
  void deliver_missing_fault(Process& proc, Gva gva_page);

  // ---- sim::PageTrackNotifier (kGuestWpFault) -------------------------------
  /// Handles the fault iff the PTE carries the uffd_wp marker: deliver to
  /// the registered tracker, or clear a marker left by a torn-down
  /// registration. Returns false (unhandled) otherwise.
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;

 private:
  friend struct ooh::snapshot::Access;

  struct Registration {
    Handler on_wp;
    Handler on_missing;
    VirtDuration* tracker_bucket = nullptr;
  };
  GuestKernel& kernel_;
  std::unordered_map<u32, Registration> regs_;
};

}  // namespace ooh::guest
