#include "base/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ooh {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double sq = 0.0;
  for (double x : xs) sq += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(sq / static_cast<double>(xs.size() - 1)) : 0.0;
  return s;
}

double overhead_pct(double measured, double baseline) {
  if (baseline <= 0.0) throw std::invalid_argument("overhead_pct: nonpositive baseline");
  return (measured - baseline) / baseline * 100.0;
}

double speedup(double baseline, double measured) {
  if (measured <= 0.0) throw std::invalid_argument("speedup: nonpositive measured");
  return baseline / measured;
}

}  // namespace ooh
