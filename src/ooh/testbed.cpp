#include "ooh/testbed.hpp"

namespace ooh::lib {

TestBed::TestBed(const TestBedOptions& opts) {
  machine_ = std::make_unique<sim::Machine>(opts.host_mem_bytes, opts.cost);
  hypervisor_ = std::make_unique<hv::Hypervisor>(*machine_);
  kernels_.reserve(opts.tenant_vms);
  for (unsigned i = 0; i < opts.tenant_vms; ++i) {
    hv::Vm& vm = hypervisor_->create_vm(opts.vm_mem_bytes);
    kernels_.push_back(std::make_unique<guest::GuestKernel>(*hypervisor_, vm));
    kernels_.back()->scheduler().set_quantum(opts.sched_quantum);
  }
}

}  // namespace ooh::lib
