// The six DirtyTracker backends (paper §III and §IV, plus the
// KVM-page_track-style write-protection backend built on the page-track
// notifier chain).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "ooh/tracker.hpp"
#include "sim/page_track.hpp"

namespace ooh::guest {
class OohModule;
}

namespace ooh::lib {

/// /proc/PID/{clear_refs,pagemap} soft-dirty tracking -- the default in both
/// CRIU and Boehm GC (§III-B).
class ProcTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kProc; }

 protected:
  void do_init() override {}
  void do_begin_interval() override;
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override {}
};

/// userfaultfd write-protect tracking (§III-A). Dirty addresses accumulate
/// synchronously while the Tracked faults; collect() just takes the set.
class UfdTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kUfd; }

 protected:
  void do_init() override;
  void do_begin_interval() override;
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override;

 private:
  std::unordered_set<Gva> pending_;
  bool first_interval_ = true;
};

/// Shadow PML (§IV-C): the hypervisor emulates per-process PML via
/// enable/disable_logging hypercalls; the library reverse-maps logged GPAs
/// to GVAs by parsing the page table through /proc -- the measured
/// bottleneck (Fig. 3).
class SpmlTracker final : public DirtyTracker, public sim::PageTrackNotifier {
 public:
  using DirtyTracker::DirtyTracker;
  ~SpmlTracker() override;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kSpml; }

  // ---- sim::PageTrackNotifier (flush chain only) ----------------------------
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;
  /// munmap of a tracked range: drop the range's GPA -> GVA cache entries —
  /// a recycled frame would otherwise reverse-map to the old address.
  void on_track_flush(u32 pid, Gva start, Gva end) override;

 protected:
  void do_init() override;
  void do_begin_interval() override {}
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override;
  [[nodiscard]] u64 do_dropped() const override;
  [[nodiscard]] Technique fallback_technique() const noexcept override {
    return Technique::kProc;  // no PML buffer: degrade to soft-dirty
  }

 private:
  guest::OohModule* module_ = nullptr;
  /// GPA -> GVA index built by reverse mapping. The paper's Boehm
  /// integration reuses first-cycle addresses (§VI-E footnote), so lookups
  /// only pay M16/M17 for GPAs not yet in the cache.
  std::unordered_map<Gpa, Gva> rmap_cache_;
  bool flush_registered_ = false;
};

/// Extended PML (§IV-D): the hardware logs GVAs straight into a guest-level
/// buffer; collection is a plain ring-buffer read.
class EpmlTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kEpml; }

 protected:
  void do_init() override;
  void do_begin_interval() override {}
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override;
  [[nodiscard]] u64 do_dropped() const override;
  [[nodiscard]] Technique fallback_technique() const noexcept override {
    return Technique::kSpml;  // guest buffer page unavailable: degrade to SPML
  }

 private:
  guest::OohModule* module_ = nullptr;
};

/// KVM-page_track-style write-protection tracking, built on the kEptWpFault
/// layer of the page-track notifier chain: init write-protects every EPT
/// entry backing the tracked process; a first write raises an EPT
/// permission fault that records the GVA and un-protects the entry (one
/// VM-exit per dirty page); collect() re-protects the harvested pages.
/// Pages demand-mapped after the protect pass are caught at their EPT
/// dirty-flag transition (kEptDirty), so no dirty page is missed.
class WpTracker final : public DirtyTracker, public sim::PageTrackNotifier {
 public:
  using DirtyTracker::DirtyTracker;
  ~WpTracker() override;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kWp; }

  // ---- sim::PageTrackNotifier (kEptWpFault + kEptDirty) ---------------------
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;

 protected:
  void do_init() override;
  void do_begin_interval() override {}
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override;
  [[nodiscard]] Technique fallback_technique() const noexcept override {
    return Technique::kProc;  // protect pass failed: degrade to soft-dirty
  }

 private:
  /// Write-protect the EPT entries backing `pages` (batch: one TLB shootdown).
  void protect_pages(const std::vector<Gva>& pages);

  std::unordered_set<Gva> pending_;    ///< dirty GVAs since the last collect.
  std::unordered_set<Gpa> protected_;  ///< GPAs whose EPT entry we un-writabled.
  bool registered_ = false;
};

/// Segment-table soft-dirty tracking (Teabe/Tchana-style segmentation): at
/// init() the process's page table is converted to the range-based
/// SegmentTable backend, then the /proc clear_refs + pagemap flow runs
/// unchanged through the shared Mmu walk seam. Translation metadata lives
/// per *segment* (one Pte for a contiguous run), so dirty reporting is a
/// superset of the truth — a write anywhere in a run reports the whole run.
/// The comparison point quantifies what coarse translation metadata costs
/// in precision versus what it saves in walk/arm work.
class SegTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override { return Technique::kSeg; }

 protected:
  void do_init() override;
  void do_begin_interval() override;
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override {}
};

/// The hypothetical zero-cost technique of §VI-B ("oracle"): perfect dirty
/// information with E(C_oracle) = 0. Reads the simulator's ground truth.
class OracleTracker final : public DirtyTracker {
 public:
  using DirtyTracker::DirtyTracker;
  [[nodiscard]] Technique technique() const noexcept override {
    return Technique::kOracle;
  }

 protected:
  void do_init() override {}
  void do_begin_interval() override;
  [[nodiscard]] std::vector<Gva> do_collect() override;
  void do_shutdown() override {}

 private:
  u64 baseline_seq_ = 0;  ///< write sequence at the start of the interval.
};

}  // namespace ooh::lib
