// The page-track notifier chain: one seam through which every
// dirty-producing event of the machine flows exactly once.
//
// KVM solves the "many consumers want to observe guest writes" problem with
// its page_track notifier-head design (kvm_page_track_notifier_node); this
// is the simulator's equivalent, layered by *where* in the walk circuit the
// event originates:
//
//   kGuestPtDirty   a write set a guest-PTE dirty flag (GVA event) — the
//                   EPML trigger point.
//   kEptDirty       a write set an EPT dirty flag (GPA event) — the Intel
//                   PML trigger point.
//   kEptAccessed    an access set an EPT accessed flag (GPA event) — the
//                   read-logging / WSS extension's trigger point.
//   kEptWpFault     a write hit a write-protected EPT entry — the
//                   KVM-page_track-style write-protection trigger point.
//   kGuestWpFault   a write hit a non-writable / uffd-wp guest PTE — the
//                   guest kernel's soft-dirty and userfaultfd trigger point.
//   kPmlDrain       a GPA drained from the hypervisor-level PML buffer is
//                   routed to its consumers (migration bitmap, SPML ring,
//                   ...) — the generalization of the paper's two-flag
//                   enabled_by_guest/enabled_by_hyp coexistence logic
//                   (§IV-C item 3) to N consumers.
//
// Consumers register a PageTrackNotifier on the layers they care about.
// Dispatch order is registration order (deterministic, so virtual-time
// results are reproducible bit-for-bit); each registration carries its own
// enable state and a delivered-event counter. A separate flush chain
// (mirroring KVM's track_flush_slot) tells consumers when an address range
// is torn down so they can drop derived state.
//
// The registry itself charges no virtual time: cost attribution belongs to
// the notifiers, which model the hardware circuit or software handler that
// reacts to the event.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "base/types.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

class Vcpu;

enum class TrackLayer : std::size_t {
  kGuestPtDirty = 0,
  kEptDirty,
  kEptAccessed,
  kEptWpFault,
  kGuestWpFault,
  kPmlDrain,
  kCount
};

inline constexpr std::size_t kTrackLayerCount =
    static_cast<std::size_t>(TrackLayer::kCount);

[[nodiscard]] std::string_view track_layer_name(TrackLayer layer) noexcept;

/// One dirty-producing event. Which fields are meaningful depends on the
/// layer: walk-level layers fill everything they know (the walk has both
/// addresses in hand); kPmlDrain only carries the logged GPA.
struct TrackEvent {
  Vcpu* vcpu = nullptr;  ///< the vCPU whose walk/drain produced the event.
  u32 pid = 0;           ///< guest process (0 when unknown, e.g. drains).
  Gva gva_page = 0;      ///< page-aligned GVA (0 when unknown).
  Gpa gpa_page = 0;      ///< page-aligned GPA (0 when unknown).
  /// Granularity of the leaf whose flag transition produced the event. For
  /// dirty/accessed layers gva_page/gpa_page are then the leaf's *base*:
  /// one flag per leaf means one event per leaf, covering gran_size bytes.
  PageGran gran = PageGran::k4K;
};

class PageTrackNotifier {
 public:
  virtual ~PageTrackNotifier() = default;

  /// React to an event on a layer this notifier registered for. Return true
  /// iff the event was *handled*. Fault layers (kEptWpFault, kGuestWpFault)
  /// stop dispatch at the first handler, mirroring a fault-handler chain;
  /// logging layers always run the whole chain and ignore the result.
  virtual bool on_track(TrackLayer layer, const TrackEvent& ev) = 0;

  /// An address range of `pid` is being torn down (munmap): drop any
  /// derived state (caches, pending logs) covering [start, end).
  /// Mirrors KVM's track_flush_slot.
  virtual void on_track_flush(u32 pid, Gva start, Gva end) {
    (void)pid;
    (void)start;
    (void)end;
  }
};

class WriteTrackRegistry {
 public:
  /// Append `n` to `layer`'s chain (dispatch order == registration order).
  /// Registrations start enabled. Registering the same notifier twice on
  /// one layer is a logic error.
  void register_notifier(TrackLayer layer, PageTrackNotifier* n, bool enabled = true);
  void unregister_notifier(TrackLayer layer, PageTrackNotifier* n);
  [[nodiscard]] bool registered(TrackLayer layer, const PageTrackNotifier* n) const noexcept;

  /// Per-consumer enable state: a disabled registration keeps its chain
  /// position and counters but receives no events.
  void set_enabled(TrackLayer layer, PageTrackNotifier* n, bool enabled);
  [[nodiscard]] bool enabled(TrackLayer layer, const PageTrackNotifier* n) const noexcept;
  /// True iff at least one enabled notifier sits on `layer`.
  [[nodiscard]] bool any_enabled(TrackLayer layer) const noexcept;

  /// Dispatch `ev` to `layer`'s enabled notifiers in registration order.
  /// Returns true iff some notifier handled it; fault layers stop at the
  /// first handler, logging layers always run the full chain.
  bool dispatch(TrackLayer layer, const TrackEvent& ev);

  /// Flush chain: registration independent of the event layers.
  void register_flush(PageTrackNotifier* n);
  void unregister_flush(PageTrackNotifier* n);
  void notify_flush(u32 pid, Gva start, Gva end);

  /// Events delivered to `n` on `layer` since registration (0 if absent).
  [[nodiscard]] u64 events_delivered(TrackLayer layer, const PageTrackNotifier* n) const noexcept;
  /// Total events dispatched on `layer` (delivered or not).
  [[nodiscard]] u64 events_dispatched(TrackLayer layer) const noexcept;

  [[nodiscard]] std::size_t notifier_count(TrackLayer layer) const noexcept {
    return chain(layer).size();
  }

  /// Read-only visit of `layer`'s chain in dispatch order as
  /// fn(const PageTrackNotifier*, enabled, delivered); the coherence oracle
  /// uses this to audit the registry without a mutation path.
  template <typename Fn>
  void for_each_registration(TrackLayer layer, Fn&& fn) const {
    for (const Registration& r : chain(layer)) fn(r.notifier, r.enabled, r.delivered);
  }

  /// Read-only visit of the flush chain as fn(const PageTrackNotifier*).
  template <typename Fn>
  void for_each_flush(Fn&& fn) const {
    for (const PageTrackNotifier* n : flush_chain_) fn(n);
  }

 private:
  friend struct ooh::snapshot::Access;

  struct Registration {
    PageTrackNotifier* notifier = nullptr;
    bool enabled = true;
    u64 delivered = 0;
  };
  struct Chain {
    std::vector<Registration> regs;
    u64 dispatched = 0;
  };

  [[nodiscard]] static constexpr bool stops_at_first_handler(TrackLayer layer) noexcept {
    return layer == TrackLayer::kEptWpFault || layer == TrackLayer::kGuestWpFault;
  }
  [[nodiscard]] const std::vector<Registration>& chain(TrackLayer layer) const noexcept {
    return chains_[static_cast<std::size_t>(layer)].regs;
  }
  [[nodiscard]] std::vector<Registration>& chain(TrackLayer layer) noexcept {
    return chains_[static_cast<std::size_t>(layer)].regs;
  }

  Chain chains_[kTrackLayerCount];
  std::vector<PageTrackNotifier*> flush_chain_;
};

// ---- built-in hardware circuits ---------------------------------------------
//
// The PML logging circuits are themselves consumers of the chain: the walk
// dispatches the dirty-flag transition, and the circuit — if its VMCS
// controls arm it — performs the hardware store into the PML buffer. The
// vCPU registers both at construction, first in their chains, so software
// consumers added later observe events *after* the hardware logged them,
// exactly as on a real machine.

/// Hypervisor-level PML (original Intel PML) + the read-logging extension.
/// kEptDirty: a write that set an EPT dirty flag logs the GPA at
/// VMCS.PML_ADDRESS[PML_INDEX--]; index underflow raises a PML-full VM-exit
/// *before* logging (SDM). kEptAccessed: with kEnablePmlReadLog, an
/// accessed-flag transition logs too (WSS estimation).
class HypPmlLogger final : public PageTrackNotifier {
 public:
  bool on_track(TrackLayer layer, const TrackEvent& ev) override;

 private:
  /// `entry` is the value stored into the buffer: a gran-aligned base with
  /// the granularity code in the low bits (pml_entry_encode) — code 0 for
  /// 4 KiB pages keeps default entries bit-identical to plain GPAs.
  static void log_gpa(Vcpu& vcpu, u64 entry);
};

/// Guest-level PML (the EPML extension): a write that set a guest-PTE dirty
/// flag logs the GVA into the buffer named by the shadow VMCS; a full
/// buffer raises a posted self-IPI into the guest OoH module — no VM-exit.
class GuestPmlLogger final : public PageTrackNotifier {
 public:
  bool on_track(TrackLayer layer, const TrackEvent& ev) override;
};

}  // namespace ooh::sim
