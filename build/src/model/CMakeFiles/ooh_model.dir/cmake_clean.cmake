file(REMOVE_RECURSE
  "CMakeFiles/ooh_model.dir/formulas.cpp.o"
  "CMakeFiles/ooh_model.dir/formulas.cpp.o.d"
  "libooh_model.a"
  "libooh_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
