// Virtual CPU: VMX mode, VMCS pointers, and the instruction-level
// operations the OoH designs use (vmread/vmwrite from guest mode, vmcall).
//
// Each vCPU runs on its own ExecContext (clock, counters, TLB), minted by
// the Machine at construction; nothing a vCPU charges or counts touches
// another vCPU's timeline.
#pragma once

#include <memory>

#include "base/counters.hpp"
#include "base/types.hpp"
#include "sim/exec_context.hpp"
#include "sim/hw_if.hpp"
#include "sim/page_track.hpp"
#include "sim/tlb.hpp"
#include "sim/vmcs.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

class Machine;
class Ept;

enum class CpuMode { kVmxRoot, kVmxNonRoot };

class Vcpu {
 public:
  /// `vm_id` names the owning VM (the hypervisor routes exits by it);
  /// `cpu_index` is this vCPU's seat inside that VM (0 = the BSP).
  Vcpu(Machine& machine, u32 vm_id, u32 cpu_index = 0);

  /// Identifier of the owning VM (historically "the vCPU id" when every VM
  /// had exactly one vCPU; kept as the exit-routing key).
  [[nodiscard]] u32 id() const noexcept { return id_; }
  [[nodiscard]] u32 vm_id() const noexcept { return id_; }
  /// Seat inside the VM: index into Vm::vcpu(i) and the mm_cpumask bit this
  /// vCPU occupies in the guest's shootdown protocol.
  [[nodiscard]] u32 cpu_index() const noexcept { return cpu_index_; }
  [[nodiscard]] CpuMode mode() const noexcept { return mode_; }

  /// This vCPU's private execution context (clock, counters, TLB).
  [[nodiscard]] ExecContext& ctx() noexcept { return ctx_; }
  [[nodiscard]] const ExecContext& ctx() const noexcept { return ctx_; }

  [[nodiscard]] Vmcs& vmcs() noexcept { return vmcs_; }
  [[nodiscard]] const Vmcs& vmcs() const noexcept { return vmcs_; }

  /// Shadow VMCS; created by the hypervisor when it enables shadowing.
  [[nodiscard]] Vmcs* shadow_vmcs() noexcept { return shadow_.get(); }
  Vmcs& create_shadow_vmcs();
  void destroy_shadow_vmcs();

  /// Per-field guest access control (the VMREAD/VMWRITE permission bitmaps
  /// of real VMCS shadowing). Only the hypervisor populates these; a guest
  /// vmread/vmwrite on an unlisted field traps (we surface it as an error).
  [[nodiscard]] VmcsFieldSet& shadow_readable() noexcept { return shadow_readable_; }
  [[nodiscard]] VmcsFieldSet& shadow_writable() noexcept { return shadow_writable_; }

  [[nodiscard]] Tlb& tlb() noexcept { return ctx_.tlb; }

  // -- wiring (done by the hypervisor / platform at VM setup) --------------
  void attach(VmExitHandler* exits, GuestIrqSink* irq, Ept* ept) noexcept {
    exits_ = exits;
    irq_ = irq;
    ept_ = ept;
  }
  [[nodiscard]] VmExitHandler* exits() noexcept { return exits_; }
  [[nodiscard]] GuestIrqSink* irq_sink() noexcept { return irq_; }
  [[nodiscard]] Ept* ept() noexcept { return ept_; }

  /// This vCPU's page-track notifier chain. The hardware PML logging
  /// circuits are registered first (at construction), so software consumers
  /// added later always observe events after the hardware logged them.
  [[nodiscard]] WriteTrackRegistry& track_registry() noexcept { return track_; }
  [[nodiscard]] const WriteTrackRegistry& track_registry() const noexcept {
    return track_;
  }

  /// The permanent hardware logging circuits (identity only; the coherence
  /// oracle verifies they head their chains).
  [[nodiscard]] const PageTrackNotifier* hyp_pml_circuit() const noexcept {
    return &hyp_pml_circuit_;
  }
  [[nodiscard]] const PageTrackNotifier* guest_pml_circuit() const noexcept {
    return &guest_pml_circuit_;
  }

  // -- guest-mode instructions ----------------------------------------------
  /// vmread executed in VMX non-root mode. Requires VMCS shadowing; reads
  /// the shadow VMCS without a VM-exit. Charges Table V(a) M7.
  [[nodiscard]] u64 guest_vmread(VmcsField f);

  /// vmwrite executed in VMX non-root mode against the shadow VMCS (M8).
  /// Implements the EPML ISA extension: a write to kGuestPmlAddress takes a
  /// GPA and stores the EPT-translated HPA, so the guest never sees HPAs
  /// and the page-walk circuit can log straight to RAM.
  void guest_vmwrite(VmcsField f, u64 value);

  /// vmcall: transition to root mode, dispatch to the hypervisor, return.
  u64 hypercall(Hypercall nr, u64 a0 = 0, u64 a1 = 0);

  // -- transitions (used by exit paths and the hypervisor) ------------------
  /// Run `fn` in VMX root mode, charging one VM-exit round trip.
  template <typename Fn>
  auto vmexit_to_root(Event reason, Fn&& fn) -> decltype(fn()) {
    begin_exit(reason);
    struct Restore {
      Vcpu& cpu;
      ~Restore() { cpu.mode_ = CpuMode::kVmxNonRoot; }
    } restore{*this};
    return fn();
  }

 private:
  friend struct ooh::snapshot::Access;

  void begin_exit(Event reason);

  ExecContext& ctx_;
  u32 id_;
  u32 cpu_index_;
  CpuMode mode_ = CpuMode::kVmxNonRoot;
  Vmcs vmcs_{false};
  std::unique_ptr<Vmcs> shadow_;
  VmcsFieldSet shadow_readable_;
  VmcsFieldSet shadow_writable_;
  VmExitHandler* exits_ = nullptr;
  GuestIrqSink* irq_ = nullptr;
  Ept* ept_ = nullptr;
  WriteTrackRegistry track_;
  HypPmlLogger hyp_pml_circuit_;
  GuestPmlLogger guest_pml_circuit_;
};

}  // namespace ooh::sim
