// CLI driver: run any benchmark application under any tracking technique
// and print a one-page report (times, phases, capture, event census).
//
//   $ ./run_app --app baby --size small --tech epml --scale 64
//   $ ./run_app --app histogram --size large --tech proc --period-ms 5
//   $ ./run_app --list
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "workloads/registry.hpp"

using namespace ooh;

namespace {

struct Options {
  std::string app = "baby";
  wl::ConfigSize size = wl::ConfigSize::kSmall;
  std::optional<lib::Technique> tech = lib::Technique::kEpml;
  u64 scale = 64;
  double period_ms = 0.0;
  bool list = false;
};

void usage() {
  std::printf(
      "usage: run_app [--app NAME] [--size small|medium|large]\n"
      "               [--tech proc|ufd|spml|epml|oracle|none]\n"
      "               [--scale N] [--period-ms MS] [--list]\n");
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--list") {
      o.list = true;
    } else if (a == "--app") {
      if (const char* v = next()) o.app = v; else return false;
    } else if (a == "--size") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "small") == 0) o.size = wl::ConfigSize::kSmall;
      else if (std::strcmp(v, "medium") == 0) o.size = wl::ConfigSize::kMedium;
      else if (std::strcmp(v, "large") == 0) o.size = wl::ConfigSize::kLarge;
      else return false;
    } else if (a == "--tech") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "proc") == 0) o.tech = lib::Technique::kProc;
      else if (std::strcmp(v, "ufd") == 0) o.tech = lib::Technique::kUfd;
      else if (std::strcmp(v, "spml") == 0) o.tech = lib::Technique::kSpml;
      else if (std::strcmp(v, "epml") == 0) o.tech = lib::Technique::kEpml;
      else if (std::strcmp(v, "oracle") == 0) o.tech = lib::Technique::kOracle;
      else if (std::strcmp(v, "none") == 0) o.tech = std::nullopt;
      else return false;
    } else if (a == "--scale") {
      if (const char* v = next()) o.scale = std::strtoull(v, nullptr, 10);
      else return false;
    } else if (a == "--period-ms") {
      if (const char* v = next()) o.period_ms = std::strtod(v, nullptr);
      else return false;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }
  if (o.list) {
    std::printf("applications (Table III):\n");
    for (const wl::WorkloadSpec& s : wl::table3_specs()) {
      std::printf("  %-16s %-7s %8.1f MB\n", std::string(s.app).c_str(),
                  std::string(wl::config_name(s.size)).c_str(),
                  static_cast<double>(s.paper_footprint_bytes) / kMiB);
    }
    std::printf("  %-16s %-7s (microbench, Listing 1)\n", "array-parser", "-");
    return 0;
  }

  lib::TestBed bed;
  auto& kernel = bed.kernel();
  auto& proc = kernel.create_process();
  std::unique_ptr<wl::Workload> w;
  try {
    w = wl::make_workload(o.app, o.size, o.scale);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("app=%s size=%s scale=1/%llu footprint~%.1f MB tech=%s\n",
              o.app.c_str(), std::string(wl::config_name(o.size)).c_str(),
              static_cast<unsigned long long>(o.scale),
              static_cast<double>(w->footprint_bytes()) / kMiB,
              o.tech ? std::string(lib::technique_name(*o.tech)).c_str() : "none");
  w->setup(proc);

  std::unique_ptr<lib::DirtyTracker> tracker;
  if (o.tech) tracker = lib::make_tracker(*o.tech, kernel, proc);
  lib::RunOptions ropts;
  ropts.collect_period = msecs(o.period_ms);
  const lib::RunResult r = lib::run_tracked(kernel, proc, w->runner(), tracker.get(), ropts);

  std::printf("\ntracked time        : %s\n", format_duration(r.tracked_time).c_str());
  if (tracker) {
    std::printf("tracker time        : %s  (init %s | arm %s | collect %s | monitor %s)\n",
                format_duration(r.tracker_time()).c_str(),
                format_duration(r.phases.init).c_str(),
                format_duration(r.phases.arm).c_str(),
                format_duration(r.phases.collect).c_str(),
                format_duration(r.phases.monitor).c_str());
    std::printf("dirty pages         : %llu reported / %llu truth (capture %.1f%%, dropped %llu)\n",
                static_cast<unsigned long long>(r.unique_pages),
                static_cast<unsigned long long>(r.truth_pages),
                r.capture_ratio() * 100.0, static_cast<unsigned long long>(r.dropped));
    tracker->shutdown();
  } else {
    std::printf("dirty pages (truth) : %llu\n",
                static_cast<unsigned long long>(r.truth_pages));
  }
  std::printf("\nevent census:\n%s", r.events.to_string().c_str());
  return 0;
}
