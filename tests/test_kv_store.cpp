// Real key-value store tests: the data-backed KvEngine is a genuine
// open-addressing store in guest memory. The flagship scenario checkpoints
// a live store mid-ingest and queries the restored copy.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "trackers/criu/checkpoint.hpp"
#include "workloads/tkrzw.hpp"

namespace ooh::wl {
namespace {

TEST(KvStore, PutGetRoundTrip) {
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  CacheEngine store(/*iterations=*/1000, /*cap_rec_num=*/4096, /*record_bytes=*/64,
                    /*data_backed=*/true);
  store.setup(proc);
  Rng rng(42);
  std::unordered_map<u64, u64> reference;
  for (int i = 0; i < 1000; ++i) {
    const u64 key = 1 + rng.below(2000);  // collisions + updates
    const u64 value = rng.next();
    store.put(proc, key, value);
    reference[key] = value;
  }
  for (const auto& [key, value] : reference) {
    const auto got = store.get(proc, key);
    ASSERT_TRUE(got.has_value()) << "key " << key;
    EXPECT_EQ(*got, value);
  }
  EXPECT_FALSE(store.get(proc, 999'999).has_value());
  EXPECT_THROW(store.put(proc, 0, 1), std::invalid_argument);
}

TEST(KvStore, RequiresDataBackedMode) {
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  BabyEngine store(100, 80);  // metadata-only
  store.setup(proc);
  EXPECT_THROW(store.put(proc, 1, 2), std::logic_error);
  EXPECT_THROW((void)store.get(proc, 1), std::logic_error);
}

TEST(KvStore, FullStoreThrows) {
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  // Capacity = one page / 16 = 256 slots.
  TinyEngine store(/*iterations=*/10, /*buckets=*/1, /*record_bytes=*/16,
                   /*data_backed=*/true);
  store.setup(proc);
  for (u64 k = 1; k <= store.kv_capacity(); ++k) store.put(proc, k, k);
  EXPECT_THROW(store.put(proc, 100'000, 1), std::bad_alloc);
}

TEST(KvStore, CheckpointedStoreAnswersQueriesAfterRestore) {
  // The paper's checkpointing story end to end: a live KV store is
  // checkpointed with EPML dirty tracking while ingesting; the restored
  // process answers every query with the latest values.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  StdHashEngine store(/*iterations=*/1, /*buckets=*/8192, /*record_bytes=*/64,
                      /*data_backed=*/true);
  store.setup(proc);

  // Phase 1: initial dataset, before tracking starts.
  for (u64 key = 1; key <= 500; ++key) store.put(proc, key, key * 10);

  // Phase 2: checkpoint while the ingest continues (some keys updated).
  criu::Checkpointer cp(k, lib::Technique::kEpml);
  const criu::CheckpointResult res =
      cp.checkpoint_during(proc, [&](guest::Process& p) {
        for (u64 key = 400; key <= 900; ++key) store.put(p, key, key * 20);
      });

  guest::Process& restored = k.create_process();
  criu::restore(restored, res.image);

  // The restored store must serve the *latest* state: keys 1..399 original,
  // 400..900 updated.
  for (u64 key = 1; key <= 900; key += 13) {
    const auto got = store.get(restored, key);
    ASSERT_TRUE(got.has_value()) << "key " << key;
    EXPECT_EQ(*got, key < 400 ? key * 10 : key * 20) << "key " << key;
  }
  EXPECT_FALSE(store.get(restored, 5000).has_value());
}

TEST(KvStore, IncrementalSessionTracksOngoingIngest) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  CacheEngine store(/*iterations=*/1, /*cap_rec_num=*/8192, /*record_bytes=*/64,
                    /*data_backed=*/true);
  store.setup(proc);
  for (u64 key = 1; key <= 100; ++key) store.put(proc, key, key);

  criu::IncrementalSession session(k, lib::Technique::kEpml, proc);
  for (int step = 1; step <= 3; ++step) {
    (void)session.step([&](guest::Process& p) {
      for (u64 key = 1; key <= 100; ++key) store.put(p, key, key * 100 * step);
    });
    guest::Process& restored = k.create_process();
    criu::restore(restored, session.image());
    for (u64 key = 1; key <= 100; key += 7) {
      const auto got = store.get(restored, key);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, key * 100 * static_cast<u64>(step)) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace ooh::wl
