#include "workloads/registry.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "workloads/gcbench.hpp"
#include "workloads/microbench.hpp"
#include "workloads/phoenix.hpp"
#include "workloads/tkrzw.hpp"

namespace ooh::wl {
namespace {

constexpr u64 MB(double v) { return static_cast<u64>(v * 1024.0 * 1024.0); }

[[nodiscard]] std::size_t idx(ConfigSize s) { return static_cast<std::size_t>(s); }

/// Integer square root of the divisor, for 2-D workloads whose footprint is
/// quadratic in the dimension parameter.
[[nodiscard]] u64 sqrt_div(u64 d) {
  return std::max<u64>(1, static_cast<u64>(std::llround(std::sqrt(static_cast<double>(d)))));
}

}  // namespace

const std::vector<WorkloadSpec>& table3_specs() {
  static const std::vector<WorkloadSpec> specs = {
      {"GCBench", ConfigSize::kSmall, MB(15.07)},
      {"GCBench", ConfigSize::kMedium, MB(67.76)},
      {"GCBench", ConfigSize::kLarge, MB(223.41)},
      {"histogram", ConfigSize::kSmall, MB(102.27)},
      {"histogram", ConfigSize::kMedium, MB(441.28)},
      {"histogram", ConfigSize::kLarge, MB(1525.76)},
      {"kmeans", ConfigSize::kSmall, MB(4.26)},
      {"kmeans", ConfigSize::kMedium, MB(16.41)},
      {"kmeans", ConfigSize::kLarge, MB(195.64)},
      {"matrix-multiply", ConfigSize::kSmall, MB(5.56)},
      {"matrix-multiply", ConfigSize::kMedium, MB(16.21)},
      {"matrix-multiply", ConfigSize::kLarge, MB(47.33)},
      {"pca", ConfigSize::kSmall, MB(8.12)},
      {"pca", ConfigSize::kMedium, MB(97.85)},
      {"pca", ConfigSize::kLarge, MB(195.50)},
      {"string-match", ConfigSize::kSmall, MB(56.40)},
      {"string-match", ConfigSize::kMedium, MB(106.14)},
      {"string-match", ConfigSize::kLarge, MB(212.09)},
      {"word-count", ConfigSize::kSmall, MB(100.65)},
      {"word-count", ConfigSize::kMedium, MB(143.99)},
      {"word-count", ConfigSize::kLarge, MB(205.88)},
      {"baby", ConfigSize::kSmall, MB(253.64)},
      {"baby", ConfigSize::kMedium, MB(421.48)},
      {"baby", ConfigSize::kLarge, MB(848.56)},
      {"cache", ConfigSize::kSmall, MB(218.21)},
      {"cache", ConfigSize::kMedium, MB(361.91)},
      {"cache", ConfigSize::kLarge, MB(721.46)},
      {"stdhash", ConfigSize::kSmall, MB(358.64)},
      {"stdhash", ConfigSize::kMedium, MB(595.80)},
      {"stdhash", ConfigSize::kLarge, MB(1208.32)},
      {"stdtree", ConfigSize::kSmall, MB(415.12)},
      {"stdtree", ConfigSize::kMedium, MB(694.07)},
      {"stdtree", ConfigSize::kLarge, MB(1413.12)},
      {"tiny", ConfigSize::kSmall, MB(681.35)},
      {"tiny", ConfigSize::kMedium, MB(977.66)},
      {"tiny", ConfigSize::kLarge, MB(1300.48)},
  };
  return specs;
}

const std::vector<std::string_view>& phoenix_apps() {
  static const std::vector<std::string_view> apps = {
      "histogram", "kmeans", "matrix-multiply", "pca", "string-match", "word-count"};
  return apps;
}

const std::vector<std::string_view>& tkrzw_apps() {
  static const std::vector<std::string_view> apps = {"baby", "cache", "stdhash",
                                                     "stdtree", "tiny"};
  return apps;
}

std::unique_ptr<Workload> make_workload(std::string_view app, ConfigSize size,
                                        u64 d) {
  d = std::max<u64>(1, d);
  const std::size_t i = idx(size);

  if (app == "array-parser") {
    static constexpr u64 mem[3] = {10 * kMiB, 100 * kMiB, kGiB};
    return std::make_unique<ArrayParser>(mem[i] / d, /*passes=*/3);
  }
  if (app == "GCBench") {
    // Table III: array 500K/650K/750K, lived depth 16/18/20, stretch 18/20/22.
    static constexpr u64 arr[3] = {500'000, 650'000, 750'000};
    static constexpr int lived[3] = {16, 18, 20};
    static constexpr int stretch[3] = {18, 20, 22};
    const int shrink = static_cast<int>(std::bit_width(d) - 1);  // log2(d)
    return std::make_unique<GcBench>(arr[i] / d, std::max(6, lived[i] - shrink),
                                     std::max(8, stretch[i] - shrink),
                                     /*work_divisor=*/4 * d);
  }
  if (app == "histogram") {
    static constexpr u64 file[3] = {100 * kMiB, 500 * kMiB, 1536 * kMiB};
    return std::make_unique<Histogram>(file[i] / d);
  }
  if (app == "kmeans") {
    // -d D -c C -p P -s 100
    static constexpr u64 dims[3] = {500, 1000, 5000};
    static constexpr u64 clusters[3] = {500, 1000, 5000};
    static constexpr u64 points[3] = {500, 1000, 5000};
    const u64 s = sqrt_div(d);
    return std::make_unique<Kmeans>(dims[i] / s, std::max<u64>(2, clusters[i] / s),
                                    std::max<u64>(4, points[i] / s));
  }
  if (app == "matrix-multiply") {
    static constexpr u64 n[3] = {500, 1000, 2000};
    return std::make_unique<MatrixMultiply>(std::max<u64>(32, n[i] / sqrt_div(d)));
  }
  if (app == "pca") {
    // -r R -c C -s 200
    static constexpr u64 rows[3] = {1000, 5000, 10000};
    static constexpr u64 cols[3] = {1000, 5000, 10000};
    const u64 s = sqrt_div(d);
    return std::make_unique<Pca>(std::max<u64>(16, rows[i] / s),
                                 std::max<u64>(16, cols[i] / s), 200 / std::min<u64>(s, 4));
  }
  if (app == "string-match") {
    static constexpr u64 file[3] = {50 * kMiB, 100 * kMiB, 200 * kMiB};
    return std::make_unique<StringMatch>(file[i] / d);
  }
  if (app == "word-count") {
    static constexpr u64 file[3] = {50 * kMiB, 100 * kMiB, 200 * kMiB};
    return std::make_unique<WordCount>(file[i] / d);
  }
  if (app == "baby") {
    static constexpr u64 iter[3] = {3'000'000, 5'000'000, 10'000'000};
    return std::make_unique<BabyEngine>(iter[i] / d, /*record_bytes=*/80);
  }
  if (app == "cache") {
    static constexpr u64 iter[3] = {3'000'000, 5'000'000, 10'000'000};
    return std::make_unique<CacheEngine>(iter[i] / d, /*cap_rec_num=*/iter[i] / d,
                                         /*record_bytes=*/64);
  }
  if (app == "stdhash") {
    static constexpr u64 iter[3] = {3'000'000, 5'000'000, 10'000'000};
    return std::make_unique<StdHashEngine>(iter[i] / d, /*buckets=*/100'000,
                                           /*record_bytes=*/120);
  }
  if (app == "stdtree") {
    static constexpr u64 iter[3] = {3'000'000, 5'000'000, 10'000'000};
    return std::make_unique<StdTreeEngine>(iter[i] / d, /*record_bytes=*/104);
  }
  if (app == "tiny") {
    // -iter 5M -buckets 30M -threads 3/5/7: each thread injects 5M sets.
    static constexpr u64 threads[3] = {3, 5, 7};
    return std::make_unique<TinyEngine>(5'000'000 * threads[i] / d,
                                        /*buckets=*/30'000'000 / d,
                                        /*record_bytes=*/32);
  }
  throw std::invalid_argument("unknown workload: " + std::string(app));
}

u64 paper_footprint_bytes(std::string_view app, ConfigSize size) {
  for (const WorkloadSpec& s : table3_specs()) {
    if (s.app == app && s.size == size) return s.paper_footprint_bytes;
  }
  throw std::invalid_argument("no Table III entry for " + std::string(app));
}

}  // namespace ooh::wl
