file(REMOVE_RECURSE
  "../bench/fig9_criu_tracked"
  "../bench/fig9_criu_tracked.pdb"
  "CMakeFiles/fig9_criu_tracked.dir/fig9_criu_tracked.cpp.o"
  "CMakeFiles/fig9_criu_tracked.dir/fig9_criu_tracked.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_criu_tracked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
