// Table V: basic costs of the internal metrics M1..M18.
//
// (a) size-independent costs are printed from the calibrated model and
//     cross-checked by *measuring* them through the simulated operations
//     (vmread/vmwrite instructions, hypercalls, ioctls);
// (b) size-dependent totals are printed at the paper's seven sizes.
#include "common.hpp"
#include "guest/ooh_module.hpp"
#include "guest/procfs.hpp"

using namespace ooh;

namespace {

double measure_us(sim::ExecContext& m, const std::function<void()>& op) {
  return m.clock.measure(op).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Table V", "Basic costs of internal metrics M1..M18");

  const CostModel cm = CostModel::paper_calibrated();

  // ---- (a) size-independent metrics, measured through the stack ------------
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  (void)proc.mmap(kMiB);
  sim::ExecContext& m = bed.ctx();
  sim::Vcpu& vcpu = bed.vm().vcpu();

  TextTable a({"metric", "calibrated (us)", "measured (us)", "technique"});
  a.add_row("M1  context switch", {cm.ctx_switch_us, measure_us(m, [&] {
              k.scheduler().run_service(proc.pid(), [] {});
            }) / 2.0},
            3);
  a.add_row({"", "", "", "All"});

  // M3/M9: SPML track = ioctl (M3) + init hypercall (M9) + 2 ctx switches.
  auto& spml_mod = k.load_ooh_module(guest::OohMode::kSpml);
  const double spml_track_us = measure_us(m, [&] { spml_mod.track(proc); });
  a.add_row("M3+M9 ioctl+hc init PML (SPML)",
            {cm.ioctl_init_pml_us + cm.hc_init_pml_us, spml_track_us}, 1);
  const double spml_untrack_us = measure_us(m, [&] { spml_mod.untrack(proc); });
  a.add_row("M4+M11 deactivate (SPML)",
            {cm.ioctl_deactivate_pml_us + cm.hc_deact_pml_us, spml_untrack_us}, 1);
  k.unload_ooh_module();

  auto& epml_mod = k.load_ooh_module(guest::OohMode::kEpml);
  const double epml_track_us = measure_us(m, [&] { epml_mod.track(proc); });
  a.add_row("M3+M10 ioctl+hc init EPML",
            {cm.ioctl_init_pml_us + cm.hc_init_pml_shadow_us, epml_track_us}, 1);

  const double vmread_us = measure_us(
      m, [&] { (void)vcpu.guest_vmread(sim::VmcsField::kGuestPmlIndex); });
  a.add_row("M7  vmread", {cm.vmread_us, vmread_us}, 3);
  const double vmwrite_us =
      measure_us(m, [&] { vcpu.guest_vmwrite(sim::VmcsField::kGuestPmlEnable, 0); });
  a.add_row("M8  vmwrite", {cm.vmwrite_us, vmwrite_us}, 3);
  const double epml_untrack_us = measure_us(m, [&] { epml_mod.untrack(proc); });
  a.add_row("M4+M12 deactivate (EPML)",
            {cm.ioctl_deactivate_pml_us + cm.hc_deact_pml_shadow_us, epml_untrack_us}, 1);
  a.add_row("M13 enable PML logging (hc)", {cm.hc_enable_logging_us, cm.hc_enable_logging_us},
            3);
  a.print(std::cout);

  // ---- (b) size-dependent totals ---------------------------------------------
  std::printf("\nSize-dependent metrics, totals in ms (Table V(b)):\n");
  std::vector<std::string> header = {"metric"};
  const std::vector<u64> sizes = bench::memory_sweep(args.full);
  for (const u64 s : sizes) header.push_back(bench::mem_label(s));
  TextTable b(header);
  const auto row = [&](const char* name, const LogLogInterp& f) {
    std::vector<double> vals;
    for (const u64 s : sizes) vals.push_back(f.at(static_cast<double>(s)) / 1e3);
    b.add_row(name, vals, 3);
  };
  row("M15 clear_refs", cm.m15_clear_refs);
  row("M16 PT walk (user)", cm.m16_pt_walk_user);
  row("M5  PFH kernel", cm.m5_pfh_kernel);
  row("M6  PFH user", cm.m6_pfh_user);
  row("M14 disable logging", cm.m14_disable_logging);
  row("M18 RB copy", cm.m18_rb_copy);
  row("M17 reverse mapping", cm.m17_reverse_map);
  b.print(std::cout);

  // Measured cross-check of one size-dependent metric through procfs.
  {
    lib::TestBed bed2;
    auto& k2 = bed2.kernel();
    auto& p2 = k2.create_process();
    const u64 mem = 10 * kMiB;
    const Gva base = p2.mmap(mem);
    for (u64 off = 0; off < mem; off += kPageSize) p2.touch_write(base + off);
    const double clear_us =
        bed2.ctx().clock.measure([&] { k2.procfs().clear_refs(p2); }).count();
    std::printf("\ncross-check: clear_refs(10MB) measured %.1f us, calibrated %.1f us "
                "(+%.1f us syscall/TLB overhead)\n",
                clear_us, cm.clear_refs_us(mem),
                clear_us - cm.clear_refs_us(mem));
  }
  return 0;
}
