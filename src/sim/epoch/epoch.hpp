// Epoch-parallel simulation: deterministic merge of per-epoch results.
//
// An *epoch* is a slice of simulated work whose boundaries sit at machine
// quiescent points — the places TestBed::save() accepts: no tracker session
// armed, no PML logging enabled, no collection pending, virtual-clock
// buckets closed (see src/sim/snapshot/). Two epoch shapes exist:
//
//   * Independent epochs: units that share no machine state at all (one
//     TestBed per unit — every cell of a figure sweep). These run on the
//     EpochPool in any real-time order; results land in submission-order
//     slots, so the merged output is bit-identical to the serial loop no
//     matter how the OS schedules workers (invariant EPOCH-1).
//
//   * Chained epochs: consecutive slices of ONE workload, split at
//     run_tracked collection intervals. A serial scout records a boundary
//     snapshot before each slice; replaying slice k from snapshot k on any
//     worker must reproduce the scout's per-slice delta exactly — the
//     simulation is a deterministic function of its boundary state.
//
// The merge helpers below are the single place epoch results combine.
// Everything folds left in submission (epoch-index) order; nothing here
// may consult wall-clock time, thread identity, or completion order.
#pragma once

#include <vector>

#include "base/counters.hpp"
#include "base/vtime.hpp"

namespace ooh::epoch {

/// What one epoch contributes to the merged timeline: the virtual time its
/// slice reached, the events it charged, and the dirty-page log it drained
/// (GVAs or GPAs — the epoch owner picks one and sticks to it).
struct EpochDelta {
  VirtDuration clock{};
  EventCounters counters{};
  std::vector<u64> dirty;

  [[nodiscard]] bool operator==(const EpochDelta& o) const {
    return clock == o.clock && counters == o.counters && dirty == o.dirty;
  }
};

/// Left-fold of per-epoch counters in epoch order. EventCounters::merge is
/// commutative integer addition, but folding in a fixed order keeps the
/// contract uniform with the non-commutative merges below.
[[nodiscard]] inline EventCounters merge_counters(const std::vector<EventCounters>& per_epoch) {
  EventCounters total;
  for (const EventCounters& c : per_epoch) total.merge(c);
  return total;
}

/// Independent epochs overlap in virtual time, so the merged clock is the
/// slowest timeline — the same reduction Machine::max_clock applies across
/// vCPU contexts.
[[nodiscard]] inline VirtDuration merge_clock_max(const std::vector<VirtDuration>& per_epoch) {
  VirtDuration m{};
  for (const VirtDuration d : per_epoch) {
    if (d > m) m = d;
  }
  return m;
}

/// Chained epochs tile one timeline end to end: the merged clock is the sum
/// of slice durations.
[[nodiscard]] inline VirtDuration merge_clock_sum(const std::vector<VirtDuration>& per_epoch) {
  VirtDuration m{};
  for (const VirtDuration d : per_epoch) m += d;
  return m;
}

/// Dirty logs concatenate in epoch order — the order a serial run would
/// have produced them. NOT sorted: duplicate-and-order semantics are part
/// of what the determinism pins compare.
[[nodiscard]] inline std::vector<u64> merge_dirty(const std::vector<std::vector<u64>>& per_epoch) {
  std::vector<u64> out;
  std::size_t total = 0;
  for (const auto& v : per_epoch) total += v.size();
  out.reserve(total);
  for (const auto& v : per_epoch) out.insert(out.end(), v.begin(), v.end());
  return out;
}

/// Full merge for chained epochs (clock sums, counters fold, dirty concats).
[[nodiscard]] inline EpochDelta merge_chained(const std::vector<EpochDelta>& per_epoch) {
  EpochDelta out;
  std::vector<EventCounters> cs;
  std::vector<VirtDuration> ds;
  std::vector<std::vector<u64>> logs;
  cs.reserve(per_epoch.size());
  ds.reserve(per_epoch.size());
  logs.reserve(per_epoch.size());
  for (const EpochDelta& e : per_epoch) {
    cs.push_back(e.counters);
    ds.push_back(e.clock);
    logs.push_back(e.dirty);
  }
  out.counters = merge_counters(cs);
  out.clock = merge_clock_sum(ds);
  out.dirty = merge_dirty(logs);
  return out;
}

}  // namespace ooh::epoch
