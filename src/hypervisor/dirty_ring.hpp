// Per-vCPU dirty ring: the KVM-dirty-ring-style harvesting primitive that
// replaces the hypervisor's stop-the-world dirty bitmap.
//
// Each vCPU owns one ring. The vCPU thread is the only producer (pushing GPAs
// as its PML buffer drains) and a single userspace drain thread is the only
// consumer, so the ring is a classic single-producer/single-consumer queue:
// two monotonic indices, release/acquire ordering on each, and no locks. The
// consumer may drain while the producing vCPU keeps running — that is the
// point — and popping charges no virtual time (it is host-side work off the
// guest's critical path).
//
// A full ring never loses an entry: the producer diverts the GPA to a
// producer-private spill log (counting Event::kDirtyRingFull) that harvest
// code folds back in at the next quiescent point. This mirrors KVM's
// "ring full -> exit to userspace" behaviour while keeping the simulation
// loss-free, and gives the kDirtyRingFull fault point a real degraded path
// to exercise.
//
// Memory-ordering contract (audited by the schedule explorer's
// ring_push_pop scenario across all bounded interleavings, and by the lint
// rule relaxed-needs-justification on every relaxed access below):
//
//   tail_  producer-owned cursor. Producer stores it with RELEASE after the
//          slot write so try_pop's ACQUIRE load of tail_ makes the slot
//          contents visible (publication edge P->C). The producer itself
//          reads tail_ relaxed — it is the only writer.
//   head_  consumer-owned cursor. Consumer stores it with RELEASE after the
//          slot read so try_push's ACQUIRE load of head_ proves the slot is
//          no longer being read before the producer may overwrite it on
//          wrap-around (recycling edge C->P). The consumer itself reads
//          head_ relaxed — it is the only writer.
//
// Weakening either RELEASE/ACQUIRE pair to relaxed is the seeded
// missing-release mutation test_sched_explorer.cpp proves the explorer
// catches (SCHED-RACE on the slot bytes).
//
// Invariant RING-1 (docs/invariants.md): popped() <= pushed(), and
// pushed() - popped() <= capacity() at every instant; the spill log is only
// ever touched by the producer between quiescent points.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "base/sync.hpp"
#include "base/types.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::hv {

class DirtyRing {
 public:
  static constexpr std::size_t kDefaultEntries = std::size_t{1} << 16;

  explicit DirtyRing(std::size_t capacity = kDefaultEntries)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "DirtyRing capacity must be a power of two");
  }

  DirtyRing(const DirtyRing&) = delete;
  DirtyRing& operator=(const DirtyRing&) = delete;

  // ---- producer side (the owning vCPU's thread) ---------------------------

  /// Append one GPA; false when the ring is full (caller takes the spill
  /// path). Safe against a concurrently popping consumer.
  [[nodiscard]] bool try_push(u64 value) noexcept {
    // relaxed-ok: tail_ is producer-owned; this thread is its only writer.
    const u64 tail = tail_.load(std::memory_order_relaxed);
    // Acquire pairs with the consumer's head_ release: the slot we are about
    // to overwrite on wrap-around is provably done being read.
    if (tail - head_.load(std::memory_order_acquire) >= capacity_) return false;
    OOH_SYNC_PLAIN_WRITE(&slots_[tail & mask_]);
    slots_[tail & mask_] = value;
    // Release publishes the slot write to the consumer's tail_ acquire.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Loss-free overflow path: producer-private, folded in at harvest time.
  void spill(u64 value) {
    OOH_SYNC_PLAIN_WRITE(&spill_);
    spill_.push_back(value);
  }

  // ---- consumer side (one userspace drain thread) -------------------------

  /// Pop the oldest entry; false when the ring is observed empty. Safe while
  /// the producer keeps pushing.
  [[nodiscard]] bool try_pop(u64& out) noexcept {
    // relaxed-ok: head_ is consumer-owned; this thread is its only writer.
    const u64 head = head_.load(std::memory_order_relaxed);
    // Acquire pairs with the producer's tail_ release: makes the slot
    // contents visible before we read them.
    if (head == tail_.load(std::memory_order_acquire)) return false;
    OOH_SYNC_PLAIN_READ(&slots_[head & mask_]);
    out = slots_[head & mask_];
    // Release hands the slot back to the producer's head_ acquire — it may
    // only be overwritten once this store is visible.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // ---- quiescent-point operations (no vCPU running, no drain in flight) ---

  /// Move the spill log out (harvest folds these after the ring contents).
  [[nodiscard]] std::vector<u64> take_spill() {
    OOH_SYNC_PLAIN_WRITE(&spill_);
    std::vector<u64> out;
    out.swap(spill_);
    return out;
  }

  /// Drop everything (tests / teardown). Cumulative counters are kept.
  void clear() noexcept {
    // relaxed-ok: quiescent-point operation by contract — no concurrent
    // producer or consumer, so there is nothing to order against.
    head_.store(tail_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    OOH_SYNC_PLAIN_WRITE(&spill_);
    spill_.clear();
  }

  // ---- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total entries ever pushed. Acquire so a quiescent reader that joined
  /// the producer thread sees its final slot writes too.
  [[nodiscard]] u64 pushed() const noexcept {
    return tail_.load(std::memory_order_acquire);
  }
  /// Total entries ever popped. Acquire, mirroring pushed().
  [[nodiscard]] u64 popped() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Entries currently in the ring. Exact at quiescent points; a safe
  /// point-in-time snapshot under concurrency.
  [[nodiscard]] std::size_t pending() const noexcept {
    const u64 tail = tail_.load(std::memory_order_acquire);
    const u64 head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }
  [[nodiscard]] std::size_t spill_size() const noexcept { return spill_.size(); }
  [[nodiscard]] const std::vector<u64>& spill_log() const noexcept { return spill_; }

  /// Quiescent-point read-only visit of the entries currently pending in
  /// the ring (oldest first) without consuming them; used by the coherence
  /// oracle's dirty-accounting audit.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    const u64 tail = tail_.load(std::memory_order_acquire);
    for (u64 i = head_.load(std::memory_order_acquire); i != tail; ++i) {
      OOH_SYNC_PLAIN_READ(&slots_[i & mask_]);
      fn(slots_[i & mask_]);
    }
  }

  /// RING-1: index accounting is sane (monotone indices, bounded occupancy).
  [[nodiscard]] bool bounds_ok() const noexcept {
    const u64 tail = tail_.load(std::memory_order_acquire);
    const u64 head = head_.load(std::memory_order_acquire);
    return head <= tail && tail - head <= capacity_;
  }

 private:
  friend struct ooh::snapshot::Access;

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<u64> slots_;
  sync::Atomic<u64> head_{0};  ///< consumer cursor: total entries popped.
  sync::Atomic<u64> tail_{0};  ///< producer cursor: total entries pushed.
  std::vector<u64> spill_;     ///< producer-private overflow (never dropped).
};

}  // namespace ooh::hv
