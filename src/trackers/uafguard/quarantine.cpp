#include "trackers/uafguard/quarantine.hpp"

#include <algorithm>
#include <cstring>

#include "base/clock.hpp"
#include "guest/kernel.hpp"

namespace ooh::uaf {
namespace {

constexpr u64 kAlign = 16;
constexpr double kScanWordNs = 4.0;  // conservative scan, per 8-byte word

[[nodiscard]] constexpr u64 align_up(u64 v) noexcept {
  return (v + kAlign - 1) & ~(kAlign - 1);
}

}  // namespace

QuarantineAllocator::QuarantineAllocator(guest::GuestKernel& kernel,
                                         guest::Process& proc, u64 arena_bytes,
                                         lib::Technique technique)
    : kernel_(kernel), proc_(proc), arena_bytes_(page_ceil(arena_bytes)) {
  arena_ = proc_.mmap(arena_bytes_, /*data_backed=*/true);
  tracker_ = lib::make_tracker(technique, kernel_, proc_);
  tracker_->init();
  tracker_->begin_interval();
}

QuarantineAllocator::~QuarantineAllocator() {
  tracker_->shutdown();
}

Gva QuarantineAllocator::alloc(u64 bytes) {
  if (bytes == 0) throw std::invalid_argument("alloc of zero bytes");
  const u64 size = align_up(bytes);
  Gva addr = 0;
  if (auto it = free_lists_.find(size); it != free_lists_.end() && !it->second.empty()) {
    addr = it->second.back();
    it->second.pop_back();
    blocks_.at(addr).state = State::kLive;
  } else {
    if (bump_ + size > arena_bytes_) throw std::bad_alloc{};
    addr = arena_ + bump_;
    bump_ += size;
    blocks_.emplace(addr, Block{size, State::kLive});
  }
  ++live_;
  // Allocation header store: dirties the page so sweeps will re-scan it.
  proc_.write_u64(addr, 0);
  return addr;
}

void QuarantineAllocator::free(Gva block) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end() || it->second.state != State::kLive) {
    throw std::invalid_argument("free of a non-live block (double free?)");
  }
  it->second.state = State::kQuarantined;
  --live_;
  ++quarantined_;
}

bool QuarantineAllocator::block_pinned(Gva block) const {
  const auto it = blocks_.find(block);
  return it != blocks_.end() && it->second.state != State::kFree;
}

void QuarantineAllocator::scan_page(Gva page) {
  sim::ExecContext& m = kernel_.ctx();
  m.charge_ns(kScanWordNs * static_cast<double>(kPageSize / 8));

  // Drop this page's old contribution to the reference map.
  if (const auto old = page_refs_.find(page); old != page_refs_.end()) {
    for (const Gva block : old->second) {
      if (const auto rp = ref_pages_.find(block); rp != ref_pages_.end()) {
        rp->second.erase(page);
        if (rp->second.empty()) ref_pages_.erase(rp);
      }
    }
    old->second.clear();
  }

  // Conservative word scan: any u64 that lands inside a registered block
  // counts as a reference to it (live or quarantined -- the block may be
  // freed later while the pointer persists on a then-clean page).
  std::vector<u8> bytes(kPageSize);
  proc_.read_bytes(page, bytes);
  std::unordered_set<Gva>& refs = page_refs_[page];
  for (u64 off = 0; off < kPageSize; off += 8) {
    u64 value = 0;
    std::memcpy(&value, bytes.data() + off, 8);
    if (value < arena_ || value >= arena_ + arena_bytes_) continue;
    auto it = blocks_.upper_bound(value);
    if (it == blocks_.begin()) continue;
    --it;
    if (value < it->first + it->second.size) {
      refs.insert(it->first);
      ref_pages_[it->first].insert(page);
    }
  }
  if (refs.empty()) page_refs_.erase(page);
}

void QuarantineAllocator::release_unreferenced() {
  std::vector<Gva> releasable;
  for (const auto& [addr, block] : blocks_) {
    if (block.state == State::kQuarantined && !ref_pages_.contains(addr)) {
      releasable.push_back(addr);
    }
  }
  for (const Gva addr : releasable) {
    Block& b = blocks_.at(addr);
    b.state = State::kFree;  // parked on the free list, reusable
    free_lists_[b.size].push_back(addr);
    --quarantined_;
  }
}

QuarantineAllocator::SweepStats QuarantineAllocator::sweep() {
  sim::ExecContext& m = kernel_.ctx();
  SweepStats st;
  const VirtDuration start = m.clock.now();

  std::vector<Gva> pages;
  {
    VirtualClock::Scope s(m.clock, st.dirty_query);
    const std::vector<Gva> dirty = tracker_->collect();
    tracker_->begin_interval();
    if (!first_sweep_done_) {
      st.full = true;
      for (Gva p = arena_; p < arena_ + bump_; p += kPageSize) pages.push_back(p);
      first_sweep_done_ = true;
    } else {
      for (const Gva p : dirty) {
        if (p >= arena_ && p < arena_ + arena_bytes_) pages.push_back(p);
      }
    }
  }

  for (const Gva page : pages) scan_page(page);
  st.pages_scanned = pages.size();

  const u64 before = quarantined_;
  release_unreferenced();
  st.blocks_released = before - quarantined_;
  st.blocks_held = quarantined_;
  st.time = m.clock.now() - start;
  return st;
}

}  // namespace ooh::uaf
