// Structured invariant-violation error thrown by the coherence oracle.
//
// A violation names the invariant that broke, the layer(s) whose state
// disagrees, the addresses involved, and *both sides* of the disagreement,
// so a CI failure reads as a diagnosis rather than a stack trace: which
// structure claims what, and what re-derivation says instead.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "base/types.hpp"

namespace ooh::check {

/// The machine layer whose state an invariant audits. Cross-layer
/// invariants name the layer holding the *derived* (cached/logged) state;
/// the authoritative side is spelled out in the message.
enum class Layer {
  kTlb,            ///< per-vCPU translation cache.
  kGuestPageTable, ///< per-process GVA -> GPA tables.
  kEpt,            ///< per-VM GPA -> HPA table with A/D flags.
  kPmlBuffer,      ///< hypervisor-level PML buffer + VMCS index.
  kEpmlBuffer,     ///< guest-level (EPML) PML buffer + shadow VMCS index.
  kDirtyLog,       ///< drained dirty-GPA consumers (bitmap / SPML ring).
  kFrameAllocator, ///< host physical frame ownership.
  kClock,          ///< per-vCPU virtual clock.
  kNotifierChain,  ///< page-track notifier registry.
};

[[nodiscard]] constexpr std::string_view layer_name(Layer layer) noexcept {
  switch (layer) {
    case Layer::kTlb: return "tlb";
    case Layer::kGuestPageTable: return "guest-page-table";
    case Layer::kEpt: return "ept";
    case Layer::kPmlBuffer: return "pml-buffer";
    case Layer::kEpmlBuffer: return "epml-buffer";
    case Layer::kDirtyLog: return "dirty-log";
    case Layer::kFrameAllocator: return "frame-allocator";
    case Layer::kClock: return "clock";
    case Layer::kNotifierChain: return "notifier-chain";
  }
  return "?";
}

/// Sentinel for the address fields of violations that have no meaningful
/// GVA/GPA (e.g. a clock running backwards).
inline constexpr u64 kNoAddr = ~u64{0};

struct InvariantViolation : std::logic_error {
  InvariantViolation(std::string invariant_id, Layer violating_layer, u32 vm,
                     Gva gva_arg, Gpa gpa_arg, std::string expected_arg,
                     std::string actual_arg)
      : std::logic_error(format(invariant_id, violating_layer, vm, gva_arg,
                                gpa_arg, expected_arg, actual_arg)),
        id(std::move(invariant_id)),
        layer(violating_layer),
        vm_id(vm),
        gva(gva_arg),
        gpa(gpa_arg),
        expected(std::move(expected_arg)),
        actual(std::move(actual_arg)) {}

  std::string id;        ///< invariant identifier, e.g. "TLB-2" (docs/invariants.md).
  Layer layer;           ///< layer holding the disagreeing derived state.
  u32 vm_id;             ///< VM whose state is incoherent.
  Gva gva;               ///< page-aligned GVA involved (kNoAddr if none).
  Gpa gpa;               ///< page-aligned GPA involved (kNoAddr if none).
  std::string expected;  ///< what re-derivation from authoritative state says.
  std::string actual;    ///< what the audited structure claims.

 private:
  static std::string format(const std::string& id, Layer layer, u32 vm, Gva gva,
                            Gpa gpa, const std::string& expected,
                            const std::string& actual) {
    std::ostringstream os;
    os << "coherence violation " << id << " [" << layer_name(layer) << "] vm=" << vm;
    if (gva != kNoAddr) os << " gva=0x" << std::hex << gva << std::dec;
    if (gpa != kNoAddr) os << " gpa=0x" << std::hex << gpa << std::dec;
    os << ": expected " << expected << ", actual " << actual;
    return os.str();
  }
};

}  // namespace ooh::check
