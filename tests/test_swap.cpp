// Swap daemon tests: the guest kernel's own dirty-tracking use (paper §I).
// Clean victims evict for free; dirty victims pay a writeback; contents
// round-trip through swap; the clock algorithm gives touched pages a second
// chance; swapped pages interact correctly with the OoH trackers.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "guest/ooh_module.hpp"
#include "guest/procfs.hpp"
#include "guest/swap.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh::guest {
namespace {

class SwapTest : public ::testing::Test {
 protected:
  SwapTest() : bed_(), kernel_(bed_.kernel()), proc_(kernel_.create_process()) {}

  /// Map + touch `n` pages, then clear A and D bits so all are cold+clean.
  Gva make_cold_clean(u64 n, bool data_backed = false) {
    const Gva base = proc_.mmap(n * kPageSize, data_backed);
    for (u64 i = 0; i < n; ++i) proc_.touch_write(base + i * kPageSize);
    kernel_.page_table(proc_).for_each_present([](Gva, sim::Pte& pte) {
      pte.accessed = false;
      pte.dirty = false;
    });
    bed_.vm().vcpu().tlb().flush_pid(proc_.pid());
    return base;
  }

  lib::TestBed bed_;
  GuestKernel& kernel_;
  Process& proc_;
};

TEST_F(SwapTest, CleanPagesEvictWithoutWriteback) {
  (void)make_cold_clean(16);
  const u64 writes_before = bed_.ctx().counters.get(Event::kDiskPageWrite);
  const SwapDaemon::EvictStats st = kernel_.swap().evict(proc_, 8);
  EXPECT_EQ(st.evicted_clean, 8u);
  EXPECT_EQ(st.evicted_dirty, 0u);
  EXPECT_EQ(bed_.ctx().counters.get(Event::kDiskPageWrite), writes_before)
      << "clean evictions must not touch the disk";
  EXPECT_EQ(kernel_.swap().swapped_out(proc_), 8u);
  EXPECT_EQ(kernel_.page_table(proc_).present_pages(), 8u);
}

TEST_F(SwapTest, DirtyPagesPayWriteback) {
  const Gva base = make_cold_clean(16);
  // Re-dirty 4 pages (and re-clear their accessed bits so they are victims).
  for (int i = 0; i < 4; ++i) proc_.touch_write(base + i * kPageSize);
  kernel_.page_table(proc_).for_each_present(
      [](Gva, sim::Pte& pte) { pte.accessed = false; });
  bed_.vm().vcpu().tlb().flush_pid(proc_.pid());

  const u64 writes_before = bed_.ctx().counters.get(Event::kDiskPageWrite);
  const SwapDaemon::EvictStats st = kernel_.swap().evict(proc_, 16);
  EXPECT_EQ(st.evicted_dirty, 4u);
  EXPECT_EQ(st.evicted_clean, 12u);
  EXPECT_EQ(bed_.ctx().counters.get(Event::kDiskPageWrite), writes_before + 4)
      << "only the dirty victims were written back";
}

TEST_F(SwapTest, SecondChanceSparesRecentlyTouchedPages) {
  const Gva base = make_cold_clean(8);
  // Touch half: their accessed bits are set again.
  for (int i = 0; i < 4; ++i) proc_.touch_read(base + i * kPageSize);
  const SwapDaemon::EvictStats st = kernel_.swap().evict(proc_, 4);
  EXPECT_EQ(st.evicted_clean + st.evicted_dirty, 4u);
  // The cold half got evicted first.
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(kernel_.page_table(proc_).pte(base + i * kPageSize)->present, false)
        << "cold page " << i << " should be out";
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(kernel_.page_table(proc_).pte(base + i * kPageSize)->present)
        << "recently-touched page " << i << " got evicted despite its second chance";
  }
}

TEST_F(SwapTest, SwapInRestoresContentExactly) {
  const Gva base = proc_.mmap(4 * kPageSize, /*data_backed=*/true);
  for (u64 i = 0; i < 4; ++i) proc_.write_u64(base + i * kPageSize + 24, 0xAB00 + i);
  kernel_.page_table(proc_).for_each_present(
      [](Gva, sim::Pte& pte) { pte.accessed = false; });
  bed_.vm().vcpu().tlb().flush_pid(proc_.pid());

  ASSERT_EQ(kernel_.swap().evict(proc_, 4).evicted_dirty, 4u);
  EXPECT_EQ(kernel_.page_table(proc_).present_pages(), 0u);
  for (u64 i = 0; i < 4; ++i) {
    EXPECT_EQ(proc_.read_u64(base + i * kPageSize + 24), 0xAB00 + i)
        << "swap-in must restore the page bytes";
  }
  EXPECT_EQ(kernel_.swap().swapped_out(proc_), 0u);
}

TEST_F(SwapTest, SwapPreservesSoftDirtyForProcTracking) {
  // A page dirtied since clear_refs stays reported dirty across swap-out/in.
  const Gva base = proc_.mmap(2 * kPageSize);
  proc_.touch_write(base);
  proc_.touch_write(base + kPageSize);
  kernel_.procfs().clear_refs(proc_);
  proc_.touch_write(base);  // sets soft-dirty again
  kernel_.page_table(proc_).for_each_present(
      [](Gva, sim::Pte& pte) { pte.accessed = false; });
  bed_.vm().vcpu().tlb().flush_pid(proc_.pid());
  ASSERT_GE(kernel_.swap().evict(proc_, 2).scanned, 2u);

  proc_.touch_read(base);  // swap both pages back in
  proc_.touch_read(base + kPageSize);
  const std::vector<Gva> dirty = kernel_.procfs().pagemap_dirty(proc_);
  EXPECT_EQ(dirty, std::vector<Gva>{base})
      << "soft-dirty state must survive the swap cycle";
}

TEST_F(SwapTest, EpmlSeesRedirtyAfterSwapIn) {
  const Gva base = make_cold_clean(4);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, kernel_, proc_);
  tracker->init();
  tracker->begin_interval();
  ASSERT_EQ(kernel_.swap().evict(proc_, 4).evicted_clean, 4u);

  kernel_.scheduler().enter_process(proc_.pid());
  proc_.touch_write(base + kPageSize);  // swap-in + write
  kernel_.scheduler().exit_process(proc_.pid());
  const std::vector<Gva> dirty = tracker->collect();
  EXPECT_EQ(dirty, std::vector<Gva>{base + kPageSize});
  tracker->shutdown();
}

TEST_F(SwapTest, SwappedOutPagesInFlightBufferEntriesAreDroppedAtDrain) {
  // Bugfix regression: a GVA logged into the EPML guest buffer and then
  // swapped out before the drain used to be handed to userspace anyway — a
  // stale address that may already belong to a recycled mapping. The drain
  // must re-validate every entry against the page table and drop non-present
  // ones, visibly (kEpmlStaleEntryDropped).
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  const Gva base = proc_.mmap(6 * kPageSize);
  mod.track(proc_);
  kernel_.scheduler().enter_process(proc_.pid());
  for (u64 i = 0; i < 6; ++i) proc_.touch_write(base + i * kPageSize);

  // Evict the first four pages while their GVAs still sit in the in-flight
  // guest buffer. The last two keep their accessed bits (second chance), so
  // they survive the scan.
  kernel_.page_table(proc_).for_each_present([&](Gva gva, sim::Pte& pte) {
    if (gva < base + 4 * kPageSize) pte.accessed = false;
  });
  bed_.vm().vcpu().tlb().flush_pid(proc_.pid());
  ASSERT_EQ(kernel_.swap().evict(proc_, 4).evicted_dirty, 4u);

  kernel_.scheduler().exit_process(proc_.pid());  // drains the guest buffer
  EXPECT_EQ(bed_.ctx().counters.get(Event::kEpmlStaleEntryDropped), 4u);
  std::vector<u64> got = mod.fetch(proc_);
  std::sort(got.begin(), got.end());
  const std::vector<u64> expect{base + 4 * kPageSize, base + 5 * kPageSize};
  EXPECT_EQ(got, expect) << "only the still-present pages reach userspace";
  mod.untrack(proc_);
}

TEST_F(SwapTest, MunmappedPagesInFlightBufferEntriesAreDroppedAtDrain) {
  // Same stale-entry discipline for munmap: tearing down the VMA between the
  // logged write and the drain must not leak the dead GVAs to userspace.
  OohModule& mod = kernel_.load_ooh_module(OohMode::kEpml);
  const Gva keep = proc_.mmap(2 * kPageSize);
  const Gva doomed = proc_.mmap(3 * kPageSize);
  mod.track(proc_);
  kernel_.scheduler().enter_process(proc_.pid());
  for (u64 i = 0; i < 2; ++i) proc_.touch_write(keep + i * kPageSize);
  for (u64 i = 0; i < 3; ++i) proc_.touch_write(doomed + i * kPageSize);
  proc_.munmap(doomed);  // buffer still holds the three dead GVAs
  kernel_.scheduler().exit_process(proc_.pid());

  EXPECT_EQ(bed_.ctx().counters.get(Event::kEpmlStaleEntryDropped), 3u);
  std::vector<u64> got = mod.fetch(proc_);
  std::sort(got.begin(), got.end());
  const std::vector<u64> expect{keep, keep + kPageSize};
  EXPECT_EQ(got, expect);
  mod.untrack(proc_);
}

TEST_F(SwapTest, EvictionRecyclesGuestFrames) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 32 * kPageSize;
  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  // More virtual memory than guest RAM: only possible with eviction.
  const Gva base = proc.mmap(64 * kPageSize);
  for (u64 i = 0; i < 64; ++i) {
    proc.touch_write(base + i * kPageSize);
    if (k.page_table(proc).present_pages() >= 24) {
      k.page_table(proc).for_each_present(
          [](Gva, sim::Pte& pte) { pte.accessed = false; });
      bed.vm().vcpu().tlb().flush_pid(proc.pid());
      (void)k.swap().evict(proc, 16);
    }
  }
  EXPECT_EQ(proc.truth_dirty().size() + k.swap().swapped_out(proc),
            64u + k.swap().swapped_out(proc));  // all 64 pages were written
  EXPECT_LE(k.page_table(proc).present_pages(), 24u);
}

TEST_F(SwapTest, RecycledFramesNeverLeakStaleBytes) {
  // Evict a data-backed page; its freed guest frame gets recycled by a new
  // mapping, which must read as zeros, not the evicted page's content.
  const Gva secret = proc_.mmap(kPageSize, /*data_backed=*/true);
  proc_.write_u64(secret, 0x5EC2E7ull);
  kernel_.page_table(proc_).for_each_present(
      [](Gva, sim::Pte& pte) { pte.accessed = false; });
  bed_.vm().vcpu().tlb().flush_pid(proc_.pid());
  ASSERT_GE(kernel_.swap().evict(proc_, 1).scanned, 1u);

  const Gva fresh = proc_.mmap(kPageSize, /*data_backed=*/true);
  EXPECT_EQ(proc_.read_u64(fresh), 0u) << "recycled frame leaked stale bytes";
  // And the evicted page still swaps back in with its content.
  EXPECT_EQ(proc_.read_u64(secret), 0x5EC2E7ull);
}

TEST_F(SwapTest, EvictNothingOnEmptyProcess) {
  const SwapDaemon::EvictStats st = kernel_.swap().evict(proc_, 10);
  EXPECT_EQ(st.scanned, 0u);
  EXPECT_EQ(kernel_.swap().swapped_out(proc_), 0u);
}

}  // namespace
}  // namespace ooh::guest
