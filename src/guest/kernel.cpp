#include "guest/kernel.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <new>

#include "guest/ooh_module.hpp"
#include "guest/procfs.hpp"
#include "guest/swap.hpp"
#include "guest/uffd.hpp"
#include "hypervisor/hypervisor.hpp"

namespace ooh::guest {

GuestKernel::GuestKernel(hv::Hypervisor& hypervisor, hv::Vm& vm)
    : hypervisor_(hypervisor), vm_(vm), ctx_(vm.ctx()) {
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    mmus_.push_back(std::make_unique<sim::Mmu>(vm.vcpu(cpu), vm.ept(),
                                               &vm.spp_table()));
    scheds_.push_back(std::make_unique<Scheduler>(vm.vcpu(cpu).ctx()));
  }
  procfs_ = std::make_unique<ProcFs>(*this);
  uffd_ = std::make_unique<Uffd>(*this);
  swap_ = std::make_unique<SwapDaemon>(*this);
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    sim::Vcpu& vcpu = vm_.vcpu(cpu);
    // Install the kernel as the posted-interrupt sink (EPML self-IPI vector).
    vcpu.attach(vcpu.exits(), this, vcpu.ept());
    // Guest write-protect fault policy as a notifier chain: userfaultfd gets
    // first claim (it checks the PTE's uffd_wp marker), soft-dirty is the
    // fallback — the dispatch order Linux's own fault handler hard-codes.
    // Each vCPU has its own chain head; policy is identical on all of them.
    vm_.track(cpu).register_notifier(sim::TrackLayer::kGuestWpFault, uffd_.get());
    vm_.track(cpu).register_notifier(sim::TrackLayer::kGuestWpFault, procfs_.get());
  }
}

GuestKernel::~GuestKernel() {
  ooh_module_.reset();
  for (unsigned cpu = 0; cpu < vm_.vcpu_count(); ++cpu) {
    vm_.track(cpu).unregister_notifier(sim::TrackLayer::kGuestWpFault, procfs_.get());
    vm_.track(cpu).unregister_notifier(sim::TrackLayer::kGuestWpFault, uffd_.get());
  }
}

Process& GuestKernel::create_process() {
  ProcEntry e;
  e.proc = std::make_unique<Process>(*this, next_pid_);
  e.pt = std::make_unique<sim::GuestPageTable>();
  // Both sides of the entry are heap-owned, so the cached pointer stays
  // valid for the process's whole life (procs_ growth moves only the
  // unique_ptrs).
  e.proc->pt_ = e.pt.get();
  // Round-robin placement across vCPUs; with one vCPU every process lands
  // on the BSP, exactly the pre-SMP behaviour.
  const unsigned cpu = next_place_cpu_ % vcpu_count();
  next_place_cpu_ = (next_place_cpu_ + 1) % vcpu_count();
  e.proc->cpu_ = cpu;
  e.proc->cpu_mask_ = u64{1} << cpu;
  ++next_pid_;
  procs_.push_back(std::move(e));
  return *procs_.back().proc;
}

void GuestKernel::migrate_process(Process& proc, unsigned cpu) {
  if (cpu >= vcpu_count()) throw std::out_of_range("migrate to unknown vCPU");
  proc.cpu_ = cpu;
  // Stale translations may remain cached on the old vCPU; keeping its bit in
  // the mask is what makes later shootdowns reach them (Linux mm_cpumask is
  // likewise sticky between switches).
  proc.cpu_mask_ |= u64{1} << cpu;
}

void GuestKernel::tlb_invalidate_page(Process& proc, Gva gva_page) {
  const unsigned owner = proc.cpu();
  vm_.vcpu(owner).tlb().invalidate_page(proc.pid(), gva_page);
  u64 remotes = proc.cpu_mask() & ~(u64{1} << owner);
  sim::ExecContext& ctx = vm_.vcpu(owner).ctx();
  while (remotes != 0) {
    const unsigned cpu = static_cast<unsigned>(std::countr_zero(remotes));
    remotes &= remotes - 1;
    vm_.vcpu(cpu).tlb().invalidate_page(proc.pid(), gva_page);
    ctx.count(Event::kTlbShootdownIpi);
    ctx.charge_us(ctx.cost.tlb_shootdown_us);
  }
}

void GuestKernel::tlb_flush_pid(Process& proc) {
  const unsigned owner = proc.cpu();
  vm_.vcpu(owner).tlb().flush_pid(proc.pid());
  u64 remotes = proc.cpu_mask() & ~(u64{1} << owner);
  sim::ExecContext& ctx = vm_.vcpu(owner).ctx();
  while (remotes != 0) {
    const unsigned cpu = static_cast<unsigned>(std::countr_zero(remotes));
    remotes &= remotes - 1;
    vm_.vcpu(cpu).tlb().flush_pid(proc.pid());
    ctx.count(Event::kTlbShootdownIpi);
    ctx.charge_us(ctx.cost.tlb_shootdown_us);
  }
}

Process* GuestKernel::find(u32 pid) noexcept {
  for (auto& e : procs_) {
    if (e.proc->pid() == pid) return e.proc.get();
  }
  return nullptr;
}

sim::GuestPageTable& GuestKernel::page_table(Process& proc) {
  if (&proc.kernel_ != this || proc.pt_ == nullptr) {
    throw std::logic_error("process does not belong to this kernel");
  }
  return *proc.pt_;
}

OohModule& GuestKernel::load_ooh_module(OohMode mode) {
  if (ooh_module_) throw std::logic_error("OoH module already loaded");
  ooh_module_ = std::make_unique<OohModule>(*this, mode);
  return *ooh_module_;
}

void GuestKernel::unload_ooh_module() {
  ooh_module_.reset();
}

Gpa GuestKernel::alloc_gpa_frame(sim::ExecContext& ctx) {
  if (ctx.fault_fire(sim::fault::FaultPoint::kGpaAllocFail)) {
    // Injected guest OOM: callers (EPML buffer setup, mmap growth) see the
    // same failure a loaded guest would produce and must degrade, not die.
    throw std::bad_alloc{};
  }
  const sync::SpinGuard lock(gpa_mu_);
  if (!gpa_free_list_.empty()) {
    const Gpa gpa = gpa_free_list_.back();
    gpa_free_list_.pop_back();
    return gpa;
  }
  if (next_gpa_frame_ + kPageSize > vm_.mem_bytes()) {
    throw std::runtime_error("guest out of physical memory");
  }
  const Gpa gpa = next_gpa_frame_;
  next_gpa_frame_ += kPageSize;
  return gpa;
}

void GuestKernel::free_gpa_frame(Gpa gpa) {
  const sync::SpinGuard lock(gpa_mu_);
  gpa_free_list_.push_back(page_floor(gpa));
}

void GuestKernel::ensure_ept_mapped(Gpa gpa, unsigned cpu) {
  sim::EptEntry* e = vm_.ept().entry(gpa);
  if (e != nullptr && e->present) return;
  sim::Vcpu& vcpu = vm_.vcpu(cpu);
  vcpu.ctx().charge_us(vcpu.ctx().cost.ept_violation_us);
  vcpu.vmexit_to_root(Event::kVmExitEptViolation, [&] {
    vcpu.exits()->on_ept_violation(vcpu, gpa, /*is_write=*/true);
  });
}

void GuestKernel::on_guest_pml_full(sim::Vcpu& vcpu) {
  if (!ooh_module_) throw std::logic_error("EPML self-IPI with no OoH module loaded");
  ooh_module_->handle_guest_pml_full(vcpu.cpu_index());
}

Hpa GuestKernel::access(Process& proc, Gva gva, bool is_write) {
  sim::GuestPageTable& pt = page_table(proc);
  sim::Mmu& mmu = mmu_of(proc);
  Scheduler& sched = scheduler_of(proc);
  // A single access needs at most: missing fault, then (after the page is
  // mapped write-protected by a registered ufd) a write-protect fault, then
  // success. The bound just guards against policy bugs.
  for (int tries = 0; tries < 4; ++tries) {
    const sim::Mmu::Result r = mmu.access(proc.pid(), pt, gva, is_write);
    switch (r.status) {
      case sim::Mmu::Status::kOk:
        if (is_write) proc.truth_record(page_floor(gva));
        sched.on_progress(proc.pid());
        return r.hpa;
      case sim::Mmu::Status::kFaultNotPresent:
        handle_not_present(proc, gva, is_write);
        break;
      case sim::Mmu::Status::kFaultNotWritable:
        handle_not_writable(proc, gva);
        break;
      case sim::Mmu::Status::kFaultSubPage:
        handle_subpage_fault(proc, gva);
        break;
    }
  }
  throw std::logic_error("fault retry loop did not converge");
}

void GuestKernel::touch_run(Process& proc, Gva base, u64 stride, u64 n,
                            bool is_write) {
  const u32 pid = proc.pid();
  sim::Mmu& mmu = mmu_of(proc);
  Scheduler& sched = scheduler_of(proc);
  sim::ExecContext& ctx = ctx_of(proc);
  u64 i = 0;
  while (i < n) {
    // Fast path: serve as many accesses as cached translations allow. The
    // lambda replays exactly what the kOk arm of access() plus the caller's
    // touch_write/touch_read would have done after the MMU hit.
    i += mmu.access_run(pid, base + i * stride, stride, n - i, is_write,
                        [&](Gva page) {
                          if (is_write) proc.truth_record(page);
                          sched.on_progress(pid);
                          ctx.charge_ns(ctx.cost.workload_write_ns);
                        });
    if (i < n) {
      // The next access needs the full pipeline (TLB miss, fault, or a
      // dirty-flag transition); route it through access() like the
      // per-access loop would, then resume the run.
      (void)access(proc, base + i * stride, is_write);
      ctx.charge_ns(ctx.cost.workload_write_ns);
      ++i;
    }
  }
}

Gpa GuestKernel::translate_gva(Process& proc, Gva gva_page) {
  // Fault the page in if needed, then read the translation from the walk
  // seam (per-4 KiB GPA even when a huge leaf covers the page).
  (void)access(proc, gva_page, /*is_write=*/false);
  const sim::GuestPageTable::Lookup lu = page_table(proc).lookup(gva_page);
  assert(lu.pte != nullptr && lu.pte->present);
  return lu.gpa_page;
}

void GuestKernel::spp_protect(Process& proc, Gva gva_page, u32 write_mask) {
  const Gpa gpa = translate_gva(proc, page_floor(gva_page));
  if (vcpu_of(proc).hypercall(sim::Hypercall::kOohSppProtect, gpa, write_mask) != 0) {
    throw std::runtime_error("SPP protect hypercall rejected");
  }
}

void GuestKernel::spp_clear(Process& proc, Gva gva_page) {
  const Gpa gpa = translate_gva(proc, page_floor(gva_page));
  (void)vcpu_of(proc).hypercall(sim::Hypercall::kOohSppClear, gpa);
}

u32 GuestKernel::spp_mask_of(Process& proc, Gva gva_page) {
  const sim::GuestPageTable::Lookup lu =
      page_table(proc).lookup(page_floor(gva_page));
  if (lu.pte == nullptr || !lu.pte->present) return sim::kSppAllWritable;
  return vm_.spp_table().mask(lu.gpa_page);
}

void GuestKernel::set_spp_handler(Process& proc, SppHandler handler) {
  if (handler) {
    spp_handlers_[proc.pid()] = std::move(handler);
  } else {
    spp_handlers_.erase(proc.pid());
  }
}

void GuestKernel::handle_subpage_fault(Process& proc, Gva gva) {
  ++spp_violations_;
  const auto it = spp_handlers_.find(proc.pid());
  // No handler: the guard hit is fatal, like a write to a guard page.
  if (it == spp_handlers_.end()) throw GuestSegfault(gva);
  switch (it->second(gva)) {
    case SppAction::kKill:
      throw GuestSegfault(gva);
    case SppAction::kUnprotect: {
      // Open the faulted sub-page so the access can proceed.
      const Gva page = page_floor(gva);
      const u32 mask = spp_mask_of(proc, page) | (1u << sim::subpage_index(gva));
      spp_protect(proc, page, mask);
      break;
    }
  }
}

void GuestKernel::handle_not_present(Process& proc, Gva gva, bool /*is_write*/) {
  Vma* vma = proc.vma_of(gva);
  if (vma == nullptr) throw GuestSegfault(gva);
  const Gva page = page_floor(gva);

  // Swapped-out page? Major fault: the daemon restores it.
  if (swap_->swap_in_if_needed(proc, page)) return;

  if (vma->uffd == Vma::Uffd::kMissing && uffd_->missing_registered(proc)) {
    uffd_->deliver_missing_fault(proc, page);
  }

  // Demand paging: minor fault, two world switches, map a fresh frame. All
  // charges land on the faulting process's vCPU.
  sim::ExecContext& ctx = ctx_of(proc);
  ctx.count(Event::kPageFaultDemand);
  ctx.count(Event::kContextSwitch, 2);
  ctx.charge_us(ctx.cost.demand_fault_us + 2 * ctx.cost.ctx_switch_us);

  sim::GuestPageTable& pt = page_table(proc);
  pt.map(page, alloc_gpa_frame(ctx), vma->writable);
  sim::Pte* pte = pt.pte(page);
  assert(pte != nullptr);
  if (vma->data_backed) {
    // Anonymous pages are zeroed: a recycled frame (e.g. from a swap
    // eviction) must not leak its previous contents.
    ensure_ept_mapped(pte->gpa_page, proc.cpu());
    Hpa hpa = 0;
    if (vm_.ept().translate(pte->gpa_page, hpa)) {
      std::memset(ctx.pmem.frame_data(hpa), 0, kPageSize);
    }
  }
  // Linux marks freshly mapped pages soft-dirty so /proc does not miss them.
  pte->soft_dirty = true;
  if (vma->uffd == Vma::Uffd::kWriteProtect && uffd_->wp_registered(proc)) {
    pte->uffd_wp = true;  // the retried write will raise the ufd-wp fault
  }
}

void GuestKernel::handle_not_writable(Process& proc, Gva gva) {
  const Gva page = page_floor(gva);
  sim::GuestPageTable& pt = page_table(proc);
  const sim::GuestPageTable::Lookup lu = pt.lookup(page);
  assert(lu.pte != nullptr && lu.pte->present);
  Vma* vma = proc.vma_of(gva);
  if (vma == nullptr || !vma->writable) throw GuestSegfault(gva);

  // Fault policy lives in the kGuestWpFault chain: userfaultfd claims
  // uffd_wp-marked PTEs, the soft-dirty handler takes the rest. The fault
  // is raised — and handled — on the process's own vCPU.
  if (!vm_.track(proc.cpu()).dispatch(
          sim::TrackLayer::kGuestWpFault,
          {&vcpu_of(proc), proc.pid(), page, lu.gpa_page})) {
    throw std::logic_error("guest write-protect fault with no handler");
  }
}

}  // namespace ooh::guest
