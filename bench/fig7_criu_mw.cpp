// Figure 7: CRIU memory-write (MW) time per technique.
//
// Paper's findings: /proc fuses the pagemap walk into MW, so MW grows to
// seconds (up to 5.7s, tiny Large) and with memory size; SPML/EPML collect
// first and then write, so their MW is almost constant -- up to 26x better.
#include "criu_common.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/128);
  bench::print_header("Figure 7", "CRIU memory-write (MW) phase time per technique");

  TextTable t({"application", "/proc MW (ms)", "SPML MW (ms)", "EPML MW (ms)",
               "proc/EPML (x)"});
  for (const auto& [app, size] : bench::criu_apps()) {
    std::vector<double> mw;
    for (const lib::Technique tech :
         {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
      mw.push_back(bench::run_criu(app, size, args.scale, tech).res.phases.mw.count() / 1e3);
    }
    t.add_row(std::string(app), {mw[0], mw[1], mw[2], mw[0] / std::max(mw[2], 1e-9)}, 3);
  }
  t.print(std::cout);
  std::printf("\nShape check: /proc MW >> SPML/EPML MW on every application.\n");
  return 0;
}
