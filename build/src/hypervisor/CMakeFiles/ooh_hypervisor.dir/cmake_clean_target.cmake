file(REMOVE_RECURSE
  "libooh_hypervisor.a"
)
