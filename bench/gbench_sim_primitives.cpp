// google-benchmark microbenches of the simulator itself (host wall-clock,
// not virtual time): MMU fast/slow paths, TLB, PML logging circuit, radix
// tables, ring buffer. These bound how big a --full experiment can get.
#include <benchmark/benchmark.h>

#include "base/ring_buffer.hpp"
#include "hypervisor/hypervisor.hpp"
#include "sim/machine.hpp"
#include "sim/mmu.hpp"
#include "sim/page_track.hpp"
#include "sim/radix.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "trackers/boehmgc/gc.hpp"
#include "trackers/criu/checkpoint.hpp"

namespace ooh {
namespace {

struct MmuFixture {
  MmuFixture()
      : machine(2 * kGiB, CostModel::unit()),
        hv(machine),
        vm(hv.create_vm(kGiB)),
        mmu(vm.vcpu(), vm.ept()) {
    for (u64 i = 0; i < kPages; ++i) {
      pt.map(0x100000 + i * kPageSize, kPageSize + i * kPageSize, true);
    }
  }
  static constexpr u64 kPages = 4096;
  sim::Machine machine;
  hv::Hypervisor hv;
  hv::Vm& vm;
  sim::GuestPageTable pt;
  sim::Mmu mmu;
};

void BM_MmuWriteTlbHit(benchmark::State& state) {
  MmuFixture f;
  (void)f.mmu.access(1, f.pt, 0x100000, true);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.mmu.access(1, f.pt, 0x100000, true));
  }
}
BENCHMARK(BM_MmuWriteTlbHit);

void BM_MmuWriteColdPages(benchmark::State& state) {
  MmuFixture f;
  u64 i = 0;
  for (auto _ : state) {
    f.vm.vcpu().tlb().flush_all();
    benchmark::DoNotOptimize(
        f.mmu.access(1, f.pt, 0x100000 + (i++ % MmuFixture::kPages) * kPageSize, true));
  }
}
BENCHMARK(BM_MmuWriteColdPages);

void BM_MmuWriteWithPmlLogging(benchmark::State& state) {
  MmuFixture f;
  f.hv.enable_pml_for_hyp(f.vm);
  u64 i = 0;
  for (auto _ : state) {
    // Touch a fresh page each time so the dirty transition (and log) fires.
    const u64 page = i++ % MmuFixture::kPages;
    sim::EptEntry* e = f.vm.ept().entry(kPageSize + page * kPageSize);
    if (e != nullptr) e->dirty = false;
    f.vm.vcpu().tlb().flush_all();
    benchmark::DoNotOptimize(f.mmu.access(1, f.pt, 0x100000 + page * kPageSize, true));
  }
}
BENCHMARK(BM_MmuWriteWithPmlLogging);

// Every guest write funnels through WriteTrackRegistry::dispatch, so its
// per-event overhead must stay at a few ns even with several consumers.
struct NullNotifier final : sim::PageTrackNotifier {
  bool on_track(sim::TrackLayer, const sim::TrackEvent&) override {
    ++seen;
    return true;
  }
  u64 seen = 0;
};

void BM_PageTrackDispatch(benchmark::State& state) {
  sim::WriteTrackRegistry reg;
  std::vector<NullNotifier> notifiers(static_cast<std::size_t>(state.range(0)));
  for (NullNotifier& n : notifiers) {
    reg.register_notifier(sim::TrackLayer::kEptDirty, &n);
  }
  const sim::TrackEvent ev{nullptr, 1, 0x100000, 0x5000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.dispatch(sim::TrackLayer::kEptDirty, ev));
  }
  for (NullNotifier& n : notifiers) {
    reg.unregister_notifier(sim::TrackLayer::kEptDirty, &n);
  }
}
BENCHMARK(BM_PageTrackDispatch)->Arg(0)->Arg(1)->Arg(4);

void BM_RadixEnsureFind(benchmark::State& state) {
  sim::RadixTable4<u64> t;
  u64 addr = 0;
  for (auto _ : state) {
    t.ensure(addr) = addr;
    benchmark::DoNotOptimize(t.find(addr));
    addr += kPageSize;
  }
}
BENCHMARK(BM_RadixEnsureFind);

void BM_TlbLookupInsert(benchmark::State& state) {
  sim::Tlb tlb(1536);
  u64 i = 0;
  for (auto _ : state) {
    const Gva page = (i++ % 1024) * kPageSize;
    if (tlb.lookup(1, page) == nullptr) tlb.insert(1, page, {});
    benchmark::DoNotOptimize(tlb.lookup(1, page));
  }
}
BENCHMARK(BM_TlbLookupInsert);

void BM_RingBufferPushPop(benchmark::State& state) {
  RingBuffer rb(4096);
  u64 v = 0;
  for (auto _ : state) {
    rb.push(v++);
    u64 out = 0;
    rb.pop(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RingBufferPushPop);

void BM_GuestProcessTouchWrite(benchmark::State& state) {
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  u64 i = 0;
  for (auto _ : state) {
    proc.touch_write(base + (i++ % 4096) * kPageSize);
  }
}
BENCHMARK(BM_GuestProcessTouchWrite);

void BM_EpmlTrackedWrite(benchmark::State& state) {
  // The full OoH hot path: tracked process write with guest-level logging on.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();
  k.scheduler().enter_process(proc.pid());
  u64 i = 0;
  for (auto _ : state) {
    proc.touch_write(base + (i++ % 4096) * kPageSize);
    if (i % 4096 == 0) (void)tracker->collect();  // keep the ring drained
  }
  k.scheduler().exit_process(proc.pid());
  tracker->shutdown();
}
BENCHMARK(BM_EpmlTrackedWrite);

void BM_TrackerCollect4kDirty(benchmark::State& state) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(4096 * kPageSize);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();
  for (auto _ : state) {
    state.PauseTiming();
    k.scheduler().enter_process(proc.pid());
    for (u64 p = 0; p < 4096; ++p) proc.touch_write(base + p * kPageSize);
    k.scheduler().exit_process(proc.pid());
    state.ResumeTiming();
    benchmark::DoNotOptimize(tracker->collect());
    tracker->begin_interval();
  }
  tracker->shutdown();
}
BENCHMARK(BM_TrackerCollect4kDirty)->Unit(benchmark::kMicrosecond);

void BM_GcAllocCollectCycle(benchmark::State& state) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  gc::GcHeap heap(k, proc, 128 * kMiB, /*threshold=*/u64{64} * kGiB);
  k.scheduler().enter_process(proc.pid());
  const Gva root = heap.alloc(1, 0);
  heap.add_root(root);
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) benchmark::DoNotOptimize(heap.alloc(1, 16));
    benchmark::DoNotOptimize(heap.collect());
  }
  k.scheduler().exit_process(proc.pid());
}
BENCHMARK(BM_GcAllocCollectCycle)->Unit(benchmark::kMicrosecond);

void BM_CheckpointDump256Pages(benchmark::State& state) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(256 * kPageSize, /*data_backed=*/true);
  for (u64 p = 0; p < 256; ++p) proc.write_u64(base + p * kPageSize, p);
  criu::Checkpointer cp(k, lib::Technique::kOracle);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cp.full_checkpoint(proc));
  }
}
BENCHMARK(BM_CheckpointDump256Pages)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ooh

BENCHMARK_MAIN();
