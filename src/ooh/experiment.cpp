#include "ooh/experiment.hpp"

#include <new>
#include <unordered_set>

#include "hypervisor/hypervisor.hpp"
#include "sim/check/coherence.hpp"

namespace ooh::lib {

RunResult run_tracked(guest::GuestKernel& kernel, guest::Process& proc,
                      const WorkloadFn& workload, DirtyTracker* tracker,
                      const RunOptions& opts) {
  sim::ExecContext& m = kernel.ctx();
  guest::Scheduler& sched = kernel.scheduler();

  RunResult res;
  proc.truth_reset();
  std::unordered_set<Gva> reported;

  unsigned in_run_collections = 0;
  const auto do_collect = [&] {
    const std::vector<Gva> pages = tracker->collect();
    reported.insert(pages.begin(), pages.end());
    if (opts.on_collected) opts.on_collected(pages);
    tracker->begin_interval();
    // Collection interval == a natural cross-layer quiescent point: audit
    // this VM's coherence (no-op unless an audit build installed the hook).
    if constexpr (check::kCoherenceAuditsEnabled) {
      kernel.hypervisor().audit_now(kernel.vm().id());
    }
    ++in_run_collections;
    if (opts.max_collections != 0 && in_run_collections >= opts.max_collections) {
      sched.clear_periodic();
    }
  };

  if (tracker != nullptr) {
    tracker->init();
    tracker->begin_interval();
    if (opts.collect_period.count() > 0) {
      sched.set_periodic(opts.collect_period, do_collect);
    }
  }

  // Paper methodology (§III): Tracked is suspended during the tracker's
  // initialization phase, so its timeline starts here. Per-interval arming
  // and collection do run on its clock. Event deltas cover the same window
  // (plus the final harvest), so the analytical model can be validated
  // against them (Table IV).
  const EventCounters before = m.counters;
  const u64 ctx_before = m.counters.get(Event::kContextSwitch);
  const VirtDuration start = m.clock.now();

  sched.enter_process(proc.pid());
  try {
    workload(proc);
  } catch (const std::bad_alloc&) {
    // Guest OOM (real or injected) mid-workload: the workload stops early,
    // but the run winds down through the normal path so the machine stays
    // coherent and the partial session is still collected and audited.
    res.guest_oom = true;
  }
  sched.exit_process(proc.pid());
  sched.clear_periodic();

  res.tracked_time = m.clock.now() - start;

  if (tracker != nullptr) {
    if (opts.final_collect) {
      // Final harvest runs after the Tracked finished (it no longer inflates
      // the Tracked's completion time, matching Fig. 1's timeline).
      const std::vector<Gva> pages = tracker->collect();
      reported.insert(pages.begin(), pages.end());
      if (opts.on_collected) opts.on_collected(pages);
    }
    res.phases = tracker->phases();
    res.dropped = tracker->dropped();
  }
  if constexpr (check::kCoherenceAuditsEnabled) {
    kernel.hypervisor().audit_now(kernel.vm().id());
  }

  res.unique_pages = reported.size();
  res.truth_pages = proc.truth_dirty().size();
  for (const auto& [page, seq] : proc.truth_dirty()) {
    (void)seq;
    if (reported.contains(page)) ++res.captured_truth;
  }
  res.ctx_switches = m.counters.get(Event::kContextSwitch) - ctx_before;
  res.events = m.counters.diff(before);
  return res;
}

RunResult run_baseline(guest::GuestKernel& kernel, guest::Process& proc,
                       const WorkloadFn& workload) {
  return run_tracked(kernel, proc, workload, nullptr, {});
}

}  // namespace ooh::lib
