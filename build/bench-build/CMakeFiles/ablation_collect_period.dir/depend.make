# Empty dependencies file for ablation_collect_period.
# This may be replaced when dependencies are built.
