file(REMOVE_RECURSE
  "../bench/fig4_micro_overhead"
  "../bench/fig4_micro_overhead.pdb"
  "CMakeFiles/fig4_micro_overhead.dir/fig4_micro_overhead.cpp.o"
  "CMakeFiles/fig4_micro_overhead.dir/fig4_micro_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_micro_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
