#include "sim/ept.hpp"

#include <cassert>

namespace ooh::sim {

void Ept::map(Gpa gpa_page, Hpa hpa_page, bool writable) {
  assert(is_page_aligned(gpa_page) && is_page_aligned(hpa_page));
  const auto lock = lock_if_concurrent();
  OOH_SYNC_PLAIN_WRITE(&table_);
  EptEntry& e = table_.ensure(gpa_page);
  if (!e.present) ++present_pages_;
  e = EptEntry{};
  e.hpa_page = hpa_page;
  e.present = true;
  e.writable = writable;
}

void Ept::unmap(Gpa gpa_page) {
  const auto lock = lock_if_concurrent();
  OOH_SYNC_PLAIN_WRITE(&table_);
  EptEntry* e = table_.find(page_floor(gpa_page));
  if (e != nullptr && e->present) {
    *e = EptEntry{};
    --present_pages_;
    // Structural invalidation point, mirroring the EPT-side TLB shootdown.
    table_.invalidate_walk_cache();
  }
}

void Ept::map_huge(Gpa gpa_base, Hpa hpa_base, PageGran gran, bool writable) {
  // The HPA run must be frame-contiguous but only 4 KiB-aligned: the
  // frame-granular bump allocator hands out contiguous runs at arbitrary
  // frame boundaries, and every simulated address computation is
  // base-plus-offset (hardware's bits-20:12-zero rule is an encoding
  // detail with no behavioural analogue here).
  assert(gran != PageGran::k4K && is_gran_aligned(gpa_base, gran) &&
         is_page_aligned(hpa_base));
  const auto lock = lock_if_concurrent();
  OOH_SYNC_PLAIN_WRITE(&table_);
  EptEntry& e = table_.ensure_huge(gpa_base, gran);
  if (!e.present) {
    present_pages_ += gran_pages(gran);
    ++huge_present_;
  }
  e = EptEntry{};
  e.hpa_page = hpa_base;
  e.present = true;
  e.writable = writable;
}

void Ept::unmap_huge(Gpa gpa_base, PageGran gran) {
  const auto lock = lock_if_concurrent();
  OOH_SYNC_PLAIN_WRITE(&table_);
  EptEntry* e = table_.find_huge(gran_floor(gpa_base, gran), gran);
  if (e != nullptr && e->present) {
    *e = EptEntry{};
    present_pages_ -= gran_pages(gran);
    --huge_present_;
    table_.invalidate_walk_cache();
  }
}

u64 Ept::split_huge_leaf(Gpa gpa, PageGran gran) {
  assert(gran != PageGran::k4K);
  const auto lock = lock_if_concurrent();
  OOH_SYNC_PLAIN_WRITE(&table_);
  const Gpa base = gran_floor(gpa, gran);
  EptEntry* e = table_.find_huge(base, gran);
  if (e == nullptr || !e->present) return 0;
  const EptEntry parent = *e;
  *e = EptEntry{};
  --huge_present_;
  const PageGran child =
      gran == PageGran::k1G ? PageGran::k2M : PageGran::k4K;
  const u64 child_size = gran_size(child);
  for (u64 i = 0; i < kRadixFanout; ++i) {
    EptEntry& c = child == PageGran::k4K
                      ? table_.ensure(base + i * child_size)
                      : table_.ensure_huge(base + i * child_size, child);
    c = parent;
    c.hpa_page = parent.hpa_page + i * child_size;
  }
  if (child != PageGran::k4K) huge_present_ += kRadixFanout;
  // present_pages_ is unchanged: same 4 KiB-equivalents, finer leaves.
  // The split replaces a leaf like an unmap structurally.
  table_.invalidate_walk_cache();
  return kRadixFanout;
}

bool Ept::range_unmapped(Gpa base, PageGran gran) noexcept {
  const auto lock = lock_if_concurrent();
  if (present_pages_ == 0) return true;  // first touch: nothing anywhere
  // A larger (or equal) leaf covering the region?
  for (const PageGran g : {PageGran::k1G, PageGran::k2M}) {
    EptEntry* e = table_.find_huge(gran_floor(base, g), g);
    if (e != nullptr && e->present) return false;
  }
  // Smaller leaves inside it?
  if (gran == PageGran::k1G) {
    for (u64 i = 0; i < kRadixFanout; ++i) {
      EptEntry* e = table_.find_huge(base + i * gran_size(PageGran::k2M),
                                     PageGran::k2M);
      if (e != nullptr && e->present) return false;
    }
  }
  for (u64 i = 0; i < gran_pages(gran); ++i) {
    EptEntry* e = table_.find(base + i * kPageSize);
    if (e != nullptr && e->present) return false;
  }
  return true;
}

bool Ept::translate(Gpa gpa, Hpa& out) const noexcept {
  const Ept::Lookup lu = const_cast<Ept*>(this)->lookup(gpa);
  if (lu.entry == nullptr || !lu.entry->present) return false;
  out = lu.hpa_page | page_offset(gpa);
  return true;
}

}  // namespace ooh::sim
