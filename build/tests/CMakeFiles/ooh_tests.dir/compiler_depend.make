# Empty compiler generated dependencies file for ooh_tests.
# This may be replaced when dependencies are built.
