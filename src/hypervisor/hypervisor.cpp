#include "hypervisor/hypervisor.hpp"

#include <cassert>
#include <new>
#include <stdexcept>
#include <unordered_set>

#include "base/sync.hpp"

namespace ooh::hv {

Vm& Hypervisor::create_vm(u64 mem_bytes, std::size_t spml_ring_entries,
                          unsigned vcpus) {
  const u32 id = static_cast<u32>(vms_.size());
  auto vm = std::make_unique<Vm>(machine_, id, mem_bytes, spml_ring_entries, vcpus);
  for (unsigned cpu = 0; cpu < vm->vcpu_count(); ++cpu) {
    vm->vcpu(cpu).attach(this, nullptr, &vm->ept());
    vm->vcpu(cpu).vmcs().write(sim::VmcsField::kEptPointer, id + 1);
  }
  vms_.push_back(std::move(vm));
  return *vms_.back();
}

Vm& Hypervisor::vm_of(const sim::Vcpu& vcpu) {
  const u32 id = vcpu.vm_id();
  if (id >= vms_.size()) throw std::logic_error("vCPU does not belong to any VM");
  return *vms_[id];
}

void Hypervisor::ensure_pml_buffer(Vm& vm, unsigned cpu) {
  if (vm.pml_buffer(cpu) == 0) {
    if (vm.vcpu(cpu).ctx().fault_fire(sim::fault::FaultPoint::kFrameAllocFail)) {
      // Injected host OOM: same failure a packed host produces when the
      // 4KiB PML buffer cannot be allocated (KVM's vmx_create_vcpu path).
      throw std::bad_alloc{};
    }
    vm.pml_buffer(cpu) = machine_.pmem.alloc_frame();
    vm.vcpu(cpu).vmcs().write(sim::VmcsField::kPmlAddress, vm.pml_buffer(cpu));
    vm.vcpu(cpu).vmcs().write(sim::VmcsField::kPmlIndex, kPmlIndexStart);
  }
}

void Hypervisor::update_pml_enable(Vm& vm, unsigned cpu) {
  // Hardware PML runs iff some drain consumer wants events right now: the
  // hypervisor's own consumer whenever registered, the guest's SPML
  // consumer only while logging is on. N consumers, one control bit per
  // vCPU.
  const bool on = vm.track(cpu).any_enabled(sim::TrackLayer::kPmlDrain);
  vm.vcpu(cpu).vmcs().set_control(sim::kEnablePml, on);
}

void Hypervisor::flush_all_tlbs(Vm& vm, sim::ExecContext& ctx) {
  // INVEPT is VM-scoped: every vCPU's cached translations die, and the
  // acting vCPU pays one flush charge per vCPU it invalidated.
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    vm.vcpu(cpu).tlb().flush_all();
    ctx.count(Event::kTlbFlush);
    ctx.charge_us(ctx.cost.tlb_flush_us);
  }
}

void Hypervisor::clear_all_ept_dirty(Vm& vm, sim::ExecContext& ctx) {
  u64 cleared = 0;
  vm.ept().for_each_present([&](Gpa, sim::EptEntry& e) {
    if (e.dirty) {
      e.dirty = false;
      ++cleared;
    }
  });
  ctx.charge_ns(ctx.cost.dbit_clear_ns * static_cast<double>(cleared));
  flush_all_tlbs(vm, ctx);
}

void Hypervisor::drain_pml_buffer(Vm& vm, unsigned cpu) {
  sim::Vcpu& vcpu = vm.vcpu(cpu);
  sim::ExecContext& ctx = vcpu.ctx();
  sim::Vmcs& vmcs = vcpu.vmcs();
  if (vm.pml_buffer(cpu) == 0) return;
  const u16 idx = static_cast<u16>(vmcs.read(sim::VmcsField::kPmlIndex));
  // Entries occupy slots idx+1 .. 511; a wrapped index (0xFFFF) means all 512.
  const u64 count = idx > kPmlIndexStart ? kPmlBufferEntries
                                         : static_cast<u64>(kPmlIndexStart - idx);
  if (count == 0) return;

  // Slot 511 holds the oldest entry (the index counts down); walk newest-
  // last so consumers see logging order.
  const u64 first_slot = kPmlBufferEntries - count;
  for (u64 slot = kPmlBufferEntries; slot-- > first_slot;) {
    const u64 entry = ctx.pmem.read_u64(vm.pml_buffer(cpu) + slot * 8);
    const Gpa base = pml_entry_base(entry);
    const PageGran gran = pml_entry_gran(entry);
    ctx.charge_ns(ctx.cost.drain_entry_ns);
    // Coexistence routing (paper §IV-C item 3), generalized: every enabled
    // kPmlDrain consumer gets the GPA. Dirty flags stay set until the
    // consumer's interval boundary (collect/harvest), so an already-logged
    // page does not re-log on every later write -- matching how Xen
    // harvests PML. A gran-tagged entry (huge EPT leaf, no eager split)
    // expands here to every 4 KiB page it covers, so rings and consumers
    // stay page-granular — the drain is where PML's leaf-size imprecision
    // becomes visible as a dirty-page superset. 4 KiB entries (gran code 0)
    // take this loop exactly once with base == entry, as before.
    for (u64 i = 0; i < gran_pages(gran); ++i) {
      vm.track(cpu).dispatch(sim::TrackLayer::kPmlDrain,
                             {&vcpu, /*pid=*/0, /*gva_page=*/0,
                              base + i * kPageSize});
    }
  }
  vmcs.write(sim::VmcsField::kPmlIndex, kPmlIndexStart);
  // A kDirtyRingFull fault fired mid-drain settles here, with the buffer
  // index reset and the diverted entry safely in the spill log (FAULT-2).
  if (vm.take_ring_fault(cpu)) ctx.fault_audit();
}

void Hypervisor::drain_all_pml_buffers(Vm& vm) {
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) drain_pml_buffer(vm, cpu);
}

void Hypervisor::reset_dirty_for(Vm& vm, std::span<const Gpa> gpa_pages,
                                 sim::ExecContext& ctx) {
  u64 cleared = 0;
  for (const Gpa gpa : gpa_pages) {
    if (sim::EptEntry* e = vm.ept().entry(gpa); e != nullptr && e->dirty) {
      e->dirty = false;
      ++cleared;
    }
  }
  ctx.charge_ns(ctx.cost.dbit_clear_ns * static_cast<double>(cleared));
  // Cleared dirty flags require invalidating cached translations (INVEPT).
  flush_all_tlbs(vm, ctx);
}

void Hypervisor::on_pml_full(sim::Vcpu& vcpu) {
  drain_pml_buffer(vm_of(vcpu), vcpu.cpu_index());
}

void Hypervisor::on_ept_violation(sim::Vcpu& vcpu, Gpa gpa, bool /*is_write*/) {
  Vm& vm = vm_of(vcpu);
  if (page_floor(gpa) >= vm.mem_bytes()) {
    throw std::runtime_error("EPT violation beyond the VM's memory size");
  }
  if (vm.ept_huge() && !vm.eager_split_active()) {
    // THP-style backfill: map the whole 2 MiB region with one PS-bit leaf
    // when it fits the VM and nothing in it is mapped yet (GRAN-1). While
    // an eager-split logging session runs, faults map at 4 KiB — KVM does
    // the same so dirty logging keeps page precision.
    const Gpa base = gran_floor(gpa, PageGran::k2M);
    if (base + gran_size(PageGran::k2M) <= vm.mem_bytes() &&
        vm.ept().range_unmapped(base, PageGran::k2M)) {
      const Hpa run =
          machine_.pmem.alloc_frames_contiguous(gran_pages(PageGran::k2M));
      vm.ept().map_huge(base, run, PageGran::k2M, /*writable=*/true);
      return;
    }
  }
  const Hpa frame = machine_.pmem.alloc_frame();
  vm.ept().map(page_floor(gpa), frame, /*writable=*/true);
}

u64 Hypervisor::on_hypercall(sim::Vcpu& vcpu, sim::Hypercall nr, u64 a0, u64 a1) {
  Vm& vm = vm_of(vcpu);
  const unsigned cpu = vcpu.cpu_index();
  sim::ExecContext& ctx = vcpu.ctx();
  const CostModel& cost = ctx.cost;
  switch (nr) {
    case sim::Hypercall::kOohInitPml:
      // SPML setup (M9): allocate the calling vCPU's PML buffer and reset
      // dirty state so the first tracking interval starts from a clean
      // slate. The guest may not start while the hypervisor is tearing
      // down, and vice versa -- the flags arbitrate (§IV-C item 3).
      ctx.charge_us(cost.hc_init_pml_us);
      try {
        ensure_pml_buffer(vm, cpu);
      } catch (const std::bad_alloc&) {
        // No buffer, no session: report failure to the guest rather than
        // killing the VM. The module surfaces it; the tracker degrades.
        ctx.fault_audit();
        return ~u64{0};
      }
      clear_all_ept_dirty(vm, ctx);
      // Session start == consumer registration; it joins the drain chain
      // disabled (no logging until the tracked process is scheduled in).
      if (!vm.pml_enabled_by_guest(cpu)) {
        vm.track(cpu).register_notifier(sim::TrackLayer::kPmlDrain,
                                        &vm.spml_drain_consumer(), /*enabled=*/false);
      }
      vm.spml_tracked_mem_bytes(cpu) = a0;
      return 0;
    case sim::Hypercall::kOohDeactivatePml:
      ctx.charge_us(cost.hc_deact_pml_us);
      drain_pml_buffer(vm, cpu);
      if (vm.pml_enabled_by_guest(cpu)) {
        vm.track(cpu).unregister_notifier(sim::TrackLayer::kPmlDrain,
                                          &vm.spml_drain_consumer());
      }
      update_pml_enable(vm, cpu);
      return 0;
    case sim::Hypercall::kOohEnableLogging:
      ctx.charge_us(cost.hc_enable_logging_us);
      if (!vm.pml_enabled_by_guest(cpu)) return u64(-1);
      vm.track(cpu).set_enabled(sim::TrackLayer::kPmlDrain,
                                &vm.spml_drain_consumer(), true);
      update_pml_enable(vm, cpu);
      return 0;
    case sim::Hypercall::kOohDisableLogging:
      // M14: cost depends on the tracked process's memory size because the
      // in-flight buffer is flushed to the ring on the way out.
      ctx.charge_us(cost.spml_disable_logging_us(
          a0 != 0 ? a0 : vm.spml_tracked_mem_bytes(cpu)));
      drain_pml_buffer(vm, cpu);
      if (vm.pml_enabled_by_guest(cpu)) {
        vm.track(cpu).set_enabled(sim::TrackLayer::kPmlDrain,
                                  &vm.spml_drain_consumer(), false);
      }
      update_pml_enable(vm, cpu);
      return 0;
    case sim::Hypercall::kOohInitEpml: {
      // EPML setup (M10): VMCS shadowing plus the new guest PML fields on
      // the calling vCPU. This is the *only* hypercall EPML performs
      // (§IV-D).
      ctx.charge_us(cost.hc_init_pml_shadow_us);
      sim::Vmcs& shadow = vcpu.create_shadow_vmcs();
      shadow.write(sim::VmcsField::kGuestPmlIndex, kPmlIndexStart);
      // Shadowing permission bitmaps: the guest may touch exactly the three
      // EPML fields, nothing else in the VMCS.
      for (const sim::VmcsField f :
           {sim::VmcsField::kGuestPmlAddress, sim::VmcsField::kGuestPmlIndex,
            sim::VmcsField::kGuestPmlEnable}) {
        vcpu.shadow_readable().add(f);
        vcpu.shadow_writable().add(f);
      }
      vcpu.vmcs().set_control(sim::kEnableVmcsShadowing, true);
      vcpu.vmcs().set_control(sim::kEnableGuestPml, true);
      return 0;
    }
    case sim::Hypercall::kOohDeactivateEpml:
      ctx.charge_us(cost.hc_deact_pml_shadow_us);
      vcpu.vmcs().set_control(sim::kEnableGuestPml, false);
      vcpu.destroy_shadow_vmcs();
      return 0;
    case sim::Hypercall::kOohSppProtect: {
      // OoH-SPP (§III-D): the guest installs a 32-bit sub-page write mask
      // for one of its pages. The hypervisor owns the SPP table; the guest
      // only ever names GPAs it was given (no HPA exposure, as in §V).
      ctx.charge_us(cost.hc_spp_protect_us);
      const Gpa gpa_page = page_floor(a0);
      if (gpa_page >= vm.mem_bytes()) return u64(-1);
      sim::EptEntry* e = vm.ept().entry(gpa_page);
      if (e == nullptr || !e->present) {
        on_ept_violation(vcpu, gpa_page, /*is_write=*/false);
        e = vm.ept().entry(gpa_page);
      }
      vm.spp_table().set_mask(gpa_page, static_cast<u32>(a1));
      e->spp = static_cast<u32>(a1) != sim::kSppAllWritable;
      // Cached translations on any vCPU may still claim page-level write
      // permission.
      flush_all_tlbs(vm, ctx);
      return 0;
    }
    case sim::Hypercall::kOohSppClear: {
      ctx.charge_us(cost.hc_spp_protect_us);
      const Gpa gpa_page = page_floor(a0);
      vm.spp_table().clear(gpa_page);
      if (sim::EptEntry* e = vm.ept().entry(gpa_page); e != nullptr) e->spp = false;
      flush_all_tlbs(vm, ctx);
      return 0;
    }
    case sim::Hypercall::kOohIntervalReset: {
      // End of an SPML tracking interval: re-arm logging for every page the
      // guest consumed this interval (their next write must re-log).
      ctx.charge_us(cost.hc_enable_logging_us);
      drain_pml_buffer(vm, cpu);
      reset_dirty_for(vm, vm.spml_interval_log(cpu), ctx);
      vm.spml_interval_log(cpu).clear();
      return 0;
    }
  }
  throw std::logic_error("unknown hypercall");
}

void Hypervisor::eager_split_all(Vm& vm, sim::ExecContext& ctx) {
  if (vm.ept().huge_leaves() == 0) return;  // all-4 KiB VM: free no-op
  // Collect first: splitting mutates the radix structure mid-iteration.
  std::vector<std::pair<Gpa, PageGran>> huge;
  vm.ept().for_each_leaf_present([&](Gpa base, sim::EptEntry&, PageGran g) {
    if (g != PageGran::k4K) huge.emplace_back(base, g);
  });
  u64 splits = 0;
  for (const auto& [base, g] : huge) {
    if (vm.ept().split_huge_leaf(base, g) != 0) ++splits;
    if (g == PageGran::k1G) {
      // The 1 GiB leaf became 512 2 MiB leaves; shatter those to 4 KiB too.
      for (u64 i = 0; i < sim::kRadixFanout; ++i) {
        if (vm.ept().split_huge_leaf(base + i * gran_size(PageGran::k2M),
                                     PageGran::k2M) != 0) {
          ++splits;
        }
      }
    }
  }
  ctx.charge_us(ctx.cost.ept_split_leaf_us * static_cast<double>(splits));
  // The shootdown the splits owe rides the session-start INVEPT the caller
  // performs right after (clear_all_ept_dirty -> flush_all_tlbs).
}

void Hypervisor::enable_pml_for_hyp(Vm& vm) {
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) ensure_pml_buffer(vm, cpu);
  if (vm.eager_split()) {
    // KVM's eager page splitting: shatter every huge leaf to 4 KiB *before*
    // logging starts, so each PML entry names exactly one dirty page
    // instead of a 2 MiB superset.
    eager_split_all(vm, vm.ctx());
    vm.set_eager_split_active(true);
  }
  clear_all_ept_dirty(vm, vm.ctx());
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    if (!vm.pml_enabled_by_hyp(cpu)) {
      vm.track(cpu).register_notifier(sim::TrackLayer::kPmlDrain,
                                      &vm.hyp_drain_consumer());
    }
    update_pml_enable(vm, cpu);
  }
}

void Hypervisor::disable_pml_for_hyp(Vm& vm) {
  drain_all_pml_buffers(vm);
  // Huge pages are not rebuilt here: like KVM, recovery of split regions is
  // left to future faults (the next huge-eligible EPT violation).
  vm.set_eager_split_active(false);
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    if (vm.pml_enabled_by_hyp(cpu)) {
      vm.track(cpu).unregister_notifier(sim::TrackLayer::kPmlDrain,
                                        &vm.hyp_drain_consumer());
    }
    update_pml_enable(vm, cpu);
  }
}

std::vector<Gpa> Hypervisor::take_ring_contents(Vm& vm) {
  // Insertion-ordered dedup: ring entries keep event order (per vCPU), and
  // with one vCPU this reproduces byte-for-byte the insertion sequence the
  // old per-VM unordered_set log saw, so the output vector is bit-identical.
  // Spill entries (ring-full or injected kDirtyRingFull) fold in after.
  std::unordered_set<Gpa> dedup;
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    DirtyRing& ring = vm.dirty_ring(cpu);
    u64 gpa = 0;
    while (ring.try_pop(gpa)) dedup.insert(gpa);
  }
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    for (const u64 gpa : vm.dirty_ring(cpu).take_spill()) dedup.insert(gpa);
    // Entries a concurrent drain already handed to userspace: fold them in
    // so the harvest stays the authoritative union and their dirty flags
    // get reset with everything else.
    OOH_SYNC_PLAIN_WRITE(&vm.drained_log(cpu));
    for (const Gpa gpa : vm.drained_log(cpu)) dedup.insert(gpa);
    vm.drained_log(cpu).clear();
  }
  return {dedup.begin(), dedup.end()};
}

std::size_t Hypervisor::drain_dirty_ring(Vm& vm, unsigned cpu,
                                         std::vector<Gpa>& out) {
  DirtyRing& ring = vm.dirty_ring(cpu);
  std::size_t popped = 0;
  u64 gpa = 0;
  while (ring.try_pop(gpa)) {
    out.push_back(gpa);
    // The drained log is drainer-private while the drain runs (SPSC: this
    // is the ring's one consumer); quiescent harvests read it only after
    // the drainer stopped. The annotation lets the schedule explorer prove
    // that ordering across interleavings.
    OOH_SYNC_PLAIN_WRITE(&vm.drained_log(cpu));
    vm.drained_log(cpu).push_back(gpa);
    ++popped;
  }
  return popped;
}

std::vector<Gpa> Hypervisor::harvest_hyp_dirty(Vm& vm) {
  drain_all_pml_buffers(vm);
  std::vector<Gpa> out = take_ring_contents(vm);
  // Round boundary: re-arm logging for the harvested pages.
  reset_dirty_for(vm, out, vm.ctx());
  return out;
}

std::vector<Gpa> Hypervisor::collect_dirty_paused(Vm& vm) {
  // Final harvest with the vCPUs paused: drain the in-flight buffers and
  // take the rings, but do NOT re-arm — the VM is not going to run here
  // again, and reset_dirty_for's unconditional INVEPT would charge a TLB
  // flush that the (empty-drain-window) common case never paid before.
  drain_all_pml_buffers(vm);
  return take_ring_contents(vm);
}

void Hypervisor::enable_wss_sampling(Vm& vm) {
  sim::ExecContext& ctx = vm.ctx();
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    if (vm.pml_enabled_by_guest(cpu)) {
      throw std::logic_error(
          "WSS sampling and a guest SPML session cannot share the PML buffer");
    }
  }
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) ensure_pml_buffer(vm, cpu);
  if (vm.eager_split()) {
    // WSS sampling wants page-granular touch sets for the same reason
    // migration wants page-granular dirty sets.
    eager_split_all(vm, ctx);
    vm.set_eager_split_active(true);
  }
  // Reset both accessed and dirty flags so every first touch re-logs.
  u64 cleared = 0;
  vm.ept().for_each_present([&](Gpa, sim::EptEntry& e) {
    if (e.accessed || e.dirty) ++cleared;
    e.accessed = false;
    e.dirty = false;
  });
  ctx.charge_ns(ctx.cost.dbit_clear_ns * static_cast<double>(cleared));
  flush_all_tlbs(vm, ctx);
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    if (!vm.pml_enabled_by_hyp(cpu)) {
      vm.track(cpu).register_notifier(sim::TrackLayer::kPmlDrain,
                                      &vm.hyp_drain_consumer());
    }
    vm.vcpu(cpu).vmcs().set_control(sim::kEnablePmlReadLog, true);
    update_pml_enable(vm, cpu);
  }
}

void Hypervisor::disable_wss_sampling(Vm& vm) {
  drain_all_pml_buffers(vm);
  vm.set_eager_split_active(false);
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    vm.dirty_ring(cpu).clear();
    vm.vcpu(cpu).vmcs().set_control(sim::kEnablePmlReadLog, false);
    if (vm.pml_enabled_by_hyp(cpu)) {
      vm.track(cpu).unregister_notifier(sim::TrackLayer::kPmlDrain,
                                        &vm.hyp_drain_consumer());
    }
    update_pml_enable(vm, cpu);
  }
}

std::vector<Gpa> Hypervisor::harvest_wss(Vm& vm) {
  sim::ExecContext& ctx = vm.ctx();
  drain_all_pml_buffers(vm);
  std::vector<Gpa> out = take_ring_contents(vm);
  // Re-arm: clear accessed (and dirty) flags of the sampled pages. The
  // sample is page-granular (the drain expands huge-leaf entries to every
  // 4 KiB page they cover), but the flags live on the *leaf*: a shared
  // 2 MiB leaf is one hardware flag word, so it must be visited, cleared
  // and charged once — not once per constituent 4 KiB page.
  u64 cleared = 0;
  std::unordered_set<Gpa> visited;  // leaf bases, gran-aligned
  for (const Gpa gpa : out) {
    const sim::Ept::Lookup leaf = vm.ept().lookup(gpa);
    if (leaf.entry == nullptr) continue;
    if (!visited.insert(gran_floor(gpa, leaf.gran)).second) continue;
    if (leaf.entry->accessed || leaf.entry->dirty) ++cleared;
    leaf.entry->accessed = false;
    leaf.entry->dirty = false;
  }
  ctx.charge_ns(ctx.cost.dbit_clear_ns * static_cast<double>(cleared));
  flush_all_tlbs(vm, ctx);
  return out;
}

}  // namespace ooh::hv
