# Empty dependencies file for gc_demo.
# This may be replaced when dependencies are built.
