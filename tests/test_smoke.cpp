// End-to-end smoke: every technique tracks a simple writer and captures the
// dirtied pages; EPML charges the least tracked-side overhead.
#include <gtest/gtest.h>

#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh {
namespace {

lib::WorkloadFn page_writer(Gva base, u64 pages, int passes) {
  return [=](guest::Process& p) {
    for (int pass = 0; pass < passes; ++pass) {
      for (u64 i = 0; i < pages; ++i) {
        p.write_u64(base + i * kPageSize, i);
      }
    }
  };
}

class SmokeTest : public ::testing::TestWithParam<lib::Technique> {};

TEST_P(SmokeTest, CapturesAllDirtyPages) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 256;  // 1 MiB
  const Gva base = proc.mmap(pages * kPageSize);

  auto tracker = lib::make_tracker(GetParam(), k, proc);
  const lib::RunResult r =
      lib::run_tracked(k, proc, page_writer(base, pages, 3), tracker.get());

  EXPECT_EQ(r.truth_pages, pages);
  EXPECT_EQ(r.captured_truth, pages) << "technique missed dirty pages";
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_GT(r.tracked_time.count(), 0.0);
  tracker->shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, SmokeTest,
                         ::testing::Values(lib::Technique::kProc, lib::Technique::kUfd,
                                           lib::Technique::kSpml, lib::Technique::kEpml,
                                           lib::Technique::kWp, lib::Technique::kOracle),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case lib::Technique::kProc: return "proc";
                             case lib::Technique::kUfd: return "ufd";
                             case lib::Technique::kSpml: return "spml";
                             case lib::Technique::kEpml: return "epml";
                             case lib::Technique::kWp: return "wp";
                             case lib::Technique::kOracle: return "oracle";
                           }
                           return "unknown";
                         });

TEST(SmokeOrdering, EpmlTrackedOverheadBelowProcUfdAndSpml) {
  // Warmed memory + several collection intervals: the paper's steady-state
  // scenario, where /proc pays write-protect faults and pagemap scans, ufd
  // pays userspace fault handling, SPML pays reverse mapping, and EPML pays
  // almost nothing (Fig. 4's ordering).
  const u64 pages = 2048;  // 8 MiB
  auto run = [&](std::optional<lib::Technique> t) {
    lib::TestBed bed;
    guest::GuestKernel& k = bed.kernel();
    guest::Process& proc = k.create_process();
    const Gva base = proc.mmap(pages * kPageSize);
    for (u64 i = 0; i < pages; ++i) proc.write_u64(base + i * kPageSize, i);  // warm
    std::unique_ptr<lib::DirtyTracker> tracker;
    if (t) tracker = lib::make_tracker(*t, k, proc);
    lib::RunOptions opts;
    opts.collect_period = msecs(0.5);
    return lib::run_tracked(k, proc, page_writer(base, pages, 5), tracker.get(), opts)
        .tracked_time;
  };
  const auto ideal = run(std::nullopt);
  const auto proc_t = run(lib::Technique::kProc);
  const auto ufd_t = run(lib::Technique::kUfd);
  const auto spml_t = run(lib::Technique::kSpml);
  const auto epml_t = run(lib::Technique::kEpml);

  EXPECT_LT(ideal.count(), epml_t.count());
  EXPECT_LT(epml_t.count(), proc_t.count());
  EXPECT_LT(epml_t.count(), ufd_t.count());
  EXPECT_LT(epml_t.count(), spml_t.count());
}

}  // namespace
}  // namespace ooh
