// Execution-context tests: per-vCPU counters merge into machine-wide
// totals, the sharded frame allocator is safe under concurrent tenants,
// serial and parallel TestBed runs produce bit-identical per-VM virtual
// timelines (the refactor's core invariant), and the scheduler delivers a
// quantum tick whose deadline expired inside a periodic service window.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/machine.hpp"
#include "trackers/boehmgc/gc.hpp"
#include "trackers/criu/checkpoint.hpp"
#include "workloads/microbench.hpp"
#include "workloads/registry.hpp"

namespace ooh {
namespace {

TEST(ExecContext, CountersMergeIntoMachineTotals) {
  sim::Machine m(64 * kMiB, CostModel::unit());
  sim::ExecContext& a = m.create_context();
  sim::ExecContext& b = m.create_context();
  a.count(Event::kVmExit, 3);
  a.count(Event::kTlbMiss, 7);
  b.count(Event::kVmExit, 5);
  b.count(Event::kHypercall, 11);

  const EventCounters total = m.total_counters();
  EXPECT_EQ(total.get(Event::kVmExit), 8u);
  EXPECT_EQ(total.get(Event::kTlbMiss), 7u);
  EXPECT_EQ(total.get(Event::kHypercall), 11u);
  EXPECT_EQ(total.get(Event::kPmlLogGpa), 0u);
  EXPECT_EQ(m.context_count(), 2u);
}

TEST(ExecContext, MergeIsPlainPerEventAddition) {
  EventCounters x, y;
  x.add(Event::kTlbHit, 2);
  y.add(Event::kTlbHit, 40);
  y.add(Event::kEptWalk, 1);
  x.merge(y);
  EXPECT_EQ(x.get(Event::kTlbHit), 42u);
  EXPECT_EQ(x.get(Event::kEptWalk), 1u);
  EXPECT_EQ(y.get(Event::kTlbHit), 40u) << "merge must not mutate its source";
}

TEST(ExecContext, ClocksAreIndependentPerContext) {
  sim::Machine m(64 * kMiB, CostModel::unit());
  sim::ExecContext& a = m.create_context();
  sim::ExecContext& b = m.create_context();
  a.charge_us(10.0);
  b.charge_us(3.0);
  EXPECT_DOUBLE_EQ(a.clock.now().count(), 10.0);
  EXPECT_DOUBLE_EQ(b.clock.now().count(), 3.0);
  EXPECT_DOUBLE_EQ(m.max_clock().count(), 10.0);
}

TEST(PhysicalMemoryParallel, ConcurrentAllocFreeStaysConsistent) {
  sim::PhysicalMemory pmem(64 * kMiB);  // 16k frames
  constexpr unsigned kThreads = 8;
  constexpr unsigned kPerThread = 512;
  std::vector<std::vector<Hpa>> got(kThreads);
  {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (unsigned i = 0; i < kPerThread; ++i) {
          const Hpa f = pmem.alloc_frame();
          pmem.write_u64(f, t * 1000003ull + i);
          got[t].push_back(f);
        }
        // Free half back, so shard free lists see cross-thread recycling.
        for (unsigned i = 0; i < kPerThread / 2; ++i) {
          pmem.free_frame(got[t][i]);
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }
  EXPECT_EQ(pmem.used_frames(), u64{kThreads} * (kPerThread / 2));
  // Every surviving frame still holds the value its owner wrote.
  std::set<Hpa> live;
  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned i = kPerThread / 2; i < kPerThread; ++i) {
      EXPECT_EQ(pmem.read_u64(got[t][i]), t * 1000003ull + i);
      live.insert(got[t][i]);
    }
  }
  EXPECT_EQ(live.size(), std::size_t{kThreads} * (kPerThread / 2))
      << "no frame was handed out twice";
}

// ---- serial vs. parallel determinism ----------------------------------------

struct TenantOutcome {
  double clock_us = 0.0;
  EventCounters counters;
  std::vector<Gva> dirty;
  u64 truth_pages = 0;
};

/// The same multi-tenant experiment either serially or on a worker pool:
/// every VM runs a tracked writer workload with periodic collections.
std::vector<TenantOutcome> run_fleet(unsigned vms, unsigned threads,
                                     lib::Technique tech = lib::Technique::kEpml) {
  lib::TestBedOptions opts;
  opts.tenant_vms = vms;
  opts.vm_mem_bytes = 64 * kMiB;
  opts.host_mem_bytes = 2 * kGiB;
  lib::TestBed bed(opts);
  std::vector<TenantOutcome> out(vms);
  bed.run_tenants(
      [&](unsigned i) {
        guest::GuestKernel& k = bed.kernel(i);
        guest::Process& proc = k.create_process();
        const u64 pages = 96 + i * 16;  // distinct per-VM working sets
        const Gva base = proc.mmap(pages * kPageSize);
        auto tracker = lib::make_tracker(tech, k, proc);
        lib::RunOptions ropts;
        ropts.collect_period = msecs(1);
        std::vector<Gva> dirty;
        ropts.on_collected = [&](const std::vector<Gva>& pages_seen) {
          dirty.insert(dirty.end(), pages_seen.begin(), pages_seen.end());
        };
        const lib::RunResult r = lib::run_tracked(
            k, proc,
            [&](guest::Process& p) {
              for (int pass = 0; pass < 3; ++pass) {
                for (u64 j = 0; j < pages; ++j) p.touch_write(base + j * kPageSize);
              }
            },
            tracker.get(), ropts);
        tracker->shutdown();
        std::sort(dirty.begin(), dirty.end());
        dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
        out[i].clock_us = k.ctx().clock.now().count();
        out[i].counters = k.ctx().counters;
        out[i].dirty = std::move(dirty);
        out[i].truth_pages = r.truth_pages;
      },
      threads);
  return out;
}

TEST(ParallelTenants, SerialAndParallelRunsAreBitIdentical) {
  constexpr unsigned kVms = 4;
  const std::vector<TenantOutcome> serial = run_fleet(kVms, 1);
  const std::vector<TenantOutcome> parallel = run_fleet(kVms, kVms);
  ASSERT_EQ(serial.size(), parallel.size());
  for (unsigned i = 0; i < kVms; ++i) {
    SCOPED_TRACE("vm " + std::to_string(i));
    // Bit-identical virtual clocks: not approximate — the timelines share
    // no mutable state, so the interleaving cannot influence them.
    EXPECT_EQ(serial[i].clock_us, parallel[i].clock_us);
    EXPECT_TRUE(serial[i].counters == parallel[i].counters);
    EXPECT_EQ(serial[i].dirty, parallel[i].dirty);
    EXPECT_EQ(serial[i].truth_pages, parallel[i].truth_pages);
    EXPECT_GT(serial[i].dirty.size(), 0u);
  }
  // Different working-set sizes must yield different timelines — guard
  // against the comparison passing because everything is trivially zero.
  EXPECT_NE(serial[0].clock_us, serial[kVms - 1].clock_us);
}

TEST(ParallelTenants, EveryTrackerBackendIsDeterministic) {
  // The page-track refactor's pinning test: for every DirtyTracker backend
  // the per-VM virtual timeline — clock, counters, dirty set — must be
  // bit-identical between serial and parallel execution. Any notifier whose
  // dispatch order or cost attribution depended on host-side state would
  // break this.
  for (const lib::Technique tech :
       {lib::Technique::kProc, lib::Technique::kUfd, lib::Technique::kSpml,
        lib::Technique::kEpml, lib::Technique::kWp, lib::Technique::kOracle}) {
    SCOPED_TRACE(std::string(lib::technique_name(tech)));
    const std::vector<TenantOutcome> serial = run_fleet(2, 1, tech);
    const std::vector<TenantOutcome> parallel = run_fleet(2, 2, tech);
    ASSERT_EQ(serial.size(), parallel.size());
    for (unsigned i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("vm " + std::to_string(i));
      EXPECT_EQ(serial[i].clock_us, parallel[i].clock_us);
      EXPECT_TRUE(serial[i].counters == parallel[i].counters);
      EXPECT_EQ(serial[i].dirty, parallel[i].dirty);
      EXPECT_GT(serial[i].dirty.size(), 0u);
    }
  }
}

TEST(ParallelTenants, PerVmTimelineIndependentOfFleetSize) {
  // The paper's Figs. 10-11 claim: adding tenants does not change a VM's
  // own cost. After the context split this is structural — VM 0's timeline
  // is the same whether it is alone or one of four.
  const std::vector<TenantOutcome> alone = run_fleet(1, 1);
  const std::vector<TenantOutcome> crowd = run_fleet(4, 4);
  EXPECT_EQ(alone[0].clock_us, crowd[0].clock_us);
  EXPECT_TRUE(alone[0].counters == crowd[0].counters);
  EXPECT_EQ(alone[0].dirty, crowd[0].dirty);
}

// ---- virtual-time golden pinning (hot-path refactor) ------------------------
//
// Miniature fig4/fig5/fig8/table4 scenarios whose final virtual clock and
// event-counter fingerprint are pinned to exact doubles captured before the
// access fast path was rebuilt (array TLB, walk caches, batched touches).
// Any change to the charge sequence — even a reordering of two double
// additions — shifts these values, so bit-identical figure outputs across
// the refactor are enforced here, not just eyeballed.

struct Golden {
  double clock_us = 0.0;
  u64 fingerprint = 0;
};

u64 counter_fingerprint(const EventCounters& c) {
  u64 f = 0;
  for (const Event e :
       {Event::kTlbHit, Event::kTlbMiss, Event::kGuestPtWalk, Event::kEptWalk,
        Event::kVmExit, Event::kSchedQuantum, Event::kEptDirtySet,
        Event::kContextSwitch}) {
    f = f * 1000003ull + c.get(e);
  }
  return f;
}

/// Figure 4 in miniature: the paper's array parser, tracked.
Golden golden_fig4(lib::Technique tech) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  wl::ArrayParser w(64 * kPageSize, /*passes=*/2);
  w.setup(proc);
  auto tracker = lib::make_tracker(tech, k, proc);
  lib::RunOptions ropts;
  ropts.collect_period = msecs(1);
  (void)lib::run_tracked(k, proc, w.runner(), tracker.get(), ropts);
  tracker->shutdown();
  return {k.ctx().clock.now().count(), counter_fingerprint(k.ctx().counters)};
}

/// Figure 5 in miniature: Boehm GC cycles driven by a tracking technique.
Golden golden_fig5(lib::Technique tech) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  auto w = wl::make_workload("string-match", wl::ConfigSize::kSmall, /*scale=*/4);
  gc::GcHeap heap(k, proc, 32 * kMiB, 512 * 1024);
  heap.set_technique(tech);
  heap.prepare_tracker();
  w->attach_gc(&heap);
  w->setup(proc);
  k.scheduler().enter_process(proc.pid());
  w->run(proc);
  (void)heap.collect();
  k.scheduler().exit_process(proc.pid());
  return {k.ctx().clock.now().count(), counter_fingerprint(k.ctx().counters)};
}

/// Figure 8 in miniature: pre-copy checkpoint of a running workload.
Golden golden_fig8(lib::Technique tech) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  auto w = wl::make_workload("word-count", wl::ConfigSize::kSmall, /*scale=*/4);
  w->setup(proc);
  criu::Checkpointer cp(k, tech);
  criu::CheckpointOptions opts;
  opts.precopy_period = msecs(5);
  opts.initial_full_copy = true;
  (void)cp.checkpoint_during(proc, w->runner(), opts);
  return {k.ctx().clock.now().count(), counter_fingerprint(k.ctx().counters)};
}

/// Table 4 in miniature: a tracked run whose formula inputs (N, C_x, ...)
/// come straight off the counters being fingerprinted.
Golden golden_table4() {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  auto w = wl::make_workload("matrix-multiply", wl::ConfigSize::kSmall, /*scale=*/4);
  w->setup(proc);
  auto tracker = lib::make_tracker(lib::Technique::kSpml, k, proc);
  lib::RunOptions ropts;
  ropts.collect_period = msecs(1);
  (void)lib::run_tracked(k, proc, w->runner(), tracker.get(), ropts);
  tracker->shutdown();
  return {k.ctx().clock.now().count(), counter_fingerprint(k.ctx().counters)};
}

/// Untracked baselines of the workloads whose touch loops the batched
/// access path rewrites (prefault, PCA read passes, kmeans/matmul stores).
Golden golden_baseline(std::string_view app) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  auto w = wl::make_workload(app, wl::ConfigSize::kSmall, /*scale=*/4);
  w->setup(proc);
  (void)lib::run_baseline(k, proc, w->runner());
  return {k.ctx().clock.now().count(), counter_fingerprint(k.ctx().counters)};
}

TEST(VirtualTimePinning, HotPathRefactorGoldens) {
  struct Row {
    const char* name;
    Golden got;
    double clock_us;
    u64 fingerprint;
  };
  // Captured from the pre-refactor tree (unordered_map TLB, no walk caches,
  // per-byte touch loops). These are exact doubles, not tolerances.
  const Row rows[] = {
      {"fig4/proc", golden_fig4(lib::Technique::kProc), 997.15628792595476,
       12075385063847858118u},
      {"fig4/spml", golden_fig4(lib::Technique::kSpml), 19695.954882973369,
       16278334996384382287u},
      {"fig4/epml", golden_fig4(lib::Technique::kEpml), 17484.55717153379,
       14278316996266382041u},
      {"fig5/proc", golden_fig5(lib::Technique::kProc), 58634.417018264343,
       6019011841615719738u},
      {"fig5/epml", golden_fig5(lib::Technique::kEpml), 30548.932557908873,
       8019029841669719790u},
      {"fig8/epml", golden_fig8(lib::Technique::kEpml), 88667.580108770126,
       14951706644273322265u},
      {"fig8/wp", golden_fig8(lib::Technique::kWp), 377185.33599880722,
       9279178553895953256u},
      {"table4/spml", golden_table4(), 27923.940921941998,
       11985636462792785657u},
      {"baseline/pca", golden_baseline("pca"), 1989.4689999993036,
       13317330207030855339u},
      {"baseline/kmeans", golden_baseline("kmeans"), 16609.327000067304,
       4277803004534670552u},
  };
  for (const Row& r : rows) {
    SCOPED_TRACE(r.name);
    EXPECT_EQ(r.got.clock_us, r.clock_us);
    EXPECT_EQ(r.got.fingerprint, r.fingerprint);
  }
}

// Batched touches are an *equivalence* claim, not just a speedup: with a
// tracker armed, touch_range must produce the same clock, the same counter
// fingerprint, the same tracker-observed dirty set and the same truth log as
// the per-element loop it replaces — including across quantum boundaries,
// where the scheduler services inside the run and may flush the TLB.
TEST(VirtualTimePinning, TouchRangeMatchesPerByteLoop) {
  struct Result {
    double clock_us = 0.0;
    u64 fingerprint = 0;
    std::vector<Gva> dirty;
    u64 truth_pages = 0;
  };
  const auto scenario = [](bool batched) {
    lib::TestBed bed;
    guest::GuestKernel& k = bed.kernel();
    guest::Process& proc = k.create_process();
    const Gva base = proc.mmap(64 * kPageSize);
    auto tracker = lib::make_tracker(lib::Technique::kSpml, k, proc);
    tracker->init();
    tracker->begin_interval();
    k.scheduler().enter_process(proc.pid());

    // Sub-page stride, unaligned base, non-multiple byte count: the batch
    // must charge per *element*, not per page.
    const u64 stride = 192;
    const u64 bytes = 48 * kPageSize + 777;
    const u64 n = (bytes + stride - 1) / stride;
    if (batched) {
      proc.touch_range_write(base + 64, bytes, stride);
      proc.touch_range_read(base, 16 * kPageSize);
    } else {
      for (u64 i = 0; i < n; ++i) proc.touch_write(base + 64 + i * stride);
      for (u64 off = 0; off < 16 * kPageSize; off += kPageSize) {
        proc.touch_read(base + off);
      }
    }

    Result r;
    r.dirty = tracker->collect();
    k.scheduler().exit_process(proc.pid());
    tracker->shutdown();
    r.clock_us = k.ctx().clock.now().count();
    r.fingerprint = counter_fingerprint(k.ctx().counters);
    r.truth_pages = proc.truth_dirty().size();
    return r;
  };

  const Result loop = scenario(/*batched=*/false);
  const Result batch = scenario(/*batched=*/true);
  EXPECT_EQ(batch.clock_us, loop.clock_us);
  EXPECT_EQ(batch.fingerprint, loop.fingerprint);
  EXPECT_EQ(batch.dirty, loop.dirty);
  EXPECT_EQ(batch.truth_pages, loop.truth_pages);
  EXPECT_GT(batch.truth_pages, 0u);
}

// ---- scheduler quantum-after-service fix ------------------------------------

TEST(SchedulerQuantum, DeadlineExpiringDuringServiceStillTicks) {
  lib::TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(8 * kPageSize);
  guest::Scheduler& sched = k.scheduler();
  sim::ExecContext& ctx = k.ctx();

  // Quantum 10ms; a 1ms-period service that burns 20ms of virtual time, so
  // the quantum deadline always expires inside the service window.
  sched.set_quantum(msecs(10));
  bool fired = false;
  sched.set_periodic(msecs(1), [&] {
    fired = true;
    ctx.charge_us(20'000);
  });
  sched.enter_process(proc.pid());
  for (int i = 0; i < 100000 && !fired; ++i) {
    proc.touch_write(base + (i % 8) * kPageSize);
  }
  ASSERT_TRUE(fired) << "periodic service never ran";
  EXPECT_GE(ctx.counters.get(Event::kSchedQuantum), 1u)
      << "a quantum expiring during the service window must still count "
         "(Formula 4's N term)";
  sched.clear_periodic();
  sched.exit_process(proc.pid());
}

}  // namespace
}  // namespace ooh
