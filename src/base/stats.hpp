// Small descriptive-statistics helpers used by benches and tests.
#pragma once

#include <cstddef>
#include <span>

namespace ooh {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// (a - b) / b as a percentage; the paper's "overhead" metric.
[[nodiscard]] double overhead_pct(double measured, double baseline);

/// baseline / measured; the paper's "speedup" metric (>1 means faster).
[[nodiscard]] double speedup(double baseline, double measured);

}  // namespace ooh
