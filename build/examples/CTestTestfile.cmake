# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_checkpoint_restore]=] "/root/repo/build/examples/checkpoint_restore")
set_tests_properties([=[example_checkpoint_restore]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_gc_demo]=] "/root/repo/build/examples/gc_demo")
set_tests_properties([=[example_gc_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_live_migration]=] "/root/repo/build/examples/live_migration")
set_tests_properties([=[example_live_migration]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_secure_allocator]=] "/root/repo/build/examples/secure_allocator")
set_tests_properties([=[example_secure_allocator]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_run_app]=] "/root/repo/build/examples/run_app")
set_tests_properties([=[example_run_app]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_run_app_cli]=] "/root/repo/build/examples/run_app" "--app" "cache" "--size" "small" "--tech" "epml" "--scale" "512")
set_tests_properties([=[example_run_app_cli]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
