// Extended Page Table: per-VM GPA -> HPA mapping with accessed/dirty flags.
//
// Intel PML's trigger point lives here: a write that sets an EPT entry's
// dirty flag during the nested walk logs the GPA to the PML buffer
// (SDM Vol. 3C, "Page-Modification Logging").
//
// Concurrency: the EPT is the one table N vCPUs of an SMP guest share. In
// the default single-threaded mode every access is lock-free (and the
// RadixTable4 MRU walk cache stays hot). set_concurrent(true) — flipped at a
// quiescent point before vCPU threads start — serializes every table access
// behind one mutex, which also covers the walk cache. Returned entry
// pointers stay valid across unlock (leaves are never freed); concurrent
// flag updates are safe as long as vCPUs touch *distinct* entries, which
// disjoint per-process GPA ranges guarantee.
#pragma once

#include <mutex>

#include "base/types.hpp"
#include "sim/radix.hpp"

namespace ooh::sim {

struct EptEntry {
  Hpa hpa_page = 0;
  bool present : 1 = false;
  bool writable : 1 = false;
  bool accessed : 1 = false;
  bool dirty : 1 = false;
  /// Intel SPP: writes consult the sub-page permission table (sim/spp.hpp).
  bool spp : 1 = false;
};

class Ept {
 public:
  void map(Gpa gpa_page, Hpa hpa_page, bool writable = true);
  void unmap(Gpa gpa_page);

  [[nodiscard]] EptEntry* entry(Gpa gpa) noexcept {
    const auto lock = lock_if_concurrent();
    return table_.find(page_floor(gpa));
  }
  [[nodiscard]] const EptEntry* entry(Gpa gpa) const noexcept {
    const auto lock = lock_if_concurrent();
    return table_.find(page_floor(gpa));
  }

  /// GPA -> HPA for a present mapping; returns false when unmapped.
  [[nodiscard]] bool translate(Gpa gpa, Hpa& out) const noexcept;

  /// Visit every present entry as fn(gpa_page, EptEntry&).
  template <typename Fn>
  void for_each_present(Fn&& fn) {
    const auto lock = lock_if_concurrent();
    table_.for_each([&](u64 addr, EptEntry& e) {
      if (e.present) fn(addr, e);
    });
  }

  [[nodiscard]] u64 present_pages() const noexcept { return present_pages_; }

  /// Enter/leave intra-VM concurrent mode. Only call at quiescent points
  /// (no vCPU thread running); with `on`, every table access serializes
  /// behind an internal mutex. Off (the default) is the zero-overhead
  /// single-timeline mode — N=1 behaviour is unchanged.
  void set_concurrent(bool on) noexcept { concurrent_ = on; }
  [[nodiscard]] bool concurrent() const noexcept { return concurrent_; }

  // ---- paging-structure walk cache (see RadixTable4) -------------------------
  void invalidate_walk_cache() const noexcept {
    const auto lock = lock_if_concurrent();
    table_.invalidate_walk_cache();
  }
  [[nodiscard]] bool walk_cache_coherent() const noexcept {
    const auto lock = lock_if_concurrent();
    return table_.walk_cache_coherent();
  }
  /// Test-only: corrupt the walk cache so WALK-1 mutation tests can prove
  /// the coherence oracle notices.
  void debug_skew_walk_cache() noexcept { table_.debug_skew_walk_cache(); }

 private:
  [[nodiscard]] std::unique_lock<std::mutex> lock_if_concurrent() const {
    return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                       : std::unique_lock<std::mutex>();
  }

  RadixTable4<EptEntry> table_;
  u64 present_pages_ = 0;
  bool concurrent_ = false;
  mutable std::mutex mu_;
};

}  // namespace ooh::sim
