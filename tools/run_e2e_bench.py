#!/usr/bin/env python3
"""End-to-end figure wall-clock harness (PR 9 epoch-parallel engine).

gbench_sim_primitives times simulator primitives; this tool times what the
user actually waits for: whole figure binaries (fig5, fig8, fig10 at their
small/default configs) from exec to exit. It emits google-benchmark
compatible JSON so tools/check_bench_regression.py can gate the numbers
against a committed baseline exactly like the microbenches.

Two things are measured per target:
  * E2E_<target>/serial    — wall-clock with OOH_EPOCH_THREADS=1 (the old
    serial loop; this is the number comparable across PRs).
  * E2E_<target>/threads:N — wall-clock with N epoch workers (the
    epoch-parallel fan-out; on a multi-core runner this is the
    order-of-magnitude column, on a 1-core runner it documents the
    oversubscription cost instead).

Independently of timing, the harness enforces EPOCH-1 at the figure level:
for every target that fans cells across the epoch pool, the serial and
parallel runs' stdout must be byte-identical. A mismatch is a determinism
bug and fails the run regardless of speed.

Wall-clock is the min over --repetitions runs: min is the right estimator
for "how fast can this machine execute this code" because every source of
interference only adds time.

Usage:
  run_e2e_bench.py --build-dir build-perf --out e2e_current.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import time
from pathlib import Path

# (target, extra argv, fans cells across the epoch pool?). fig10 drives its
# multi-VM fleet through the TestBed worker pool (pre-epoch machinery), so
# it gets timed but not the serial-vs-parallel stdout compare.
TARGETS: list[tuple[str, list[str], bool]] = [
    ("fig5_boehm_tracker", [], True),
    ("fig8_criu_checkpoint", [], True),
    ("fig10_scalability_tracker", [], False),
]


def run_once(exe: Path, argv: list[str], threads: int) -> tuple[float, bytes]:
    """Run the binary once; return (wall seconds, stdout bytes)."""
    env = dict(os.environ, OOH_EPOCH_THREADS=str(threads))
    start = time.monotonic()
    proc = subprocess.run([str(exe), *argv], env=env, capture_output=True)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.decode(errors="replace"))
        raise SystemExit(f"run_e2e_bench: {exe.name} exited "
                         f"{proc.returncode} (threads={threads})")
    return elapsed, proc.stdout


def bench_entry(name: str, wall_s: float) -> dict:
    ms = wall_s * 1e3
    return {
        "name": name,
        "run_type": "iteration",
        "iterations": 1,
        # Whole-process wall-clock is the tracked quantity; cpu_time is
        # filled with the same value so generic gbench tooling stays happy,
        # but check_bench_regression.py compares real_time for E2E_ rows.
        "real_time": ms,
        "cpu_time": ms,
        "time_unit": "ms",
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, default=Path("build"),
                        help="CMake build tree containing bench/ binaries")
    parser.add_argument("--out", type=Path, required=True,
                        help="output JSON path (gbench-compatible)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="timed runs per target; min wall-clock is kept")
    parser.add_argument("--threads", type=int, default=4,
                        help="epoch worker count for the parallel column")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="measure only the serial column (still checks "
                             "serial-vs-parallel byte-identity once)")
    args = parser.parse_args(argv)

    benchmarks: list[dict] = []
    for target, extra, fans_out in TARGETS:
        exe = args.build_dir / "bench" / target
        if not exe.exists():
            raise SystemExit(f"run_e2e_bench: {exe} not built "
                             f"(cmake --build {args.build_dir} --target {target})")

        serial_walls: list[float] = []
        serial_out = b""
        for _ in range(max(1, args.repetitions)):
            wall, serial_out = run_once(exe, extra, threads=1)
            serial_walls.append(wall)
        benchmarks.append(bench_entry(f"E2E_{target}/serial", min(serial_walls)))
        print(f"  E2E_{target}/serial: {min(serial_walls) * 1e3:.0f} ms "
              f"(min of {len(serial_walls)})")

        if not fans_out:
            continue

        # EPOCH-1 at the figure level: the parallel run must emit the exact
        # bytes of the serial run. One verification run even when the
        # parallel timing column is skipped.
        reps = 1 if args.skip_parallel else max(1, args.repetitions)
        par_walls: list[float] = []
        par_out = b""
        for _ in range(reps):
            wall, par_out = run_once(exe, extra, threads=args.threads)
            par_walls.append(wall)
        if par_out != serial_out:
            raise SystemExit(
                f"run_e2e_bench: {target} stdout differs between "
                f"OOH_EPOCH_THREADS=1 and ={args.threads} — EPOCH-1 "
                "violated (worker count leaked into figure output)")
        print(f"  E2E_{target}: serial vs threads={args.threads} "
              "stdout byte-identical")
        if not args.skip_parallel:
            benchmarks.append(bench_entry(
                f"E2E_{target}/threads:{args.threads}", min(par_walls)))
            print(f"  E2E_{target}/threads:{args.threads}: "
                  f"{min(par_walls) * 1e3:.0f} ms (min of {len(par_walls)})")

    doc = {
        "context": {
            "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "executable": "tools/run_e2e_bench.py",
            "num_cpus": os.cpu_count(),
            "epoch_threads": args.threads,
        },
        "benchmarks": benchmarks,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"run_e2e_bench: wrote {len(benchmarks)} entries to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
