// Use-after-free quarantine tests: memory is never reused while a pointer
// to it exists anywhere in the scanned arena; dirty tracking keeps re-scans
// proportional to what changed; soundness holds under every technique.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "ooh/testbed.hpp"
#include "trackers/uafguard/quarantine.hpp"

namespace ooh::uaf {
namespace {

struct UafFixture {
  explicit UafFixture(lib::Technique tech = lib::Technique::kEpml)
      : bed(), kernel(bed.kernel()), proc(kernel.create_process()),
        alloc(kernel, proc, 8 * kMiB, tech) {
    kernel.scheduler().enter_process(proc.pid());
  }
  ~UafFixture() { kernel.scheduler().exit_process(proc.pid()); }
  lib::TestBed bed;
  guest::GuestKernel& kernel;
  guest::Process& proc;
  QuarantineAllocator alloc;
};

TEST(UafGuard, FreeQuarantinesUntilSweepProvesUnreferenced) {
  UafFixture f;
  const Gva a = f.alloc.alloc(64);
  f.alloc.free(a);
  EXPECT_EQ(f.alloc.quarantined_blocks(), 1u);
  EXPECT_TRUE(f.alloc.block_pinned(a));
  const auto st = f.alloc.sweep();
  EXPECT_TRUE(st.full);
  EXPECT_EQ(st.blocks_released, 1u);
  EXPECT_FALSE(f.alloc.block_pinned(a));
  // The freed slot is reusable now.
  EXPECT_EQ(f.alloc.alloc(64), a);
}

TEST(UafGuard, DanglingPointerPinsTheBlock) {
  UafFixture f;
  const Gva holder = f.alloc.alloc(64);
  const Gva victim = f.alloc.alloc(64);
  f.proc.write_u64(holder + 16, victim);  // the dangling pointer-to-be
  f.alloc.free(victim);

  auto st = f.alloc.sweep();
  EXPECT_EQ(st.blocks_released, 0u) << "a referenced block must stay quarantined";
  EXPECT_EQ(st.blocks_held, 1u);
  EXPECT_TRUE(f.alloc.block_pinned(victim));
  // No reuse: a fresh allocation cannot land on the victim.
  EXPECT_NE(f.alloc.alloc(64), victim);

  // Clear the dangling pointer; the page becomes dirty, the next sweep
  // rescans it and releases the block.
  f.proc.write_u64(holder + 16, 0);
  st = f.alloc.sweep();
  EXPECT_FALSE(st.full);
  EXPECT_EQ(st.blocks_released, 1u);
  EXPECT_FALSE(f.alloc.block_pinned(victim));
}

TEST(UafGuard, InteriorPointersCountConservatively) {
  UafFixture f;
  const Gva holder = f.alloc.alloc(64);
  const Gva victim = f.alloc.alloc(256);
  f.proc.write_u64(holder + 24, victim + 200);  // points into the middle
  f.alloc.free(victim);
  const auto st = f.alloc.sweep();
  EXPECT_EQ(st.blocks_released, 0u);
  EXPECT_TRUE(f.alloc.block_pinned(victim));
}

TEST(UafGuard, PointerWrittenBeforeFreeOnCleanPageStillPins) {
  // The subtle soundness case: the pointer was stored while the block was
  // alive, its page went clean (scanned once), and only then was the block
  // freed. The incremental sweep must still know about the reference.
  UafFixture f;
  const Gva holder = f.alloc.alloc(64);
  const Gva victim = f.alloc.alloc(64);
  f.proc.write_u64(holder + 16, victim);
  (void)f.alloc.sweep();  // full sweep: records holder's reference, page now clean
  f.alloc.free(victim);
  const auto st = f.alloc.sweep();  // incremental; holder's page is clean
  EXPECT_EQ(st.blocks_released, 0u)
      << "reference recorded on a clean page must keep pinning";
  EXPECT_TRUE(f.alloc.block_pinned(victim));
}

TEST(UafGuard, IncrementalSweepScansOnlyDirtyPages) {
  UafFixture f;
  // Fill many pages with allocations.
  std::vector<Gva> blocks;
  for (int i = 0; i < 512; ++i) blocks.push_back(f.alloc.alloc(240));
  const auto full = f.alloc.sweep();
  EXPECT_TRUE(full.full);
  EXPECT_GT(full.pages_scanned, 25u);
  // Touch a single page, then sweep again.
  f.proc.write_u64(blocks[0] + 8, 0x1234);
  const auto inc = f.alloc.sweep();
  EXPECT_FALSE(inc.full);
  EXPECT_LE(inc.pages_scanned, 2u) << "re-scan must be proportional to dirt";
}

TEST(UafGuard, DoubleFreeDetected) {
  UafFixture f;
  const Gva a = f.alloc.alloc(32);
  f.alloc.free(a);
  EXPECT_THROW(f.alloc.free(a), std::invalid_argument);
  EXPECT_THROW(f.alloc.free(a + 8), std::invalid_argument) << "interior free";
  EXPECT_THROW((void)f.alloc.alloc(0), std::invalid_argument);
}

class UafSoundness : public ::testing::TestWithParam<lib::Technique> {};

TEST_P(UafSoundness, RandomChurnNeverReusesReferencedMemory) {
  UafFixture f(GetParam());
  Rng rng(777);
  // slots: arena cells that hold pointers; owned[i] = the block they point to.
  std::vector<Gva> cells;
  const Gva cell_block = f.alloc.alloc(1024);  // 128 pointer cells
  for (int i = 0; i < 128; ++i) cells.push_back(cell_block + i * 8);
  std::vector<Gva> pointee(128, 0);
  std::vector<bool> freed(128, false);

  for (int round = 0; round < 6; ++round) {
    for (int op = 0; op < 200; ++op) {
      const u64 i = rng.below(cells.size());
      const u64 dice = rng.below(10);
      if (dice < 5) {
        // Point the cell at a fresh block (the old pointee simply leaks or
        // stays quarantined; its fate is no longer this cell's business).
        const Gva b = f.alloc.alloc(48 + 16 * rng.below(4));
        f.proc.write_u64(cells[i], b);
        pointee[i] = b;
        freed[i] = false;
      } else if (dice < 8 && pointee[i] != 0 && !freed[i]) {
        // Free while the pointer still dangles.
        f.alloc.free(pointee[i]);
        freed[i] = true;
      } else if (pointee[i] != 0) {
        // Clear the pointer (block may become releasable if freed).
        f.proc.write_u64(cells[i], 0);
        pointee[i] = 0;
        freed[i] = false;
      }
    }
    (void)f.alloc.sweep();
    // Property: every block freed while its cell still points at it must be
    // pinned as long as that cell was not overwritten.
    for (u64 i = 0; i < cells.size(); ++i) {
      if (pointee[i] != 0) {
        EXPECT_TRUE(f.alloc.block_pinned(pointee[i]))
            << "round " << round << ": referenced block released (UAF window)";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Techniques, UafSoundness,
                         ::testing::Values(lib::Technique::kOracle,
                                           lib::Technique::kProc,
                                           lib::Technique::kEpml,
                                           lib::Technique::kSpml),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case lib::Technique::kOracle: return "oracle";
                             case lib::Technique::kProc: return "proc";
                             case lib::Technique::kEpml: return "epml";
                             case lib::Technique::kSpml: return "spml";
                             default: return "other";
                           }
                         });

}  // namespace
}  // namespace ooh::uaf
