file(REMOVE_RECURSE
  "CMakeFiles/ooh_lib.dir/experiment.cpp.o"
  "CMakeFiles/ooh_lib.dir/experiment.cpp.o.d"
  "CMakeFiles/ooh_lib.dir/guard_alloc.cpp.o"
  "CMakeFiles/ooh_lib.dir/guard_alloc.cpp.o.d"
  "CMakeFiles/ooh_lib.dir/testbed.cpp.o"
  "CMakeFiles/ooh_lib.dir/testbed.cpp.o.d"
  "CMakeFiles/ooh_lib.dir/tracker.cpp.o"
  "CMakeFiles/ooh_lib.dir/tracker.cpp.o.d"
  "CMakeFiles/ooh_lib.dir/trackers.cpp.o"
  "CMakeFiles/ooh_lib.dir/trackers.cpp.o.d"
  "libooh_lib.a"
  "libooh_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
