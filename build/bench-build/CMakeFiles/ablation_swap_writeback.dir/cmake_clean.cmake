file(REMOVE_RECURSE
  "../bench/ablation_swap_writeback"
  "../bench/ablation_swap_writeback.pdb"
  "CMakeFiles/ablation_swap_writeback.dir/ablation_swap_writeback.cpp.o"
  "CMakeFiles/ablation_swap_writeback.dir/ablation_swap_writeback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_swap_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
