// Open-addressed set of guest virtual addresses, built to be cleared and
// refilled many times (the GC's per-cycle reachable set): capacity is kept
// across clear(), so steady-state cycles insert with no heap allocation,
// where a fresh unordered_set per cycle pays a node allocation per element
// plus rehashes. Host-side bookkeeping only — nothing observes iteration
// order, so membership structure cannot influence virtual time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "base/types.hpp"

namespace ooh {

class FlatGvaSet {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  [[nodiscard]] bool contains(Gva v) const noexcept {
    return !index_.empty() && index_[locate(v)] != kEmpty;
  }

  /// Returns true when `v` was newly inserted.
  bool insert(Gva v) {
    if (index_.empty() || (items_.size() + 1) * 4 > index_.size() * 3) grow();
    const std::size_t b = locate(v);
    if (index_[b] != kEmpty) return false;
    items_.push_back(v);
    index_[b] = static_cast<u32>(items_.size());
    return true;
  }

  /// Empties the set but keeps the capacity for the next fill.
  void clear() noexcept {
    items_.clear();
    std::fill(index_.begin(), index_.end(), kEmpty);
  }

 private:
  static constexpr u32 kEmpty = 0;  ///< index_ stores item pos + 1.

  [[nodiscard]] static u64 hash(Gva v) noexcept {
    const u64 h = (v >> 4) * 0x9E3779B97F4A7C15ULL;  // GC objects are 16-aligned
    return h ^ (h >> 29);
  }

  [[nodiscard]] std::size_t locate(Gva v) const noexcept {
    const std::size_t mask = index_.size() - 1;
    std::size_t b = static_cast<std::size_t>(hash(v)) & mask;
    while (index_[b] != kEmpty && items_[index_[b] - 1] != v) b = (b + 1) & mask;
    return b;
  }

  void grow() {
    const std::size_t n = std::max<std::size_t>(64, index_.size() * 2);
    index_.assign(n, kEmpty);
    const std::size_t mask = n - 1;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      std::size_t b = static_cast<std::size_t>(hash(items_[i])) & mask;
      while (index_[b] != kEmpty) b = (b + 1) & mask;
      index_[b] = static_cast<u32>(i) + 1;
    }
  }

  std::vector<Gva> items_;
  std::vector<u32> index_;
};

}  // namespace ooh
