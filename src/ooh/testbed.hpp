// TestBed: one Machine + hypervisor + N tenant VMs, each with a guest
// kernel -- the paper's experimental environment (§VI-A: one dedicated vCPU
// per VM, 5GB of guest memory, 1..5 tenant VMs for the scalability study).
//
// Tenant timelines are independent by construction (per-vCPU ExecContext,
// no shared mutable state except the thread-safe frame allocator), so
// run_tenants() can execute them on a worker pool of real threads and still
// produce bit-identical per-VM virtual-time results to a serial run.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "base/cost_model.hpp"
#include "guest/kernel.hpp"
#include "hypervisor/hypervisor.hpp"
#include "sim/check/coherence.hpp"
#include "sim/fault/fault_plan.hpp"
#include "sim/fault/injector.hpp"
#include "sim/machine.hpp"
#include "sim/snapshot/machine_image.hpp"

namespace ooh::lib {

struct TestBedOptions {
  u64 host_mem_bytes = 64 * kGiB;
  u64 vm_mem_bytes = 5 * kGiB;
  unsigned tenant_vms = 1;
  /// vCPUs per tenant VM. 1 (the default) reproduces the paper's
  /// one-dedicated-vCPU setup bit-identically; >1 builds SMP guests with
  /// per-vCPU dirty rings and switches each VM's EPT into concurrent mode
  /// so intra-VM vCPU threads may fault/map simultaneously.
  unsigned vcpus_per_vm = 1;
  CostModel cost = CostModel::paper_calibrated();
  VirtDuration sched_quantum = secs(1.0);
  /// Back-fill EPT violations with 2 MiB PS-bit leaves (host THP). Off by
  /// default: the all-4 KiB configuration reproduces the paper's numbers
  /// bit-for-bit.
  bool ept_huge = false;
  /// With ept_huge: shatter huge leaves to 4 KiB when a hypervisor logging
  /// session starts (KVM eager page splitting). Meaningless without
  /// ept_huge; on by default so dirty logging keeps page precision.
  bool eager_split = true;
  /// Fault-injection schedule. Empty (the default) = no injector is wired
  /// at all: runs are bit-identical to a bed without the fault subsystem.
  /// Non-empty: each tenant vCPU gets its own FaultInjector executing this
  /// plan on its private timeline, with the CoherenceChecker installed as
  /// the post-fault audit hook.
  sim::fault::FaultPlan fault_plan;
};

class TestBed {
 public:
  explicit TestBed(const TestBedOptions& opts = {});

  TestBed(const TestBed&) = delete;
  TestBed& operator=(const TestBed&) = delete;

  [[nodiscard]] sim::Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] hv::Hypervisor& hypervisor() noexcept { return *hypervisor_; }
  [[nodiscard]] unsigned tenant_count() const noexcept {
    return static_cast<unsigned>(kernels_.size());
  }
  [[nodiscard]] hv::Vm& vm(unsigned i = 0) { return hypervisor_->vm(i); }
  [[nodiscard]] guest::GuestKernel& kernel(unsigned i = 0) { return *kernels_.at(i); }
  /// Tenant i's execution context (its private clock and counters).
  [[nodiscard]] sim::ExecContext& ctx(unsigned i = 0) { return kernels_.at(i)->ctx(); }

  /// Execute `body(i)` once for every tenant VM.
  ///
  /// `threads <= 1`: plain serial loop on the calling thread.
  /// `threads  > 1`: worker-pool mode — up to that many host threads, each
  /// claiming whole tenant timelines (one VM runs on exactly one thread;
  /// VMs are never split across threads). `threads == 0` auto-sizes to the
  /// hardware concurrency. The first exception a timeline throws is
  /// rethrown on the caller after all workers join.
  void run_tenants(const std::function<void(unsigned vm_index)>& body,
                   unsigned threads = 1);

  /// The worker count run_tenants() would use for `threads == 0`.
  [[nodiscard]] static unsigned default_workers() noexcept;

  /// The machine-state coherence oracle, wired over every tenant. In audit
  /// builds (check::kCoherenceAuditsEnabled) it also runs automatically at
  /// collection intervals, migration rounds and after run_tenants().
  [[nodiscard]] check::CoherenceChecker& checker() noexcept { return *checker_; }

  /// Full coherence audit of the machine: every tenant VM plus the global
  /// frame-ownership pass. No-op unless this is an audit build — callable
  /// unconditionally from figure drivers without perturbing Release runs.
  void audit();

  // ---- snapshot / restore ---------------------------------------------------

  /// Capture the bed's full machine state at a quiescent point (between
  /// workload runs / collection intervals). Frame contents are shared
  /// copy-on-write with the live machine — a GiB-footprint bed snapshots in
  /// milliseconds. Throws std::logic_error if any session is mid-flight
  /// (see sim/snapshot/machine_image.hpp for the quiescence contract).
  [[nodiscard]] snapshot::MachineSnapshot save();

  /// Rewind this bed onto `snap`, which must have been captured from a bed
  /// built with the same TestBedOptions (same VM/vCPU/ring shapes — a
  /// structural mismatch throws std::runtime_error). Restoring legitimately
  /// rewinds virtual clocks, so the checker's CLK-1 history is reset.
  void restore(const snapshot::MachineSnapshot& snap);

  /// Canonical state stream of the bed right now — save() minus keeping the
  /// frames. Two beds in the same state produce identical bytes; the
  /// round-trip and epoch-determinism tests compare exactly this.
  [[nodiscard]] std::vector<u8> state_bytes() { return save().bytes; }

  /// Tenant i / vCPU `cpu`'s fault injector, or nullptr when the bed runs
  /// fault-free (TestBedOptions::fault_plan empty). Injectors are laid out
  /// tenant-major, `vcpus_per_vm` per tenant, so the historic single-index
  /// call fault_injector(i) still names tenant i's BSP injector at N=1.
  [[nodiscard]] sim::fault::FaultInjector* fault_injector(
      unsigned i = 0, unsigned cpu = 0) noexcept {
    const std::size_t idx = std::size_t{i} * vcpus_per_vm_ + cpu;
    return idx < injectors_.size() ? injectors_[idx].get() : nullptr;
  }

 private:
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<hv::Hypervisor> hypervisor_;
  std::vector<std::unique_ptr<guest::GuestKernel>> kernels_;
  std::vector<std::unique_ptr<sim::fault::FaultInjector>> injectors_;
  std::unique_ptr<check::CoherenceChecker> checker_;
  unsigned vcpus_per_vm_ = 1;
};

}  // namespace ooh::lib
