# Empty dependencies file for fig6_boehm_tracked.
# This may be replaced when dependencies are built.
