#include "ooh/adaptive/adaptive_tracker.hpp"

#include "hypervisor/hypervisor.hpp"
#include "sim/exec_context.hpp"

namespace ooh::lib {
namespace {

void add_phases(Phases& into, const Phases& p) {
  into.init += p.init;
  into.arm += p.arm;
  into.collect += p.collect;
  into.monitor += p.monitor;
  into.intervals += p.intervals;
  into.collected_pages += p.collected_pages;
}

}  // namespace

AdaptiveTracker::AdaptiveTracker(guest::GuestKernel& kernel,
                                 guest::Process& proc,
                                 const AdaptiveOptions& opts)
    : DirtyTracker(kernel, proc),
      opts_(opts),
      estimator_(opts.estimator_alpha),
      policy_(opts.policy),
      active_(make_tracker(opts.initial, kernel, proc)) {}

AdaptiveTracker::~AdaptiveTracker() { unregister_estimator(); }

void AdaptiveTracker::register_estimator() {
  if (estimator_registered_) return;
  // Dirty transitions dispatch on the chain of the vCPU that executed the
  // write; listen on every vCPU's chain (each event fires on exactly one).
  for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
    sim::WriteTrackRegistry& track = kernel_.vm().track(cpu);
    track.register_notifier(sim::TrackLayer::kGuestPtDirty, &estimator_);
    track.register_notifier(sim::TrackLayer::kEptDirty, &estimator_);
  }
  estimator_registered_ = true;
}

void AdaptiveTracker::unregister_estimator() {
  if (!estimator_registered_) return;
  for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
    sim::WriteTrackRegistry& track = kernel_.vm().track(cpu);
    track.unregister_notifier(sim::TrackLayer::kEptDirty, &estimator_);
    track.unregister_notifier(sim::TrackLayer::kGuestPtDirty, &estimator_);
  }
  estimator_registered_ = false;
}

void AdaptiveTracker::init() {
  register_estimator();
  estimator_.watch(proc_.pid());
  active_->init();
  estimator_.begin_window(proc_.pid(), kernel_.ctx_of(proc_).clock.now());
}

void AdaptiveTracker::begin_interval() { active_->begin_interval(); }

std::vector<Gva> AdaptiveTracker::collect() {
  // The active backend's own collect() wrapper counts kTrackerCollect,
  // attributes phase time and dedups — delegating at the public layer keeps
  // the accounting single-counted.
  std::vector<Gva> pages = active_->collect();
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  estimator_.note_interval(proc_.pid(), pages, m.clock.now(), m);
  const Technique want = policy_.decide(signal(), active_->technique());
  if (want != active_->technique()) switch_backend(want);
  return pages;
}

void AdaptiveTracker::switch_backend(Technique want) {
  // Handoff protocol (POL-1): this runs inside the tracker's synchronous
  // service window — the tracked process is preempted and the old backend's
  // interval was just collected, so the dirty baseline is empty. The old
  // backend tears down completely (wp restores writability, PML sessions
  // deactivate) before the new one arms; the caller's begin_interval()
  // then opens the new backend's first interval.
  sim::ExecContext& m = kernel_.ctx_of(proc_);
  m.count(Event::kPolicySwitch);
  m.charge_us(m.cost.policy_switch_us);
  add_phases(retired_, active_->phases());
  dropped_retired_ += active_->dropped();
  active_->shutdown();
  active_.reset();
  active_ = make_tracker(want, kernel_, proc_);
  active_->init();
  history_.push_back(want);
  // Handoff boundary: let an installed coherence hook audit this VM (the
  // POL-1 pass; no-op outside audit builds).
  kernel_.hypervisor().audit_now(kernel_.vm().id());
}

void AdaptiveTracker::shutdown() {
  if (active_) active_->shutdown();
  estimator_.unwatch(proc_.pid());
  unregister_estimator();
}

u64 AdaptiveTracker::dropped() const {
  return dropped_retired_ + (active_ ? active_->dropped() : 0);
}

const Phases& AdaptiveTracker::phases() const noexcept {
  agg_ = retired_;
  if (active_) add_phases(agg_, active_->phases());
  return agg_;
}

}  // namespace ooh::lib
