// SMP guest tests: multi-vCPU topology and round-robin placement, the
// mm_cpumask TLB-shootdown protocol (charges land on the owning vCPU, pinned
// processes pay nothing), bit-identical virtual time between serial and
// threaded execution of one VM's vCPUs, loss-free concurrent userspace ring
// drain under real threads (the TSan stress), the kDirtyRingFull injected
// spill path, migration's concurrent-drain equivalence, and the RING-1 /
// SHOOT-1 coherence-oracle mutation checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "guest/kernel.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/migration.hpp"
#include "ooh/testbed.hpp"
#include "sim/check/coherence.hpp"

namespace ooh {
namespace {

// ---- topology and placement -------------------------------------------------

TEST(SmpTopology, PerVcpuContextsRingsAndRoundRobinPlacement) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 64 * kMiB;
  opts.host_mem_bytes = 1 * kGiB;
  opts.vcpus_per_vm = 4;
  lib::TestBed bed(opts);
  hv::Vm& vm = bed.vm();
  guest::GuestKernel& k = bed.kernel();

  ASSERT_EQ(vm.vcpu_count(), 4u);
  ASSERT_EQ(k.vcpu_count(), 4u);
  for (unsigned cpu = 0; cpu < 4; ++cpu) {
    EXPECT_EQ(vm.vcpu(cpu).cpu_index(), cpu);
    EXPECT_EQ(vm.vcpu(cpu).vm_id(), vm.id());
    EXPECT_TRUE(vm.dirty_ring(cpu).empty());
    // Distinct timelines: charging one vCPU must not move another's clock.
    vm.vcpu(cpu).ctx().charge_us(1.0 + cpu);
  }
  for (unsigned cpu = 0; cpu < 4; ++cpu) {
    EXPECT_DOUBLE_EQ(vm.vcpu(cpu).ctx().clock.now().count(), 1.0 + cpu);
  }
  // BSP shorthands alias vCPU 0.
  EXPECT_EQ(&vm.ctx(), &vm.vcpu(0).ctx());
  EXPECT_EQ(&k.ctx(), &vm.vcpu(0).ctx());

  // create_process places round-robin with a singleton mm_cpumask.
  for (unsigned i = 0; i < 8; ++i) {
    guest::Process& p = k.create_process();
    EXPECT_EQ(p.cpu(), i % 4u);
    EXPECT_EQ(p.cpu_mask(), u64{1} << (i % 4u));
    EXPECT_EQ(&k.ctx_of(p), &vm.vcpu(i % 4u).ctx());
    EXPECT_EQ(&k.vcpu_of(p), &vm.vcpu(i % 4u));
  }
}

TEST(SmpTopology, SingleVcpuBedIsTheDefault) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 64 * kMiB;
  opts.host_mem_bytes = 1 * kGiB;
  lib::TestBed bed(opts);
  EXPECT_EQ(bed.vm().vcpu_count(), 1u);
  EXPECT_EQ(bed.kernel().vcpu_count(), 1u);
}

// ---- mm_cpumask shootdown protocol ------------------------------------------

class SmpShootdownTest : public ::testing::Test {
 protected:
  SmpShootdownTest()
      : machine_(256 * kMiB, CostModel::unit()),
        hv_(machine_),
        vm_(hv_.create_vm(64 * kMiB, 1u << 20, 2)),
        kernel_(hv_, vm_) {}

  sim::Machine machine_;
  hv::Hypervisor hv_;
  hv::Vm& vm_;
  guest::GuestKernel kernel_;
};

TEST_F(SmpShootdownTest, PinnedProcessPaysNoShootdown) {
  guest::Process& p = kernel_.create_process();
  const Gva base = p.mmap(4 * kPageSize);
  for (u64 i = 0; i < 4; ++i) p.touch_write(base + i * kPageSize);

  const double before = kernel_.ctx_of(p).clock.now().count();
  kernel_.tlb_flush_pid(p);
  kernel_.tlb_invalidate_page(p, base);
  EXPECT_EQ(kernel_.ctx_of(p).counters.get(Event::kTlbShootdownIpi), 0u);
  // Never-migrated mask is a singleton: the flush itself charges nothing
  // here (callers charge their own kTlbFlush), so N=1 semantics hold.
  EXPECT_DOUBLE_EQ(kernel_.ctx_of(p).clock.now().count(), before);
}

TEST_F(SmpShootdownTest, MigratedProcessShootsDownItsOldVcpu) {
  guest::Process& p = kernel_.create_process();
  ASSERT_EQ(p.cpu(), 0u);
  const Gva base = p.mmap(4 * kPageSize);
  p.touch_write(base);  // TLB entry + mapping on vCPU 0

  kernel_.migrate_process(p, 1);
  EXPECT_EQ(p.cpu(), 1u);
  EXPECT_EQ(p.cpu_mask(), 0b11u) << "old vCPU stays in the mm_cpumask";

  // The shootdown is issued from (and charged to) the owning vCPU 1; the
  // single remote in the mask costs exactly one IPI.
  sim::ExecContext& owner = kernel_.ctx_of(p);
  ASSERT_EQ(&owner, &vm_.vcpu(1).ctx());
  const double before = owner.clock.now().count();
  kernel_.tlb_invalidate_page(p, base);
  EXPECT_EQ(owner.counters.get(Event::kTlbShootdownIpi), 1u);
  EXPECT_DOUBLE_EQ(owner.clock.now().count(),
                   before + owner.cost.tlb_shootdown_us);
  EXPECT_EQ(vm_.vcpu(0).ctx().counters.get(Event::kTlbShootdownIpi), 0u)
      << "the remote victim is not charged";

  kernel_.tlb_flush_pid(p);
  EXPECT_EQ(owner.counters.get(Event::kTlbShootdownIpi), 2u);

  // The remote invalidation really happened: vCPU 0 no longer caches the
  // translation, so SHOOT-1's premise (no stale foreign entries) holds.
  EXPECT_EQ(vm_.vcpu(0).tlb().lookup(p.pid(), base), nullptr);
}

// ---- serial vs threaded SMP determinism -------------------------------------

struct CpuOutcome {
  double clock_us = 0.0;
  u64 tlb_miss = 0;
  u64 pml_log = 0;
  std::vector<Gpa> dirty;  ///< whole-VM harvest, sorted (shared across rows).
};

/// One 4-vCPU VM, one pinned process per vCPU, demand-faulted serially, then
/// a hypervisor PML session over a touch phase run either serially or with
/// one host thread per vCPU. Returns per-vCPU timelines + the harvest.
std::vector<CpuOutcome> run_smp(unsigned threads) {
  constexpr unsigned kCpus = 4;
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 128 * kMiB;
  opts.host_mem_bytes = 1 * kGiB;
  opts.vcpus_per_vm = kCpus;
  lib::TestBed bed(opts);
  hv::Vm& vm = bed.vm();
  guest::GuestKernel& k = bed.kernel();

  struct Job {
    guest::Process* proc = nullptr;
    Gva base = 0;
    u64 pages = 0;
  };
  std::vector<Job> jobs(kCpus);
  for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
    Job& j = jobs[cpu];
    j.proc = &k.create_process();
    j.pages = 64 + cpu * 32;  // distinct per-vCPU working sets
    j.base = j.proc->mmap(j.pages * kPageSize);
    // Serial warmup: demand-allocate frames in a fixed order so both modes
    // see identical GPA assignments; the timed phase then allocates nothing.
    for (u64 i = 0; i < j.pages; ++i) j.proc->touch_write(j.base + i * kPageSize);
  }

  hv::Hypervisor& hv = bed.hypervisor();
  hv.enable_pml_for_hyp(vm);
  const auto body = [&](unsigned cpu) {
    const Job& j = jobs[cpu];
    for (int pass = 0; pass < 3; ++pass) {
      for (u64 i = 0; i < j.pages; ++i) {
        j.proc->touch_write(j.base + i * kPageSize);
      }
    }
  };
  if (threads <= 1) {
    for (unsigned cpu = 0; cpu < kCpus; ++cpu) body(cpu);
  } else {
    std::vector<std::thread> pool;
    for (unsigned cpu = 0; cpu < kCpus; ++cpu) pool.emplace_back(body, cpu);
    for (std::thread& t : pool) t.join();
  }

  std::vector<Gpa> dirty = hv.harvest_hyp_dirty(vm);
  hv.disable_pml_for_hyp(vm);
  std::sort(dirty.begin(), dirty.end());
  bed.audit();

  std::vector<CpuOutcome> out(kCpus);
  for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
    out[cpu].clock_us = vm.vcpu(cpu).ctx().clock.now().count();
    out[cpu].tlb_miss = vm.vcpu(cpu).ctx().counters.get(Event::kTlbMiss);
    out[cpu].pml_log = vm.vcpu(cpu).ctx().counters.get(Event::kPmlLogGpa);
    out[cpu].dirty = dirty;
  }
  return out;
}

TEST(SmpDeterminism, SerialAndThreadedVcpusAreBitIdentical) {
  const std::vector<CpuOutcome> serial = run_smp(1);
  const std::vector<CpuOutcome> threaded = run_smp(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (unsigned cpu = 0; cpu < serial.size(); ++cpu) {
    SCOPED_TRACE("vcpu " + std::to_string(cpu));
    EXPECT_EQ(serial[cpu].clock_us, threaded[cpu].clock_us);
    EXPECT_EQ(serial[cpu].tlb_miss, threaded[cpu].tlb_miss);
    EXPECT_EQ(serial[cpu].pml_log, threaded[cpu].pml_log);
    EXPECT_EQ(serial[cpu].dirty, threaded[cpu].dirty);
    EXPECT_GT(serial[cpu].clock_us, 0.0);
  }
  // Distinct working sets must yield distinct timelines — guard against a
  // trivially-zero comparison.
  EXPECT_NE(serial[0].clock_us, serial[3].clock_us);
}

// ---- concurrent userspace ring drain (the TSan stress) ----------------------

TEST(SmpConcurrentDrain, VcpusFaultWhileUserspaceDrainsLossFree) {
  constexpr unsigned kCpus = 4;
  constexpr u64 kPages = 128;
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 128 * kMiB;
  opts.host_mem_bytes = 1 * kGiB;
  opts.vcpus_per_vm = kCpus;
  lib::TestBed bed(opts);
  hv::Vm& vm = bed.vm();
  guest::GuestKernel& k = bed.kernel();
  hv::Hypervisor& hv = bed.hypervisor();

  std::vector<guest::Process*> procs(kCpus);
  std::vector<Gva> bases(kCpus);
  for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
    procs[cpu] = &k.create_process();
    bases[cpu] = procs[cpu]->mmap(kPages * kPageSize);
  }
  hv.enable_pml_for_hyp(vm);

  // One producer thread per vCPU (demand faults + re-dirtying) racing one
  // SPSC consumer per ring; the consumers keep popping until every producer
  // is done, then sweep the tails.
  std::atomic<bool> done{false};
  std::atomic<u64> popped{0};
  std::vector<std::thread> pool;
  for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
    pool.emplace_back([&, cpu] {
      for (int pass = 0; pass < 4; ++pass) {
        for (u64 i = 0; i < kPages; ++i) {
          procs[cpu]->touch_write(bases[cpu] + i * kPageSize);
        }
      }
    });
  }
  std::vector<std::thread> drainers;
  for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
    drainers.emplace_back([&, cpu] {
      std::vector<Gpa> local;
      while (!done.load(std::memory_order_acquire)) {
        popped.fetch_add(hv.drain_dirty_ring(vm, cpu, local),
                         std::memory_order_relaxed);
        std::this_thread::yield();
      }
      popped.fetch_add(hv.drain_dirty_ring(vm, cpu, local),
                       std::memory_order_relaxed);
    });
  }
  for (std::thread& t : pool) t.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : drainers) t.join();

  // The quiescent harvest folds the concurrently-drained entries back in
  // (Vm::drained_log), so the union must be exactly the touched pages.
  std::vector<Gpa> dirty = hv.harvest_hyp_dirty(vm);
  hv.disable_pml_for_hyp(vm);
  std::sort(dirty.begin(), dirty.end());
  EXPECT_EQ(dirty.size(), u64{kCpus} * kPages);
  EXPECT_EQ(std::set<Gpa>(dirty.begin(), dirty.end()).size(), dirty.size());
  bed.audit();
}

// Teardown ordering: the drain thread must be stopped and joined before the
// Vm (and its rings) is destroyed. This runs the full stop -> join ->
// destroy protocol under real threads — with TSan in CI and the schedule
// explorer's mid_drain_teardown scenario covering the interleavings — and
// checks no entry is lost between the stop signal and the teardown harvest.
TEST(SmpConcurrentDrain, DrainThreadStopsAndJoinsBeforeVmTeardownLossFree) {
  constexpr unsigned kCpus = 2;
  constexpr u64 kPages = 64;
  std::vector<Gpa> drained_total;
  u64 expected = 0;
  {
    lib::TestBedOptions opts;
    opts.vm_mem_bytes = 64 * kMiB;
    opts.host_mem_bytes = 1 * kGiB;
    opts.vcpus_per_vm = kCpus;
    lib::TestBed bed(opts);
    hv::Vm& vm = bed.vm();
    guest::GuestKernel& k = bed.kernel();
    hv::Hypervisor& hv = bed.hypervisor();

    std::vector<guest::Process*> procs(kCpus);
    std::vector<Gva> bases(kCpus);
    for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
      procs[cpu] = &k.create_process();
      bases[cpu] = procs[cpu]->mmap(kPages * kPageSize);
    }
    hv.enable_pml_for_hyp(vm);

    std::atomic<bool> stop{false};
    std::vector<std::vector<Gpa>> per_drainer(kCpus);
    std::vector<std::thread> producers;
    std::vector<std::thread> drainers;
    for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
      producers.emplace_back([&, cpu] {
        for (u64 i = 0; i < kPages; ++i) {
          procs[cpu]->touch_write(bases[cpu] + i * kPageSize);
        }
      });
      drainers.emplace_back([&, cpu] {
        while (!stop.load(std::memory_order_acquire)) {
          hv.drain_dirty_ring(vm, cpu, per_drainer[cpu]);
          std::this_thread::yield();
        }
        // One final sweep after the stop signal: entries pushed between the
        // last loop pass and stop must not be stranded mid-pop.
        hv.drain_dirty_ring(vm, cpu, per_drainer[cpu]);
      });
    }
    for (std::thread& t : producers) t.join();
    // The teardown protocol under test: signal stop, join the drainers, and
    // only then harvest and let the Vm (rings included) be destroyed.
    stop.store(true, std::memory_order_release);
    for (std::thread& t : drainers) t.join();

    // harvest folds the concurrently-drained entries (Vm::drained_log) back
    // in with the ring tails, so it alone is the complete dirty set.
    drained_total = hv.harvest_hyp_dirty(vm);
    hv.disable_pml_for_hyp(vm);
    expected = u64{kCpus} * kPages;
    bed.audit();
  }  // TestBed (Vm, rings, kernels) destroyed here — after the joins.
  std::sort(drained_total.begin(), drained_total.end());
  EXPECT_EQ(drained_total.size(), expected);
  EXPECT_EQ(std::set<Gpa>(drained_total.begin(), drained_total.end()).size(),
            drained_total.size());
}

// ---- kDirtyRingFull fault injection -----------------------------------------

TEST(SmpFaultInjection, DirtyRingFullSpillsLossFreeOnEveryVcpu) {
  constexpr unsigned kCpus = 2;
  constexpr u64 kPages = 32;
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 64 * kMiB;
  opts.host_mem_bytes = 1 * kGiB;
  opts.vcpus_per_vm = kCpus;
  opts.cost = CostModel::unit();
  // Every ring arrival reports full: all entries take the spill path. The
  // per-vCPU injectors run the FAULT-2 discipline (post-fault audit) in
  // audit builds automatically.
  opts.fault_plan.add(
      {sim::fault::FaultPoint::kDirtyRingFull, /*first=*/0, /*every=*/1,
       /*limit=*/0, /*arg=*/0});
  lib::TestBed bed(opts);
  hv::Vm& vm = bed.vm();
  guest::GuestKernel& k = bed.kernel();
  ASSERT_NE(bed.fault_injector(0, 0), nullptr);
  ASSERT_NE(bed.fault_injector(0, kCpus - 1), nullptr);

  bed.hypervisor().enable_pml_for_hyp(vm);
  u64 expected = 0;
  for (unsigned p = 0; p < kCpus; ++p) {  // one process per vCPU
    guest::Process& proc = k.create_process();
    const Gva base = proc.mmap(kPages * kPageSize);
    for (u64 i = 0; i < kPages; ++i) proc.touch_write(base + i * kPageSize);
    expected += kPages;
  }
  std::vector<Gpa> dirty = bed.hypervisor().harvest_hyp_dirty(vm);
  bed.hypervisor().disable_pml_for_hyp(vm);

  EXPECT_EQ(dirty.size(), expected) << "the spill path must lose nothing";
  for (unsigned cpu = 0; cpu < kCpus; ++cpu) {
    EXPECT_GT(vm.vcpu(cpu).ctx().counters.get(Event::kDirtyRingFull), 0u)
        << "vcpu " << cpu;
    EXPECT_TRUE(vm.dirty_ring(cpu).empty())
        << "forced-full rings route everything through the spill log";
  }
  bed.audit();
}

// ---- migration with concurrent ring drain -----------------------------------

hv::MigrationReport run_migration(bool concurrent_drain) {
  // Big enough that the first pre-copy quantum logs more than one PML
  // buffer (512 entries): the mid-quantum PML-full drain lands entries in
  // the dirty ring while the quantum is still running, which is what the
  // concurrent drainers consume.
  constexpr u64 kHot = 1200;
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 64 * kMiB;
  opts.host_mem_bytes = 1 * kGiB;
  opts.vcpus_per_vm = 2;
  opts.cost = CostModel::unit();
  lib::TestBed bed(opts);
  guest::GuestKernel& k = bed.kernel();
  guest::Process& p = k.create_process();
  const Gva base = p.mmap(kHot * kPageSize);
  for (u64 i = 0; i < kHot; ++i) p.touch_write(base + i * kPageSize);

  hv::MigrationEngine engine(bed.hypervisor());
  hv::MigrationOptions mopts;
  mopts.concurrent_ring_drain = concurrent_drain;
  u64 hot = kHot;
  const hv::MigrationReport rep = engine.migrate(
      bed.vm(),
      [&] {
        // Shrinking hot set so pre-copy converges.
        hot = std::max<u64>(hot / 2, 8);
        for (u64 i = 0; i < hot; ++i) p.touch_write(base + i * kPageSize);
      },
      mopts);
  bed.audit();
  return rep;
}

TEST(SmpMigration, ConcurrentRingDrainIsVirtualTimeIdentical) {
  const hv::MigrationReport off = run_migration(false);
  const hv::MigrationReport on = run_migration(true);
  EXPECT_TRUE(off.converged);
  EXPECT_TRUE(on.converged);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.pages_sent, off.pages_sent);
  EXPECT_EQ(on.stop_copy_pages, off.stop_copy_pages);
  EXPECT_EQ(on.total_time.count(), off.total_time.count());
  EXPECT_EQ(on.downtime.count(), off.downtime.count());
  EXPECT_EQ(off.ring_drained, 0u);
  // The drainers' post-quantum sweep makes at least the final quantum's
  // entries drain concurrently, deterministically.
  EXPECT_GT(on.ring_drained, 0u);
}

// ---- coherence oracle: RING-1 and SHOOT-1 mutations -------------------------

class SmpCoherenceTest : public ::testing::Test {
 protected:
  SmpCoherenceTest()
      : machine_(256 * kMiB, CostModel::unit()),
        hv_(machine_),
        vm_(hv_.create_vm(64 * kMiB, 1u << 20, 2)),
        kernel_(hv_, vm_),
        checker_(machine_, hv_) {
    checker_.attach_kernel(vm_.id(), kernel_);
  }

  void expect_violation(const std::string& id) {
    try {
      checker_.audit_vm(vm_.id());
      ADD_FAILURE() << "expected InvariantViolation " << id << ", none thrown";
    } catch (const check::InvariantViolation& v) {
      EXPECT_EQ(v.id, id) << v.what();
    }
  }

  sim::Machine machine_;
  hv::Hypervisor hv_;
  hv::Vm& vm_;
  guest::GuestKernel kernel_;
  check::CoherenceChecker checker_;
};

TEST_F(SmpCoherenceTest, CleanSmpMachinePasses) {
  guest::Process& p = kernel_.create_process();
  const Gva base = p.mmap(8 * kPageSize);
  for (u64 i = 0; i < 8; ++i) p.touch_write(base + i * kPageSize);
  kernel_.migrate_process(p, 1);
  p.touch_write(base);
  EXPECT_NO_THROW(checker_.audit_vm(vm_.id()));
}

TEST_F(SmpCoherenceTest, MisalignedRingEntryViolatesRing1) {
  vm_.dirty_ring(0).spill(0x123);  // not page-aligned
  expect_violation("RING-1");
}

TEST_F(SmpCoherenceTest, OutOfRangeRingEntryViolatesRing1) {
  vm_.dirty_ring(1).spill(vm_.mem_bytes() + kPageSize);
  expect_violation("RING-1");
}

TEST_F(SmpCoherenceTest, ForeignTlbEntryViolatesShoot1) {
  guest::Process& p = kernel_.create_process();
  ASSERT_EQ(p.cpu(), 0u);
  const Gva base = p.mmap(kPageSize);
  p.touch_write(base);
  const sim::TlbEntry* e = vm_.vcpu(0).tlb().lookup(p.pid(), base);
  ASSERT_NE(e, nullptr);
  // A translation cached on a vCPU outside the process's mm_cpumask is
  // exactly the stale entry a missed shootdown would leave behind.
  vm_.vcpu(1).tlb().insert(p.pid(), base, *e);
  expect_violation("SHOOT-1");
}

}  // namespace
}  // namespace ooh
