
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ooh/experiment.cpp" "src/ooh/CMakeFiles/ooh_lib.dir/experiment.cpp.o" "gcc" "src/ooh/CMakeFiles/ooh_lib.dir/experiment.cpp.o.d"
  "/root/repo/src/ooh/guard_alloc.cpp" "src/ooh/CMakeFiles/ooh_lib.dir/guard_alloc.cpp.o" "gcc" "src/ooh/CMakeFiles/ooh_lib.dir/guard_alloc.cpp.o.d"
  "/root/repo/src/ooh/testbed.cpp" "src/ooh/CMakeFiles/ooh_lib.dir/testbed.cpp.o" "gcc" "src/ooh/CMakeFiles/ooh_lib.dir/testbed.cpp.o.d"
  "/root/repo/src/ooh/tracker.cpp" "src/ooh/CMakeFiles/ooh_lib.dir/tracker.cpp.o" "gcc" "src/ooh/CMakeFiles/ooh_lib.dir/tracker.cpp.o.d"
  "/root/repo/src/ooh/trackers.cpp" "src/ooh/CMakeFiles/ooh_lib.dir/trackers.cpp.o" "gcc" "src/ooh/CMakeFiles/ooh_lib.dir/trackers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/ooh_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/ooh_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ooh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ooh_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
