// PML's original job and OoH's coexistence story in one demo.
//
// A VM runs a write-heavy guest process that is simultaneously (a) being
// live-migrated by the hypervisor using PML (enabled_by_hyp) and (b) being
// dirty-tracked from inside the guest by an SPML session (enabled_by_guest).
// The two consumers share one hardware PML buffer; the §IV-C flags route
// each logged GPA to the right place without either stepping on the other.
//
//   $ ./live_migration
#include <cstdio>

#include "hypervisor/migration.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

using namespace ooh;

int main() {
  lib::TestBed bed;
  guest::GuestKernel& kernel = bed.kernel();
  hv::Hypervisor& hypervisor = bed.hypervisor();
  hv::Vm& vm = bed.vm();

  // The guest process: a working set with a hot half and a cold half.
  guest::Process& proc = kernel.create_process();
  const u64 pages = 2048;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  // In-guest SPML tracking session, active during the whole migration.
  auto tracker = lib::make_tracker(lib::Technique::kSpml, kernel, proc);
  tracker->init();
  tracker->begin_interval();
  std::printf("SPML session active (enabled_by_guest=%d)\n",
              static_cast<int>(vm.pml_enabled_by_guest()));

  // Hypervisor-side pre-copy migration; the guest keeps dirtying its hot
  // half between rounds.
  hv::MigrationEngine engine(hypervisor);
  hv::MigrationOptions opts;
  opts.stop_copy_threshold_pages = 64;
  unsigned round = 0;
  const hv::MigrationReport rep = engine.migrate(vm, [&] {
    kernel.scheduler().enter_process(proc.pid());
    const u64 hot = pages / (2u << std::min(round, 8u));  // cooling workload
    for (u64 i = 0; i < hot; ++i) proc.touch_write(base + i * kPageSize);
    kernel.scheduler().exit_process(proc.pid());
    ++round;
  });

  std::printf("\nmigration report (enabled_by_hyp path):\n");
  std::printf("  pre-copy rounds : %u (%s)\n", rep.rounds,
              rep.converged ? "converged" : "forced stop-and-copy");
  std::printf("  pages sent      : %llu (initial copy %llu, stop-and-copy %llu)\n",
              static_cast<unsigned long long>(rep.pages_sent),
              static_cast<unsigned long long>(rep.initial_pages),
              static_cast<unsigned long long>(rep.stop_copy_pages));
  std::printf("  total time      : %s\n", format_duration(rep.total_time).c_str());
  std::printf("  downtime        : %s\n", format_duration(rep.downtime).c_str());

  // The guest-side tracker observed the same writes, through its own ring.
  const std::vector<Gva> dirty = tracker->collect();
  std::printf("\nguest SPML session still intact: collected %llu dirty GVAs\n",
              static_cast<unsigned long long>(dirty.size()));
  std::printf("hypervisor flag now: enabled_by_hyp=%d, guest flag: enabled_by_guest=%d\n",
              static_cast<int>(vm.pml_enabled_by_hyp()),
              static_cast<int>(vm.pml_enabled_by_guest()));
  tracker->shutdown();
  std::printf("\nCoexistence held: neither consumer lost events nor disabled the other.\n");
  return 0;
}
