// Compute-fidelity tests: in data-backed mode, the Phoenix workloads run
// their real algorithms over real bytes in guest memory; results must match
// independently computed host references -- proving the whole data path
// (MMU translation, EPT backing, page contents) end to end.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "base/rng.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "trackers/criu/checkpoint.hpp"
#include "workloads/phoenix.hpp"

namespace ooh::wl {
namespace {

TEST(WorkloadCompute, HistogramMatchesHostReference) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 bytes = 64 * kPageSize;
  Histogram w(bytes, /*data_backed=*/true);
  w.setup(proc);
  w.run(proc);

  // Host reference: regenerate the same synthetic image and bin it.
  std::vector<u64> expect(3 * 256, 0);
  Rng fill(0x1457);
  std::vector<u8> page(kPageSize);
  for (u64 off = 0; off < bytes; off += kPageSize) {
    for (u64 i = 0; i < kPageSize; ++i) page[i] = static_cast<u8>(fill.next());
    for (u64 i = 0; i + 2 < kPageSize; i += 3) {
      for (unsigned c = 0; c < 3; ++c) ++expect[c * 256 + page[i + c]];
    }
  }
  u64 total = 0;
  for (unsigned c = 0; c < 3; ++c) {
    for (unsigned v = 0; v < 256; ++v) {
      ASSERT_EQ(w.bin(c, v), expect[c * 256 + v]) << "bin(" << c << "," << v << ")";
      total += w.bin(c, v);
    }
  }
  EXPECT_GT(total, 0u);
}

TEST(WorkloadCompute, MatrixMultiplyMatchesHostReference) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 n = 48;
  MatrixMultiply w(n, /*data_backed=*/true);
  w.setup(proc);
  w.run(proc);

  for (u64 r = 0; r < n; r += 7) {
    for (u64 c = 0; c < n; c += 5) {
      u64 acc = 0;
      for (u64 kk = 0; kk < n; ++kk) {
        acc += static_cast<u64>(MatrixMultiply::a_value(r, kk)) *
               MatrixMultiply::b_value(kk, c);
      }
      EXPECT_EQ(w.element(proc, r, c), static_cast<u32>(acc))
          << "C[" << r << "][" << c << "]";
    }
  }
}

TEST(WorkloadCompute, WordCountMatchesHostReference) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 bytes = 32 * kPageSize;
  WordCount w(bytes, /*data_backed=*/true);
  w.setup(proc);
  w.run(proc);

  // Host reference: tokenise the same synthetic text.
  const std::vector<u8> text = WordCount::synth_text(bytes);
  u64 expect = 0;
  bool in_word = false;
  for (const u8 ch : text) {
    if (ch == ' ' || ch == 0) {
      if (in_word) ++expect;
      in_word = false;
    } else {
      in_word = true;
    }
  }
  if (in_word) ++expect;
  EXPECT_EQ(w.total_words(), expect);
  EXPECT_GT(expect, bytes / 12) << "sanity: words average under 12 bytes";
}

TEST(WorkloadCompute, KmeansConvergesAndSeparatesClusters) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  // 8 natural groups, 8 clusters: Lloyd must separate them perfectly.
  Kmeans w(/*dims=*/8, /*clusters=*/8, /*points=*/256, /*iters=*/4,
           /*data_backed=*/true);
  w.setup(proc);
  w.run(proc);

  // Inertia is non-increasing across iterations (Lloyd's invariant).
  const std::vector<double>& inertia = w.inertia_history();
  ASSERT_EQ(inertia.size(), 4u);
  for (std::size_t i = 1; i < inertia.size(); ++i) {
    EXPECT_LE(inertia[i], inertia[i - 1] + 1e-6);
  }
  // Points of the same natural group end in the same cluster, and distinct
  // groups in distinct clusters.
  std::array<u64, 8> cluster_of_group{};
  for (u64 g = 0; g < 8; ++g) cluster_of_group[g] = w.assignment_of(proc, g);
  std::set<u64> distinct(cluster_of_group.begin(), cluster_of_group.end());
  EXPECT_EQ(distinct.size(), 8u);
  for (u64 p = 0; p < 256; ++p) {
    EXPECT_EQ(w.assignment_of(proc, p), cluster_of_group[p % 8]) << "point " << p;
  }
}

TEST(WorkloadCompute, DataBackedRunsAreTrackable) {
  // The real-compute path produces the same complete dirty capture.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  MatrixMultiply w(32, /*data_backed=*/true);
  w.setup(proc);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  const lib::RunResult r = lib::run_tracked(k, proc, w.runner(), tracker.get());
  tracker->shutdown();
  EXPECT_EQ(r.captured_truth, r.truth_pages);
  EXPECT_GE(r.truth_pages, pages_for_bytes(32 * 32 * 4));
}

TEST(WorkloadCompute, CheckpointPreservesComputedResults) {
  // Checkpoint the process after the computation; restore; the product must
  // still verify from the restored memory.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 n = 32;
  MatrixMultiply w(n, /*data_backed=*/true);
  w.setup(proc);

  criu::Checkpointer cp(k, lib::Technique::kEpml);
  const criu::CheckpointResult res = cp.checkpoint_during(proc, w.runner());
  guest::Process& restored = k.create_process();
  criu::restore(restored, res.image);

  for (u64 r = 0; r < n; r += 3) {
    u64 acc = 0;
    for (u64 kk = 0; kk < n; ++kk) {
      acc += static_cast<u64>(MatrixMultiply::a_value(r, kk)) *
             MatrixMultiply::b_value(kk, r);
    }
    EXPECT_EQ(w.element(restored, r, r), static_cast<u32>(acc));
  }
}

}  // namespace
}  // namespace ooh::wl
