#include "model/formulas.hpp"

#include <cmath>
#include <stdexcept>

namespace ooh::model {

Estimate estimate(lib::Technique t, const ModelParams& p, const CostModel& cost) {
  Estimate e;
  const double mem = static_cast<double>(p.mem_bytes);
  const double intervals = static_cast<double>(p.intervals);
  const double dirty = static_cast<double>(p.dirty_pages);
  const double faults = static_cast<double>(p.faults);
  const double n = static_cast<double>(p.n_ctx_switches);
  (void)mem;

  switch (t) {
    case lib::Technique::kProc:
      // E(C_/proc) = E(clear_refs) + E(userspace page-table walk), per interval.
      e.technique_us =
          intervals * (cost.clear_refs_us(p.mem_bytes) + cost.pagemap_scan_us(p.mem_bytes) +
                       cost.tlb_flush_us + 4 * cost.ctx_switch_us);
      // I(C_/proc, C_tked) = kernel-space #PF handling + context switches.
      e.impact_us =
          faults * (cost.pfh_kernel_per_fault_us(p.mem_bytes) + 2 * cost.ctx_switch_us);
      break;

    case lib::Technique::kUfd:
      // E(C_UFD) = write-protect/register ioctls + the full fault service
      // (the paper's Formula 4 lists PFH_user under I; in our shared-clock
      // attribution the whole fault lands in the Tracker's monitor bucket,
      // so the model mirrors that and sets I = 0 to avoid double counting).
      e.technique_us = intervals * (cost.ufd_write_protect_us(p.mem_bytes) +
                                    cost.tlb_flush_us + 2 * cost.ctx_switch_us) +
                       faults * (cost.pfh_user_per_fault_us(p.mem_bytes) +
                                 cost.pfh_kernel_per_fault_us(p.mem_bytes) +
                                 2 * cost.ctx_switch_us);
      e.impact_us = 0.0;
      break;

    case lib::Technique::kSpml:
      // E(C_SPML) = ring-buffer copy + reverse mapping (+ the pagemap scan
      // that builds the GPA->GVA index) + fetch ioctls + interval reset.
      // Reverse-mapped addresses are cached (§VI-E footnote 2): dirty_pages
      // here counts only the *uncached* lookups (kReverseMapLookup).
      e.technique_us = dirty * cost.reverse_map_per_page_us(p.mem_bytes) +
                       static_cast<double>(p.rb_entries) *
                           (cost.rb_copy_per_entry_us(p.mem_bytes) +
                            cost.dbit_clear_ns * 1e-3) +
                       static_cast<double>(p.rmap_scans) *
                           cost.pagemap_scan_us(p.mem_bytes) +
                       intervals * (cost.hc_enable_logging_us + cost.tlb_flush_us +
                                    2 * cost.ctx_switch_us);
      // I(C_SPML, C_tked) = PML-full VM-exits + N x enable/disable hypercalls.
      e.impact_us = static_cast<double>(p.pml_full_exits) *
                        (cost.vmexit_us +
                         kPmlBufferEntries * cost.drain_entry_ns * 1e-3) +
                    n * (cost.hc_enable_logging_us +
                         cost.spml_disable_logging_us(p.mem_bytes) +
                         static_cast<double>(p.rb_entries) /
                             std::max(1.0, n) * cost.drain_entry_ns * 1e-3);
      break;

    case lib::Technique::kEpml:
      // E(C_EPML) = ring-buffer copy into userspace + per-page dirty-flag
      // re-arm + fetch ioctls; no reverse mapping (§IV-D).
      e.technique_us = static_cast<double>(p.rb_entries) *
                           (cost.rb_copy_per_entry_us(p.mem_bytes) +
                            cost.dbit_clear_ns * 1e-3) +
                       intervals * 2 * cost.ctx_switch_us;
      // I(C_EPML, C_tked) = N x vmread/vmwrite + self-IPI drains.
      e.impact_us =
          n * 3 * cost.vmwrite_us +
          static_cast<double>(p.self_ipis) *
              (cost.self_ipi_us + cost.irq_dispatch_us + cost.vmread_us + cost.vmwrite_us +
               kPmlBufferEntries * cost.drain_entry_ns * 1e-3);
      break;

    case lib::Technique::kWp:
      // E(C_wp) = per-interval re-protect pass (EPT entry updates + TLB
      // shootdown + the collect ioctl's world switches).
      e.technique_us = intervals * (cost.tlb_flush_us + 2 * cost.ctx_switch_us) +
                       dirty * cost.dbit_clear_ns * 1e-3;
      // I(C_wp, C_tked) = one EPT-violation VM-exit per first write.
      e.impact_us = faults * (cost.ept_violation_us + cost.vmexit_us);
      break;

    case lib::Technique::kOracle:
      break;  // E(C_oracle) = 0 by definition (§VI-B).

    case lib::Technique::kSeg:
    case lib::Technique::kAdaptive:
      // No closed-form estimate: seg's superset reporting and the adaptive
      // plane's backend mix are workload-dependent; measure, don't model.
      break;
  }
  return e;
}

ModelParams params_from_events(lib::Technique t, u64 mem_bytes,
                               const EventCounters& events) {
  ModelParams p;
  p.mem_bytes = mem_bytes;
  p.intervals = std::max<u64>(1, events.get(Event::kTrackerCollect));
  p.rb_entries = events.get(Event::kRingBufFetchEntry);
  p.dirty_pages = p.rb_entries;
  p.n_ctx_switches = events.get(Event::kSchedQuantum) + p.intervals + 1;
  p.pml_full_exits = events.get(Event::kVmExitPmlFull);
  p.self_ipis = events.get(Event::kSelfIpi);
  switch (t) {
    case lib::Technique::kProc:
      p.faults = events.get(Event::kPageFaultSoftDirty);
      break;
    case lib::Technique::kUfd:
      p.faults = events.get(Event::kPageFaultUffd);
      break;
    case lib::Technique::kSpml:
      p.dirty_pages = events.get(Event::kReverseMapLookup);
      p.rmap_scans = events.get(Event::kPagemapScan);
      break;
    case lib::Technique::kWp:
      p.faults = events.get(Event::kEptWpFault);
      p.dirty_pages = p.faults;
      break;
    default:
      break;
  }
  return p;
}

double accuracy_pct(double estimated, double measured) {
  if (measured <= 0.0) throw std::invalid_argument("accuracy_pct: nonpositive measured");
  return 100.0 * (1.0 - std::fabs(estimated - measured) / measured);
}

}  // namespace ooh::model
