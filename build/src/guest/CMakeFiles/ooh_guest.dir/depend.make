# Empty dependencies file for ooh_guest.
# This may be replaced when dependencies are built.
