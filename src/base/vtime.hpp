// Virtual time. All latencies in the simulation are virtual: the machine
// model advances a per-experiment clock by calibrated primitive costs
// (see CostModel); no wall-clock time is ever measured by the harness.
#pragma once

#include <chrono>
#include <string>

namespace ooh {

/// Virtual duration, double-precision microseconds. Microseconds are the
/// natural unit of the paper's Table V; double rep keeps sub-ns per-page
/// costs exact enough over billions of events.
using VirtDuration = std::chrono::duration<double, std::micro>;

[[nodiscard]] constexpr VirtDuration usecs(double v) noexcept { return VirtDuration{v}; }
[[nodiscard]] constexpr VirtDuration msecs(double v) noexcept { return VirtDuration{v * 1e3}; }
[[nodiscard]] constexpr VirtDuration secs(double v) noexcept { return VirtDuration{v * 1e6}; }
[[nodiscard]] constexpr VirtDuration nsecs(double v) noexcept { return VirtDuration{v * 1e-3}; }

[[nodiscard]] constexpr double to_us(VirtDuration d) noexcept { return d.count(); }
[[nodiscard]] constexpr double to_ms(VirtDuration d) noexcept { return d.count() / 1e3; }
[[nodiscard]] constexpr double to_s(VirtDuration d) noexcept { return d.count() / 1e6; }

/// Human-readable rendering with an auto-selected unit ("3.21 ms").
[[nodiscard]] std::string format_duration(VirtDuration d);

}  // namespace ooh
