
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/kernel.cpp" "src/guest/CMakeFiles/ooh_guest.dir/kernel.cpp.o" "gcc" "src/guest/CMakeFiles/ooh_guest.dir/kernel.cpp.o.d"
  "/root/repo/src/guest/ooh_module.cpp" "src/guest/CMakeFiles/ooh_guest.dir/ooh_module.cpp.o" "gcc" "src/guest/CMakeFiles/ooh_guest.dir/ooh_module.cpp.o.d"
  "/root/repo/src/guest/process.cpp" "src/guest/CMakeFiles/ooh_guest.dir/process.cpp.o" "gcc" "src/guest/CMakeFiles/ooh_guest.dir/process.cpp.o.d"
  "/root/repo/src/guest/procfs.cpp" "src/guest/CMakeFiles/ooh_guest.dir/procfs.cpp.o" "gcc" "src/guest/CMakeFiles/ooh_guest.dir/procfs.cpp.o.d"
  "/root/repo/src/guest/scheduler.cpp" "src/guest/CMakeFiles/ooh_guest.dir/scheduler.cpp.o" "gcc" "src/guest/CMakeFiles/ooh_guest.dir/scheduler.cpp.o.d"
  "/root/repo/src/guest/swap.cpp" "src/guest/CMakeFiles/ooh_guest.dir/swap.cpp.o" "gcc" "src/guest/CMakeFiles/ooh_guest.dir/swap.cpp.o.d"
  "/root/repo/src/guest/uffd.cpp" "src/guest/CMakeFiles/ooh_guest.dir/uffd.cpp.o" "gcc" "src/guest/CMakeFiles/ooh_guest.dir/uffd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypervisor/CMakeFiles/ooh_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ooh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ooh_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
