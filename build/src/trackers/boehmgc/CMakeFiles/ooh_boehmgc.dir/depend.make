# Empty dependencies file for ooh_boehmgc.
# This may be replaced when dependencies are built.
