file(REMOVE_RECURSE
  "CMakeFiles/ooh_workloads.dir/gcbench.cpp.o"
  "CMakeFiles/ooh_workloads.dir/gcbench.cpp.o.d"
  "CMakeFiles/ooh_workloads.dir/phoenix.cpp.o"
  "CMakeFiles/ooh_workloads.dir/phoenix.cpp.o.d"
  "CMakeFiles/ooh_workloads.dir/registry.cpp.o"
  "CMakeFiles/ooh_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/ooh_workloads.dir/tkrzw.cpp.o"
  "CMakeFiles/ooh_workloads.dir/tkrzw.cpp.o.d"
  "CMakeFiles/ooh_workloads.dir/workload.cpp.o"
  "CMakeFiles/ooh_workloads.dir/workload.cpp.o.d"
  "libooh_workloads.a"
  "libooh_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
