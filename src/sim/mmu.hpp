// The MMU write path: TLB -> guest page-table walk -> EPT walk.
//
// Every dirty-producing transition the walk observes is dispatched through
// the vCPU's page-track notifier chain (sim/page_track.hpp) at the layer
// where it originates:
//   * a guest-PTE dirty-flag transition -> kGuestPtDirty (the EPML circuit
//     logs the GVA if armed);
//   * an EPT accessed-flag transition  -> kEptAccessed (read-logging);
//   * an EPT dirty-flag transition     -> kEptDirty (the Intel PML circuit
//     logs the GPA if armed);
//   * a write to a write-protected EPT entry -> kEptWpFault (KVM
//     page_track-style write interception; must be handled).
//
// Guest-level faults are *returned*, not handled: the guest kernel owns
// fault policy (demand paging, soft-dirty, userfaultfd) and retries.
#pragma once

#include "base/types.hpp"
#include "sim/ept.hpp"
#include "sim/exec_context.hpp"
#include "sim/page_table.hpp"
#include "sim/spp.hpp"

namespace ooh::sim {

class Vcpu;

class Mmu {
 public:
  /// All time and events the walk circuit charges go to `vcpu`'s own
  /// execution context. `spp` is the sub-page permission table the hardware
  /// consults for EPT entries with the spp flag (nullptr = SPP absent from
  /// this machine).
  Mmu(Vcpu& vcpu, Ept& ept, SppTable* spp = nullptr);

  enum class Status {
    kOk,
    kFaultNotPresent,   ///< PTE absent: demand paging or ufd `miss` territory.
    kFaultNotWritable,  ///< write to a present RO/uffd-wp PTE: tracking territory.
    kFaultSubPage,      ///< write blocked by an SPP sub-page mask (guard hit).
  };

  struct Result {
    Status status = Status::kOk;
    Hpa hpa = 0;  ///< translated host physical address (valid when kOk).
  };

  /// Perform one access at `gva` for guest process `pid` through `pt`.
  [[nodiscard]] Result access(u32 pid, GuestPageTable& pt, Gva gva, bool is_write);

  /// Batched fast path: serve up to `n` stride-spaced accesses starting at
  /// `gva` entirely from cached translations, without re-entering the full
  /// per-access pipeline. For each access served, the *exact* per-access
  /// sequence of the TLB-hit branch of access() runs — count(kTlbHit) then
  /// charge_ns(tlb_hit_ns) — followed by `post(gva_page)`, where the caller
  /// performs whatever it would have done after a kOk access (truth
  /// recording, scheduler progress, the workload's own charge). Virtual
  /// time is therefore bit-identical to the loop this replaces; only host
  /// overhead (repeated hash probes and call layers) is removed.
  ///
  /// Stops at the first access a cached translation cannot serve (TLB miss,
  /// or a write through a clean/RO entry — both need the full walk and its
  /// fault/logging side effects) and returns the number of accesses
  /// completed; the caller routes the next access through access() and may
  /// then resume. `post` may mutate the TLB indirectly (a scheduler service
  /// can flush or fill it); the memoised entry is revalidated through
  /// Tlb::generation() whenever that happens.
  template <typename PostFn>
  [[nodiscard]] u64 access_run(u32 pid, Gva gva, u64 stride, u64 n, bool is_write,
                               PostFn&& post) {
    u64 done = 0;
    Gva memo_page = ~u64{0};
    const TlbEntry* te = nullptr;
    u64 memo_gen = 0;
    while (done < n) {
      const Gva page = page_floor(gva + done * stride);
      if (te == nullptr || page != memo_page || tlb_.generation() != memo_gen) {
        te = tlb_.lookup(pid, page);
        if (te == nullptr) break;
        memo_page = page;
        memo_gen = tlb_.generation();
      }
      if (is_write && !(te->writable && te->dirty)) break;
      ctx_.count(Event::kTlbHit);
      ctx_.charge_ns(ctx_.cost.tlb_hit_ns);
      post(page);
      ++done;
    }
    return done;
  }

  [[nodiscard]] Ept& ept() noexcept { return ept_; }

 private:
  ExecContext& ctx_;
  Vcpu& vcpu_;
  Tlb& tlb_;
  Ept& ept_;
  SppTable* spp_;
};

}  // namespace ooh::sim
