
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_base.cpp" "tests/CMakeFiles/ooh_tests.dir/test_base.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_base.cpp.o.d"
  "/root/repo/tests/test_consistency.cpp" "tests/CMakeFiles/ooh_tests.dir/test_consistency.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_consistency.cpp.o.d"
  "/root/repo/tests/test_criu.cpp" "tests/CMakeFiles/ooh_tests.dir/test_criu.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_criu.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/ooh_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_failures.cpp" "tests/CMakeFiles/ooh_tests.dir/test_failures.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_failures.cpp.o.d"
  "/root/repo/tests/test_gc.cpp" "tests/CMakeFiles/ooh_tests.dir/test_gc.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_gc.cpp.o.d"
  "/root/repo/tests/test_gc_stress.cpp" "tests/CMakeFiles/ooh_tests.dir/test_gc_stress.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_gc_stress.cpp.o.d"
  "/root/repo/tests/test_guest.cpp" "tests/CMakeFiles/ooh_tests.dir/test_guest.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_guest.cpp.o.d"
  "/root/repo/tests/test_hypervisor.cpp" "tests/CMakeFiles/ooh_tests.dir/test_hypervisor.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_hypervisor.cpp.o.d"
  "/root/repo/tests/test_kv_store.cpp" "tests/CMakeFiles/ooh_tests.dir/test_kv_store.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_kv_store.cpp.o.d"
  "/root/repo/tests/test_lifecycle.cpp" "tests/CMakeFiles/ooh_tests.dir/test_lifecycle.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_lifecycle.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/ooh_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/ooh_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_ooh_module.cpp" "tests/CMakeFiles/ooh_tests.dir/test_ooh_module.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_ooh_module.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/ooh_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_security.cpp" "tests/CMakeFiles/ooh_tests.dir/test_security.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_security.cpp.o.d"
  "/root/repo/tests/test_sim_paging.cpp" "tests/CMakeFiles/ooh_tests.dir/test_sim_paging.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_sim_paging.cpp.o.d"
  "/root/repo/tests/test_sim_pml.cpp" "tests/CMakeFiles/ooh_tests.dir/test_sim_pml.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_sim_pml.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/ooh_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_spp.cpp" "tests/CMakeFiles/ooh_tests.dir/test_spp.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_spp.cpp.o.d"
  "/root/repo/tests/test_swap.cpp" "tests/CMakeFiles/ooh_tests.dir/test_swap.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_swap.cpp.o.d"
  "/root/repo/tests/test_trackers.cpp" "tests/CMakeFiles/ooh_tests.dir/test_trackers.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_trackers.cpp.o.d"
  "/root/repo/tests/test_uafguard.cpp" "tests/CMakeFiles/ooh_tests.dir/test_uafguard.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_uafguard.cpp.o.d"
  "/root/repo/tests/test_workload_compute.cpp" "tests/CMakeFiles/ooh_tests.dir/test_workload_compute.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_workload_compute.cpp.o.d"
  "/root/repo/tests/test_workload_profiles.cpp" "tests/CMakeFiles/ooh_tests.dir/test_workload_profiles.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_workload_profiles.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/ooh_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_workloads.cpp.o.d"
  "/root/repo/tests/test_wss.cpp" "tests/CMakeFiles/ooh_tests.dir/test_wss.cpp.o" "gcc" "tests/CMakeFiles/ooh_tests.dir/test_wss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ooh/CMakeFiles/ooh_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ooh_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trackers/criu/CMakeFiles/ooh_criu.dir/DependInfo.cmake"
  "/root/repo/build/src/trackers/boehmgc/CMakeFiles/ooh_boehmgc.dir/DependInfo.cmake"
  "/root/repo/build/src/trackers/uafguard/CMakeFiles/ooh_uafguard.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ooh_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/ooh_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/ooh_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ooh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ooh_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
