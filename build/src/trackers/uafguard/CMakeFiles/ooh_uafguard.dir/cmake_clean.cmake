file(REMOVE_RECURSE
  "CMakeFiles/ooh_uafguard.dir/quarantine.cpp.o"
  "CMakeFiles/ooh_uafguard.dir/quarantine.cpp.o.d"
  "libooh_uafguard.a"
  "libooh_uafguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_uafguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
