// Guest kernel tests: processes and demand paging, the /proc soft-dirty
// interface, userfaultfd, and the scheduler's hooks/quantum/service windows.
#include <gtest/gtest.h>

#include "guest/kernel.hpp"
#include "guest/ooh_module.hpp"
#include "guest/procfs.hpp"
#include "guest/uffd.hpp"
#include "hypervisor/hypervisor.hpp"

namespace ooh::guest {
namespace {

class GuestTest : public ::testing::Test {
 protected:
  GuestTest()
      : machine_(256 * kMiB, CostModel::unit()),
        hv_(machine_),
        vm_(hv_.create_vm(128 * kMiB)),
        kernel_(hv_, vm_) {}

  sim::Machine machine_;
  hv::Hypervisor hv_;
  hv::Vm& vm_;
  GuestKernel kernel_;
};

// ---- process & demand paging -------------------------------------------------

TEST_F(GuestTest, MmapAssignsDisjointVmas) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(3 * kPageSize);
  const Gva b = p.mmap(10);
  EXPECT_TRUE(is_page_aligned(a));
  EXPECT_GE(b, a + 3 * kPageSize);
  EXPECT_EQ(p.mapped_bytes(), 4 * kPageSize);
  EXPECT_NE(p.vma_of(a), nullptr);
  EXPECT_NE(p.vma_of(b), nullptr);
  EXPECT_EQ(p.vma_of(a + 100 * kPageSize), nullptr);
  EXPECT_THROW((void)p.mmap(0), std::invalid_argument);
}

TEST_F(GuestTest, DemandPagingMapsOnFirstTouch) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(4 * kPageSize);
  EXPECT_EQ(kernel_.page_table(p).present_pages(), 0u);
  p.touch_write(a);
  p.touch_write(a + kPageSize);
  EXPECT_EQ(kernel_.page_table(p).present_pages(), 2u);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPageFaultDemand), 2u);
  p.touch_write(a);  // no further fault
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPageFaultDemand), 2u);
}

TEST_F(GuestTest, FreshPagesAreSoftDirty) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(kPageSize);
  p.touch_write(a);
  EXPECT_TRUE(kernel_.page_table(p).pte(a)->soft_dirty);
}

TEST_F(GuestTest, SegfaultOutsideVma) {
  Process& p = kernel_.create_process();
  EXPECT_THROW(p.touch_write(0xdead0000), GuestSegfault);
}

TEST_F(GuestTest, DataBackedRoundTrip) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(2 * kPageSize, /*data_backed=*/true);
  p.write_u64(a + 8, 0x1122334455667788ULL);
  EXPECT_EQ(p.read_u64(a + 8), 0x1122334455667788ULL);
  EXPECT_EQ(p.read_u64(a + 16), 0u);

  std::vector<u8> buf(5000, 0xAB);
  p.write_bytes(a, buf);  // spans both pages
  std::vector<u8> out(5000, 0);
  p.read_bytes(a, out);
  EXPECT_EQ(out, buf);
}

TEST_F(GuestTest, TruthRecordsWrittenPages) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(8 * kPageSize);
  p.touch_write(a);
  p.touch_write(a + 3 * kPageSize);
  p.touch_read(a + 5 * kPageSize);
  EXPECT_EQ(p.truth_dirty().size(), 2u);
  EXPECT_TRUE(p.truth_dirty().contains(a));
  EXPECT_TRUE(p.truth_dirty().contains(a + 3 * kPageSize));
  p.truth_reset();
  EXPECT_TRUE(p.truth_dirty().empty());
}

TEST_F(GuestTest, ProcessesHaveIndependentPageTables) {
  Process& p1 = kernel_.create_process();
  Process& p2 = kernel_.create_process();
  EXPECT_NE(p1.pid(), p2.pid());
  const Gva a1 = p1.mmap(kPageSize);
  const Gva a2 = p2.mmap(kPageSize);
  EXPECT_EQ(a1, a2) << "address spaces are private, so bases coincide";
  p1.touch_write(a1);
  EXPECT_EQ(kernel_.page_table(p1).present_pages(), 1u);
  EXPECT_EQ(kernel_.page_table(p2).present_pages(), 0u);
}

// ---- procfs --------------------------------------------------------------------

TEST_F(GuestTest, ClearRefsThenWriteSetsSoftDirtyViaFault) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(4 * kPageSize);
  for (int i = 0; i < 4; ++i) p.touch_write(a + i * kPageSize);

  kernel_.procfs().clear_refs(p);
  EXPECT_FALSE(kernel_.page_table(p).pte(a)->soft_dirty);
  EXPECT_FALSE(kernel_.page_table(p).pte(a)->writable) << "write-protected";
  EXPECT_TRUE(kernel_.procfs().pagemap_dirty(p).empty());

  p.touch_write(a + kPageSize);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPageFaultSoftDirty), 1u);
  const std::vector<Gva> dirty = kernel_.procfs().pagemap_dirty(p);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], a + kPageSize);
  // The faulted page is writable again; a second write does not re-fault.
  p.touch_write(a + kPageSize);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPageFaultSoftDirty), 1u);
}

TEST_F(GuestTest, ReadsDoNotSetSoftDirty) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(kPageSize);
  p.touch_write(a);
  kernel_.procfs().clear_refs(p);
  p.touch_read(a);
  EXPECT_TRUE(kernel_.procfs().pagemap_dirty(p).empty());
}

TEST_F(GuestTest, PagemapEntriesExposeTranslations) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(2 * kPageSize);
  p.touch_write(a);
  p.touch_write(a + kPageSize);
  const auto entries = kernel_.procfs().pagemap_entries(p);
  EXPECT_EQ(entries.size(), 2u);
  for (const auto& [gva, gpa] : entries) {
    EXPECT_EQ(kernel_.page_table(p).pte(gva)->gpa_page, gpa);
  }
}

// ---- userfaultfd ----------------------------------------------------------------

TEST_F(GuestTest, UffdWpFaultsOncePerProtectRound) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(4 * kPageSize);
  for (int i = 0; i < 4; ++i) p.touch_write(a + i * kPageSize);

  std::vector<Gva> seen;
  kernel_.uffd().register_wp(p, [&](Gva page) { seen.push_back(page); });
  p.touch_write(a);
  p.touch_write(a);  // unprotected now: no second event
  p.touch_write(a + 2 * kPageSize);
  EXPECT_EQ(seen, (std::vector<Gva>{a, a + 2 * kPageSize}));
  EXPECT_EQ(vm_.ctx().counters.get(Event::kPageFaultUffd), 2u);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kUffdWriteUnprotect), 2u);

  kernel_.uffd().rearm_wp(p);
  p.touch_write(a);
  EXPECT_EQ(seen.size(), 3u) << "re-protecting re-arms the fault";
}

TEST_F(GuestTest, UffdCatchesFreshDemandPages) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(2 * kPageSize);
  std::vector<Gva> seen;
  kernel_.uffd().register_wp(p, [&](Gva page) { seen.push_back(page); });
  p.touch_write(a);  // miss -> mapped wp -> wp fault
  EXPECT_EQ(seen, std::vector<Gva>{a});
}

TEST_F(GuestTest, UffdUnregisterStopsEvents) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(kPageSize);
  p.touch_write(a);
  int events = 0;
  kernel_.uffd().register_wp(p, [&](Gva) { ++events; });
  kernel_.uffd().unregister(p);
  p.touch_write(a);
  EXPECT_EQ(events, 0);
}

TEST_F(GuestTest, UffdMissingModeReportsFirstTouch) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(2 * kPageSize);
  std::vector<Gva> seen;
  kernel_.uffd().register_missing(p, [&](Gva page) { seen.push_back(page); });
  p.touch_write(a + kPageSize);
  p.touch_write(a + kPageSize);
  EXPECT_EQ(seen, std::vector<Gva>{a + kPageSize});
}

// ---- scheduler ------------------------------------------------------------------

struct RecordingHook final : SchedHook {
  void on_schedule_in(u32 pid) override { ins.push_back(pid); }
  void on_schedule_out(u32 pid) override { outs.push_back(pid); }
  std::vector<u32> ins, outs;
};

TEST_F(GuestTest, QuantumTickFiresHooksAndCounts) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(64 * kPageSize);
  RecordingHook hook;
  Scheduler& sched = kernel_.scheduler();
  sched.add_hook(&hook);
  sched.set_quantum(usecs(50));

  sched.enter_process(p.pid());
  for (int i = 0; i < 64; ++i) p.touch_write(a + i * kPageSize);  // >50us at unit costs
  sched.exit_process(p.pid());

  EXPECT_GT(sched.quantum_switches(), 0u);
  EXPECT_GT(vm_.ctx().counters.get(Event::kSchedQuantum), 0u);
  // enter + each tick fires in; each tick + exit fires out.
  EXPECT_EQ(hook.ins.size(), 1 + sched.quantum_switches());
  EXPECT_EQ(hook.outs.size(), sched.quantum_switches() + 1);
  sched.remove_hook(&hook);
}

TEST_F(GuestTest, PeriodicServicePreemptsAndRuns) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(256 * kPageSize);
  Scheduler& sched = kernel_.scheduler();
  int services = 0;
  sched.set_periodic(usecs(100), [&] { ++services; });
  sched.enter_process(p.pid());
  for (int i = 0; i < 256; ++i) p.touch_write(a + i * kPageSize);
  sched.exit_process(p.pid());
  sched.clear_periodic();
  EXPECT_GT(services, 0);
}

TEST_F(GuestTest, ServiceWindowsDoNotRecurse) {
  Process& p = kernel_.create_process();
  const Gva a = p.mmap(8 * kPageSize);
  p.touch_write(a);
  Scheduler& sched = kernel_.scheduler();
  int depth = 0, max_depth = 0;
  sched.set_periodic(usecs(1), [&] {
    ++depth;
    max_depth = std::max(max_depth, depth);
    // Service code touching guest memory must not re-trigger service.
    p.touch_write(a + 4 * kPageSize);
    --depth;
  });
  sched.enter_process(p.pid());
  for (int i = 0; i < 8; ++i) p.touch_write(a + i * kPageSize);
  sched.exit_process(p.pid());
  sched.clear_periodic();
  EXPECT_EQ(max_depth, 1);
}

TEST_F(GuestTest, RunServiceChargesContextSwitches) {
  Process& p = kernel_.create_process();
  const u64 before = vm_.ctx().counters.get(Event::kContextSwitch);
  bool ran = false;
  kernel_.scheduler().run_service(p.pid(), [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(vm_.ctx().counters.get(Event::kContextSwitch), before + 2);
}

}  // namespace
}  // namespace ooh::guest
