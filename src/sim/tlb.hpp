// Per-vCPU TLB.
//
// The TLB is what makes dirty-page *logging* an edge-triggered event: a
// store through a translation whose dirty state is already cached performs
// no page walk, sets no dirty flag, and therefore logs nothing. Tracking
// techniques re-arm logging by clearing dirty/permission state and
// invalidating the cached translation (clear_refs -> full flush; PML drain
// -> per-page invalidation), exactly as on real hardware.
//
// Entries are ASID-tagged by guest PID (PCID-style), so context switches
// need not flush.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "base/types.hpp"

namespace ooh::sim {

struct TlbEntry {
  Gpa gpa_page = 0;
  Hpa hpa_page = 0;
  bool writable = false;  ///< effective write permission at fill time.
  bool dirty = false;     ///< guest-PTE and EPT dirty flags were set at fill.
};

class Tlb {
 public:
  explicit Tlb(std::size_t capacity = 1536) : capacity_(capacity) {}

  [[nodiscard]] TlbEntry* lookup(u32 pid, Gva gva_page) noexcept;
  void insert(u32 pid, Gva gva_page, const TlbEntry& entry);
  void invalidate_page(u32 pid, Gva gva_page) noexcept;
  void flush_pid(u32 pid);
  void flush_all() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Read-only visit of every cached translation as
  /// fn(pid, gva_page, const TlbEntry&); used by the coherence oracle to
  /// re-derive each entry from the authoritative tables.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [k, slot] : map_) {
      fn(static_cast<u32>(k >> 40), (k & ((u64{1} << 40) - 1)) << kPageShift,
         slot.entry);
    }
  }

 private:
  static constexpr u64 key(u32 pid, Gva gva_page) noexcept {
    return (static_cast<u64>(pid) << 40) | page_index(gva_page);
  }
  struct Slot {
    TlbEntry entry;
    std::size_t pos = 0;  ///< index in keys_, for O(1) eviction.
  };
  void evict_at(std::size_t pos) noexcept;

  std::size_t capacity_;
  std::unordered_map<u64, Slot> map_;
  std::vector<u64> keys_;
  u64 rand_state_ = 0x853c49e6748fea9bULL;  // deterministic victim choice
};

}  // namespace ooh::sim
