#!/usr/bin/env python3
"""Domain lint for the OoH simulator: machine-state mutation discipline.

The coherence oracle (src/sim/check/) can only vouch for invariants if
machine state is mutated through the sanctioned paths it audits. This lint
freezes those paths: each rule names a pattern that mutates hardware-visible
state (EPT/PTE flags, TLB fills, VMCS fields, event counters, the virtual
clock, the page-track notifier chain) and the closed set of files allowed
to contain it. New code must either route through an existing mutator or
extend the whitelist in the same change that documents the new invariant
(docs/invariants.md).

Scans src/ only — tests deliberately corrupt state to exercise the oracle,
and bench/ is read-only by construction.

Exit status: 0 clean, 1 violations (one per line: path:lineno: rule: text).
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Rule:
    name: str
    pattern: re.Pattern
    allowed: frozenset[str]  # repo-relative files allowed to match
    why: str
    # When set, a match is fine if this marker appears in a comment on the
    # matching line or the line above it (e.g. `// relaxed-ok: <reason>`):
    # the rule demands an adjacent justification rather than a whitelist.
    justify_marker: str | None = None


def rule(name: str, pattern: str, allowed: list[str], why: str,
         justify_marker: str | None = None) -> Rule:
    return Rule(name, re.compile(pattern), frozenset(allowed), why,
                justify_marker)


RULES: list[Rule] = [
    rule(
        "ept-pte-flag-write",
        r"->\s*(dirty|accessed|writable|present|spp)\s*=",
        [
            # The walk circuit and the subsystems modelling real hardware /
            # kernel behaviour (dirty-flag re-arm, WP, swap-out, CoW).
            "src/sim/mmu.cpp",
            "src/sim/ept.cpp",
            "src/sim/page_table.cpp",
            "src/hypervisor/hypervisor.cpp",
            "src/guest/swap.cpp",
            "src/guest/ooh_module.cpp",
            "src/guest/procfs.cpp",
            "src/ooh/trackers.cpp",  # wp backend flips EPT write permission
        ],
        "EPT/PTE permission and dirty/accessed flags may only change in the "
        "page-walk circuit and the whitelisted re-arm paths; anywhere else "
        "bypasses TLB shootdown and breaks TLB-2/TLB-3/ACC-1.",
    ),
    rule(
        "tlb-fill",
        r"\btlb\b[^\n]*\.insert\s*\(",
        ["src/sim/mmu.cpp"],
        "Only the MMU walk may install translations; a fill anywhere else "
        "caches state never derived from the tables (TLB-1).",
    ),
    rule(
        "vmcs-field-write",
        r"\.write\s*\(\s*(sim::)?VmcsField::",
        [
            "src/sim/vcpu.cpp",
            "src/sim/page_track.cpp",
            "src/hypervisor/hypervisor.cpp",
        ],
        "PML/EPML VMCS fields (buffer address, index, controls) are owned by "
        "the logging circuits and the hypervisor session code; stray writes "
        "desynchronise PML-1/PML-4/EPML-1.",
    ),
    rule(
        "direct-counter-bump",
        r"\bcounters\.add\s*\(",
        [
            "src/sim/exec_context.hpp",
            # Restore rebuilds counters verbatim from the snapshot stream;
            # no event is being *charged*, so attribution is moot.
            "src/sim/snapshot/machine_image.cpp",
        ],
        "Event accounting must go through ExecContext::count() so counters "
        "stay attributable to the owning vCPU timeline.",
    ),
    rule(
        "direct-clock-advance",
        r"\bclock\.(advance|reset)\s*\(",
        ["src/sim/exec_context.hpp"],
        "Virtual time must be charged via ExecContext::charge_us/charge_ns; "
        "direct clock manipulation breaks monotonicity auditing (CLK-1).",
    ),
    rule(
        "walk-cache-mutation",
        r"\b(invalidate_walk_cache|debug_skew_walk_cache)\s*\(",
        [
            # The radix table owns the memo; the EPT and guest-PT wrappers
            # forward the shootdown from their unmap paths.
            "src/sim/radix.hpp",
            "src/sim/page_table.hpp",
            "src/sim/page_table.cpp",
            "src/sim/ept.hpp",
            "src/sim/ept.cpp",
        ],
        "The MRU walk-cache memo is invalidated only by the table-structure "
        "mutators that free or zero leaves (unmap paths); invalidating it "
        "elsewhere hides bugs WALK-1 exists to catch, and skewing it is a "
        "test-only corruption primitive.",
    ),
    rule(
        "raw-page-constant",
        r"(?<![\w'])4096(?![\w'])|>>\s*12\b|<<\s*12\b"
        r"|0x[Ff]{3}\b|0x1[Ff]{5}\b",
        ["src/base/types.hpp"],
        "Page geometry must come from base/types.hpp (kPageSize, kPageShift, "
        "page_floor/page_index and the PageGran helpers); a hand-rolled 4096, "
        ">> 12 or 0xFFF mask silently hard-codes 4 KiB granularity and "
        "bypasses the multi-granularity translation helpers. A genuine "
        "non-page constant may opt out with a trailing comment containing "
        "lint: allow(raw-page-constant).",
    ),
    rule(
        "notifier-registration",
        r"\b(un)?register_notifier\s*\(",
        [
            "src/sim/page_track.hpp",
            "src/sim/page_track.cpp",
            "src/sim/vcpu.cpp",
            "src/hypervisor/hypervisor.cpp",
            "src/guest/kernel.cpp",
            "src/ooh/trackers.cpp",
            "src/ooh/adaptive/adaptive_tracker.cpp",
        ],
        "Page-track consumers may only (un)register through the subsystems "
        "the registry audit knows about; others corrupt chain-order "
        "guarantees (REG-1/REG-2).",
    ),
    rule(
        "raw-sync-primitive",
        r"\bstd::(atomic\b|atomic<|atomic_|mutex\b|shared_mutex\b"
        r"|recursive_mutex\b|condition_variable\b|thread\b|jthread\b"
        r"|lock_guard\b|scoped_lock\b|unique_lock\b)",
        [
            # The seam itself, the explorer that instruments it (whose own
            # engine must not be instrumented), and the two sanctioned
            # host-thread-spawning call sites (the sync seam wraps state,
            # not thread lifetime).
            "src/base/sync.hpp",
            "src/sim/check/sched_explorer.hpp",
            "src/sim/check/sched_explorer.cpp",
            "src/ooh/testbed.cpp",
            "src/hypervisor/migration.cpp",
            "src/sim/epoch/epoch_pool.cpp",
        ],
        "Cross-thread state must live behind sync::Atomic / sync::Mutex / "
        "sync::SpinGuard (src/base/sync.hpp, invariant SYNC-1): raw std "
        "primitives are invisible to the schedule explorer and to the "
        "memory-order audit, so a race through them can never be flagged.",
    ),
    rule(
        "radix-node-allocation",
        r"make_unique<\s*(L1|L2|L3|Leaf|HugeSlab)\b|\bnew\s+(L1|L2|L3|Leaf|HugeSlab)\b",
        ["src/sim/radix.hpp"],
        "Radix/EPT paging-structure nodes are arena-allocated (base/arena.hpp "
        "bulk prefault, rewound on clear()) so steady-state translation "
        "allocates nothing; a raw new/make_unique of a node type reintroduces "
        "per-node heap traffic and breaks the zero-steady-state-allocation "
        "guarantee the gbench harness pins.",
    ),
    rule(
        "relaxed-needs-justification",
        r"\bmemory_order_relaxed\b",
        [],
        "Every memory_order_relaxed must carry an adjacent `// relaxed-ok: "
        "<reason>` comment (same line or the line above) saying why no "
        "happens-before edge is needed there — an unjustified relaxed is "
        "how the missing-release bug class (RACE-1) enters the tree.",
        justify_marker="relaxed-ok",
    ),
]

LINE_COMMENT = re.compile(r"//.*$")

# Per-line escape hatch: a comment containing `lint: allow(rule-name)`
# exempts that line from exactly that rule (the marker lives in the comment,
# which is stripped before pattern matching, so it can never satisfy a rule
# pattern itself).
ALLOW_MARKER = re.compile(r"lint:\s*allow\(([\w-]+)\)")


def strip_comment(line: str) -> str:
    return LINE_COMMENT.sub("", line)


@dataclass
class Report:
    violations: list[str] = field(default_factory=list)

    def add(self, path: Path, lineno: int, r: Rule, text: str) -> None:
        self.violations.append(f"{path}:{lineno}: [{r.name}] {text.strip()}")


def lint_file(path: Path, rel: str, report: Report) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        report.violations.append(f"{path}: unreadable: {err}")
        return
    for lineno, raw in enumerate(lines, start=1):
        line = strip_comment(raw)
        allowed_here = set(ALLOW_MARKER.findall(raw))
        for r in RULES:
            if (not r.pattern.search(line) or rel in r.allowed
                    or r.name in allowed_here):
                continue
            if r.justify_marker and justified(lines, lineno, r.justify_marker):
                continue
            report.add(path, lineno, r, raw)


def justified(lines: list[str], lineno: int, marker: str) -> bool:
    """Is `marker` on the matching line or in the comment block above it?

    The block may be separated from the match by continuation lines of the
    same statement (a multi-line call), so we walk upward through comment
    lines and lines that carry a trailing comment, bounded to keep the
    justification adjacent rather than somewhere far up the file.
    """
    if marker in lines[lineno - 1]:
        return True
    for back in range(2, 8):
        i = lineno - back
        if i < 0:
            return False
        raw = lines[i]
        if "//" not in raw:
            return False
        if marker in raw:
            return True
        # keep walking only while we are inside a pure comment block
        if strip_comment(raw).strip():
            return False
    return False


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the tree containing this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r.name}:\n  pattern: {r.pattern.pattern}")
            print("  allowed:", ", ".join(sorted(r.allowed)) or "(nowhere)")
            print(f"  why: {r.why}\n")
        return 0

    src = args.root / "src"
    if not src.is_dir():
        print(f"lint_domain: no src/ under {args.root}", file=sys.stderr)
        return 2

    report = Report()
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".cpp", ".hpp"}:
            continue
        rel = path.relative_to(args.root).as_posix()
        lint_file(path, rel, report)

    if report.violations:
        print(f"lint_domain: {len(report.violations)} violation(s):")
        for v in report.violations:
            print("  " + v)
        print("\nEither route the mutation through an existing sanctioned "
              "mutator, or extend the whitelist in tools/lint_domain.py and "
              "document the new invariant in docs/invariants.md.")
        return 1
    print(f"lint_domain: clean ({len(RULES)} rules over src/)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
