// Event counters: the simulation's ground-truth record of *what happened*.
//
// Every mechanism increments a counter when it fires; the analytical model
// (Formulas 1-4) and the benches consume counts, and tests assert on them.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

#include "base/types.hpp"

namespace ooh {

enum class Event : std::size_t {
  kContextSwitch = 0,     ///< M1: scheduler switch on the vCPU.
  kPageFaultDemand,       ///< first-touch minor fault (demand paging).
  kPageFaultSoftDirty,    ///< write fault that sets the soft-dirty bit (/proc).
  kPageFaultUffd,         ///< fault delivered to userspace via userfaultfd.
  kVmExit,                ///< any VM-exit.
  kVmExitPmlFull,         ///< VM-exit caused by PML buffer full.
  kVmExitEptViolation,    ///< VM-exit caused by an EPT violation.
  kSppViolation,          ///< write blocked by a sub-page permission (SPP).
  kPmlLogRead,            ///< GPA logged on an accessed-flag transition (WSS ext).
  kHypercall,             ///< guest->hypervisor hypercall.
  kVmread,                ///< vmread executed in guest mode (shadow VMCS).
  kVmwrite,               ///< vmwrite executed in guest mode (shadow VMCS).
  kSelfIpi,               ///< EPML posted self-IPI (guest buffer full).
  kPmlLogGpa,             ///< GPA logged to the hypervisor-level PML buffer.
  kPmlLogGvaGuest,        ///< GVA logged to the EPML guest-level buffer.
  kRingBufCopyEntry,      ///< one entry copied PML buffer -> ring buffer.
  kRingBufFetchEntry,     ///< one entry copied ring buffer -> userspace (M18).
  kRingBufOverflow,       ///< ring-buffer entry dropped (buffer full).
  kReverseMapLookup,      ///< one GPA->GVA reverse-map lookup (SPML).
  kPagemapScan,           ///< one full /proc pagemap scan (M16).
  kClearRefs,             ///< one clear_refs soft-dirty reset (M15).
  kTlbFlush,
  kTlbHit,
  kTlbMiss,
  kGuestPtWalk,           ///< 4-level guest page-table walk.
  kEptWalk,               ///< 4-level EPT walk.
  kEptDirtySet,           ///< a write set an EPT dirty flag (PML trigger point).
  kEptWpFault,            ///< write hit a write-protected EPT entry (page_track).
  kDiskPageWrite,         ///< CRIU image page written.
  kUffdWriteUnprotect,    ///< tracker resolved a ufd write-protect fault.
  kSchedQuantum,          ///< timer-driven quantum expiry.
  kTrackerCollect,        ///< one DirtyTracker::collect() interval harvest.
  kGcCycle,               ///< one garbage-collection cycle.
  kMigrationRound,        ///< one live-migration pre-copy round.
  kMigrationPageSent,     ///< page transferred by live migration.
  kFaultInjected,         ///< a FaultPlan rule fired at an injection point.
  kSelfIpiSuppressed,     ///< EPML self-IPI dropped by an injected fault.
  kEpmlEntryLost,         ///< EPML write not logged: buffer full, IPI undelivered.
  kEpmlStaleEntryDropped, ///< EPML drain skipped an entry whose page went away.
  kTrackerDegraded,       ///< tracker fell back to a weaker technique.
  kMigrationSendRetry,    ///< migration send failed and was retried (backoff).
  kMigrationAborted,      ///< migration gave up (send retries exhausted).
  kTlbShootdownIpi,       ///< IPI sent to a remote vCPU to invalidate a stale translation.
  kDirtyRingFull,         ///< per-vCPU dirty ring full; entry diverted to the spill log.
  kPolicySwitch,          ///< adaptive control plane switched the tracker backend.
  kMigrationThrottle,     ///< migration throttled the guest (auto-converge stall).
  kCount
};

inline constexpr std::size_t kEventCount = static_cast<std::size_t>(Event::kCount);

[[nodiscard]] std::string_view event_name(Event e) noexcept;

class EventCounters {
 public:
  void add(Event e, u64 n = 1) noexcept { counts_[idx(e)] += n; }
  [[nodiscard]] u64 get(Event e) const noexcept { return counts_[idx(e)]; }
  void reset() noexcept { counts_.fill(0); }

  /// Accumulate another counter set into this one (per-vCPU -> machine-wide).
  void merge(const EventCounters& other) noexcept {
    for (std::size_t i = 0; i < kEventCount; ++i) counts_[i] += other.counts_[i];
  }

  [[nodiscard]] bool operator==(const EventCounters& other) const noexcept {
    return counts_ == other.counts_;
  }

  /// Per-event difference `*this - since` (callers snapshot by value).
  [[nodiscard]] EventCounters diff(const EventCounters& since) const noexcept;

  /// Multi-line "name: count" rendering of the non-zero counters.
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::size_t idx(Event e) noexcept { return static_cast<std::size_t>(e); }
  std::array<u64, kEventCount> counts_{};
};

}  // namespace ooh
