// AdaptiveTracker — runtime backend switching over the DirtyTracker API.
//
// PR 5's degradation chain proved one-way live handoff works: init() can
// swap EPML for SPML (or wp for /proc) when resources run out. This class
// generalizes that machinery into a *bidirectional, policy-driven* handoff:
// a WssEstimator senses each process's dirty rate, a PolicyEngine picks the
// backend the next interval should run on, and the switch happens inside
// collect() — the tracker's synchronous service window, when the tracked
// process is preempted and the just-harvested interval is closed. Because
// no guest write can interleave between the old backend's final collect()
// and the new backend's init(), no dirty page is lost across the switch;
// the POL-1 invariant (docs/invariants.md) audits the machine-visible half
// of that contract: a handoff away from write-protection must not leave
// orphaned non-writable EPT entries behind.
//
// Lifecycle mapping (caller sees one DirtyTracker):
//   init()            estimator registers on the notifier chain; the
//                     initial backend init()s.
//   begin_interval()  forwards to the active backend (arms the *new*
//                     backend right after a switch).
//   collect()         active backend's collect() -> estimator window close
//                     -> policy decision -> (maybe) handoff.
//   shutdown()        active backend's shutdown(); estimator unregisters.
//
// Phase/drop accounting aggregates across every backend the session ran.
#pragma once

#include <memory>
#include <vector>

#include "ooh/adaptive/policy.hpp"
#include "ooh/adaptive/wss_estimator.hpp"
#include "ooh/tracker.hpp"

namespace ooh::lib {

struct AdaptiveOptions {
  /// Backend the session starts on (the paper's default tracker, EPML).
  Technique initial = Technique::kEpml;
  PolicyConfig policy;
  /// EWMA weight of the newest window in the estimator.
  double estimator_alpha = 0.5;
};

class AdaptiveTracker final : public DirtyTracker {
 public:
  AdaptiveTracker(guest::GuestKernel& kernel, guest::Process& proc,
                  const AdaptiveOptions& opts = {});
  ~AdaptiveTracker() override;

  [[nodiscard]] Technique technique() const noexcept override {
    return Technique::kAdaptive;
  }

  // ---- virtualized lifecycle: full delegation, no double accounting -------
  void init() override;
  void begin_interval() override;
  [[nodiscard]] std::vector<Gva> collect() override;
  void shutdown() override;

  [[nodiscard]] u64 dropped() const override;
  [[nodiscard]] Technique effective_technique() const noexcept override {
    return active_ ? active_->effective_technique() : Technique::kAdaptive;
  }
  [[nodiscard]] const Phases& phases() const noexcept override;

  // ---- control-plane introspection ----------------------------------------
  [[nodiscard]] const WssSignal& signal() const noexcept {
    return estimator_.signal(proc_.pid());
  }
  [[nodiscard]] WssEstimator& estimator() noexcept { return estimator_; }
  /// Backends switched to, in order (excludes the initial backend).
  [[nodiscard]] const std::vector<Technique>& switch_history() const noexcept {
    return history_;
  }
  [[nodiscard]] u64 switches() const noexcept { return history_.size(); }

 protected:
  // The virtualized public lifecycle above fully delegates to the active
  // backend; these base hooks are unreachable for this class.
  void do_init() override {}
  void do_begin_interval() override {}
  [[nodiscard]] std::vector<Gva> do_collect() override { return {}; }
  void do_shutdown() override {}

 private:
  void switch_backend(Technique want);
  void register_estimator();
  void unregister_estimator();

  AdaptiveOptions opts_;
  WssEstimator estimator_;
  PolicyEngine policy_;
  std::unique_ptr<DirtyTracker> active_;
  std::vector<Technique> history_;
  Phases retired_;         ///< accumulated phases of shut-down backends.
  u64 dropped_retired_ = 0;
  bool estimator_registered_ = false;
  mutable Phases agg_;     ///< cache for phases() (base returns a reference).
};

}  // namespace ooh::lib
