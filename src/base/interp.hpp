// Piecewise log-log interpolation over calibration points.
//
// The paper reports size-dependent primitive costs (Table Vb) at seven
// memory sizes spanning three decades (1MB..1GB). Costs grow smoothly but
// not linearly, so we interpolate linearly in (log size, log cost) space and
// extrapolate the end segments' slopes beyond the measured range.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ooh {

class LogLogInterp {
 public:
  struct Point {
    double x;  ///< e.g. tracked memory size in bytes; must be > 0.
    double y;  ///< e.g. cost in microseconds; must be > 0.
  };

  LogLogInterp() = default;
  /// Points must be sorted by strictly increasing x.
  explicit LogLogInterp(std::vector<Point> points);

  /// Interpolated (or slope-extrapolated) value at x.
  [[nodiscard]] double at(double x) const;

  [[nodiscard]] bool empty() const noexcept { return pts_.empty(); }
  [[nodiscard]] std::span<const Point> points() const noexcept { return pts_; }

 private:
  std::vector<Point> pts_;   // original points
  std::vector<double> lx_;   // log(x)
  std::vector<double> ly_;   // log(y)
};

}  // namespace ooh
