// Core address and page types shared by every layer of the OoH stack.
//
// The simulator distinguishes the three address spaces that the paper's
// mechanisms translate between:
//   GVA (guest virtual)  -- what a guest process sees; what Trackers want.
//   GPA (guest physical) -- what Intel PML logs at the hypervisor level.
//   HPA (host physical)  -- what the machine's RAM is addressed by; only the
//                           hypervisor ever sees these (security section V).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ooh {

using Gva = std::uint64_t;  ///< Guest virtual address.
using Gpa = std::uint64_t;  ///< Guest physical address.
using Hpa = std::uint64_t;  ///< Host physical address.

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;   // 4 KiB
inline constexpr u64 kPageOffsetMask = kPageSize - 1;
inline constexpr u64 kPageMask = ~kPageOffsetMask;

/// Number of 8-byte PML entries in one 4KiB PML buffer (SDM: 512).
inline constexpr u16 kPmlBufferEntries = 512;
/// Initial value of the PML index guest-state field (SDM: counts down).
inline constexpr u16 kPmlIndexStart = 511;

inline constexpr u64 kKiB = u64{1} << 10;
inline constexpr u64 kMiB = u64{1} << 20;
inline constexpr u64 kGiB = u64{1} << 30;

[[nodiscard]] constexpr u64 page_floor(u64 addr) noexcept { return addr & kPageMask; }
[[nodiscard]] constexpr u64 page_ceil(u64 addr) noexcept {
  return (addr + kPageSize - 1) & kPageMask;
}
[[nodiscard]] constexpr u64 page_index(u64 addr) noexcept { return addr >> kPageShift; }
[[nodiscard]] constexpr u64 page_offset(u64 addr) noexcept { return addr & kPageOffsetMask; }
[[nodiscard]] constexpr u64 pages_for_bytes(u64 bytes) noexcept {
  return (bytes + kPageSize - 1) >> kPageShift;
}
[[nodiscard]] constexpr bool is_page_aligned(u64 addr) noexcept {
  return page_offset(addr) == 0;
}

}  // namespace ooh
