// Host physical memory: frame allocator plus lazily materialised contents.
//
// Frames are identified by HPA. Page *contents* are only materialised when
// something actually stores data (PML hardware writes, data-backed workloads,
// CRIU image verification); metadata-only workloads touch translations
// without allocating backing bytes, which keeps GB-scale sweeps cheap.
//
// This is the one mutable structure shared between concurrently running
// per-vCPU timelines, so it is thread-safe: the free list and the backing-
// page map are sharded by frame number, each shard behind its own mutex,
// and the bump pointer is a lock-free CAS. Frame *contents* need no lock
// beyond the map shard — no two VMs ever share a frame, so cross-thread
// access to the same frame's bytes does not happen by construction.
//
// Snapshots share frame contents copy-on-write: capture_frames() hands out
// shared_ptr references to the live frames (O(backed frames) pointer
// copies, no byte copies — a 1 GiB-footprint snapshot is milliseconds), and
// the mutable frame_data() path clones a frame the moment it is written
// while a snapshot still references it. A captured frame is therefore
// *shared-read-only*: the live machine may drop or replace it, but never
// write through it — which is also the state the FRAME ownership audit had
// to learn about (docs/invariants.md, FRAME-4).
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/sync.hpp"
#include "base/types.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

class PhysicalMemory {
 public:
  using Frame = std::array<u8, kPageSize>;
  /// One captured frame: number plus a CoW reference to its contents.
  using FrameImage = std::pair<u64, std::shared_ptr<const Frame>>;

  explicit PhysicalMemory(u64 bytes);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  /// Allocate one free frame; throws std::bad_alloc when exhausted.
  [[nodiscard]] Hpa alloc_frame();
  void free_frame(Hpa frame);

  /// Allocate `count` physically contiguous frames (a huge-leaf backing
  /// run) from the bump pointer; returns the first frame's HPA. Contiguous
  /// runs never come from the recycled free lists — fragmentation there is
  /// exactly why real kernels struggle to build huge pages late. Throws
  /// std::bad_alloc when the bump region cannot fit the run. The run may be
  /// freed frame-by-frame with free_frame() (after an eager split breaks
  /// the leaf into 4 KiB mappings).
  [[nodiscard]] Hpa alloc_frames_contiguous(u64 count);

  [[nodiscard]] u64 total_frames() const noexcept { return total_frames_; }
  [[nodiscard]] u64 used_frames() const noexcept {
    // relaxed-ok: a monotonic statistics counter — readers tolerate a stale
    // snapshot and no other state is published through it.
    return used_frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 backed_frames() const;

  /// Mutable view of a frame's 4KiB contents, materialising them on demand.
  /// The pointer stays valid until the frame is freed, restored over, or —
  /// when the frame is CoW-shared with a snapshot — written again after a
  /// further capture (the write clones the frame). Callers must not cache
  /// the pointer across snapshot operations.
  [[nodiscard]] u8* frame_data(Hpa frame);
  /// Read-only view; nullptr when the frame was never written (all-zero).
  /// Never breaks CoW sharing.
  [[nodiscard]] const u8* frame_data_if_present(Hpa frame) const;

  // Word accessors used by the PML circuit to write log entries into RAM.
  [[nodiscard]] u64 read_u64(Hpa addr) const;
  void write_u64(Hpa addr, u64 value);

  // ---- snapshot support (CoW frame sharing) ---------------------------------

  /// Capture every backed frame as a CoW reference, sorted by frame number
  /// (deterministic). No contents are copied; subsequent writes through
  /// frame_data() clone first (the captured images never change).
  [[nodiscard]] std::vector<FrameImage> capture_frames() const;

  /// True while the frame's contents are CoW-shared with at least one
  /// captured snapshot — the shared-read-only state the FRAME-4 audit
  /// distinguishes from exclusively-owned backing.
  [[nodiscard]] bool frame_shared(Hpa frame) const;

  /// Backed frames currently CoW-shared with a snapshot.
  [[nodiscard]] u64 shared_frames() const;

  /// Quiescent-point listing of every backed frame as (frame number,
  /// CoW-shared) pairs, sorted by frame number. The FRAME-4 ownership audit
  /// walks this to reconcile materialised contents against claims.
  [[nodiscard]] std::vector<std::pair<u64, bool>> backed_frame_table() const;

 private:
  friend struct ooh::snapshot::Access;

  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable sync::Mutex mu;
    std::vector<u64> free_list;                             // recycled frame numbers
    std::unordered_map<u64, std::shared_ptr<Frame>> data;   // keyed by frame number
  };

  [[nodiscard]] Shard& shard_of(u64 frame_number) const noexcept {
    return shards_[frame_number % kShards];
  }

  u64 total_frames_;
  sync::Atomic<u64> used_frames_{0};
  sync::Atomic<u64> next_frame_{0};  // bump pointer, in frame numbers
  // Free-list search start rotor (contention spreading). Snapshotted so a
  // restored machine replays the recorded HPA allocation sequence.
  sync::Atomic<u64> alloc_rotor_{0};
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace ooh::sim
