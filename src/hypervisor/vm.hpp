// A virtual machine as the hypervisor sees it: EPT, one vCPU (the paper's
// evaluation setup), the hypervisor-level PML state, and the coexistence
// flags that let the guest's OoH use of PML and the hypervisor's own use
// (live migration) share one buffer without stepping on each other (§IV-C).
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "base/ring_buffer.hpp"
#include "base/types.hpp"
#include "sim/ept.hpp"
#include "sim/spp.hpp"
#include "sim/vcpu.hpp"

namespace ooh::hv {

class Vm {
 public:
  Vm(sim::Machine& machine, u32 id, u64 mem_bytes, std::size_t spml_ring_entries);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  [[nodiscard]] u32 id() const noexcept { return id_; }
  [[nodiscard]] u64 mem_bytes() const noexcept { return mem_bytes_; }
  [[nodiscard]] sim::Ept& ept() noexcept { return ept_; }
  [[nodiscard]] sim::Vcpu& vcpu() noexcept { return vcpu_; }

  /// The vCPU's execution context: this VM's private clock and counters
  /// (one vCPU per VM, the paper's evaluation setup).
  [[nodiscard]] sim::ExecContext& ctx() noexcept { return vcpu_.ctx(); }

  /// The ring shared between hypervisor and guest OS (SPML design). It is
  /// allocated in the guest's address space conceptually; the hypervisor
  /// only writes logged GPAs into it (§V isolation argument).
  [[nodiscard]] RingBuffer& spml_ring() noexcept { return spml_ring_; }

  /// The hypervisor's "larger buffer": dirty GPAs retained for its own use
  /// (live migration pre-copy). Deduplicated.
  [[nodiscard]] std::unordered_set<Gpa>& hyp_dirty_log() noexcept { return hyp_dirty_log_; }

  /// GPAs routed to the guest ring since the last SPML interval reset; used
  /// to re-arm their dirty flags at the interval boundary.
  [[nodiscard]] std::vector<Gpa>& spml_interval_log() noexcept { return spml_interval_log_; }

  /// Sub-page permission table (Intel SPP); consulted by the page-walk
  /// circuit for EPT entries flagged spp.
  [[nodiscard]] sim::SppTable& spp_table() noexcept { return spp_table_; }

  // -- PML state -------------------------------------------------------------
  Hpa pml_buffer = 0;             ///< hypervisor-level 4KiB PML buffer (HPA).
  bool pml_enabled_by_guest = false;  ///< enabled_by_guest flag (§IV-C item 3).
  bool pml_enabled_by_hyp = false;    ///< enabled_by_hyp flag.
  bool guest_logging_on = false;      ///< SPML: tracked process currently scheduled in.
  u64 spml_tracked_mem_bytes = 0;     ///< tracked process size, for M14 scaling.

 private:
  u32 id_;
  u64 mem_bytes_;
  sim::Ept ept_;
  sim::Vcpu vcpu_;
  RingBuffer spml_ring_;
  std::unordered_set<Gpa> hyp_dirty_log_;
  std::vector<Gpa> spml_interval_log_;
  sim::SppTable spp_table_;
};

}  // namespace ooh::hv
