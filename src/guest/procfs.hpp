// /proc/<PID>/{clear_refs,pagemap} -- Linux's soft-dirty interface, the
// default technique in both CRIU and Boehm GC (paper §III-B).
//
//   clear_refs: clears soft-dirty bits and write-protects the PTEs so the
//               next store faults; the fault handler re-sets soft-dirty.
//   pagemap:    userspace scans bit 55 of every PTE to collect dirty pages.
#pragma once

#include <utility>
#include <vector>

#include "base/types.hpp"
#include "guest/process.hpp"
#include "sim/page_track.hpp"

namespace ooh::guest {

class GuestKernel;

/// Registered on the kGuestWpFault layer after the userfaultfd notifier:
/// the soft-dirty fault handler is the fallback for write-protect faults no
/// earlier consumer claimed (Linux's own write-protect fault policy).
class ProcFs final : public sim::PageTrackNotifier {
 public:
  explicit ProcFs(GuestKernel& kernel) : kernel_(kernel) {}

  /// `echo 4 > /proc/PID/clear_refs` (Table V metric M15 + TLB flush).
  void clear_refs(Process& proc);

  /// Scan /proc/PID/pagemap for soft-dirty pages (metric M16).
  [[nodiscard]] std::vector<Gva> pagemap_dirty(Process& proc);

  /// All present GVA -> GPA translations, as pagemap exposes them. The cost
  /// is charged by the caller (SPML charges it as reverse-mapping, M17).
  [[nodiscard]] std::vector<std::pair<Gva, Gpa>> pagemap_entries(Process& proc);

  // ---- sim::PageTrackNotifier (kGuestWpFault) -------------------------------
  /// Soft-dirty fault: set the bit, restore write access, invalidate the
  /// cached translation (Table V metric M5 plus two world switches).
  bool on_track(sim::TrackLayer layer, const sim::TrackEvent& ev) override;

 private:
  GuestKernel& kernel_;
};

}  // namespace ooh::guest
