// Intel SPP (Sub-Page write Permission) model.
//
// SPP lets the hypervisor write-protect 128-byte sub-pages: an EPT leaf is
// marked sub-page-protected and the SPP table supplies a 32-bit write-allow
// mask (one bit per sub-page of the 4KiB page). Writes to a cleared bit
// raise an SPP-violation VM-exit; writes to set bits proceed fault-free.
//
// The paper's §III-D proposes exposing SPP through OoH so guest heap
// allocators can place 128-byte guard redzones instead of 4KiB guard pages
// (a 32x waste reduction); this module is the hardware half of that.
#pragma once

#include <unordered_map>

#include "base/types.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

inline constexpr u64 kSubPageShift = 7;
inline constexpr u64 kSubPageSize = u64{1} << kSubPageShift;        // 128 B
inline constexpr u64 kSubPagesPerPage = kPageSize / kSubPageSize;   // 32

[[nodiscard]] constexpr u32 subpage_index(u64 addr) noexcept {
  return static_cast<u32>(page_offset(addr) >> kSubPageShift);
}

/// Mask with every sub-page writable.
inline constexpr u32 kSppAllWritable = 0xFFFF'FFFFu;

class SppTable {
 public:
  /// Install (or replace) the write-allow mask for a guest-physical page.
  void set_mask(Gpa gpa_page, u32 write_mask) {
    masks_[page_floor(gpa_page)] = write_mask;
  }
  void clear(Gpa gpa_page) { masks_.erase(page_floor(gpa_page)); }

  /// Write-allow mask for the page; all-writable when never configured.
  [[nodiscard]] u32 mask(Gpa gpa_page) const noexcept {
    const auto it = masks_.find(page_floor(gpa_page));
    return it == masks_.end() ? kSppAllWritable : it->second;
  }

  [[nodiscard]] bool write_allowed(Gpa gpa) const noexcept {
    return (mask(gpa) >> subpage_index(gpa)) & 1u;
  }

  [[nodiscard]] std::size_t configured_pages() const noexcept { return masks_.size(); }

 private:
  friend struct ooh::snapshot::Access;

  std::unordered_map<Gpa, u32> masks_;
};

}  // namespace ooh::sim
