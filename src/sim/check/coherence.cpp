#include "sim/check/coherence.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "guest/kernel.hpp"
#include "guest/process.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/vm.hpp"
#include "sim/machine.hpp"

namespace ooh::check {

namespace {

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// The in-flight entries of one PML buffer, decoded from its count-down
/// index. Legal raw index values are 0..511 (next free slot) and 0xFFFF
/// (the u16 wrap after slot 0 was filled: all 512 slots in flight); the
/// in-flight slots are [512 - count, 512).
std::vector<u64> read_in_flight(const char* index_id, Layer layer, u32 vm_id,
                                const sim::PhysicalMemory& pmem, Hpa buf,
                                u64 raw_index) {
  if (raw_index > kPmlIndexStart && raw_index != 0xFFFF) {
    throw InvariantViolation(index_id, layer, vm_id, kNoAddr, kNoAddr,
                             "PML index in [0, 511] or 0xFFFF (wrapped)",
                             "index " + hex(raw_index));
  }
  const u64 count = raw_index == 0xFFFF
                        ? kPmlBufferEntries
                        : static_cast<u64>(kPmlIndexStart) - raw_index;
  std::vector<u64> entries;
  entries.reserve(count);
  for (u64 slot = kPmlBufferEntries - count; slot < kPmlBufferEntries; ++slot) {
    entries.push_back(pmem.read_u64(buf + slot * 8));
  }
  return entries;
}

}  // namespace

void CoherenceChecker::attach_kernel(u32 vm_index, guest::GuestKernel& kernel) {
  if (kernels_.size() <= vm_index) kernels_.resize(vm_index + 1, nullptr);
  kernels_[vm_index] = &kernel;
}

guest::GuestKernel* CoherenceChecker::kernel_of(u32 vm_index) const noexcept {
  return vm_index < kernels_.size() ? kernels_[vm_index] : nullptr;
}

void CoherenceChecker::audit_vm(u32 vm_index) {
  hv::Vm& vm = hypervisor_.vm(vm_index);
  audit_tlb(vm);
  audit_walk_caches(vm);
  audit_guest_tables(vm);
  audit_granularity(vm);
  audit_eager_split(vm);
  audit_pml_buffers(vm);
  audit_rings(vm);
  audit_dirty_accounting(vm);
  audit_registry(vm);
  audit_policy_handoff(vm);
  audit_clock(vm);
  // relaxed-ok: statistics counter only.
  audits_run_.fetch_add(1, std::memory_order_relaxed);
}

void CoherenceChecker::audit_machine() {
  audit_frames();
  // relaxed-ok: statistics counter only.
  audits_run_.fetch_add(1, std::memory_order_relaxed);
}

void CoherenceChecker::audit_all() {
  for (std::size_t i = 0; i < hypervisor_.vm_count(); ++i) {
    audit_vm(static_cast<u32>(i));
  }
  audit_machine();
}

// ---- TLB-* ------------------------------------------------------------------

void CoherenceChecker::audit_tlb(hv::Vm& vm) {
  guest::GuestKernel* kernel = kernel_of(vm.id());
  std::unordered_map<u32, sim::GuestPageTable*> tables;
  std::unordered_map<u32, u64> masks;  // pid -> mm_cpumask (SHOOT-1)
  if (kernel != nullptr) {
    kernel->for_each_process([&](guest::Process& p, sim::GuestPageTable& pt) {
      tables.emplace(p.pid(), &pt);
      masks.emplace(p.pid(), p.cpu_mask());
    });
  }

  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
  const sim::Tlb& tlb = vm.vcpu(cpu).tlb();
  if (tlb.size() > tlb.capacity()) {
    throw InvariantViolation(
        "TLB-4", Layer::kTlb, vm.id(), kNoAddr, kNoAddr,
        "at most " + std::to_string(tlb.capacity()) + " cached translations",
        std::to_string(tlb.size()) + " cached translations");
  }
  if (kernel == nullptr) continue;  // no guest PT to re-derive against

  tlb.for_each([&](u32 pid, Gva gva_page, const sim::TlbEntry& te) {
    // SHOOT-1: a translation may only be cached on vCPUs in the owning
    // process's mm_cpumask — an entry outside the mask would be invisible
    // to every future shootdown.
    if (const auto mit = masks.find(pid);
        mit != masks.end() && (mit->second & (u64{1} << cpu)) == 0) {
      throw InvariantViolation(
          "SHOOT-1", Layer::kTlb, vm.id(), gva_page, te.gpa_page,
          "cached translations only on vCPUs in pid " + std::to_string(pid) +
              "'s mm_cpumask " + hex(mit->second),
          "entry cached on vCPU " + std::to_string(cpu) + " outside the mask");
    }
    const auto it = tables.find(pid);
    if (it == tables.end()) {
      throw InvariantViolation("TLB-1", Layer::kTlb, vm.id(), gva_page,
                               te.gpa_page, "a live process owning the ASID tag",
                               "cached translation for unknown pid " +
                                   std::to_string(pid));
    }
    // A cached translation's key is the base of a gran-sized region; it
    // re-derives through the walk seam (any backend, any leaf size). The
    // cached granularity may never exceed either backing leaf: hardware
    // fills at min(guest leaf, EPT leaf), and a later split (eager page
    // splitting, munmap demand-split) must have shot the wider entry down.
    if (!is_gran_aligned(gva_page, te.gran)) {
      throw InvariantViolation(
          "TLB-1", Layer::kTlb, vm.id(), gva_page, te.gpa_page,
          std::string("a TLB key aligned to its cached granularity ") +
              gran_name(te.gran),
          "key " + hex(gva_page));
    }
    const sim::GuestPageTable::Lookup lu = it->second->lookup(gva_page);
    if (lu.pte == nullptr || !lu.pte->present) {
      throw InvariantViolation(
          "TLB-1", Layer::kTlb, vm.id(), gva_page, te.gpa_page,
          "a present guest PTE backing the cached translation",
          "no present PTE (stale entry survived an unmap)");
    }
    if (te.gran > lu.gran) {
      throw InvariantViolation(
          "TLB-1", Layer::kTlb, vm.id(), gva_page, te.gpa_page,
          std::string("cached granularity <= the guest leaf's ") +
              gran_name(lu.gran),
          std::string("cached ") + gran_name(te.gran) +
              " entry outlived a leaf split");
    }
    if (te.gpa_page != lu.gpa_page) {
      throw InvariantViolation("TLB-1", Layer::kTlb, vm.id(), gva_page,
                               te.gpa_page,
                               "cached GPA == walked GPA " + hex(lu.gpa_page),
                               "cached GPA " + hex(te.gpa_page));
    }
    const sim::Pte* pte = lu.pte;
    const sim::Ept::Lookup elu = vm.ept().lookup(te.gpa_page);
    if (elu.entry == nullptr || !elu.entry->present) {
      throw InvariantViolation(
          "TLB-1", Layer::kTlb, vm.id(), gva_page, te.gpa_page,
          "a present EPT entry backing the cached translation",
          "no present EPT entry (stale entry survived an EPT unmap)");
    }
    if (te.gran > elu.gran) {
      throw InvariantViolation(
          "TLB-1", Layer::kTlb, vm.id(), gva_page, te.gpa_page,
          std::string("cached granularity <= the EPT leaf's ") +
              gran_name(elu.gran),
          std::string("cached ") + gran_name(te.gran) +
              " entry outlived an EPT leaf split");
    }
    if (te.hpa_page != elu.hpa_page) {
      throw InvariantViolation("TLB-1", Layer::kTlb, vm.id(), gva_page,
                               te.gpa_page,
                               "cached HPA == EPT-walked HPA " + hex(elu.hpa_page),
                               "cached HPA " + hex(te.hpa_page));
    }
    const sim::EptEntry* epte = elu.entry;
    // Permission/dirty checks are directional: a cached entry may be *more*
    // restrictive than the tables (stale-conservative is harmless; the next
    // write re-walks), but never more permissive — a cached writable+dirty
    // entry lets stores skip the walk, so if the tables disagree, writes
    // bypass dirty logging. That is the OoH-fatal direction.
    const bool derivable_writable =
        pte->writable && !pte->uffd_wp && epte->writable && !epte->spp;
    if (te.writable && !derivable_writable) {
      throw InvariantViolation(
          "TLB-2", Layer::kTlb, vm.id(), gva_page, pte->gpa_page,
          "cached write permission re-derivable from guest PTE + EPT "
          "(pte.writable && !pte.uffd_wp && epte.writable && !epte.spp)",
          "cached writable=1 but the tables deny writes");
    }
    const bool derivable_dirty = pte->dirty && epte->dirty;
    if (te.dirty && !derivable_dirty) {
      throw InvariantViolation(
          "TLB-3", Layer::kTlb, vm.id(), gva_page, pte->gpa_page,
          "cached dirty state re-derivable (pte.dirty && epte.dirty)",
          std::string("cached dirty=1 but pte.dirty=") +
              (pte->dirty ? "1" : "0") + " epte.dirty=" +
              (epte->dirty ? "1" : "0"));
    }
  });
  }
}

// ---- WALK-1 -----------------------------------------------------------------

void CoherenceChecker::audit_walk_caches(hv::Vm& vm) {
  // The MRU walk cache memoises only the leaf-table pointer chase; flags are
  // re-read through the leaf on every walk. The memo must therefore always
  // agree with a fresh top-down walk of the same region — a skewed memo
  // would route accesses through the wrong leaf, silently detaching walks
  // from the PTEs that dirty logging observes.
  if (!vm.ept().walk_cache_coherent()) {
    throw InvariantViolation(
        "WALK-1", Layer::kEpt, vm.id(), kNoAddr, kNoAddr,
        "EPT walk-cache memo re-derivable by a fresh top-down walk",
        "memoised leaf disagrees with the radix walk");
  }
  guest::GuestKernel* kernel = kernel_of(vm.id());
  if (kernel == nullptr) return;
  kernel->for_each_process([&](guest::Process& p, sim::GuestPageTable& pt) {
    if (!pt.walk_cache_coherent()) {
      throw InvariantViolation(
          "WALK-1", Layer::kGuestPageTable, vm.id(), kNoAddr, kNoAddr,
          "guest PT walk-cache memo re-derivable by a fresh top-down walk "
          "(pid " + std::to_string(p.pid()) + ")",
          "memoised leaf disagrees with the radix walk");
    }
  });
}

// ---- PML-* / EPML-* ---------------------------------------------------------

void CoherenceChecker::audit_pml_buffers(hv::Vm& vm) {
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
  sim::Vcpu& vcpu = vm.vcpu(cpu);
  const sim::Vmcs& vmcs = vcpu.vmcs();

  const Hpa buf = vmcs.read(sim::VmcsField::kPmlAddress);
  if (buf != vm.pml_buffer(cpu)) {
    throw InvariantViolation("PML-4", Layer::kPmlBuffer, vm.id(), kNoAddr,
                             kNoAddr,
                             "VMCS PML_ADDRESS == vCPU " + std::to_string(cpu) +
                                 "'s recorded buffer " + hex(vm.pml_buffer(cpu)),
                             "VMCS PML_ADDRESS " + hex(buf));
  }
  if (buf != 0) {
    if (!is_page_aligned(buf) ||
        page_index(buf) >= machine_.pmem.total_frames()) {
      throw InvariantViolation("PML-4", Layer::kPmlBuffer, vm.id(), kNoAddr,
                               kNoAddr,
                               "a page-aligned PML buffer frame within host RAM",
                               "buffer HPA " + hex(buf));
    }
    const std::vector<u64> entries =
        read_in_flight("PML-1", Layer::kPmlBuffer, vm.id(), machine_.pmem, buf,
                       vmcs.read(sim::VmcsField::kPmlIndex));
    std::unordered_set<u64> seen;
    for (const u64 e : entries) {
      // Entries carry the mapped granularity in their low bits; the base
      // must be aligned to that granularity and the whole region in bounds
      // (an all-4K configuration decodes gran code 0, i.e. the old check).
      const Gpa base = pml_entry_base(e);
      const PageGran g = pml_entry_gran(e);
      if (!is_gran_aligned(base, g) ||
          base + gran_size(g) > vm.mem_bytes()) {
        throw InvariantViolation(
            "PML-2", Layer::kPmlBuffer, vm.id(), kNoAddr, e,
            std::string("a ") + gran_name(g) +
                "-aligned GPA region within the VM's " + hex(vm.mem_bytes()) +
                "-byte guest-physical space",
            "logged entry " + hex(e));
      }
      if (!seen.insert(e).second) {
        throw InvariantViolation(
            "PML-3", Layer::kPmlBuffer, vm.id(), kNoAddr, e,
            "each in-flight GPA logged at most once "
            "(the dirty flag stays set until the drain boundary)",
            "duplicate in-flight entry " + hex(e));
      }
    }
  }

  // EPML: the guest-level buffer named by the shadow VMCS.
  const bool guest_pml_ctl = vmcs.control(sim::kEnableGuestPml);
  const sim::Vmcs* shadow = vcpu.shadow_vmcs();
  if (guest_pml_ctl && shadow == nullptr) {
    throw InvariantViolation("EPML-3", Layer::kEpmlBuffer, vm.id(), kNoAddr,
                             kNoAddr,
                             "a linked shadow VMCS while ENABLE_GUEST_PML is set",
                             "no shadow VMCS");
  }
  if (shadow == nullptr) continue;
  const Hpa gbuf = shadow->read(sim::VmcsField::kGuestPmlAddress);
  if (gbuf == 0) continue;
  // The stored address is the EPT-translated HPA of a guest-owned frame, so
  // it must still be backed by a present EPT mapping of this VM.
  bool backed = is_page_aligned(gbuf);
  if (backed) {
    backed = false;
    vm.ept().for_each_present([&](Gpa, sim::EptEntry& e) {
      if (e.hpa_page == gbuf) backed = true;
    });
  }
  if (!backed) {
    throw InvariantViolation(
        "EPML-4", Layer::kEpmlBuffer, vm.id(), kNoAddr, kNoAddr,
        "a page-aligned guest PML buffer HPA backed by a present EPT mapping",
        "buffer HPA " + hex(gbuf));
  }
  const std::vector<u64> gentries =
      read_in_flight("EPML-1", Layer::kEpmlBuffer, vm.id(), machine_.pmem, gbuf,
                     shadow->read(sim::VmcsField::kGuestPmlIndex));
  for (const u64 e : gentries) {
    // Guest-level entries are gran-tagged GVAs (same encoding as the
    // hypervisor buffer; code 0 = 4K keeps the legacy check).
    if (!is_gran_aligned(pml_entry_base(e), pml_entry_gran(e))) {
      throw InvariantViolation(
          "EPML-2", Layer::kEpmlBuffer, vm.id(), e, kNoAddr,
          std::string("a ") + gran_name(pml_entry_gran(e)) +
              "-aligned logged GVA",
          "logged entry " + hex(e));
    }
  }
  }
}

// ---- ACC-* ------------------------------------------------------------------

void CoherenceChecker::audit_dirty_accounting(hv::Vm& vm) {
  // Accounting is only a closed system while the hypervisor is the sole
  // kPmlDrain consumer on every vCPU: SPML coexistence deliberately
  // multi-routes drained GPAs and gates logging off while the tracked
  // process is scheduled out, so flags legally outrun any single consumer's
  // records there.
  bool wss = false;
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    if (!vm.pml_enabled_by_hyp(cpu) || vm.pml_enabled_by_guest(cpu)) return;
    if (vm.pml_buffer(cpu) == 0) return;
    // Under the read-logging extension (WSS sampling) the logged transition
    // is the accessed flag; dirty transitions deliberately do not re-log.
    if (vm.vcpu(cpu).vmcs().control(sim::kEnablePmlReadLog)) wss = true;
  }

  // One consumer-record set across all vCPUs: in-flight buffer slots, ring
  // pending entries, spill logs, and GPAs a concurrent drain already handed
  // to userspace (their flags reset at the next quiescent harvest).
  std::unordered_set<Gpa> log;
  std::unordered_set<Gpa> buffered_all;
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    const sim::Vmcs& vmcs = vm.vcpu(cpu).vmcs();
    const std::vector<u64> entries =
        read_in_flight("PML-1", Layer::kPmlBuffer, vm.id(), machine_.pmem,
                       vm.pml_buffer(cpu), vmcs.read(sim::VmcsField::kPmlIndex));
    // Expand gran-tagged in-flight entries to every 4K page they cover:
    // the drain side does the same expansion, so the accounting closes
    // page-granularly whatever the logged leaf size was.
    std::unordered_set<Gpa> buffered;
    for (const u64 raw : entries) {
      const Gpa b = pml_entry_base(raw);
      const PageGran g = pml_entry_gran(raw);
      for (u64 i = 0; i < gran_pages(g); ++i) buffered.insert(b + i * kPageSize);
    }
    const hv::DirtyRing& ring = vm.dirty_ring(cpu);
    std::unordered_set<Gpa> drained;
    ring.for_each_pending([&](u64 gpa) { drained.insert(gpa); });
    for (const u64 gpa : ring.spill_log()) drained.insert(gpa);
    for (const Gpa gpa : vm.drained_log(cpu)) drained.insert(gpa);
    for (const Gpa gpa : buffered) {
      if (drained.count(gpa) != 0) {
        throw InvariantViolation(
            "ACC-2", Layer::kDirtyLog, vm.id(), kNoAddr, gpa,
            "each logged GPA accounted for by exactly one consumer stage",
            "GPA both in-flight in vCPU " + std::to_string(cpu) +
                "'s PML buffer and in its drained dirty ring");
      }
    }
    buffered_all.insert(buffered.begin(), buffered.end());
    log.insert(drained.begin(), drained.end());
  }

  const char* flag_name = wss ? "accessed" : "dirty";
  vm.ept().for_each_present([&](Gpa gpa, sim::EptEntry& e) {
    const bool flagged = wss ? e.accessed : e.dirty;
    if (flagged && buffered_all.count(gpa) == 0 && log.count(gpa) == 0) {
      throw InvariantViolation(
          "ACC-1", Layer::kEpt, vm.id(), kNoAddr, gpa,
          std::string("every set EPT ") + flag_name +
              " flag accounted for by a consumer "
              "(in-flight PML buffer or drained dirty ring)",
          std::string("EPT ") + flag_name + " flag set with no consumer record");
    }
  });
}

// ---- RING-1 -----------------------------------------------------------------

void CoherenceChecker::audit_rings(hv::Vm& vm) {
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    const hv::DirtyRing& ring = vm.dirty_ring(cpu);
    if (!ring.bounds_ok()) {
      throw InvariantViolation(
          "RING-1", Layer::kDirtyLog, vm.id(), kNoAddr, kNoAddr,
          "vCPU " + std::to_string(cpu) + "'s dirty ring with popped <= " +
              "pushed and pushed - popped <= capacity " +
              std::to_string(ring.capacity()),
          "pushed " + std::to_string(ring.pushed()) + ", popped " +
              std::to_string(ring.popped()));
    }
    ring.for_each_pending([&](u64 gpa) {
      if (!is_page_aligned(gpa) || gpa >= vm.mem_bytes()) {
        throw InvariantViolation(
            "RING-1", Layer::kDirtyLog, vm.id(), kNoAddr, gpa,
            "ring entries 4K-aligned GPAs within the VM's " +
                hex(vm.mem_bytes()) + "-byte guest-physical space",
            "pending entry " + hex(gpa));
      }
    });
    for (const u64 gpa : ring.spill_log()) {
      if (!is_page_aligned(gpa) || gpa >= vm.mem_bytes()) {
        throw InvariantViolation(
            "RING-1", Layer::kDirtyLog, vm.id(), kNoAddr, gpa,
            "spill entries 4K-aligned GPAs within the VM's " +
                hex(vm.mem_bytes()) + "-byte guest-physical space",
            "spill entry " + hex(gpa));
      }
    }
  }
}

// ---- PT-* -------------------------------------------------------------------

void CoherenceChecker::audit_guest_tables(hv::Vm& vm) {
  guest::GuestKernel* kernel = kernel_of(vm.id());
  if (kernel == nullptr) return;
  std::unordered_map<Gpa, std::pair<u32, Gva>> owner;  // gpa -> first owner
  // The per-4K view computes the translated GPA per page, so one huge leaf
  // (or segment) claims each of its guest frames individually — frame
  // exclusivity stays a page-granular statement across every backend.
  kernel->for_each_process([&](guest::Process& p, sim::GuestPageTable& pt) {
    pt.for_each_mapping([&](Gva gva_page, const sim::Pte&, Gpa gpa) {
      if (!is_page_aligned(gpa) || gpa >= vm.mem_bytes()) {
        throw InvariantViolation(
            "PT-1", Layer::kGuestPageTable, vm.id(), gva_page, gpa,
            "a 4K-aligned GPA within the VM's " + hex(vm.mem_bytes()) +
                "-byte guest-physical space",
            "page translates to " + hex(gpa));
      }
      const auto [it, fresh] = owner.try_emplace(gpa, p.pid(), gva_page);
      if (!fresh) {
        throw InvariantViolation(
            "PT-2", Layer::kGuestPageTable, vm.id(), gva_page, gpa,
            "each guest frame owned by at most one present mapping (first "
            "owner: pid " + std::to_string(it->second.first) + " gva " +
                hex(it->second.second) + ")",
            "also mapped by pid " + std::to_string(p.pid()) + " gva " +
                hex(gva_page));
      }
    });
  });
}

// ---- GRAN-1 / SPLIT-1 -------------------------------------------------------

namespace {

/// GRAN-1 core: present leaves, viewed as [base, base+size) intervals, must
/// tile without overlap. Same-size radix leaves occupy distinct slots by
/// construction, so any overlap is a cross-granularity double cover — one
/// page with two independent dirty flags.
void check_leaf_exclusivity(std::vector<std::pair<u64, u64>>& leaves,
                            Layer layer, u32 vm_id, const std::string& where) {
  std::sort(leaves.begin(), leaves.end());
  u64 prev_end = 0;
  u64 prev_base = 0;
  for (const auto& [base, end] : leaves) {
    if (base < prev_end) {
      throw InvariantViolation(
          "GRAN-1", layer, vm_id, kNoAddr, base,
          "each page of " + where + " covered by at most one present leaf",
          "leaf at " + hex(base) + " overlaps the leaf at " + hex(prev_base));
    }
    prev_base = base;
    prev_end = end;
  }
}

}  // namespace

void CoherenceChecker::audit_granularity(hv::Vm& vm) {
  std::vector<std::pair<u64, u64>> leaves;
  vm.ept().for_each_leaf_present([&](Gpa base, sim::EptEntry&, PageGran g) {
    leaves.emplace_back(base, base + gran_size(g));
  });
  check_leaf_exclusivity(leaves, Layer::kEpt, vm.id(), "the EPT");

  guest::GuestKernel* kernel = kernel_of(vm.id());
  if (kernel == nullptr) return;
  kernel->for_each_process([&](guest::Process& p, sim::GuestPageTable& pt) {
    if (pt.backend() == sim::TranslationBackend::kSegment) {
      // Segment form of the same statement: sorted, non-overlapping runs
      // whose shared Pte mirrors the run base.
      if (!pt.segment_table()->coherent()) {
        throw InvariantViolation(
            "GRAN-1", Layer::kGuestPageTable, vm.id(), kNoAddr, kNoAddr,
            "pid " + std::to_string(p.pid()) +
                "'s segments sorted, non-overlapping and internally "
                "consistent",
            "segment table fails its coherence sweep");
      }
      return;
    }
    leaves.clear();
    pt.for_each_leaf_present([&](Gva base, sim::Pte&, PageGran g) {
      leaves.emplace_back(base, base + gran_size(g));
    });
    check_leaf_exclusivity(leaves, Layer::kGuestPageTable, vm.id(),
                           "pid " + std::to_string(p.pid()) +
                               "'s address space");
  });
}

void CoherenceChecker::audit_eager_split(hv::Vm& vm) {
  // While an eager-split logging session runs, every EPT leaf is 4 KiB:
  // each dirty-flag transition names exactly one page, so the ACC-* closure
  // audited above is page-precise for the whole session (SPLIT-1).
  if (!vm.eager_split_active()) return;
  if (const u64 huge = vm.ept().huge_leaves(); huge != 0) {
    throw InvariantViolation(
        "SPLIT-1", Layer::kEpt, vm.id(), kNoAddr, kNoAddr,
        "no PS-bit EPT leaves while an eager-split logging session is active",
        std::to_string(huge) + " huge leaves present");
  }
}

// ---- REG-* ------------------------------------------------------------------

void CoherenceChecker::audit_registry(hv::Vm& vm) {
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
  const sim::Vcpu& vcpu = vm.vcpu(cpu);
  const sim::WriteTrackRegistry& reg = vcpu.track_registry();
  for (std::size_t li = 0; li < sim::kTrackLayerCount; ++li) {
    const auto layer = static_cast<sim::TrackLayer>(li);
    const u64 dispatched = reg.events_dispatched(layer);
    std::unordered_set<const sim::PageTrackNotifier*> seen;
    std::vector<const sim::PageTrackNotifier*> order;
    reg.for_each_registration(
        layer, [&](const sim::PageTrackNotifier* n, bool, u64 delivered) {
          const std::string where(sim::track_layer_name(layer));
          if (n == nullptr) {
            throw InvariantViolation("REG-1", Layer::kNotifierChain, vm.id(),
                                     kNoAddr, kNoAddr,
                                     "no null notifier on layer " + where,
                                     "null registration");
          }
          if (!seen.insert(n).second) {
            throw InvariantViolation(
                "REG-1", Layer::kNotifierChain, vm.id(), kNoAddr, kNoAddr,
                "each notifier registered at most once on layer " + where,
                "duplicate registration (double-dispatch)");
          }
          order.push_back(n);
          if (delivered > dispatched) {
            throw InvariantViolation(
                "REG-3", Layer::kNotifierChain, vm.id(), kNoAddr, kNoAddr,
                "per-consumer deliveries <= " + std::to_string(dispatched) +
                    " events dispatched on layer " + where,
                std::to_string(delivered) + " deliveries");
          }
        });
    // The permanent hardware circuits must head their chains: software
    // consumers added later observe events only after the hardware logged
    // them, as on a real machine.
    const sim::PageTrackNotifier* expected_head = nullptr;
    if (layer == sim::TrackLayer::kGuestPtDirty) {
      expected_head = vcpu.guest_pml_circuit();
    } else if (layer == sim::TrackLayer::kEptDirty ||
               layer == sim::TrackLayer::kEptAccessed) {
      expected_head = vcpu.hyp_pml_circuit();
    }
    if (expected_head != nullptr &&
        (order.empty() || order.front() != expected_head)) {
      throw InvariantViolation(
          "REG-2", Layer::kNotifierChain, vm.id(), kNoAddr, kNoAddr,
          std::string("the hardware PML circuit first in the ") +
              std::string(sim::track_layer_name(layer)) + " chain",
          order.empty() ? "empty chain" : "another notifier heads the chain");
    }
  }
  std::unordered_set<const sim::PageTrackNotifier*> flush_seen;
  reg.for_each_flush([&](const sim::PageTrackNotifier* n) {
    if (n == nullptr) {
      throw InvariantViolation("REG-1", Layer::kNotifierChain, vm.id(), kNoAddr,
                               kNoAddr, "no null notifier on the flush chain",
                               "null registration");
    }
    if (!flush_seen.insert(n).second) {
      throw InvariantViolation(
          "REG-1", Layer::kNotifierChain, vm.id(), kNoAddr, kNoAddr,
          "each notifier registered at most once on the flush chain",
          "duplicate registration");
    }
  });
  }
}

// ---- POL-* ------------------------------------------------------------------

void CoherenceChecker::audit_policy_handoff(hv::Vm& vm) {
  // POL-1: write-protected EPT entries must be claimed by a live handler.
  // A wp-style tracking session clears `writable` on the pages it watches
  // and owns a kEptWpFault notifier that services the resulting faults. A
  // policy-driven handoff away from that backend must restore writability
  // before the handler unregisters: an orphaned protection would make the
  // next write to the page an *unhandled* WP fault (the dispatch throws),
  // and the write's dirty transition would never reach the new backend —
  // exactly the lost-page hazard the switch protocol promises away. SPP
  // entries are exempt: their write mediation lives in the SPP table, not
  // a notifier chain.
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    if (vm.vcpu(cpu).track_registry().notifier_count(
            sim::TrackLayer::kEptWpFault) != 0) {
      return;  // a WP session is live; its protections are owned.
    }
  }
  vm.ept().for_each_leaf_present([&](Gpa base, sim::EptEntry& e, PageGran g) {
    if (!e.writable && !e.spp) {
      throw InvariantViolation(
          "POL-1", Layer::kEpt, vm.id(), kNoAddr, base,
          "no write-protected EPT entry outlives its kEptWpFault handler",
          std::string("orphaned write protection on a present ") +
              gran_name(g) + " leaf");
    }
  });
}

// ---- CLK-* ------------------------------------------------------------------

void CoherenceChecker::audit_clock(hv::Vm& vm) {
  sync::SpinGuard lock(clock_mu_);
  if (clock_snapshots_.size() <= vm.id()) {
    clock_snapshots_.resize(vm.id() + 1);
  }
  std::vector<VirtDuration>& snaps = clock_snapshots_[vm.id()];
  if (snaps.size() < vm.vcpu_count()) {
    snaps.resize(vm.vcpu_count(), VirtDuration{0});
  }
  for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
    const VirtDuration now = vm.vcpu(cpu).ctx().clock.now();
    VirtDuration& last = snaps[cpu];
    if (now < VirtDuration{0} || now < last) {
      throw InvariantViolation(
          "CLK-1", Layer::kClock, vm.id(), kNoAddr, kNoAddr,
          "vCPU " + std::to_string(cpu) +
              "'s virtual time monotone (last audit saw " +
              std::to_string(to_us(last)) + " us)",
          std::to_string(to_us(now)) + " us");
    }
    last = now;
  }
}

void CoherenceChecker::reset_clock_history() {
  sync::SpinGuard lock(clock_mu_);
  clock_snapshots_.clear();
}

// ---- FRAME-* ----------------------------------------------------------------

void CoherenceChecker::audit_frames() {
  // frame number -> (owning VM, GPA mapping it; kNoAddr for a PML buffer)
  std::unordered_map<u64, std::pair<u32, Gpa>> owner;
  const u64 total = machine_.pmem.total_frames();
  const auto claim = [&](u32 vm_id, Gpa gpa, Hpa hpa, const char* what) {
    if (hpa == 0 || !is_page_aligned(hpa) || page_index(hpa) >= total) {
      throw InvariantViolation(
          "FRAME-3", Layer::kFrameAllocator, vm_id, kNoAddr, gpa,
          std::string(what) + " naming a page-aligned frame in (0, " +
              hex(total * kPageSize) + ")",
          "HPA " + hex(hpa));
    }
    const auto [it, fresh] = owner.try_emplace(page_index(hpa), vm_id, gpa);
    if (!fresh) {
      throw InvariantViolation(
          "FRAME-1", Layer::kFrameAllocator, vm_id, kNoAddr, gpa,
          "exclusive frame ownership (frame " + hex(hpa) +
              " already owned by vm " + std::to_string(it->second.first) +
              (it->second.second == kNoAddr
                   ? std::string(" as a PML buffer")
                   : " at gpa " + hex(it->second.second)) +
              ")",
          std::string("also claimed by this ") + what);
    }
  };
  for (std::size_t i = 0; i < hypervisor_.vm_count(); ++i) {
    hv::Vm& vm = hypervisor_.vm(i);
    // Per-4K view: a huge leaf claims each frame of its contiguous HPA run
    // individually, so exclusivity and the used-frames reconciliation stay
    // page-granular.
    vm.ept().for_each_mapping(
        [&](Gpa gpa, const sim::EptEntry&, Hpa hpa, PageGran) {
          claim(vm.id(), gpa, hpa, "EPT mapping");
        });
    for (unsigned cpu = 0; cpu < vm.vcpu_count(); ++cpu) {
      if (vm.pml_buffer(cpu) != 0) {
        claim(vm.id(), kNoAddr, vm.pml_buffer(cpu), "PML buffer");
      }
    }
  }
  const u64 used = machine_.pmem.used_frames();
  if (owner.size() != used) {
    const char* direction =
        used > owner.size() ? " (leaked frames)" : " (double-accounted frames)";
    throw InvariantViolation(
        "FRAME-2", Layer::kFrameAllocator, 0, kNoAddr, kNoAddr,
        "allocator used_frames == " + std::to_string(owner.size()) +
            " frames accounted for by EPT mappings + PML buffers",
        std::to_string(used) + " frames allocated" + direction);
  }
  // FRAME-4: materialised contents are accounted for. Every backed frame is
  // either claimed by an owner above, or CoW-shared with a captured machine
  // snapshot (shared-read-only: the live machine may drop or replace it but
  // never writes through it — frame_data() clones first). Contents backed by
  // neither are orphaned bytes nothing can legitimately reach: a stale write
  // path or a restore that installed frames the stream never claimed.
  for (const auto& [fn, shared] : machine_.pmem.backed_frame_table()) {
    if (owner.contains(fn) || shared) continue;
    throw InvariantViolation(
        "FRAME-4", Layer::kFrameAllocator, 0, kNoAddr, kNoAddr,
        "backed frame " + hex(fn << kPageShift) +
            " owned by an EPT mapping or PML buffer, or CoW-shared "
            "(read-only) with a snapshot",
        "contents materialised but unclaimed and unshared");
  }
}

}  // namespace ooh::check
