// Table I: overhead (%) of ufd- and /proc-based dirty page tracking on
// Tracked and on Tracker, as the monitored memory grows from 1MB to 1GB.
//
// Paper's finding: both overheads grow with memory; ufd reaches ~15x (1463%)
// on Tracked and ~14x (1349%) on Tracker at 1GB; /proc reaches ~4x (335%) on
// Tracked and ~2x (147%) on Tracker.
#include "base/stats.hpp"
#include "common.hpp"

using namespace ooh;
using bench::mem_label;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Table I", "Overhead (%) of ufd and /proc tracking vs memory size");

  const std::vector<u64> sizes = bench::memory_sweep(args.full);
  std::vector<std::string> header = {"On Tracked"};
  for (const u64 s : sizes) header.push_back(mem_label(s));

  TextTable tracked(header);
  header[0] = "On Tracker";
  TextTable tracker(header);

  for (const lib::Technique tech : {lib::Technique::kUfd, lib::Technique::kProc}) {
    std::vector<double> tked_row, tker_row;
    for (const u64 mem : sizes) {
      const bench::MicroRun r = bench::run_micro(tech, mem);
      tked_row.push_back(overhead_pct(r.tracked_us, r.ideal_us));
      tker_row.push_back(r.tracker_us / r.ideal_us * 100.0);
    }
    const std::string name{lib::technique_name(tech)};
    tracked.add_row(name, tked_row, 0);
    tracker.add_row(name, tker_row, 0);
  }
  tracked.print(std::cout);
  std::printf("\n");
  tracker.print(std::cout);
  std::printf("\nShape check: both overheads grow with memory; ufd >> /proc.\n");
  return 0;
}
