#include "sim/page_track.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/exec_context.hpp"
#include "sim/vcpu.hpp"

namespace ooh::sim {

std::string_view track_layer_name(TrackLayer layer) noexcept {
  switch (layer) {
    case TrackLayer::kGuestPtDirty: return "guest-pt-dirty";
    case TrackLayer::kEptDirty: return "ept-dirty";
    case TrackLayer::kEptAccessed: return "ept-accessed";
    case TrackLayer::kEptWpFault: return "ept-wp-fault";
    case TrackLayer::kGuestWpFault: return "guest-wp-fault";
    case TrackLayer::kPmlDrain: return "pml-drain";
    case TrackLayer::kCount: break;
  }
  return "?";
}

void WriteTrackRegistry::register_notifier(TrackLayer layer, PageTrackNotifier* n,
                                           bool is_enabled) {
  if (n == nullptr) throw std::invalid_argument("null page-track notifier");
  if (registered(layer, n)) {
    throw std::logic_error("notifier already registered on this layer");
  }
  chain(layer).push_back(Registration{n, is_enabled, 0});
}

void WriteTrackRegistry::unregister_notifier(TrackLayer layer, PageTrackNotifier* n) {
  auto& regs = chain(layer);
  const auto it = std::find_if(regs.begin(), regs.end(),
                               [n](const Registration& r) { return r.notifier == n; });
  if (it == regs.end()) {
    throw std::logic_error("notifier not registered on this layer");
  }
  regs.erase(it);
}

bool WriteTrackRegistry::registered(TrackLayer layer,
                                    const PageTrackNotifier* n) const noexcept {
  const auto& regs = chain(layer);
  return std::any_of(regs.begin(), regs.end(),
                     [n](const Registration& r) { return r.notifier == n; });
}

void WriteTrackRegistry::set_enabled(TrackLayer layer, PageTrackNotifier* n,
                                     bool is_enabled) {
  for (Registration& r : chain(layer)) {
    if (r.notifier == n) {
      r.enabled = is_enabled;
      return;
    }
  }
  throw std::logic_error("set_enabled on a notifier not registered on this layer");
}

bool WriteTrackRegistry::enabled(TrackLayer layer,
                                 const PageTrackNotifier* n) const noexcept {
  for (const Registration& r : chain(layer)) {
    if (r.notifier == n) return r.enabled;
  }
  return false;
}

bool WriteTrackRegistry::any_enabled(TrackLayer layer) const noexcept {
  const auto& regs = chain(layer);
  return std::any_of(regs.begin(), regs.end(),
                     [](const Registration& r) { return r.enabled; });
}

bool WriteTrackRegistry::dispatch(TrackLayer layer, const TrackEvent& ev) {
  Chain& c = chains_[static_cast<std::size_t>(layer)];
  ++c.dispatched;
  bool handled = false;
  // Index loop, not iterators: a notifier may register or unregister
  // notifiers on this layer — including itself — while handling an event
  // (e.g. a tracker tearing down).
  for (std::size_t i = 0; i < c.regs.size();) {
    if (!c.regs[i].enabled) {
      ++i;
      continue;
    }
    PageTrackNotifier* n = c.regs[i].notifier;
    ++c.regs[i].delivered;
    if (n->on_track(layer, ev)) {
      handled = true;
      if (stops_at_first_handler(layer)) break;
    }
    // Unregistration during the callback shifts the chain left; advance
    // only if slot i still holds the notifier that just ran.
    if (i < c.regs.size() && c.regs[i].notifier == n) ++i;
  }
  return handled;
}

void WriteTrackRegistry::register_flush(PageTrackNotifier* n) {
  if (n == nullptr) throw std::invalid_argument("null page-track flush notifier");
  if (std::find(flush_chain_.begin(), flush_chain_.end(), n) != flush_chain_.end()) {
    throw std::logic_error("flush notifier already registered");
  }
  flush_chain_.push_back(n);
}

void WriteTrackRegistry::unregister_flush(PageTrackNotifier* n) {
  const auto it = std::find(flush_chain_.begin(), flush_chain_.end(), n);
  if (it == flush_chain_.end()) throw std::logic_error("flush notifier not registered");
  flush_chain_.erase(it);
}

void WriteTrackRegistry::notify_flush(u32 pid, Gva start, Gva end) {
  for (std::size_t i = 0; i < flush_chain_.size(); ++i) {
    flush_chain_[i]->on_track_flush(pid, start, end);
  }
}

u64 WriteTrackRegistry::events_delivered(TrackLayer layer,
                                         const PageTrackNotifier* n) const noexcept {
  for (const Registration& r : chain(layer)) {
    if (r.notifier == n) return r.delivered;
  }
  return 0;
}

u64 WriteTrackRegistry::events_dispatched(TrackLayer layer) const noexcept {
  return chains_[static_cast<std::size_t>(layer)].dispatched;
}

// ---- HypPmlLogger -----------------------------------------------------------

namespace {

bool hyp_pml_active(const Vcpu& vcpu) noexcept {
  const Vmcs& v = vcpu.vmcs();
  return v.control(kEnablePml) && v.read(VmcsField::kPmlAddress) != 0;
}

bool read_log_active(const Vcpu& vcpu) noexcept {
  const Vmcs& v = vcpu.vmcs();
  return v.control(kEnablePml) && v.control(kEnablePmlReadLog) &&
         v.read(VmcsField::kPmlAddress) != 0;
}

bool guest_pml_active(Vcpu& vcpu) noexcept {
  const Vmcs& v = vcpu.vmcs();
  if (!v.control(kEnableGuestPml)) return false;
  const Vmcs* shadow = vcpu.shadow_vmcs();
  return shadow != nullptr && shadow->read(VmcsField::kGuestPmlEnable) != 0 &&
         shadow->read(VmcsField::kGuestPmlAddress) != 0;
}

}  // namespace

void HypPmlLogger::log_gpa(Vcpu& vcpu, Gpa gpa_page) {
  ExecContext& ctx = vcpu.ctx();
  Vmcs& v = vcpu.vmcs();
  u16 idx = static_cast<u16>(v.read(VmcsField::kPmlIndex));
  if (idx > kPmlIndexStart) {
    // Index underflowed past entry 0: PML-full VM-exit before logging (SDM).
    vcpu.vmexit_to_root(Event::kVmExitPmlFull, [&] { vcpu.exits()->on_pml_full(vcpu); });
    idx = static_cast<u16>(v.read(VmcsField::kPmlIndex));
    if (idx > kPmlIndexStart) {
      throw std::logic_error("PML-full handler did not reset the PML index");
    }
  }
  const Hpa buf = v.read(VmcsField::kPmlAddress);
  ctx.pmem.write_u64(buf + u64{idx} * 8, gpa_page);
  v.write(VmcsField::kPmlIndex, static_cast<u16>(idx - 1));  // wraps past 0
  ctx.count(Event::kPmlLogGpa);
  ctx.charge_ns(ctx.cost.pml_log_ns);
}

bool HypPmlLogger::on_track(TrackLayer layer, const TrackEvent& ev) {
  Vcpu& vcpu = *ev.vcpu;
  if (layer == TrackLayer::kEptAccessed) {
    // Read-logging extension: accessed-flag transitions log the GPA so the
    // hypervisor can estimate the working set (touched, not just dirtied).
    if (!read_log_active(vcpu)) return false;
    vcpu.ctx().count(Event::kPmlLogRead);
    log_gpa(vcpu, ev.gpa_page);
    return true;
  }
  // kEptDirty. Under read-logging the accessed transition already logged
  // this page; logging the dirty transition too would double-count it.
  if (!hyp_pml_active(vcpu) || read_log_active(vcpu)) return false;
  log_gpa(vcpu, ev.gpa_page);
  return true;
}

// ---- GuestPmlLogger ---------------------------------------------------------

bool GuestPmlLogger::on_track(TrackLayer /*layer*/, const TrackEvent& ev) {
  Vcpu& vcpu = *ev.vcpu;
  if (!guest_pml_active(vcpu)) return false;
  ExecContext& ctx = vcpu.ctx();
  Vmcs& shadow = *vcpu.shadow_vmcs();
  u16 idx = static_cast<u16>(shadow.read(VmcsField::kGuestPmlIndex));
  if (idx > kPmlIndexStart) {
    // Guest-level buffer full: posted self-IPI into the OoH module; the
    // module drains the buffer and resets the index. No VM-exit (EPML).
    ctx.count(Event::kSelfIpi);
    ctx.charge_us(ctx.cost.self_ipi_us + ctx.cost.irq_dispatch_us);
    vcpu.irq_sink()->on_guest_pml_full(vcpu);
    idx = static_cast<u16>(shadow.read(VmcsField::kGuestPmlIndex));
    if (idx > kPmlIndexStart) {
      throw std::logic_error("self-IPI handler did not reset the guest PML index");
    }
  }
  const Hpa buf = shadow.read(VmcsField::kGuestPmlAddress);
  ctx.pmem.write_u64(buf + u64{idx} * 8, ev.gva_page);
  shadow.write(VmcsField::kGuestPmlIndex, static_cast<u16>(idx - 1));
  ctx.count(Event::kPmlLogGvaGuest);
  ctx.charge_ns(ctx.cost.pml_log_ns);
  return true;
}

}  // namespace ooh::sim
