// The MMU write path: TLB -> guest page-table walk -> EPT walk.
//
// Every dirty-producing transition the walk observes is dispatched through
// the vCPU's page-track notifier chain (sim/page_track.hpp) at the layer
// where it originates:
//   * a guest-PTE dirty-flag transition -> kGuestPtDirty (the EPML circuit
//     logs the GVA if armed);
//   * an EPT accessed-flag transition  -> kEptAccessed (read-logging);
//   * an EPT dirty-flag transition     -> kEptDirty (the Intel PML circuit
//     logs the GPA if armed);
//   * a write to a write-protected EPT entry -> kEptWpFault (KVM
//     page_track-style write interception; must be handled).
//
// Guest-level faults are *returned*, not handled: the guest kernel owns
// fault policy (demand paging, soft-dirty, userfaultfd) and retries.
#pragma once

#include "base/types.hpp"
#include "sim/ept.hpp"
#include "sim/page_table.hpp"
#include "sim/spp.hpp"

namespace ooh::sim {

class ExecContext;
class Vcpu;

class Mmu {
 public:
  /// All time and events the walk circuit charges go to `vcpu`'s own
  /// execution context. `spp` is the sub-page permission table the hardware
  /// consults for EPT entries with the spp flag (nullptr = SPP absent from
  /// this machine).
  Mmu(Vcpu& vcpu, Ept& ept, SppTable* spp = nullptr);

  enum class Status {
    kOk,
    kFaultNotPresent,   ///< PTE absent: demand paging or ufd `miss` territory.
    kFaultNotWritable,  ///< write to a present RO/uffd-wp PTE: tracking territory.
    kFaultSubPage,      ///< write blocked by an SPP sub-page mask (guard hit).
  };

  struct Result {
    Status status = Status::kOk;
    Hpa hpa = 0;  ///< translated host physical address (valid when kOk).
  };

  /// Perform one access at `gva` for guest process `pid` through `pt`.
  [[nodiscard]] Result access(u32 pid, GuestPageTable& pt, Gva gva, bool is_write);

  [[nodiscard]] Ept& ept() noexcept { return ept_; }

 private:
  ExecContext& ctx_;
  Vcpu& vcpu_;
  Ept& ept_;
  SppTable* spp_;
};

}  // namespace ooh::sim
