#include "workloads/workload.hpp"

#include "trackers/boehmgc/gc.hpp"

namespace ooh::wl {

std::string_view config_name(ConfigSize s) noexcept {
  switch (s) {
    case ConfigSize::kSmall: return "small";
    case ConfigSize::kMedium: return "medium";
    case ConfigSize::kLarge: return "large";
  }
  return "?";
}

Gva Workload::alloc_temp(guest::Process& proc, unsigned ref_slots, u64 data_bytes) {
  if (gc_ != nullptr) return gc_->alloc(ref_slots, data_bytes);
  // Plain runs: a recycled 4 MiB arena models malloc/free of temporaries.
  const u64 size = (16 + 8 * ref_slots + data_bytes + 15) & ~u64{15};
  if (temp_arena_ == 0) {
    temp_arena_bytes_ = 4 * kMiB;
    temp_arena_ = proc.mmap(temp_arena_bytes_);
  }
  if (temp_bump_ + size > temp_arena_bytes_) temp_bump_ = 0;
  const Gva addr = temp_arena_ + temp_bump_;
  temp_bump_ += size;
  proc.write_u64(addr, size);  // header store: dirties the page, like malloc metadata
  return addr;
}

}  // namespace ooh::wl
