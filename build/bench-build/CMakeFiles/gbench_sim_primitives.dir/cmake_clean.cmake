file(REMOVE_RECURSE
  "../bench/gbench_sim_primitives"
  "../bench/gbench_sim_primitives.pdb"
  "CMakeFiles/gbench_sim_primitives.dir/gbench_sim_primitives.cpp.o"
  "CMakeFiles/gbench_sim_primitives.dir/gbench_sim_primitives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_sim_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
