// Failure injection and error-path coverage: resource exhaustion, invalid
// API use, overflow honesty, teardown ordering.
#include <gtest/gtest.h>

#include "guest/ooh_module.hpp"
#include "guest/procfs.hpp"
#include "hypervisor/hypervisor.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh {
namespace {

TEST(Failures, GuestPhysicalExhaustion) {
  lib::TestBedOptions opts;
  opts.vm_mem_bytes = 16 * kPageSize;
  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(64 * kPageSize);  // VMA bigger than the VM
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) proc.touch_write(base + i * kPageSize);
      },
      std::runtime_error);
}

TEST(Failures, HostPhysicalExhaustion) {
  lib::TestBedOptions opts;
  opts.host_mem_bytes = 8 * kPageSize;  // almost no host RAM
  opts.vm_mem_bytes = 64 * kPageSize;
  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(32 * kPageSize);
  EXPECT_THROW(
      {
        for (int i = 0; i < 32; ++i) proc.touch_write(base + i * kPageSize);
      },
      std::bad_alloc);
}

TEST(Failures, DoubleTrackThrows) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  (void)proc.mmap(kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.track(proc);
  EXPECT_THROW(mod.track(proc), std::logic_error);
  mod.untrack(proc);
  EXPECT_THROW(mod.untrack(proc), std::logic_error);
}

TEST(Failures, FetchUntrackedThrows) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kSpml);
  EXPECT_THROW((void)mod.fetch(proc), std::logic_error);
  EXPECT_EQ(mod.dropped(proc), 0u);
}

TEST(Failures, ModuleUnloadUntracksEverything) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& p1 = k.create_process();
  auto& p2 = k.create_process();
  (void)p1.mmap(kPageSize);
  (void)p2.mmap(kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kSpml);
  mod.track(p1);
  mod.track(p2);
  k.unload_ooh_module();  // must untrack both and release PML cleanly
  EXPECT_FALSE(bed.vm().pml_enabled_by_guest());
  EXPECT_FALSE(bed.vm().vcpu().vmcs().control(sim::kEnablePml));
  // Fresh module works afterwards.
  guest::OohModule& mod2 = k.load_ooh_module(guest::OohMode::kEpml);
  mod2.track(p1);
  mod2.untrack(p1);
}

TEST(Failures, RingOverflowIsReportedNotSilent) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 4096;
  const Gva base = proc.mmap(pages * kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.set_ring_entries(1024);  // far smaller than the dirty set
  mod.track(proc);
  k.scheduler().enter_process(proc.pid());
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  k.scheduler().exit_process(proc.pid());
  const std::vector<u64> got = mod.fetch(proc);
  EXPECT_LT(got.size(), pages);
  EXPECT_EQ(got.size() + mod.dropped(proc), pages)
      << "every logged page is either delivered or counted as dropped";
  mod.untrack(proc);
}

TEST(Failures, TrackerReportsDropsThroughItsApi) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const u64 pages = 4096;
  const Gva base = proc.mmap(pages * kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.set_ring_entries(512);
  auto tracker = lib::make_tracker(lib::Technique::kEpml, k, proc);
  lib::RunOptions opts;
  opts.collect_period = VirtDuration{0};  // never collect mid-run: force pressure
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
      },
      tracker.get(), opts);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_LT(r.capture_ratio(), 1.0);
  EXPECT_EQ(r.unique_pages + r.dropped, r.truth_pages);
  tracker->shutdown();
}

TEST(Failures, SegfaultsCarryTheFaultAddress) {
  lib::TestBed bed;
  auto& proc = bed.kernel().create_process();
  try {
    proc.touch_write(0xdeadbeef000);
    FAIL() << "expected a segfault";
  } catch (const guest::GuestSegfault& sf) {
    EXPECT_EQ(sf.addr, 0xdeadbeef000u);
  }
}

TEST(Failures, ReadOnlyVmaRejectsWrites) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(2 * kPageSize);
  proc.touch_write(base);
  proc.vmas_mut()[0].writable = false;  // mprotect(PROT_READ)
  k.procfs().clear_refs(proc);          // write-protects the PTEs
  proc.touch_read(base);
  EXPECT_THROW(proc.touch_write(base), guest::GuestSegfault)
      << "the soft-dirty fault path must not upgrade a read-only VMA";
}

TEST(Failures, MistargetedSelfIpiIsHarmless) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  (void)proc.mmap(kPageSize);
  guest::OohModule& mod = k.load_ooh_module(guest::OohMode::kEpml);
  mod.track(proc);
  // Deliver a spurious buffer-full IPI with no tracked process scheduled.
  mod.handle_guest_pml_full(0);
  mod.untrack(proc);
}

TEST(Failures, BaselineRunAfterFailedRunIsClean) {
  // A failed (thrown) workload must not wedge the scheduler.
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(2 * kPageSize);
  EXPECT_THROW(lib::run_baseline(k, proc,
                                 [&](guest::Process& p) {
                                   p.touch_write(base);
                                   throw std::runtime_error("app crashed");
                                 }),
               std::runtime_error);
  // Note: enter_process was not popped; a fresh process still runs fine.
  auto& proc2 = k.create_process();
  const Gva b2 = proc2.mmap(kPageSize);
  const lib::RunResult r = lib::run_baseline(k, proc2, [&](guest::Process& p) {
    p.touch_write(b2);
  });
  EXPECT_EQ(r.truth_pages, 1u);
}

}  // namespace
}  // namespace ooh
