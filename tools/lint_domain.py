#!/usr/bin/env python3
"""Domain lint for the OoH simulator: machine-state mutation discipline.

The coherence oracle (src/sim/check/) can only vouch for invariants if
machine state is mutated through the sanctioned paths it audits. This lint
freezes those paths: each rule names a pattern that mutates hardware-visible
state (EPT/PTE flags, TLB fills, VMCS fields, event counters, the virtual
clock, the page-track notifier chain) and the closed set of files allowed
to contain it. New code must either route through an existing mutator or
extend the whitelist in the same change that documents the new invariant
(docs/invariants.md).

Scans src/ only — tests deliberately corrupt state to exercise the oracle,
and bench/ is read-only by construction.

Exit status: 0 clean, 1 violations (one per line: path:lineno: rule: text).
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Rule:
    name: str
    pattern: re.Pattern
    allowed: frozenset[str]  # repo-relative files allowed to match
    why: str


def rule(name: str, pattern: str, allowed: list[str], why: str) -> Rule:
    return Rule(name, re.compile(pattern), frozenset(allowed), why)


RULES: list[Rule] = [
    rule(
        "ept-pte-flag-write",
        r"->\s*(dirty|accessed|writable|present|spp)\s*=",
        [
            # The walk circuit and the subsystems modelling real hardware /
            # kernel behaviour (dirty-flag re-arm, WP, swap-out, CoW).
            "src/sim/mmu.cpp",
            "src/sim/ept.cpp",
            "src/sim/page_table.cpp",
            "src/hypervisor/hypervisor.cpp",
            "src/guest/swap.cpp",
            "src/guest/ooh_module.cpp",
            "src/guest/procfs.cpp",
            "src/ooh/trackers.cpp",  # wp backend flips EPT write permission
        ],
        "EPT/PTE permission and dirty/accessed flags may only change in the "
        "page-walk circuit and the whitelisted re-arm paths; anywhere else "
        "bypasses TLB shootdown and breaks TLB-2/TLB-3/ACC-1.",
    ),
    rule(
        "tlb-fill",
        r"\btlb\b[^\n]*\.insert\s*\(",
        ["src/sim/mmu.cpp"],
        "Only the MMU walk may install translations; a fill anywhere else "
        "caches state never derived from the tables (TLB-1).",
    ),
    rule(
        "vmcs-field-write",
        r"\.write\s*\(\s*(sim::)?VmcsField::",
        [
            "src/sim/vcpu.cpp",
            "src/sim/page_track.cpp",
            "src/hypervisor/hypervisor.cpp",
        ],
        "PML/EPML VMCS fields (buffer address, index, controls) are owned by "
        "the logging circuits and the hypervisor session code; stray writes "
        "desynchronise PML-1/PML-4/EPML-1.",
    ),
    rule(
        "direct-counter-bump",
        r"\bcounters\.add\s*\(",
        ["src/sim/exec_context.hpp"],
        "Event accounting must go through ExecContext::count() so counters "
        "stay attributable to the owning vCPU timeline.",
    ),
    rule(
        "direct-clock-advance",
        r"\bclock\.(advance|reset)\s*\(",
        ["src/sim/exec_context.hpp"],
        "Virtual time must be charged via ExecContext::charge_us/charge_ns; "
        "direct clock manipulation breaks monotonicity auditing (CLK-1).",
    ),
    rule(
        "walk-cache-mutation",
        r"\b(invalidate_walk_cache|debug_skew_walk_cache)\s*\(",
        [
            # The radix table owns the memo; the EPT and guest-PT wrappers
            # forward the shootdown from their unmap paths.
            "src/sim/radix.hpp",
            "src/sim/page_table.hpp",
            "src/sim/page_table.cpp",
            "src/sim/ept.hpp",
            "src/sim/ept.cpp",
        ],
        "The MRU walk-cache memo is invalidated only by the table-structure "
        "mutators that free or zero leaves (unmap paths); invalidating it "
        "elsewhere hides bugs WALK-1 exists to catch, and skewing it is a "
        "test-only corruption primitive.",
    ),
    rule(
        "raw-page-constant",
        r"(?<![\w'])4096(?![\w'])|>>\s*12\b|<<\s*12\b"
        r"|0x[Ff]{3}\b|0x1[Ff]{5}\b",
        ["src/base/types.hpp"],
        "Page geometry must come from base/types.hpp (kPageSize, kPageShift, "
        "page_floor/page_index and the PageGran helpers); a hand-rolled 4096, "
        ">> 12 or 0xFFF mask silently hard-codes 4 KiB granularity and "
        "bypasses the multi-granularity translation helpers. A genuine "
        "non-page constant may opt out with a trailing comment containing "
        "lint: allow(raw-page-constant).",
    ),
    rule(
        "notifier-registration",
        r"\b(un)?register_notifier\s*\(",
        [
            "src/sim/page_track.hpp",
            "src/sim/page_track.cpp",
            "src/sim/vcpu.cpp",
            "src/hypervisor/hypervisor.cpp",
            "src/guest/kernel.cpp",
            "src/ooh/trackers.cpp",
        ],
        "Page-track consumers may only (un)register through the subsystems "
        "the registry audit knows about; others corrupt chain-order "
        "guarantees (REG-1/REG-2).",
    ),
]

LINE_COMMENT = re.compile(r"//.*$")

# Per-line escape hatch: a comment containing `lint: allow(rule-name)`
# exempts that line from exactly that rule (the marker lives in the comment,
# which is stripped before pattern matching, so it can never satisfy a rule
# pattern itself).
ALLOW_MARKER = re.compile(r"lint:\s*allow\(([\w-]+)\)")


def strip_comment(line: str) -> str:
    return LINE_COMMENT.sub("", line)


@dataclass
class Report:
    violations: list[str] = field(default_factory=list)

    def add(self, path: Path, lineno: int, r: Rule, text: str) -> None:
        self.violations.append(f"{path}:{lineno}: [{r.name}] {text.strip()}")


def lint_file(path: Path, rel: str, report: Report) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        report.violations.append(f"{path}: unreadable: {err}")
        return
    for lineno, raw in enumerate(lines, start=1):
        line = strip_comment(raw)
        allowed_here = set(ALLOW_MARKER.findall(raw))
        for r in RULES:
            if (r.pattern.search(line) and rel not in r.allowed
                    and r.name not in allowed_here):
                report.add(path, lineno, r, raw)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the tree containing this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r.name}:\n  pattern: {r.pattern.pattern}")
            print("  allowed:", ", ".join(sorted(r.allowed)) or "(nowhere)")
            print(f"  why: {r.why}\n")
        return 0

    src = args.root / "src"
    if not src.is_dir():
        print(f"lint_domain: no src/ under {args.root}", file=sys.stderr)
        return 2

    report = Report()
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".cpp", ".hpp"}:
            continue
        rel = path.relative_to(args.root).as_posix()
        lint_file(path, rel, report)

    if report.violations:
        print(f"lint_domain: {len(report.violations)} violation(s):")
        for v in report.violations:
            print("  " + v)
        print("\nEither route the mutation through an existing sanctioned "
              "mutator, or extend the whitelist in tools/lint_domain.py and "
              "document the new invariant in docs/invariants.md.")
        return 1
    print(f"lint_domain: clean ({len(RULES)} rules over src/)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
