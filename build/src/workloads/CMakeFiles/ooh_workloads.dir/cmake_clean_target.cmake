file(REMOVE_RECURSE
  "libooh_workloads.a"
)
