#include "guest/process.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "guest/kernel.hpp"

namespace ooh::guest {

Gva Process::mmap(u64 bytes, bool data_backed) {
  if (bytes == 0) throw std::invalid_argument("mmap of zero bytes");
  const u64 len = page_ceil(bytes);
  Vma vma;
  vma.start = next_mmap_;
  vma.end = next_mmap_ + len;
  vma.writable = true;
  vma.data_backed = data_backed;
  vmas_.push_back(vma);
  next_mmap_ += len + kPageSize;  // guard page between mappings
  mapped_bytes_ += len;
  return vma.start;
}

void Process::munmap(Gva base) {
  const auto it = std::find_if(vmas_.begin(), vmas_.end(),
                               [base](const Vma& v) { return v.start == base; });
  if (it == vmas_.end()) throw std::invalid_argument("munmap: no VMA at this base");
  sim::GuestPageTable& pt = kernel_.page_table(*this);
  sim::ExecContext& m = kernel_.ctx_of(*this);
  for (Gva page = it->start; page < it->end; page += kPageSize) {
    // Anonymous memory: the guest frame is freed (and later recycled into
    // other mappings), and the hypervisor's stale EPT entry is zapped so
    // the recycled frame starts with fresh accessed/dirty state.
    if (const sim::GuestPageTable::Lookup lu = pt.lookup(page);
        lu.pte != nullptr && lu.pte->present) {
      sim::Ept& ept = kernel_.vm().ept();
      // Punching a 4 KiB hole into a huge EPT region: shatter the covering
      // leaf (1G twice, 2M once) so the per-page unmap below finds a 4 KiB
      // leaf — the demand-split complement of eager splitting.
      for (sim::Ept::Lookup elu = ept.lookup(lu.gpa_page);
           elu.entry != nullptr && elu.entry->present &&
           elu.gran != PageGran::k4K;
           elu = ept.lookup(lu.gpa_page)) {
        ept.split_huge_leaf(lu.gpa_page, elu.gran);
      }
      Hpa hpa = 0;
      if (ept.translate(lu.gpa_page, hpa)) {
        m.pmem.free_frame(page_floor(hpa));
      }
      ept.unmap(lu.gpa_page);
      kernel_.free_gpa_frame(lu.gpa_page);
    }
    pt.unmap(page);
    kernel_.tlb_invalidate_page(*this, page);
    truth_.erase(page);
  }
  m.count(Event::kContextSwitch, 2);  // the munmap syscall
  m.charge_us(2 * m.cost.ctx_switch_us);
  mapped_bytes_ -= it->bytes();
  // Tell page-track consumers the range is gone so they drop derived state
  // (e.g. SPML's GPA->GVA reverse-map cache); mirrors KVM's
  // track_flush_slot on memslot teardown.
  for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
    kernel_.vm().track(cpu).notify_flush(pid_, it->start, it->end);
  }
  vmas_.erase(it);
  vma_mru_ = 0;  // indices shifted
}

Vma* Process::vma_of(Gva gva) noexcept {
  // Accesses cluster heavily within one VMA, so try the last hit first
  // (index-based: push_back may reallocate the vector under a pointer).
  if (vma_mru_ < vmas_.size() && vmas_[vma_mru_].contains(gva)) {
    return &vmas_[vma_mru_];
  }
  for (std::size_t i = 0; i < vmas_.size(); ++i) {
    if (vmas_[i].contains(gva)) {
      vma_mru_ = i;
      return &vmas_[i];
    }
  }
  return nullptr;
}

void Process::write_u64(Gva gva, u64 value) {
  const Hpa hpa = kernel_.access(*this, gva, /*is_write=*/true);
  sim::ExecContext& m = kernel_.ctx_of(*this);
  m.charge_ns(m.cost.workload_write_ns);
  const Vma* vma = vma_of(gva);
  if (vma != nullptr && vma->data_backed) m.pmem.write_u64(hpa, value);
}

u64 Process::read_u64(Gva gva) {
  const Hpa hpa = kernel_.access(*this, gva, /*is_write=*/false);
  sim::ExecContext& m = kernel_.ctx_of(*this);
  m.charge_ns(m.cost.workload_write_ns);
  const Vma* vma = vma_of(gva);
  return (vma != nullptr && vma->data_backed) ? m.pmem.read_u64(hpa) : 0;
}

void Process::touch_write(Gva gva) {
  (void)kernel_.access(*this, gva, /*is_write=*/true);
  sim::ExecContext& m = kernel_.ctx_of(*this);
  m.charge_ns(m.cost.workload_write_ns);
}

void Process::touch_read(Gva gva) {
  (void)kernel_.access(*this, gva, /*is_write=*/false);
  sim::ExecContext& m = kernel_.ctx_of(*this);
  m.charge_ns(m.cost.workload_write_ns);
}

void Process::touch_range(Gva gva, u64 bytes, bool is_write, u64 stride) {
  if (bytes == 0) return;
  if (stride == 0) throw std::invalid_argument("touch_range: zero stride");
  const u64 n = (bytes + stride - 1) / stride;
  kernel_.touch_run(*this, gva, stride, n, is_write);
}

void Process::write_bytes(Gva gva, std::span<const u8> data) {
  // One translation per page chunk (sequential stores share the TLB entry);
  // compute cost scales with the words moved.
  sim::ExecContext& m = kernel_.ctx_of(*this);
  std::size_t off = 0;
  while (off < data.size()) {
    const Gva addr = gva + off;
    const std::size_t chunk =
        std::min<std::size_t>(data.size() - off, kPageSize - page_offset(addr));
    const Hpa hpa = kernel_.access(*this, addr, /*is_write=*/true);
    m.charge_ns(m.cost.workload_bulk_word_ns * static_cast<double>((chunk + 7) / 8));
    const Vma* vma = vma_of(addr);
    if (vma != nullptr && vma->data_backed) {
      std::memcpy(m.pmem.frame_data(page_floor(hpa)) + page_offset(hpa),
                  data.data() + off, chunk);
    }
    off += chunk;
  }
}

void Process::read_bytes(Gva gva, std::span<u8> out) {
  sim::ExecContext& m = kernel_.ctx_of(*this);
  std::size_t off = 0;
  while (off < out.size()) {
    const Gva addr = gva + off;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - off, kPageSize - page_offset(addr));
    const Hpa hpa = kernel_.access(*this, addr, /*is_write=*/false);
    m.charge_ns(m.cost.workload_bulk_word_ns * static_cast<double>((chunk + 7) / 8));
    const Vma* vma = vma_of(addr);
    if (vma != nullptr && vma->data_backed) {
      const u8* src = m.pmem.frame_data_if_present(page_floor(hpa));
      if (src != nullptr) {
        std::memcpy(out.data() + off, src + page_offset(hpa), chunk);
      } else {
        std::memset(out.data() + off, 0, chunk);
      }
    } else {
      std::memset(out.data() + off, 0, chunk);
    }
    off += chunk;
  }
}

}  // namespace ooh::guest
