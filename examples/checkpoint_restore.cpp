// CRIU-style incremental checkpoint/restore of a running key-value store.
//
// A tkrzw-like engine ingests records while the checkpointer takes an
// initial full copy plus periodic incremental pre-dumps driven by EPML
// dirty tracking; at the end the image is restored into a fresh process and
// verified byte-for-byte.
//
//   $ ./checkpoint_restore
#include <cstdio>

#include "base/rng.hpp"
#include "ooh/testbed.hpp"
#include "trackers/criu/checkpoint.hpp"

using namespace ooh;

int main() {
  lib::TestBed bed;
  guest::GuestKernel& kernel = bed.kernel();
  guest::Process& proc = kernel.create_process();

  // A data-backed region standing in for the store's memory: contents are
  // real bytes so the restore can be verified.
  const u64 pages = 128;
  const Gva base = proc.mmap(pages * kPageSize, /*data_backed=*/true);
  Rng rng(2024);
  for (u64 i = 0; i < pages; ++i) proc.write_u64(base + i * kPageSize, rng.next());

  // The "ingest" workload: random record updates across the region.
  const lib::WorkloadFn ingest = [&](guest::Process& p) {
    Rng r(7);
    for (int op = 0; op < 2000; ++op) {
      const u64 page = r.below(pages);
      p.write_u64(base + page * kPageSize + (op % 500) * 8, r.next());
    }
  };

  for (const lib::Technique tech :
       {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
    criu::Checkpointer cp(kernel, tech);
    criu::CheckpointOptions opts;
    opts.precopy_period = msecs(0.2);  // incremental pre-dump rounds
    const criu::CheckpointResult res = cp.checkpoint_during(proc, ingest, opts);

    std::printf("[%s] checkpoint: full copy %llu pages, final dirty %llu, dump ops %llu\n",
                std::string(lib::technique_name(tech)).c_str(),
                static_cast<unsigned long long>(res.full_copy_pages),
                static_cast<unsigned long long>(res.final_dirty_pages),
                static_cast<unsigned long long>(res.image.dump_ops));
    std::printf("   phases: precopy %s | MD %s | MW %s\n",
                format_duration(res.phases.precopy).c_str(),
                format_duration(res.phases.md).c_str(),
                format_duration(res.phases.mw).c_str());

    // Restore into a fresh process and verify every page.
    guest::Process& restored = kernel.create_process();
    criu::restore(restored, res.image);
    u64 mismatches = 0;
    std::vector<u8> a(kPageSize), b(kPageSize);
    for (u64 i = 0; i < pages; ++i) {
      proc.read_bytes(base + i * kPageSize, a);
      restored.read_bytes(base + i * kPageSize, b);
      if (a != b) ++mismatches;
    }
    std::printf("   restore verification: %llu/%llu pages identical%s\n\n",
                static_cast<unsigned long long>(pages - mismatches),
                static_cast<unsigned long long>(pages),
                mismatches == 0 ? " -- OK" : " -- MISMATCH");
  }
  std::printf("Note the phase shapes: /proc folds collection into MW; SPML's MD\n"
              "carries the reverse mapping; EPML's MD is a plain ring read.\n");
  return 0;
}
