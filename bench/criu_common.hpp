// Shared runner for the CRIU experiments (Figs. 7-9): checkpoint one
// application while it runs, under the given technique.
#pragma once

#include "common.hpp"
#include "trackers/criu/checkpoint.hpp"
#include "workloads/registry.hpp"

namespace ooh::bench {

struct CriuRun {
  criu::CheckpointResult res;
  double ideal_us = 0.0;  ///< application completion time, untracked.
};

inline CriuRun run_criu(std::string_view app, wl::ConfigSize size, u64 scale,
                        lib::Technique tech) {
  CriuRun out;
  {
    lib::TestBed bed;
    auto& k = bed.kernel();
    const WorkloadRun wr = prepare_workload(k, app, size, scale);
    out.ideal_us =
        lib::run_baseline(k, *wr.proc, wr.workload->runner()).tracked_time.count();
  }
  lib::TestBed bed;
  auto& k = bed.kernel();
  const WorkloadRun wr = prepare_workload(k, app, size, scale);
  auto& proc = *wr.proc;
  auto& w = wr.workload;
  criu::Checkpointer cp(k, tech);
  criu::CheckpointOptions opts;
  opts.initial_full_copy = true;
  out.res = cp.checkpoint_during(proc, w->runner(), opts);
  return out;
}

/// Fig. 7-9 application set: Phoenix + tkrzw at Large configuration.
inline std::vector<std::pair<std::string_view, wl::ConfigSize>> criu_apps() {
  std::vector<std::pair<std::string_view, wl::ConfigSize>> apps;
  for (const std::string_view a : wl::phoenix_apps()) {
    apps.emplace_back(a, wl::ConfigSize::kLarge);
  }
  for (const std::string_view a : wl::tkrzw_apps()) {
    apps.emplace_back(a, wl::ConfigSize::kLarge);
  }
  return apps;
}

}  // namespace ooh::bench
