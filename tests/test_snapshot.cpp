// Machine snapshot/restore property tests (invariant SNAP-1): a restored
// machine is indistinguishable from the original — byte-identical canonical
// state stream, identical continued execution, and a full coherence audit
// passes over it. Parameterized across the tracker backends x EPT
// granularity configurations so every serialized subsystem (guest PTs in
// both backends, huge leaves, eager-split state, PML/EPML rings, uffd-free
// quiescent state) gets exercised.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "base/rng.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "sim/check/invariant.hpp"
#include "sim/snapshot/machine_image.hpp"

namespace ooh::lib {
namespace {

enum class Gran { k4k, k2m, k2mSplit };

std::string gran_label(Gran g) {
  switch (g) {
    case Gran::k4k: return "4k";
    case Gran::k2m: return "2m";
    case Gran::k2mSplit: return "2m_split";
  }
  return "?";
}

std::string tech_label(Technique t) {
  switch (t) {
    case Technique::kProc: return "proc";
    case Technique::kUfd: return "ufd";
    case Technique::kSpml: return "spml";
    case Technique::kEpml: return "epml";
    case Technique::kWp: return "wp";
    case Technique::kOracle: return "oracle";
  }
  return "?";
}

TestBedOptions bed_options(Gran g) {
  TestBedOptions opts;
  opts.host_mem_bytes = 2 * kGiB;
  opts.vm_mem_bytes = 256 * kMiB;
  opts.ept_huge = g != Gran::k4k;
  opts.eager_split = g == Gran::k2mSplit;
  return opts;
}

/// Drive the bed through a tracked run and leave it quiescent: a realistic
/// mid-experiment machine (faulted translations, dirty flags, ring history,
/// per-vCPU time) at a legal snapshot point.
void advance(TestBed& bed, Technique tech, u64 seed) {
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 96;
  // data-backed so writes materialise frame contents: the round-trip then
  // also covers the CoW frame capture and per-frame digests.
  const Gva base = proc.mmap(pages * kPageSize, /*data_backed=*/true);
  auto tracker = make_tracker(tech, k, proc);
  RunOptions opts;
  opts.collect_period = usecs(200);
  const RunResult r = run_tracked(
      k, proc,
      [=](guest::Process& p) {
        Rng rng(seed);
        for (u64 i = 0; i < pages * 3; ++i) {
          p.touch_write(base + rng.below(pages) * kPageSize);
        }
      },
      tracker.get(), opts);
  tracker->shutdown();
  // Tracker shutdown untracks the process but deliberately leaves the OoH
  // module resident (one module per guest); an epoch boundary additionally
  // requires the module unloaded — part of the quiescence contract.
  k.unload_ooh_module();
  ASSERT_GT(r.truth_pages, 0u);
}

class SnapshotRoundTrip
    : public ::testing::TestWithParam<std::tuple<Technique, Gran>> {};

TEST_P(SnapshotRoundTrip, RestoredStateStreamIsByteIdentical) {
  const auto [tech, gran] = GetParam();
  TestBed bed(bed_options(gran));
  advance(bed, tech, /*seed=*/0x5eed + static_cast<u64>(tech));

  snapshot::MachineSnapshot snap = bed.save();
  EXPECT_GT(snap.stream_bytes(), 0u);

  // Restore in place and re-serialize: the canonical stream (which covers
  // every subsystem, frame digests included) must not change by one byte.
  bed.restore(snap);
  const snapshot::MachineSnapshot again = bed.save();
  ASSERT_EQ(snap.bytes.size(), again.bytes.size());
  EXPECT_TRUE(snap.bytes == again.bytes)
      << tech_label(tech) << "/" << gran_label(gran)
      << ": restored machine serialized differently";

  // SNAP-1 closes with the oracle's word, not just stream equality: the
  // restored machine passes the full cross-layer coherence audit.
  EXPECT_NO_THROW(bed.checker().audit_all());
}

TEST_P(SnapshotRoundTrip, RestoredMachineContinuesIdentically) {
  const auto [tech, gran] = GetParam();
  const u64 seed = 0xabcd + static_cast<u64>(tech);

  TestBed bed(bed_options(gran));
  advance(bed, tech, seed);
  const snapshot::MachineSnapshot boundary = bed.save();

  // Run the same second phase twice from the same boundary: once on the
  // original timeline, once after rewinding. Everything — virtual time,
  // counters, tables, ring history, frame contents — must replay exactly.
  advance(bed, tech, seed ^ 0xff);
  const std::vector<u8> first = bed.state_bytes();

  bed.restore(boundary);
  advance(bed, tech, seed ^ 0xff);
  const std::vector<u8> second = bed.state_bytes();

  EXPECT_TRUE(first == second)
      << tech_label(tech) << "/" << gran_label(gran)
      << ": replay from restored boundary diverged";
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllGrans, SnapshotRoundTrip,
    ::testing::Combine(::testing::Values(Technique::kProc, Technique::kUfd,
                                         Technique::kSpml, Technique::kEpml,
                                         Technique::kWp),
                       ::testing::Values(Gran::k4k, Gran::k2m, Gran::k2mSplit)),
    [](const ::testing::TestParamInfo<SnapshotRoundTrip::ParamType>& info) {
      return tech_label(std::get<0>(info.param)) + "_" +
             gran_label(std::get<1>(info.param));
    });

TEST(Snapshot, SaveRefusesNonQuiescentMachine) {
  TestBed bed(bed_options(Gran::k4k));
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(8 * kPageSize);
  auto tracker = make_tracker(Technique::kEpml, k, proc);
  tracker->init();
  tracker->begin_interval();
  proc.touch_write(base);
  // Mid-session (OoH module loaded, rings armed) is not an epoch boundary.
  EXPECT_THROW((void)bed.save(), std::logic_error);
  tracker->shutdown();
  // Shutdown alone is not quiescent either: the module stays resident.
  EXPECT_THROW((void)bed.save(), std::logic_error);
  k.unload_ooh_module();
  EXPECT_NO_THROW((void)bed.save());
}

TEST(Snapshot, RestoreRejectsStructuralMismatch) {
  TestBed small(bed_options(Gran::k4k));
  TestBedOptions big = bed_options(Gran::k4k);
  big.host_mem_bytes = 4 * kGiB;
  TestBed other(big);
  const snapshot::MachineSnapshot snap = small.save();
  EXPECT_THROW(other.restore(snap), std::runtime_error);
}

TEST(Snapshot, RestoreRejectsCorruptedStream) {
  TestBed bed(bed_options(Gran::k4k));
  advance(bed, Technique::kProc, 7);
  snapshot::MachineSnapshot snap = bed.save();
  snap.bytes.resize(snap.bytes.size() / 2);  // truncation
  EXPECT_THROW(bed.restore(snap), std::runtime_error);
}

// SNAP-1 mutation test: corrupting the restored machine's EPT must not go
// unnoticed — the coherence oracle (not the snapshot code) is the component
// under test here. A restore that silently produced this state would be
// caught the same way.
TEST(Snapshot, CoherenceOracleFlagsCorruptedRestoredEpt) {
  TestBed bed(bed_options(Gran::k4k));
  advance(bed, Technique::kProc, 11);
  const snapshot::MachineSnapshot snap = bed.save();
  bed.restore(snap);

  // Corrupt one EPT leaf behind the oracle's back: point a mapping at an
  // out-of-range HPA, the kind of damage a bad restore would inflict.
  Gpa victim = 0;
  bed.vm().ept().for_each_present([&](Gpa gpa, const sim::EptEntry&) {
    if (victim == 0) victim = gpa;
  });
  ASSERT_NE(victim, 0u) << "no mapped page to corrupt";
  bed.vm().ept().entry(victim)->hpa_page =
      bed.machine().pmem.total_frames() * kPageSize + kPageSize;
  EXPECT_THROW(bed.checker().audit_frames(), check::InvariantViolation);
}

// FRAME-4: materialised frame contents claimed by nothing and shared with
// no snapshot are orphaned bytes; the ownership audit must say so. With a
// live snapshot referencing the machine's frames, the same audit accepts
// the shared-read-only state (CoW pinning is not a leak).
TEST(Snapshot, FrameAuditDistinguishesSharedFromOrphanedBacking) {
  TestBed bed(bed_options(Gran::k4k));
  advance(bed, Technique::kProc, 13);

  // Snapshot pins every backed frame shared-read-only; the audit passes.
  const snapshot::MachineSnapshot snap = bed.save();
  ASSERT_GT(bed.machine().pmem.shared_frames(), 0u);
  EXPECT_NO_THROW(bed.checker().audit_frames());

  // Restored machines hold CoW-installed (shared) frames: still clean.
  bed.restore(snap);
  EXPECT_NO_THROW(bed.checker().audit_frames());

  // Materialise contents for a frame no mapping, PML buffer, or snapshot
  // accounts for: FRAME-4 must fire.
  const Hpa orphan = (bed.machine().pmem.total_frames() - 1) * kPageSize;
  (void)bed.machine().pmem.frame_data(orphan);
  try {
    bed.checker().audit_frames();
    FAIL() << "FRAME-4 did not fire on an orphaned backed frame";
  } catch (const check::InvariantViolation& v) {
    EXPECT_EQ(v.id, "FRAME-4");
  }
}

TEST(Snapshot, SnapshotSharingIsCopyOnWrite) {
  TestBed bed(bed_options(Gran::k4k));
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(4 * kPageSize, /*data_backed=*/true);
  proc.write_u64(base, 0x1111);

  const snapshot::MachineSnapshot snap = bed.save();
  const std::vector<u8> at_save = snap.bytes;

  // Writing after the capture must clone, not mutate, the captured image.
  proc.write_u64(base, 0x2222);
  EXPECT_EQ(proc.read_u64(base), 0x2222u);

  bed.restore(snap);
  // Serialize before touching guest memory: a read charges virtual time and
  // fills the TLB, which would legitimately perturb the stream.
  EXPECT_TRUE(bed.state_bytes() == at_save);
  EXPECT_EQ(proc.read_u64(base), 0x1111u) << "snapshot saw a post-capture write";
}

}  // namespace
}  // namespace ooh::lib
