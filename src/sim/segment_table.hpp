// Range-based guest translation: the segmentation alternative of
// Teabe/Tchana ("Memory virtualization in virtualized systems: segmentation
// is better than paging", PAPERS.md), slotted behind the same Mmu walk seam
// as the radix tables.
//
// A segment maps a contiguous run of GVAs onto a contiguous run of GPAs and
// carries ONE set of PTE flags for the whole run. Translation is a binary
// search instead of a 4-level walk; the price is metadata granularity —
// accessed/dirty/soft-dirty are per-segment, so dirty tracking over this
// backend reports supersets (every page of a touched segment). That
// precision trade is exactly what the kSeg technique measures.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "base/types.hpp"
#include "sim/page_table_entry.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::sim {

struct Segment {
  Gva gva_base = 0;  ///< page-aligned start of the run.
  Gpa gpa_base = 0;  ///< page-aligned GPA the first page maps to.
  u64 pages = 0;     ///< run length in 4 KiB pages.
  Pte pte;           ///< shared flags; pte.gpa_page mirrors gpa_base.

  [[nodiscard]] Gva gva_end() const noexcept { return gva_base + pages * kPageSize; }
  [[nodiscard]] bool covers(Gva gva_page) const noexcept {
    return gva_page >= gva_base && gva_page < gva_end();
  }
  [[nodiscard]] Gpa gpa_of(Gva gva_page) const noexcept {
    return gpa_base + (gva_page - gva_base);
  }
};

class SegmentTable {
 public:
  /// Segment covering `gva_page`, or nullptr. Binary search with an MRU
  /// memo — the segment analogue of the radix walk cache.
  [[nodiscard]] Segment* find(Gva gva_page) noexcept {
    if (mru_ < segs_.size() && segs_[mru_].covers(gva_page)) return &segs_[mru_];
    const auto it = std::upper_bound(
        segs_.begin(), segs_.end(), gva_page,
        [](Gva gva, const Segment& s) { return gva < s.gva_base; });
    if (it == segs_.begin()) return nullptr;
    Segment& s = *std::prev(it);
    if (!s.covers(gva_page)) return nullptr;
    mru_ = static_cast<std::size_t>(&s - segs_.data());
    return &s;
  }
  [[nodiscard]] const Segment* find(Gva gva_page) const noexcept {
    return const_cast<SegmentTable*>(this)->find(gva_page);
  }

  /// Map one page, coalescing with the preceding segment when both address
  /// spaces stay contiguous and the write permission matches (the new page
  /// inherits the run's sticky accessed/dirty metadata — the documented
  /// precision trade).
  void map(Gva gva_page, Gpa gpa_page, bool writable) {
    assert(is_page_aligned(gva_page) && is_page_aligned(gpa_page));
    assert(find(gva_page) == nullptr && "segment overlap");
    const auto it = std::upper_bound(
        segs_.begin(), segs_.end(), gva_page,
        [](Gva gva, const Segment& s) { return gva < s.gva_base; });
    if (it != segs_.begin()) {
      Segment& prev = *std::prev(it);
      if (prev.gva_end() == gva_page && prev.gpa_of(gva_page) == gpa_page &&
          prev.pte.writable == writable) {
        ++prev.pages;
        ++present_pages_;
        return;
      }
    }
    Segment s;
    s.gva_base = gva_page;
    s.gpa_base = gpa_page;
    s.pages = 1;
    s.pte.gpa_page = gpa_page;
    s.pte.present = true;
    s.pte.writable = writable;
    s.pte.user = true;
    mru_ = static_cast<std::size_t>(segs_.insert(it, s) - segs_.begin());
    ++present_pages_;
  }

  /// Unmap one page: shrink an edge or split the run in two (both halves
  /// keep the shared flags).
  void unmap(Gva gva_page) {
    Segment* s = find(gva_page);
    if (s == nullptr) return;
    const auto idx = static_cast<std::size_t>(s - segs_.data());
    --present_pages_;
    mru_ = 0;
    if (s->pages == 1) {
      segs_.erase(segs_.begin() + static_cast<std::ptrdiff_t>(idx));
      return;
    }
    if (gva_page == s->gva_base) {
      s->gva_base += kPageSize;
      s->gpa_base += kPageSize;
      s->pte.gpa_page = s->gpa_base;
      --s->pages;
      return;
    }
    if (gva_page == s->gva_end() - kPageSize) {
      --s->pages;
      return;
    }
    Segment tail = *s;
    tail.gva_base = gva_page + kPageSize;
    tail.gpa_base = s->gpa_of(tail.gva_base);
    tail.pte.gpa_page = tail.gpa_base;
    tail.pages = (s->gva_end() - tail.gva_base) / kPageSize;
    s->pages = (gva_page - s->gva_base) / kPageSize;
    segs_.insert(segs_.begin() + static_cast<std::ptrdiff_t>(idx) + 1, tail);
  }

  [[nodiscard]] u64 present_pages() const noexcept { return present_pages_; }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segs_.size(); }
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept { return segs_; }

  /// Visit each segment as fn(Segment&).
  template <typename Fn>
  void for_each_segment(Fn&& fn) {
    for (Segment& s : segs_) fn(s);
  }

  /// GRAN-1, segment form: sorted, non-overlapping, internally consistent.
  [[nodiscard]] bool coherent() const noexcept {
    Gva prev_end = 0;
    for (const Segment& s : segs_) {
      if (s.pages == 0 || !s.pte.present || s.pte.gpa_page != s.gpa_base) return false;
      if (s.gva_base < prev_end) return false;
      prev_end = s.gva_end();
    }
    return true;
  }

  /// Test-only corruption hook: slide the second segment back into the
  /// first so the GRAN-1 mutation test can prove the oracle notices.
  void debug_overlap_segments() noexcept {
    if (segs_.size() >= 2 && segs_[0].pages > 0) {
      segs_[1].gva_base = segs_[0].gva_end() - kPageSize;
    }
  }

 private:
  friend struct ooh::snapshot::Access;

  std::vector<Segment> segs_;  // sorted by gva_base, non-overlapping
  u64 present_pages_ = 0;
  mutable std::size_t mru_ = 0;
};

}  // namespace ooh::sim
