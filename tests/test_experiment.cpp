// Experiment-driver tests: methodology invariants of §VI-B -- baseline runs
// charge no tracking cost, tracker time shows up on the shared clock,
// overheads order as the paper reports, capture metrics are consistent.
#include <gtest/gtest.h>

#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"

namespace ooh::lib {
namespace {

WorkloadFn writer(Gva base, u64 pages, int passes = 1) {
  return [=](guest::Process& p) {
    for (int r = 0; r < passes; ++r) {
      for (u64 i = 0; i < pages; ++i) p.touch_write(base + i * kPageSize);
    }
  };
}

TEST(Experiment, BaselineHasNoTrackingEvents) {
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(32 * kPageSize);
  const RunResult r = run_baseline(k, proc, writer(base, 32));
  EXPECT_EQ(r.events.get(Event::kPageFaultSoftDirty), 0u);
  EXPECT_EQ(r.events.get(Event::kPageFaultUffd), 0u);
  EXPECT_EQ(r.events.get(Event::kPmlLogGpa), 0u);
  EXPECT_EQ(r.events.get(Event::kHypercall), 0u);
  EXPECT_EQ(r.tracker_time().count(), 0.0);
  EXPECT_EQ(r.truth_pages, 32u);
}

TEST(Experiment, DeterministicAcrossIdenticalRuns) {
  auto once = [] {
    TestBed bed;
    guest::GuestKernel& k = bed.kernel();
    guest::Process& proc = k.create_process();
    const Gva base = proc.mmap(64 * kPageSize);
    auto tracker = make_tracker(Technique::kEpml, k, proc);
    return run_tracked(k, proc, writer(base, 64, 3), tracker.get()).tracked_time.count();
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(Experiment, TrackerTimeInflatesTrackedCompletion) {
  // Formula 3: Tracker and Tracked share the CPU, so tracked_time grows by
  // at least the tracker's in-run time.
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const u64 pages = 512;
  const Gva base = proc.mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);

  const RunResult ideal = run_baseline(k, proc, writer(base, pages, 2));

  auto tracker = make_tracker(Technique::kSpml, k, proc);
  RunOptions opts;
  opts.collect_period = msecs(1);
  opts.final_collect = false;  // only in-run collections inflate the run
  const RunResult tracked = run_tracked(k, proc, writer(base, pages, 2), tracker.get(), opts);
  tracker->shutdown();

  EXPECT_GT(tracked.tracked_time.count(), ideal.tracked_time.count());
  const double in_run_tracker =
      tracked.phases.arm.count() + tracked.phases.collect.count();
  EXPECT_GE(tracked.tracked_time.count(),
            ideal.tracked_time.count() * 0.5 + in_run_tracker)
      << "collection windows must appear on the tracked timeline";
}

TEST(Experiment, OnCollectedDeliversEveryInterval) {
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(128 * kPageSize);
  for (u64 i = 0; i < 128; ++i) proc.touch_write(base + i * kPageSize);

  auto tracker = make_tracker(Technique::kProc, k, proc);
  RunOptions opts;
  opts.collect_period = usecs(30);
  u64 delivered = 0;
  int calls = 0;
  opts.on_collected = [&](const std::vector<Gva>& pages) {
    ++calls;
    delivered += pages.size();
  };
  const RunResult r = run_tracked(k, proc, writer(base, 128, 8), tracker.get(), opts);
  tracker->shutdown();
  EXPECT_GT(calls, 1);
  EXPECT_GE(delivered, r.truth_pages);
}

double warm_tracked_time(std::optional<Technique> t, u64 pages, int passes) {
  // Paper microbench methodology: warm memory, one in-run monitor+collect
  // cycle on the Tracked's timeline (Fig. 1), collection landing late in the
  // run when the dirty set is built up.
  auto run_once = [&](DirtyTracker* tracker, guest::GuestKernel& k,
                      guest::Process& proc, Gva base, VirtDuration period) {
    RunOptions opts;
    opts.collect_period = period;
    opts.max_collections = 1;
    return run_tracked(k, proc, writer(base, pages, passes), tracker, opts)
        .tracked_time;
  };
  auto make_bed = [&](guest::GuestKernel*& k, guest::Process*& proc, Gva& base) {
    auto bed = std::make_unique<TestBed>();
    k = &bed->kernel();
    proc = &k->create_process();
    base = proc->mmap(pages * kPageSize);
    for (u64 i = 0; i < pages; ++i) proc->touch_write(base + i * kPageSize);
    return bed;
  };

  guest::GuestKernel* k = nullptr;
  guest::Process* proc = nullptr;
  Gva base = 0;
  const auto ideal_bed = make_bed(k, proc, base);
  const VirtDuration ideal = run_once(nullptr, *k, *proc, base, VirtDuration{0});
  if (!t) return ideal.count();

  const auto bed = make_bed(k, proc, base);
  auto tracker = make_tracker(*t, *k, *proc);
  const VirtDuration measured = run_once(tracker.get(), *k, *proc, base, ideal * 0.75);
  tracker->shutdown();
  return measured.count();
}

TEST(Experiment, OverheadOrderingSmallMemoryUfdWorst) {
  // Fig. 4: below the ~250MB crossover, userspace fault handling costs more
  // than SPML's reverse mapping, so ufd is the worst technique.
  const u64 pages = (50 * kMiB) / kPageSize;
  const double ideal = warm_tracked_time(std::nullopt, pages, 2);
  const double proc_t = warm_tracked_time(Technique::kProc, pages, 2);
  const double ufd_t = warm_tracked_time(Technique::kUfd, pages, 2);
  const double spml_t = warm_tracked_time(Technique::kSpml, pages, 2);
  const double epml_t = warm_tracked_time(Technique::kEpml, pages, 2);
  const double oracle_t = warm_tracked_time(Technique::kOracle, pages, 2);

  EXPECT_LT(ideal, epml_t);
  EXPECT_LT(epml_t, proc_t);
  EXPECT_LT(proc_t, spml_t);
  EXPECT_LT(spml_t, ufd_t) << "ufd is the worst below the crossover";
  EXPECT_LT(oracle_t, epml_t) << "oracle is the zero-cost bound";
}

TEST(Experiment, OverheadOrderingLargeMemorySpmlWorst) {
  // Fig. 4: past the ~250MB crossover, reverse mapping dominates and SPML
  // becomes the most expensive technique (up to 66x in the paper).
  const u64 pages = (512 * kMiB) / kPageSize;
  const double proc_t = warm_tracked_time(Technique::kProc, pages, 2);
  const double ufd_t = warm_tracked_time(Technique::kUfd, pages, 2);
  const double spml_t = warm_tracked_time(Technique::kSpml, pages, 2);
  const double epml_t = warm_tracked_time(Technique::kEpml, pages, 2);

  EXPECT_LT(epml_t, proc_t);
  EXPECT_LT(proc_t, ufd_t);
  EXPECT_LT(ufd_t, spml_t) << "SPML is the worst above the crossover";
}

TEST(Experiment, CaptureRatioIsOneWhenNothingMissed) {
  TestBed bed;
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(16 * kPageSize);
  auto tracker = make_tracker(Technique::kEpml, k, proc);
  const RunResult r = run_tracked(k, proc, writer(base, 16), tracker.get());
  EXPECT_DOUBLE_EQ(r.capture_ratio(), 1.0);
  tracker->shutdown();
}

TEST(Experiment, QuantumSwitchesReportedAsN) {
  TestBed bed;
  bed.kernel().scheduler().set_quantum(usecs(200));
  guest::GuestKernel& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(1024 * kPageSize);
  const RunResult r = run_baseline(k, proc, writer(base, 1024, 2));
  EXPECT_GT(r.events.get(Event::kSchedQuantum), 0u)
      << "long runs must hit quantum expiries (N of Formula 4)";
  EXPECT_GE(r.ctx_switches, 2 * r.events.get(Event::kSchedQuantum));
}

}  // namespace
}  // namespace ooh::lib
