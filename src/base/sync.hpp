// The synchronisation seam: every piece of cross-thread state in the
// simulator lives behind these wrappers (invariant SYNC-1,
// docs/invariants.md).
//
// In ordinary builds sync::Atomic<T>, sync::Mutex, sync::SpinGuard and
// sync::UniqueLock compile to plain std::atomic / std::mutex /
// std::lock_guard / std::unique_lock — every method is a one-line inline
// forwarder, so Release codegen is identical to using the std types
// directly (the BM_DirtyRingPushPop / BM_DirtyRingConcurrentDrain gbench
// baselines pin this).
//
// Under -DOOH_SCHED_CHECK=ON every load, store, RMW, lock and unlock first
// reports itself — address, kind, declared memory_order — to a per-thread
// instrumentation hook. The deterministic schedule explorer
// (src/sim/check/sched_explorer.hpp) installs that hook on the logical
// threads of a registered scenario, which lets it (a) interleave them at
// every sync operation, (b) model the happens-before graph the *declared*
// orderings build — so a memory_order that is too weak is flagged even
// though the exploring host serialises the threads — and (c) simulate
// mutexes so a blocked logical thread yields to the scheduler instead of
// blocking the OS thread. Threads with no hook installed (everything
// outside an exploration) pay one thread-local pointer test per operation.
//
// The domain lint (tools/lint_domain.py, rule raw-sync-primitive) keeps raw
// std::atomic / std::mutex / std::thread out of src/ except this file and
// the whitelisted thread-spawning call sites, so new concurrent state
// cannot silently bypass the seam.
#pragma once

#include <atomic>
#include <mutex>

namespace ooh::sync {

#ifdef OOH_SCHED_CHECK
namespace detail {

/// Instrumentation interface the schedule explorer implements. Calls happen
/// *before* the underlying operation executes; the explorer may switch
/// logical threads inside the call (token passing), so by the time it
/// returns, the calling thread owns the run token and the operation is the
/// next event in the explored interleaving.
class Hooks {
 public:
  virtual ~Hooks() = default;
  virtual void atomic_load(const void* addr, std::memory_order order) = 0;
  virtual void atomic_store(const void* addr, std::memory_order order) = 0;
  virtual void atomic_rmw(const void* addr, std::memory_order order) = 0;
  /// Non-atomic data that wants race checking (ring slots, spill logs):
  /// annotated via OOH_SYNC_PLAIN_READ / OOH_SYNC_PLAIN_WRITE.
  virtual void plain_access(const void* addr, bool is_write) = 0;
  /// Simulated mutexes. Return true when the hook handled the operation
  /// (the real std::mutex must then NOT be touched: a blocked logical
  /// thread has to yield to the scheduler, not block the OS thread).
  virtual bool mutex_lock(void* mutex_addr) = 0;
  virtual bool mutex_try_lock(void* mutex_addr, bool& acquired) = 0;
  virtual bool mutex_unlock(void* mutex_addr) = 0;
};

inline thread_local Hooks* t_hooks = nullptr;
[[nodiscard]] inline Hooks* current() noexcept { return t_hooks; }
inline void set_current(Hooks* h) noexcept { t_hooks = h; }

}  // namespace detail

#define OOH_SYNC_PLAIN_READ(addr)                                        \
  do {                                                                   \
    if (::ooh::sync::detail::Hooks* ooh_sync_h = ::ooh::sync::detail::current()) \
      ooh_sync_h->plain_access((addr), /*is_write=*/false);              \
  } while (0)
#define OOH_SYNC_PLAIN_WRITE(addr)                                       \
  do {                                                                   \
    if (::ooh::sync::detail::Hooks* ooh_sync_h = ::ooh::sync::detail::current()) \
      ooh_sync_h->plain_access((addr), /*is_write=*/true);               \
  } while (0)

#else  // !OOH_SCHED_CHECK

#define OOH_SYNC_PLAIN_READ(addr) ((void)0)
#define OOH_SYNC_PLAIN_WRITE(addr) ((void)0)

#endif  // OOH_SCHED_CHECK

/// std::atomic<T> with the instrumentation seam. Same operation set the
/// simulator actually uses (extend as needed); same defaults as std.
template <typename T>
class Atomic {
 public:
  constexpr Atomic() noexcept = default;
  constexpr Atomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  [[nodiscard]] T load(std::memory_order order = std::memory_order_seq_cst) const noexcept {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) h->atomic_load(this, order);
#endif
    return v_.load(order);
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) noexcept {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) h->atomic_store(this, order);
#endif
    v_.store(v, order);
  }

  T fetch_add(T d, std::memory_order order = std::memory_order_seq_cst) noexcept {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) h->atomic_rmw(this, order);
#endif
    return v_.fetch_add(d, order);
  }

  T fetch_sub(T d, std::memory_order order = std::memory_order_seq_cst) noexcept {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) h->atomic_rmw(this, order);
#endif
    return v_.fetch_sub(d, order);
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) noexcept {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) h->atomic_rmw(this, order);
#endif
    return v_.exchange(v, order);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order = std::memory_order_seq_cst) noexcept {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) h->atomic_rmw(this, order);
#endif
    return v_.compare_exchange_weak(expected, desired, order);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order = std::memory_order_seq_cst) noexcept {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) h->atomic_rmw(this, order);
#endif
    return v_.compare_exchange_strong(expected, desired, order);
  }

 private:
  std::atomic<T> v_{};
};

/// std::mutex with the instrumentation seam. Under an active explorer hook
/// the real mutex is bypassed entirely and lock ownership is simulated by
/// the scheduler (all logical threads of a scenario are hook-managed, so
/// the two worlds never mix on one Mutex during an exploration).
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) {
      if (h->mutex_lock(this)) return;
    }
#endif
    m_.lock();
  }

  [[nodiscard]] bool try_lock() {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) {
      bool acquired = false;
      if (h->mutex_try_lock(this, acquired)) return acquired;
    }
#endif
    return m_.try_lock();
  }

  void unlock() {
#ifdef OOH_SCHED_CHECK
    if (detail::Hooks* h = detail::current()) {
      if (h->mutex_unlock(this)) return;
    }
#endif
    m_.unlock();
  }

 private:
  std::mutex m_;
};

/// Scoped lock over sync::Mutex — the seam's std::lock_guard.
class SpinGuard {
 public:
  explicit SpinGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~SpinGuard() { m_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Mutex& m_;
};

/// Movable/optional lock over sync::Mutex — the seam's std::unique_lock
/// (Ept::lock_if_concurrent wants the maybe-empty form).
using UniqueLock = std::unique_lock<Mutex>;

}  // namespace ooh::sync
