file(REMOVE_RECURSE
  "../bench/ablation_collect_period"
  "../bench/ablation_collect_period.pdb"
  "CMakeFiles/ablation_collect_period.dir/ablation_collect_period.cpp.o"
  "CMakeFiles/ablation_collect_period.dir/ablation_collect_period.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collect_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
