# Empty dependencies file for fig11_scalability_tracked.
# This may be replaced when dependencies are built.
