#include "sim/ept.hpp"

#include <cassert>

namespace ooh::sim {

void Ept::map(Gpa gpa_page, Hpa hpa_page, bool writable) {
  assert(is_page_aligned(gpa_page) && is_page_aligned(hpa_page));
  const auto lock = lock_if_concurrent();
  EptEntry& e = table_.ensure(gpa_page);
  if (!e.present) ++present_pages_;
  e = EptEntry{};
  e.hpa_page = hpa_page;
  e.present = true;
  e.writable = writable;
}

void Ept::unmap(Gpa gpa_page) {
  const auto lock = lock_if_concurrent();
  EptEntry* e = table_.find(page_floor(gpa_page));
  if (e != nullptr && e->present) {
    *e = EptEntry{};
    --present_pages_;
    // Structural invalidation point, mirroring the EPT-side TLB shootdown.
    table_.invalidate_walk_cache();
  }
}

bool Ept::translate(Gpa gpa, Hpa& out) const noexcept {
  const EptEntry* e = entry(gpa);
  if (e == nullptr || !e->present) return false;
  out = e->hpa_page | page_offset(gpa);
  return true;
}

}  // namespace ooh::sim
