#include "sim/epoch/epoch_pool.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace ooh::epoch {

namespace {

/// xorshift64* over (seed, index): a cheap deterministic stagger amount so
/// determinism tests can permute real-time completion order.
u64 stagger_for(u64 seed, std::size_t index) {
  u64 x = seed ^ (static_cast<u64>(index) + 0x9e3779b97f4a7c15ULL);
  x ^= x >> 12;  // xorshift64* tap, not page geometry -- lint: allow(raw-page-constant)
  x ^= x << 25;
  x ^= x >> 27;
  return (x * 0x2545f4914f6cdd1dULL) >> 56;  // 0..255 yields
}

}  // namespace

unsigned EpochPool::workers_for(std::size_t n, Options opt) {
  unsigned t = opt.threads;
  if (t == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = hw != 0 ? hw : 2;
  }
  return static_cast<unsigned>(std::min<std::size_t>(t, n));
}

void EpochPool::run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                            Options opt) {
  if (n == 0) return;
  const unsigned workers = workers_for(n, opt);
  if (workers <= 1) {
    // Serial inline path: no threads, no atomics touched — byte-identical
    // to the pre-epoch loop, and the default for N=1.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  sync::Atomic<u64> cursor{0};
  sync::Mutex err_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = claim_next(cursor, n);
      if (i >= n) return;
      if (opt.stagger_seed != 0) {
        const u64 yields = stagger_for(opt.stagger_seed, i);
        for (u64 y = 0; y < yields; ++y) std::this_thread::yield();
      }
      try {
        body(i);
      } catch (...) {
        // Lowest-index error wins so the rethrown exception is the one the
        // serial loop would have hit first — error paths stay deterministic
        // too. Workers keep draining; epochs are independent by contract.
        sync::SpinGuard lock(err_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ooh::epoch
