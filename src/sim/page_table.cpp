#include "sim/page_table.hpp"

#include <cassert>

namespace ooh::sim {

void GuestPageTable::map(Gva gva_page, Gpa gpa_page, bool writable) {
  assert(is_page_aligned(gva_page) && is_page_aligned(gpa_page));
  Pte& e = table_.ensure(gva_page);
  if (!e.present) ++present_pages_;
  e = Pte{};
  e.gpa_page = gpa_page;
  e.present = true;
  e.writable = writable;
  e.user = true;
}

void GuestPageTable::unmap(Gva gva_page) {
  Pte* e = table_.find(page_floor(gva_page));
  if (e != nullptr && e->present) {
    *e = Pte{};
    --present_pages_;
    // Structural invalidation point: mirrors the TLB shootdown the unmap
    // path performs (leaves are zeroed in place, so this is discipline, not
    // a dangling-pointer fix — see docs/architecture.md "hot path").
    table_.invalidate_walk_cache();
  }
}

}  // namespace ooh::sim
