// Frame-lifecycle leak tests: run a write-heavy workload under each of the
// six dirty-tracking backends, then tear the tracked process down (tracker
// shutdown + munmap of every VMA) and let the coherence oracle's
// frame-ownership audit prove that every host frame the run allocated is
// either still owned by a live mapping (PML buffers, other tenants) or was
// returned to the allocator — no leaks, no double frees, across all
// backends including the ones that allocate hypervisor-side buffers
// (SPML/EPML) or flip EPT permissions (wp).
#include <gtest/gtest.h>

#include "guest/kernel.hpp"
#include "hypervisor/hypervisor.hpp"
#include "ooh/experiment.hpp"
#include "ooh/tracker.hpp"
#include "sim/check/coherence.hpp"
#include "sim/machine.hpp"

namespace ooh {
namespace {

class FrameLifecycleTest : public ::testing::TestWithParam<lib::Technique> {
 protected:
  FrameLifecycleTest()
      : machine_(256 * kMiB, CostModel::unit()),
        hv_(machine_),
        vm_(hv_.create_vm(64 * kMiB)),
        kernel_(hv_, vm_),
        checker_(machine_, hv_) {
    checker_.attach_kernel(vm_.id(), kernel_);
  }

  sim::Machine machine_;
  hv::Hypervisor hv_;
  hv::Vm& vm_;
  guest::GuestKernel kernel_;
  check::CoherenceChecker checker_;
};

TEST_P(FrameLifecycleTest, TeardownLeavesNoOrphanFrames) {
  const u64 frames_at_start = machine_.pmem.used_frames();

  guest::Process& proc = kernel_.create_process();
  const Gva base = proc.mmap(64 * kPageSize);
  auto tracker = lib::make_tracker(GetParam(), kernel_, proc);
  const lib::RunResult res = lib::run_tracked(
      kernel_, proc,
      [&](guest::Process& p) {
        for (unsigned pass = 0; pass < 3; ++pass) {
          for (u64 i = 0; i < 64; ++i) p.touch_write(base + i * kPageSize);
        }
      },
      tracker.get(), {});
  EXPECT_EQ(res.capture_ratio(), 1.0) << "backend missed dirty pages";

  // Teardown: tracker first (releases WP/uffd registrations, ends PML
  // sessions), then every VMA of the tracked process.
  tracker->shutdown();
  while (!proc.vmas().empty()) proc.munmap(proc.vmas().front().start);
  EXPECT_EQ(proc.mapped_bytes(), 0u);

  // The ownership audit re-derives every owner (EPT mappings + PML
  // buffers) and cross-checks the allocator: a frame freed twice or never
  // freed fails here with FRAME-1/FRAME-2.
  EXPECT_NO_THROW(checker_.audit_frames());
  EXPECT_NO_THROW(checker_.audit_vm(vm_.id()));

  // Everything the workload touched was handed back; only buffers that
  // outlive the process (e.g. a hypervisor PML buffer page) may remain.
  EXPECT_LE(machine_.pmem.used_frames(), frames_at_start + 2);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FrameLifecycleTest,
                         ::testing::Values(lib::Technique::kProc,
                                           lib::Technique::kUfd,
                                           lib::Technique::kSpml,
                                           lib::Technique::kEpml,
                                           lib::Technique::kWp,
                                           lib::Technique::kOracle),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case lib::Technique::kProc: return "proc";
                             case lib::Technique::kUfd: return "ufd";
                             case lib::Technique::kSpml: return "spml";
                             case lib::Technique::kEpml: return "epml";
                             case lib::Technique::kWp: return "wp";
                             case lib::Technique::kOracle: return "oracle";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace ooh
