// Deterministic schedule-exploring race checker for the SMP dirty-ring
// paths — the concurrency twin of the CoherenceChecker.
//
// A TSan run proves one lucky interleaving clean; this explorer proves the
// *schedule space* clean, loom/relacy-style. A registered scenario declares
// a handful of logical threads running the real implementation (DirtyRing
// push/pop, Ept concurrent walks, drained-log appends). The explorer runs
// the scenario over and over, each time forcing a different interleaving:
// every sync-seam operation (src/base/sync.hpp under OOH_SCHED_CHECK) is a
// scheduling point where the explorer decides which logical thread performs
// the next operation. Logical threads are host threads driven by a run
// token — exactly one is ever runnable, so execution is deterministic and
// replayable from the recorded decision sequence.
//
// Exploration = exhaustive DFS over bounded interleavings:
//   * preemption bound (CHESS-style): schedules differ from the
//     nonpreemptive baseline by at most `preemption_bound` involuntary
//     switches. Forced switches (current thread blocked or finished) are
//     free.
//   * DPOR-lite pruning: an operation only branches when its address is
//     already shared (touched by a second thread earlier in the same run)
//     or it is a mutex/await operation or a thread's first step — the
//     prefix-stable approximation of a persistent set. What the pruning
//     misses, the seeded random layer backstops:
//   * `random_runs` seed-replayable random schedules beyond the bound.
//
// Checked properties, reported as Findings by ID:
//   SCHED-RACE      unsynchronized conflicting access pair (RACE-1): plain
//                   accesses whose happens-before is not established by the
//                   *declared* memory orders — modelled with vector clocks
//                   over release/acquire edges, mutexes, fork/join. A
//                   relaxed store where a release is needed is caught here
//                   even though the explorer serialises the host threads.
//                   Freed memory (annotate_free) is a conflicting write to
//                   the whole range, so mid-drain teardown bugs land here.
//   SCHED-LOST      a scenario postcondition failed — e.g. the RING-1
//                   loss-free guarantee: every pushed GPA popped, still
//                   pending, or spilled, in *every* interleaving.
//   SCHED-DEADLOCK  all unfinished logical threads blocked (mutex cycle or
//                   await that can never fire).
//   SCHED-LIVELOCK  a single run exceeded max_steps (unbounded spin).
//
// A failing schedule is minimized greedily (drop preemptions while the
// finding reproduces) and printed in replayable form; Explorer::replay runs
// one exact schedule for debugging.
//
// Builds without OOH_SCHED_CHECK still compile this header and the
// scenarios; explore() then reports available() == false and no findings
// (the sync seam emits no events to schedule on). The sched-check CI job
// and tests/test_sched_explorer.cpp run the instrumented build.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ooh::check::sched {

struct Options {
  /// Max involuntary context switches per schedule in exhaustive mode.
  unsigned preemption_bound = 2;
  /// Hard cap on fully-executed interleavings (DFS + random together).
  std::uint64_t max_interleavings = 20000;
  /// Seed-replayable random schedules run after (or instead of) the DFS.
  std::uint64_t random_runs = 0;
  std::uint64_t seed = 1;
  /// Disable the DFS (scenarios too big to enumerate run random-only).
  bool exhaustive = true;
  /// Per-run step cap; exceeding it is reported as SCHED-LIVELOCK.
  std::uint64_t max_steps = 200000;
  /// Replay budget for schedule minimization (0 disables).
  unsigned minimize_budget = 200;
};

struct Finding {
  std::string id;       ///< SCHED-RACE / SCHED-LOST / SCHED-DEADLOCK / SCHED-LIVELOCK
  std::string message;  ///< what conflicted or which postcondition failed
  /// The (minimized) decision sequence that reproduces it: logical-thread
  /// ids in scheduling order. Feed to Explorer-style replay via
  /// Options/replay_schedule.
  std::vector<unsigned> schedule;
  /// Nonzero when the schedule came from the random layer: the seed alone
  /// reproduces it.
  std::uint64_t seed = 0;
};

struct Result {
  std::vector<Finding> findings;
  std::uint64_t interleavings = 0;    ///< fully executed schedules
  std::uint64_t decision_points = 0;  ///< scheduling decisions taken (all runs)
  bool exhausted_cap = false;         ///< DFS stopped at max_interleavings
  bool instrumented = false;          ///< built with OOH_SCHED_CHECK

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] const Finding* find(const std::string& id) const noexcept {
    for (const Finding& f : findings) {
      if (f.id == id) return &f;
    }
    return nullptr;
  }
};

class ScenarioRun;
using ScenarioBody = std::function<void(ScenarioRun&)>;

/// Handle the scenario body drives. Lifecycle per interleaving: the body is
/// re-invoked from scratch (fresh state!), declares its logical threads via
/// threads(), then asserts postconditions via expect().
class ScenarioRun {
 public:
  virtual ~ScenarioRun() = default;

  /// Run the logical threads to completion under the explored schedule.
  /// Call exactly once per body invocation.
  virtual void threads(std::vector<std::function<void()>> fns) = 0;

  /// Post-run invariant (checked on the controller after threads() joins):
  /// records a Finding with `id` when !ok. Suppressed when the run was
  /// aborted (deadlock/livelock already reported — state is torn).
  virtual void expect(bool ok, const std::string& id, const std::string& message) = 0;
};

/// Inside a logical thread: mark [addr, addr+bytes) as freed. Conflicts
/// with every access another thread may still make to the range unless
/// happens-before orders them — the mid-drain-teardown check. No-op outside
/// an exploration.
void annotate_free(const void* addr, std::size_t bytes);

/// Inside a logical thread: block until `pred` holds. The explorer models
/// this as a wait re-enabled by any atomic store/RMW (condition-variable
/// semantics without spinning through the schedule space). Outside an
/// exploration it spins with std::this_thread::yield.
void await(const std::function<bool()>& pred);

/// True when the build carries sync-seam instrumentation (OOH_SCHED_CHECK).
[[nodiscard]] bool available() noexcept;

/// Explore `body` under `opts`. Thread-compatible: one exploration at a
/// time per process (the seam's hooks are per-thread, but scenarios run
/// real shared state).
Result explore(const std::string& name, const ScenarioBody& body,
               const Options& opts = {});

/// Replay one exact decision sequence (e.g. a Finding::schedule); past the
/// end of `schedule` the run continues nonpreemptively. Returns that single
/// run's findings.
Result replay(const ScenarioBody& body, const std::vector<unsigned>& schedule);

/// "T0x3 T1 T0x2" — compact human-readable schedule form.
[[nodiscard]] std::string format_schedule(const std::vector<unsigned>& schedule);

// ---- registered scenarios ---------------------------------------------------

struct NamedScenario {
  std::string name;
  ScenarioBody body;
  Options opts;
};

/// The built-in concurrency scenarios over the real SMP dirty-ring paths:
/// ring_push_pop, storm_4x4, drain_during_shootdown,
/// eager_split_under_drain, mid_drain_teardown.
[[nodiscard]] const std::vector<NamedScenario>& builtin_scenarios();

/// Run one built-in scenario by name; throws std::invalid_argument on an
/// unknown name.
Result run_builtin(const std::string& name);

}  // namespace ooh::check::sched
