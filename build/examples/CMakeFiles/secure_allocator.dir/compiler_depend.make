# Empty compiler generated dependencies file for secure_allocator.
# This may be replaced when dependencies are built.
