// FaultInjector: the per-vCPU runtime that executes a FaultPlan.
//
// One injector is owned per tenant/vCPU timeline (TestBed plumbs it into the
// ExecContext), so all of its state mutates from exactly one host thread and
// determinism falls out of the arrival-count keying: the Nth arrival at a
// point is the same event in every replay of the same workload + plan.
//
// The injector itself charges zero virtual time and touches no counters —
// call sites observe its verdicts through ExecContext::fault_fire /
// fault_gate_self_ipi, which do the (whitelisted) counter accounting. After
// machine state settles from an injected fault, call sites run
// ExecContext::fault_audit() so the CoherenceChecker validates every
// invariant right at the blast site (FAULT-2 in docs/invariants.md).
#pragma once

#include <array>
#include <functional>

#include "base/types.hpp"
#include "sim/fault/fault_plan.hpp"

namespace ooh::sim::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Record one arrival at `point`; true when a rule says this arrival
  /// faults. `last_arg()` then holds the firing rule's payload.
  [[nodiscard]] bool fire(FaultPoint point);

  /// Self-IPI delivery gate, with the bounded-retry redelivery model: a
  /// firing kSelfIpiSuppress rule opens a drop window of `arg` encounters
  /// (clamped to [1, kMaxIpiDrops]); every buffer-full encounter inside the
  /// window is dropped, and the first one after it is the redelivery. The
  /// bound guarantees a guest that keeps writing always gets its IPI back.
  struct IpiGate {
    bool deliver = true;  ///< false: drop this IPI (caller counts the loss).
    bool fired = false;   ///< true: this call opened a new drop window.
  };
  [[nodiscard]] IpiGate gate_self_ipi();

  /// Tracker fell back to a weaker technique because of an injected fault.
  void note_degradation() noexcept { ++degradations_; }

  /// Post-fault audit hook (TestBed wires CoherenceChecker::audit_vm here).
  void set_post_fault_hook(std::function<void()> hook) { hook_ = std::move(hook); }
  void run_post_fault_hook() {
    if (hook_) hook_();
  }

  // ---- introspection (tests / reports) ----------------------------------
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] u64 arrivals(FaultPoint p) const noexcept {
    return arrivals_[idx(p)];
  }
  [[nodiscard]] u64 fired(FaultPoint p) const noexcept { return fired_[idx(p)]; }
  [[nodiscard]] u64 total_fired() const noexcept;
  [[nodiscard]] u64 last_arg() const noexcept { return last_arg_; }
  [[nodiscard]] u64 ipis_suppressed() const noexcept { return ipis_suppressed_; }
  [[nodiscard]] u64 ipis_redelivered() const noexcept { return ipis_redelivered_; }
  [[nodiscard]] u64 degradations() const noexcept { return degradations_; }

  static constexpr u64 kMaxIpiDrops = 64;

 private:
  static constexpr std::size_t idx(FaultPoint p) noexcept {
    return static_cast<std::size_t>(p);
  }

  FaultPlan plan_;
  std::array<u64, kFaultPointCount> arrivals_{};
  std::array<u64, kFaultPointCount> fired_{};
  std::vector<u64> per_rule_fired_;  // parallel to plan_.rules()
  u64 last_arg_ = 0;
  u64 ipi_drops_remaining_ = 0;
  u64 ipis_suppressed_ = 0;
  u64 ipis_redelivered_ = 0;
  u64 degradations_ = 0;
  bool ipi_window_open_ = false;  ///< a drop window ran dry; next encounter redelivers.
  std::function<void()> hook_;
};

}  // namespace ooh::sim::fault
