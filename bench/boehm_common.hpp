// Shared runner for the Boehm GC experiments (Figs. 5, 6, 10, 11): run one
// application with the GC attached, collections driven by the given dirty
// tracking technique, all inside one tenant VM of a TestBed.
#pragma once

#include <chrono>

#include "common.hpp"
#include "trackers/boehmgc/gc.hpp"
#include "workloads/registry.hpp"

namespace ooh::bench {

struct BoehmRun {
  double app_time_us = 0.0;        ///< Tracked completion time, GC included.
  double gc_total_us = 0.0;        ///< sum of all collection pauses.
  double gc_first_cycle_us = 0.0;  ///< the cycle where SPML reverse-maps.
  double gc_later_avg_us = 0.0;    ///< mean pause of cycles 2..n.
  unsigned cycles = 0;
};

inline BoehmRun run_boehm_in(guest::GuestKernel& k, std::string_view app,
                             wl::ConfigSize size, u64 scale, lib::Technique tech) {
  guest::Process& proc = k.create_process();
  auto w = wl::make_workload(app, size, scale);
  // Heap sized to the (scaled) workload; threshold tuned so runs perform
  // several collection cycles, as the paper's apps do (2..23 cycles, §VI-E).
  const u64 heap_bytes = std::max<u64>(w->footprint_bytes() * 2, 16 * kMiB);
  const u64 threshold = std::clamp<u64>(w->footprint_bytes() / 8, 256 * 1024, 4 * kMiB);
  gc::GcHeap heap(k, proc, heap_bytes, threshold);
  heap.set_technique(tech);
  heap.prepare_tracker();  // startup-time init, outside any cycle's pause
  w->attach_gc(&heap);
  w->setup(proc);

  sim::ExecContext& m = k.ctx();
  const VirtDuration start = m.clock.now();
  k.scheduler().enter_process(proc.pid());
  w->run(proc);
  // Final collection, as Boehm performs at least one full cycle per run.
  (void)heap.collect();
  k.scheduler().exit_process(proc.pid());

  BoehmRun out;
  out.app_time_us = (m.clock.now() - start).count();
  const gc::GcStats& stats = heap.stats();
  out.cycles = stats.cycle_count();
  out.gc_total_us = stats.total_gc_time.count();
  if (!stats.cycles.empty()) {
    out.gc_first_cycle_us = stats.cycles.front().duration.count();
    double later = 0.0;
    for (std::size_t i = 1; i < stats.cycles.size(); ++i) {
      later += stats.cycles[i].duration.count();
    }
    out.gc_later_avg_us =
        stats.cycles.size() > 1 ? later / static_cast<double>(stats.cycles.size() - 1) : 0.0;
  }
  return out;
}

inline BoehmRun run_boehm(std::string_view app, wl::ConfigSize size, u64 scale,
                          lib::Technique tech) {
  lib::TestBed bed;
  return run_boehm_in(bed.kernel(), app, size, scale, tech);
}

/// One scalability-study configuration (Figs. 10-11): `vms` tenant VMs each
/// running the same Boehm+histogram workload, timelines executed by the
/// TestBed worker pool. Per-VM virtual-time results are independent of
/// `workers` (bit-identical serial vs. parallel); only the host wall clock
/// changes.
struct FleetResult {
  std::vector<BoehmRun> runs;  ///< indexed by VM.
  double wall_ms = 0.0;        ///< host wall-clock for the whole fleet.
};

inline FleetResult run_boehm_fleet(unsigned vms, u64 scale, lib::Technique tech,
                                   unsigned workers,
                                   GranMode gran = GranMode::k4K) {
  lib::TestBedOptions opts;
  opts.tenant_vms = vms;
  apply_gran(opts, gran);
  lib::TestBed bed(opts);
  FleetResult out;
  out.runs.resize(vms);
  const auto start = std::chrono::steady_clock::now();
  bed.run_tenants(
      [&](unsigned i) {
        out.runs[i] = run_boehm_in(bed.kernel(i), "histogram", wl::ConfigSize::kLarge,
                                   scale, tech);
        // Per-VM coherence audit from the worker thread itself (audit builds
        // only): tenants audit concurrently, the global frame pass runs
        // after the pool joins inside run_tenants().
        bed.hypervisor().audit_now(bed.vm(i).id());
      },
      workers);
  out.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace ooh::bench
