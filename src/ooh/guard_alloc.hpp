// Overflow-detecting heap allocators (paper §III-D).
//
// Secure allocators place inaccessible guards after allocations so buffer
// overflows trap synchronously. The classic design burns a whole 4KiB guard
// page per allocation; OoH-SPP replaces it with a 128-byte guard sub-page,
// cutting guard memory by the paper's projected factor of 32.
//
//   PageGuardAllocator    -- guard page after every allocation (baseline).
//   SubPageGuardAllocator -- 128B SPP guard redzone after every allocation.
//
// Both detect an overflowing store at the first out-of-bounds byte: the
// page variant via an unmapped-page segfault, the sub-page variant via an
// SPP-violation delivered to the allocator's handler.
#pragma once

#include "base/types.hpp"
#include "guest/kernel.hpp"
#include "guest/process.hpp"

namespace ooh::lib {

struct GuardStats {
  u64 allocations = 0;
  u64 payload_bytes = 0;   ///< bytes the application asked for.
  u64 guard_bytes = 0;     ///< memory spent on guards.
  u64 padding_bytes = 0;   ///< alignment padding around payloads.
  u64 overflows_detected = 0;

  /// Guard memory per payload byte -- the §III-D waste metric.
  [[nodiscard]] double guard_overhead() const noexcept {
    return payload_bytes == 0
               ? 0.0
               : static_cast<double>(guard_bytes) / static_cast<double>(payload_bytes);
  }
  [[nodiscard]] u64 total_bytes() const noexcept {
    return payload_bytes + guard_bytes + padding_bytes;
  }
};

class GuardedAllocator {
 public:
  GuardedAllocator(guest::GuestKernel& kernel, guest::Process& proc)
      : kernel_(kernel), proc_(proc) {}
  virtual ~GuardedAllocator() = default;

  GuardedAllocator(const GuardedAllocator&) = delete;
  GuardedAllocator& operator=(const GuardedAllocator&) = delete;

  /// Allocate `bytes` with a trailing guard; returns the payload address.
  [[nodiscard]] virtual Gva alloc(u64 bytes) = 0;

  [[nodiscard]] const GuardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] guest::Process& process() noexcept { return proc_; }

 protected:
  guest::GuestKernel& kernel_;
  guest::Process& proc_;
  GuardStats stats_;
};

/// Baseline: each allocation gets its own mapping, page-rounded, followed by
/// an unmapped guard page. An overflowing store faults with no mapping.
class PageGuardAllocator final : public GuardedAllocator {
 public:
  using GuardedAllocator::GuardedAllocator;
  [[nodiscard]] Gva alloc(u64 bytes) override;
};

/// OoH-SPP: allocations bump through shared data pages at 128-byte
/// alignment; the sub-page after each payload is write-protected through
/// the kOohSppProtect hypercall. An overflowing store raises an SPP
/// violation, which the allocator's kernel handler records and kills.
class SubPageGuardAllocator final : public GuardedAllocator {
 public:
  SubPageGuardAllocator(guest::GuestKernel& kernel, guest::Process& proc,
                        u64 arena_bytes = 16 * kMiB);
  ~SubPageGuardAllocator() override;

  [[nodiscard]] Gva alloc(u64 bytes) override;

 private:
  /// Clear the write bit of the guard sub-page containing `addr`.
  void protect_guard(Gva addr);

  Gva arena_ = 0;
  u64 arena_bytes_ = 0;
  u64 bump_ = 0;
};

}  // namespace ooh::lib
