#include "trackers/boehmgc/gc.hpp"

#include <new>
#include <stdexcept>

#include "base/clock.hpp"

namespace ooh::gc {
namespace {

constexpr u64 kHeaderBytes = 16;
constexpr u64 kAlign = 16;

[[nodiscard]] constexpr u64 align_up(u64 v) noexcept { return (v + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

GcHeap::GcHeap(guest::GuestKernel& kernel, guest::Process& proc, u64 heap_bytes,
               u64 gc_threshold_bytes)
    : kernel_(kernel), proc_(proc), gc_threshold_(gc_threshold_bytes) {
  heap_base_ = proc_.mmap(heap_bytes);
  heap_end_ = heap_base_ + page_ceil(heap_bytes);
  bump_ = heap_base_;
}

GcHeap::~GcHeap() {
  if (tracker_) tracker_->shutdown();
}

void GcHeap::prepare_tracker() {
  if (!tracker_) {
    tracker_ = lib::make_tracker(technique_, kernel_, proc_);
    tracker_->init();
    tracker_->begin_interval();
  }
}

GcHeap::Object& GcHeap::obj(Gva addr) {
  const auto it = objects_.find(addr);
  if (it == objects_.end()) throw std::invalid_argument("not a live GC object");
  return it->second;
}

Gva GcHeap::alloc(unsigned ref_slots, u64 data_bytes) {
  maybe_collect();
  const u64 size = align_up(kHeaderBytes + 8 * ref_slots + data_bytes);

  Gva addr = 0;
  if (auto it = free_lists_.find(size); it != free_lists_.end() && !it->second.empty()) {
    addr = it->second.back();
    it->second.pop_back();
  } else {
    if (bump_ + size > heap_end_) {
      collect();  // emergency full attempt before giving up
      if (auto it2 = free_lists_.find(size);
          it2 != free_lists_.end() && !it2->second.empty()) {
        addr = it2->second.back();
        it2->second.pop_back();
      } else {
        throw std::bad_alloc{};
      }
    } else {
      addr = bump_;
      bump_ += size;
    }
  }

  // Header store: makes allocation itself dirty the page, which is how new
  // objects become visible to the incremental marker.
  proc_.write_u64(addr, size);

  Object o;
  o.size = size;
  o.refs.assign(ref_slots, 0);
  objects_.emplace(addr, std::move(o));
  for (u64 page = page_floor(addr); page < addr + size; page += kPageSize) {
    page_objects_[page].insert(addr);
  }
  allocated_since_gc_ += size;
  live_bytes_ += size;
  stats_.total_allocated_bytes += size;
  return addr;
}

void GcHeap::add_root(Gva o) {
  (void)obj(o);
  roots_.insert(o);
}

void GcHeap::remove_root(Gva o) {
  roots_.erase(o);
}

void GcHeap::write_ref(Gva o, unsigned slot, Gva target) {
  Object& object = obj(o);
  if (slot >= object.refs.size()) throw std::out_of_range("ref slot");
  if (target != 0) (void)obj(target);
  object.refs[slot] = target;
  // The pointer store is what the dirty-page techniques must observe.
  proc_.write_u64(o + kHeaderBytes + 8 * slot, target);
}

Gva GcHeap::read_ref(Gva o, unsigned slot) {
  Object& object = obj(o);
  if (slot >= object.refs.size()) throw std::out_of_range("ref slot");
  proc_.touch_read(o + kHeaderBytes + 8 * slot);
  return object.refs[slot];
}

void GcHeap::write_data(Gva o, u64 offset, u64 value) {
  Object& object = obj(o);
  const u64 base = kHeaderBytes + 8 * object.refs.size();
  if (base + offset + 8 > object.size) throw std::out_of_range("data offset");
  proc_.write_u64(o + base + offset, value);
}

void GcHeap::maybe_collect() {
  if (allocated_since_gc_ >= gc_threshold_) collect();
}

std::vector<Gva> GcHeap::acquire_dirty_pages(GcCycleStats& st) {
  sim::ExecContext& m = kernel_.ctx();
  VirtualClock::Scope s(m.clock, st.dirty_query);
  std::vector<Gva> dirty = tracker_->collect();
  tracker_->begin_interval();
  return dirty;
}

GcCycleStats GcHeap::collect() {
  sim::ExecContext& m = kernel_.ctx();
  GcCycleStats st;
  st.cycle = static_cast<unsigned>(stats_.cycles.size()) + 1;
  const VirtDuration start = m.clock.now();
  m.count(Event::kGcCycle);

  prepare_tracker();

  // ---- mark ------------------------------------------------------------------
  // Reachability is exact (host-side traversal of the current reference
  // graph). The technique determines the *cost*: a full cycle scans every
  // reachable object; an incremental cycle pays the dirty-page query plus a
  // re-scan of only the objects on dirtied pages (Boehm's mark phase).
  u64 objects_scanned = 0;
  if (!first_cycle_done_) {
    st.full = true;
    // Flush this cycle's dirty info so the next cycle starts a fresh interval.
    (void)acquire_dirty_pages(st);
  } else {
    const std::vector<Gva> dirty = acquire_dirty_pages(st);
    for (const Gva page : dirty) {
      if (const auto it = page_objects_.find(page); it != page_objects_.end()) {
        ++st.pages_rescanned;
        objects_scanned += it->second.size();
      }
    }
    objects_scanned += roots_.size();
  }

  reachable_.clear();
  frontier_.clear();
  for (const Gva root : roots_) {
    reachable_.insert(root);
    frontier_.push_back(root);
  }
  for (const Gva local : locals_) {
    if (local != 0 && reachable_.insert(local)) frontier_.push_back(local);
  }
  for (std::size_t head = 0; head < frontier_.size(); ++head) {
    for (const Gva ref : objects_.at(frontier_[head]).refs) {
      if (ref != 0 && reachable_.insert(ref)) frontier_.push_back(ref);
    }
  }
  if (st.full) objects_scanned = reachable_.size();
  st.objects_marked = objects_scanned;
  m.charge_ns(scan_ns_per_object_ * static_cast<double>(objects_scanned));

  // ---- sweep -----------------------------------------------------------------
  to_free_.clear();
  for (const auto& [addr, object] : objects_) {
    if (!reachable_.contains(addr)) to_free_.push_back(addr);
  }
  m.charge_ns(10.0 * static_cast<double>(objects_.size()));  // block sweep
  for (const Gva addr : to_free_) {
    const auto it = objects_.find(addr);
    const u64 size = it->second.size;
    for (u64 page = page_floor(addr); page < addr + size; page += kPageSize) {
      if (const auto pit = page_objects_.find(page); pit != page_objects_.end()) {
        pit->second.erase(addr);
        if (pit->second.empty()) page_objects_.erase(pit);
      }
    }
    free_lists_[size].push_back(addr);
    live_bytes_ -= size;
    ++st.objects_freed;
    st.bytes_freed += size;
    objects_.erase(it);
  }

  first_cycle_done_ = true;
  allocated_since_gc_ = 0;
  st.duration = m.clock.now() - start;
  stats_.total_gc_time += st.duration;
  stats_.cycles.push_back(st);
  return st;
}

}  // namespace ooh::gc
