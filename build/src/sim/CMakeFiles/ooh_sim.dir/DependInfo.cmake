
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ept.cpp" "src/sim/CMakeFiles/ooh_sim.dir/ept.cpp.o" "gcc" "src/sim/CMakeFiles/ooh_sim.dir/ept.cpp.o.d"
  "/root/repo/src/sim/mmu.cpp" "src/sim/CMakeFiles/ooh_sim.dir/mmu.cpp.o" "gcc" "src/sim/CMakeFiles/ooh_sim.dir/mmu.cpp.o.d"
  "/root/repo/src/sim/page_table.cpp" "src/sim/CMakeFiles/ooh_sim.dir/page_table.cpp.o" "gcc" "src/sim/CMakeFiles/ooh_sim.dir/page_table.cpp.o.d"
  "/root/repo/src/sim/phys_mem.cpp" "src/sim/CMakeFiles/ooh_sim.dir/phys_mem.cpp.o" "gcc" "src/sim/CMakeFiles/ooh_sim.dir/phys_mem.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/sim/CMakeFiles/ooh_sim.dir/tlb.cpp.o" "gcc" "src/sim/CMakeFiles/ooh_sim.dir/tlb.cpp.o.d"
  "/root/repo/src/sim/vcpu.cpp" "src/sim/CMakeFiles/ooh_sim.dir/vcpu.cpp.o" "gcc" "src/sim/CMakeFiles/ooh_sim.dir/vcpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ooh_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
