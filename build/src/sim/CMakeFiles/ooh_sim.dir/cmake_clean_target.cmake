file(REMOVE_RECURSE
  "libooh_sim.a"
)
