file(REMOVE_RECURSE
  "CMakeFiles/run_app.dir/run_app.cpp.o"
  "CMakeFiles/run_app.dir/run_app.cpp.o.d"
  "run_app"
  "run_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
