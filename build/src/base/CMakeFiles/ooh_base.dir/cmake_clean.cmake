file(REMOVE_RECURSE
  "CMakeFiles/ooh_base.dir/cost_model.cpp.o"
  "CMakeFiles/ooh_base.dir/cost_model.cpp.o.d"
  "CMakeFiles/ooh_base.dir/counters.cpp.o"
  "CMakeFiles/ooh_base.dir/counters.cpp.o.d"
  "CMakeFiles/ooh_base.dir/interp.cpp.o"
  "CMakeFiles/ooh_base.dir/interp.cpp.o.d"
  "CMakeFiles/ooh_base.dir/stats.cpp.o"
  "CMakeFiles/ooh_base.dir/stats.cpp.o.d"
  "CMakeFiles/ooh_base.dir/table.cpp.o"
  "CMakeFiles/ooh_base.dir/table.cpp.o.d"
  "CMakeFiles/ooh_base.dir/vtime.cpp.o"
  "CMakeFiles/ooh_base.dir/vtime.cpp.o.d"
  "libooh_base.a"
  "libooh_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooh_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
