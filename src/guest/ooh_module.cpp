#include "guest/ooh_module.hpp"

#include <new>
#include <stdexcept>

#include "hypervisor/hypervisor.hpp"

namespace ooh::guest {

OohModule::OohModule(GuestKernel& kernel, OohMode mode)
    : kernel_(kernel), mode_(mode), cpus_(kernel.vcpu_count()) {
  for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
    kernel_.scheduler(cpu).add_hook(this);
  }
}

OohModule::~OohModule() {
  // Untrack everything, then tear the design down.
  while (!tracked_.empty()) {
    Process* p = tracked_.begin()->second.proc;
    untrack(*p);
  }
  for (unsigned cpu = 0; cpu < cpus_.size(); ++cpu) {
    if (cpus_[cpu].epml_init) {
      // Safety net for an EPML session with no surviving tracked process (a
      // track() that failed after the init hypercall): the shadow-VMCS state
      // must not outlive the module on any vCPU.
      kernel_.vm().vcpu(cpu).hypercall(sim::Hypercall::kOohDeactivateEpml);
      cpus_[cpu].epml_init = false;
    }
  }
  for (unsigned cpu = 0; cpu < kernel_.vcpu_count(); ++cpu) {
    kernel_.scheduler(cpu).remove_hook(this);
  }
}

bool OohModule::tracking(const Process& proc) const {
  return tracked_.contains(proc.pid());
}

OohModule::Tracked* OohModule::active_tracked(unsigned cpu) noexcept {
  const u32 pid = cpus_[cpu].active_pid;
  if (pid == 0) return nullptr;
  const auto it = tracked_.find(pid);
  return it == tracked_.end() ? nullptr : &it->second;
}

void OohModule::track(Process& proc) {
  if (tracking(proc)) throw std::logic_error("process already tracked");
  const unsigned cpu = proc.cpu();
  sim::ExecContext& m = kernel_.ctx_of(proc);
  sim::Vcpu& vcpu = kernel_.vcpu_of(proc);

  // The userspace ioctl into the module (Table V metric M3).
  m.count(Event::kContextSwitch, 2);
  m.charge_us(m.cost.ioctl_init_pml_us + 2 * m.cost.ctx_switch_us);

  Tracked t;
  t.proc = &proc;
  t.ring = std::make_unique<RingBuffer>(ring_entries_);

  if (mode_ == OohMode::kSpml) {
    // SPML init hypercall (M9): PML buffer setup + EPT dirty-state reset.
    // The hypervisor reports allocation failure instead of dying half-set-up;
    // surface it as the OOM it is so the tracker layer can degrade.
    const u64 rc = vcpu.hypercall(sim::Hypercall::kOohInitPml, proc.mapped_bytes());
    if (rc == ~u64{0}) throw std::bad_alloc{};
  } else {
    if (!cpus_[cpu].epml_init) {
      // The only hypercall EPML ever makes (M10): VMCS shadowing + the new
      // guest PML VMCS fields — per-vCPU hardware state, armed on the vCPU
      // this process runs on.
      vcpu.hypercall(sim::Hypercall::kOohInitEpml);
      cpus_[cpu].epml_init = true;
    }
    // Guest-level PML buffer: a guest-physical page the module owns. It must
    // be EPT-mapped so the EPML vmwrite can translate it. If either step
    // fails (guest OOM), roll the half-done init back — leaving VMCS
    // shadowing armed with no tracked process would leak the EPML session.
    try {
      t.guest_buf_gpa = kernel_.alloc_gpa_frame(m);
      kernel_.ensure_ept_mapped(t.guest_buf_gpa, cpu);
    } catch (...) {
      if (t.guest_buf_gpa != 0) kernel_.free_gpa_frame(t.guest_buf_gpa);
      if (tracked_.empty() && cpus_[cpu].epml_init) {
        vcpu.hypercall(sim::Hypercall::kOohDeactivateEpml);
        cpus_[cpu].epml_init = false;
      }
      throw;
    }
    // Reset guest dirty flags so the first interval logs pre-dirtied pages.
    u64 cleared = 0;
    kernel_.page_table(proc).for_each_present([&](Gva, sim::Pte& pte) {
      if (pte.dirty) {
        pte.dirty = false;
        ++cleared;
      }
    });
    m.charge_ns(m.cost.dbit_clear_ns * static_cast<double>(cleared));
    kernel_.tlb_flush_pid(proc);
    m.count(Event::kTlbFlush);
    m.charge_us(m.cost.tlb_flush_us);
  }
  tracked_.emplace(proc.pid(), std::move(t));
}

void OohModule::untrack(Process& proc) {
  const auto it = tracked_.find(proc.pid());
  if (it == tracked_.end()) throw std::logic_error("process not tracked");
  const unsigned cpu = proc.cpu();
  sim::ExecContext& m = kernel_.ctx_of(proc);
  sim::Vcpu& vcpu = kernel_.vcpu_of(proc);

  if (cpus_[cpu].active_pid == proc.pid()) on_schedule_out(proc.pid());

  m.count(Event::kContextSwitch, 2);
  m.charge_us(m.cost.ioctl_deactivate_pml_us + 2 * m.cost.ctx_switch_us);

  tracked_.erase(it);
  if (mode_ == OohMode::kSpml) {
    vcpu.hypercall(sim::Hypercall::kOohDeactivatePml);
  } else if (tracked_.empty()) {
    for (unsigned c = 0; c < cpus_.size(); ++c) {
      if (cpus_[c].epml_init) {
        kernel_.vm().vcpu(c).hypercall(sim::Hypercall::kOohDeactivateEpml);
        cpus_[c].epml_init = false;
      }
    }
  }
}

void OohModule::on_schedule_in(u32 pid) {
  const auto it = tracked_.find(pid);
  if (it == tracked_.end()) return;
  const unsigned cpu = it->second.proc->cpu();
  cpus_[cpu].active_pid = pid;
  sim::Vcpu& vcpu = kernel_.vm().vcpu(cpu);
  if (mode_ == OohMode::kSpml) {
    vcpu.hypercall(sim::Hypercall::kOohEnableLogging);
  } else {
    // Point the hardware at this process's buffer and arm logging, all with
    // guest-mode vmwrites on the shadow VMCS -- no VM-exit (§IV-D).
    vcpu.guest_vmwrite(sim::VmcsField::kGuestPmlAddress, it->second.guest_buf_gpa);
    vcpu.guest_vmwrite(sim::VmcsField::kGuestPmlEnable, 1);
  }
}

void OohModule::on_schedule_out(u32 pid) {
  const auto it = tracked_.find(pid);
  if (it == tracked_.end()) return;
  Tracked& t = it->second;
  const unsigned cpu = t.proc->cpu();
  sim::ExecContext& m = kernel_.ctx_of(*t.proc);
  sim::Vcpu& vcpu = kernel_.vm().vcpu(cpu);
  if (mode_ == OohMode::kSpml) {
    // disable_logging flushes the in-flight PML buffer into the shared ring
    // (M14); the module then moves the GPAs into this process's private ring
    // (the per-process isolation fix of §V).
    vcpu.hypercall(sim::Hypercall::kOohDisableLogging, t.proc->mapped_bytes());
    RingBuffer& shared = kernel_.vm().spml_ring(cpu);
    u64 v = 0;
    while (shared.pop(v)) {
      t.ring->push(v);
      m.charge_ns(m.cost.drain_entry_ns);
    }
  } else {
    epml_drain_guest_buffer(t, cpu);
    vcpu.guest_vmwrite(sim::VmcsField::kGuestPmlEnable, 0);
  }
  cpus_[cpu].active_pid = 0;
}

void OohModule::epml_drain_guest_buffer(Tracked& t, unsigned cpu) {
  sim::ExecContext& m = kernel_.ctx_of(*t.proc);
  sim::Vcpu& vcpu = kernel_.vm().vcpu(cpu);
  const u16 idx = static_cast<u16>(vcpu.guest_vmread(sim::VmcsField::kGuestPmlIndex));
  const u64 count =
      idx > kPmlIndexStart ? kPmlBufferEntries : static_cast<u64>(kPmlIndexStart - idx);
  if (count == 0) return;

  Hpa buf_hpa = 0;
  if (!kernel_.vm().ept().translate(t.guest_buf_gpa, buf_hpa)) {
    throw std::logic_error("EPML guest buffer lost its EPT mapping");
  }
  // Reentrancy guard: a self-IPI raised while this drain runs (the buffer
  // refills from an interrupt-window write) must not start a nested drain —
  // it would re-read slots already copied and reset the index twice,
  // double-counting or losing entries. Nested IPIs are deferred and
  // redelivered once below. One guard per vCPU: drains on different vCPUs
  // are independent PML instances.
  cpus_[cpu].draining = true;
  sim::GuestPageTable& pt = kernel_.page_table(*t.proc);
  // Walk from slot 511 downward: logging order (the index counts down).
  const u64 first_slot = kPmlBufferEntries - count;
  for (u64 slot = kPmlBufferEntries; slot-- > first_slot;) {
    const u64 entry = m.pmem.read_u64(buf_hpa + slot * 8);
    m.charge_ns(m.cost.drain_entry_ns);
    // A gran-tagged entry (the guest mapped this region with a PS-bit leaf)
    // expands to every 4 KiB page it covers; a 4K entry (gran code 0) takes
    // the loop exactly once with base == entry, as before.
    const Gva base = pml_entry_base(entry);
    const PageGran gran = pml_entry_gran(entry);
    for (u64 i = 0; i < gran_pages(gran); ++i) {
      const Gva gva_page = base + i * kPageSize;
      // Re-validate against the page table: the page may have been swapped
      // out or unmapped after the write was logged. A stale GVA must not
      // reach userspace — the address may already belong to a new mapping.
      if (const sim::Pte* pte = pt.pte(gva_page);
          pte == nullptr || !pte->present) {
        m.count(Event::kEpmlStaleEntryDropped);
        continue;
      }
      t.ring->push(gva_page);
      m.count(Event::kRingBufCopyEntry);
    }
  }
  if (mid_drain_hook_) {
    // Test seam: runs exactly once, in the window where the slots have been
    // copied but the index is not yet reset (the nested-full window).
    const std::function<void()> hook = std::move(mid_drain_hook_);
    mid_drain_hook_ = nullptr;
    hook();
  }
  // Dirty flags stay set until fetch() (the interval boundary), so a page
  // logs once per interval instead of once per drain.
  vcpu.guest_vmwrite(sim::VmcsField::kGuestPmlIndex, kPmlIndexStart);
  cpus_[cpu].draining = false;
  if (cpus_[cpu].ipi_deferred) {
    // Deferred redelivery: rerun the handler now that the index is reset,
    // picking up whatever filled the buffer while we were draining.
    cpus_[cpu].ipi_deferred = false;
    handle_guest_pml_full(cpu);
  }
}

void OohModule::handle_guest_pml_full(unsigned cpu) {
  if (cpus_[cpu].draining) {
    cpus_[cpu].ipi_deferred = true;
    return;
  }
  Tracked* t = active_tracked(cpu);
  if (t == nullptr) {
    // Spurious IPI (no tracked process active): reset the index and return.
    kernel_.vm().vcpu(cpu).guest_vmwrite(sim::VmcsField::kGuestPmlIndex,
                                         kPmlIndexStart);
    return;
  }
  epml_drain_guest_buffer(*t, cpu);
}

std::vector<u64> OohModule::fetch(Process& proc) {
  const auto it = tracked_.find(proc.pid());
  if (it == tracked_.end()) throw std::logic_error("process not tracked");
  Tracked& t = it->second;
  const unsigned cpu = proc.cpu();
  sim::ExecContext& m = kernel_.ctx_of(proc);

  m.count(Event::kContextSwitch, 2);  // the fetch ioctl
  m.charge_us(2 * m.cost.ctx_switch_us);

  // Flush the partial in-flight hardware buffer so the caller sees
  // everything logged so far (completeness; evaluation question 3).
  if (mode_ == OohMode::kEpml && cpus_[cpu].active_pid == proc.pid()) {
    epml_drain_guest_buffer(t, cpu);
  }
  if (mode_ == OohMode::kSpml) {
    // The interval-reset hypercall drains the PML buffer into the shared
    // ring and re-arms the consumed pages; move the new entries into this
    // process's private ring before handing them to userspace.
    kernel_.vcpu_of(proc).hypercall(sim::Hypercall::kOohIntervalReset);
    RingBuffer& shared = kernel_.vm().spml_ring(cpu);
    u64 v = 0;
    while (shared.pop(v)) {
      t.ring->push(v);
      m.charge_ns(m.cost.drain_entry_ns);
    }
  }

  std::vector<u64> out = t.ring->drain();
  // Copying the ring into userspace (Table V metric M18, per entry).
  m.count(Event::kRingBufFetchEntry, out.size());
  m.charge_us(m.cost.rb_copy_per_entry_us(proc.mapped_bytes()) *
              static_cast<double>(out.size()));

  // Interval boundary (EPML): re-arm logging for every page handed to
  // userspace. (SPML's re-arm happened in the interval-reset hypercall.)
  if (mode_ == OohMode::kEpml) {
    sim::GuestPageTable& pt = kernel_.page_table(proc);
    u64 cleared = 0;
    for (const u64 gva_page : out) {
      if (sim::Pte* pte = pt.pte(gva_page); pte != nullptr && pte->dirty) {
        pte->dirty = false;
        ++cleared;
        kernel_.tlb_invalidate_page(proc, gva_page);
      }
    }
    m.charge_ns(m.cost.dbit_clear_ns * static_cast<double>(cleared));
  }
  return out;
}

u64 OohModule::dropped(const Process& proc) const {
  const auto it = tracked_.find(proc.pid());
  return it == tracked_.end() ? 0 : it->second.ring->dropped();
}

}  // namespace ooh::guest
