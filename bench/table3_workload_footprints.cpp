// Table III: configuration setup and memory consumption of every benchmark
// application at Small/Medium/Large. Prints our instantiated footprint next
// to the paper's measured consumption.
#include "common.hpp"
#include "workloads/registry.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, /*default_scale=*/1);
  (void)args;
  bench::print_header("Table III", "Workload configurations and memory footprints");

  TextTable t({"application (config)", "paper (MB)", "ours (MB)", "ratio"});
  for (const wl::WorkloadSpec& spec : wl::table3_specs()) {
    const auto w = wl::make_workload(spec.app, spec.size, /*scale_divisor=*/1);
    const double paper_mb = static_cast<double>(spec.paper_footprint_bytes) / kMiB;
    const double ours_mb = static_cast<double>(w->footprint_bytes()) / kMiB;
    t.add_row(std::string(spec.app) + " (" + std::string(wl::config_name(spec.size)) + ")",
              {paper_mb, ours_mb, ours_mb / paper_mb}, 2);
  }
  t.print(std::cout);
  std::printf("\nShape check: footprints within ~2x of Table III at every config.\n");
  return 0;
}
