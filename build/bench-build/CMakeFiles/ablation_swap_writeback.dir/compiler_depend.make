# Empty compiler generated dependencies file for ablation_swap_writeback.
# This may be replaced when dependencies are built.
