file(REMOVE_RECURSE
  "../bench/table6_metric_influence"
  "../bench/table6_metric_influence.pdb"
  "CMakeFiles/table6_metric_influence.dir/table6_metric_influence.cpp.o"
  "CMakeFiles/table6_metric_influence.dir/table6_metric_influence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_metric_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
