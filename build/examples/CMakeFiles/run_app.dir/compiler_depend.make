# Empty compiler generated dependencies file for run_app.
# This may be replaced when dependencies are built.
