// Guest swap daemon -- the guest kernel's own dirty-page-tracking use from
// the paper's introduction: "the guest kernel tracks dirty pages to know if
// a file-backed memory page should be copied to disk when swapped out".
//
// Eviction runs a clock (second-chance) sweep over the accessed bits; a
// victim whose PTE dirty flag is clear is dropped for free, a dirty victim
// pays a writeback. Swapped-out pages fault back in on the next touch with
// their contents restored.
#pragma once

#include <unordered_map>
#include <vector>

#include "base/types.hpp"
#include "base/vtime.hpp"
#include "guest/process.hpp"

namespace ooh::snapshot {
struct Access;
}  // namespace ooh::snapshot

namespace ooh::guest {

class GuestKernel;

class SwapDaemon {
 public:
  explicit SwapDaemon(GuestKernel& kernel) : kernel_(kernel) {}

  struct EvictStats {
    u64 scanned = 0;
    u64 evicted_clean = 0;   ///< dropped without I/O (dirty flag clear).
    u64 evicted_dirty = 0;   ///< written back first.
    VirtDuration time{0};
  };

  /// Evict up to `target_pages` resident pages of `proc`.
  EvictStats evict(Process& proc, u64 target_pages);

  /// Pages of `proc` currently swapped out.
  [[nodiscard]] u64 swapped_out(const Process& proc) const;

  // ---- kernel fault-path entry point ----------------------------------------
  /// True if `gva_page` was swapped out; swaps it back in (maps a fresh
  /// frame, restores contents, charges the swap-in read).
  bool swap_in_if_needed(Process& proc, Gva gva_page);

 private:
  friend struct ooh::snapshot::Access;

  struct Slot {
    std::vector<u8> content;  ///< empty for metadata-only pages.
    bool was_soft_dirty = false;
  };
  /// (pid, gva_page) -> swap slot.
  std::unordered_map<u64, Slot> slots_;
  static u64 key(u32 pid, Gva gva_page) noexcept {
    return (static_cast<u64>(pid) << 40) | page_index(gva_page);
  }
  /// Clock hand per process, for the second-chance sweep.
  std::unordered_map<u32, Gva> clock_hand_;

  GuestKernel& kernel_;
};

}  // namespace ooh::guest
