#include "guest/swap.hpp"

#include <algorithm>

#include "guest/kernel.hpp"

namespace ooh::guest {

SwapDaemon::EvictStats SwapDaemon::evict(Process& proc, u64 target_pages) {
  sim::ExecContext& m = kernel_.ctx_of(proc);
  sim::GuestPageTable& pt = kernel_.page_table(proc);
  EvictStats stats;
  const VirtDuration start = m.clock.now();

  // Snapshot the resident pages in address order; rotate to the clock hand.
  std::vector<Gva> resident;
  pt.for_each_present([&](Gva gva, sim::Pte&) { resident.push_back(gva); });
  std::sort(resident.begin(), resident.end());
  if (resident.empty()) return stats;
  const Gva hand = clock_hand_[proc.pid()];
  const auto pivot = std::lower_bound(resident.begin(), resident.end(), hand);
  std::rotate(resident.begin(), pivot, resident.end());

  u64 evicted = 0;
  // At most two full sweeps: the first strips accessed bits, the second must
  // find victims.
  for (u64 i = 0; i < 2 * resident.size() && evicted < target_pages; ++i) {
    const Gva gva = resident[i % resident.size()];
    sim::Pte* pte = pt.pte(gva);
    if (pte == nullptr || !pte->present) continue;
    ++stats.scanned;
    m.charge_ns(50);  // PTE inspection
    if (pte->accessed) {
      pte->accessed = false;  // second chance
      clock_hand_[proc.pid()] = gva + kPageSize;
      continue;
    }

    // Victim. Dirty pages must be written back; clean pages are dropped --
    // this is the dirty-tracking payoff the paper's intro describes.
    Slot slot;
    slot.was_soft_dirty = pte->soft_dirty;
    const Vma* vma = proc.vma_of(gva);
    if (pte->dirty) {
      ++stats.evicted_dirty;
      m.count(Event::kDiskPageWrite);
      m.charge_us(m.cost.disk_write_page_us);
      if (vma != nullptr && vma->data_backed) {
        Hpa hpa = 0;
        if (kernel_.vm().ept().translate(pte->gpa_page, hpa)) {
          if (const u8* data = m.pmem.frame_data_if_present(hpa); data != nullptr) {
            slot.content.assign(data, data + kPageSize);
          }
        }
      }
    } else {
      ++stats.evicted_clean;
      // A clean data page's content still needs preserving in the slot for
      // this anonymous-memory model (no file to re-read it from); only the
      // *I/O on the eviction path* is what the dirty flag saves.
      if (vma != nullptr && vma->data_backed) {
        Hpa hpa = 0;
        if (kernel_.vm().ept().translate(pte->gpa_page, hpa)) {
          if (const u8* data = m.pmem.frame_data_if_present(hpa); data != nullptr) {
            slot.content.assign(data, data + kPageSize);
          }
        }
      }
    }
    slots_[key(proc.pid(), gva)] = std::move(slot);
    kernel_.free_gpa_frame(pte->gpa_page);
    pt.unmap(gva);
    // Teardown of a mapping: cpumask-wide shootdown.
    kernel_.tlb_invalidate_page(proc, gva);
    clock_hand_[proc.pid()] = gva + kPageSize;
    ++evicted;
  }
  stats.time = m.clock.now() - start;
  return stats;
}

u64 SwapDaemon::swapped_out(const Process& proc) const {
  u64 n = 0;
  for (const auto& [k, slot] : slots_) {
    if ((k >> 40) == proc.pid()) ++n;
  }
  return n;
}

bool SwapDaemon::swap_in_if_needed(Process& proc, Gva gva_page) {
  const auto it = slots_.find(key(proc.pid(), gva_page));
  if (it == slots_.end()) return false;
  sim::ExecContext& m = kernel_.ctx_of(proc);

  // Major fault: read the page back from the swap device.
  m.count(Event::kPageFaultDemand);
  m.charge_us(m.cost.swap_in_page_us);

  const Vma* vma = proc.vma_of(gva_page);
  sim::GuestPageTable& pt = kernel_.page_table(proc);
  pt.map(gva_page, kernel_.alloc_gpa_frame(m), vma != nullptr && vma->writable);
  sim::Pte* pte = pt.pte(gva_page);
  pte->soft_dirty = it->second.was_soft_dirty;

  if (!it->second.content.empty()) {
    kernel_.ensure_ept_mapped(pte->gpa_page, proc.cpu());
    Hpa hpa = 0;
    if (kernel_.vm().ept().translate(pte->gpa_page, hpa)) {
      std::copy(it->second.content.begin(), it->second.content.end(),
                m.pmem.frame_data(hpa));
    }
  }
  slots_.erase(it);
  return true;
}

}  // namespace ooh::guest
