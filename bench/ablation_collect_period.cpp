// Ablation: collection cadence vs overhead.
//
// DESIGN.md calls out the collection interval as the experiment's free
// parameter: /proc and SPML pay a full pagemap scan (and reverse mapping)
// *per collection*, so frequent collection multiplies their cost, while
// EPML's per-collection cost is a ring read. This sweep quantifies that.
#include "common.hpp"

using namespace ooh;

namespace {

double tracked_time(lib::Technique tech, u64 mem, VirtDuration period) {
  const u64 pages = pages_for_bytes(mem);
  lib::TestBed bed;
  auto& k = bed.kernel();
  auto& proc = k.create_process();
  const Gva base = proc.mmap(mem);
  for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
  auto tracker = lib::make_tracker(tech, k, proc);
  lib::RunOptions opts;
  opts.collect_period = period;
  const lib::RunResult r = lib::run_tracked(
      k, proc,
      [&](guest::Process& p) {
        for (int pass = 0; pass < 8; ++pass) {
          for (u64 i = 0; i < pages; ++i) p.write_u64(base + i * kPageSize, i);
        }
      },
      tracker.get(), opts);
  tracker->shutdown();
  return r.tracked_time.count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_header("Ablation: collection period",
                      "Tracked time (ms) vs collection cadence, 10MB microbench");
  const u64 mem = args.full ? 100 * kMiB : 10 * kMiB;

  const std::vector<double> periods_ms = {0.5, 1.0, 2.0, 5.0, 10.0};
  std::vector<std::string> header = {"technique"};
  for (const double p : periods_ms) header.push_back(TextTable::fmt(p, 1) + "ms");
  header.push_back("single-cycle");
  TextTable t(header);

  for (const lib::Technique tech :
       {lib::Technique::kProc, lib::Technique::kSpml, lib::Technique::kEpml}) {
    std::vector<double> row;
    for (const double p : periods_ms) {
      row.push_back(tracked_time(tech, mem, msecs(p)) / 1e3);
    }
    row.push_back(tracked_time(tech, mem, VirtDuration{0}) / 1e3);
    t.add_row(std::string(lib::technique_name(tech)), row, 2);
  }
  t.print(std::cout);
  std::printf("\nShape check: /proc and SPML degrade sharply as collection gets more\n"
              "frequent; EPML is nearly flat (its per-collection cost is a ring read).\n");
  return 0;
}
