# Empty compiler generated dependencies file for table6_metric_influence.
# This may be replaced when dependencies are built.
