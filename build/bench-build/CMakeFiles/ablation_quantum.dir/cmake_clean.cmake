file(REMOVE_RECURSE
  "../bench/ablation_quantum"
  "../bench/ablation_quantum.pdb"
  "CMakeFiles/ablation_quantum.dir/ablation_quantum.cpp.o"
  "CMakeFiles/ablation_quantum.dir/ablation_quantum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
