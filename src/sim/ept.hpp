// Extended Page Table: per-VM GPA -> HPA mapping with accessed/dirty flags.
//
// Intel PML's trigger point lives here: a write that sets an EPT entry's
// dirty flag during the nested walk logs the GPA to the PML buffer
// (SDM Vol. 3C, "Page-Modification Logging").
#pragma once

#include "base/types.hpp"
#include "sim/radix.hpp"

namespace ooh::sim {

struct EptEntry {
  Hpa hpa_page = 0;
  bool present : 1 = false;
  bool writable : 1 = false;
  bool accessed : 1 = false;
  bool dirty : 1 = false;
  /// Intel SPP: writes consult the sub-page permission table (sim/spp.hpp).
  bool spp : 1 = false;
};

class Ept {
 public:
  void map(Gpa gpa_page, Hpa hpa_page, bool writable = true);
  void unmap(Gpa gpa_page);

  [[nodiscard]] EptEntry* entry(Gpa gpa) noexcept { return table_.find(page_floor(gpa)); }
  [[nodiscard]] const EptEntry* entry(Gpa gpa) const noexcept {
    return table_.find(page_floor(gpa));
  }

  /// GPA -> HPA for a present mapping; returns false when unmapped.
  [[nodiscard]] bool translate(Gpa gpa, Hpa& out) const noexcept;

  /// Visit every present entry as fn(gpa_page, EptEntry&).
  template <typename Fn>
  void for_each_present(Fn&& fn) {
    table_.for_each([&](u64 addr, EptEntry& e) {
      if (e.present) fn(addr, e);
    });
  }

  [[nodiscard]] u64 present_pages() const noexcept { return present_pages_; }

  // ---- paging-structure walk cache (see RadixTable4) -------------------------
  void invalidate_walk_cache() const noexcept { table_.invalidate_walk_cache(); }
  [[nodiscard]] bool walk_cache_coherent() const noexcept {
    return table_.walk_cache_coherent();
  }
  /// Test-only: corrupt the walk cache so WALK-1 mutation tests can prove
  /// the coherence oracle notices.
  void debug_skew_walk_cache() noexcept { table_.debug_skew_walk_cache(); }

 private:
  RadixTable4<EptEntry> table_;
  u64 present_pages_ = 0;
};

}  // namespace ooh::sim
