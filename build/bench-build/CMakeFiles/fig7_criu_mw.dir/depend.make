# Empty dependencies file for fig7_criu_mw.
# This may be replaced when dependencies are built.
