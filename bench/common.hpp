// Shared helpers for the bench harnesses.
//
// Every binary regenerates one of the paper's tables/figures. Default runs
// use scaled-down workloads so the whole suite finishes in minutes; pass
// --full for the paper-scale configurations (Table III sizes, 1MB..1GB
// sweeps).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/table.hpp"
#include "base/vtime.hpp"
#include "ooh/adaptive/adaptive_tracker.hpp"
#include "ooh/experiment.hpp"
#include "ooh/testbed.hpp"
#include "ooh/trackers.hpp"
#include "run_setup.hpp"

namespace ooh::bench {

struct Args {
  bool full = false;
  /// Workload scale divisor: 1 at --full, else a bench-chosen default.
  u64 scale = 32;
  /// Worker threads for multi-VM benches (0 = auto-size to the host).
  unsigned threads = 0;
  /// Max vCPUs per VM for the SMP sections of figs. 10-11 (0 = default
  /// sweep 1,2,4).
  unsigned vcpus = 0;
  /// --gran: EPT backing granularity for the figs. 10-11 gran sections
  /// (4k | 2m | 2m+split). Default 4k keeps every figure byte-identical.
  GranMode gran = GranMode::k4K;
  /// --adaptive: append the adaptive-control-plane section to figs. 10-11
  /// (phase-changing workload, static backends vs policy-driven switching).
  /// Off by default so the stock figures stay byte-identical.
  bool adaptive = false;

  static Args parse(int argc, char** argv, u64 default_scale = 32) {
    Args a;
    a.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        a.full = true;
        a.scale = 1;
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        a.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--vcpus") == 0 && i + 1 < argc) {
        a.vcpus = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--gran") == 0 && i + 1 < argc) {
        if (const auto m = parse_gran_mode(argv[++i])) a.gran = *m;
      } else if (std::strcmp(argv[i], "--adaptive") == 0) {
        a.adaptive = true;
      }
    }
    return a;
  }
};

/// The memory sweep of Table I / Table V(b) / Figs. 3-4.
inline std::vector<u64> memory_sweep(bool full) {
  if (full) {
    return {1 * kMiB, 10 * kMiB, 50 * kMiB, 100 * kMiB, 250 * kMiB, 500 * kMiB, kGiB};
  }
  return {1 * kMiB, 10 * kMiB, 50 * kMiB, 100 * kMiB};
}

inline std::string mem_label(u64 bytes) {
  if (bytes >= kGiB) return std::to_string(bytes / kGiB) + "GB";
  return std::to_string(bytes / kMiB) + "MB";
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("(virtual-time simulation; see EXPERIMENTS.md for paper values)\n");
  std::printf("==============================================================\n");
}

/// One warm single-cycle microbench run (the paper's Table I / Fig. 4
/// methodology): returns {ideal_us, tracked_us, tracker_us}.
struct MicroRun {
  double ideal_us = 0.0;
  double tracked_us = 0.0;
  double tracker_us = 0.0;
  lib::RunResult result;
};

/// Pass count calibrated so the monitoring window gives each page ~0.8us of
/// Tracked work -- this puts the large-size overheads in the paper's range
/// (ufd ~15x, /proc ~4x, SPML ~66x at 1GB).
inline MicroRun run_micro(std::optional<lib::Technique> tech, u64 mem_bytes,
                          int passes = 8) {
  const u64 pages = pages_for_bytes(mem_bytes);
  const auto work = [pages](Gva base) {
    return [base, pages](guest::Process& p) {
      for (u64 i = 0; i < pages; ++i) p.write_u64(base + i * kPageSize, i);
    };
  };
  // Ideal first.
  const lib::TestBedOptions opts = sized_bed_options(mem_bytes);

  MicroRun out;
  VirtDuration ideal{0};
  {
    lib::TestBed bed(opts);
    auto& k = bed.kernel();
    const PreparedProcess pp = prepare_process(k, mem_bytes);
    auto& proc = *pp.proc;
    const Gva base = pp.base;
    lib::RunOptions ro;
    ro.collect_period = VirtDuration{0};
    auto body = work(base);
    int p = passes;
    const lib::RunResult r = lib::run_tracked(
        k, proc,
        [&](guest::Process& pr) {
          for (int i = 0; i < p; ++i) body(pr);
        },
        nullptr, ro);
    ideal = r.tracked_time;
    out.ideal_us = ideal.count();
  }
  if (!tech) {
    out.tracked_us = out.ideal_us;
    return out;
  }

  lib::TestBed bed(opts);
  auto& k = bed.kernel();
  const PreparedProcess pp = prepare_process(k, mem_bytes);
  auto& proc = *pp.proc;
  const Gva base = pp.base;
  auto tracker = lib::make_tracker(*tech, k, proc);
  lib::RunOptions ro;
  ro.collect_period = ideal * 0.75;
  ro.max_collections = 1;
  auto body = work(base);
  int p = passes;
  out.result = lib::run_tracked(
      k, proc,
      [&](guest::Process& pr) {
        for (int i = 0; i < p; ++i) body(pr);
      },
      tracker.get(), ro);
  tracker->shutdown();
  out.tracked_us = out.result.tracked_time.count();
  out.tracker_us = out.result.tracker_time().count() - out.result.phases.init.count();
  return out;
}

// ---- SMP guests: per-vCPU dirty rings, concurrent userspace drain -----------

/// One SMP configuration of the figs. 10-11 vCPU axis: a single VM with
/// `vcpus` vCPUs, one pinned writer process per vCPU, a hypervisor PML
/// session over the touch phase. `concurrent` runs one producer thread per
/// vCPU plus one userspace drainer per dirty ring; otherwise everything is
/// serial and the rings are only emptied at the quiescent harvest. Per-vCPU
/// virtual time is bit-identical between the two modes by construction —
/// only the host wall clock and the drained-entry count differ.
struct SmpDrainResult {
  double wall_ms = 0.0;      ///< host wall clock of the touch+drain phase.
  double max_vcpu_ms = 0.0;  ///< slowest vCPU's virtual time.
  double spread_pct = 0.0;   ///< (max-min)/max over the per-vCPU clocks.
  u64 drained = 0;           ///< ring entries popped by concurrent drainers.
  u64 harvested = 0;         ///< union of dirty GPAs at the final harvest.
};

inline SmpDrainResult run_smp_drain(unsigned vcpus, u64 pages_per_vcpu,
                                    int passes, bool concurrent,
                                    GranMode gran = GranMode::k4K) {
  lib::TestBedOptions opts =
      sized_bed_options(u64{vcpus} * pages_per_vcpu * kPageSize * 2);
  opts.vcpus_per_vm = vcpus;
  apply_gran(opts, gran);
  lib::TestBed bed(opts);
  hv::Vm& vm = bed.vm();
  guest::GuestKernel& k = bed.kernel();
  hv::Hypervisor& hv = bed.hypervisor();

  std::vector<guest::Process*> procs(vcpus);
  std::vector<Gva> bases(vcpus);
  for (unsigned cpu = 0; cpu < vcpus; ++cpu) {
    procs[cpu] = &k.create_process();  // round-robin pins proc i to vCPU i
    bases[cpu] = procs[cpu]->mmap(pages_per_vcpu * kPageSize);
    // Serial warmup so the timed phase allocates nothing and both modes see
    // identical frame assignments.
    procs[cpu]->touch_range_write(bases[cpu], pages_per_vcpu * kPageSize);
  }
  hv.enable_pml_for_hyp(vm);

  const auto body = [&](unsigned cpu) {
    for (int pass = 0; pass < passes; ++pass) {
      procs[cpu]->touch_range_write(bases[cpu], pages_per_vcpu * kPageSize);
    }
  };

  SmpDrainResult out;
  const auto start = std::chrono::steady_clock::now();
  if (!concurrent) {
    for (unsigned cpu = 0; cpu < vcpus; ++cpu) body(cpu);
  } else {
    std::atomic<bool> done{false};
    std::atomic<u64> popped{0};
    std::vector<std::thread> drainers;
    for (unsigned cpu = 0; cpu < vcpus; ++cpu) {
      drainers.emplace_back([&, cpu] {
        std::vector<Gpa> local;
        while (!done.load(std::memory_order_acquire)) {
          popped.fetch_add(hv.drain_dirty_ring(vm, cpu, local),
                           std::memory_order_relaxed);
          std::this_thread::yield();
        }
        popped.fetch_add(hv.drain_dirty_ring(vm, cpu, local),
                         std::memory_order_relaxed);
      });
    }
    std::vector<std::thread> producers;
    for (unsigned cpu = 0; cpu < vcpus; ++cpu) producers.emplace_back(body, cpu);
    for (std::thread& t : producers) t.join();
    done.store(true, std::memory_order_release);
    for (std::thread& t : drainers) t.join();
    out.drained = popped.load(std::memory_order_relaxed);
  }
  out.harvested = hv.harvest_hyp_dirty(vm).size();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  hv.disable_pml_for_hyp(vm);

  double min_us = 1e300, max_us = 0.0;
  for (unsigned cpu = 0; cpu < vcpus; ++cpu) {
    const double us = vm.vcpu(cpu).ctx().clock.now().count();
    min_us = std::min(min_us, us);
    max_us = std::max(max_us, us);
  }
  out.max_vcpu_ms = max_us / 1e3;
  out.spread_pct = max_us > 0.0 ? (max_us - min_us) / max_us * 100.0 : 0.0;
  bed.audit();
  return out;
}

// ---- adaptive control plane: phase-changing workload ------------------------

/// One run of the figs. 10-11 --adaptive section: hot write bursts, a cold
/// read stretch, hot bursts again — the phase shape where a static backend
/// is wrong half the time. `static_tech` pins the backend; nullopt runs the
/// adaptive control plane (WssEstimator + PolicyEngine over live handoff).
struct AdaptivePhasesResult {
  double virt_ms = 0.0;       ///< guest + tracker virtual time, whole run.
  u64 pages = 0;              ///< dirty pages collected across all intervals.
  u64 switches = 0;           ///< live backend handoffs (0 for static).
  std::string final_backend;  ///< backend active when the run ended.
};

inline AdaptivePhasesResult run_adaptive_phases(
    std::optional<lib::Technique> static_tech, u64 hot_pages = 256,
    int hot_intervals = 4, int cold_intervals = 12) {
  lib::TestBed bed;
  auto& k = bed.kernel();
  guest::Process& proc = k.create_process();
  const Gva base = proc.mmap(4 * hot_pages * kPageSize);
  proc.touch_range_write(base, 4 * hot_pages * kPageSize);  // prefault

  std::unique_ptr<lib::DirtyTracker> tracker;
  lib::AdaptiveTracker* adaptive = nullptr;
  if (static_tech) {
    tracker = lib::make_tracker(*static_tech, k, proc);
  } else {
    lib::AdaptiveOptions ao;
    ao.estimator_alpha = 0.9;  // respond within a couple of windows
    auto at = std::make_unique<lib::AdaptiveTracker>(k, proc, ao);
    adaptive = at.get();
    tracker = std::move(at);
  }
  tracker->init();
  tracker->begin_interval();

  AdaptivePhasesResult out;
  const VirtDuration start = bed.ctx().clock.now();
  const auto interval = [&](auto body) {
    k.scheduler().enter_process(proc.pid());
    body();
    k.scheduler().exit_process(proc.pid());
    out.pages += tracker->collect().size();
    tracker->begin_interval();
  };
  for (int i = 0; i < hot_intervals; ++i) {
    interval([&] { proc.touch_range_write(base, hot_pages * kPageSize); });
  }
  for (int i = 0; i < cold_intervals; ++i) {
    interval([&] { proc.touch_read(base); });  // reads only: the cold phase
  }
  for (int i = 0; i < hot_intervals; ++i) {
    interval([&] {
      proc.touch_range_write(base + 2 * hot_pages * kPageSize,
                             hot_pages * kPageSize);
    });
  }
  out.virt_ms = (bed.ctx().clock.now() - start).count() / 1e3;
  out.switches = adaptive != nullptr ? adaptive->switches() : 0;
  out.final_backend = std::string(lib::technique_name(tracker->effective_technique()));
  tracker->shutdown();
  bed.audit();
  return out;
}

/// Renders the --adaptive section shared by figs. 10 and 11.
inline void print_adaptive_section() {
  std::printf("\nAdaptive control plane: phase-changing workload (--adaptive)\n");
  TextTable a({"tracker", "virt (ms)", "pages", "switches", "final backend"});
  const std::pair<const char*, std::optional<lib::Technique>> kRows[] = {
      {"epml (static)", lib::Technique::kEpml},
      {"wp (static)", lib::Technique::kWp},
      {"adaptive", std::nullopt}};
  for (const auto& [label, tech] : kRows) {
    const AdaptivePhasesResult r = run_adaptive_phases(tech);
    a.add_row({label, TextTable::fmt(r.virt_ms, 2), std::to_string(r.pages),
               std::to_string(r.switches), r.final_backend});
  }
  a.print(std::cout);
  std::printf("Shape check: the adaptive run switches backends at least twice\n"
              "(hot->cold->hot) and captures exactly the pages static EPML does.\n"
              "Its virtual-time gap vs the winning static backend is the handoff\n"
              "tax -- arming/disarming the cold backend's write protection over\n"
              "the tracked VMA -- paid once per phase change, amortised over\n"
              "phase length; the cold windows themselves run with no standing\n"
              "PML session or ring to service.\n");
}

/// The vCPU counts the SMP sections sweep: 1,2,4 by default, or 1..--vcpus
/// capped to powers of two when the flag is given.
inline std::vector<unsigned> vcpu_sweep(unsigned max_vcpus) {
  std::vector<unsigned> out;
  const unsigned cap = max_vcpus != 0 ? max_vcpus : 4;
  for (unsigned v = 1; v <= cap; v *= 2) out.push_back(v);
  return out;
}

}  // namespace ooh::bench
