#include "hypervisor/migration.hpp"

namespace ooh::hv {

u64 MigrationEngine::send_pages(sim::ExecContext& m, u64 count) {
  m.count(Event::kMigrationPageSent, count);
  m.charge_us(m.cost.migration_send_page_us * static_cast<double>(count));
  return count;
}

MigrationReport MigrationEngine::migrate(Vm& vm,
                                         const std::function<void()>& run_guest_quantum,
                                         const MigrationOptions& opts) {
  sim::ExecContext& m = vm.ctx();
  MigrationReport rep;
  const VirtDuration start = m.clock.now();

  hv_.enable_pml_for_hyp(vm);

  // Round 0: full copy of every mapped guest page while the guest runs.
  rep.initial_pages = vm.ept().present_pages();
  rep.pages_sent += send_pages(m, rep.initial_pages);

  u64 last_dirty = rep.initial_pages;
  for (unsigned round = 0; round < opts.max_rounds; ++round) {
    run_guest_quantum();
    const std::vector<Gpa> dirty = hv_.harvest_hyp_dirty(vm);
    // Pre-copy round boundary: let an installed coherence hook audit this
    // VM (no-op outside audit builds; see Hypervisor::set_audit_hook).
    hv_.audit_now(vm.id());
    m.count(Event::kMigrationRound);
    ++rep.rounds;
    if (dirty.size() <= opts.stop_copy_threshold_pages) {
      // Converged: pause the guest and send the remainder (downtime).
      const VirtDuration pause_start = m.clock.now();
      rep.stop_copy_pages = dirty.size();
      rep.pages_sent += send_pages(m, dirty.size());
      rep.downtime = m.clock.now() - pause_start;
      rep.converged = true;
      break;
    }
    rep.pages_sent += send_pages(m, dirty.size());
    last_dirty = dirty.size();
  }
  if (!rep.converged) {
    // Forced stop-and-copy after max_rounds: send the final dirty set paused.
    run_guest_quantum();
    const std::vector<Gpa> dirty = hv_.harvest_hyp_dirty(vm);
    const VirtDuration pause_start = m.clock.now();
    rep.stop_copy_pages = dirty.size();
    rep.pages_sent += send_pages(m, dirty.size());
    rep.downtime = m.clock.now() - pause_start;
  }
  (void)last_dirty;

  hv_.disable_pml_for_hyp(vm);
  hv_.audit_now(vm.id());
  rep.total_time = m.clock.now() - start;
  return rep;
}

}  // namespace ooh::hv
