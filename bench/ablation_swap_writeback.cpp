// Ablation: dirty-flag-aware eviction vs naive write-everything eviction.
//
// The guest kernel's own dirty-tracking use (paper §I): when swapping out,
// only pages whose dirty flag is set need a writeback. This bench measures
// the I/O saved as the fraction of dirtied resident pages varies.
#include "common.hpp"
#include "guest/swap.hpp"

using namespace ooh;

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  const u64 pages = args.full ? 65536 : 8192;

  bench::print_header("Ablation: swap writeback savings",
                      "evicting with dirty flags vs writing every victim back");

  TextTable t({"dirty fraction", "writebacks (tracked)", "writebacks (naive)",
               "I/O saved (%)", "evict time (ms)"});
  for (const double frac : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    lib::TestBed bed;
    auto& k = bed.kernel();
    auto& proc = k.create_process();
    const Gva base = proc.mmap(pages * kPageSize);
    for (u64 i = 0; i < pages; ++i) proc.touch_write(base + i * kPageSize);
    // Reset flags, then re-dirty the requested fraction.
    k.page_table(proc).for_each_present([](Gva, sim::Pte& pte) {
      pte.accessed = false;
      pte.dirty = false;
    });
    bed.vm().vcpu().tlb().flush_pid(proc.pid());
    const u64 dirty = static_cast<u64>(frac * pages);
    for (u64 i = 0; i < dirty; ++i) proc.touch_write(base + i * kPageSize);
    k.page_table(proc).for_each_present(
        [](Gva, sim::Pte& pte) { pte.accessed = false; });
    bed.vm().vcpu().tlb().flush_pid(proc.pid());

    const guest::SwapDaemon::EvictStats st = k.swap().evict(proc, pages);
    const double naive = static_cast<double>(st.evicted_clean + st.evicted_dirty);
    t.add_row(TextTable::fmt(frac, 2),
              {static_cast<double>(st.evicted_dirty), naive,
               100.0 * (naive - static_cast<double>(st.evicted_dirty)) / naive,
               st.time.count() / 1e3},
              1);
  }
  t.print(std::cout);
  std::printf("\nShape check: writebacks equal exactly the dirtied fraction; a naive\n"
              "evictor would write every victim (100%% I/O at 0%% dirty saved nothing).\n");
  return 0;
}
