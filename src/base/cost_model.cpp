#include "base/cost_model.hpp"

#include <algorithm>

namespace ooh {
namespace {

constexpr double kMs = 1e3;  // Table V(b) reports milliseconds; we store us.

/// The seven calibration sizes of Table V(b).
constexpr double kSz[7] = {1.0 * kMiB,   10.0 * kMiB,  50.0 * kMiB, 100.0 * kMiB,
                           250.0 * kMiB, 500.0 * kMiB, 1024.0 * kMiB};

LogLogInterp table_vb(const double (&ms)[7]) {
  std::vector<LogLogInterp::Point> pts;
  pts.reserve(7);
  for (int i = 0; i < 7; ++i) pts.push_back({kSz[i], ms[i] * kMs});
  return LogLogInterp{std::move(pts)};
}

LogLogInterp flat(double us) {
  return LogLogInterp{{{1.0, us}, {1e15, us}}};
}

[[nodiscard]] double per_page(const LogLogInterp& total_us, u64 mem_bytes) {
  const double pages = static_cast<double>(std::max<u64>(1, pages_for_bytes(mem_bytes)));
  return total_us.at(static_cast<double>(std::max<u64>(mem_bytes, 1))) / pages;
}

}  // namespace

CostModel CostModel::paper_calibrated() {
  CostModel m;
  // Table V(b) rows, in milliseconds, at 1MB/10MB/50MB/100MB/250MB/500MB/1GB.
  m.m15_clear_refs = table_vb({0.032, 0.0912, 0.174, 0.288, 0.613, 1.153, 2.234});
  m.m16_pt_walk_user = table_vb({1.912, 14.479, 41.832, 82.289, 161.973, 307.109, 594.187});
  m.m5_pfh_kernel = table_vb({0.003, 0.3, 1.68, 3.34, 8.39, 16.79, 33.58});
  m.m6_pfh_user = table_vb({2.5, 27.3, 152.3, 347.1, 882.8, 1585.0, 3483.0});
  m.m14_disable_logging = table_vb({0.042, 0.047, 0.138, 0.156, 0.189, 0.203, 0.208});
  m.m18_rb_copy = table_vb({0.003, 0.01, 0.03, 0.048, 0.109, 0.383, 0.671});
  m.m17_reverse_map = table_vb({6.183, 24.653, 85.117, 255.437, 1211.0, 4123.0, 15738.0});
  return m;
}

CostModel CostModel::unit() {
  CostModel m;
  m.ctx_switch_us = 1.0;
  m.ioctl_init_pml_us = 1.0;
  m.ioctl_deactivate_pml_us = 1.0;
  m.vmread_us = 1.0;
  m.vmwrite_us = 1.0;
  m.hc_init_pml_us = 1.0;
  m.hc_init_pml_shadow_us = 1.0;
  m.hc_deact_pml_us = 1.0;
  m.hc_deact_pml_shadow_us = 1.0;
  m.hc_enable_logging_us = 1.0;
  m.vmexit_us = 1.0;
  m.self_ipi_us = 1.0;
  m.demand_fault_us = 1.0;
  m.ept_violation_us = 1.0;
  m.tlb_flush_us = 1.0;
  m.tlb_shootdown_us = 1.0;
  m.disk_write_page_us = 1.0;
  m.workload_write_ns = 0.0;
  m.workload_bulk_word_ns = 0.0;
  m.irq_dispatch_us = 1.0;
  m.tlb_hit_ns = 0.0;
  m.guest_walk_ns = 0.0;
  m.ept_walk_ns = 0.0;
  m.pml_log_ns = 0.0;
  m.dbit_clear_ns = 0.0;
  m.drain_entry_ns = 0.0;
  m.migration_send_page_us = 1.0;
  m.spp_violation_us = 1.0;
  m.hc_spp_protect_us = 1.0;
  m.swap_in_page_us = 1.0;
  m.ept_split_leaf_us = 1.0;
  m.wss_estimator_update_ns = 0.0;
  m.policy_switch_us = 1.0;
  // Flat size-dependent metrics: totals of 1us regardless of size, so tests
  // can predict exact clock values from event counts.
  m.m5_pfh_kernel = flat(1.0);
  m.m6_pfh_user = flat(1.0);
  m.m14_disable_logging = flat(1.0);
  m.m15_clear_refs = flat(1.0);
  m.m16_pt_walk_user = flat(1.0);
  m.m17_reverse_map = flat(1.0);
  m.m18_rb_copy = flat(1.0);
  return m;
}

double CostModel::pfh_kernel_per_fault_us(u64 mem_bytes) const {
  return per_page(m5_pfh_kernel, mem_bytes);
}
double CostModel::pfh_user_per_fault_us(u64 mem_bytes) const {
  return per_page(m6_pfh_user, mem_bytes);
}
double CostModel::clear_refs_us(u64 mem_bytes) const {
  return m15_clear_refs.at(static_cast<double>(std::max<u64>(mem_bytes, 1)));
}
double CostModel::pagemap_scan_us(u64 mem_bytes) const {
  return m16_pt_walk_user.at(static_cast<double>(std::max<u64>(mem_bytes, 1)));
}
double CostModel::reverse_map_per_page_us(u64 mem_bytes) const {
  return per_page(m17_reverse_map, mem_bytes);
}
double CostModel::rb_copy_per_entry_us(u64 mem_bytes) const {
  return per_page(m18_rb_copy, mem_bytes);
}
double CostModel::spml_disable_logging_us(u64 mem_bytes) const {
  return m14_disable_logging.at(static_cast<double>(std::max<u64>(mem_bytes, 1)));
}
double CostModel::ufd_write_protect_us(u64 mem_bytes) const {
  return clear_refs_us(mem_bytes);
}

}  // namespace ooh
