// Experiment driver implementing the paper's methodology (§VI-B):
// Tracker and Tracked share one vCPU; the Tracker periodically preempts the
// Tracked to collect dirty addresses; the Tracked's completion time and the
// Tracker's own time are both read off the same virtual clock, so
//     E(C_tked_tker) = E(C_tked) + E(C_tker) + I(C_x, C_tked)
// holds by construction and the overhead of each technique is measurable.
#pragma once

#include <functional>

#include "base/counters.hpp"
#include "ooh/tracker.hpp"

namespace ooh::lib {

struct RunOptions {
  /// Tracker collection cadence (virtual time). Zero disables periodic
  /// collection; a single collection then happens at the end of the run.
  VirtDuration collect_period = msecs(500);
  /// Cap on in-run collections (0 = unbounded). The paper's microbench runs
  /// a single monitor+collect cycle on the Tracked's timeline; set 1 for
  /// that methodology.
  unsigned max_collections = 0;
  bool final_collect = true;
  /// Called with each interval's collected pages (the "exploitation" phase
  /// C_p -- e.g. CRIU's dump). May charge virtual time.
  std::function<void(const std::vector<Gva>&)> on_collected;
};

struct RunResult {
  VirtDuration tracked_time{0};  ///< workload completion time under tracking.
  Phases phases;                 ///< tracker-side time split.
  u64 unique_pages = 0;          ///< distinct dirty pages reported over the run.
  u64 truth_pages = 0;           ///< ground-truth distinct dirty pages.
  u64 captured_truth = 0;        ///< truth pages that the tracker reported.
  u64 dropped = 0;               ///< ring-overflow losses (PML designs).
  u64 ctx_switches = 0;
  bool guest_oom = false;        ///< workload stopped early on guest OOM.
  EventCounters events;          ///< event deltas over the run.

  [[nodiscard]] double capture_ratio() const noexcept {
    return truth_pages == 0
               ? 1.0
               : static_cast<double>(captured_truth) / static_cast<double>(truth_pages);
  }
  [[nodiscard]] VirtDuration tracker_time() const noexcept {
    return phases.tracker_total();
  }
};

using WorkloadFn = std::function<void(guest::Process&)>;

/// Run `workload` in `proc` while `tracker` (nullable -> untracked baseline)
/// monitors it, per RunOptions. Returns timing, capture and event metrics.
RunResult run_tracked(guest::GuestKernel& kernel, guest::Process& proc,
                      const WorkloadFn& workload, DirtyTracker* tracker,
                      const RunOptions& opts = {});

/// Convenience: the untracked baseline ("ideal execution time", §III).
RunResult run_baseline(guest::GuestKernel& kernel, guest::Process& proc,
                       const WorkloadFn& workload);

}  // namespace ooh::lib
