#include "workloads/tkrzw.hpp"

#include <algorithm>
#include <stdexcept>
#include <bit>
#include <cmath>

namespace ooh::wl {

void KvEngine::setup(guest::Process& proc) {
  index_ = proc.mmap(std::max<u64>(layout_.index_bytes, kPageSize), data_backed_);
  arena_bytes_ = page_ceil(std::max<u64>(layout_.iterations * layout_.record_bytes,
                                         kPageSize));
  arena_ = proc.mmap(arena_bytes_, data_backed_);
}

u64 KvEngine::kv_capacity() const noexcept {
  // 16-byte slots (key, value) in the index region; one page minimum.
  return std::max<u64>(layout_.index_bytes, kPageSize) / 16;
}

void KvEngine::put(guest::Process& proc, u64 key, u64 value) {
  if (!data_backed_) throw std::logic_error("put() requires data-backed mode");
  if (key == 0) throw std::invalid_argument("key 0 is the empty-slot marker");
  const u64 cap = kv_capacity();
  u64 slot = (key * 0x9e3779b97f4a7c15ULL) % cap;
  for (u64 probe = 0; probe < cap; ++probe) {
    const Gva addr = index_ + slot * 16;
    const u64 existing = proc.read_u64(addr);
    if (existing == 0 || existing == key) {
      proc.write_u64(addr, key);
      proc.write_u64(addr + 8, value);
      return;
    }
    slot = (slot + 1) % cap;  // linear probing
  }
  throw std::bad_alloc{};  // store full
}

std::optional<u64> KvEngine::get(guest::Process& proc, u64 key) {
  if (!data_backed_) throw std::logic_error("get() requires data-backed mode");
  const u64 cap = kv_capacity();
  u64 slot = (key * 0x9e3779b97f4a7c15ULL) % cap;
  for (u64 probe = 0; probe < cap; ++probe) {
    const Gva addr = index_ + slot * 16;
    const u64 existing = proc.read_u64(addr);
    if (existing == 0) return std::nullopt;
    if (existing == key) return proc.read_u64(addr + 8);
    slot = (slot + 1) % cap;
  }
  return std::nullopt;
}

void KvEngine::run(guest::Process& proc) {
  for (u64 i = 0; i < layout_.iterations; ++i) {
    set(proc, rng_.next());
  }
}

void KvEngine::set(guest::Process& proc, u64 key) {
  const u64 index_pages = std::max<u64>(1, layout_.index_bytes / kPageSize);

  // Index read path (B-tree/RB-tree descent): depth scales with log(count).
  u64 reads = layout_.index_reads;
  if (reads == u64(-1)) {  // dynamic depth marker
    reads = count_ < 2 ? 1 : std::bit_width(count_);
  }
  for (u64 d = 0; d < reads; ++d) {
    const u64 page = (key ^ (d * 0x9e3779b97f4a7c15ULL)) % index_pages;
    proc.touch_read(index_ + page * kPageSize);
  }

  // Index slot writes (bucket store / node insert / rebalance).
  for (u64 w = 0; w < layout_.index_writes; ++w) {
    const u64 page = (key ^ (w * 0xbf58476d1ce4e5b9ULL)) % index_pages;
    const u64 slot = (key >> 17) % (kPageSize / 8);
    proc.write_u64(index_ + page * kPageSize + slot * 8, key);
  }

  if (layout_.hot_head_page) {
    proc.write_u64(index_, count_);  // LRU list head: written on every set
  }

  // Record append: sequential arena writes, one word per 64 bytes of value.
  const u64 rec = arena_cursor_;
  arena_cursor_ = (arena_cursor_ + layout_.record_bytes) % arena_bytes_;
  for (u64 off = 0; off < layout_.record_bytes; off += 64) {
    proc.write_u64(arena_ + (rec + off) % arena_bytes_, key);
  }

  if (layout_.extra_compute_us > 0.0) {
    proc.kernel().ctx().charge_us(layout_.extra_compute_us);
  }
  ++count_;
}

BabyEngine::BabyEngine(u64 iterations, u64 record_bytes, bool data_backed)
    : KvEngine([&] {
        Layout l;
        l.iterations = iterations;
        l.index_bytes = std::max<u64>(iterations / 4, 1) * 16;  // sorted key index
        l.record_bytes = record_bytes;
        l.index_reads = u64(-1);  // B-tree descent, depth ~ log(count)
        l.index_writes = 1;       // leaf insert
        return l;
      }(), data_backed) {}

CacheEngine::CacheEngine(u64 iterations, u64 cap_rec_num, u64 record_bytes,
                         bool data_backed)
    : KvEngine([&] {
        Layout l;
        l.iterations = iterations;
        l.index_bytes = cap_rec_num * 8;  // bucket array
        l.record_bytes = record_bytes;
        l.index_reads = 1;   // hash probe
        l.index_writes = 1;  // bucket slot
        l.hot_head_page = true;  // LRU list head
        return l;
      }(), data_backed) {}

StdHashEngine::StdHashEngine(u64 iterations, u64 buckets, u64 record_bytes,
                             bool data_backed)
    : KvEngine([&] {
        Layout l;
        l.iterations = iterations;
        l.index_bytes = buckets * 8;
        l.record_bytes = record_bytes;
        l.index_reads = 1;
        l.index_writes = 1;
        l.extra_compute_us = 1.2;  // -record_comp zlib: per-record compression
        return l;
      }(), data_backed) {}

StdTreeEngine::StdTreeEngine(u64 iterations, u64 record_bytes, bool data_backed)
    : KvEngine([&] {
        Layout l;
        l.iterations = iterations;
        l.index_bytes = std::max<u64>(iterations, 1) * 32;  // RB-tree nodes
        l.record_bytes = record_bytes;
        l.index_reads = u64(-1);  // binary descent
        l.index_writes = 2;       // node insert + rebalance touch
        return l;
      }(), data_backed) {}

TinyEngine::TinyEngine(u64 iterations, u64 buckets, u64 record_bytes,
                       bool data_backed)
    : KvEngine([&] {
        Layout l;
        l.iterations = iterations;
        l.index_bytes = buckets * 8;  // huge flat bucket array (-buckets 30M)
        l.record_bytes = record_bytes;
        l.index_reads = 1;
        l.index_writes = 1;
        return l;
      }(), data_backed) {}

}  // namespace ooh::wl
