// Unit tests for the base layer: interpolation, clock attribution, ring
// buffer, counters, cost model calibration, stats, table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "base/clock.hpp"
#include "base/cost_model.hpp"
#include "base/counters.hpp"
#include "base/interp.hpp"
#include "base/ring_buffer.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "base/table.hpp"
#include "base/types.hpp"

namespace ooh {
namespace {

// ---- types -------------------------------------------------------------------

TEST(Types, PageArithmetic) {
  EXPECT_EQ(page_floor(0x1234), 0x1000u);
  EXPECT_EQ(page_ceil(0x1001), 0x2000u);
  EXPECT_EQ(page_ceil(0x1000), 0x1000u);
  EXPECT_EQ(page_index(0x3456), 3u);
  EXPECT_EQ(page_offset(0x3456), 0x456u);
  EXPECT_EQ(pages_for_bytes(1), 1u);
  EXPECT_EQ(pages_for_bytes(kPageSize), 1u);
  EXPECT_EQ(pages_for_bytes(kPageSize + 1), 2u);
  EXPECT_TRUE(is_page_aligned(0x2000));
  EXPECT_FALSE(is_page_aligned(0x2008));
}

// ---- interp ------------------------------------------------------------------

TEST(LogLogInterp, HitsCalibrationPointsExactly) {
  LogLogInterp f({{1.0, 10.0}, {10.0, 100.0}, {100.0, 400.0}});
  EXPECT_NEAR(f.at(1.0), 10.0, 1e-9);
  EXPECT_NEAR(f.at(10.0), 100.0, 1e-9);
  EXPECT_NEAR(f.at(100.0), 400.0, 1e-9);
}

TEST(LogLogInterp, InterpolatesGeometrically) {
  LogLogInterp f({{1.0, 1.0}, {100.0, 100.0}});
  // Linear in log-log space: f(10) = 10.
  EXPECT_NEAR(f.at(10.0), 10.0, 1e-9);
}

TEST(LogLogInterp, ExtrapolatesEndSlopes) {
  LogLogInterp f({{1.0, 1.0}, {10.0, 10.0}});
  EXPECT_NEAR(f.at(100.0), 100.0, 1e-6);  // slope 1 continues
  EXPECT_NEAR(f.at(0.1), 0.1, 1e-6);
}

TEST(LogLogInterp, MonotonicInputsStayMonotonic) {
  LogLogInterp f({{1.0, 2.0}, {8.0, 5.0}, {64.0, 40.0}, {512.0, 100.0}});
  double prev = 0.0;
  for (double x = 0.5; x < 1000.0; x *= 1.3) {
    const double y = f.at(x);
    EXPECT_GT(y, prev);
    prev = y;
  }
}

TEST(LogLogInterp, RejectsBadInputs) {
  EXPECT_THROW(LogLogInterp{std::vector<LogLogInterp::Point>{}}, std::invalid_argument);
  EXPECT_THROW(LogLogInterp({{1.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(LogLogInterp({{2.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(LogLogInterp({{0.0, 1.0}}), std::invalid_argument);
  LogLogInterp f({{1.0, 1.0}, {2.0, 2.0}});
  EXPECT_THROW((void)f.at(0.0), std::invalid_argument);
}

TEST(LogLogInterp, SinglePointIsConstant) {
  LogLogInterp f({{5.0, 42.0}});
  EXPECT_EQ(f.at(1.0), 42.0);
  EXPECT_EQ(f.at(1000.0), 42.0);
}

// ---- clock --------------------------------------------------------------------

TEST(VirtualClock, AdvancesAndMeasures) {
  VirtualClock c;
  EXPECT_EQ(c.now().count(), 0.0);
  c.advance(usecs(5));
  EXPECT_DOUBLE_EQ(c.now().count(), 5.0);
  const VirtDuration d = c.measure([&] { c.advance(msecs(1)); });
  EXPECT_DOUBLE_EQ(to_ms(d), 1.0);
}

TEST(VirtualClock, ScopesAttributeToBucketsAndNest) {
  VirtualClock c;
  VirtDuration outer{0}, inner{0};
  {
    VirtualClock::Scope so(c, outer);
    c.advance(usecs(10));
    {
      VirtualClock::Scope si(c, inner);
      c.advance(usecs(7));
    }
    c.advance(usecs(3));
  }
  c.advance(usecs(100));  // outside all scopes
  EXPECT_DOUBLE_EQ(outer.count(), 20.0);
  EXPECT_DOUBLE_EQ(inner.count(), 7.0);
  EXPECT_DOUBLE_EQ(c.now().count(), 120.0);
}

// ---- ring buffer ---------------------------------------------------------------

TEST(RingBuffer, FifoOrder) {
  RingBuffer rb(4);
  for (u64 v : {1, 2, 3}) EXPECT_TRUE(rb.push(v));
  u64 out = 0;
  EXPECT_TRUE(rb.pop(out));
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(rb.pop(out));
  EXPECT_EQ(out, 2u);
  rb.push(4);
  rb.push(5);
  EXPECT_EQ(rb.drain(), (std::vector<u64>{3, 4, 5}));
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, OverflowDropsAndCounts) {
  RingBuffer rb(2);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_FALSE(rb.push(3));
  EXPECT_FALSE(rb.push(4));
  EXPECT_EQ(rb.dropped(), 2u);
  EXPECT_EQ(rb.drain(), (std::vector<u64>{1, 2}));
  rb.reset_dropped();
  EXPECT_EQ(rb.dropped(), 0u);
}

TEST(RingBuffer, WrapsAroundManyTimes) {
  RingBuffer rb(3);
  u64 expected = 0;
  for (u64 i = 0; i < 1000; ++i) {
    EXPECT_TRUE(rb.push(i));
    u64 out = 0;
    EXPECT_TRUE(rb.pop(out));
    EXPECT_EQ(out, expected++);
  }
}

// ---- counters ------------------------------------------------------------------

TEST(EventCounters, AddGetDiff) {
  EventCounters c;
  c.add(Event::kVmExit);
  c.add(Event::kVmExit, 4);
  c.add(Event::kTlbMiss, 2);
  EXPECT_EQ(c.get(Event::kVmExit), 5u);
  const EventCounters snap = c;
  c.add(Event::kVmExit, 10);
  EXPECT_EQ(c.diff(snap).get(Event::kVmExit), 10u);
  EXPECT_EQ(c.diff(snap).get(Event::kTlbMiss), 0u);
}

TEST(EventCounters, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kEventCount; ++i) {
    const std::string_view n = event_name(static_cast<Event>(i));
    EXPECT_FALSE(n.empty());
    EXPECT_TRUE(seen.insert(n).second) << "duplicate event name " << n;
  }
}

// ---- cost model ----------------------------------------------------------------

TEST(CostModel, PaperCalibrationMatchesTableVb) {
  const CostModel m = CostModel::paper_calibrated();
  // Totals at the calibration points, in ms (Table V(b)).
  EXPECT_NEAR(m.clear_refs_us(kGiB) / 1e3, 2.234, 1e-6);
  EXPECT_NEAR(m.pagemap_scan_us(kGiB) / 1e3, 594.187, 1e-3);
  EXPECT_NEAR(m.m6_pfh_user.at(static_cast<double>(kGiB)) / 1e3, 3483.0, 1e-2);
  EXPECT_NEAR(m.m17_reverse_map.at(static_cast<double>(kGiB)) / 1e3, 15738.0, 1e-1);
  EXPECT_NEAR(m.spml_disable_logging_us(kGiB) / 1e3, 0.208, 1e-6);
  EXPECT_NEAR(m.clear_refs_us(kMiB) / 1e3, 0.032, 1e-7);
}

TEST(CostModel, PerPageCostsScaleWithPageCount) {
  const CostModel m = CostModel::paper_calibrated();
  const u64 pages_1g = pages_for_bytes(kGiB);
  EXPECT_NEAR(m.pfh_kernel_per_fault_us(kGiB) * static_cast<double>(pages_1g) / 1e3,
              33.58, 1e-2);
  EXPECT_NEAR(m.reverse_map_per_page_us(kGiB) * static_cast<double>(pages_1g) / 1e3,
              15738.0, 1.0);
}

TEST(CostModel, ReverseMappingIsTheDominantSizeDependentCost) {
  // Fig. 3's premise: reverse mapping dwarfs the PT walk and the RB copy.
  const CostModel m = CostModel::paper_calibrated();
  for (u64 mem : {10 * kMiB, 100 * kMiB, kGiB}) {
    const double rev = m.m17_reverse_map.at(static_cast<double>(mem));
    EXPECT_GT(rev, m.pagemap_scan_us(mem));
    EXPECT_GT(rev, m.m18_rb_copy.at(static_cast<double>(mem)) * 100);
  }
}

TEST(CostModel, UnitModelHasFlatCosts) {
  const CostModel m = CostModel::unit();
  EXPECT_DOUBLE_EQ(m.ctx_switch_us, 1.0);
  EXPECT_DOUBLE_EQ(m.clear_refs_us(kMiB), m.clear_refs_us(kGiB));
  EXPECT_DOUBLE_EQ(m.pagemap_scan_us(kMiB), 1.0);
}

// ---- stats ---------------------------------------------------------------------

TEST(Stats, SummaryAndOverheadHelpers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);

  EXPECT_DOUBLE_EQ(overhead_pct(15.0, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(speedup(10.0, 2.0), 5.0);
  EXPECT_THROW((void)overhead_pct(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)speedup(1.0, 0.0), std::invalid_argument);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// ---- rng -----------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

// ---- table ---------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.345}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.35"), std::string::npos);
  // Every rendered line has the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(VtimeFormat, PicksUnits) {
  EXPECT_EQ(format_duration(nsecs(500)), "500.0 ns");
  EXPECT_EQ(format_duration(usecs(12.3)), "12.30 us");
  EXPECT_EQ(format_duration(msecs(3.5)), "3.50 ms");
  EXPECT_EQ(format_duration(secs(2.25)), "2.250 s");
}

}  // namespace
}  // namespace ooh
