// The deterministic schedule explorer (see sched_explorer.hpp for the
// model). Implementation notes:
//
//  * Logical threads are real host threads driven by a run token: exactly
//    one thread is ever runnable, everything else is parked on the engine's
//    condition variable. Every sync-seam event re-enters the engine, which
//    decides who performs the next event — so a recorded decision sequence
//    (one logical-thread id per event) replays an execution exactly.
//
//  * Happens-before is tracked with vector clocks over the *declared*
//    orderings (FastTrack-style, simplified): a release store publishes the
//    writer's clock on the location, an acquire load joins it, a relaxed
//    store *clears* it (that is the whole point — a missing release is a
//    flagged race even though the host serialises everything), relaxed RMWs
//    continue a release sequence. Mutexes carry a clock across
//    unlock -> lock. Plain accesses (OOH_SYNC_PLAIN_READ/WRITE annotations)
//    are checked for HB against the last write and the reads since.
//
//  * Nothing here throws through the instrumented code: DirtyRing's
//    noexcept push/pop must survive a mid-run abort. On deadlock/livelock
//    the engine records the finding, force-readies every blocked thread and
//    free-runs the remainder round-robin — still token-serialised, so torn
//    scenario state is never touched by two host threads at once.
//    Postconditions of an aborted run are suppressed.
//
//  * annotate_free models a free without performing one: scenarios keep the
//    object alive for the whole run, so a flagged use-after-free is a
//    vector-clock fact, never real heap UB inside the checker.
#include "sim/check/sched_explorer.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "base/sync.hpp"
#include "base/types.hpp"
#include "hypervisor/dirty_ring.hpp"
#include "sim/epoch/epoch_pool.hpp"
#include "sim/ept.hpp"
#include "sim/phys_mem.hpp"

namespace ooh::check::sched {

#ifdef OOH_SCHED_CHECK

namespace {

thread_local int t_tid = -1;  ///< logical-thread id on scenario threads.

using Vc = std::vector<u64>;

void vc_join(Vc& into, const Vc& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

/// One recorded memory event: who and at what clock.
struct Access {
  unsigned tid = 0;
  Vc vc;
};

/// Did `a` happen-before the thread currently at clock `now`?
bool happened_before(const Access& a, const Vc& now) {
  const u64 seen = a.tid < now.size() ? now[a.tid] : 0;
  const u64 epoch = a.tid < a.vc.size() ? a.vc[a.tid] : 0;
  return seen >= epoch;
}

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool is_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst || o == std::memory_order_consume;
}
bool is_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

class Engine final : public sync::detail::Hooks, public ScenarioRun {
 public:
  Result run_exploration(const ScenarioBody& body, const Options& opts) {
    opts_ = opts;
    body_ = &body;
    result_ = Result{};
    result_.instrumented = true;
    seen_ids_.clear();
    if (opts_.exhaustive) {
      mode_ = Mode::kDfs;
      path_.clear();
      stack_.clear();
      for (;;) {
        run_once();
        ++result_.interleavings;
        if (result_.interleavings >= opts_.max_interleavings) {
          result_.exhausted_cap = true;
          break;
        }
        while (!stack_.empty() && stack_.back().alts.empty()) stack_.pop_back();
        if (stack_.empty()) break;
        Branch& b = stack_.back();
        path_ = b.prefix;
        path_.push_back(b.alts.back());
        b.alts.pop_back();
      }
    }
    mode_ = Mode::kRandom;
    for (u64 r = 0; r < opts_.random_runs &&
                    result_.interleavings < opts_.max_interleavings;
         ++r) {
      run_seed_ = opts_.seed + r;
      rng_ = splitmix64(run_seed_);
      path_.clear();
      run_once();
      ++result_.interleavings;
    }
    if (opts_.minimize_budget > 0) {
      mode_ = Mode::kReplay;
      for (Finding& f : result_.findings) {
        if (f.seed == 0 && !f.schedule.empty()) minimize(f);
      }
    }
    return result_;
  }

  Result run_replay(const ScenarioBody& body,
                    const std::vector<unsigned>& schedule) {
    opts_ = Options{};
    opts_.minimize_budget = 0;
    body_ = &body;
    result_ = Result{};
    result_.instrumented = true;
    seen_ids_.clear();
    mode_ = Mode::kReplay;
    path_ = schedule;
    run_once();
    result_.interleavings = 1;
    return result_;
  }

  // ---- ScenarioRun --------------------------------------------------------

  void threads(std::vector<std::function<void()>> fns) override {
    const unsigned n = static_cast<unsigned>(fns.size());
    std::vector<std::thread> hosts;
    hosts.reserve(n);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      threads_.clear();
      for (unsigned i = 0; i < n; ++i) {
        auto th = std::make_unique<Th>();
        th->vc.assign(n, 0);
        th->vc[i] = 1;
        threads_.push_back(std::move(th));
      }
      active_ = kNobody;
      run_done_ = false;
    }
    for (unsigned i = 0; i < n; ++i) {
      hosts.emplace_back([this, i, fn = std::move(fns[i])] { thread_main(i, fn); });
    }
    {
      std::unique_lock<std::mutex> lk(mu_);
      pick_and_grant_locked();  // decision 0: who starts
      cv_.wait(lk, [&] { return run_done_; });
    }
    for (std::thread& h : hosts) h.join();
  }

  void expect(bool ok, const std::string& id, const std::string& message) override {
    if (ok) return;
    const std::lock_guard<std::mutex> lk(mu_);
    // An aborted run's state is torn by construction; the deadlock/livelock
    // finding already explains it.
    if (run_aborted_) return;
    record_finding_locked(id, message);
  }

  // ---- sync::detail::Hooks ------------------------------------------------

  void atomic_load(const void* addr, std::memory_order order) override {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, shared_locked(addr));
    Th& me = self();
    bump_clock(me);
    check_freed_locked(addr, "atomic load");
    Loc& l = locs_[addr];
    l.touchers.insert(static_cast<unsigned>(t_tid));
    if (is_acquire(order) && l.sync_valid) vc_join(me.vc, l.sync_vc);
  }

  void atomic_store(const void* addr, std::memory_order order) override {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, shared_locked(addr));
    Th& me = self();
    bump_clock(me);
    check_freed_locked(addr, "atomic store");
    Loc& l = locs_[addr];
    l.touchers.insert(static_cast<unsigned>(t_tid));
    if (is_release(order)) {
      l.sync_vc = me.vc;
      l.sync_valid = true;
    } else {
      // A relaxed store publishes nothing: it severs the location's
      // release history, which is exactly how a missing release becomes a
      // visible race downstream.
      l.sync_valid = false;
      l.sync_vc.clear();
    }
    ready_awaiters_locked();
  }

  void atomic_rmw(const void* addr, std::memory_order order) override {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, shared_locked(addr));
    Th& me = self();
    bump_clock(me);
    check_freed_locked(addr, "atomic rmw");
    Loc& l = locs_[addr];
    l.touchers.insert(static_cast<unsigned>(t_tid));
    if (is_acquire(order) && l.sync_valid) vc_join(me.vc, l.sync_vc);
    if (is_release(order)) {
      if (l.sync_valid) {
        vc_join(l.sync_vc, me.vc);
      } else {
        l.sync_vc = me.vc;
        l.sync_valid = true;
      }
    }
    // A relaxed RMW continues an existing release sequence (C++20
    // [atomics.order]), so it neither clears nor extends sync_vc.
    ready_awaiters_locked();
  }

  void plain_access(const void* addr, bool is_write) override {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, shared_locked(addr));
    Th& me = self();
    bump_clock(me);
    check_freed_locked(addr, is_write ? "plain write" : "plain read");
    Loc& l = locs_[addr];
    const unsigned tid = static_cast<unsigned>(t_tid);
    l.touchers.insert(tid);
    if (l.has_write && l.last_write.tid != tid &&
        !happened_before(l.last_write, me.vc)) {
      record_race_locked(addr, l.last_write.tid, "write", tid,
                         is_write ? "write" : "read");
    }
    if (is_write) {
      for (const Access& r : l.reads) {
        if (r.tid != tid && !happened_before(r, me.vc)) {
          record_race_locked(addr, r.tid, "read", tid, "write");
        }
      }
      l.last_write = Access{tid, me.vc};
      l.has_write = true;
      l.reads.clear();
    } else {
      l.reads.push_back(Access{tid, me.vc});
    }
  }

  bool mutex_lock(void* mutex_addr) override {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, true);
    Th& me = self();
    Mx& m = mutexes_[mutex_addr];
    while (m.held && !abort_) {
      me.state = St::kBlockedMutex;
      me.wait_mutex = mutex_addr;
      pick_and_grant_locked();
      cv_.wait(lk, [&] { return active_ == t_tid; });
      me.state = St::kRunning;
      me.wait_mutex = nullptr;
    }
    // Post-abort free-for-all: proceed regardless so the run can drain.
    m.held = true;
    m.owner = static_cast<unsigned>(t_tid);
    bump_clock(me);
    vc_join(me.vc, m.vc);
    return true;
  }

  bool mutex_try_lock(void* mutex_addr, bool& acquired) override {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, true);
    Th& me = self();
    Mx& m = mutexes_[mutex_addr];
    if (m.held) {
      acquired = false;
      return true;
    }
    m.held = true;
    m.owner = static_cast<unsigned>(t_tid);
    bump_clock(me);
    vc_join(me.vc, m.vc);
    acquired = true;
    return true;
  }

  bool mutex_unlock(void* mutex_addr) override {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, true);
    Th& me = self();
    Mx& m = mutexes_[mutex_addr];
    bump_clock(me);
    vc_join(m.vc, me.vc);  // release edge carried to the next owner
    m.held = false;
    for (auto& th : threads_) {
      if (th->state == St::kBlockedMutex && th->wait_mutex == mutex_addr) {
        th->state = St::kReady;
        th->wait_mutex = nullptr;
      }
    }
    return true;
  }

  // ---- scenario-facing extras --------------------------------------------

  void do_await(const std::function<bool()>& pred) {
    for (;;) {
      if (pred()) return;  // pred's loads are themselves hooked events
      std::unique_lock<std::mutex> lk(mu_);
      if (abort_) return;  // forced release; finding already recorded
      Th& me = self();
      bump_steps_locked();
      me.state = St::kAwait;
      pick_and_grant_locked();
      cv_.wait(lk, [&] { return active_ == t_tid; });
      me.state = St::kRunning;
    }
  }

  void do_annotate_free(const void* addr, std::size_t bytes) {
    std::unique_lock<std::mutex> lk(mu_);
    sched_point_locked(lk, true);
    Th& me = self();
    bump_clock(me);
    const unsigned tid = static_cast<unsigned>(t_tid);
    freed_.push_back(FreeRange{static_cast<const char*>(addr), bytes, tid, me.vc});
    // Backward check: accesses already made to the range by other threads
    // must be ordered before the free.
    for (const auto& [laddr, l] : locs_) {
      if (!covers(freed_.back(), laddr)) continue;
      if (l.has_write && l.last_write.tid != tid &&
          !happened_before(l.last_write, me.vc)) {
        record_race_locked(laddr, l.last_write.tid, "write", tid, "free");
      }
      for (const Access& r : l.reads) {
        if (r.tid != tid && !happened_before(r, me.vc)) {
          record_race_locked(laddr, r.tid, "read", tid, "free");
        }
      }
    }
  }

  [[nodiscard]] static Engine* active_on_this_thread() {
    return t_tid >= 0 ? g_active : nullptr;
  }

  static Engine* g_active;  ///< one exploration at a time per process.

 private:
  static constexpr int kNobody = -1;
  static constexpr int kRunOver = -2;

  enum class Mode { kDfs, kRandom, kReplay };
  enum class St { kReady, kRunning, kBlockedMutex, kAwait, kFinished };

  struct Th {
    St state = St::kReady;
    void* wait_mutex = nullptr;
    Vc vc;
  };
  struct Loc {
    Vc sync_vc;              ///< release history (valid when sync_valid)
    bool sync_valid = false;
    Access last_write;
    bool has_write = false;
    std::vector<Access> reads;     ///< reads since last_write
    std::set<unsigned> touchers;   ///< threads that touched it this run
  };
  struct Mx {
    bool held = false;
    unsigned owner = 0;
    Vc vc;  ///< clock carried unlock -> next lock
  };
  struct FreeRange {
    const char* base;
    std::size_t len;
    unsigned tid;
    Vc vc;
  };
  struct Branch {
    std::vector<unsigned> prefix;  ///< decisions before this point
    std::vector<unsigned> alts;    ///< unexplored choices at this point
  };

  static bool covers(const FreeRange& f, const void* addr) {
    const char* p = static_cast<const char*>(addr);
    return p >= f.base && p < f.base + f.len;
  }

  Th& self() { return *threads_[static_cast<unsigned>(t_tid)]; }

  void bump_clock(Th& t) {
    const auto tid = static_cast<std::size_t>(t_tid);
    if (t.vc.size() <= tid) t.vc.resize(tid + 1, 0);
    ++t.vc[tid];
  }

  /// Address already shared this run? (DPOR-lite branch filter: prefix-
  /// stable, because earlier events in the same run determine it.)
  bool shared_locked(const void* addr) {
    const auto it = locs_.find(addr);
    if (it == locs_.end()) return false;
    const auto& touchers = it->second.touchers;
    if (touchers.size() >= 2) return true;
    return touchers.size() == 1 &&
           *touchers.begin() != static_cast<unsigned>(t_tid);
  }

  void run_once() {
    trace_.clear();
    replay_idx_ = 0;
    steps_ = 0;
    preemptions_ = 0;
    abort_ = false;
    run_aborted_ = false;
    locs_.clear();
    mutexes_.clear();
    freed_.clear();
    run_finding_ids_.clear();
    (*body_)(*this);
  }

  void thread_main(unsigned tid, const std::function<void()>& fn) {
    t_tid = static_cast<int>(tid);
    sync::detail::set_current(this);
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return active_ == t_tid; });
      threads_[tid]->state = St::kRunning;
    }
    try {
      fn();
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lk(mu_);
      record_finding_locked("SCHED-LOST",
                            std::string("scenario thread threw: ") + e.what());
    } catch (...) {
      const std::lock_guard<std::mutex> lk(mu_);
      record_finding_locked("SCHED-LOST", "scenario thread threw");
    }
    {
      const std::lock_guard<std::mutex> lk(mu_);
      threads_[tid]->state = St::kFinished;
      pick_and_grant_locked();
    }
    sync::detail::set_current(nullptr);
    t_tid = -1;
  }

  /// Voluntary scheduling point: the calling thread is runnable and about
  /// to perform an event; decide who performs the next event instead.
  void sched_point_locked(std::unique_lock<std::mutex>& lk, bool branchable) {
    bump_steps_locked();
    if (abort_) return;  // free-run: current thread keeps the token
    Th& me = self();
    me.state = St::kReady;
    const unsigned next = decide_locked(/*cur_enabled=*/true, branchable);
    grant_locked(static_cast<int>(next));
    if (active_ != t_tid) cv_.wait(lk, [&] { return active_ == t_tid; });
    me.state = St::kRunning;
  }

  /// Forced switch: current thread just blocked or finished (or is the
  /// controller at decision 0). Pick among the ready threads; handle
  /// run-over and deadlock.
  void pick_and_grant_locked() {
    std::vector<unsigned> enabled = enabled_locked();
    if (enabled.empty()) {
      bool all_finished = true;
      for (const auto& th : threads_) {
        if (th->state != St::kFinished) all_finished = false;
      }
      if (all_finished) {
        run_done_ = true;
        active_ = kRunOver;
        cv_.notify_all();
        return;
      }
      // Every unfinished thread is blocked: a genuine deadlock. Record it,
      // then force-ready the blocked threads and free-run to completion
      // (still token-serialised) so the host threads can be joined.
      if (!abort_) {
        record_finding_locked("SCHED-DEADLOCK",
                              "all unfinished logical threads blocked "
                              "(mutex cycle or await that cannot fire)");
        abort_ = true;
        run_aborted_ = true;
      }
      for (auto& th : threads_) {
        if (th->state == St::kBlockedMutex || th->state == St::kAwait) {
          th->state = St::kReady;
          th->wait_mutex = nullptr;
        }
      }
      enabled = enabled_locked();
      if (enabled.empty()) return;  // defensive; cannot happen
      grant_locked(static_cast<int>(enabled.front()));
      return;
    }
    if (abort_) {
      // Round-robin keeps every thread progressing toward the end.
      grant_locked(static_cast<int>(round_robin_locked(enabled)));
      return;
    }
    const unsigned next = decide_locked(/*cur_enabled=*/false, true);
    grant_locked(static_cast<int>(next));
  }

  std::vector<unsigned> enabled_locked() const {
    std::vector<unsigned> out;
    for (unsigned i = 0; i < threads_.size(); ++i) {
      if (threads_[i]->state == St::kReady) out.push_back(i);
    }
    return out;
  }

  unsigned round_robin_locked(const std::vector<unsigned>& enabled) const {
    for (const unsigned e : enabled) {
      if (static_cast<int>(e) > active_) return e;
    }
    return enabled.front();
  }

  /// The heart of exploration: pick the next thread to run. `cur_enabled`
  /// means the calling thread could continue (switching away from it is a
  /// preemption, charged against the bound); a forced switch is free and
  /// always a branch point.
  unsigned decide_locked(bool cur_enabled, bool branchable) {
    const std::vector<unsigned> enabled = enabled_locked();
    unsigned next;
    if (replay_idx_ < path_.size()) {
      const unsigned want = path_[replay_idx_++];
      next = std::find(enabled.begin(), enabled.end(), want) != enabled.end()
                 ? want
                 : default_choice(enabled, cur_enabled);
    } else if (mode_ == Mode::kRandom) {
      rng_ = splitmix64(rng_);
      next = enabled[rng_ % enabled.size()];
    } else {
      next = default_choice(enabled, cur_enabled);
      if (mode_ == Mode::kDfs) {
        const bool may_preempt =
            !cur_enabled || preemptions_ < opts_.preemption_bound;
        if (may_preempt && branchable && enabled.size() > 1) {
          Branch b;
          b.prefix = trace_;
          for (const unsigned e : enabled) {
            if (e != next) b.alts.push_back(e);
          }
          stack_.push_back(std::move(b));
        }
      }
    }
    if (cur_enabled && next != static_cast<unsigned>(t_tid)) ++preemptions_;
    trace_.push_back(next);
    ++result_.decision_points;
    return next;
  }

  unsigned default_choice(const std::vector<unsigned>& enabled,
                          bool cur_enabled) const {
    if (cur_enabled) return static_cast<unsigned>(t_tid);
    return enabled.front();
  }

  void grant_locked(int next) {
    active_ = next;
    cv_.notify_all();
  }

  void bump_steps_locked() {
    if (++steps_ <= opts_.max_steps || abort_) return;
    record_finding_locked("SCHED-LIVELOCK",
                          "run exceeded max_steps (unbounded spin?)");
    abort_ = true;
    run_aborted_ = true;
    for (auto& th : threads_) {
      if (th->state == St::kBlockedMutex || th->state == St::kAwait) {
        th->state = St::kReady;
        th->wait_mutex = nullptr;
      }
    }
  }

  void ready_awaiters_locked() {
    for (auto& th : threads_) {
      if (th->state == St::kAwait) th->state = St::kReady;
    }
  }

  void check_freed_locked(const void* addr, const char* what) {
    for (const FreeRange& f : freed_) {
      if (!covers(f, addr)) continue;
      std::ostringstream os;
      os << what << " by T" << t_tid << " touches memory freed by T" << f.tid
         << " (mid-drain teardown hazard)";
      record_finding_locked("SCHED-RACE", os.str());
      return;
    }
  }

  void record_race_locked(const void* addr, unsigned tid_a, const char* kind_a,
                          unsigned tid_b, const char* kind_b) {
    std::ostringstream os;
    os << "unsynchronized " << kind_a << " by T" << tid_a << " and " << kind_b
       << " by T" << tid_b << " at " << addr
       << " (no happens-before from the declared memory orders)";
    record_finding_locked("SCHED-RACE", os.str());
  }

  void record_finding_locked(const std::string& id, const std::string& message) {
    run_finding_ids_.insert(id);
    if (!seen_ids_.insert(id).second) return;  // first occurrence wins
    Finding f;
    f.id = id;
    f.message = message;
    f.schedule = trace_;
    f.seed = mode_ == Mode::kRandom ? run_seed_ : 0;
    result_.findings.push_back(std::move(f));
  }

  /// Greedy shrink: drop decisions (latest first) and truncate the tail
  /// while the finding still reproduces, bounded by minimize_budget replays.
  void minimize(Finding& f) {
    unsigned budget = opts_.minimize_budget;
    std::vector<unsigned> cur = f.schedule;
    const auto reproduces = [&](const std::vector<unsigned>& cand) {
      path_ = cand;
      run_once();
      return run_finding_ids_.count(f.id) > 0;
    };
    // Truncate from the back first: replay continues nonpreemptively.
    while (!cur.empty() && budget > 0) {
      std::vector<unsigned> cand(cur.begin(), cur.end() - 1);
      --budget;
      if (!reproduces(cand)) break;
      cur = std::move(cand);
    }
    // Then drop interior decisions, latest first.
    for (std::size_t i = cur.size(); i-- > 0 && budget > 0;) {
      std::vector<unsigned> cand = cur;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      --budget;
      if (reproduces(cand)) cur = std::move(cand);
    }
    f.schedule = std::move(cur);
  }

  // ---- engine state -------------------------------------------------------

  Options opts_;
  const ScenarioBody* body_ = nullptr;
  Result result_;
  Mode mode_ = Mode::kDfs;
  std::set<std::string> seen_ids_;

  // DFS state (across runs).
  std::vector<Branch> stack_;
  std::vector<unsigned> path_;
  u64 rng_ = 0;
  u64 run_seed_ = 0;

  // Per-run state. mu_ guards everything below plus threads_/active_.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Th>> threads_;
  int active_ = kNobody;
  bool run_done_ = false;
  bool abort_ = false;
  bool run_aborted_ = false;
  u64 steps_ = 0;
  unsigned preemptions_ = 0;
  std::size_t replay_idx_ = 0;
  std::vector<unsigned> trace_;
  std::map<const void*, Loc> locs_;
  std::map<void*, Mx> mutexes_;
  std::vector<FreeRange> freed_;
  std::set<std::string> run_finding_ids_;
};

Engine* Engine::g_active = nullptr;

}  // namespace

#endif  // OOH_SCHED_CHECK

// ---- public surface ---------------------------------------------------------

#ifndef OOH_SCHED_CHECK
namespace {

/// Fallback for uninstrumented builds: the scenario runs once, its threads
/// executed sequentially in declaration order (scenarios are written so
/// that order satisfies every await), and only the postconditions checked.
class SequentialRun final : public ScenarioRun {
 public:
  explicit SequentialRun(Result& result) : result_(result) {}

  void threads(std::vector<std::function<void()>> fns) override {
    for (auto& fn : fns) fn();
  }

  void expect(bool ok, const std::string& id, const std::string& message) override {
    if (ok) return;
    Finding f;
    f.id = id;
    f.message = message;
    result_.findings.push_back(std::move(f));
  }

 private:
  Result& result_;
};

}  // namespace
#endif  // !OOH_SCHED_CHECK

bool available() noexcept {
#ifdef OOH_SCHED_CHECK
  return true;
#else
  return false;
#endif
}

void annotate_free(const void* addr, std::size_t bytes) {
#ifdef OOH_SCHED_CHECK
  if (Engine* e = Engine::active_on_this_thread()) {
    e->do_annotate_free(addr, bytes);
    return;
  }
#endif
  (void)addr;
  (void)bytes;
}

void await(const std::function<bool()>& pred) {
#ifdef OOH_SCHED_CHECK
  if (Engine* e = Engine::active_on_this_thread()) {
    e->do_await(pred);
    return;
  }
#endif
  while (!pred()) std::this_thread::yield();
}

Result explore(const std::string& name, const ScenarioBody& body,
               const Options& opts) {
  (void)name;
#ifdef OOH_SCHED_CHECK
  Engine engine;
  Engine::g_active = &engine;
  Result r = engine.run_exploration(body, opts);
  Engine::g_active = nullptr;
  return r;
#else
  (void)opts;
  Result r;
  r.interleavings = 1;
  SequentialRun run(r);
  body(run);
  return r;
#endif
}

Result replay(const ScenarioBody& body, const std::vector<unsigned>& schedule) {
#ifdef OOH_SCHED_CHECK
  Engine engine;
  Engine::g_active = &engine;
  Result r = engine.run_replay(body, schedule);
  Engine::g_active = nullptr;
  return r;
#else
  (void)schedule;
  Result r;
  r.interleavings = 1;
  SequentialRun run(r);
  body(run);
  return r;
#endif
}

std::string format_schedule(const std::vector<unsigned>& schedule) {
  std::ostringstream os;
  std::size_t i = 0;
  while (i < schedule.size()) {
    std::size_t j = i;
    while (j < schedule.size() && schedule[j] == schedule[i]) ++j;
    if (i != 0) os << ' ';
    os << 'T' << schedule[i];
    if (j - i > 1) os << 'x' << (j - i);
    i = j;
  }
  return os.str();
}

// ---- built-in scenarios -----------------------------------------------------

namespace {

/// RING-1 audit helper: popped + still-pending + spilled must equal pushed.
bool ring_loss_free(const hv::DirtyRing& ring, std::vector<u64> recovered,
                    std::vector<u64> want) {
  ring.for_each_pending([&](u64 v) { recovered.push_back(v); });
  for (const u64 v : ring.spill_log()) recovered.push_back(v);
  std::sort(recovered.begin(), recovered.end());
  std::sort(want.begin(), want.end());
  return recovered == want;
}

/// One producer, one drainer, a deliberately tiny ring: the classic SPSC
/// push/pop race surface, exhaustively explored within the preemption bound.
void scenario_ring_push_pop(ScenarioRun& run) {
  constexpr u64 kPushes = 5;  // capacity 4 => the spill path is reachable
  auto ring = std::make_shared<hv::DirtyRing>(4);
  auto popped = std::make_shared<std::vector<u64>>();
  std::vector<u64> want;
  for (u64 v = 1; v <= kPushes; ++v) want.push_back(v * kPageSize);
  run.threads({
      [ring] {
        for (u64 v = 1; v <= kPushes; ++v) {
          const u64 gpa = v * kPageSize;
          if (!ring->try_push(gpa)) ring->spill(gpa);
        }
      },
      [ring, popped] {
        u64 v = 0;
        for (u64 i = 0; i < kPushes + 3; ++i) {
          if (ring->try_pop(v)) popped->push_back(v);
        }
      },
  });
  run.expect(ring->bounds_ok(), "SCHED-LOST", "RING-1: cursor bounds violated");
  run.expect(ring_loss_free(*ring, *popped, want), "SCHED-LOST",
             "RING-1: pushed != popped + pending + spilled");
}

/// 4 vCPU producers, 4 drain threads, 4 rings (the SMP pairing): too many
/// threads to enumerate, so this runs seed-replayable random schedules.
void scenario_storm_4x4(ScenarioRun& run) {
  constexpr unsigned kPairs = 4;
  constexpr u64 kPerProducer = 3;
  struct Shared {
    std::vector<std::unique_ptr<hv::DirtyRing>> rings;
    std::vector<std::vector<u64>> drained;
  };
  auto sh = std::make_shared<Shared>();
  sh->drained.resize(kPairs);
  for (unsigned i = 0; i < kPairs; ++i) {
    sh->rings.push_back(std::make_unique<hv::DirtyRing>(2));
  }
  std::vector<std::function<void()>> fns;
  for (unsigned p = 0; p < kPairs; ++p) {
    fns.push_back([sh, p] {
      for (u64 k = 0; k < kPerProducer; ++k) {
        const u64 gpa = (u64{p} * 16 + k + 1) * kPageSize;
        if (!sh->rings[p]->try_push(gpa)) sh->rings[p]->spill(gpa);
      }
    });
  }
  for (unsigned d = 0; d < kPairs; ++d) {
    fns.push_back([sh, d] {
      u64 v = 0;
      for (u64 i = 0; i < kPerProducer + 2; ++i) {
        if (sh->rings[d]->try_pop(v)) sh->drained[d].push_back(v);
      }
    });
  }
  run.threads(std::move(fns));
  for (unsigned i = 0; i < kPairs; ++i) {
    std::vector<u64> want;
    for (u64 k = 0; k < kPerProducer; ++k) {
      want.push_back((u64{i} * 16 + k + 1) * kPageSize);
    }
    run.expect(ring_loss_free(*sh->rings[i], sh->drained[i], want),
               "SCHED-LOST", "RING-1: storm lost an entry");
  }
}

/// A vCPU maps pages, dirties the ring and then unmaps one (the shootdown)
/// while the drain thread walks the same EPT through lookups: the
/// Ept-concurrent-mode lock is what keeps this clean.
void scenario_drain_during_shootdown(ScenarioRun& run) {
  struct Shared {
    sim::Ept ept;
    hv::DirtyRing ring{8};
    std::vector<u64> drained;
  };
  auto sh = std::make_shared<Shared>();
  sh->ept.set_concurrent(true);
  constexpr u64 kPages = 3;
  std::vector<u64> want;
  for (u64 i = 0; i < kPages; ++i) want.push_back((i + 1) * kPageSize);
  run.threads({
      [sh] {  // vCPU: map, dirty, then shoot one mapping down
        for (u64 i = 0; i < kPages; ++i) {
          const u64 gpa = (i + 1) * kPageSize;
          sh->ept.map(gpa, 0x40000000 + i * kPageSize);
          if (!sh->ring.try_push(gpa)) sh->ring.spill(gpa);
        }
        sh->ept.unmap(1 * kPageSize);
      },
      [sh] {  // drainer: pop and re-walk each GPA through the shared EPT
        u64 v = 0;
        for (u64 i = 0; i < kPages + 2; ++i) {
          if (sh->ring.try_pop(v)) {
            sh->drained.push_back(v);
            (void)sh->ept.lookup(v);  // may race the unmap without the lock
          }
        }
      },
  });
  run.expect(ring_loss_free(sh->ring, sh->drained, want), "SCHED-LOST",
             "RING-1: drain during shootdown lost an entry");
  run.expect(sh->ept.walk_cache_coherent(), "SCHED-LOST",
             "WALK-1: walk cache incoherent after concurrent shootdown");
}

/// Eager splitting shatters a 2 MiB leaf while the drain thread keeps
/// walking GPAs inside the (formerly) huge region.
void scenario_eager_split_under_drain(ScenarioRun& run) {
  struct Shared {
    sim::Ept ept;
    hv::DirtyRing ring{8};
    std::vector<u64> drained;
    u64 children = 0;
  };
  auto sh = std::make_shared<Shared>();
  sh->ept.set_concurrent(true);
  sh->ept.map_huge(0, 0x40000000, PageGran::k2M);
  constexpr u64 kPages = 2;
  std::vector<u64> want;
  for (u64 i = 0; i < kPages; ++i) want.push_back(i * kPageSize);
  run.threads({
      [sh] {  // hypervisor: split eagerly, then log dirties at 4 KiB
        sh->children = sh->ept.split_huge_leaf(0, PageGran::k2M);
        for (u64 i = 0; i < kPages; ++i) {
          if (!sh->ring.try_push(i * kPageSize)) sh->ring.spill(i * kPageSize);
        }
      },
      [sh] {  // drainer: concurrent walks across the split boundary
        u64 v = 0;
        for (u64 i = 0; i < kPages + 2; ++i) {
          if (sh->ring.try_pop(v)) {
            sh->drained.push_back(v);
            (void)sh->ept.lookup(v);
          }
        }
      },
  });
  run.expect(sh->children == sim::kRadixFanout, "SCHED-LOST",
             "SPLIT-1: eager split did not produce a full set of children");
  run.expect(ring_loss_free(sh->ring, sh->drained, want), "SCHED-LOST",
             "RING-1: eager split lost a ring entry");
}

/// Teardown ordering: the drain thread must be provably done (stop -> join
/// handshake modeled with release/acquire flags) before the ring goes away.
/// annotate_free models the free; dropping the drainer_done edge is the
/// seeded teardown mutation the self-tests prove the explorer catches.
void scenario_mid_drain_teardown(ScenarioRun& run) {
  struct Shared {
    std::unique_ptr<hv::DirtyRing> ring = std::make_unique<hv::DirtyRing>(8);
    sync::Atomic<bool> producer_done{false};
    sync::Atomic<bool> drainer_done{false};
    std::vector<u64> popped;
    std::vector<u64> recovered;
  };
  auto sh = std::make_shared<Shared>();
  constexpr u64 kPushes = 3;
  std::vector<u64> want;
  for (u64 v = 1; v <= kPushes; ++v) want.push_back(v * kPageSize);
  run.threads({
      [sh] {  // vCPU producer
        for (u64 v = 1; v <= kPushes; ++v) {
          const u64 gpa = v * kPageSize;
          if (!sh->ring->try_push(gpa)) sh->ring->spill(gpa);
        }
        sh->producer_done.store(true, std::memory_order_release);
      },
      [sh] {  // drainer: stops once the producer is done and the ring drained
        await([&] {
          return sh->producer_done.load(std::memory_order_acquire);
        });
        u64 v = 0;
        for (u64 i = 0; i < kPushes + 2; ++i) {
          if (sh->ring->try_pop(v)) sh->popped.push_back(v);
        }
        sh->drainer_done.store(true, std::memory_order_release);
      },
      [sh] {  // teardown: join the drainer, harvest leftovers, free the ring
        await([&] {
          return sh->drainer_done.load(std::memory_order_acquire);
        });
        sh->ring->for_each_pending([&](u64 v) { sh->recovered.push_back(v); });
        for (const u64 v : sh->ring->spill_log()) sh->recovered.push_back(v);
        annotate_free(sh->ring.get(), sizeof(hv::DirtyRing));
      },
  });
  std::vector<u64> got = sh->popped;
  got.insert(got.end(), sh->recovered.begin(), sh->recovered.end());
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  run.expect(got == want, "SCHED-LOST",
             "RING-1: teardown lost an entry between stop and free");
}

/// The epoch worker pool's cross-thread surface under a concurrent snapshot
/// capture: two workers partition epochs through the production
/// epoch::claim_next cursor and write each epoch's (privately owned) frame,
/// while a snapshotter thread CoW-captures the shared PhysicalMemory the
/// moment epoch 0 announces completion. Checked in every interleaving:
/// the cursor hands each epoch to exactly one worker (EPOCH-1), the capture
/// sees epoch 0's completed write (the shard mutex + release flag
/// happens-before chain), and a post-capture write clones rather than
/// mutates the captured image (SNAP-1's CoW immutability).
void scenario_snapshot_during_epochs(ScenarioRun& run) {
  constexpr std::size_t kEpochs = 3;
  struct Shared {
    sim::PhysicalMemory pmem{64 * kPageSize};
    sync::Atomic<u64> cursor{0};
    std::array<sync::Atomic<u64>, kEpochs> claims{};
    sync::Atomic<bool> epoch0_done{false};
    std::vector<sim::PhysicalMemory::FrameImage> image;
  };
  auto sh = std::make_shared<Shared>();
  const auto worker = [sh] {
    for (;;) {
      const std::size_t i = epoch::claim_next(sh->cursor, kEpochs);
      if (i == kEpochs) break;
      // Epoch i's body: mutate only state epoch i owns (its frame).
      sh->pmem.frame_data(i * kPageSize)[0] = static_cast<u8>(0xE0 + i);
      // relaxed-ok: claim multiplicity counter, read only after join.
      sh->claims[i].fetch_add(1, std::memory_order_relaxed);
      if (i == 0) sh->epoch0_done.store(true, std::memory_order_release);
    }
  };
  run.threads({
      worker,
      worker,
      [sh] {  // snapshotter: capture mid-execution, after epoch 0 lands
        await([&] { return sh->epoch0_done.load(std::memory_order_acquire); });
        sh->image = sh->pmem.capture_frames();
      },
  });
  for (std::size_t i = 0; i < kEpochs; ++i) {
    // relaxed-ok: post-join read; the pool join is the publication edge.
    run.expect(sh->claims[i].load(std::memory_order_relaxed) == 1, "SCHED-LOST",
               "EPOCH-1: claim cursor handed an epoch to != 1 worker");
  }
  const auto image_frame0 = [&]() -> const u8* {
    for (const auto& [fn, frame] : sh->image) {
      if (fn == 0) return frame->data();
    }
    return nullptr;
  };
  const u8* f0 = image_frame0();
  run.expect(f0 != nullptr && f0[0] == 0xE0, "SCHED-LOST",
             "SNAP-1: capture after epoch 0 completed missed its write");
  // Writes after the capture must clone the frame, never mutate the image.
  sh->pmem.frame_data(0)[0] = 0x5A;
  f0 = image_frame0();
  run.expect(f0 != nullptr && f0[0] == 0xE0, "SCHED-LOST",
             "SNAP-1: post-capture write mutated the captured image");
}

std::vector<NamedScenario> make_builtin_scenarios() {
  std::vector<NamedScenario> out;
  {
    Options o;
    o.preemption_bound = 2;
    o.random_runs = 100;
    out.push_back({"ring_push_pop", scenario_ring_push_pop, o});
  }
  {
    Options o;
    o.exhaustive = false;  // 8 threads: random schedules only
    o.random_runs = 120;
    o.seed = 7;
    out.push_back({"storm_4x4", scenario_storm_4x4, o});
  }
  {
    Options o;
    o.preemption_bound = 2;
    o.random_runs = 50;
    o.max_interleavings = 8000;
    out.push_back(
        {"drain_during_shootdown", scenario_drain_during_shootdown, o});
  }
  {
    Options o;
    o.preemption_bound = 2;
    o.random_runs = 50;
    o.max_interleavings = 6000;
    out.push_back(
        {"eager_split_under_drain", scenario_eager_split_under_drain, o});
  }
  {
    Options o;
    o.preemption_bound = 2;
    o.random_runs = 100;
    out.push_back({"mid_drain_teardown", scenario_mid_drain_teardown, o});
  }
  {
    Options o;
    o.preemption_bound = 2;
    o.random_runs = 80;
    o.max_interleavings = 8000;
    out.push_back(
        {"snapshot_during_epochs", scenario_snapshot_during_epochs, o});
  }
  return out;
}

}  // namespace

const std::vector<NamedScenario>& builtin_scenarios() {
  static const std::vector<NamedScenario> kScenarios = make_builtin_scenarios();
  return kScenarios;
}

Result run_builtin(const std::string& name) {
  for (const NamedScenario& s : builtin_scenarios()) {
    if (s.name == name) return explore(s.name, s.body, s.opts);
  }
  throw std::invalid_argument("unknown scheduler scenario: " + name);
}

}  // namespace ooh::check::sched
