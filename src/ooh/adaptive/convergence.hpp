// ConvergencePredictor — pre-copy convergence control for live migration.
//
// Classic pre-copy converges only when the guest dirties pages slower than
// the transport resends them; otherwise every round harvests roughly the
// same hot set and the loop burns `max_rounds` rounds before the forced
// stop-and-copy. The predictor watches the per-round dirty rate (EWMA over
// virtual time, the same smoothing the WssEstimator uses), compares it with
// the send bandwidth implied by CostModel::migration_send_page_us, and lets
// MigrationEngine::migrate
//   * cut the pre-copy loop short as soon as non-convergence is sustained
//     (auto-sizing max_rounds down), and
//   * throttle the guest by charging a stall fraction of each quantum
//     (auto-scaling the dirty rate down), the standard "auto-converge"
//     mitigation (QEMU's cpu-throttle).
//
// Pure virtual-time arithmetic: deterministic, and inert unless
// MigrationOptions::adaptive_convergence is set. Header-only because the
// hypervisor layer consumes it and sits below the ooh library in the link
// graph; the predictor itself depends only on base/.
#pragma once

#include <algorithm>

#include "base/cost_model.hpp"
#include "base/types.hpp"
#include "base/vtime.hpp"

namespace ooh::lib {

class ConvergencePredictor {
 public:
  /// `alpha` weights the newest round in the dirty-rate EWMA.
  explicit ConvergencePredictor(double alpha = 0.5) : alpha_(alpha) {}

  /// Record one pre-copy round: `dirty_pages` harvested after the guest ran
  /// for `round_time` of virtual time.
  void observe_round(u64 dirty_pages, VirtDuration round_time) {
    const double ms = std::max(to_ms(round_time), 1e-6);
    const double rate = static_cast<double>(dirty_pages) / ms;
    rate_ = rounds_ == 0 ? rate : alpha_ * rate + (1.0 - alpha_) * rate_;
    ++rounds_;
  }

  /// Smoothed dirty rate, pages per virtual millisecond.
  [[nodiscard]] double dirty_rate() const noexcept { return rate_; }

  /// Transport bandwidth, pages per virtual millisecond.
  [[nodiscard]] static double send_rate(const CostModel& cost) noexcept {
    return cost.migration_send_page_us > 0.0
               ? 1e3 / cost.migration_send_page_us
               : 0.0;
  }

  /// True when the guest dirties pages at least as fast as the transport
  /// resends them — pre-copy cannot shrink the pending set.
  [[nodiscard]] bool non_convergent(const CostModel& cost) const noexcept {
    return rate_ >= send_rate(cost);
  }

  /// Rounds observed so far.
  [[nodiscard]] u64 rounds() const noexcept { return rounds_; }

  /// Consecutive trailing rounds that looked non-convergent.
  [[nodiscard]] u64 sustained_non_convergence() const noexcept {
    return sustained_;
  }

  /// Note a convergence verdict for sustain tracking (called by the engine
  /// once per round, after warmup).
  void note_verdict(bool non_conv) noexcept {
    sustained_ = non_conv ? sustained_ + 1 : 0;
  }

 private:
  double alpha_;
  double rate_ = 0.0;
  u64 rounds_ = 0;
  u64 sustained_ = 0;
};

}  // namespace ooh::lib
