#include "sim/tlb.hpp"

#include <algorithm>
#include <cassert>

namespace ooh::sim {

TlbEntry* Tlb::lookup(u32 pid, Gva gva_page) noexcept {
  const auto it = map_.find(key(pid, gva_page));
  return it == map_.end() ? nullptr : &it->second.entry;
}

void Tlb::insert(u32 pid, Gva gva_page, const TlbEntry& entry) {
  const u64 k = key(pid, gva_page);
  if (const auto it = map_.find(k); it != map_.end()) {
    it->second.entry = entry;
    return;
  }
  if (map_.size() >= capacity_ && !keys_.empty()) {
    // Pseudo-random victim (xorshift): real TLBs approximate random/PLRU;
    // strict FIFO thrashes pathologically on cyclic page strides.
    rand_state_ ^= rand_state_ << 13;
    rand_state_ ^= rand_state_ >> 7;
    rand_state_ ^= rand_state_ << 17;
    evict_at(rand_state_ % keys_.size());
  }
  Slot slot;
  slot.entry = entry;
  slot.pos = keys_.size();
  keys_.push_back(k);
  map_.emplace(k, slot);
}

void Tlb::evict_at(std::size_t pos) noexcept {
  assert(pos < keys_.size());
  const u64 victim = keys_[pos];
  const u64 last = keys_.back();
  keys_[pos] = last;
  keys_.pop_back();
  if (last != victim) {
    if (const auto it = map_.find(last); it != map_.end()) it->second.pos = pos;
  }
  map_.erase(victim);
}

void Tlb::invalidate_page(u32 pid, Gva gva_page) noexcept {
  const auto it = map_.find(key(pid, gva_page));
  if (it != map_.end()) evict_at(it->second.pos);
}

void Tlb::flush_pid(u32 pid) {
  for (std::size_t i = keys_.size(); i-- > 0;) {
    if ((keys_[i] >> 40) == pid) evict_at(i);
  }
}

void Tlb::flush_all() noexcept {
  map_.clear();
  keys_.clear();
}

}  // namespace ooh::sim
