# Empty compiler generated dependencies file for gbench_sim_primitives.
# This may be replaced when dependencies are built.
