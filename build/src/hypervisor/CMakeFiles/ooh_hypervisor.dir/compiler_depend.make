# Empty compiler generated dependencies file for ooh_hypervisor.
# This may be replaced when dependencies are built.
